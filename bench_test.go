// Benchmarks regenerating the paper's evaluation, one per figure panel
// (Figures 6-9, panels a-d) plus the ablations and in-text measurements.
// Each benchmark runs the panel's sweep at a reduced scale and reports
// the panel's characteristic quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the shape of every result in the paper. cmd/emxbench renders
// the full series.
package emx_test

import (
	"sync"
	"testing"

	"emx/internal/analytic"
	"emx/internal/core"
	"emx/internal/harness"
	"emx/internal/metrics"
	"emx/internal/proc"
	"emx/internal/sim"
)

// benchScale keeps bench iterations around a second: the paper's 8M
// elements simulate as 2K (P=64 keeps >= 16 per thread after clamping).
const benchScale = 4096

var benchThreads = []int{1, 2, 4, 8, 16}

// Panel sweeps are shared between the Fig6/7/8/9 benchmarks of the same
// workload and machine size.
var (
	sweepMu    sync.Mutex
	sweepCache = map[string]*harness.SweepResult{}
)

func panelSweep(b *testing.B, w harness.Workload, p int, mode proc.ServiceMode, block bool) *harness.SweepResult {
	b.Helper()
	key := w.String() + string(rune('0'+p)) + mode.String()
	if block {
		key += "-blk"
	}
	sweepMu.Lock()
	defer sweepMu.Unlock()
	if res, ok := sweepCache[key]; ok {
		return res
	}
	sizes := harness.DefaultSizes(p)
	res, err := harness.Sweep{
		Workload:   w,
		P:          p,
		PaperSizes: []int{sizes[0], sizes[len(sizes)-1]}, // largest and smallest
		Scale:      benchScale,
		Threads:    benchThreads,
		Mode:       mode,
		BlockRead:  block,
		Seed:       1,
	}.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	sweepCache[key] = res
	return res
}

// reportFig6 extracts the panel's characteristic shape: communication
// time at h=1 vs its minimum over h (the valley), for the largest size.
func reportFig6(b *testing.B, res *harness.SweepResult) {
	f := harness.Fig6(res)
	s := f.Series[0]
	min := s.Y[0]
	argmin := f.X[0]
	for i, y := range s.Y {
		if y < min {
			min, argmin = y, f.X[i]
		}
	}
	b.ReportMetric(s.Y[0]*1e6, "commH1_us")
	b.ReportMetric(min*1e6, "commMin_us")
	b.ReportMetric(float64(argmin), "valleyAtH")
}

func reportFig7(b *testing.B, res *harness.SweepResult) {
	f, err := harness.Fig7(res)
	if err != nil {
		b.Fatal(err)
	}
	s := f.Series[0]
	best := 0.0
	for _, y := range s.Y {
		if y > best {
			best = y
		}
	}
	h4 := res.ThreadIndex(4)
	b.ReportMetric(s.Y[h4], "effH4_pct")
	b.ReportMetric(best, "effBest_pct")
}

func reportFig8(b *testing.B, res *harness.SweepResult, paperN int) {
	f, err := harness.Fig8(res, paperN)
	if err != nil {
		b.Fatal(err)
	}
	h4 := res.ThreadIndex(4)
	b.ReportMetric(f.Series[0].Y[h4], "computePctH4")
	b.ReportMetric(f.Series[2].Y[h4], "commPctH4")
	b.ReportMetric(f.Series[3].Y[h4], "switchPctH4")
}

func reportFig9(b *testing.B, res *harness.SweepResult, paperN int) {
	f, err := harness.Fig9(res, paperN)
	if err != nil {
		b.Fatal(err)
	}
	h16 := res.ThreadIndex(16)
	b.ReportMetric(f.Series[0].Y[h16], "remoteSwPerPE")
	b.ReportMetric(f.Series[1].Y[h16], "iterSwPerPE")
	b.ReportMetric(f.Series[2].Y[h16], "threadSwPerPE")
}

func benchPanel(b *testing.B, w harness.Workload, p int, report func(*testing.B, *harness.SweepResult)) {
	for i := 0; i < b.N; i++ {
		// Clear the cache before every iteration so each one pays the
		// full simulation cost — a warm cache from a sibling benchmark
		// would otherwise make the first trial free and push b.N sky-high.
		sweepMu.Lock()
		sweepCache = map[string]*harness.SweepResult{}
		sweepMu.Unlock()
		res := panelSweep(b, w, p, proc.ServiceBypass, false)
		if i == b.N-1 {
			report(b, res)
		}
	}
}

// Figure 6: communication time vs threads.
func BenchmarkFig6aBitonicP16(b *testing.B) { benchPanel(b, harness.Bitonic, 16, reportFig6) }
func BenchmarkFig6bBitonicP64(b *testing.B) { benchPanel(b, harness.Bitonic, 64, reportFig6) }
func BenchmarkFig6cFFTP16(b *testing.B)     { benchPanel(b, harness.FFT, 16, reportFig6) }
func BenchmarkFig6dFFTP64(b *testing.B)     { benchPanel(b, harness.FFT, 64, reportFig6) }

// Figure 7: overlapping efficiency.
func BenchmarkFig7aBitonicP16(b *testing.B) { benchPanel(b, harness.Bitonic, 16, reportFig7) }
func BenchmarkFig7bBitonicP64(b *testing.B) { benchPanel(b, harness.Bitonic, 64, reportFig7) }
func BenchmarkFig7cFFTP16(b *testing.B)     { benchPanel(b, harness.FFT, 16, reportFig7) }
func BenchmarkFig7dFFTP64(b *testing.B)     { benchPanel(b, harness.FFT, 64, reportFig7) }

// Figure 8: execution time distribution (P=64; small and large size).
func BenchmarkFig8aBitonicSmall(b *testing.B) {
	benchPanel(b, harness.Bitonic, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig8(b, r, r.PaperSizes[1])
	})
}
func BenchmarkFig8bBitonicLarge(b *testing.B) {
	benchPanel(b, harness.Bitonic, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig8(b, r, r.PaperSizes[0])
	})
}
func BenchmarkFig8cFFTSmall(b *testing.B) {
	benchPanel(b, harness.FFT, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig8(b, r, r.PaperSizes[1])
	})
}
func BenchmarkFig8dFFTLarge(b *testing.B) {
	benchPanel(b, harness.FFT, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig8(b, r, r.PaperSizes[0])
	})
}

// Figure 9: switch counts by type (P=64; small and large size).
func BenchmarkFig9aBitonicSmall(b *testing.B) {
	benchPanel(b, harness.Bitonic, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig9(b, r, r.PaperSizes[1])
	})
}
func BenchmarkFig9bBitonicLarge(b *testing.B) {
	benchPanel(b, harness.Bitonic, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig9(b, r, r.PaperSizes[0])
	})
}
func BenchmarkFig9cFFTSmall(b *testing.B) {
	benchPanel(b, harness.FFT, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig9(b, r, r.PaperSizes[1])
	})
}
func BenchmarkFig9dFFTLarge(b *testing.B) {
	benchPanel(b, harness.FFT, 64, func(b *testing.B, r *harness.SweepResult) {
		reportFig9(b, r, r.PaperSizes[0])
	})
}

// Ablation X-em4: EM-X by-passing DMA vs EM-4 EXU servicing.
func BenchmarkAblationServiceMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweepMu.Lock()
		sweepCache = map[string]*harness.SweepResult{}
		sweepMu.Unlock()
		bypass := panelSweep(b, harness.Bitonic, 16, proc.ServiceBypass, false)
		exu := panelSweep(b, harness.Bitonic, 16, proc.ServiceEXU, false)
		if i == b.N-1 {
			size := bypass.PaperSizes[0]
			h4 := bypass.ThreadIndex(4)
			mB := harness.MakespanSeconds(bypass.Runs[bypass.SizeIndex(size)][h4])
			mE := harness.MakespanSeconds(exu.Runs[exu.SizeIndex(size)][h4])
			b.ReportMetric(mE/mB, "em4SlowdownX")
		}
	}
}

// Ablation X-block: element reads vs block-read sends.
func BenchmarkAblationBlockRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweepMu.Lock()
		sweepCache = map[string]*harness.SweepResult{}
		sweepMu.Unlock()
		elem := panelSweep(b, harness.Bitonic, 16, proc.ServiceBypass, false)
		blk := panelSweep(b, harness.Bitonic, 16, proc.ServiceBypass, true)
		if i == b.N-1 {
			size := elem.PaperSizes[0]
			h4 := elem.ThreadIndex(4)
			cE := harness.MakespanSeconds(elem.Runs[elem.SizeIndex(size)][h4])
			cB := harness.MakespanSeconds(blk.Runs[blk.SizeIndex(size)][h4])
			b.ReportMetric(cE/cB, "blockSpeedupX")
		}
	}
}

// X-model: analytic model vs simulated kernel at the saturation point.
func BenchmarkAnalyticModel(b *testing.B) {
	cfg := core.DefaultConfig(16)
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 1 << 34
	model := analytic.FitFromConfig(cfg, 40)
	var eff float64
	for i := 0; i < b.N; i++ {
		_, e, err := analytic.RunKernel(cfg, analytic.KernelParams{H: 4, Reads: 80, R: 40})
		if err != nil {
			b.Fatal(err)
		}
		eff = e
	}
	b.ReportMetric(eff, "simEff")
	b.ReportMetric(model.Efficiency(4), "modelEff")
	b.ReportMetric(model.SaturationPoint(), "satPointN")
}

// T-lat: the in-text remote read latency measurement.
func BenchmarkRemoteReadLatency(b *testing.B) {
	var lat sim.Time
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(64)
		cfg.MemWords = 1 << 12
		lat = analytic.MeasureLatency(cfg)
	}
	b.ReportMetric(float64(lat), "cycles")
	b.ReportMetric(lat.Micros(), "us")
}

// Simulator throughput: simulated cycles and events per host second for
// the heaviest workload shape.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles, events float64
	for i := 0; i < b.N; i++ {
		run, err := harness.RunPoint(harness.PointSpec{
			Workload: harness.Bitonic, P: 64, SimN: 8192, PaperN: 8192, H: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += float64(run.Makespan)
		events += float64(run.SimEvents)
	}
	b.ReportMetric(cycles/b.Elapsed().Seconds(), "simCycles/s")
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/s")
}

// Guard: benchmark configurations must produce verifiable output.
func TestBenchConfigsVerify(t *testing.T) {
	for _, w := range []harness.Workload{harness.Bitonic, harness.FFT} {
		if _, err := harness.RunPoint(harness.PointSpec{
			Workload: w, P: 16, SimN: 1024, PaperN: 1024, H: 4, Seed: 1, Verify: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = metrics.SwitchRemoteRead
}

// Ablation X-sched: FIFO vs resume-first reply scheduling.
func BenchmarkAblationScheduling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		fifo, err := harness.RunPoint(harness.PointSpec{
			Workload: harness.Bitonic, P: 16, SimN: 2048, PaperN: 2048, H: 8, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		hi, err := harness.RunPoint(harness.PointSpec{
			Workload: harness.Bitonic, P: 16, SimN: 2048, PaperN: 2048, H: 8,
			ReplyHigh: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(hi.Makespan) / float64(fifo.Makespan)
	}
	b.ReportMetric(ratio, "resumeFirstVsFIFO")
}

// Extension X-irr: the irregular SpMV workload's overlap at the paper's
// thread-count optimum.
func BenchmarkIrregularSpMV(b *testing.B) {
	var e float64
	for i := 0; i < b.N; i++ {
		base, err := harness.RunPoint(harness.PointSpec{
			Workload: harness.SpMV, P: 16, SimN: 1024, PaperN: 1024, H: 1, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		r4, err := harness.RunPoint(harness.PointSpec{
			Workload: harness.SpMV, P: 16, SimN: 1024, PaperN: 1024, H: 4, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		e = metrics.Efficiency(base, r4)
	}
	b.ReportMetric(e, "spmvEffH4_pct")
}
