// Package emx is a from-scratch Go reproduction of "Fine-Grain
// Multithreading with the EM-X Multiprocessor" (Sohn et al., SPAA 1997):
// a deterministic cycle-level simulator of the EM-X distributed-memory
// machine — EMC-Y processors with by-passing DMA, a circular Omega
// network with two-word packets, hardware FIFO thread scheduling — plus
// the paper's multithreaded bitonic sorting and FFT workloads and a
// harness that regenerates every evaluation figure.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure panel at a
// reduced scale; cmd/emxbench produces the full series.
package emx
