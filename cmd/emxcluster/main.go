// Command emxcluster federates several emxd nodes behind one gateway
// speaking the same HTTP API. Requests are routed to their owning node
// by rendezvous hashing over the experiment's content identity, so the
// per-node result caches shard across the cluster instead of
// duplicating; node failures are absorbed by bounded retries, hedged
// attempts, and failover to the next-ranked peer. Because every node
// computes byte-identical results for a given run identity, failover is
// invisible to clients.
//
// Usage:
//
//	emxcluster -nodes http://a:8484,http://b:8484,http://c:8484
//	emxcluster -addr :9000 -nodes ... -hedge 500ms -local
//
// Endpoints (same shapes as emxd):
//
//	POST /v1/run     one simulation point, routed to its owner
//	POST /v1/figure  one figure panel, routed whole to one owner
//	POST /v1/profile one profiled point, routed with its run's owner
//	GET  /v1/status  cluster membership + routing counters
//	GET  /metrics    Prometheus text counters
//
// Point emxbench at the gateway — or directly at the node list — with
// -remote.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emx/internal/cluster"
	"emx/internal/harness"
	"emx/internal/labd/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, func(addr string, h http.Handler, g *cluster.Gateway, m *cluster.Membership) int {
		return serve(addr, h, m)
	}))
}

// run parses flags and hands the assembled gateway to start (the real
// main serves; tests substitute an in-process driver).
func run(args []string, stderr io.Writer, start func(addr string, h http.Handler, g *cluster.Gateway, m *cluster.Membership) int) int {
	fs := flag.NewFlagSet("emxcluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8483", "listen address")
		nodes   = fs.String("nodes", "", "comma-separated base URLs of member emxd nodes (required)")
		probe   = fs.Duration("probe", 5*time.Second, "health-probe interval (0 disables background probing)")
		timeout = fs.Duration("attempt-timeout", 0, "per-attempt request timeout (0: none)")
		retries = fs.Int("retries", 2, "additional attempts after a failed first one")
		hedge   = fs.Duration("hedge", 0, "hedge a second request if the owner is silent this long (0: off)")
		scale   = fs.Int("scale", harness.DefaultScale, "default scale-down factor; MUST match the nodes' -scale")
		seed    = fs.Int64("seed", 1, "default input seed; MUST match the nodes' -seed")
		local   = fs.Bool("local", false, "serve in-process when every node is unreachable")
		reps    = fs.Int("replicas", 1, "nodes' run-cache replication factor; failover tries that many ranked peers before recomputing")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: emxcluster -nodes http://a:8484,http://b:8484 [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	urls := splitNodes(*nodes)
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "emxcluster: -nodes is required (comma-separated emxd base URLs)")
		fs.Usage()
		return 2
	}
	for _, u := range urls {
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			fmt.Fprintf(stderr, "emxcluster: node %q: want an http:// or https:// base URL\n", u)
			return 2
		}
	}
	if *retries < 0 {
		fmt.Fprintf(stderr, "emxcluster: -retries must be >= 0, got %d\n", *retries)
		return 2
	}
	if *scale < 1 {
		fmt.Fprintf(stderr, "emxcluster: -scale must be >= 1, got %d\n", *scale)
		return 2
	}
	if *probe < 0 || *timeout < 0 || *hedge < 0 {
		fmt.Fprintln(stderr, "emxcluster: durations must be >= 0")
		return 2
	}
	if *reps < 1 {
		fmt.Fprintf(stderr, "emxcluster: -replicas must be >= 1, got %d\n", *reps)
		return 2
	}

	m := cluster.NewMembership(urls, cluster.MembershipOptions{ProbeInterval: *probe})
	copts := cluster.ClientOptions{
		AttemptTimeout: *timeout,
		Retries:        *retries,
		HedgeDelay:     *hedge,
		Replicas:       *reps,
	}
	if *retries == 0 {
		copts.Retries = -1 // ClientOptions uses -1 for explicit zero
	}
	var localSrv *service.Server
	if *local {
		localSrv = service.New(service.Options{Scale: *scale, Seed: *seed})
		defer localSrv.Close()
		copts.Local = localSrv.Handler()
	}
	g := cluster.NewGateway(m, cluster.GatewayOptions{
		Scale:  *scale,
		Seed:   *seed,
		Client: copts,
	})
	m.ProbeAll()
	m.Start()
	defer m.Close()

	return start(*addr, g.Handler(), g, m)
}

// splitNodes parses the -nodes list, trimming blanks and trailing
// slashes so "a, b," and "a,b" mean the same cluster.
func splitNodes(s string) []string {
	var urls []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			urls = append(urls, p)
		}
	}
	return urls
}

// serve runs the HTTP server until SIGINT/SIGTERM.
func serve(addr string, h http.Handler, m *cluster.Membership) int {
	httpSrv := &http.Server{Addr: addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("emxcluster: serving on %s (%d member nodes, %d healthy)",
		addr, len(m.Members()), len(m.Healthy()))

	select {
	case err := <-errc:
		log.Printf("emxcluster: %v", err)
		return 1
	case <-ctx.Done():
		log.Print("emxcluster: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("emxcluster: shutdown: %v", err)
		}
	}
	return 0
}
