package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"emx/internal/cluster"
	"emx/internal/labd/service"
)

// hugeScale clamps panel sizes to the minimum grid for fast tests.
const hugeScale = 1 << 20

// runGateway drives run() with a test starter that serves the gateway
// from an httptest server instead of binding a socket, returning the
// base URL to fn.
func runGateway(t *testing.T, args []string, fn func(base string)) (int, string) {
	t.Helper()
	var stderr bytes.Buffer
	code := run(args, &stderr, func(addr string, h http.Handler, g *cluster.Gateway, m *cluster.Membership) int {
		ts := httptest.NewServer(h)
		defer ts.Close()
		fn(ts.URL)
		return 0
	})
	return code, stderr.String()
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                      // -nodes required
		{"-nodes", " , "},       // blank list
		{"-nodes", "host:8484"}, // missing scheme
		{"-nodes", "ftp://h:1"}, // wrong scheme
		{"-nodes", "http://h:1", "-retries", "-1"},
		{"-nodes", "http://h:1", "-scale", "0"},
		{"-nodes", "http://h:1", "-probe", "-1s"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var stderr bytes.Buffer
		code := run(args, &stderr, func(string, http.Handler, *cluster.Gateway, *cluster.Membership) int {
			t.Errorf("args %v reached the server", args)
			return 0
		})
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
		if stderr.Len() == 0 {
			t.Errorf("args %v rejected silently", args)
		}
	}
}

func TestSplitNodes(t *testing.T) {
	got := splitNodes(" http://a:1/, ,http://b:2 ,")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("splitNodes = %v", got)
	}
}

// TestGatewayServesClusterAPI wires two real emxd nodes behind the CLI
// and checks the full surface: figures route and match a direct node,
// status reports the membership, metrics expose the counters.
func TestGatewayServesClusterAPI(t *testing.T) {
	srv1 := service.New(service.Options{Scale: hugeScale, Seed: 1})
	ts1 := httptest.NewServer(srv1.Handler())
	defer func() { ts1.Close(); srv1.Close() }()
	srv2 := service.New(service.Options{Scale: hugeScale, Seed: 1})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()

	body, _ := json.Marshal(service.FigureRequest{Fig: "6a", Scale: hugeScale, Seed: 1})
	direct, err := http.Post(ts1.URL+"/v1/figure", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(direct.Body)
	direct.Body.Close()

	args := []string{
		"-nodes", ts1.URL + "," + ts2.URL,
		"-probe", "0", "-scale", "1048576", "-local",
	}
	code, stderr := runGateway(t, args, func(base string) {
		resp, err := http.Post(base+"/v1/figure", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("figure via gateway: HTTP %d: %s", resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("gateway panel differs from direct node panel")
		}
		if n := resp.Header.Get(cluster.NodeHeader); n == "" {
			t.Error("gateway response missing node header")
		}

		sresp, err := http.Get(base + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		var st cluster.ClusterStatus
		if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if st.Members != 2 || st.Healthy != 2 || st.DefaultScale != hugeScale {
			t.Fatalf("cluster status %+v", st)
		}

		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		mb, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if !strings.Contains(string(mb), "emxcluster_attempts_total") {
			t.Error("gateway /metrics missing routing counters")
		}
	})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
}

// TestLocalFallbackFlag: with -local and every node dead, the gateway
// still answers by running in-process.
func TestLocalFallbackFlag(t *testing.T) {
	dead := httptest.NewServer(nil)
	dead.Close()

	body, _ := json.Marshal(service.FigureRequest{Fig: "6a", Scale: hugeScale, Seed: 1})
	args := []string{
		"-nodes", dead.URL,
		"-probe", "0", "-retries", "0", "-scale", "1048576", "-local",
	}
	code, stderr := runGateway(t, args, func(base string) {
		resp, err := http.Post(base+"/v1/figure", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("local fallback: HTTP %d: %s", resp.StatusCode, b)
		}
		if n := resp.Header.Get(cluster.NodeHeader); n != cluster.LocalNode {
			t.Fatalf("answered by %q, want %q", n, cluster.LocalNode)
		}
	})
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
}
