// Command emxvet runs the repository's determinism and hot-path
// analyzers (internal/lint) over Go packages, go-vet style.
//
// Usage:
//
//	emxvet [-only name,name] [-json] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when the checked packages are clean, 1 when findings
// were reported, and 2 when the packages could not be loaded (which
// includes packages that do not compile).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"emx/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("emxvet", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: emxvet [-only name,name] [-json] [-list] [packages]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "emxvet: unknown analyzer %q (use -list to see available analyzers)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emxvet: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "emxvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "emxvet: %d findings\n", len(diags))
		}
		return 1
	}
	return 0
}
