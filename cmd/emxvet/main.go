// Command emxvet runs the repository's determinism, hot-path, and
// shard-safety analyzers (internal/lint) over Go packages, go-vet
// style.
//
// Usage:
//
//	emxvet [-only name,name] [-json] [-list] [-graph] [-explain] [-baseline file] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when the checked packages are clean, 1 when findings
// were reported, and 2 when the packages could not be loaded (which
// includes packages that do not compile).
//
// -graph dumps the interprocedural call graph the v2 analyzers reason
// over, one "caller -> callee [kind] @ pos" line per edge, and exits.
// -explain attaches each finding's related positions (propagation
// chains, first conflicting access) to the text output; JSON output
// always carries them. -baseline loads a saved `emxvet -json` run and
// suppresses the findings recorded in it, failing only on new ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"emx/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("emxvet", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	list := fs.Bool("list", false, "list available analyzers and exit")
	graph := fs.Bool("graph", false, "dump the call graph of the loaded packages and exit")
	explain := fs.Bool("explain", false, "print each finding's related positions (chains) in text output")
	baselinePath := fs.String("baseline", "", "suppress findings recorded in this saved `emxvet -json` output")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: emxvet [-only name,name] [-json] [-list] [-graph] [-explain] [-baseline file] [packages]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "emxvet: unknown analyzer %q (use -list to see available analyzers)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	var baseline *lint.Baseline
	if *baselinePath != "" {
		var err error
		baseline, err = lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "emxvet: %v\n", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emxvet: %v\n", err)
		return 2
	}
	prog := lint.NewProgram(pkgs)

	if *graph {
		if len(pkgs) > 0 {
			for _, line := range prog.Graph().DumpLines(pkgs[0].Fset) {
				fmt.Println(line)
			}
		}
		return 0
	}

	diags := lint.RunProgram(prog, analyzers)
	suppressed := 0
	if baseline != nil {
		diags, suppressed = baseline.Filter(diags)
	}
	if diags == nil {
		diags = []lint.Diagnostic{} // JSON output stays an array, never null
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "emxvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *explain {
				for _, r := range d.Related {
					fmt.Printf("\t%s: %s\n", r.Pos, r.Message)
				}
			}
		}
	}
	if len(diags) > 0 {
		if !*asJSON {
			fmt.Fprintf(os.Stderr, "emxvet: %d findings", len(diags))
			if suppressed > 0 {
				fmt.Fprintf(os.Stderr, " (%d more baselined)", suppressed)
			}
			fmt.Fprintln(os.Stderr)
		}
		return 1
	}
	return 0
}
