package main

import "testing"

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{"emx/internal/sim"}, 0},
		{"fixture has findings", []string{"-only", "detsource", "emx/internal/lint/testdata/src/detsource_crit"}, 1},
		{"findings as json", []string{"-json", "-only", "detsource", "emx/internal/lint/testdata/src/detsource_crit"}, 1},
		{"unknown analyzer", []string{"-only", "nosuch", "emx/internal/sim"}, 2},
		{"unloadable pattern", []string{"emx/no/such/package"}, 2},
		{"list analyzers", []string{"-list"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args); got != c.want {
				t.Errorf("run(%v) = %d, want %d", c.args, got, c.want)
			}
		})
	}
}
