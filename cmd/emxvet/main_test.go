package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emx/internal/lint"
)

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{"emx/internal/sim"}, 0},
		{"fixture has findings", []string{"-only", "detsource", "emx/internal/lint/testdata/src/detsource_crit"}, 1},
		{"findings as json", []string{"-json", "-only", "detsource", "emx/internal/lint/testdata/src/detsource_crit"}, 1},
		{"interprocedural fixture has findings", []string{"-only", "shardaffinity", "emx/internal/lint/testdata/src/shardaffinity"}, 1},
		{"unknown analyzer", []string{"-only", "nosuch", "emx/internal/sim"}, 2},
		{"unloadable pattern", []string{"emx/no/such/package"}, 2},
		{"missing baseline file", []string{"-baseline", "no/such/baseline.json", "emx/internal/sim"}, 2},
		{"list analyzers", []string{"-list"}, 0},
		{"graph dump", []string{"-graph", "emx/internal/lint/testdata/src/callgraph"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args); got != c.want {
				t.Errorf("run(%v) = %d, want %d", c.args, got, c.want)
			}
		})
	}
}

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	fn()
	w.Close()
	return <-done
}

func TestGraphDumpOutput(t *testing.T) {
	out := capture(t, func() {
		if got := run([]string{"-graph", "emx/internal/lint/testdata/src/callgraph"}); got != 0 {
			t.Errorf("-graph exit = %d, want 0", got)
		}
	})
	for _, frag := range []string{"[direct]", "[iface]", "[closure]", "[ref]", ".direct -> "} {
		if !strings.Contains(out, frag) {
			t.Errorf("-graph output missing %q:\n%s", frag, out)
		}
	}
}

func TestExplainPrintsChains(t *testing.T) {
	out := capture(t, func() {
		if got := run([]string{"-explain", "-only", "hotpropagate", "emx/internal/lint/testdata/src/hotpropagate"}); got != 1 {
			t.Errorf("-explain exit = %d, want 1", got)
		}
	})
	if !strings.Contains(out, "hot via") {
		t.Errorf("expected a propagation-chain suffix in output:\n%s", out)
	}
	if !strings.Contains(out, "\t") {
		t.Errorf("-explain should print indented related positions:\n%s", out)
	}
}

// TestBaselineRoundTrip saves a -json run as the baseline and checks it
// suppresses exactly those findings: same run exits 0, an empty
// baseline leaves them fatal.
func TestBaselineRoundTrip(t *testing.T) {
	target := "emx/internal/lint/testdata/src/hotpropagate"
	saved := capture(t, func() {
		if got := run([]string{"-json", "-only", "hotpropagate", target}); got != 1 {
			t.Fatalf("seed run exit = %d, want 1", got)
		}
	})

	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(saved), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-only", "hotpropagate", "-baseline", baseline, target}); got != 0 {
		t.Errorf("baselined run exit = %d, want 0", got)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-only", "hotpropagate", "-baseline", empty, target}); got != 1 {
		t.Errorf("empty-baseline run exit = %d, want 1", got)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-only", "hotpropagate", "-baseline", bad, target}); got != 2 {
		t.Errorf("malformed-baseline run exit = %d, want 2", got)
	}
}

// TestBaselinePackageKey pins the package component of the baseline
// key: two fixture packages produce findings with identical analyzer,
// file basename, and message, so only the import path tells them
// apart. A baseline saved from one package must suppress that package
// alone — and a legacy baseline whose rows predate the package field
// must keep matching findings from any package.
func TestBaselinePackageKey(t *testing.T) {
	alpha := "emx/internal/lint/testdata/src/baselinetwin/alpha"
	beta := "emx/internal/lint/testdata/src/baselinetwin/beta"
	saved := capture(t, func() {
		if got := run([]string{"-json", "-only", "hotalloc", alpha}); got != 1 {
			t.Fatalf("seed run on alpha exit = %d, want 1", got)
		}
	})
	if !strings.Contains(saved, `"package": "`+alpha+`"`) {
		t.Fatalf("saved run carries no package field:\n%s", saved)
	}

	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(saved), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-only", "hotalloc", "-baseline", baseline, alpha}); got != 0 {
		t.Errorf("alpha's baseline should suppress alpha, exit = %d", got)
	}
	if got := run([]string{"-only", "hotalloc", "-baseline", baseline, beta}); got != 1 {
		t.Errorf("alpha's baseline must NOT suppress beta's identical-looking finding, exit = %d", got)
	}

	// Strip the package field to simulate a baseline saved before
	// diagnostics carried one: legacy rows match any package.
	var diags []lint.Diagnostic
	if err := json.Unmarshal([]byte(saved), &diags); err != nil {
		t.Fatal(err)
	}
	for i := range diags {
		diags[i].Package = ""
	}
	stripped, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, stripped, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-only", "hotalloc", "-baseline", legacy, alpha}); got != 0 {
		t.Errorf("legacy baseline should still suppress alpha, exit = %d", got)
	}
	if got := run([]string{"-only", "hotalloc", "-baseline", legacy, beta}); got != 0 {
		t.Errorf("legacy baseline should suppress beta too (no package to pin), exit = %d", got)
	}
}

// TestBaselineIsLineIndependent shifts every position in the saved
// baseline: matching must still work, because baselines key on
// (analyzer, file basename, message), not position — a baselined
// finding survives unrelated edits above it.
func TestBaselineIsLineIndependent(t *testing.T) {
	target := "emx/internal/lint/testdata/src/hotpropagate"
	saved := capture(t, func() {
		run([]string{"-json", "-only", "hotpropagate", target})
	})
	if !strings.Contains(saved, `"Line": `) {
		t.Fatalf("saved run carries no Line fields:\n%s", saved)
	}
	shifted := strings.ReplaceAll(saved, `"Line": `, `"Line": 9`)
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(shifted), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := run([]string{"-only", "hotpropagate", "-baseline", baseline, target}); got != 0 {
		t.Errorf("line-shifted baseline should still suppress, exit = %d", got)
	}
}
