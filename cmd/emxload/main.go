// Command emxload is a deterministic load generator for the
// emxd/emxcluster serving path. It synthesizes a seeded mix of
// /v1/run, /v1/figure, and /v1/profile requests, drives them at an
// in-process lab cluster (default) or external nodes, and reports
// per-endpoint SLOs, failover behaviour, and a byte-deterministic
// traffic digest. An optional chaos schedule kills, delays, and
// restarts lab nodes mid-run to exercise failover under load.
//
// Usage:
//
//	emxload -seed 42                              # closed loop, 3-node lab
//	emxload -mode open -rate 80 -requests 200     # open loop at 80 req/s
//	emxload -mode ramp -ramp-start 20 -ramp-steps 5
//	emxload -chaos "kill:1@10,restart:1@40" -format json
//	emxload -nodes http://a:8484,http://b:8484    # external cluster
//
// Reports are reproducible: the same seed produces the same request
// multiset and (when every request succeeds) a byte-identical report
// outside the single "host" key, which gathers everything
// timing-dependent.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"emx/internal/cluster"
	"emx/internal/labd"
	"emx/internal/labd/service"
	"emx/internal/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emxload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "traffic seed: same seed, same request multiset")
		mode     = fs.String("mode", "closed", "workload model: closed, open, or ramp")
		requests = fs.Int("requests", 64, "request count (per ramp segment in ramp mode)")
		clients  = fs.Int("clients", 4, "closed-loop concurrent clients")
		rate     = fs.Float64("rate", 50, "open-loop offered load (req/s)")
		deadline = fs.Duration("deadline", 0, "per-request deadline propagated to the serving path (0: none)")
		mixStr   = fs.String("mix", load.DefaultMix.String(), "endpoint mix, e.g. run=8,figure=1,profile=1")
		local    = fs.Int("local", 3, "in-process lab node count (ignored with -nodes)")
		nodesStr = fs.String("nodes", "", "comma-separated external emxd base URLs (default: in-process lab)")
		scale    = fs.Int("scale", 1<<20, "simulation scale stamped into every request")
		runSeed  = fs.Int64("run-seed", 1, "simulation input seed stamped into every request")
		chaosStr = fs.String("chaos", "", `fault schedule, e.g. "kill:1@10,restart:1@40" or "kill:owner@10" or JSON (lab only)`)
		replicas = fs.Int("replicas", 1, "cache replication factor across lab nodes (1: off; lab only)")
		format   = fs.String("format", "text", "report format: text or json")
		hedge    = fs.Duration("hedge", 0, "hedge a second attempt after this delay (0: off)")
		retries  = fs.Int("retries", 2, "failover retries per request")
		quiet    = fs.Bool("quiet", false, "suppress progress lines")

		rampStart = fs.Float64("ramp-start", 10, "ramp mode: first offered rate (req/s)")
		rampStep  = fs.Float64("ramp-step", 10, "ramp mode: offered-rate increment per segment")
		rampSteps = fs.Int("ramp-steps", 4, "ramp mode: segment count")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "emxload: unknown format %q (want text or json)\n", *format)
		return 2
	}
	mix, err := load.ParseMix(*mixStr)
	if err != nil {
		fmt.Fprintf(stderr, "emxload: %v\n", err)
		return 2
	}
	chaos, err := load.ParseSchedule(*chaosStr)
	if err != nil {
		fmt.Fprintf(stderr, "emxload: %v\n", err)
		return 2
	}

	// Resolve the target: an in-process lab unless -nodes names an
	// external cluster. Chaos needs the lab — faults are injected by
	// reaching into the nodes, which only works in-process.
	var lab *load.Lab
	var urls []string
	if *nodesStr != "" {
		if len(chaos) > 0 {
			fmt.Fprintln(stderr, "emxload: -chaos requires the in-process lab (drop -nodes)")
			return 2
		}
		if *replicas > 1 {
			fmt.Fprintln(stderr, "emxload: -replicas requires the in-process lab (drop -nodes)")
			return 2
		}
		urls = strings.Split(*nodesStr, ",")
	} else {
		lab, err = load.NewLab(*local, service.Options{
			Sched:       labd.Options{Workers: 2, QueueSize: 256},
			Replication: service.ReplicationOptions{Replicas: *replicas},
		})
		if err != nil {
			fmt.Fprintf(stderr, "emxload: %v\n", err)
			return 1
		}
		defer lab.Close()
		urls = lab.URLs()
	}

	members := cluster.NewMembership(urls, cluster.MembershipOptions{})
	defer members.Close()
	members.ProbeAll()
	client := cluster.NewClient(members, cluster.ClientOptions{
		Retries:    *retries,
		HedgeDelay: *hedge,
		Replicas:   *replicas,
	})

	logf := func(f string, a ...any) { fmt.Fprintf(stderr, "emxload: "+f+"\n", a...) }
	if *quiet {
		logf = nil
	}
	rep, err := load.Run(client, lab, load.Options{
		Mode:      *mode,
		Requests:  *requests,
		Clients:   *clients,
		Rate:      *rate,
		Deadline:  *deadline,
		Seed:      *seed,
		Space:     load.DefaultSpace(*scale, *runSeed),
		Mix:       mix,
		Chaos:     chaos,
		RampStart: *rampStart,
		RampStep:  *rampStep,
		RampSteps: *rampSteps,
		Logf:      logf,
		Probe:     func() { members.ProbeAll() },
	})
	if err != nil {
		fmt.Fprintf(stderr, "emxload: %v\n", err)
		return 1
	}
	if *format == "json" {
		err = rep.WriteJSON(stdout)
	} else {
		err = rep.WriteText(stdout)
	}
	if err != nil {
		fmt.Fprintf(stderr, "emxload: writing report: %v\n", err)
		return 1
	}
	if rep.Traffic.Errors > 0 {
		return 1
	}
	return 0
}
