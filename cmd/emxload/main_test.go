package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSeedDeterminism is the CLI-level acceptance check: two
// invocations with the same seed produce byte-identical JSON reports
// once the single timing-dependent "host" block is dropped.
func TestRunSeedDeterminism(t *testing.T) {
	invoke := func() []byte {
		var out, errb bytes.Buffer
		code := run([]string{
			"-seed", "42", "-requests", "20", "-clients", "4",
			"-local", "3", "-quiet", "-format", "json",
		}, &out, &errb)
		if code != 0 {
			t.Fatalf("emxload exited %d: %s", code, errb.String())
		}
		return out.Bytes()
	}
	canon := func(raw []byte) string {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("report is not JSON: %v", err)
		}
		if m["schema"] != "emxload/v1" {
			t.Fatalf("schema = %v", m["schema"])
		}
		if _, ok := m["host"].(map[string]any); !ok {
			t.Fatal("report missing host block")
		}
		delete(m, "host")
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	a, b := canon(invoke()), canon(invoke())
	if a != b {
		t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
	}
}

// TestRunChaosSmoke mirrors the CI smoke step: a short closed-loop run
// with a scripted node kill and restart must finish with zero
// client-visible errors and a parseable report.
func TestRunChaosSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-seed", "42", "-requests", "24", "-clients", "2", "-local", "3",
		"-chaos", "kill:1@6,restart:1@18", "-quiet", "-format", "json",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("chaos smoke exited %d: %s", code, errb.String())
	}
	var rep struct {
		Traffic struct {
			Issued uint64 `json:"issued"`
			Errors uint64 `json:"errors"`
		} `json:"traffic"`
		Chaos struct {
			Fired int `json:"fired"`
		} `json:"chaos"`
		Host struct {
			SLO map[string]any `json:"slo"`
		} `json:"host"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Traffic.Issued != 24 || rep.Traffic.Errors != 0 {
		t.Fatalf("traffic: %+v", rep.Traffic)
	}
	if rep.Chaos.Fired != 2 {
		t.Fatalf("chaos fired %d steps, want 2", rep.Chaos.Fired)
	}
	if len(rep.Host.SLO) == 0 {
		t.Fatal("SLO block missing")
	}
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-format", "xml"},
		{"-mix", "jog=1"},
		{"-chaos", "explode:0@1"},
		{"-nodes", "http://localhost:1", "-chaos", "kill:0@1"},
		{"-mode", "sideways"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
	}
}

func TestRunTextReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-seed", "7", "-requests", "8", "-local", "2", "-quiet"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{"emxload closed seed=7", "traffic:", "host:", "client:"} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
}
