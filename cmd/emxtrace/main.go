// Command emxtrace runs a small multithreaded workload with the tracer
// attached and renders the per-thread timeline — the same picture as the
// paper's Figure 4 (bitonic sorting on two processors) and Figure 5
// (FFT iteration 0).
//
// Usage:
//
//	emxtrace                           # Figure 4: bitonic, P=2, h=2, 8 elements
//	emxtrace -workload fft -p 4 -n 16  # Figure 5: FFT iteration structure
package main

import (
	"flag"
	"fmt"
	"os"

	"emx/internal/apps/bitonic"
	"emx/internal/apps/fft"
	"emx/internal/apps/spmv"
	"emx/internal/core"
	"emx/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "bitonic", "workload: bitonic, fft, or spmv")
		p        = flag.Int("p", 2, "number of processors")
		n        = flag.Int("n", 8, "problem size")
		h        = flag.Int("h", 2, "threads per PE")
		width    = flag.Int("width", 100, "timeline width in columns")
		seed     = flag.Int64("seed", 7, "input seed")
	)
	flag.Parse()

	cfg := core.DefaultConfig(*p)
	cfg.MaxCycles = 1 << 32

	// The workloads construct their own machine, so run them through a
	// thin indirection that lets us install the tracer first.
	rec := &trace.Recorder{}
	var err error
	switch *workload {
	case "bitonic":
		err = bitonic.RunTraced(cfg, bitonic.Params{N: *n, H: *h, Seed: *seed}, rec.Record)
	case "fft":
		err = fft.RunTraced(cfg, fft.Params{N: *n, H: *h, Seed: *seed}, rec.Record)
	case "spmv":
		err = spmv.RunTraced(cfg, spmv.Params{N: *n, H: *h, Seed: *seed}, rec.Record)
	default:
		fmt.Fprintf(os.Stderr, "emxtrace: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "emxtrace:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: P=%d, n=%d, h=%d — thread timelines (cf. paper Figures 4/5)\n\n",
		*workload, *p, *n, *h)
	fmt.Print(rec.Gantt(*width))
	fmt.Println()
	fmt.Print(rec.Summary())
}
