// Command emxtrace runs a small multithreaded workload with the tracer
// attached and renders the per-thread timeline — the same picture as the
// paper's Figure 4 (bitonic sorting on two processors) and Figure 5
// (FFT iteration 0).
//
// Usage:
//
//	emxtrace                           # Figure 4: bitonic, P=2, h=2, 8 elements
//	emxtrace -workload fft -p 4 -n 16  # Figure 5: FFT iteration structure
//	emxtrace -format perfetto > fig4.trace.json   # open in ui.perfetto.dev
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"emx/internal/apps/bitonic"
	"emx/internal/apps/fft"
	"emx/internal/apps/spmv"
	"emx/internal/core"
	"emx/internal/obs"
	"emx/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emxtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "bitonic", "workload: bitonic, fft, or spmv")
		p        = fs.Int("p", 2, "number of processors")
		n        = fs.Int("n", 8, "problem size")
		h        = fs.Int("h", 2, "threads per PE")
		width    = fs.Int("width", 100, "timeline width in columns")
		seed     = fs.Int64("seed", 7, "input seed")
		format   = fs.String("format", "gantt", "output: gantt (Figure-4 ASCII) or perfetto (trace-event JSON)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *p < 1 || *n < 1 || *h < 1 {
		fmt.Fprintf(stderr, "emxtrace: -p, -n, and -h must be >= 1 (got p=%d n=%d h=%d)\n", *p, *n, *h)
		return 2
	}
	if *width < 1 {
		fmt.Fprintf(stderr, "emxtrace: -width must be >= 1, got %d\n", *width)
		return 2
	}
	if *format != "gantt" && *format != "perfetto" {
		fmt.Fprintf(stderr, "emxtrace: unknown format %q (want gantt or perfetto)\n", *format)
		return 2
	}

	cfg := core.DefaultConfig(*p)
	cfg.MaxCycles = 1 << 32

	// The workloads construct their own machine, so run them through a
	// thin indirection that lets us install the tracers first. The
	// lifecycle recorder feeds the ASCII timeline; the obs tracer carries
	// the richer event stream the Perfetto export renders.
	rec := trace.NewRecorder(0)
	var tr *obs.Tracer
	if *format == "perfetto" {
		tr = obs.New(obs.Options{P: *p})
	}
	var err error
	switch *workload {
	case "bitonic":
		_, err = bitonic.Run(cfg, bitonic.Params{N: *n, H: *h, Seed: *seed, Tracer: rec.Record, Obs: tr})
	case "fft":
		_, err = fft.Run(cfg, fft.Params{N: *n, H: *h, Seed: *seed, Tracer: rec.Record, Obs: tr})
	case "spmv":
		_, err = spmv.Run(cfg, spmv.Params{N: *n, H: *h, Seed: *seed, Tracer: rec.Record, Obs: tr})
	default:
		fmt.Fprintf(stderr, "emxtrace: unknown workload %q (want bitonic, fft, or spmv)\n", *workload)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "emxtrace:", err)
		return 1
	}

	if tr != nil {
		label := fmt.Sprintf("%s P=%d n=%d h=%d", *workload, *p, *n, *h)
		tw := obs.NewTraceWriter(stdout)
		obs.AppendTrace(tw, 1, label, tr.Profile(), tr.Events(), tr.Names())
		if err := tw.Close(); err != nil {
			fmt.Fprintln(stderr, "emxtrace:", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "%s: P=%d, n=%d, h=%d — thread timelines (cf. paper Figures 4/5)\n\n",
		*workload, *p, *n, *h)
	fmt.Fprint(stdout, rec.Gantt(*width))
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, rec.Summary())
	return 0
}
