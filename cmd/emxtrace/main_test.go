package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// goldenFigure4 is the complete default output — the paper's Figure 4
// picture (bitonic, P=2, h=2, 8 elements, seed 7). The simulator is
// deterministic, so this is byte-exact; a diff here means the machine
// timing changed, which is a simulator change, not noise.
const goldenFigure4 = `bitonic: P=2, n=8, h=2 — thread timelines (cf. paper Figures 4/5)

time: 0 .. 326 cycles (16.30 us), one column = 3.3 cycles
PE0 sort-t0 |   ==============================..................=======.........=======......==========.........=|
PE0 sort-t1 |                                     =....======............====............=................=....= |
PE1 sort-t0 |   ==============================..................=======.........=======......====...............=|
PE1 sort-t1 |                                     =....======............====............=..........=======....= |
legend: '=' running   '.' suspended/queued   ' ' inactive

PE0: 2 starts, 9 resumes, 4 reads, 5 yields, 2 ends
PE1: 2 starts, 9 resumes, 4 reads, 5 yields, 2 ends
`

func TestDefaultFigure4Golden(t *testing.T) {
	code, stdout, stderr := runCLI(t)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
	if stdout != goldenFigure4 {
		t.Fatalf("default timeline drifted from the golden Figure 4 output:\n--- got ---\n%s\n--- want ---\n%s", stdout, goldenFigure4)
	}
}

func TestTimelineIsDeterministic(t *testing.T) {
	_, first, _ := runCLI(t, "-workload", "fft", "-p", "4", "-n", "16")
	_, second, _ := runCLI(t, "-workload", "fft", "-p", "4", "-n", "16")
	if first == "" || first != second {
		t.Fatal("fft timeline not reproducible across runs")
	}
	if !strings.Contains(first, "fft: P=4, n=16, h=2") {
		t.Fatalf("header missing:\n%s", first)
	}
}

func TestEveryWorkloadTraces(t *testing.T) {
	for _, w := range []string{"bitonic", "fft", "spmv"} {
		code, stdout, stderr := runCLI(t, "-workload", w, "-n", "16", "-width", "40")
		if code != 0 {
			t.Errorf("%s: exit %d:\n%s", w, code, stderr)
			continue
		}
		for _, want := range []string{"legend:", "PE0", "starts", "one column"} {
			if !strings.Contains(stdout, want) {
				t.Errorf("%s output missing %q:\n%s", w, want, stdout)
			}
		}
	}
}

func TestInvalidFlagValuesExitNonZero(t *testing.T) {
	cases := [][]string{
		{"-workload", "quicksort"},
		{"-p", "0"},
		{"-n", "0"},
		{"-h", "-1"},
		{"-width", "0"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		code, stdout, stderr := runCLI(t, args...)
		if code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
		if stdout != "" {
			t.Errorf("args %v wrote to stdout despite failing:\n%s", args, stdout)
		}
		if stderr == "" {
			t.Errorf("args %v rejected silently", args)
		}
	}
}

func TestUnknownWorkloadMessage(t *testing.T) {
	_, _, stderr := runCLI(t, "-workload", "quicksort")
	if !strings.Contains(stderr, `unknown workload "quicksort"`) ||
		!strings.Contains(stderr, "bitonic") {
		t.Fatalf("error must echo the bad value and list workloads:\n%s", stderr)
	}
}

// TestPerfettoFormat: -format perfetto emits a valid trace-event JSON
// document for the same deterministic run, byte-identical across
// invocations.
func TestPerfettoFormat(t *testing.T) {
	code, first, stderr := runCLI(t, "-format", "perfetto")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(first), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("bad trace document: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	if !strings.Contains(first, "bitonic P=2 n=8 h=2") {
		t.Error("trace missing the run label in process names")
	}
	_, second, _ := runCLI(t, "-format", "perfetto")
	if first != second {
		t.Fatal("perfetto trace not byte-identical across runs")
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-format", "svg")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if stdout != "" {
		t.Fatalf("wrote stdout despite failing:\n%s", stdout)
	}
	if !strings.Contains(stderr, `unknown format "svg"`) {
		t.Fatalf("error must echo the bad format:\n%s", stderr)
	}
}
