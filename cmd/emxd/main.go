// Command emxd serves the reproduction's experiments over HTTP: an
// experiment daemon with content-addressed run caching, in-flight
// request coalescing, and a bounded simulator worker pool (see
// internal/labd). Identical experiment requests — from any number of
// clients — execute at most once and are then served from cache.
//
// Usage:
//
//	emxd                          # serve on :8484 with defaults
//	emxd -addr :9000 -workers 8 -queue 2048 -cache 1024
//
// Endpoints:
//
//	POST /v1/run     one simulation point
//	POST /v1/figure  one figure panel (6a-9d, ablations, ...)
//	POST /v1/profile one point with the emxprof tracer attached
//	GET  /v1/status  scheduler/cache state
//	GET  /metrics    Prometheus text counters
//
// Point emxbench at a running daemon with -remote http://host:8484.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"emx/internal/harness"
	"emx/internal/labd"
	"emx/internal/labd/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8484", "listen address")
		workers = flag.Int("workers", 0, "simulator worker pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 1024, "pending-run queue bound (full queue rejects with 503)")
		cache   = flag.Int("cache", 512, "LRU result cache bound in entries")
		scale   = flag.Int("scale", harness.DefaultScale, "default scale-down factor for requests that omit one")
		seed    = flag.Int64("seed", 1, "default input generator seed")
		shards  = flag.Int("shards", 0, "default engine shards per simulation (0 = auto, 1 = single engine)")

		replicas = flag.Int("replicas", 1, "run-cache replication factor across the peer set (1 = off)")
		self     = flag.String("self", "", "this node's base URL as peers address it (required with -replicas > 1)")
		peersStr = flag.String("peers", "", "comma-separated peer base URLs, including -self (required with -replicas > 1)")
	)
	flag.Parse()
	if *queue < 1 || *cache < 1 || *scale < 1 {
		fmt.Fprintln(os.Stderr, "emxd: -queue, -cache, and -scale must be >= 1")
		os.Exit(2)
	}
	if *workers < 0 {
		fmt.Fprintln(os.Stderr, "emxd: -workers must be >= 0")
		os.Exit(2)
	}
	if *shards < 0 || (*shards > 1 && *shards&(*shards-1) != 0) {
		fmt.Fprintln(os.Stderr, "emxd: -shards must be 0, 1, or a power of two")
		os.Exit(2)
	}
	var peers []string
	if *peersStr != "" {
		peers = strings.Split(*peersStr, ",")
	}
	if *replicas > 1 && (*self == "" || len(peers) < 2) {
		fmt.Fprintln(os.Stderr, "emxd: -replicas > 1 needs -self and at least two -peers")
		os.Exit(2)
	}

	srv := service.New(service.Options{
		Scale:  *scale,
		Seed:   *seed,
		Shards: *shards,
		Sched:  labd.Options{Workers: *workers, QueueSize: *queue, CacheSize: *cache},
		Replication: service.ReplicationOptions{
			Replicas: *replicas,
			Self:     *self,
			Peers:    peers,
		},
	})
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("emxd: serving on %s (workers=%d queue=%d cache=%d scale=%d)",
		*addr, srv.Scheduler().Stats().Workers, *queue, *cache, *scale)

	select {
	case err := <-errc:
		log.Fatalf("emxd: %v", err)
	case <-ctx.Done():
		log.Print("emxd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("emxd: shutdown: %v", err)
		}
	}
}
