// Command emxprof is the cycle-accounting profiler for the simulated
// EM-X: it runs a workload with the obs tracer attached and renders
// where every processor's cycles went — run, switch, spill, service,
// idle — with switch counts decomposed by cause, the same accounting
// behind the paper's Figures 8-11.
//
// Profiling is observation-only: a profiled run is cycle-identical to an
// unprofiled one, and every output is byte-identical across -workers
// settings.
//
// Usage:
//
//	emxprof -workload bitonic -p 2 -n 8 -h 2 -seed 7   # one point, text report
//	emxprof -fig 6a -workers 8                          # a whole panel, merged
//	emxprof -fig 6a -format perfetto -o 6a.trace.json   # open in ui.perfetto.dev
//	emxprof -workload fft -p 16 -n 4096 -h 8 -format json -o fft.prof
//	emxprof -diff a.prof b.prof                         # compare two profiles
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"emx/internal/harness"
	"emx/internal/labd"
	"emx/internal/obs"
	"emx/internal/proc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emxprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload = fs.String("workload", "bitonic", "workload for single-point mode: bitonic, fft, or spmv")
		p        = fs.Int("p", 2, "number of processors")
		n        = fs.Int("n", 8, "problem size (simulated elements)")
		h        = fs.Int("h", 2, "threads per PE")
		seed     = fs.Int64("seed", 7, "input seed")
		mode     = fs.String("mode", "bypass", "packet service mode: bypass (EM-X) or exu (EM-4)")
		fig      = fs.String("fig", "", "profile a whole figure panel instead of one point (see emxbench)")
		scale    = fs.Int("scale", harness.DefaultScale, "panel mode: divide the paper's problem sizes by this factor")
		workers  = fs.Int("workers", 0, "panel mode: parallel simulations (0 = GOMAXPROCS)")
		shards   = fs.Int("shards", 0, "engine shards per simulation (0 = auto, 1 = single engine)")
		format   = fs.String("format", "report", "output: report, json, or perfetto")
		out      = fs.String("o", "", "write output to this file (default stdout)")
		slice    = fs.Int64("slice", 0, "add whole-machine time slices of this many cycles to the profile")
		capacity = fs.Int("capacity", 0, "per-point event ring capacity (0 = default)")
		diff     = fs.Bool("diff", false, "compare two profile JSON files given as arguments")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: emxprof [flags]")
		fmt.Fprintln(stderr, "       emxprof -diff a.prof b.prof")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dst := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "emxprof:", err)
			return 1
		}
		defer f.Close()
		dst = f
	}

	if *diff {
		return runDiff(fs.Args(), dst, stderr)
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "emxprof: unexpected arguments %q (file arguments are only valid with -diff)\n", fs.Args())
		return 2
	}
	*format = strings.ToLower(*format)
	switch *format {
	case "report", "json", "perfetto":
	default:
		fmt.Fprintf(stderr, "emxprof: unknown format %q (want report, json, or perfetto)\n", *format)
		return 2
	}
	if *slice < 0 {
		fmt.Fprintf(stderr, "emxprof: -slice must be >= 0, got %d\n", *slice)
		return 2
	}
	if *shards < 0 {
		fmt.Fprintf(stderr, "emxprof: -shards must be >= 0, got %d\n", *shards)
		return 2
	}
	if *shards > 1 && *shards&(*shards-1) != 0 {
		fmt.Fprintf(stderr, "emxprof: -shards must be a power of two, got %d\n", *shards)
		return 2
	}
	opts := harness.ObsOptions{Capacity: *capacity, SliceCycles: *slice}

	if *fig != "" {
		return runPanel(*fig, *scale, *seed, *workers, *shards, opts, *format, dst, stderr)
	}
	return runPoint(*workload, *p, *n, *h, *seed, *mode, *shards, opts, *format, dst, stderr)
}

// runPoint profiles one directly-specified simulation point.
func runPoint(workload string, p, n, h int, seed int64, mode string, shards int, opts harness.ObsOptions, format string, dst io.Writer, stderr io.Writer) int {
	w, err := harness.ParseWorkload(strings.ToLower(workload))
	if err != nil {
		fmt.Fprintln(stderr, "emxprof:", err)
		return 2
	}
	if p < 1 || n < 1 || h < 1 {
		fmt.Fprintf(stderr, "emxprof: -p, -n, and -h must be >= 1 (got p=%d n=%d h=%d)\n", p, n, h)
		return 2
	}
	var svc proc.ServiceMode
	switch strings.ToLower(mode) {
	case "bypass":
		svc = proc.ServiceBypass
	case "exu", "em4", "em-4":
		svc = proc.ServiceEXU
	default:
		fmt.Fprintf(stderr, "emxprof: unknown service mode %q (want bypass or exu)\n", mode)
		return 2
	}
	pc := harness.NewProfileCollector(opts)
	ps := harness.PointSpec{Workload: w, P: p, SimN: n, H: h, Mode: svc, Seed: seed, Shards: shards}
	if _, err := pc.RunPointObserved(ps, 0); err != nil {
		fmt.Fprintln(stderr, "emxprof:", err)
		return 1
	}
	return render(pc, format, dst, stderr)
}

// runPanel profiles every point of one emxbench figure panel and merges
// the result into a whole-panel profile.
func runPanel(fig string, scale int, seed int64, workers, shards int, opts harness.ObsOptions, format string, dst io.Writer, stderr io.Writer) int {
	name := strings.ToLower(fig)
	if !harness.ValidPanel(name) {
		fmt.Fprintf(stderr, "emxprof: unknown figure %q\nvalid panels: %s\n",
			fig, strings.Join(harness.PanelNames(), ", "))
		return 2
	}
	if scale < 1 {
		fmt.Fprintf(stderr, "emxprof: -scale must be >= 1, got %d\n", scale)
		return 2
	}
	if workers < 0 {
		fmt.Fprintf(stderr, "emxprof: -workers must be >= 0, got %d\n", workers)
		return 2
	}
	pc := harness.NewProfileCollector(opts)
	// Caching is off: a cache-served point skips execution and would
	// contribute no profile.
	sched := labd.New(labd.Options{Workers: workers, NoCache: true})
	defer sched.Close()
	pr := harness.NewPanelRunner(harness.PanelOptions{
		Scale:   scale,
		Seed:    seed,
		Shards:  shards,
		Observe: pc,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "emxprof: "+format+"\n", args...)
		},
	}, sched)
	if _, err := pr.Panel(name); err != nil {
		fmt.Fprintln(stderr, "emxprof:", err)
		return 1
	}
	return render(pc, format, dst, stderr)
}

// render writes the collected profiles in the chosen format.
func render(pc *harness.ProfileCollector, format string, dst io.Writer, stderr io.Writer) int {
	var err error
	switch format {
	case "perfetto":
		err = pc.WriteTrace(dst)
	default:
		var merged *obs.Profile
		if merged, err = pc.Merged(); err == nil {
			if format == "json" {
				err = merged.WriteJSON(dst)
			} else {
				err = merged.WriteReport(dst)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "emxprof:", err)
		return 1
	}
	return 0
}

// runDiff renders the change between two saved profiles (A -> B).
func runDiff(files []string, dst io.Writer, stderr io.Writer) int {
	if len(files) != 2 {
		fmt.Fprintf(stderr, "emxprof: -diff needs exactly two profile files, got %d\n", len(files))
		return 2
	}
	profs := make([]*obs.Profile, 2)
	for i, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "emxprof:", err)
			return 1
		}
		profs[i], err = obs.LoadProfile(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "emxprof: %s: %v\n", path, err)
			return 1
		}
	}
	if err := obs.WriteDiff(dst, profs[0], profs[1]); err != nil {
		fmt.Fprintln(stderr, "emxprof:", err)
		return 1
	}
	return 0
}
