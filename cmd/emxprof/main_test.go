package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fig4Args is the paper's Figure 4 scenario: bitonic sorting on two
// processors, two threads each, eight elements.
var fig4Args = []string{"-workload", "bitonic", "-p", "2", "-n", "8", "-h", "2", "-seed", "7"}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFigure4ReportGolden pins the text report for the Figure-4 scenario
// byte-for-byte. A diff here means the cost model or the report format
// changed — both are intentional, reviewable events.
func TestFigure4ReportGolden(t *testing.T) {
	code, out, errOut := runCLI(t, fig4Args...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if want := golden(t, "fig4.report.txt"); out != want {
		t.Errorf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}

// TestFigure4PerfettoGolden pins the trace-event JSON byte-for-byte and
// checks it is well-formed for ui.perfetto.dev.
func TestFigure4PerfettoGolden(t *testing.T) {
	code, out, errOut := runCLI(t, append(fig4Args, "-format", "perfetto")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if want := golden(t, "fig4.trace.json"); out != want {
		t.Error("perfetto trace drifted from golden")
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.TraceEvents) == 0 {
		t.Fatalf("bad trace document: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
}

func TestProfileJSONRoundTripsThroughDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.prof")
	b := filepath.Join(dir, "b.prof")
	if code, _, errOut := runCLI(t, append(fig4Args, "-format", "json", "-o", a)...); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	args := append([]string{"-workload", "bitonic", "-p", "2", "-n", "16", "-h", "2", "-seed", "7"}, "-format", "json", "-o", b)
	if code, _, errOut := runCLI(t, args...); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	code, out, errOut := runCLI(t, "-diff", a, b)
	if code != 0 {
		t.Fatalf("diff exit %d: %s", code, errOut)
	}
	for _, want := range []string{"emxprof profile diff (A -> B", "makespan", "run"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown workload", []string{"-workload", "quicksort"}},
		{"unknown format", []string{"-format", "flamegraph"}},
		{"unknown figure", []string{"-fig", "99z"}},
		{"unknown mode", []string{"-mode", "warp"}},
		{"bad p", []string{"-p", "0"}},
		{"negative slice", []string{"-slice", "-5"}},
		{"negative workers", []string{"-fig", "6a", "-workers", "-1"}},
		{"negative shards", []string{"-shards", "-1"}},
		{"non-power-of-two shards", []string{"-shards", "3"}},
		{"bad scale", []string{"-fig", "6a", "-scale", "0"}},
		{"diff arity", []string{"-diff", "only-one.prof"}},
		{"stray args", []string{"a.prof", "b.prof"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, errOut := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2 (stderr: %s)", code, errOut)
			}
			if errOut == "" {
				t.Fatal("no diagnostic on stderr")
			}
		})
	}
}

// TestShardedProfileMatchesSingleEngine: the merged profile of a sharded
// run is identical to the single-engine profile — per-shard tracers are
// absorbed commutatively (counters summed, rings merged in event-time
// order), so the JSON profile must match byte-for-byte at every shard
// count. The point is large enough (P=8, n=2048, h=4) that every shard
// carries real cross-shard traffic.
func TestShardedProfileMatchesSingleEngine(t *testing.T) {
	point := []string{"-workload", "bitonic", "-p", "8", "-n", "2048", "-h", "4", "-seed", "3", "-format", "json"}
	run := func(shards string) string {
		t.Helper()
		code, out, errOut := runCLI(t, append(point, "-shards", shards)...)
		if code != 0 {
			t.Fatalf("shards=%s: exit %d: %s", shards, code, errOut)
		}
		return out
	}
	want := run("1")
	for _, shards := range []string{"2", "4", "8"} {
		if got := run(shards); got != want {
			t.Errorf("-shards %s profile differs from single engine:\n--- got ---\n%s--- want ---\n%s", shards, got, want)
		}
	}
}

// TestShardedPanelProfileMatchesSingleEngine: the same invariant end to
// end through a whole panel — every point of fig 6a profiled at -shards 4
// merges to the identical report the single-engine panel produces.
func TestShardedPanelProfileMatchesSingleEngine(t *testing.T) {
	args := func(shards string) []string {
		return []string{"-fig", "6a", "-scale", "1048576", "-shards", shards}
	}
	code, one, errOut := runCLI(t, args("1")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	code, four, errOut := runCLI(t, args("4")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if one != four {
		t.Error("panel report differs between -shards 1 and -shards 4")
	}
}

// TestReportWorkerInvariantPanel: the merged panel profile is identical
// on 1 and 4 workers — the profiler's headline determinism claim, here
// end to end through the CLI.
func TestReportWorkerInvariantPanel(t *testing.T) {
	args := func(workers string) []string {
		return []string{"-fig", "6a", "-scale", "1048576", "-workers", workers}
	}
	code, one, errOut := runCLI(t, args("1")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	code, four, errOut := runCLI(t, args("4")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if one != four {
		t.Error("panel report differs between -workers 1 and -workers 4")
	}
	if !strings.Contains(one, "dropped=0") {
		t.Errorf("panel report should record zero drops:\n%s", one)
	}
}
