// Command emxsim runs one workload configuration on the simulated EM-X
// and prints the measurements the paper reports: the execution-time
// decomposition, switch counts by type, and network statistics.
//
// Usage:
//
//	emxsim -workload bitonic -p 64 -n 16384 -h 4
//	emxsim -workload fft -p 16 -n 8192 -h 2 -mode exu
package main

import (
	"flag"
	"fmt"
	"os"

	"emx/internal/harness"
	"emx/internal/metrics"
	"emx/internal/proc"
	"emx/internal/sim"
)

func main() {
	var (
		workload = flag.String("workload", "bitonic", "workload: bitonic or fft")
		p        = flag.Int("p", 16, "number of processors (power of two)")
		n        = flag.Int("n", 16384, "problem size in elements/points (power of two)")
		h        = flag.Int("h", 4, "threads per processor")
		mode     = flag.String("mode", "bypass", "remote request servicing: bypass (EM-X) or exu (EM-4)")
		block    = flag.Bool("block", false, "bitonic: use block-read send instructions")
		seed     = flag.Int64("seed", 1, "input generator seed")
		verify   = flag.Bool("verify", true, "check the workload's output")
	)
	flag.Parse()

	ps := harness.PointSpec{
		P: *p, SimN: *n, PaperN: *n, H: *h,
		BlockRead: *block, Seed: *seed, Verify: *verify,
	}
	switch *workload {
	case "bitonic":
		ps.Workload = harness.Bitonic
	case "fft":
		ps.Workload = harness.FFT
	default:
		fmt.Fprintf(os.Stderr, "emxsim: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	switch *mode {
	case "bypass":
		ps.Mode = proc.ServiceBypass
	case "exu":
		ps.Mode = proc.ServiceEXU
	default:
		fmt.Fprintf(os.Stderr, "emxsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	run, err := harness.RunPoint(ps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emxsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload        %s (verified: %v)\n", *workload, *verify)
	fmt.Printf("machine         P=%d EMC-Y @ 20 MHz, %s servicing\n", *p, *mode)
	fmt.Printf("problem         n=%d, h=%d threads/PE\n", *n, *h)
	fmt.Printf("makespan        %d cycles = %.3f ms simulated\n",
		run.Makespan, run.Makespan.Seconds()*1e3)
	fmt.Printf("events          %d simulation events\n", run.SimEvents)

	b := run.TotalBreakdown()
	c, o, m, s := b.Fractions()
	fmt.Printf("\nexecution time distribution (all PEs):\n")
	fmt.Printf("  computation   %6.2f%%  (%d cycles)\n", 100*c, b.Compute)
	fmt.Printf("  overhead      %6.2f%%  (%d cycles)\n", 100*o, b.Overhead)
	fmt.Printf("  communication %6.2f%%  (%d cycles)\n", 100*m, b.Comm)
	fmt.Printf("  switching     %6.2f%%  (%d cycles)\n", 100*s, b.Switch)

	fmt.Printf("\nswitches per PE (mean):\n")
	for _, k := range []metrics.SwitchKind{
		metrics.SwitchRemoteRead, metrics.SwitchIterSync,
		metrics.SwitchThreadSync, metrics.SwitchExplicit,
	} {
		fmt.Printf("  %-12s  %.1f\n", k, run.MeanSwitches(k))
	}

	fmt.Printf("\ncounters:\n")
	fmt.Printf("  remote reads  %d\n", run.SumCounter(func(pe *metrics.PE) uint64 { return pe.RemoteReads }))
	fmt.Printf("  remote writes %d\n", run.SumCounter(func(pe *metrics.PE) uint64 { return pe.RemoteWrites }))
	fmt.Printf("  DMA serviced  %d\n", run.SumCounter(func(pe *metrics.PE) uint64 { return pe.ServicedDMA }))
	fmt.Printf("  EXU serviced  %d\n", run.SumCounter(func(pe *metrics.PE) uint64 { return pe.ServicedEXU }))
	fmt.Printf("  queue spills  %d\n", run.SumCounter(func(pe *metrics.PE) uint64 { return pe.Spills }))
	fmt.Printf("  packets sent  %d (%d link hops, %d cycles queueing)\n",
		run.PacketsSent, run.PacketsHops, run.NetQueueDelay)
	fmt.Printf("  mean comm/PE  %.0f cycles (%.2f us)\n",
		run.MeanCommTime(), sim.Time(run.MeanCommTime()).Micros())
}
