// Command emxasm assembles an EMC-Y assembly file and (optionally) runs
// it as a thread on the simulated EM-X.
//
// Usage:
//
//	emxasm prog.asm                      # assemble, print the listing
//	emxasm -run -p 4 -entry main prog.asm
//	emxasm -run -dump 100:8 prog.asm     # dump PE0 memory [100,108) after the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"emx/internal/core"
	"emx/internal/isa"
	"emx/internal/packet"
)

func main() {
	var (
		run   = flag.Bool("run", false, "execute the program after assembling")
		p     = flag.Int("p", 1, "number of processors")
		entry = flag.String("entry", "main", "entry label")
		arg   = flag.Int64("arg", 0, "invoke argument")
		dump  = flag.String("dump", "", "after running, dump memory as off:len (all PEs with -spmd, else PE0)")
		spmd  = flag.Bool("spmd", false, "spawn the entry thread on every PE (argument = PE number)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emxasm [flags] file.asm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "emxasm:", err)
		os.Exit(1)
	}
	prog, err := isa.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "emxasm:", err)
		os.Exit(1)
	}

	if !*run {
		fmt.Printf("; %s: %d instructions, %d labels\n", prog.Name, len(prog.Code), len(prog.Labels))
		for pc, ins := range prog.Code {
			for label, at := range prog.Labels {
				if at == pc {
					fmt.Printf("%s:\n", label)
				}
			}
			fmt.Printf("  %3d  %v\n", pc, ins)
		}
		return
	}

	cfg := core.DefaultConfig(*p)
	cfg.MemWords = 1 << 16
	cfg.MaxCycles = 1 << 34
	m, err := core.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emxasm:", err)
		os.Exit(1)
	}
	if *spmd {
		for pe := packet.PE(0); int(pe) < *p; pe++ {
			if err := isa.Spawn(m, pe, prog, *entry, packet.Word(uint32(pe))); err != nil {
				fmt.Fprintln(os.Stderr, "emxasm:", err)
				os.Exit(1)
			}
		}
	} else if err := isa.Spawn(m, 0, prog, *entry, packet.Word(uint32(*arg))); err != nil {
		fmt.Fprintln(os.Stderr, "emxasm:", err)
		os.Exit(1)
	}
	res, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "emxasm:", err)
		os.Exit(1)
	}
	fmt.Printf("ran %s:%s on P=%d in %d cycles (%.2f us simulated)\n",
		prog.Name, *entry, *p, res.Makespan, res.Makespan.Micros())
	b := res.TotalBreakdown()
	fmt.Printf("compute %d, overhead %d, comm %d, switch %d cycles\n",
		b.Compute, b.Overhead, b.Comm, b.Switch)

	if *dump != "" {
		parts := strings.SplitN(*dump, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "emxasm: -dump wants off:len")
			os.Exit(2)
		}
		off, err1 := strconv.Atoi(parts[0])
		n, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || off < 0 || n <= 0 {
			fmt.Fprintln(os.Stderr, "emxasm: bad -dump range")
			os.Exit(2)
		}
		pes := 1
		if *spmd {
			pes = *p
		}
		for pe := packet.PE(0); int(pe) < pes; pe++ {
			for i := 0; i < n; i++ {
				w := m.Mem(pe).Peek(uint32(off + i))
				fmt.Printf("  PE%d mem[%d] = %d (0x%08x)\n", pe, off+i, uint32(w), uint32(w))
			}
		}
	}
}
