// Command emxbench regenerates the paper's evaluation figures on the
// simulated EM-X: Figure 6 (communication time), Figure 7 (overlap
// efficiency), Figure 8 (execution-time distribution), Figure 9 (switch
// counts), plus the ablations (EM-4 servicing, block reads) and the
// analytic-model comparison.
//
// Sweeps execute through the labd scheduler — the same pooling,
// coalescing, and caching path the emxd daemon serves — either
// in-process (the default) or against a running daemon via -remote,
// where repeated panels are cache hits.
//
// Usage:
//
//	emxbench -fig 6b                      # one panel
//	emxbench -fig all -format csv         # everything, machine-readable
//	emxbench -fig 7d -scale 256           # larger simulated sizes
//	emxbench -fig all -format json        # benchmark snapshot (BENCH_<date>.json)
//	emxbench -fig 6b -remote http://host:8484   # run on an emxd daemon
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"emx/internal/harness"
	"emx/internal/labd"
	"emx/internal/labd/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Snapshot is the -format json output: every requested panel with its
// simulated-cycle total, suitable for committing as BENCH_<date>.json
// to track the perf trajectory. Byte-identical across reruns with the
// same flags (no timestamps; the simulator is deterministic).
type Snapshot struct {
	Paper  string           `json:"paper"`
	Scale  int              `json:"scale"`
	Seed   int64            `json:"seed"`
	Panels []harness.Figure `json:"panels"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", "panel to regenerate, or 'all'")
		scale   = fs.Int("scale", harness.DefaultScale, "divide the paper's problem sizes by this factor")
		format  = fs.String("format", "table", "output: table, csv, chart, or json")
		workers = fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed    = fs.Int64("seed", 1, "input generator seed")
		remote  = fs.String("remote", "", "base URL of a running emxd daemon (empty: run in-process)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: emxbench [flags]")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "valid panels: all, %s\n", strings.Join(harness.PanelNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	name := strings.ToLower(*fig)
	if name != "all" && !harness.ValidPanel(name) {
		fmt.Fprintf(stderr, "emxbench: unknown figure %q\nvalid panels: all, %s\n",
			*fig, strings.Join(harness.PanelNames(), ", "))
		return 2
	}
	if *scale < 1 {
		fmt.Fprintf(stderr, "emxbench: -scale must be >= 1, got %d\n", *scale)
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "emxbench: -workers must be >= 0, got %d\n", *workers)
		return 2
	}
	var render func(harness.Figure) string
	switch *format {
	case "table":
		render = func(f harness.Figure) string { return f.Table() }
	case "csv":
		render = func(f harness.Figure) string { return fmt.Sprintf("# %s [%s]\n%s", f.Title, f.ID, f.CSV()) }
	case "chart":
		render = func(f harness.Figure) string { return f.Chart(16) }
	case "json":
		render = nil // collected into one Snapshot below
	default:
		fmt.Fprintf(stderr, "emxbench: unknown format %q (want table, csv, chart, or json)\n", *format)
		return 2
	}

	names := []string{name}
	if name == "all" {
		names = harness.PanelNames()
	}

	var panel func(string) ([]harness.Figure, error)
	if *remote != "" {
		panel = remotePanels(*remote, *scale, *seed)
	} else {
		var cleanup func()
		panel, cleanup = localPanels(*scale, *seed, *workers, stderr)
		defer cleanup()
	}

	var collected []harness.Figure
	for _, n := range names {
		figs, err := panel(n)
		if err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			return 1
		}
		for _, f := range figs {
			if render != nil {
				fmt.Fprintln(stdout, render(f))
			} else {
				collected = append(collected, f)
			}
		}
	}
	if render == nil {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(Snapshot{
			Paper:  "EM-X (SPAA 1997)",
			Scale:  *scale,
			Seed:   *seed,
			Panels: collected,
		}); err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			return 1
		}
	}
	return 0
}

// localPanels builds panels in-process through a transient labd
// scheduler, exactly the execution path emxd serves. The returned
// cleanup stops the scheduler.
func localPanels(scale int, seed int64, workers int, stderr io.Writer) (func(string) ([]harness.Figure, error), func()) {
	sched := labd.New(labd.Options{Workers: workers})
	pr := harness.NewPanelRunner(harness.PanelOptions{
		Scale: scale,
		Seed:  seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "emxbench: "+format+"\n", args...)
		},
	}, sched)
	return pr.Panel, sched.Close
}

// remotePanels requests panels from a running emxd daemon.
func remotePanels(base string, scale int, seed int64) func(string) ([]harness.Figure, error) {
	base = strings.TrimRight(base, "/")
	return func(name string) ([]harness.Figure, error) {
		body, err := json.Marshal(service.FigureRequest{Fig: name, Scale: scale, Seed: seed})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(base+"/v1/figure", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("remote %s: %w", base, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
				return nil, fmt.Errorf("remote %s: %s", base, e.Error)
			}
			return nil, fmt.Errorf("remote %s: HTTP %s", base, resp.Status)
		}
		var fr service.FigureResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			return nil, fmt.Errorf("remote %s: bad response: %w", base, err)
		}
		return fr.Figures, nil
	}
}
