// Command emxbench regenerates the paper's evaluation figures on the
// simulated EM-X: Figure 6 (communication time), Figure 7 (overlap
// efficiency), Figure 8 (execution-time distribution), Figure 9 (switch
// counts), plus the ablations (EM-4 servicing, block reads) and the
// analytic-model comparison.
//
// Sweeps execute through the labd scheduler — the same pooling,
// coalescing, and caching path the emxd daemon serves — either
// in-process (the default) or against a running daemon via -remote,
// where repeated panels are cache hits.
//
// Usage:
//
//	emxbench -fig 6b                      # one panel
//	emxbench -fig all -format csv         # everything, machine-readable
//	emxbench -fig 7d -scale 256           # larger simulated sizes
//	emxbench -fig all -format json        # benchmark snapshot (BENCH_<date>.json)
//	emxbench -fig 6b -remote http://host:8484   # run on an emxd daemon
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"emx/internal/cluster"
	"emx/internal/harness"
	"emx/internal/labd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// Snapshot is the -format json output: every requested panel with its
// simulated-cycle total, suitable for committing as BENCH_<date>.json
// to track the perf trajectory. Panels are byte-identical across reruns
// with the same flags (no timestamps; the simulator is deterministic);
// the host block is the one deliberately non-deterministic part — it
// measures how fast this host ran the simulations, not what they
// computed.
type Snapshot struct {
	Paper string     `json:"paper"`
	Scale int        `json:"scale"`
	Seed  int64      `json:"seed"`
	Host  *HostStats `json:"host,omitempty"`
	// Fig6bP64 repeats the host block when the invocation rendered
	// exactly the 6b panel (bitonic, P=64) — the pinned throughput
	// number BENCH_*.json tracks for single-run sharding speedups.
	Fig6bP64 *HostStats       `json:"fig6b_p64,omitempty"`
	Panels   []harness.Figure `json:"panels"`
}

// HostStats is the simulator's host throughput for one emxbench
// invocation: simulated cycles and engine events per wall-clock second.
// Only present for in-process runs (-remote has its own host; query its
// /v1/status instead). WallSeconds spans panel generation end to end,
// so CyclesPerSecond reflects whole-machine throughput including
// worker parallelism; HostRunSeconds sums per-run time across workers.
type HostStats struct {
	GoMaxProcs      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	Shards          int     `json:"engine_shards,omitempty"`
	WallSeconds     float64 `json:"wall_seconds"`
	SimCycles       uint64  `json:"sim_cycles_total"`
	SimEvents       uint64  `json:"sim_events_total"`
	HostRunSeconds  float64 `json:"host_run_seconds_total"`
	CyclesPerSecond float64 `json:"sim_cycles_per_second"`
	EventsPerSecond float64 `json:"sim_events_per_second"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emxbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig       = fs.String("fig", "all", "panel to regenerate, or 'all'")
		scale     = fs.Int("scale", harness.DefaultScale, "divide the paper's problem sizes by this factor")
		format    = fs.String("format", "table", "output: table, csv, chart, or json")
		workers   = fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "engine shards per simulation (0 = auto, 1 = single engine)")
		seed      = fs.Int64("seed", 1, "input generator seed")
		remote    = fs.String("remote", "", "comma-separated base URLs of running emxd nodes or an emxcluster gateway (empty: run in-process)")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		profile   = fs.String("profile", "", "write a merged emxprof cycle-accounting profile (JSON) to this file")
		tracefile = fs.String("tracefile", "", "write a Perfetto trace of every simulated point to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: emxbench [flags]")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "valid panels: all, %s\n", strings.Join(harness.PanelNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	name := strings.ToLower(*fig)
	if name != "all" && !harness.ValidPanel(name) {
		fmt.Fprintf(stderr, "emxbench: unknown figure %q\nvalid panels: all, %s\n",
			*fig, strings.Join(harness.PanelNames(), ", "))
		return 2
	}
	if *scale < 1 {
		fmt.Fprintf(stderr, "emxbench: -scale must be >= 1, got %d\n", *scale)
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "emxbench: -workers must be >= 0, got %d\n", *workers)
		return 2
	}
	if *shards < 0 {
		fmt.Fprintf(stderr, "emxbench: -shards must be >= 0, got %d\n", *shards)
		return 2
	}
	if *shards > 1 && *shards&(*shards-1) != 0 {
		fmt.Fprintf(stderr, "emxbench: -shards must be a power of two, got %d\n", *shards)
		return 2
	}
	if *shards != 0 && *remote != "" {
		fmt.Fprintln(stderr, "emxbench: -shards requires an in-process run (a remote daemon picks its own shard count)")
		return 2
	}
	var render func(harness.Figure) string
	// Normalize so "-format JSON" works; anything else is rejected with
	// the valid choices spelled out rather than silently defaulting.
	*format = strings.ToLower(strings.TrimSpace(*format))
	switch *format {
	case "table":
		render = func(f harness.Figure) string { return f.Table() }
	case "csv":
		render = func(f harness.Figure) string { return fmt.Sprintf("# %s [%s]\n%s", f.Title, f.ID, f.CSV()) }
	case "chart":
		render = func(f harness.Figure) string { return f.Chart(16) }
	case "json":
		render = nil // collected into one Snapshot below
	default:
		fmt.Fprintf(stderr, "emxbench: unknown format %q (want table, csv, chart, or json)\n", *format)
		return 2
	}

	names := []string{name}
	if name == "all" {
		names = harness.PanelNames()
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memprof, stderr)

	// observe is non-nil when any emxprof output was requested; it makes
	// the run cache-less so every point executes and yields a profile.
	var observe *harness.ProfileCollector
	if *profile != "" || *tracefile != "" {
		if *remote != "" {
			fmt.Fprintln(stderr, "emxbench: -profile/-tracefile require an in-process run (use emxd's /v1/profile against -remote)")
			return 2
		}
		observe = harness.NewProfileCollector(harness.ObsOptions{})
	}

	// sched is non-nil only for in-process runs; it supplies the host
	// throughput counters for the JSON snapshot.
	var (
		sched *labd.Scheduler
		panel func(string) ([]harness.Figure, error)
	)
	if *remote != "" {
		panel = remotePanels(*remote, *scale, *seed)
	} else {
		sched, panel = localPanels(*scale, *seed, *workers, *shards, observe, stderr)
		defer sched.Close()
	}

	start := time.Now() //emx:hostclock wall-clock panel timing for the snapshot header
	var collected []harness.Figure
	for _, n := range names {
		figs, err := panel(n)
		if err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			return 1
		}
		for _, f := range figs {
			if render != nil {
				fmt.Fprintln(stdout, render(f))
			} else {
				collected = append(collected, f)
			}
		}
	}
	wall := time.Since(start).Seconds() //emx:hostclock
	if render == nil {
		snap := Snapshot{
			Paper:  "EM-X (SPAA 1997)",
			Scale:  *scale,
			Seed:   *seed,
			Panels: collected,
		}
		if sched != nil {
			snap.Host = hostStats(sched.Stats(), wall, *shards)
			if name == "6b" {
				snap.Fig6bP64 = snap.Host
			}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			return 1
		}
	}
	if observe != nil {
		if err := writeProfiles(observe, *profile, *tracefile, stderr); err != nil {
			fmt.Fprintln(stderr, "emxbench:", err)
			return 1
		}
	}
	return 0
}

// writeProfiles emits the collected emxprof artifacts and a greppable
// summary line (CI asserts dropped=0 on it).
func writeProfiles(pc *harness.ProfileCollector, profilePath, tracePath string, stderr io.Writer) error {
	merged, err := pc.Merged()
	if err != nil {
		return err
	}
	if profilePath != "" {
		if err := writeTo(profilePath, merged.WriteJSON); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeTo(tracePath, pc.WriteTrace); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "emxbench: profile: points=%d recorded=%d retained=%d dropped=%d\n",
		merged.Points, merged.Recorded, merged.Retained, merged.TotalDropped())
	return nil
}

// writeTo streams one artifact into path, creating or truncating it.
func writeTo(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// hostStats derives the snapshot's host block from the scheduler's
// throughput counters and the measured wall time.
func hostStats(st labd.Stats, wall float64, shards int) *HostStats {
	h := &HostStats{
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Workers:        st.Workers,
		Shards:         shards,
		WallSeconds:    wall,
		SimCycles:      st.SimCycles,
		SimEvents:      st.SimEvents,
		HostRunSeconds: st.HostSeconds,
	}
	if wall > 0 {
		h.CyclesPerSecond = float64(st.SimCycles) / wall
		h.EventsPerSecond = float64(st.SimEvents) / wall
	}
	return h
}

// writeMemProfile records the heap profile after a final GC, so live
// allocations dominate over garbage.
func writeMemProfile(path string, stderr io.Writer) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "emxbench:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(stderr, "emxbench:", err)
	}
}

// localPanels builds panels in-process through a transient labd
// scheduler, exactly the execution path emxd serves. The caller owns
// the scheduler and must Close it.
func localPanels(scale int, seed int64, workers, shards int, observe *harness.ProfileCollector, stderr io.Writer) (*labd.Scheduler, func(string) ([]harness.Figure, error)) {
	// A cache hit skips point execution, and a skipped point yields no
	// profile — so observed runs disable the cache (coalescing still
	// dedupes concurrent duplicates, which do share one observation).
	sched := labd.New(labd.Options{Workers: workers, NoCache: observe != nil})
	pr := harness.NewPanelRunner(harness.PanelOptions{
		Scale:   scale,
		Seed:    seed,
		Shards:  shards,
		Observe: observe,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "emxbench: "+format+"\n", args...)
		},
	}, sched)
	return sched, pr.Panel
}

// remotePanels requests panels from running emxd nodes (or an
// emxcluster gateway) through the failover-aware cluster client: with
// several comma-separated URLs, panels shard across the nodes by
// rendezvous hashing and a dead node's panels fail over to its peers —
// byte-identically, since runs are deterministic.
func remotePanels(remotes string, scale int, seed int64) func(string) ([]harness.Figure, error) {
	var urls []string
	for _, u := range strings.Split(remotes, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	m := cluster.NewMembership(urls, cluster.MembershipOptions{})
	c := cluster.NewClient(m, cluster.ClientOptions{})
	return func(name string) ([]harness.Figure, error) {
		figs, err := c.Figure(name, scale, seed)
		if err != nil {
			return nil, fmt.Errorf("remote: %w", err)
		}
		return figs, nil
	}
}
