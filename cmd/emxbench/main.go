// Command emxbench regenerates the paper's evaluation figures on the
// simulated EM-X: Figure 6 (communication time), Figure 7 (overlap
// efficiency), Figure 8 (execution-time distribution), Figure 9 (switch
// counts), plus the ablations (EM-4 servicing, block reads) and the
// analytic-model comparison.
//
// Usage:
//
//	emxbench -fig 6b                 # one panel
//	emxbench -fig all -format csv    # everything, machine-readable
//	emxbench -fig 7d -scale 256      # larger simulated sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"emx/internal/analytic"
	"emx/internal/core"
	"emx/internal/harness"
	"emx/internal/metrics"
	"emx/internal/proc"
)

type renderer func(harness.Figure) string

func main() {
	var (
		fig     = flag.String("fig", "all", "panel: 6a-6d, 7a-7d, 8a-8d, 9a-9d, em4, block, sched, irr, model, latency, load, all")
		scale   = flag.Int("scale", harness.DefaultScale, "divide the paper's problem sizes by this factor")
		format  = flag.String("format", "table", "output: table, csv, or chart")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "input generator seed")
	)
	flag.Parse()

	var render renderer
	switch *format {
	case "table":
		render = func(f harness.Figure) string { return f.Table() }
	case "csv":
		render = func(f harness.Figure) string { return fmt.Sprintf("# %s [%s]\n%s", f.Title, f.ID, f.CSV()) }
	case "chart":
		render = func(f harness.Figure) string { return f.Chart(16) }
	default:
		fmt.Fprintf(os.Stderr, "emxbench: unknown format %q\n", *format)
		os.Exit(2)
	}

	b := bench{scale: *scale, workers: *workers, seed: *seed, render: render}
	if err := b.run(strings.ToLower(*fig)); err != nil {
		fmt.Fprintln(os.Stderr, "emxbench:", err)
		os.Exit(1)
	}
}

type bench struct {
	scale   int
	workers int
	seed    int64
	render  renderer
	sweeps  map[string]*harness.SweepResult
}

// panelSweep maps the paper's panel letters onto (workload, P).
var panelSweep = map[byte]struct {
	w harness.Workload
	p int
}{
	'a': {harness.Bitonic, 16},
	'b': {harness.Bitonic, 64},
	'c': {harness.FFT, 16},
	'd': {harness.FFT, 64},
}

func (b *bench) sweep(w harness.Workload, p int, mode proc.ServiceMode, block, replyHigh bool) (*harness.SweepResult, error) {
	if b.sweeps == nil {
		b.sweeps = map[string]*harness.SweepResult{}
	}
	key := fmt.Sprintf("%s-%d-%d-%v-%v", w, p, mode, block, replyHigh)
	if res, ok := b.sweeps[key]; ok {
		return res, nil
	}
	fmt.Fprintf(os.Stderr, "emxbench: sweeping %s P=%d (mode=%s block=%v replyhigh=%v, scale %d)...\n",
		w, p, mode, block, replyHigh, b.scale)
	res, err := harness.Sweep{
		Workload: w, P: p, Scale: b.scale, Mode: mode,
		BlockRead: block, ReplyHigh: replyHigh, Seed: b.seed,
	}.Run(b.workers)
	if err != nil {
		return nil, err
	}
	b.sweeps[key] = res
	return res, nil
}

func (b *bench) run(fig string) error {
	if fig == "all" {
		for _, f := range []string{
			"6a", "6b", "6c", "6d", "7a", "7b", "7c", "7d",
			"8a", "8b", "8c", "8d", "9a", "9b", "9c", "9d",
			"em4", "block", "sched", "irr", "model", "latency", "load",
		} {
			if err := b.run(f); err != nil {
				return err
			}
		}
		return nil
	}

	emit := func(f harness.Figure, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(b.render(f))
		return nil
	}

	switch {
	case len(fig) == 2 && (fig[0] == '6' || fig[0] == '7'):
		ps, ok := panelSweep[fig[1]]
		if !ok {
			return fmt.Errorf("unknown panel %q", fig)
		}
		res, err := b.sweep(ps.w, ps.p, proc.ServiceBypass, false, false)
		if err != nil {
			return err
		}
		if fig[0] == '6' {
			return emit(harness.Fig6(res), nil)
		}
		return emit(harness.Fig7(res))

	case len(fig) == 2 && (fig[0] == '8' || fig[0] == '9'):
		// Figure 8/9 panels are all P=64: a/b sorting at 512K/8M,
		// c/d FFT at 512K/8M.
		var w harness.Workload
		var size int
		switch fig[1] {
		case 'a':
			w, size = harness.Bitonic, 512*harness.K
		case 'b':
			w, size = harness.Bitonic, 8*harness.M
		case 'c':
			w, size = harness.FFT, 512*harness.K
		case 'd':
			w, size = harness.FFT, 8*harness.M
		default:
			return fmt.Errorf("unknown panel %q", fig)
		}
		res, err := b.sweep(w, 64, proc.ServiceBypass, false, false)
		if err != nil {
			return err
		}
		if fig[0] == '8' {
			return emit(harness.Fig8(res, size))
		}
		return emit(harness.Fig9(res, size))

	case fig == "em4":
		// Ablation X-em4: EM-X by-passing DMA vs EM-4 EXU servicing.
		for _, w := range []harness.Workload{harness.Bitonic, harness.FFT} {
			bypass, err := b.sweep(w, 16, proc.ServiceBypass, false, false)
			if err != nil {
				return err
			}
			exu, err := b.sweep(w, 16, proc.ServiceEXU, false, false)
			if err != nil {
				return err
			}
			size := 512 * harness.K
			f, err := harness.CompareSweeps(
				"xem4-"+w.String(),
				fmt.Sprintf("Servicing ablation: %s, P=16, n=%s", w, harness.SizeLabel(size)),
				"makespan (s, simulated)", size, harness.MakespanSeconds,
				harness.LabelledSweep{Label: "EM-X by-passing DMA", Result: bypass},
				harness.LabelledSweep{Label: "EM-4 EXU servicing", Result: exu})
			if err := emit(f, err); err != nil {
				return err
			}
		}
		return nil

	case fig == "block":
		// Ablation X-block: element reads vs block-read sends (bitonic).
		elem, err := b.sweep(harness.Bitonic, 16, proc.ServiceBypass, false, false)
		if err != nil {
			return err
		}
		blk, err := b.sweep(harness.Bitonic, 16, proc.ServiceBypass, true, false)
		if err != nil {
			return err
		}
		size := 512 * harness.K
		f, err := harness.CompareSweeps(
			"xblock",
			fmt.Sprintf("Block-read ablation: bitonic, P=16, n=%s", harness.SizeLabel(size)),
			"comm time (s, simulated)", size, harness.CommSeconds,
			harness.LabelledSweep{Label: "element reads (paper)", Result: elem},
			harness.LabelledSweep{Label: "block-read sends", Result: blk})
		return emit(f, err)

	case fig == "sched":
		// Ablation X-sched: FIFO vs resume-first reply scheduling — the
		// fine-tuning direction the paper's conclusion proposes.
		for _, w := range []harness.Workload{harness.Bitonic, harness.FFT} {
			fifo, err := b.sweep(w, 16, proc.ServiceBypass, false, false)
			if err != nil {
				return err
			}
			hi, err := b.sweep(w, 16, proc.ServiceBypass, false, true)
			if err != nil {
				return err
			}
			size := 512 * harness.K
			f, err := harness.CompareSweeps(
				"xsched-"+w.String(),
				fmt.Sprintf("Reply scheduling ablation: %s, P=16, n=%s", w, harness.SizeLabel(size)),
				"comm time (s, simulated)", size, harness.CommSeconds,
				harness.LabelledSweep{Label: "FIFO replies (EM-X)", Result: fifo},
				harness.LabelledSweep{Label: "resume-first replies", Result: hi})
			if err := emit(f, err); err != nil {
				return err
			}
		}
		return nil

	case fig == "irr":
		// Extension X-irr: the conclusion's proposed irregular workload —
		// where does SpMV's overlap land between sorting and FFT?
		var labelled []harness.LabelledSweep
		for _, w := range []harness.Workload{harness.Bitonic, harness.SpMV, harness.FFT} {
			res, err := b.sweep(w, 16, proc.ServiceBypass, false, false)
			if err != nil {
				return err
			}
			labelled = append(labelled, harness.LabelledSweep{Label: w.String(), Result: res})
		}
		size := 512 * harness.K
		f, err := harness.CompareSweeps(
			"xirr",
			fmt.Sprintf("Irregular workload: overlap efficiency, P=16, n=%s", harness.SizeLabel(size)),
			"overlap efficiency (%)", size,
			func(*metrics.Run) float64 { return 0 }, labelled...)
		if err != nil {
			return err
		}
		// Replace the metric with per-sweep efficiency (needs the h=1
		// baseline of each sweep, which CompareSweeps' single-run metric
		// cannot express).
		for i, ls := range labelled {
			si := ls.Result.SizeIndex(size)
			base := ls.Result.Runs[si][ls.Result.ThreadIndex(1)]
			for hi := range ls.Result.Threads {
				f.Series[i].Y[hi] = metrics.Efficiency(base, ls.Result.Runs[si][hi])
			}
		}
		return emit(f, nil)

	case fig == "model":
		return b.model()

	case fig == "latency":
		return b.latency()

	case fig == "load":
		return b.load()
	}
	return fmt.Errorf("unknown figure %q", fig)
}

// model compares the Saavedra-Barrera analytic model against the
// synthetic kernel on the simulator (experiment X-model).
func (b *bench) model() error {
	cfg := core.DefaultConfig(16)
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 1 << 36
	const runLen = 40
	m := analytic.FitFromConfig(cfg, runLen)
	f := harness.Figure{
		ID:     "xmodel",
		Title:  fmt.Sprintf("Analytic model vs simulation (R=%d, L=%.0f, C=%.0f)", runLen, m.L, m.C),
		XLabel: "threads",
		YLabel: "processor efficiency",
		X:      []int{1, 2, 3, 4, 6, 8, 12, 16},
	}
	model := harness.Series{Label: "Saavedra-Barrera model"}
	meas := harness.Series{Label: "simulated kernel"}
	region := harness.Series{Label: "model region (0=lin 1=trans 2=sat)"}
	for _, h := range f.X {
		model.Y = append(model.Y, m.Efficiency(h))
		_, e, err := analytic.RunKernel(cfg, analytic.KernelParams{H: h, Reads: 80, R: runLen})
		if err != nil {
			return err
		}
		meas.Y = append(meas.Y, e)
		region.Y = append(region.Y, float64(m.RegionOf(h)))
	}
	f.Series = []harness.Series{model, meas, region}
	fmt.Println(b.render(f))
	fmt.Printf("saturation point N* = %.2f threads (the paper's 2-4 band)\n\n", m.SaturationPoint())
	return nil
}

// load reports observed remote read latency under load: h threads per PE
// all reading, for the sorting run length — "1 to 2 usec when the network
// is normally loaded".
func (b *bench) load() error {
	f := harness.Figure{
		ID:     "xload",
		Title:  "Observed remote read latency under load (R=12)",
		XLabel: "threads",
		YLabel: "latency (cycles)",
		X:      []int{1, 2, 4, 8, 16},
	}
	for _, p := range []int{16, 64, 80} {
		cfg := core.DefaultConfig(p)
		cfg.MemWords = 1 << 12
		cfg.MaxCycles = 1 << 34
		ser := harness.Series{Label: fmt.Sprintf("P=%d", p)}
		for _, h := range f.X {
			lat, err := analytic.MeasureLoadedLatency(cfg, h, 48, 12)
			if err != nil {
				return err
			}
			ser.Y = append(ser.Y, lat)
		}
		f.Series = append(f.Series, ser)
	}
	fmt.Println(b.render(f))
	return nil
}

// latency reports the in-text measurement T-lat: a typical remote read
// takes about 1 us (20 cycles), growing with machine size and load.
func (b *bench) latency() error {
	fmt.Println("Remote read latency (unloaded, T-lat):")
	for _, p := range []int{2, 4, 16, 64, 80, 128} {
		cfg := core.DefaultConfig(p)
		cfg.MemWords = 1 << 12
		lat := analytic.MeasureLatency(cfg)
		fmt.Printf("  P=%-4d  %2d cycles = %.2f us  (paper: ~1-2 us, 20-40 cycles)\n",
			p, lat, lat.Micros())
	}
	fmt.Println()
	return nil
}
