package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"emx/internal/labd/service"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUnknownFigureExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-fig", "6z")
	if code == 0 {
		t.Fatal("unknown figure accepted")
	}
	if !strings.Contains(stderr, "unknown figure") ||
		!strings.Contains(stderr, "valid panels") ||
		!strings.Contains(stderr, "6a") || !strings.Contains(stderr, "latency") {
		t.Fatalf("usage message does not list valid panels:\n%s", stderr)
	}
}

func TestInvalidFlagValuesExitNonZero(t *testing.T) {
	cases := [][]string{
		{"-scale", "0"},
		{"-scale", "-8"},
		{"-workers", "-1"},
		{"-format", "yaml"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code == 0 {
			t.Errorf("args %v accepted; stderr:\n%s", args, stderr)
		}
		if stderr == "" {
			t.Errorf("args %v rejected silently", args)
		}
	}
}

func TestUnknownFormatMessage(t *testing.T) {
	code, _, stderr := runCLI(t, "-fig", "6a", "-format", "yaml")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown format "yaml"`) ||
		!strings.Contains(stderr, "table") || !strings.Contains(stderr, "csv") ||
		!strings.Contains(stderr, "chart") || !strings.Contains(stderr, "json") {
		t.Fatalf("error must echo the bad value and list valid formats:\n%s", stderr)
	}
}

func TestFormatIsCaseInsensitive(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fig", "6a", "-scale", hugeScale, "-format", "JSON")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, `"figures"`) && !strings.Contains(stdout, `"paper"`) {
		t.Fatalf("-format JSON did not produce the snapshot:\n%s", stdout)
	}
}

// hugeScale clamps panel sizes to the minimum grid for fast tests.
const hugeScale = "1048576"

func TestJSONSnapshot(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fig", "6a", "-scale", hugeScale, "-format", "json")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, stderr)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(stdout), &snap); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, stdout)
	}
	if snap.Scale != 1048576 || snap.Seed != 1 || len(snap.Panels) != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
	p := snap.Panels[0]
	if p.ID != "fig6-bitonic-P16" || p.SimCycles == 0 || len(p.Series) != 5 {
		t.Fatalf("panel %+v", p)
	}
	h := snap.Host
	if h == nil {
		t.Fatal("in-process snapshot missing host block")
	}
	if h.SimCycles == 0 || h.SimEvents == 0 || h.WallSeconds <= 0 ||
		h.HostRunSeconds <= 0 || h.CyclesPerSecond <= 0 || h.EventsPerSecond <= 0 {
		t.Fatalf("host block not populated: %+v", h)
	}

	// Everything except the host block is byte-identical across reruns
	// (perf trajectory files diff cleanly modulo host timing).
	_, stdout2, _ := runCLI(t, "-fig", "6a", "-scale", hugeScale, "-format", "json")
	var snap2 Snapshot
	if err := json.Unmarshal([]byte(stdout2), &snap2); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, stdout2)
	}
	snap.Host, snap2.Host = nil, nil
	b1, _ := json.Marshal(snap)
	b2, _ := json.Marshal(snap2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("json snapshot panels not deterministic")
	}
}

func TestRemoteDaemonRoundTrip(t *testing.T) {
	srv := service.New(service.Options{Scale: 1 << 20, Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	code, local, stderr := runCLI(t, "-fig", "6a", "-scale", hugeScale, "-format", "csv")
	if code != 0 {
		t.Fatalf("local exit %d:\n%s", code, stderr)
	}
	code, remote, stderr := runCLI(t, "-fig", "6a", "-scale", hugeScale, "-format", "csv", "-remote", ts.URL)
	if code != 0 {
		t.Fatalf("remote exit %d:\n%s", code, stderr)
	}
	if local != remote {
		t.Fatalf("remote output differs from local:\n%s\nvs\n%s", local, remote)
	}
	if srv.Scheduler().Stats().Started == 0 {
		t.Fatal("daemon executed nothing")
	}

	// Second remote request: all cache hits, same bytes.
	started := srv.Scheduler().Stats().Started
	code, remote2, _ := runCLI(t, "-fig", "6a", "-scale", hugeScale, "-format", "csv", "-remote", ts.URL)
	if code != 0 || remote2 != remote {
		t.Fatal("cached remote output differs")
	}
	if srv.Scheduler().Stats().Started != started {
		t.Fatal("repeated remote figure re-executed simulations")
	}
}

// TestRemoteMultiNode: a comma-separated -remote list shards panels
// across nodes and survives one of them being dead, byte-identically.
func TestRemoteMultiNode(t *testing.T) {
	srv1 := service.New(service.Options{Scale: 1 << 20, Seed: 1})
	ts1 := httptest.NewServer(srv1.Handler())
	defer func() { ts1.Close(); srv1.Close() }()
	srv2 := service.New(service.Options{Scale: 1 << 20, Seed: 1})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close() }()
	dead := httptest.NewServer(nil)
	dead.Close()

	// Enough panels that rendezvous hashing spreads them over both live
	// nodes, chosen among the cheap-at-minimum-grid ones.
	nodes := ts1.URL + "," + ts2.URL + "," + dead.URL
	for _, fig := range []string{"6a", "6c", "7a", "7c", "model"} {
		code, local, stderr := runCLI(t, "-fig", fig, "-scale", hugeScale, "-format", "csv")
		if code != 0 {
			t.Fatalf("local %s exit %d:\n%s", fig, code, stderr)
		}
		code, remote, stderr := runCLI(t, "-fig", fig, "-scale", hugeScale, "-format", "csv", "-remote", nodes)
		if code != 0 {
			t.Fatalf("multi-node %s exit %d:\n%s", fig, code, stderr)
		}
		if local != remote {
			t.Fatalf("multi-node remote output for %s differs from local", fig)
		}
	}
	s1, s2 := srv1.Scheduler().Stats().Started, srv2.Scheduler().Stats().Started
	if s1 == 0 || s2 == 0 {
		t.Fatalf("panels did not shard across nodes: started %d/%d", s1, s2)
	}
}

func TestRemoteUnreachable(t *testing.T) {
	code, _, stderr := runCLI(t, "-fig", "6a", "-remote", "http://127.0.0.1:1")
	if code == 0 {
		t.Fatal("unreachable daemon accepted")
	}
	if !strings.Contains(stderr, "remote") {
		t.Fatalf("stderr %q", stderr)
	}
}
