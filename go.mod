module emx

go 1.22
