// Sortviz reproduces the paper's Figure 4: multithreaded bitonic sorting
// of 8 elements on two processors with two threads each, rendered as
// per-thread timelines (running / suspended bands) plus the resulting
// sorted sequence.
//
//	go run ./examples/sortviz
package main

import (
	"fmt"
	"log"

	"emx/internal/apps/bitonic"
	"emx/internal/core"
	"emx/internal/trace"
)

func main() {
	fmt.Println("Figure 4: two processors sort 8 elements with 2 threads each.")
	fmt.Println("Thread 0 reads/merges the first half of the mate's block,")
	fmt.Println("thread 1 the second half; merging must follow thread order.")
	fmt.Println()

	cfg := core.DefaultConfig(2)
	rec := &trace.Recorder{}
	if err := bitonic.RunTraced(cfg, bitonic.Params{N: 8, H: 2, Seed: 42}, rec.Record); err != nil {
		log.Fatal(err)
	}
	fmt.Print(rec.Gantt(96))
	fmt.Println()
	fmt.Print(rec.Summary())
	fmt.Println()

	// A larger run with the irregularity visible: count how many reads
	// the early-completion optimization skipped.
	run, err := bitonic.Run(core.DefaultConfig(8), bitonic.Params{N: 512, H: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	var reads uint64
	for i := range run.PEs {
		reads += run.PEs[i].RemoteReads
	}
	// 6 merge steps on P=8: up to 64 reads per PE per step.
	possible := uint64(8 * 6 * 64)
	fmt.Printf("n=512, P=8, h=4: %d of %d possible remote reads issued (%d skipped) —\n",
		reads, possible, possible-reads)
	fmt.Println("\"not all the elements residing in the mate processor need to be read\".")
}
