// Fftsweep runs the multithreaded FFT across thread counts on a
// 16-processor EM-X and prints the communication time and overlapping
// efficiency — a miniature of the paper's Figures 6(c) and 7(c).
//
//	go run ./examples/fftsweep
package main

import (
	"fmt"
	"log"

	"emx/internal/apps/fft"
	"emx/internal/core"
	"emx/internal/metrics"
)

func main() {
	const (
		p = 16
		n = 8192 // stands for the paper's 2M points at scale 256
	)
	fmt.Printf("Multithreaded FFT, P=%d, n=%d points, first log2(P) iterations\n\n", p, n)

	runs := map[int]*metrics.Run{}
	threads := []int{1, 2, 3, 4, 6, 8, 12, 16}
	for _, h := range threads {
		cfg := core.DefaultConfig(p)
		r, err := fft.Run(cfg, fft.Params{N: n, H: h, Seed: 5, SkipVerify: true})
		if err != nil {
			log.Fatal(err)
		}
		runs[h] = r
	}
	base := runs[1]

	fmt.Printf("%-8s %-16s %-14s %-12s %-12s\n",
		"threads", "comm/PE (cyc)", "makespan", "overlap E", "iter-sync/PE")
	for _, h := range threads {
		r := runs[h]
		fmt.Printf("%-8d %-16.0f %-14d %9.1f%%  %-12.1f\n",
			h, r.MeanCommTime(), r.Makespan,
			metrics.Efficiency(base, r), r.MeanSwitches(metrics.SwitchIterSync))
	}

	fmt.Println()
	fmt.Println("FFT has no thread synchronization and a run length of hundreds of")
	fmt.Println("cycles per point, so 2-4 threads hide >95% of the communication;")
	fmt.Println("larger thread counts only add iteration-sync switching cost.")

	// Correctness: the same engine also computes a verifiable transform
	// when the local iterations are enabled.
	cfg := core.DefaultConfig(p)
	if _, err := fft.Run(cfg, fft.Params{N: 1024, H: 4, Seed: 5, AllStages: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("AllStages self-check vs the reference DFT: passed (n=1024).")
}
