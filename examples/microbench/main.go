// Microbench measures the EM-X's primitive costs with EMC-Y assembly
// programs, following the paper's own methodology:
//
//   - T-lat: remote read round-trip latency via a pointer-chase loop
//     ("a typical remote read takes approximately 1 us");
//
//   - overhead: packet-generation cost via a null loop body that only
//     generates packets ("we measured the overhead by using a null loop
//     body, i.e., the loop body has no computation but instructions to
//     generate packets").
//
//     go run ./examples/microbench
package main

import (
	"fmt"
	"log"

	"emx/internal/core"
	"emx/internal/isa"
)

const latencySrc = `
; 64 dependent remote reads from PE 1; run length ~4 cycles, h=1,
; so every round trip is fully exposed.
main:
    li r1, 1          ; mate PE
    li r2, 0          ; offset
    li r3, 64         ; iterations
    li r4, 0          ; i
loop:
    gaddr r5, r1, r2
    rread r6, r5      ; split-phase read: suspend, resume on reply
    addi r4, r4, 1
    blt r4, r3, loop
    halt
`

const nullLoopSrc = `
; The paper's overhead probe: a loop whose body only generates packets.
; 256 remote writes (fire-and-forget) to PE 1.
main:
    li r1, 1
    li r2, 0          ; offset
    li r3, 256
    li r4, 0
loop:
    gaddr r5, r1, r2
    rwrite r5, r4     ; one-cycle packet generation, no suspension
    addi r2, r2, 1
    addi r4, r4, 1
    blt r4, r3, loop
    halt
`

func runProg(name, src string, p int) {
	prog, err := isa.Assemble(name, src)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig(p)
	cfg.MemWords = 1 << 12
	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := isa.Spawn(m, 0, prog, "main", 0); err != nil {
		log.Fatal(err)
	}
	run, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	b := run.PEs[0].Times
	fmt.Printf("%-10s P=%-3d makespan %6d cyc | compute %5d, overhead %4d, comm %5d, switch %5d\n",
		name, p, run.Makespan, b.Compute, b.Overhead, b.Comm, b.Switch)
	switch name {
	case "latency":
		perRead := float64(run.Makespan) / 64
		fmt.Printf("           -> %.1f cycles (%.2f us) per exposed remote read; paper: 20-40 cycles\n",
			perRead, perRead*0.05)
	case "nulloop":
		perPkt := float64(b.Overhead) / 256
		fmt.Printf("           -> %.2f overhead cycles per generated packet; paper: 1-clock send instruction\n",
			perPkt)
	}
}

func main() {
	fmt.Println("EMC-Y assembly microbenchmarks (paper Section 4 methodology)")
	fmt.Println()
	for _, p := range []int{16, 64} {
		runProg("latency", latencySrc, p)
	}
	fmt.Println()
	runProg("nulloop", nullLoopSrc, 16)
}
