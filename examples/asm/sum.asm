; sum.asm — sum the integers 1..arg and store the result at memory[0].
;
;   go run ./cmd/emxasm -run -arg 100 -dump 0:1 examples/asm/sum.asm
main:
    li   r1, 0          ; sum
    li   r2, 1          ; i
loop:
    add  r1, r1, r2
    addi r2, r2, 1
    blt  r2, arg, loop
    add  r1, r1, arg    ; include i == arg
    li   r3, 0
    st   r1, 0(r3)
    halt
