; pingpong.asm — measure remote read latency: 32 dependent remote reads
; from PE (npe/2). Run on at least two processors:
;
;   go run ./cmd/emxasm -run -p 4 examples/asm/pingpong.asm
main:
    srli r1, npe, 1     ; mate = npe/2
    li   r2, 0          ; offset
    li   r3, 32         ; iterations
    li   r4, 0
loop:
    gaddr r5, r1, r2
    rread r6, r5        ; split-phase: suspend until the reply returns
    addi  r2, r2, 1
    addi  r4, r4, 1
    blt   r4, r3, loop
    halt
