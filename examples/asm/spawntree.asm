; spawntree.asm — every PE gets a child thread that deposits pe*pe into
; PE0's memory at offset 32+pe (a gather via remote writes).
;
;   go run ./cmd/emxasm -run -p 8 -dump 32:8 examples/asm/spawntree.asm
main:
    li r1, 0
loop:
    spawn r1, child, r1
    addi  r1, r1, 1
    blt   r1, npe, loop
    halt
child:
    mul   r2, arg, arg  ; pe*pe
    li    r3, 32
    add   r3, r3, arg
    li    r4, 0
    gaddr r5, r4, r3    ; PE0 + (32+pe)
    rwrite r5, r2
    halt
