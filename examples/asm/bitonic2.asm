; generated from internal/isa/demos.go DemoBitonic2
; two-processor bitonic compare-split (paper Figure 4 structure)
main:
    ; ---- generate 4 values: a[i] = (pe*17 + i*i*13 + 5) mod 97 ----
    li   r1, 0            ; i
    li   r2, 17
    mul  r2, pe, r2       ; pe*17
gen:
    mul  r3, r1, r1
    muli r3, r3, 13
    add  r3, r3, r2
    addi r3, r3, 5
    ; r3 mod 97 via repeated subtraction (values are small)
    li   r4, 97
mod:
    blt  r3, r4, modok
    sub  r3, r3, r4
    j    mod
modok:
    st   r3, 0(r1)
    addi r1, r1, 1
    slti r5, r1, 4
    bne  r5, zero, gen

    ; ---- local insertion sort of a[0..3] ----
    li   r1, 1            ; i
outer:
    ld   r2, 0(r1)        ; key
    addi r3, r1, -1       ; j
inner:
    slti r5, r3, 0
    bne  r5, zero, place
    ld   r4, 0(r3)
    slt  r5, r2, r4       ; key < a[j] ?
    beq  r5, zero, place
    addi r6, r3, 1
    st   r4, 0(r6)        ; a[j+1] = a[j]
    addi r3, r3, -1
    j    inner
place:
    addi r6, r3, 1
    st   r2, 0(r6)        ; a[j+1] = key
    addi r1, r1, 1
    slti r5, r1, 4
    bne  r5, zero, outer

    ; ---- read the partner's block, element by element ----
    xori r7, pe, 1        ; partner PE
    li   r1, 0            ; k
read:
    gaddr r8, r7, r1
    rread r9, r8          ; split-phase: suspend, switch, resume
    addi  r2, r1, 8
    st    r9, 0(r2)       ; recv[k]
    addi  r1, r1, 1
    slti  r5, r1, 4
    bne   r5, zero, read

    ; ---- merge: PE0 keeps the low half, PE1 the high half ----
    bne  pe, zero, high
    ; keep-low: ascending cursors
    li   r1, 0            ; i over a[]
    li   r2, 8            ; j over recv[]
    li   r3, 16           ; out cursor
    li   r10, 20          ; out end
low:
    ld   r4, 0(r1)
    ld   r5, 0(r2)
    slt  r6, r5, r4       ; recv < local ?
    bne  r6, zero, takeR
    st   r4, 0(r3)
    addi r1, r1, 1
    j    lowNext
takeR:
    st   r5, 0(r3)
    addi r2, r2, 1
lowNext:
    addi r3, r3, 1
    blt  r3, r10, low
    halt

high:
    ; keep-high: descending cursors
    li   r1, 3            ; i over a[]
    li   r2, 11           ; j over recv[]
    li   r3, 19           ; out cursor
    li   r10, 16
hi:
    ld   r4, 0(r1)
    ld   r5, 0(r2)
    slt  r6, r4, r5       ; local < recv ?
    bne  r6, zero, takeRh
    st   r4, 0(r3)
    addi r1, r1, -1
    j    hiNext
takeRh:
    st   r5, 0(r3)
    addi r2, r2, -1
hiNext:
    addi r3, r3, -1
    bge  r3, r10, hi
    halt
