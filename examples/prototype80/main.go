// Prototype80 simulates the machine the paper actually ran on: the
// 80-processor EM-X prototype, operational at the Electrotechnical
// Laboratory since December 1995. The 80 EMC-Y processors route through a
// 128-node circular-Omega switch fabric (seven hops per route).
//
// The demo runs a multithreaded all-pairs-style kernel — every PE's h
// threads read from a mate PE across the machine with a short run length
// — and reports the latency-tolerance metrics at machine scale.
//
//	go run ./examples/prototype80
package main

import (
	"fmt"
	"log"

	"emx/internal/analytic"
	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/packet"
)

const P = 80

func run(h int) *metrics.Run {
	cfg := core.DefaultConfig(P)
	cfg.MemWords = 1 << 12
	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bar := m.NewBarrier("iter", h)
	for pe := packet.PE(0); pe < P; pe++ {
		pe := pe
		for th := 0; th < h; th++ {
			th := th
			// Each thread reads from its own mate so the target's service
			// path does not become a hot spot at large h.
			mate := (pe + packet.PE(17*(th+1))) % P
			m.SpawnAt(pe, "w", packet.Word(th), func(tc *core.TC) {
				for it := 0; it < 4; it++ {
					for k := 0; k < 64/h; k++ {
						tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(th*64 + k)})
						tc.Compute(12)
					}
					tc.Barrier(bar)
				}
			})
		}
	}
	r, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Printf("EM-X prototype: %d EMC-Y processors @ 20 MHz, 128-node circular Omega\n\n", P)

	cfg := core.DefaultConfig(P)
	cfg.MemWords = 1 << 10
	fmt.Printf("unloaded remote read: %d cycles (%.2f us)\n\n",
		analytic.MeasureLatency(cfg), analytic.MeasureLatency(cfg).Micros())

	base := run(1)
	fmt.Printf("%-8s %-14s %-14s %-10s %-14s\n",
		"threads", "makespan(cyc)", "comm/PE(cyc)", "overlap E", "packets")
	for _, h := range []int{1, 2, 4, 8} {
		r := run(h)
		fmt.Printf("%-8d %-14d %-14.0f %8.1f%%  %-14d\n",
			h, r.Makespan, r.MeanCommTime(), metrics.Efficiency(base, r), r.PacketsSent)
	}
	fmt.Println("\n80 processors synchronize through ceil(log2(80)) = 7 dissemination")
	fmt.Println("rounds per barrier; every per-PE cycle decomposition still sums to")
	fmt.Println("the makespan exactly.")
}
