// Em4compare demonstrates the EM-X's defining architectural feature: the
// by-passing DMA that services remote reads without consuming Execution
// Unit cycles. The same read-heavy workload runs twice — once with EM-X
// servicing (bypass) and once with the predecessor EM-4's behaviour
// (every request becomes a one-instruction EXU thread) — and the victim
// processor's slowdown is reported.
//
//	go run ./examples/em4compare
package main

import (
	"fmt"
	"log"

	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/proc"
)

func run(mode proc.ServiceMode) *metrics.Run {
	cfg := core.DefaultConfig(8)
	cfg.MemWords = 1 << 12
	cfg.Proc.Mode = mode
	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// PE 0 is a busy compute node; every other PE hammers it with reads.
	m.SpawnAt(0, "compute", 0, func(tc *core.TC) {
		for i := 0; i < 200; i++ {
			tc.Compute(50)
		}
	})
	for pe := packet.PE(1); pe < 8; pe++ {
		pe := pe
		m.SpawnAt(pe, "reader", 0, func(tc *core.TC) {
			for i := 0; i < 100; i++ {
				tc.Read(packet.GlobalAddr{PE: 0, Off: uint32(i)})
			}
		})
	}
	r, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("EM-X by-passing DMA vs EM-4 EXU servicing (700 remote reads at PE0)")
	fmt.Println()
	bypass := run(proc.ServiceBypass)
	exu := run(proc.ServiceEXU)

	report := func(name string, r *metrics.Run) {
		pe0 := r.PEs[0]
		fmt.Printf("%-18s makespan %6d cyc | PE0: %5d compute, %5d overhead cyc, DMA %d / EXU %d serviced\n",
			name, r.Makespan, pe0.Times.Compute, pe0.Times.Overhead,
			pe0.ServicedDMA, pe0.ServicedEXU)
	}
	report("EM-X (bypass)", bypass)
	report("EM-4 (EXU)", exu)

	slow := float64(exu.Makespan)/float64(bypass.Makespan) - 1
	fmt.Printf("\nEM-4-style servicing slows this workload down by %.1f%%:\n", 100*slow)
	fmt.Println("request servicing steals the victim EXU's cycles, which is exactly")
	fmt.Println("why the EM-X routes remote memory traffic through the IBU/OBU path.")
}
