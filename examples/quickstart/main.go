// Quickstart: build a simulated EM-X, run fine-grain threads on it, and
// read the paper's metrics.
//
// Four threads per processor each perform split-phase remote reads from a
// mate processor with a short computation in between — the core
// latency-tolerance pattern of the paper. Compare the exposed
// communication time against a single-threaded run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/packet"
)

func runMachine(h int) *metrics.Run {
	// A 16-processor EM-X with the paper's timing calibration.
	cfg := core.DefaultConfig(16)
	cfg.MemWords = 1 << 12

	m, err := core.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fill every PE's memory with data for its mate to read.
	for pe := packet.PE(0); pe < 16; pe++ {
		for off := uint32(0); off < 256; off++ {
			m.Mem(pe).Poke(off, packet.Word(uint32(pe)<<16|off))
		}
	}

	// h threads per PE, each reading 64/h words from the mate PE with a
	// 12-cycle run length between reads (the paper's sorting loop shape).
	for pe := packet.PE(0); pe < 16; pe++ {
		pe := pe
		mate := pe ^ 8
		for th := 0; th < h; th++ {
			th := th
			m.SpawnAt(pe, fmt.Sprintf("reader-%d", th), packet.Word(th), func(tc *core.TC) {
				per := 64 / h
				for k := 0; k < per; k++ {
					off := uint32(th*per + k)
					v := tc.Read(packet.GlobalAddr{PE: mate, Off: off}) // suspends; EXU switches
					tc.Compute(12)                                      // run length
					tc.PokeLocal(512+off, v)
				}
			})
		}
	}

	run, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	return run
}

func main() {
	fmt.Println("EM-X quickstart: overlapping communication with computation")
	fmt.Println()
	base := runMachine(1)
	fmt.Printf("%-8s %-14s %-16s %-10s\n", "threads", "makespan(cyc)", "comm/PE(cyc)", "overlap E")
	for _, h := range []int{1, 2, 4, 8} {
		run := runMachine(h)
		fmt.Printf("%-8d %-14d %-16.0f %6.1f%%\n",
			h, run.Makespan, run.MeanCommTime(), metrics.Efficiency(base, run))
	}
	fmt.Println()
	fmt.Println("With 2-4 threads the split-phase read latency is hidden behind")
	fmt.Println("other threads' computation, exactly the paper's headline effect.")
}
