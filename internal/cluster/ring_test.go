package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like the real routing keys: RunIdentity content hashes.
		out[i] = fmt.Sprintf("run-key-%04d", i)
	}
	return out
}

func TestRingStableOwnership(t *testing.T) {
	members := []string{"http://c:8484", "http://a:8484", "http://b:8484"}
	r1 := NewRing(members)
	r2 := NewRing([]string{"http://b:8484", "http://a:8484", "http://c:8484", "http://a:8484"})
	if r1.Len() != 3 || r2.Len() != 3 {
		t.Fatalf("dedup/len wrong: %d, %d", r1.Len(), r2.Len())
	}
	for _, k := range keys(200) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q depends on construction order", k)
		}
		ranked := r1.Ranked(k)
		if len(ranked) != 3 || ranked[0] != r1.Owner(k) {
			t.Fatalf("Ranked(%q) = %v, owner %q", k, ranked, r1.Owner(k))
		}
	}
}

// TestRingMinimalRemap is the rendezvous-hashing acceptance test: when
// one member departs, only the keys it owned change owner — everyone
// else's shard (and therefore their warm run cache) is untouched.
func TestRingMinimalRemap(t *testing.T) {
	members := []string{"http://a:8484", "http://b:8484", "http://c:8484", "http://d:8484"}
	full := NewRing(members)
	departed := members[1]
	reduced := NewRing([]string{members[0], members[2], members[3]})

	moved, kept, owned := 0, 0, 0
	for _, k := range keys(1000) {
		before, after := full.Owner(k), reduced.Owner(k)
		if before == departed {
			owned++
			// Must move, and precisely to the second-ranked member.
			if after == departed {
				t.Fatalf("key %q still owned by departed member", k)
			}
			if want := full.Ranked(k)[1]; after != want {
				t.Fatalf("key %q moved to %q, want second-ranked %q", k, after, want)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q reshuffled from %q to %q though its owner stayed", k, before, after)
		}
		kept++
	}
	if owned == 0 {
		t.Fatal("departed member owned no keys; test is vacuous")
	}
	if moved+kept != 1000 {
		t.Fatalf("accounting: moved %d + kept %d != 1000", moved, kept)
	}
	// HRW should spread keys roughly evenly: the departed quarter of a
	// 4-node ring should own somewhere near 250 of 1000 keys.
	if owned < 150 || owned > 350 {
		t.Errorf("departed member owned %d/1000 keys; distribution badly skewed", owned)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if NewRing(nil).Owner("k") != "" {
		t.Error("empty ring must own nothing")
	}
	one := NewRing([]string{"http://only:8484"})
	if one.Owner("k") != "http://only:8484" || len(one.Ranked("k")) != 1 {
		t.Error("single-member ring must own everything")
	}
}
