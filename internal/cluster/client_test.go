package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"emx/internal/labd/service"
	"emx/internal/metrics"
)

func figureBody(t *testing.T, fig string) []byte {
	t.Helper()
	b, err := json.Marshal(service.FigureRequest{Fig: fig, Scale: hugeScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestClientRoutesToOwner(t *testing.T) {
	_, ts1 := newNode(t)
	_, ts2 := newNode(t)
	m := NewMembership([]string{ts1.URL, ts2.URL}, MembershipOptions{})
	reg := metrics.NewRegistry()
	c := NewClient(m, ClientOptions{Registry: reg, RetryBackoff: time.Millisecond})

	key := FigureKey("6a", hugeScale, 1)
	owner := NewRing(m.Members()).Owner(key)
	res, err := c.Do(key, "/v1/figure", figureBody(t, "6a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != owner {
		t.Errorf("request answered by %s, want ring owner %s", res.Node, owner)
	}
	if res.Status != http.StatusOK {
		t.Errorf("status %d", res.Status)
	}
	if reg.Snapshot()["emxcluster_failovers_total"] != 0 {
		t.Error("routine owner hit counted as failover")
	}
}

func TestClientFailsOverToPeer(t *testing.T) {
	srv1, ts1 := newNode(t)
	srv2, ts2 := newNode(t)
	m := NewMembership([]string{ts1.URL, ts2.URL}, MembershipOptions{})
	reg := metrics.NewRegistry()
	c := NewClient(m, ClientOptions{Registry: reg, RetryBackoff: time.Millisecond})

	key := FigureKey("6a", hugeScale, 1)
	owner := NewRing(m.Members()).Owner(key)
	// Kill the owner; the peer must answer with identical bytes.
	peer := srv2
	if owner == ts1.URL {
		ts1.Close()
	} else {
		ts2.Close()
		peer = srv1
	}

	res, err := c.Do(key, "/v1/figure", figureBody(t, "6a"))
	if err != nil {
		t.Fatalf("failover did not rescue the request: %v", err)
	}
	if res.Node == owner {
		t.Fatal("dead owner answered")
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status %d", res.Status)
	}
	if m.IsHealthy(owner) {
		t.Error("dead owner not passively marked down")
	}
	snap := reg.Snapshot()
	if snap["emxcluster_failovers_total"] == 0 || snap["emxcluster_retries_total"] == 0 {
		t.Errorf("failover/retry counters not moved: %v", snap)
	}
	if peer.Scheduler().Stats().Started == 0 {
		t.Error("surviving peer executed nothing")
	}
}

func TestClientBusyNodeRetriesAndHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	busyThenOK := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"labd: run queue full"}`))
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer busyThenOK.Close()

	m := NewMembership([]string{busyThenOK.URL}, MembershipOptions{})
	reg := metrics.NewRegistry()
	c := NewClient(m, ClientOptions{
		Registry:     reg,
		RetryBackoff: time.Millisecond,
		MaxRetryWait: 5 * time.Millisecond, // cap the 1s Retry-After for the test
	})
	start := time.Now()
	res, err := c.Do("some-key", "/v1/run", []byte(`{}`))
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("res %+v err %v", res, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("MaxRetryWait did not cap the Retry-After wait: %s", elapsed)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (busy then success)", calls.Load())
	}
	// Backpressure must not mark the node dead — it answered.
	if !m.IsHealthy(busyThenOK.URL) {
		t.Error("503 backpressure marked the node down")
	}
}

func TestClientDoesNotRetryValidationErrors(t *testing.T) {
	var calls atomic.Int32
	badReq := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"p must be >= 1"}`))
	}))
	defer badReq.Close()

	m := NewMembership([]string{badReq.URL}, MembershipOptions{})
	c := NewClient(m, ClientOptions{RetryBackoff: time.Millisecond})
	res, err := c.Do("k", "/v1/run", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 passed through", res.Status)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

func TestClientHedgesSlowOwner(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(release) // LIFO: unblock the parked handler before Close waits on it
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"fast":true}`))
	}))
	defer fast.Close()

	m := NewMembership([]string{slow.URL, fast.URL}, MembershipOptions{})
	reg := metrics.NewRegistry()
	c := NewClient(m, ClientOptions{
		Registry:     reg,
		RetryBackoff: time.Millisecond,
		HedgeDelay:   5 * time.Millisecond,
	})

	// Find a key the slow node owns, so the hedge targets the fast one.
	ring := NewRing(m.Members())
	key := "k0"
	for i := 0; ring.Owner(key) != slow.URL && i < 10000; i++ {
		key = "k" + string(rune('a'+i%26)) + key
	}
	if ring.Owner(key) != slow.URL {
		t.Fatal("could not construct a key owned by the slow node")
	}

	res, err := c.Do(key, "/v1/run", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node != fast.URL {
		t.Fatalf("answered by %s, want hedged fast node", res.Node)
	}
	snap := reg.Snapshot()
	if snap["emxcluster_hedges_total"] == 0 || snap["emxcluster_hedge_wins_total"] == 0 {
		t.Errorf("hedge counters not moved: %v", snap)
	}
}

// trackedBody counts Close calls so the test can prove every response
// body the transport handed out — hedge losers included — was closed.
type trackedBody struct {
	io.ReadCloser
	closed *atomic.Int64
}

func (b trackedBody) Close() error {
	b.closed.Add(1)
	return b.ReadCloser.Close()
}

// trackedTransport wraps the default transport and counts the response
// bodies it opens and the ones callers close.
type trackedTransport struct {
	opened, closed atomic.Int64
}

func (tt *trackedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := http.DefaultTransport.RoundTrip(req)
	if resp != nil {
		tt.opened.Add(1)
		resp.Body = trackedBody{resp.Body, &tt.closed}
	}
	return resp, err
}

// TestClientHedgeLoserDrainedAndUnpoisoned is the regression test for
// two hedging bugs: the loser's response body leaking (never drained or
// closed, pinning its pooled connection) under sustained hedging, and
// a canceled hedge loser being counted as a node failure — marking a
// healthy-but-slower node down and skewing its error counters. It also
// pins the win/loss accounting when both attempts complete: exactly one
// of the two is recorded per hedged request.
func TestClientHedgeLoserDrainedAndUnpoisoned(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(10 * time.Millisecond): //emx:hostclock test fixture: slower-but-alive owner
		case <-r.Context().Done():
			return
		}
		w.Write([]byte(`{"slow":true}`))
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"fast":true}`))
	}))
	defer fast.Close()

	m := NewMembership([]string{slow.URL, fast.URL}, MembershipOptions{})
	reg := metrics.NewRegistry()
	tt := &trackedTransport{}
	c := NewClient(m, ClientOptions{
		Registry:     reg,
		RetryBackoff: time.Millisecond,
		HedgeDelay:   time.Millisecond,
		HTTPClient:   &http.Client{Transport: tt},
	})

	// A key the slow node owns, so every request hedges to the fast one.
	ring := NewRing(m.Members())
	key := "k0"
	for i := 0; ring.Owner(key) != slow.URL && i < 10000; i++ {
		key = "k" + string(rune('a'+i%26)) + key
	}
	if ring.Owner(key) != slow.URL {
		t.Fatal("could not construct a key owned by the slow node")
	}

	const rounds = 25
	for i := 0; i < rounds; i++ {
		res, err := c.Do(key, "/v1/run", []byte(`{}`))
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if res.Status != http.StatusOK {
			t.Fatalf("round %d: status %d", i, res.Status)
		}
	}

	// Losers finish (or get canceled) asynchronously after each winner
	// returns; give their goroutines a moment to close their bodies.
	deadline := time.Now().Add(2 * time.Second)                              //emx:hostclock test polling bound
	for tt.closed.Load() < tt.opened.Load() && time.Now().Before(deadline) { //emx:hostclock
		time.Sleep(time.Millisecond) //emx:hostclock
	}
	if opened, closed := tt.opened.Load(), tt.closed.Load(); closed != opened {
		t.Errorf("response bodies leaked: %d opened, %d closed", opened, closed)
	}

	// The slow owner answered everything it wasn't canceled out of:
	// losing a hedge race must not poison its health or error counters.
	if !m.IsHealthy(slow.URL) {
		t.Error("hedge-losing owner marked unhealthy")
	}
	snap := reg.Snapshot()
	if errs := snap[`emxcluster_node_errors_total{node="`+slow.URL+`"}`]; errs != 0 {
		t.Errorf("hedge-loser cancellations counted as %v node errors", errs)
	}
	s := c.Stats()
	if s.Hedges == 0 {
		t.Fatal("no hedges launched")
	}
	if s.HedgeWins+s.HedgeLosses != s.Hedges {
		t.Errorf("win/loss accounting drifted: hedges=%d wins=%d losses=%d",
			s.Hedges, s.HedgeWins, s.HedgeLosses)
	}
}

func TestClientLocalFallback(t *testing.T) {
	srv := service.New(service.Options{Scale: hugeScale, Seed: 1})
	defer srv.Close()

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	m := NewMembership([]string{dead.URL}, MembershipOptions{})
	reg := metrics.NewRegistry()
	c := NewClient(m, ClientOptions{
		Registry:     reg,
		Retries:      -1, // no remote retries: straight to local after the owner fails
		RetryBackoff: time.Millisecond,
		Local:        srv.Handler(),
	})

	figs, err := c.Figure("6a", hugeScale, 1)
	if err != nil {
		t.Fatalf("local fallback failed: %v", err)
	}
	if len(figs) != 1 || figs[0].SimCycles == 0 {
		t.Fatalf("bad figures %+v", figs)
	}
	if reg.Snapshot()["emxcluster_local_fallback_total"] != 1 {
		t.Error("local fallback not counted")
	}
	if srv.Scheduler().Stats().Started == 0 {
		t.Error("local scheduler executed nothing")
	}
}

// TestClientStatsDeltas: Stats snapshots diff into the per-run outcome
// counts load generators report.
func TestClientStatsDeltas(t *testing.T) {
	srv1, ts1 := newNode(t)
	_, ts2 := newNode(t)
	_ = srv1
	m := NewMembership([]string{ts1.URL, ts2.URL}, MembershipOptions{})
	c := NewClient(m, ClientOptions{RetryBackoff: time.Millisecond})

	key := FigureKey("6a", hugeScale, 1)
	before := c.Stats()
	if _, err := c.Do(key, "/v1/figure", figureBody(t, "6a")); err != nil {
		t.Fatal(err)
	}
	d := c.Stats().Sub(before)
	if d.Attempts != 1 || d.Retries != 0 || d.Failovers != 0 {
		t.Fatalf("healthy-owner deltas: %+v", d)
	}

	// Kill the owner: the next request must retry and fail over, and
	// the deltas must show exactly that.
	owner := NewRing(m.Members()).Owner(key)
	for _, ts := range []*httptest.Server{ts1, ts2} {
		if ts.URL == owner {
			ts.CloseClientConnections()
			ts.Close()
		}
	}
	before = c.Stats()
	res, err := c.Do(key, "/v1/figure", figureBody(t, "6a"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Node == owner {
		t.Fatalf("dead owner %s answered", owner)
	}
	d = c.Stats().Sub(before)
	if d.Failovers != 1 || d.Retries == 0 {
		t.Fatalf("dead-owner deltas: %+v", d)
	}
}

// TestClientStampsDeadlineHeader: DoDeadline sends the absolute
// deadline on every attempt in the exact FormatDeadline encoding, and
// a zero deadline sends no header at all.
func TestClientStampsDeadlineHeader(t *testing.T) {
	var header atomic.Value
	echo := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		header.Store(r.Header.Get(service.DeadlineHeader))
		w.Write([]byte("{}"))
	}))
	t.Cleanup(echo.Close)
	m := NewMembership([]string{echo.URL}, MembershipOptions{})
	c := NewClient(m, ClientOptions{})

	deadline := time.Now().Add(time.Hour) //emx:hostclock test fixture deadline
	if _, err := c.DoDeadline("k", "/v1/run", []byte("{}"), deadline); err != nil {
		t.Fatal(err)
	}
	if got, want := header.Load().(string), service.FormatDeadline(deadline); got != want {
		t.Fatalf("deadline header = %q, want %q", got, want)
	}

	if _, err := c.Do("k", "/v1/run", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if got := header.Load().(string); got != "" {
		t.Fatalf("zero deadline sent header %q", got)
	}
}

// TestClientExpiredDeadlineFailsWithoutAttempt: a dead deadline stops
// the client before any network traffic.
func TestClientExpiredDeadlineFailsWithoutAttempt(t *testing.T) {
	var hits atomic.Int64
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("{}"))
	}))
	t.Cleanup(node.Close)
	m := NewMembership([]string{node.URL}, MembershipOptions{})
	c := NewClient(m, ClientOptions{})

	if _, err := c.DoDeadline("k", "/v1/run", []byte("{}"), time.Unix(1, 0)); err == nil {
		t.Fatal("expired deadline succeeded")
	}
	if n := hits.Load(); n != 0 {
		t.Fatalf("expired request reached the node %d times", n)
	}
}
