// Package cluster federates N emxd nodes into one experiment service:
// a rendezvous-hashing ring routes each content-addressed run to an
// owner node (so the per-node LRU caches shard instead of duplicating),
// a membership layer probes /v1/status and tracks node health and load,
// and a failover-aware client issues requests with per-attempt
// timeouts, bounded retries, hedged second attempts, and graceful
// degradation to any healthy peer — or local in-process execution —
// when the owner is down.
//
// The design practices what the simulated machine preaches: the EM-X
// tolerates remote latency by overlapping useful work with outstanding
// split-phase requests, and the cluster client tolerates slow or dead
// owners by overlapping a hedged request with the outstanding one.
// Failover never changes results: runs are deterministic, so any node
// (or the local fallback) produces byte-identical measurements for a
// given run identity.
package cluster

import "emx/internal/ring"

// Ring is the rendezvous-hashing ring the cluster routes by. The
// implementation lives in internal/ring so the replication layer
// (internal/labd/service) ranks replica sets with the identical hash;
// this alias keeps the cluster-level API unchanged.
type Ring = ring.Ring

// NewRing builds a ring over the given member identifiers (node base
// URLs). See ring.New.
func NewRing(members []string) *Ring { return ring.New(members) }
