// Package cluster federates N emxd nodes into one experiment service:
// a rendezvous-hashing ring routes each content-addressed run to an
// owner node (so the per-node LRU caches shard instead of duplicating),
// a membership layer probes /v1/status and tracks node health and load,
// and a failover-aware client issues requests with per-attempt
// timeouts, bounded retries, hedged second attempts, and graceful
// degradation to any healthy peer — or local in-process execution —
// when the owner is down.
//
// The design practices what the simulated machine preaches: the EM-X
// tolerates remote latency by overlapping useful work with outstanding
// split-phase requests, and the cluster client tolerates slow or dead
// owners by overlapping a hedged request with the outstanding one.
// Failover never changes results: runs are deterministic, so any node
// (or the local fallback) produces byte-identical measurements for a
// given run identity.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring is a rendezvous-hashing (highest-random-weight) ring over a
// fixed member set. Each (member, key) pair gets a pseudo-random score;
// a key's owner is the member with the highest score. When one member
// departs, only the keys it owned move (each to its second-ranked
// member) — every other key keeps its owner, which is what keeps the
// sharded run caches warm across membership changes.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	members []string // sorted, deduplicated
}

// NewRing builds a ring over the given member identifiers (node base
// URLs). Members are deduplicated and sorted, so rings built from the
// same set in any order behave identically.
func NewRing(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	return &Ring{members: ms}
}

// Members returns the ring's member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// score is the HRW weight of key on member: a 64-bit FNV-1a hash over
// member and key with a fixed separator, passed through a full-avalanche
// finalizer. The finalizer matters: FNV alone leaves the high bits of
// similar inputs correlated, which skews HRW's argmax badly.
// Deterministic across processes, hosts, and Go versions (unlike map
// iteration or the runtime's seeded string hash).
func score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit finalizer from MurmurHash3: every input bit
// avalanches to every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member that owns key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	var (
		best      string
		bestScore uint64
	)
	for _, m := range r.members {
		if s := score(m, key); best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Ranked returns every member ordered by descending preference for
// key: the owner first, then the member each successive failover
// falls to. Ties break toward the lexicographically smaller member so
// the order is total and deterministic.
func (r *Ring) Ranked(key string) []string {
	type ms struct {
		m string
		s uint64
	}
	scored := make([]ms, len(r.members))
	for i, m := range r.members {
		scored[i] = ms{m, score(m, key)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		return scored[i].m < scored[j].m
	})
	out := make([]string, len(scored))
	for i, e := range scored {
		out[i] = e.m
	}
	return out
}
