package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"emx/internal/harness"
	"emx/internal/labd/service"
	"emx/internal/metrics"
	"emx/internal/ring"
)

// ClientOptions tunes the failover policy. The zero value is usable:
// no per-attempt timeout, two retries, 100ms base backoff, hedging
// disabled, no local fallback.
type ClientOptions struct {
	// AttemptTimeout bounds one request attempt (0: no timeout — figure
	// sweeps at large scale legitimately run for minutes).
	AttemptTimeout time.Duration
	// Retries is how many additional attempts follow a failed first one,
	// each against the next-ranked candidate node (default 2).
	Retries int
	// Replicas is the cluster's cache replication factor (R). When set
	// above Retries+1 it raises the attempt budget so failover walks the
	// whole replica set — a cached result on any surviving replica is
	// always preferred over a local recompute.
	Replicas int
	// RetryBackoff is the base delay between attempt rounds; round i
	// waits RetryBackoff * 2^i plus a deterministic jitter derived from
	// the routing key (default 100ms).
	RetryBackoff time.Duration
	// MaxRetryWait caps any single inter-attempt wait, including waits
	// requested by a node's Retry-After backpressure header (default 2s).
	MaxRetryWait time.Duration
	// HedgeDelay, when positive, launches a second request to the
	// next-ranked node if the owner has not answered within it. 0
	// disables time-based hedging.
	HedgeDelay time.Duration
	// HedgeQueueFraction hedges immediately (no delay) when the owner's
	// last probed queue fullness is at or above it (default 0.9; only
	// effective when HedgeDelay > 0).
	HedgeQueueFraction float64
	// Local, when set, serves requests in-process (an emxd
	// service.Server handler) after every remote candidate has failed —
	// graceful degradation to local execution. Results are byte-identical
	// to a remote node's: runs are deterministic.
	Local http.Handler
	// HTTPClient overrides the transport (default: a dedicated client
	// with no global timeout; AttemptTimeout governs per attempt).
	HTTPClient *http.Client
	// Registry receives the client's operational counters (nil: private).
	Registry *metrics.Registry
}

// LocalNode is the Node name reported for responses served by the
// in-process fallback handler.
const LocalNode = "local"

// Result is the terminal response of a routed request: the node that
// answered, the HTTP status, and the full body. Non-2xx statuses that
// are not worth failing over (validation errors, say) surface here
// rather than as an error, so gateways can pass them through.
type Result struct {
	Node   string
	Status int
	Header http.Header
	Body   []byte
}

// Client routes requests across a membership's nodes by rendezvous
// hashing with bounded retries, hedging, and failover. Safe for
// concurrent use.
type Client struct {
	members *Membership
	opts    ClientOptions
	http    *http.Client

	attempts    *metrics.Counter
	retries     *metrics.Counter
	failovers   *metrics.Counter
	hedges      *metrics.Counter
	hedgeWins   *metrics.Counter
	hedgeLosses *metrics.Counter
	localRuns   *metrics.Counter
	nodeErrs    func(node string) *metrics.Counter
}

// Stats is a point-in-time snapshot of the client's per-attempt outcome
// counters. Load generators diff two snapshots to report what the
// failover machinery did during a run (the counters themselves also
// expose via the Registry for /metrics).
type Stats struct {
	// Attempts counts every request issued to a member node, including
	// retries and hedges.
	Attempts uint64
	// Retries counts attempts beyond the first for a request.
	Retries uint64
	// Failovers counts requests answered by a node other than the ring
	// owner (including local-fallback rescues).
	Failovers uint64
	// Hedges counts hedged second attempts launched against slow owners;
	// HedgeWins those answered before the owner, HedgeLosses those the
	// owner beat anyway.
	Hedges, HedgeWins, HedgeLosses uint64
	// LocalFallbacks counts requests served by in-process execution
	// after every remote candidate failed.
	LocalFallbacks uint64
}

// Stats returns the client's current outcome counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:       c.attempts.Value(),
		Retries:        c.retries.Value(),
		Failovers:      c.failovers.Value(),
		Hedges:         c.hedges.Value(),
		HedgeWins:      c.hedgeWins.Value(),
		HedgeLosses:    c.hedgeLosses.Value(),
		LocalFallbacks: c.localRuns.Value(),
	}
}

// Sub returns s - o field-wise: the outcomes between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Attempts:       s.Attempts - o.Attempts,
		Retries:        s.Retries - o.Retries,
		Failovers:      s.Failovers - o.Failovers,
		Hedges:         s.Hedges - o.Hedges,
		HedgeWins:      s.HedgeWins - o.HedgeWins,
		HedgeLosses:    s.HedgeLosses - o.HedgeLosses,
		LocalFallbacks: s.LocalFallbacks - o.LocalFallbacks,
	}
}

// NewClient builds a client over the membership.
func NewClient(m *Membership, opts ClientOptions) *Client {
	if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Retries < 0 { // explicit "no retries"
		opts.Retries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 100 * time.Millisecond
	}
	if opts.MaxRetryWait <= 0 {
		opts.MaxRetryWait = 2 * time.Second
	}
	if opts.HedgeQueueFraction <= 0 {
		opts.HedgeQueueFraction = 0.9
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Client{
		members:     m,
		opts:        opts,
		http:        hc,
		attempts:    reg.Counter("emxcluster_attempts_total", "request attempts issued to member nodes"),
		retries:     reg.Counter("emxcluster_retries_total", "attempts beyond the first for a request"),
		failovers:   reg.Counter("emxcluster_failovers_total", "requests answered by a node other than the ring owner"),
		hedges:      reg.Counter("emxcluster_hedges_total", "hedged second attempts launched against slow owners"),
		hedgeWins:   reg.Counter("emxcluster_hedge_wins_total", "hedged attempts that answered before the owner"),
		hedgeLosses: reg.Counter("emxcluster_hedge_losses_total", "hedged attempts the owner answered ahead of"),
		localRuns:   reg.Counter("emxcluster_local_fallback_total", "requests served by local in-process execution"),
		nodeErrs: func(node string) *metrics.Counter {
			return reg.Labeled("emxcluster_node_errors_total",
				"failed attempts by member node", "node", node)
		},
	}
}

// Membership exposes the client's membership view.
func (c *Client) Membership() *Membership { return c.members }

// errPermanent wraps an HTTP result that must not be retried: the node
// answered authoritatively (a 4xx validation error, say), so failing
// over to a peer would just repeat it.
type errPermanent struct{ res *Result }

func (e errPermanent) Error() string {
	return fmt.Sprintf("node %s: HTTP %d", e.res.Node, e.res.Status)
}

// Do routes one POST to the cluster: the ring owner of key first, then
// — across bounded retries with jittered exponential backoff — each
// next-ranked healthy node, then any node at all, then the local
// fallback. A slow owner is hedged with a concurrent second attempt.
// 503 responses (queue backpressure) wait out the node's Retry-After
// hint (capped) before the next candidate; 4xx responses return as-is.
func (c *Client) Do(key, path string, body []byte) (*Result, error) {
	return c.DoDeadline(key, path, body, time.Time{})
}

// DoDeadline is Do with a request deadline (zero: none). The deadline
// rides every attempt as a DeadlineHeader so nodes can shed the request
// once it expires, bounds each attempt's context, and stops the retry
// loop: no attempt starts — and no backoff sleeps — past it.
func (c *Client) DoDeadline(key, path string, body []byte, deadline time.Time) (*Result, error) {
	candidates := c.candidates(key)
	if len(candidates) == 0 && c.opts.Local == nil {
		return nil, errors.New("cluster: no member nodes")
	}
	owner := ""
	if len(candidates) > 0 {
		owner = candidates[0]
	}

	var lastErr error
	attempts := c.opts.Retries + 1
	if c.opts.Replicas > attempts {
		// Walk the full replica set before giving up: any surviving
		// replica serves the cached bytes; recompute is the last resort.
		attempts = c.opts.Replicas
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			c.retries.Inc()
			c.sleepBackoff(key, i-1, lastErr, deadline)
		}
		if expired(deadline) {
			if lastErr == nil {
				lastErr = fmt.Errorf("request deadline %s passed", deadline.Format(time.RFC3339Nano))
			}
			break
		}
		if len(candidates) == 0 {
			break
		}
		node := candidates[i%len(candidates)]
		var (
			res *Result
			err error
		)
		if i == 0 && c.opts.HedgeDelay > 0 && len(candidates) > 1 {
			res, err = c.hedged(key, path, body, candidates[0], candidates[1], deadline)
		} else {
			res, err = c.attempt(node, path, body, deadline)
		}
		if err == nil {
			if res.Node != owner {
				c.failovers.Inc()
			}
			return res, nil
		}
		var perm errPermanent
		if errors.As(err, &perm) {
			return perm.res, nil
		}
		lastErr = err
	}

	if c.opts.Local != nil && !expired(deadline) {
		c.localRuns.Inc()
		res, err := c.local(path, body)
		if err == nil && owner != "" {
			c.failovers.Inc()
		}
		return res, err
	}
	return nil, fmt.Errorf("cluster: all %d attempts failed for %s: %w", attempts, path, lastErr)
}

// expired reports whether a nonzero deadline has passed.
func expired(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline) //emx:hostclock request deadlines are host wall-clock
}

// candidates orders the nodes to try: ranked healthy nodes first, then
// ranked unhealthy ones as a last resort (health data may be stale and
// a "down" node is still better than no node).
func (c *Client) candidates(key string) []string {
	ranked := NewRing(c.members.Members()).Ranked(key)
	healthy := make([]string, 0, len(ranked))
	down := make([]string, 0, len(ranked))
	for _, n := range ranked {
		if c.members.IsHealthy(n) {
			healthy = append(healthy, n)
		} else {
			down = append(down, n)
		}
	}
	return append(healthy, down...)
}

// sleepBackoff waits before retry round i: base * 2^i plus a
// deterministic jitter derived from the routing key (no host
// randomness; different keys desynchronize naturally), stretched to a
// node-requested Retry-After when the last failure was backpressure.
// Every wait is capped by MaxRetryWait and never sleeps past the
// request deadline (the loop sheds on wake instead).
func (c *Client) sleepBackoff(key string, round int, lastErr error, deadline time.Time) {
	d := c.opts.RetryBackoff << uint(round)
	d += time.Duration(ring.Mix64(ring.Score(key, "jitter"+strconv.Itoa(round))) % uint64(c.opts.RetryBackoff))
	var busy errBusy
	if errors.As(lastErr, &busy) && busy.retryAfter > d {
		d = busy.retryAfter
	}
	if d > c.opts.MaxRetryWait {
		d = c.opts.MaxRetryWait
	}
	if !deadline.IsZero() {
		if left := time.Until(deadline); left < d { //emx:hostclock request deadlines are host wall-clock
			d = left
		}
	}
	if d <= 0 {
		return
	}
	time.Sleep(d) //emx:hostclock retry pacing against live nodes
}

// errBusy is a 503 backpressure response: retryable, carrying the
// node's drain estimate.
type errBusy struct {
	node       string
	retryAfter time.Duration
}

func (e errBusy) Error() string {
	return fmt.Sprintf("node %s: busy (Retry-After %s)", e.node, e.retryAfter)
}

// hedged races the owner against the next-ranked node: the backup
// launches after HedgeDelay — or immediately when the owner's probed
// queue is nearly full — and the first success wins. The loser's
// attempt is cancelled via its context.
func (c *Client) hedged(key, path string, body []byte, owner, backup string, deadline time.Time) (*Result, error) {
	delay := c.opts.HedgeDelay
	if full, _, ok := c.members.Load(owner); ok && full >= c.opts.HedgeQueueFraction {
		delay = 0
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		res    *Result
		err    error
		backup bool
	}
	results := make(chan outcome, 2)
	try := func(node string, isBackup bool) {
		res, err := c.attemptDeadline(ctx, node, path, body, deadline)
		results <- outcome{res, err, isBackup}
	}
	go try(owner, false)

	timer := time.NewTimer(delay) //emx:hostclock hedge trigger against a slow owner
	defer timer.Stop()
	launched := false
	pending := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				c.hedges.Inc()
				go try(backup, true)
			}
		case out := <-results:
			pending--
			if out.err == nil {
				if launched {
					if out.backup {
						c.hedgeWins.Inc()
					} else {
						c.hedgeLosses.Inc()
					}
				}
				return out.res, nil
			}
			var perm errPermanent
			if errors.As(out.err, &perm) {
				return nil, out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if !launched {
				// Owner failed outright before the hedge fired: launch
				// the backup now rather than waiting for the timer.
				launched = true
				pending++
				c.hedges.Inc()
				go try(backup, true)
			} else if pending == 0 {
				return nil, firstErr
			}
		}
	}
}

// attempt issues one POST to one node.
func (c *Client) attempt(node, path string, body []byte, deadline time.Time) (*Result, error) {
	return c.attemptDeadline(context.Background(), node, path, body, deadline)
}

func (c *Client) attemptDeadline(parent context.Context, node, path string, body []byte, deadline time.Time) (*Result, error) {
	c.attempts.Inc()
	ctx := parent
	if c.opts.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, c.opts.AttemptTimeout)
		defer cancel()
	}
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.ForwardedByHeader, "emxcluster")
	if !deadline.IsZero() {
		// The same decimal nanoseconds every hop sees: the gateway relays
		// this header unchanged, and nodes shed the request once it passes.
		req.Header.Set(service.DeadlineHeader, service.FormatDeadline(deadline))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if parent.Err() != nil {
			// The parent context was canceled — the hedge race resolved
			// elsewhere, or the caller gave up. The abort says nothing
			// about this node's health, so don't poison the membership
			// view or the per-node error counters with it.
			return nil, fmt.Errorf("node %s: attempt canceled: %w", node, parent.Err())
		}
		c.nodeErrs(node).Inc()
		c.members.MarkFailure(node, err)
		return nil, fmt.Errorf("node %s: %w", node, err)
	}
	// Always drain and close the body — including a hedge loser's — so
	// the transport can reuse the connection instead of leaking it under
	// sustained hedging.
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		if parent.Err() != nil {
			return nil, fmt.Errorf("node %s: attempt canceled: %w", node, parent.Err())
		}
		c.nodeErrs(node).Inc()
		c.members.MarkFailure(node, err)
		return nil, fmt.Errorf("node %s: reading response: %w", node, err)
	}
	res := &Result{Node: node, Status: resp.StatusCode, Header: resp.Header, Body: b}
	switch {
	case resp.StatusCode < 300:
		c.members.MarkHealthy(node)
		return res, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Backpressure, not death: the node is alive and telling us how
		// long its queue needs. Retryable against the next candidate.
		ra := time.Duration(0)
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			ra = time.Duration(secs) * time.Second
		}
		return nil, errBusy{node: node, retryAfter: ra}
	case resp.StatusCode >= 500:
		c.nodeErrs(node).Inc()
		c.members.MarkFailure(node, fmt.Errorf("HTTP %s", resp.Status))
		return nil, fmt.Errorf("node %s: HTTP %s", node, resp.Status)
	default:
		// 4xx: the request itself is at fault; every node would answer
		// the same. Surface the response, do not fail over.
		c.members.MarkHealthy(node)
		return nil, errPermanent{res}
	}
}

// local serves the request through the in-process fallback handler.
func (c *Client) local(path string, body []byte) (*Result, error) {
	req, err := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	rec := newBufferedResponse()
	c.opts.Local.ServeHTTP(rec, req)
	return &Result{Node: LocalNode, Status: rec.status, Header: rec.header, Body: rec.body.Bytes()}, nil
}

// bufferedResponse is a minimal in-memory http.ResponseWriter for the
// local fallback path (no httptest dependency outside tests).
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: http.Header{}, status: http.StatusOK}
}

func (r *bufferedResponse) Header() http.Header         { return r.header }
func (r *bufferedResponse) WriteHeader(code int)        { r.status = code }
func (r *bufferedResponse) Write(b []byte) (int, error) { return r.body.Write(b) }

// FigureKey is the routing key of a whole figure panel: all of a
// panel's runs land on one owner, so its sweep caches shard together.
// Single-point /v1/run requests route by their RunIdentity hash
// instead (see service.ResolveRun).
func FigureKey(fig string, scale int, seed int64) string {
	return fmt.Sprintf("figure/%s/scale=%d/seed=%d", fig, scale, seed)
}

// Figure requests one figure panel from the cluster and decodes it.
// scale/seed of 0 defer to the nodes' defaults — but are resolved into
// the routing key as-is, so callers wanting stable routing should pass
// explicit values (the gateway does).
func (c *Client) Figure(fig string, scale int, seed int64) ([]harness.Figure, error) {
	body, err := json.Marshal(service.FigureRequest{Fig: fig, Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	res, err := c.Do(FigureKey(fig, scale, seed), "/v1/figure", body)
	if err != nil {
		return nil, err
	}
	if res.Status != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(res.Body, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("node %s: %s", res.Node, e.Error)
		}
		return nil, fmt.Errorf("node %s: HTTP %d", res.Node, res.Status)
	}
	var fr service.FigureResponse
	if err := json.Unmarshal(res.Body, &fr); err != nil {
		return nil, fmt.Errorf("node %s: bad figure response: %w", res.Node, err)
	}
	return fr.Figures, nil
}
