package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"emx/internal/labd/service"
)

// sweepPanels is a small cross-section of the paper's figure panels —
// chosen among the cheap-at-minimum-grid panels so the failover sweep
// stays fast under -race in CI.
var sweepPanels = []string{"6a", "6c", "7a", "7c", "model"}

type testCluster struct {
	servers  []*service.Server
	backends []*httptest.Server
	members  *Membership
	gateway  *Gateway
	front    *httptest.Server
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv, ts := newNode(t)
		tc.servers = append(tc.servers, srv)
		tc.backends = append(tc.backends, ts)
		urls[i] = ts.URL
	}
	tc.members = NewMembership(urls, MembershipOptions{})
	tc.members.ProbeAll()
	tc.gateway = NewGateway(tc.members, GatewayOptions{
		Scale:  hugeScale,
		Seed:   1,
		Client: ClientOptions{RetryBackoff: time.Millisecond},
	})
	tc.front = httptest.NewServer(tc.gateway.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

func postFigure(t *testing.T, base, fig string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(service.FigureRequest{Fig: fig, Scale: hugeScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/figure", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestGatewayFailoverSweep is the cluster acceptance test: panel output
// through a 3-node gateway is byte-identical to a single emxd node,
// including when one node is killed mid-sweep — requests fail over and
// the sweep completes without client-visible errors.
func TestGatewayFailoverSweep(t *testing.T) {
	// Single-node baseline.
	_, solo := newNode(t)
	baseline := map[string][]byte{}
	for _, fig := range sweepPanels {
		resp, b := postFigure(t, solo.URL, fig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %s: HTTP %d", fig, resp.StatusCode)
		}
		baseline[fig] = b
	}

	tc := newTestCluster(t, 3)

	// Pick the victim so the kill actually matters: the node that owns a
	// panel in the second half of the sweep must die before serving it.
	ring := NewRing(tc.members.Members())
	mid := len(sweepPanels) / 2
	victim := ring.Owner(FigureKey(sweepPanels[mid], hugeScale, 1))
	var victimSrv *httptest.Server
	for _, b := range tc.backends {
		if b.URL == victim {
			victimSrv = b
		}
	}

	nodesSeen := map[string]bool{}
	for i, fig := range sweepPanels {
		if i == mid {
			// Kill the owner mid-sweep — hard close, connections refused.
			victimSrv.Close()
		}
		resp, b := postFigure(t, tc.front.URL, fig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gateway %s: HTTP %d: %s", fig, resp.StatusCode, b)
		}
		if !bytes.Equal(b, baseline[fig]) {
			t.Fatalf("panel %s through the gateway differs from single-node output:\n%s\nvs\n%s", fig, b, baseline[fig])
		}
		nodesSeen[resp.Header.Get(NodeHeader)] = true
	}
	if len(nodesSeen) < 2 {
		t.Errorf("all panels answered by %v; rendezvous hashing did not spread the sweep", nodesSeen)
	}

	// The dead owner is passively marked down and the failover counters
	// moved — the failover was real, not a lucky routing miss.
	if tc.members.IsHealthy(victim) {
		t.Error("killed node still marked healthy after serving the sweep")
	}
	if nodesSeen[victim] && tc.gateway.Registry().Snapshot()["emxcluster_failovers_total"] == 0 {
		t.Error("no failover counted despite the victim owning a served panel")
	}

	// Same sweep again: every panel must now be served without touching
	// the dead node, still byte-identical.
	for _, fig := range sweepPanels {
		resp, b := postFigure(t, tc.front.URL, fig)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(b, baseline[fig]) {
			t.Fatalf("post-failure panel %s: HTTP %d or bytes differ", fig, resp.StatusCode)
		}
	}
}

// newReplicatedCluster is newTestCluster with R-way cache replication:
// peer URLs only exist once every backend listens, so the replica ring
// reaches each node via SetPeers after construction.
func newReplicatedCluster(t *testing.T, n, replicas int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := service.New(service.Options{
			Scale:       hugeScale,
			Seed:        1,
			Replication: service.ReplicationOptions{Replicas: replicas},
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		tc.servers = append(tc.servers, srv)
		tc.backends = append(tc.backends, ts)
		urls[i] = ts.URL
	}
	for i, srv := range tc.servers {
		srv.SetPeers(urls[i], urls)
	}
	tc.members = NewMembership(urls, MembershipOptions{})
	tc.members.ProbeAll()
	tc.gateway = NewGateway(tc.members, GatewayOptions{
		Scale:  hugeScale,
		Seed:   1,
		Client: ClientOptions{RetryBackoff: time.Millisecond, Replicas: replicas},
	})
	tc.front = httptest.NewServer(tc.gateway.Handler())
	t.Cleanup(tc.front.Close)
	return tc
}

// TestGatewayReplicatedSweepOwnerKill is the tentpole acceptance test:
// a 3-node gateway sweep with R=2 replication is byte-identical to
// single-node output, and killing a panel's owner between sweeps costs
// zero recomputations — every previously cached point is served from a
// replica copy (pushed or peer-filled), asserted via the survivors'
// execution counters.
func TestGatewayReplicatedSweepOwnerKill(t *testing.T) {
	// Single-node baseline.
	_, solo := newNode(t)
	baseline := map[string][]byte{}
	for _, fig := range sweepPanels {
		resp, b := postFigure(t, solo.URL, fig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %s: HTTP %d", fig, resp.StatusCode)
		}
		baseline[fig] = b
	}

	tc := newReplicatedCluster(t, 3, 2)
	for _, fig := range sweepPanels {
		resp, b := postFigure(t, tc.front.URL, fig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replicated sweep %s: HTTP %d: %s", fig, resp.StatusCode, b)
		}
		if !bytes.Equal(b, baseline[fig]) {
			t.Fatalf("replicated panel %s differs from single-node output", fig)
		}
	}
	for i, srv := range tc.servers {
		if !srv.FlushReplication(5 * time.Second) {
			t.Fatalf("node %d replication queue did not drain", i)
		}
	}

	// Kill the owner of a panel it served in the first sweep. Its cache
	// dies with it; only the pushed replica copies remain.
	victim := NewRing(tc.members.Members()).Owner(FigureKey(sweepPanels[0], hugeScale, 1))
	victimIdx := -1
	for i, b := range tc.backends {
		if b.URL == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		t.Fatalf("owner %s is not a backend", victim)
	}
	tc.backends[victimIdx].Close()

	survivorRuns := func() uint64 {
		var total uint64
		for i, srv := range tc.servers {
			if i != victimIdx {
				total += srv.Scheduler().RunsExecuted()
			}
		}
		return total
	}
	before := survivorRuns()

	// Full re-sweep: byte-identical again, zero new executions — the
	// dead owner's panels are reassembled entirely from replica copies.
	for _, fig := range sweepPanels {
		resp, b := postFigure(t, tc.front.URL, fig)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill sweep %s: HTTP %d: %s", fig, resp.StatusCode, b)
		}
		if !bytes.Equal(b, baseline[fig]) {
			t.Fatalf("post-kill panel %s differs from single-node output", fig)
		}
	}
	if got := survivorRuns(); got != before {
		t.Fatalf("owner kill recomputed %d previously cached points", got-before)
	}
	var fills, stores float64
	for i, srv := range tc.servers {
		if i == victimIdx {
			continue
		}
		snap := srv.Registry().Snapshot()
		fills += snap["emxd_cache_replica_fills_total"]
		stores += snap["emxd_cache_replica_stores_total"]
	}
	if stores == 0 {
		t.Error("survivors accepted no replica pushes")
	}
	if fills == 0 {
		t.Error("no peer fills despite a failed-over panel sweep")
	}
}

// TestGatewayShardsRunCaches: single points route by RunIdentity hash,
// so each run executes on exactly one node and repeats are cache hits
// on that owner — the LRU caches shard instead of duplicating.
func TestGatewayShardsRunCaches(t *testing.T) {
	tc := newTestCluster(t, 3)
	reqs := []service.RunRequest{
		{Workload: "bitonic", P: 4, H: 2, N: 64 << 10},
		{Workload: "fft", P: 4, H: 2, N: 64 << 10},
		{Workload: "spmv", P: 4, H: 1, N: 64 << 20}, // large N: spmv needs a real matrix even at hugeScale
		{Workload: "bitonic", P: 8, H: 4, N: 128 << 10},
		{Workload: "fft", P: 8, H: 1, N: 128 << 10},
	}
	nodeFor := map[string]string{}
	for round := 0; round < 2; round++ {
		for i, rr := range reqs {
			body, _ := json.Marshal(rr)
			resp, err := http.Post(tc.front.URL+"/v1/run", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			var rres service.RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&rres); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("run %d: HTTP %d", i, resp.StatusCode)
			}
			node := resp.Header.Get(NodeHeader)
			if prev, ok := nodeFor[rres.Key]; ok && prev != node {
				t.Errorf("run %s moved from %s to %s with a stable member set", rres.Key[:8], prev, node)
			}
			nodeFor[rres.Key] = node
			if round == 1 && rres.Source != "cached" {
				t.Errorf("repeat of run %d was %q on its owner, want cached", i, rres.Source)
			}
		}
	}

	// Total executions across the cluster == number of distinct runs:
	// nothing ran twice, nothing was duplicated across shards.
	var started uint64
	for _, srv := range tc.servers {
		started += srv.Scheduler().Stats().Started
	}
	if started != uint64(len(reqs)) {
		t.Errorf("cluster executed %d runs for %d distinct requests", started, len(reqs))
	}
}

func TestGatewayStatusAndMetrics(t *testing.T) {
	tc := newTestCluster(t, 3)
	postFigure(t, tc.front.URL, "6a")

	resp, err := http.Get(tc.front.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Members != 3 || st.Healthy != 3 || len(st.Nodes) != 3 {
		t.Fatalf("cluster status %+v", st)
	}
	for _, n := range st.Nodes {
		if n.QueueCap == 0 {
			t.Errorf("node %s has no probed load in status", n.URL)
		}
	}

	mresp, err := http.Get(tc.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	b, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"emxcluster_attempts_total",
		"emxcluster_members 3",
		"emxcluster_members_healthy 3",
		`emxcluster_responses_total{code="200"}`,
		"# TYPE emxcluster_request_seconds histogram",
	} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("gateway /metrics missing %q", want)
		}
	}

	// Nodes saw the traffic as cluster-forwarded.
	var forwarded float64
	for _, srv := range tc.servers {
		forwarded += srv.Registry().Snapshot()["emxd_forwarded_requests_total"]
	}
	if forwarded == 0 {
		t.Error("no node counted a forwarded request")
	}
}

func TestGatewayValidationPassThrough(t *testing.T) {
	tc := newTestCluster(t, 2)
	body, _ := json.Marshal(service.RunRequest{Workload: "quicksort", P: 4, H: 1, N: 1024})
	resp, err := http.Post(tc.front.URL+"/v1/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 from gateway-side validation", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
		t.Fatal("validation error lost its message through the gateway")
	}
}

// TestGatewayRoutesProfile: /v1/profile goes through the gateway to the
// point's owning node and comes back as a raw emxprof artifact with the
// node and source headers attached.
func TestGatewayRoutesProfile(t *testing.T) {
	tc := newTestCluster(t, 2)
	body, err := json.Marshal(service.ProfileRequest{
		RunRequest: service.RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10, Scale: hugeScale},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tc.front.URL+"/v1/profile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get(NodeHeader) == "" {
		t.Error("missing cluster node header")
	}
	if got := resp.Header.Get(service.SourceHeader); got != "executed" {
		t.Errorf("source %q, want executed", got)
	}
	var prof struct {
		Version string `json:"version"`
		P       int    `json:"p"`
	}
	if err := json.Unmarshal(raw, &prof); err != nil {
		t.Fatalf("profile body not JSON: %v", err)
	}
	if prof.Version != "emxprof/v1" || prof.P != 4 {
		t.Fatalf("bad profile header %+v", prof)
	}

	// Repeat request: routed to the same owner, served from its profile
	// cache.
	resp2, err := http.Post(tc.front.URL+"/v1/profile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	io.Copy(io.Discard, resp2.Body)
	if got := resp2.Header.Get(service.SourceHeader); got != "cache" {
		t.Errorf("repeat source %q, want cache", got)
	}
	if a, b := resp.Header.Get(NodeHeader), resp2.Header.Get(NodeHeader); a != b {
		t.Errorf("repeat routed to %s, first to %s", b, a)
	}
}

// TestGatewayRelaysDeadlineHeader: the gateway forwards an incoming
// X-Emx-Deadline to the owning node byte-for-byte unchanged, so the
// node sheds exactly when the original caller gives up. An expired
// deadline surfaces to the gateway's caller as the node's 503.
func TestGatewayRelaysDeadlineHeader(t *testing.T) {
	tc := newTestCluster(t, 2)
	body, err := json.Marshal(service.RunRequest{Workload: "fft", P: 4, H: 2, N: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}

	// Future deadline: served normally, header relayed intact.
	deadline := time.Now().Add(time.Hour) //emx:hostclock test fixture deadline
	req, err := http.NewRequest(http.MethodPost, tc.front.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.DeadlineHeader, service.FormatDeadline(deadline))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}

	// The relay is exact: RequestDeadline(gateway request) re-encodes to
	// the identical header value the client stamps on the routed hop.
	relayed := service.FormatDeadline(service.RequestDeadline(req))
	if relayed != service.FormatDeadline(deadline) {
		t.Fatalf("gateway would re-stamp %q, caller sent %q", relayed, service.FormatDeadline(deadline))
	}

	// Expired deadline: the node sheds, and the gateway passes the 503 +
	// Retry-After through untouched.
	req, err = http.NewRequest(http.MethodPost, tc.front.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(service.DeadlineHeader, service.FormatDeadline(time.Unix(1, 0)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline through gateway: status %d", resp.StatusCode)
	}
}
