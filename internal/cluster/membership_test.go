package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"emx/internal/labd/service"
)

// hugeScale clamps panel sizes to the minimum grid for fast tests.
const hugeScale = 1 << 20

func newNode(t *testing.T) (*service.Server, *httptest.Server) {
	t.Helper()
	srv := service.New(service.Options{Scale: hugeScale, Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func TestMembershipProbe(t *testing.T) {
	_, ts := newNode(t)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	m := NewMembership([]string{ts.URL, dead.URL}, MembershipOptions{})
	if got := len(m.Healthy()); got != 2 {
		t.Fatalf("nodes must start optimistically healthy, got %d", got)
	}
	if n := m.ProbeAll(); n != 1 {
		t.Fatalf("ProbeAll healthy count = %d, want 1", n)
	}
	if m.IsHealthy(dead.URL) {
		t.Error("dead node still marked healthy after probe")
	}
	if !m.IsHealthy(ts.URL) {
		t.Error("live node marked down")
	}

	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d nodes", len(snap))
	}
	// Sorted by URL, carrying load signals for the live node.
	for _, n := range snap {
		if n.URL == ts.URL {
			if !n.Healthy || n.QueueCap == 0 {
				t.Errorf("live node status not populated: %+v", n)
			}
		} else {
			if n.Healthy || n.Failures == 0 || n.LastError == "" {
				t.Errorf("dead node status not populated: %+v", n)
			}
		}
	}

	full, _, ok := m.Load(ts.URL)
	if !ok || full < 0 || full > 1 {
		t.Errorf("Load(%s) = %v, %v", ts.URL, full, ok)
	}
	if _, _, ok := m.Load(dead.URL); ok {
		t.Error("Load must report !ok for a never-probed node")
	}
}

func TestMembershipPassiveMarking(t *testing.T) {
	m := NewMembership([]string{"http://a:1", "http://b:1"}, MembershipOptions{})
	m.MarkFailure("http://a:1", nil)
	if m.IsHealthy("http://a:1") || len(m.Healthy()) != 1 {
		t.Fatal("MarkFailure did not take a node down")
	}
	m.MarkHealthy("http://a:1")
	if !m.IsHealthy("http://a:1") {
		t.Fatal("MarkHealthy did not recover the node")
	}
	// Unknown nodes are ignored, not invented.
	m.MarkFailure("http://zzz:1", nil)
	if len(m.Members()) != 2 {
		t.Fatal("marking an unknown node grew the member set")
	}
}

// TestMembershipBackgroundProber exercises the probe loop end to end:
// a dead node is detected and a revived one recovers, without any
// explicit ProbeAll.
func TestMembershipBackgroundProber(t *testing.T) {
	_, ts := newNode(t)
	m := NewMembership([]string{ts.URL}, MembershipOptions{
		ProbeInterval: 2 * time.Millisecond,
	})
	m.MarkFailure(ts.URL, nil) // start down; the prober must bring it up
	m.Start()
	defer m.Close()

	deadline := time.After(5 * time.Second)
	for !m.IsHealthy(ts.URL) {
		select {
		case <-deadline:
			t.Fatal("background prober never recovered the node")
		case <-time.After(time.Millisecond):
		}
	}
}
