package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"emx/internal/labd/service"
)

// MembershipOptions configures the health prober.
type MembershipOptions struct {
	// ProbeInterval is the healthy-node probe period. <= 0 disables the
	// background prober entirely: health then comes from explicit
	// ProbeAll calls and from the client's passive failure marking,
	// which is what the CLI and the deterministic tests use.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /v1/status probe (default 2s).
	ProbeTimeout time.Duration
	// MaxBackoff caps the down-node probe backoff (default 30s).
	MaxBackoff time.Duration
	// HTTPClient overrides the probe client (tests inject in-process
	// transports; default http.DefaultClient with ProbeTimeout applied
	// per request).
	HTTPClient *http.Client
}

// NodeStatus is one member's observed state.
type NodeStatus struct {
	URL           string  `json:"url"`
	Healthy       bool    `json:"healthy"`
	Failures      int     `json:"consecutive_failures"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCap      int     `json:"queue_cap"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	LastError     string  `json:"last_error,omitempty"`
}

type member struct {
	url      string
	healthy  bool
	failures int // consecutive probe/request failures
	load     NodeStatus
	lastErr  string
}

// Membership tracks the health and load of a fixed set of emxd nodes.
// Nodes start healthy (optimistically: the first request finds out) and
// move down/up from probe results and the client's passive marking.
// Down nodes are probed with exponential backoff so a dead node costs
// ProbeInterval work only logarithmically often, and recover the moment
// a probe succeeds.
type Membership struct {
	opts MembershipOptions
	http *http.Client

	mu    sync.Mutex
	nodes map[string]*member

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewMembership tracks the given node base URLs. Call Start to launch
// the background prober (when ProbeInterval > 0) and Close to stop it.
func NewMembership(urls []string, opts MembershipOptions) *Membership {
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = 2 * time.Second
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 30 * time.Second
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: opts.ProbeTimeout}
	}
	m := &Membership{
		opts:  opts,
		http:  hc,
		nodes: map[string]*member{},
		stop:  make(chan struct{}),
	}
	for _, u := range NewRing(urls).Members() { // normalized: sorted, deduplicated
		m.nodes[u] = &member{url: u, healthy: true}
	}
	return m
}

// Members returns every tracked node URL in sorted order — the ring's
// member set.
func (m *Membership) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedNodeURLs(m.nodes)
}

// sortedNodeURLs collects map keys and sorts them, so no caller ever
// observes Go's randomized map order.
func sortedNodeURLs(nodes map[string]*member) []string {
	out := make([]string, 0, len(nodes))
	for u := range nodes {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Healthy returns the currently-healthy node URLs in sorted order.
func (m *Membership) Healthy() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.nodes))
	for _, u := range sortedNodeURLs(m.nodes) {
		if m.nodes[u].healthy {
			out = append(out, u)
		}
	}
	return out
}

// IsHealthy reports whether url is tracked and currently healthy.
func (m *Membership) IsHealthy(url string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[url]
	return ok && n.healthy
}

// Snapshot returns every node's status, sorted by URL.
func (m *Membership) Snapshot() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.nodes))
	for _, u := range sortedNodeURLs(m.nodes) {
		n := m.nodes[u]
		st := n.load
		st.URL = u
		st.Healthy = n.healthy
		st.Failures = n.failures
		st.LastError = n.lastErr
		out = append(out, st)
	}
	return out
}

// Load returns the last probed load of url: queue fullness in [0,1]
// and cache hit-ratio. ok is false when the node is unknown or has
// never been probed.
func (m *Membership) Load(url string) (queueFullness, hitRatio float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, found := m.nodes[url]
	if !found || n.load.QueueCap == 0 {
		return 0, 0, false
	}
	return float64(n.load.QueueDepth) / float64(n.load.QueueCap), n.load.CacheHitRatio, true
}

// MarkFailure records a failed request against url (passive health from
// the client's own traffic): the node is marked down immediately, so
// subsequent requests prefer other replicas until a probe or a
// successful request brings it back.
func (m *Membership) MarkFailure(url string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.nodes[url]; ok {
		n.healthy = false
		n.failures++
		if err != nil {
			n.lastErr = err.Error()
		}
	}
}

// MarkHealthy records a successful request against url.
func (m *Membership) MarkHealthy(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.nodes[url]; ok {
		n.healthy = true
		n.failures = 0
		n.lastErr = ""
	}
}

// Probe checks one node's /v1/status synchronously and updates its
// health and load signals.
func (m *Membership) Probe(url string) error {
	resp, err := m.http.Get(url + "/v1/status")
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("probe %s: HTTP %s", url, resp.Status)
		}
	}
	if err != nil {
		m.MarkFailure(url, err)
		return err
	}
	var st service.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		err = fmt.Errorf("probe %s: bad status body: %w", url, err)
		m.MarkFailure(url, err)
		return err
	}
	m.mu.Lock()
	if n, ok := m.nodes[url]; ok {
		n.healthy = true
		n.failures = 0
		n.lastErr = ""
		n.load.QueueDepth = st.Throughput.QueueDepth
		n.load.QueueCap = st.QueueCap
		n.load.CacheHitRatio = st.Throughput.CacheHitRatio
	}
	m.mu.Unlock()
	return nil
}

// ProbeAll probes every node once, synchronously, in sorted order.
// Returns the number of healthy nodes after the round.
func (m *Membership) ProbeAll() int {
	for _, u := range m.Members() {
		m.Probe(u)
	}
	return len(m.Healthy())
}

// Start launches one background prober per node when ProbeInterval is
// positive. Healthy nodes are probed every ProbeInterval; after each
// consecutive failure the node's next probe backs off exponentially
// (interval x 2^failures) up to MaxBackoff. Idempotent.
func (m *Membership) Start() {
	if m.opts.ProbeInterval <= 0 {
		return
	}
	m.once.Do(func() {
		for _, u := range m.Members() {
			u := u
			m.wg.Add(1)
			go m.probeLoop(u)
		}
	})
}

func (m *Membership) probeLoop(url string) {
	defer m.wg.Done()
	for {
		delay := m.opts.ProbeInterval
		m.mu.Lock()
		if n, ok := m.nodes[url]; ok {
			for i := 0; i < n.failures && delay < m.opts.MaxBackoff; i++ {
				delay *= 2
			}
		}
		m.mu.Unlock()
		if delay > m.opts.MaxBackoff {
			delay = m.opts.MaxBackoff
		}
		t := time.NewTimer(delay) //emx:hostclock health probing is host-side by nature
		select {
		case <-m.stop:
			t.Stop()
			return
		case <-t.C:
		}
		m.Probe(url)
	}
}

// Close stops the background probers.
func (m *Membership) Close() {
	close(m.stop)
	m.wg.Wait()
}
