package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"emx/internal/harness"
	"emx/internal/labd/service"
	"emx/internal/metrics"
)

// GatewayOptions configures a Gateway.
type GatewayOptions struct {
	// Scale and Seed are the defaults used to resolve requests that omit
	// them into routing keys. They MUST match the member nodes' defaults,
	// or the gateway would route a defaulted request to a different owner
	// than the key the node caches it under. Zero values select the same
	// defaults emxd uses (harness.DefaultScale, seed 1).
	Scale int
	Seed  int64
	// Client tunes the failover policy. Client.Registry is ignored — the
	// gateway wires its own registry so /metrics shows one coherent set.
	Client ClientOptions
}

// Gateway federates the membership's emxd nodes behind the same API
// one node serves: /v1/run, /v1/figure, and /v1/profile are routed by
// content key to the owning node (with failover), /v1/status reports
// the cluster view, and /metrics exposes the routing counters. Because
// every node
// computes byte-identical results for a given run identity, clients
// cannot tell the gateway from a single overgrown emxd — except that it
// survives node deaths.
type Gateway struct {
	opts    GatewayOptions
	client  *Client
	members *Membership
	reg     *metrics.Registry
	mux     *http.ServeMux
	start   time.Time

	responses func(code int) *metrics.Counter
	routed    func(node string) *metrics.Counter
	latency   *metrics.Histogram
}

// NewGateway builds a gateway over the membership.
func NewGateway(m *Membership, opts GatewayOptions) *Gateway {
	if opts.Scale <= 0 {
		opts.Scale = harness.DefaultScale
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	reg := metrics.NewRegistry()
	opts.Client.Registry = reg
	g := &Gateway{
		opts:    opts,
		client:  NewClient(m, opts.Client),
		members: m,
		reg:     reg,
		mux:     http.NewServeMux(),
		start:   time.Now(), //emx:hostclock gateway-uptime observability
	}
	g.latency = reg.Histogram("emxcluster_request_seconds",
		"gateway request latency including routing, retries, and hedges", metrics.DefLatencyBuckets)
	g.responses = func(code int) *metrics.Counter {
		return reg.Labeled("emxcluster_responses_total",
			"gateway responses by status code", "code", fmt.Sprintf("%d", code))
	}
	g.routed = func(node string) *metrics.Counter {
		return reg.Labeled("emxcluster_routed_requests_total",
			"requests answered, by member node", "node", node)
	}
	reg.Gauge("emxcluster_members", "member nodes tracked",
		func() float64 { return float64(len(m.Members())) })
	reg.Gauge("emxcluster_members_healthy", "member nodes currently healthy",
		func() float64 { return float64(len(m.Healthy())) })
	g.mux.HandleFunc("/v1/run", g.handleRun)
	g.mux.HandleFunc("/v1/figure", g.handleFigure)
	g.mux.HandleFunc("/v1/profile", g.handleProfile)
	g.mux.HandleFunc("/v1/status", g.handleStatus)
	g.mux.HandleFunc("/metrics", g.handleMetrics)
	return g
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return http.HandlerFunc(g.serve) }

// Client exposes the gateway's routing client (shared counters).
func (g *Gateway) Client() *Client { return g.client }

// Registry exposes the gateway's metrics registry.
func (g *Gateway) Registry() *metrics.Registry { return g.reg }

func (g *Gateway) serve(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //emx:hostclock request-latency observability
	sw := &gatewayStatusWriter{ResponseWriter: w, code: http.StatusOK}
	g.mux.ServeHTTP(sw, r)
	g.responses(sw.code).Inc()
	g.latency.Observe(time.Since(start).Seconds()) //emx:hostclock
}

type gatewayStatusWriter struct {
	http.ResponseWriter
	code int
}

func (w *gatewayStatusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// NodeHeader names the member node that answered a routed request, so
// operators can see sharding without reading metrics.
const NodeHeader = "X-Emx-Cluster-Node"

func (g *Gateway) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

// route sends body down the cluster client and relays the terminal
// response — status, backpressure headers, and body — unchanged, so the
// gateway is byte-transparent with respect to a single node. The
// request's DeadlineHeader (absolute nanoseconds) is relayed unchanged
// too: the client re-stamps the identical value on each routed attempt,
// so the owning node sheds exactly when the original caller gives up.
func (g *Gateway) route(w http.ResponseWriter, r *http.Request, key, path string, body []byte) {
	res, err := g.client.DoDeadline(key, path, body, service.RequestDeadline(r))
	if err != nil {
		g.writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: %w", err))
		return
	}
	g.routed(res.Node).Inc()
	if ct := res.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	// Relay the node's own X-Emx-* annotations (run key, profile source)
	// untouched; the gateway adds only its routing header below. Each
	// header is set independently, so visit order cannot matter.
	for name, vals := range res.Header { //emx:orderinvariant
		if strings.HasPrefix(name, "X-Emx-") && len(vals) > 0 {
			w.Header().Set(name, vals[0])
		}
	}
	w.Header().Set(NodeHeader, res.Node)
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		g.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return nil, false
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return nil, false
	}
	return body, true
}

// handleRun routes one simulation point by its RunIdentity hash — the
// same key the owning node caches the result under, which is what makes
// the per-node LRU caches shard instead of duplicate.
func (g *Gateway) handleRun(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req service.RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ps, scale, err := service.ResolveRun(req, g.opts.Scale, g.opts.Seed)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, err)
		return
	}
	g.route(w, r, ps.Key(scale), "/v1/run", body)
}

// handleProfile routes a profiled point by the same RunIdentity hash
// /v1/run uses, so a point's profile lands on the node whose caches
// already hold (or will hold) that point — and repeat profile requests
// hit that node's profile cache.
func (g *Gateway) handleProfile(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req service.ProfileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	ps, scale, err := service.ResolveRun(req.RunRequest, g.opts.Scale, g.opts.Seed)
	if err != nil {
		g.writeError(w, http.StatusBadRequest, err)
		return
	}
	g.route(w, r, ps.Key(scale), "/v1/profile", body)
}

// handleFigure routes a whole panel by its figure key: every run the
// panel fans into lands on the panel's owner, keeping its sweep cache
// together.
func (g *Gateway) handleFigure(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req service.FigureRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = g.opts.Scale
	}
	seed := req.Seed
	if seed == 0 {
		seed = g.opts.Seed
	}
	g.route(w, r, FigureKey(req.Fig, scale, seed), "/v1/figure", body)
}

// ClusterStatus is the gateway's GET /v1/status: the membership view
// plus routing counters.
type ClusterStatus struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Members       int                `json:"members"`
	Healthy       int                `json:"healthy"`
	DefaultScale  int                `json:"default_scale"`
	DefaultSeed   int64              `json:"default_seed"`
	Replicas      int                `json:"replicas,omitempty"`
	Nodes         []NodeStatus       `json:"nodes"`
	Counters      map[string]float64 `json:"counters"`
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	nodes := g.members.Snapshot()
	healthy := 0
	for _, n := range nodes {
		if n.Healthy {
			healthy++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(ClusterStatus{
		UptimeSeconds: time.Since(g.start).Seconds(), //emx:hostclock
		Members:       len(nodes),
		Healthy:       healthy,
		DefaultScale:  g.opts.Scale,
		DefaultSeed:   g.opts.Seed,
		Replicas:      g.opts.Client.Replicas,
		Nodes:         nodes,
		Counters:      g.reg.Snapshot(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.reg.WriteProm(w)
}
