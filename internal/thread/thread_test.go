package thread

import (
	"testing"
	"testing/quick"

	"emx/internal/packet"
)

func pkt(seq uint64) *packet.Packet {
	return &packet.Packet{Kind: packet.KindInvoke, Seq: seq}
}

func TestQueueFIFOWithinPriority(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.Push(Low, pkt(uint64(i)))
	}
	for i := 0; i < 5; i++ {
		p, prio, _, ok := q.Pop()
		if !ok || p.Seq != uint64(i) || prio != Low {
			t.Fatalf("pop %d: got seq=%d prio=%d ok=%v", i, p.Seq, prio, ok)
		}
	}
	if _, _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestQueueHighBeforeLow(t *testing.T) {
	var q Queue
	q.Push(Low, pkt(1))
	q.Push(High, pkt(2))
	q.Push(Low, pkt(3))
	q.Push(High, pkt(4))
	want := []uint64{2, 4, 1, 3}
	for i, w := range want {
		p, _, _, ok := q.Pop()
		if !ok || p.Seq != w {
			t.Fatalf("pop %d = %d, want %d", i, p.Seq, w)
		}
	}
}

func TestQueueSpillAndRestore(t *testing.T) {
	var q Queue
	n := OnChipCap + 5
	for i := 0; i < n; i++ {
		spilled := q.Push(Low, pkt(uint64(i)))
		if want := i >= OnChipCap; spilled != want {
			t.Fatalf("push %d: spilled=%v, want %v", i, spilled, want)
		}
	}
	if q.Spilled != 5 {
		t.Fatalf("spilled = %d, want 5", q.Spilled)
	}
	for i := 0; i < n; i++ {
		p, _, _, ok := q.Pop()
		if !ok || p.Seq != uint64(i) {
			t.Fatalf("pop %d out of order: %d", i, p.Seq)
		}
	}
	if q.Restored != 5 {
		t.Fatalf("restored = %d, want 5", q.Restored)
	}
	if q.MaxDepth != n {
		t.Fatalf("max depth = %d, want %d", q.MaxDepth, n)
	}
}

func TestQueueSpillKeepsOrderAfterPartialDrain(t *testing.T) {
	var q Queue
	// Fill beyond capacity, drain a little, push more, then drain all:
	// order must remain global FIFO per priority.
	seq := uint64(0)
	var want []uint64
	push := func(k int) {
		for i := 0; i < k; i++ {
			q.Push(Low, pkt(seq))
			want = append(want, seq)
			seq++
		}
	}
	var got []uint64
	pop := func(k int) {
		for i := 0; i < k; i++ {
			p, _, _, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty queue")
			}
			got = append(got, p.Seq)
		}
	}
	push(12)
	pop(3)
	push(7)
	pop(16)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %v", i, got)
		}
	}
	if !q.Empty() {
		t.Fatalf("queue not empty: %d left", q.Len())
	}
}

func TestQueueSpillBothPriorities(t *testing.T) {
	var q Queue
	// Overflow both on-chip FIFOs at once: dispatch must still drain all
	// of High before any of Low, FIFO within each priority, and every
	// spilled packet must round-trip through the restore path.
	n := OnChipCap + 6
	for i := 0; i < n; i++ {
		q.Push(High, pkt(uint64(1000+i)))
		q.Push(Low, pkt(uint64(2000+i)))
	}
	if want := uint64(2 * (n - OnChipCap)); q.Spilled != want {
		t.Fatalf("spilled = %d, want %d", q.Spilled, want)
	}
	var got []uint64
	for {
		p, _, _, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, p.Seq)
	}
	if len(got) != 2*n {
		t.Fatalf("popped %d packets, want %d", len(got), 2*n)
	}
	for i := 0; i < n; i++ {
		if got[i] != uint64(1000+i) {
			t.Fatalf("high pop %d = %d, want %d (high must drain first, in order)", i, got[i], 1000+i)
		}
		if got[n+i] != uint64(2000+i) {
			t.Fatalf("low pop %d = %d, want %d", i, got[n+i], 2000+i)
		}
	}
	if q.Restored != q.Spilled {
		t.Fatalf("restored = %d, want %d (every spill restored)", q.Restored, q.Spilled)
	}
}

func TestQueueFIFOProperty(t *testing.T) {
	// Property: for arbitrary push/pop interleavings, pops within a
	// priority observe push order.
	check := func(ops []bool, prios []bool) bool {
		var q Queue
		next := map[Prio]uint64{}
		expect := map[Prio]uint64{}
		var seq uint64
		for i, isPush := range ops {
			if isPush {
				p := Low
				if i < len(prios) && prios[i] {
					p = High
				}
				// Encode priority in the sequence's low bit.
				q.Push(p, pkt(seq<<1|uint64(p)))
				next[p]++
				seq++
			} else if pkt, prio, _, ok := q.Pop(); ok {
				if Prio(pkt.Seq&1) != prio {
					return false
				}
				_ = expect
				if pkt.Seq>>1 < 0 { // unreachable; keep structure simple
					return false
				}
			}
		}
		// Drain and verify per-priority monotone order.
		last := map[Prio]int64{High: -1, Low: -1}
		for {
			pkt, prio, _, ok := q.Pop()
			if !ok {
				break
			}
			v := int64(pkt.Seq >> 1)
			if v <= last[prio] {
				return false
			}
			last[prio] = v
		}
		return q.Empty()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFramesTree(t *testing.T) {
	fs := NewFrames()
	root := fs.Alloc(NoFrame, "main")
	c1 := fs.Alloc(root.ID, "child1")
	c2 := fs.Alloc(root.ID, "child2")
	g := fs.Alloc(c1.ID, "grand")
	if fs.Live() != 4 || fs.MaxLive != 4 {
		t.Fatalf("live=%d maxlive=%d", fs.Live(), fs.MaxLive)
	}
	if fs.Get(c1.ID).Parent != root.ID {
		t.Fatal("parent link wrong")
	}
	fs.Free(g.ID)
	fs.Free(c1.ID)
	fs.Free(c2.ID)
	fs.Free(root.ID)
	if fs.Live() != 0 || fs.Freed != 4 {
		t.Fatalf("live=%d freed=%d after teardown", fs.Live(), fs.Freed)
	}
}

func TestFramesFreeWithChildrenPanics(t *testing.T) {
	fs := NewFrames()
	root := fs.Alloc(NoFrame, "main")
	fs.Alloc(root.ID, "child")
	defer func() {
		if recover() == nil {
			t.Fatal("freeing a frame with live children did not panic")
		}
	}()
	fs.Free(root.ID)
}

func TestFramesDoubleFreePanics(t *testing.T) {
	fs := NewFrames()
	f := fs.Alloc(NoFrame, "x")
	fs.Free(f.ID)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	fs.Free(f.ID)
}

func TestFramesAllocUnderDeadParentPanics(t *testing.T) {
	fs := NewFrames()
	f := fs.Alloc(NoFrame, "x")
	fs.Free(f.ID)
	defer func() {
		if recover() == nil {
			t.Fatal("alloc under dead parent did not panic")
		}
	}()
	fs.Alloc(f.ID, "orphan")
}

func TestFrameSlots(t *testing.T) {
	fs := NewFrames()
	f := fs.Alloc(NoFrame, "x")
	if _, ok := f.Take(3); ok {
		t.Fatal("empty slot returned a value")
	}
	f.Deposit(3, 77)
	w, ok := f.Take(3)
	if !ok || w != 77 {
		t.Fatalf("take = %d,%v", w, ok)
	}
	if _, ok := f.Take(3); ok {
		t.Fatal("slot not consumed by Take")
	}
}

func TestFramesIDsUnique(t *testing.T) {
	fs := NewFrames()
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		f := fs.Alloc(NoFrame, "f")
		if seen[f.ID] || f.ID == NoFrame {
			t.Fatalf("duplicate or reserved frame id %d", f.ID)
		}
		seen[f.ID] = true
		if i%3 == 0 {
			fs.Free(f.ID)
		}
	}
}
