package thread

import (
	"fmt"

	"emx/internal/packet"
)

// NoFrame is the parent of root frames.
const NoFrame uint32 = 0

// Frame is one activation frame in a PE's operand segment. A frame is
// allocated by the caller when it invokes a thread; input slots receive
// values from matching packets; register state is saved here across
// explicit context switches. Frames form a tree (not a stack) following
// the dynamic calling structure.
type Frame struct {
	ID     uint32
	Parent uint32
	Name   string
	// Slots holds values delivered by packets, indexed by input slot.
	Slots map[uint16]packet.Word
	// State is owned by the multithreading runtime (it holds the
	// coroutine handle for the thread bound to this frame).
	State any
	// children counts live child frames, for tree invariants.
	children int
}

// Frames is a PE's activation-frame store.
type Frames struct {
	table map[uint32]*Frame
	next  uint32

	Allocated uint64
	Freed     uint64
	// MaxLive tracks the high-water mark of simultaneously live frames,
	// i.e. how deep/wide the activation tree grew.
	MaxLive int
}

// NewFrames returns an empty frame store.
func NewFrames() *Frames {
	return &Frames{table: make(map[uint32]*Frame), next: NoFrame + 1}
}

// Alloc creates a frame under parent (NoFrame for roots). The parent must
// be live if given.
func (fs *Frames) Alloc(parent uint32, name string) *Frame {
	if parent != NoFrame {
		p, ok := fs.table[parent]
		if !ok {
			panic(fmt.Sprintf("thread: alloc under dead frame %d", parent))
		}
		p.children++
	}
	f := &Frame{ID: fs.next, Parent: parent, Name: name, Slots: make(map[uint16]packet.Word)}
	fs.next++
	fs.table[f.ID] = f
	fs.Allocated++
	if live := len(fs.table); live > fs.MaxLive {
		fs.MaxLive = live
	}
	return f
}

// Get returns the live frame with the given id, or nil.
func (fs *Frames) Get(id uint32) *Frame { return fs.table[id] }

// Free releases a frame. Freeing a frame with live children panics: the
// activation tree must be torn down leaf-first.
func (fs *Frames) Free(id uint32) {
	f, ok := fs.table[id]
	if !ok {
		panic(fmt.Sprintf("thread: double free of frame %d", id))
	}
	if f.children != 0 {
		panic(fmt.Sprintf("thread: free of frame %d with %d live children", id, f.children))
	}
	if f.Parent != NoFrame {
		if p := fs.table[f.Parent]; p != nil {
			p.children--
		}
	}
	delete(fs.table, id)
	fs.Freed++
}

// Live returns the number of live frames.
func (fs *Frames) Live() int { return len(fs.table) }

// Deposit stores a packet-delivered value into a frame slot.
func (f *Frame) Deposit(slot uint16, w packet.Word) { f.Slots[slot] = w }

// Take removes and returns a slot value; ok is false if not present.
func (f *Frame) Take(slot uint16) (packet.Word, bool) {
	w, ok := f.Slots[slot]
	if ok {
		delete(f.Slots, slot)
	}
	return w, ok
}
