// Package thread provides the EMC-Y thread-side hardware structures: the
// packet queue that implements hardware FIFO thread scheduling (two
// priority levels of on-chip FIFOs, eight packets each, spilling to local
// memory when full), and the activation-frame store (frames form a tree
// reflecting the dynamic calling structure, bounded only by memory).
package thread

import "emx/internal/packet"

// OnChipCap is the capacity of each on-chip priority FIFO in packets.
const OnChipCap = 8

// Prio selects one of the IBU's two packet-buffer priority levels.
type Prio uint8

const (
	// High priority: serviced before all normal packets (used for
	// EM-4-style EXU servicing threads in the ablation mode).
	High Prio = iota
	// Low priority: normal thread invocations and read replies.
	Low
	nPrio
)

// Queue is the hardware packet queue feeding the Matching Unit. Packets
// are dispatched in FIFO order within a priority level, High before Low.
// Pushes beyond the on-chip capacity overflow to an on-memory buffer and
// are restored to the on-chip FIFO as it drains, preserving order.
type Queue struct {
	onchip [nPrio][]*packet.Packet
	spill  [nPrio][]*packet.Packet

	// Spilled and Restored count overflow round-trips through memory;
	// each costs extra MCU traffic that the processor model charges.
	Spilled  uint64
	Restored uint64
	// MaxDepth tracks the high-water mark of total queued packets.
	MaxDepth int
}

// Len returns the number of queued packets across both priorities.
func (q *Queue) Len() int {
	n := 0
	for p := Prio(0); p < nPrio; p++ {
		n += len(q.onchip[p]) + len(q.spill[p])
	}
	return n
}

// Empty reports whether no packets are queued.
func (q *Queue) Empty() bool { return q.Len() == 0 }

// Push enqueues a packet at the given priority, returning true if it had
// to spill to the on-memory buffer.
func (q *Queue) Push(p Prio, pkt *packet.Packet) (spilled bool) {
	if len(q.onchip[p]) < OnChipCap && len(q.spill[p]) == 0 {
		q.onchip[p] = append(q.onchip[p], pkt)
	} else {
		q.spill[p] = append(q.spill[p], pkt)
		q.Spilled++
		spilled = true
	}
	if d := q.Len(); d > q.MaxDepth {
		q.MaxDepth = d
	}
	return spilled
}

// Pop dequeues the next packet: High FIFO first, then Low, FIFO within
// each. fromSpill reports whether the returned packet had been spilled to
// memory (the caller charges the restore cost). ok is false when empty.
func (q *Queue) Pop() (pkt *packet.Packet, prio Prio, fromSpill bool, ok bool) {
	for p := Prio(0); p < nPrio; p++ {
		if len(q.onchip[p]) > 0 {
			pkt = q.onchip[p][0]
			q.onchip[p][0] = nil
			q.onchip[p] = q.onchip[p][1:]
			q.refill(p)
			return pkt, p, false, true
		}
		// On-chip FIFO empty but spill holds packets (can happen only
		// transiently between refills); serve the spill head directly.
		if len(q.spill[p]) > 0 {
			pkt = q.spill[p][0]
			q.spill[p][0] = nil
			q.spill[p] = q.spill[p][1:]
			q.Restored++
			return pkt, p, true, true
		}
	}
	return nil, 0, false, false
}

// refill moves spilled packets back into freed on-chip slots, as the IBU
// does automatically when the FIFO drains.
func (q *Queue) refill(p Prio) {
	for len(q.onchip[p]) < OnChipCap && len(q.spill[p]) > 0 {
		q.onchip[p] = append(q.onchip[p], q.spill[p][0])
		q.spill[p][0] = nil
		q.spill[p] = q.spill[p][1:]
		q.Restored++
	}
}
