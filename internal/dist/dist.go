// Package dist provides the block/thread work-partitioning arithmetic
// shared by the workloads: splitting a PE's block of length bl among h
// threads as evenly as possible (the first bl mod h threads get one extra
// element), and the inverse lookup from element index to owning thread.
package dist

import "fmt"

// Chunk returns the half-open index range [lo, hi) of thread th when a
// block of bl elements is divided among h threads. Threads with th >= bl
// receive empty ranges.
func Chunk(bl, h, th int) (lo, hi int) {
	if h <= 0 || th < 0 || th >= h {
		panic(fmt.Sprintf("dist: Chunk(bl=%d, h=%d, th=%d)", bl, h, th))
	}
	q, r := bl/h, bl%h
	if th < r {
		lo = th * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (th-r)*q
	return lo, lo + q
}

// ChunkOf returns the thread whose chunk contains element index i.
func ChunkOf(bl, h, i int) int {
	if h <= 0 || i < 0 || i >= bl {
		panic(fmt.Sprintf("dist: ChunkOf(bl=%d, h=%d, i=%d)", bl, h, i))
	}
	q, r := bl/h, bl%h
	if q == 0 {
		return i // one element per thread for the first bl threads
	}
	if i < r*(q+1) {
		return i / (q + 1)
	}
	return r + (i-r*(q+1))/q
}
