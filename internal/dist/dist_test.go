package dist

import (
	"testing"
	"testing/quick"
)

func TestChunkEven(t *testing.T) {
	lo, hi := Chunk(16, 4, 0)
	if lo != 0 || hi != 4 {
		t.Fatalf("chunk 0 = [%d,%d)", lo, hi)
	}
	lo, hi = Chunk(16, 4, 3)
	if lo != 12 || hi != 16 {
		t.Fatalf("chunk 3 = [%d,%d)", lo, hi)
	}
}

func TestChunkUneven(t *testing.T) {
	// bl=10, h=3: sizes 4,3,3.
	want := [][2]int{{0, 4}, {4, 7}, {7, 10}}
	for th, w := range want {
		lo, hi := Chunk(10, 3, th)
		if lo != w[0] || hi != w[1] {
			t.Fatalf("chunk %d = [%d,%d), want %v", th, lo, hi, w)
		}
	}
}

func TestChunkEmptyTail(t *testing.T) {
	// More threads than elements: threads beyond bl get empty ranges.
	seen := 0
	for th := 0; th < 8; th++ {
		lo, hi := Chunk(5, 8, th)
		seen += hi - lo
		if hi-lo > 1 {
			t.Fatalf("chunk %d = [%d,%d), want size <= 1", th, lo, hi)
		}
	}
	if seen != 5 {
		t.Fatalf("chunks cover %d elements, want 5", seen)
	}
}

func TestChunkPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"h=0":      func() { Chunk(4, 0, 0) },
		"th=-1":    func() { Chunk(4, 2, -1) },
		"th>=h":    func() { Chunk(4, 2, 2) },
		"of-i=-1":  func() { ChunkOf(4, 2, -1) },
		"of-i>=bl": func() { ChunkOf(4, 2, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestChunkPartitionProperty(t *testing.T) {
	// Property: chunks tile [0, bl) exactly, in order, sizes differ by <=1,
	// and ChunkOf inverts Chunk.
	check := func(blRaw, hRaw uint16) bool {
		bl := int(blRaw%500) + 1
		h := int(hRaw%20) + 1
		prev := 0
		minSize, maxSize := bl+1, -1
		for th := 0; th < h; th++ {
			lo, hi := Chunk(bl, h, th)
			if lo != prev || hi < lo {
				return false
			}
			if s := hi - lo; s < minSize {
				minSize = s
			}
			if s := hi - lo; s > maxSize {
				maxSize = s
			}
			for i := lo; i < hi; i++ {
				if ChunkOf(bl, h, i) != th {
					return false
				}
			}
			prev = hi
		}
		return prev == bl && maxSize-minSize <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
