package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates EMC-Y assembly text into a Program. Syntax:
//
//	; comment (also #)
//	label:
//	    li   r1, 100          ; 32-bit immediates, decimal or 0x hex
//	    addi r2, r1, -4
//	    add  r3, r1, r2
//	    ld   r4, 8(r3)        ; local load, base+displacement
//	    st   r4, 0(r3)
//	    gaddr r5, r6, r7      ; pack PE r6 + offset r7 into r5
//	    rread r8, r5          ; split-phase remote read (suspends)
//	    rreadb r9, r5, r10    ; block read: r10 words from gaddr r5 to local mem[r9]
//	    rwrite r5, r8         ; remote write (does not suspend)
//	    spawn r6, entry, r8   ; invoke 'entry' on PE r6 with argument r8
//	    beq  r1, r2, done
//	    j    loop
//	    yield
//	done:
//	    halt
//
// Registers are r0..r31 or the aliases zero, arg, pe, npe.
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name, Labels: map[string]int{}}
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		// Peel off any leading labels (several may share a line).
		for {
			trimmed := strings.TrimSpace(line)
			if i := strings.Index(trimmed, ":"); i >= 0 && isIdent(trimmed[:i]) {
				label := trimmed[:i]
				if _, dup := p.Labels[label]; dup {
					return nil, fmt.Errorf("%s:%d: duplicate label %q", name, ln+1, label)
				}
				p.Labels[label] = len(p.Code)
				line = trimmed[i+1:]
				continue
			}
			break
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ins, err := parseInstr(line, ln+1)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, ln+1, err)
		}
		p.Code = append(p.Code, ins)
	}
	// Resolve labels.
	for i := range p.Code {
		ins := &p.Code[i]
		if ins.Label == "" {
			continue
		}
		target, ok := p.Labels[ins.Label]
		if !ok {
			return nil, fmt.Errorf("%s:%d: undefined label %q", name, ins.Line, ins.Label)
		}
		ins.Imm = int64(target)
	}
	if len(p.Code) == 0 {
		return nil, fmt.Errorf("%s: empty program", name)
	}
	return p, nil
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var regAliases = map[string]Reg{
	"zero": RZero, "arg": RArg, "pe": RPE, "npe": RNPE,
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v > 1<<32 || v < -(1<<31) {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return v, nil
}

// parseMem parses "disp(rBase)".
func parseMem(s string) (Reg, int64, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	disp := int64(0)
	if ds := strings.TrimSpace(s[:open]); ds != "" {
		var err error
		disp, err = parseImm(ds)
		if err != nil {
			return 0, 0, err
		}
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return base, disp, nil
}

var mnemonics = func() map[string]Op {
	m := make(map[string]Op, nOps)
	for o := Op(0); o < nOps; o++ {
		m[o.String()] = o
	}
	return m
}()

func parseInstr(line string, ln int) (Instr, error) {
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(strings.TrimSpace(fields[0]))
	op, ok := mnemonics[mn]
	if !ok {
		return Instr{}, fmt.Errorf("unknown mnemonic %q", mn)
	}
	var args []string
	if len(fields) > 1 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	ins := Instr{Op: op, Line: ln}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	var err error
	switch op {
	case OpNop, OpYield, OpHalt:
		return ins, need(0)

	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSlt,
		OpFadd, OpFsub, OpFmul, OpFdiv, OpGaddr:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseWritable(args[0]); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[1]); err != nil {
			return ins, err
		}
		ins.Rt, err = parseReg(args[2])
		return ins, err

	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpSlti:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseWritable(args[0]); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[1]); err != nil {
			return ins, err
		}
		ins.Imm, err = parseImm(args[2])
		return ins, err

	case OpLi:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseWritable(args[0]); err != nil {
			return ins, err
		}
		ins.Imm, err = parseImm(args[1])
		return ins, err

	case OpItof, OpFtoi:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseWritable(args[0]); err != nil {
			return ins, err
		}
		ins.Rs, err = parseReg(args[1])
		return ins, err

	case OpLd:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseWritable(args[0]); err != nil {
			return ins, err
		}
		ins.Rs, ins.Imm, err = parseMem(args[1])
		return ins, err

	case OpSt:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rt, err = parseReg(args[0]); err != nil {
			return ins, err
		}
		ins.Rs, ins.Imm, err = parseMem(args[1])
		return ins, err

	case OpBeq, OpBne, OpBlt, OpBge:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, err
		}
		if ins.Rt, err = parseReg(args[1]); err != nil {
			return ins, err
		}
		ins.Label = args[2]
		if !isIdent(ins.Label) {
			return ins, fmt.Errorf("bad branch target %q", ins.Label)
		}
		return ins, nil

	case OpJ:
		if err = need(1); err != nil {
			return ins, err
		}
		ins.Label = args[0]
		if !isIdent(ins.Label) {
			return ins, fmt.Errorf("bad jump target %q", ins.Label)
		}
		return ins, nil

	case OpRRead:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseWritable(args[0]); err != nil {
			return ins, err
		}
		ins.Rs, err = parseReg(args[1])
		return ins, err

	case OpRReadB:
		// rreadb rDest, rGaddr, rCount: rDest holds the local word offset
		// the block lands at; rCount the number of words.
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rd, err = parseReg(args[0]); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[1]); err != nil {
			return ins, err
		}
		ins.Rt, err = parseReg(args[2])
		return ins, err

	case OpRWrite:
		if err = need(2); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, err
		}
		ins.Rt, err = parseReg(args[1])
		return ins, err

	case OpSpawn:
		if err = need(3); err != nil {
			return ins, err
		}
		if ins.Rs, err = parseReg(args[0]); err != nil {
			return ins, err
		}
		ins.Label = args[1]
		if !isIdent(ins.Label) {
			return ins, fmt.Errorf("bad spawn entry %q", ins.Label)
		}
		ins.Rt, err = parseReg(args[2])
		return ins, err
	}
	return ins, fmt.Errorf("unhandled mnemonic %q", mn)
}

func parseWritable(s string) (Reg, error) {
	r, err := parseReg(s)
	if err != nil {
		return 0, err
	}
	if r == RZero || r >= RArg {
		return 0, fmt.Errorf("register %q is read-only", s)
	}
	return r, nil
}
