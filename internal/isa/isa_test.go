package isa

import (
	"strings"
	"testing"

	"emx/internal/core"
	"emx/internal/packet"
	"emx/internal/refalgo"
)

func mustAsm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOn(t *testing.T, p int, prog *Program, entry string, arg packet.Word) *core.Machine {
	t.Helper()
	cfg := core.DefaultConfig(p)
	cfg.MemWords = 1 << 12
	cfg.MaxCycles = 10_000_000
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Spawn(m, 0, prog, entry, arg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "frob r1, r2, r3\nhalt",
		"bad register":      "add r1, r2, r99\nhalt",
		"read-only dest":    "li zero, 4\nhalt",
		"arg read-only":     "addi arg, arg, 1\nhalt",
		"bad operand count": "add r1, r2\nhalt",
		"undefined label":   "j nowhere\nhalt",
		"duplicate label":   "x: nop\nx: halt",
		"empty program":     "; nothing\n",
		"bad immediate":     "li r1, banana\nhalt",
		"bad mem operand":   "ld r1, r2\nhalt",
	}
	for name, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestAssembleLabelsAndComments(t *testing.T) {
	p := mustAsm(t, `
; leading comment
start:
    li r1, 0x10      # hex immediate
loop:
    addi r1, r1, -1
    bne r1, zero, loop
done: halt
`)
	if len(p.Code) != 4 {
		t.Fatalf("code length %d, want 4", len(p.Code))
	}
	for _, label := range []string{"start", "loop", "done"} {
		if _, err := p.Entry(label); err != nil {
			t.Errorf("missing label %s", label)
		}
	}
	if _, err := p.Entry("nope"); err == nil {
		t.Error("bogus entry accepted")
	}
}

func TestALUProgram(t *testing.T) {
	// Compute ((7+5)*3 - 6) >> 1 = 15 and store to memory[100].
	prog := mustAsm(t, `
main:
    li r1, 7
    li r2, 5
    add r3, r1, r2
    muli r3, r3, 3
    addi r3, r3, -6
    srli r3, r3, 1
    li r4, 100
    st r3, 0(r4)
    halt
`)
	m := runOn(t, 1, prog, "main", 0)
	if got := m.Mem(0).Peek(100); got != 15 {
		t.Fatalf("result = %d, want 15", got)
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 = 55.
	prog := mustAsm(t, `
main:
    li r1, 0      ; sum
    li r2, 1      ; i
    li r3, 11
loop:
    add r1, r1, r2
    addi r2, r2, 1
    blt r2, r3, loop
    li r4, 200
    st r1, 0(r4)
    halt
`)
	m := runOn(t, 1, prog, "main", 0)
	if got := m.Mem(0).Peek(200); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestFloatOps(t *testing.T) {
	// (3.0 + 1.0) * 2.0 / 8.0 = 1.0 -> ftoi -> 1.
	prog := mustAsm(t, `
main:
    li r1, 3
    itof r1, r1
    li r2, 1
    itof r2, r2
    fadd r3, r1, r2
    li r4, 2
    itof r4, r4
    fmul r3, r3, r4
    li r5, 8
    itof r5, r5
    fdiv r3, r3, r5
    ftoi r6, r3
    li r7, 300
    st r6, 0(r7)
    halt
`)
	m := runOn(t, 1, prog, "main", 0)
	if got := m.Mem(0).Peek(300); got != 1 {
		t.Fatalf("float result = %d, want 1", got)
	}
}

func TestSpecialRegisters(t *testing.T) {
	prog := mustAsm(t, `
main:
    li r1, 400
    st arg, 0(r1)
    st pe, 1(r1)
    st npe, 2(r1)
    halt
`)
	m := runOn(t, 4, prog, "main", 77)
	if m.Mem(0).Peek(400) != 77 || m.Mem(0).Peek(401) != 0 || m.Mem(0).Peek(402) != 4 {
		t.Fatalf("specials = %d %d %d", m.Mem(0).Peek(400), m.Mem(0).Peek(401), m.Mem(0).Peek(402))
	}
}

func TestRemoteReadWrite(t *testing.T) {
	// PE0 writes 99 to PE1[50], reads it back, stores locally at 60.
	prog := mustAsm(t, `
main:
    li r1, 1        ; target PE
    li r2, 50       ; offset
    gaddr r3, r1, r2
    li r4, 99
    rwrite r3, r4
    rread r5, r3
    li r6, 60
    st r5, 0(r6)
    halt
`)
	m := runOn(t, 2, prog, "main", 0)
	if got := m.Mem(1).Peek(50); got != 99 {
		t.Fatalf("remote write: %d", got)
	}
	if got := m.Mem(0).Peek(60); got != 99 {
		t.Fatalf("read back: %d", got)
	}
}

func TestSpawnAcrossPEs(t *testing.T) {
	// main spawns child on every PE; each child writes its PE number into
	// PE0's memory at 500+pe.
	prog := mustAsm(t, `
main:
    li r1, 0          ; pe iterator
loop:
    spawn r1, child, r1
    addi r1, r1, 1
    blt r1, npe, loop
    halt
child:
    li r2, 500
    add r2, r2, arg
    li r3, 0
    gaddr r4, r3, r2
    rwrite r4, pe
    halt
`)
	m := runOn(t, 4, prog, "main", 0)
	for pe := 0; pe < 4; pe++ {
		if got := m.Mem(0).Peek(uint32(500 + pe)); got != packet.Word(pe) {
			t.Fatalf("child on PE%d wrote %d", pe, got)
		}
	}
}

func TestYieldInstruction(t *testing.T) {
	prog := mustAsm(t, `
main:
    yield
    yield
    halt
`)
	cfg := core.DefaultConfig(1)
	cfg.MemWords = 1 << 10
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Spawn(m, 0, prog, "main", 0); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.PEs[0].Switches[3] != 2 { // SwitchExplicit
		t.Fatalf("explicit switches = %d, want 2", r.PEs[0].Switches[3])
	}
}

func TestRunawayProgramCaught(t *testing.T) {
	prog := mustAsm(t, `
spin:
    j spin
`)
	cfg := core.DefaultConfig(1)
	cfg.MemWords = 1 << 10
	m, _ := core.NewMachine(cfg)
	fn, err := Thread(prog, "spin")
	if err != nil {
		t.Fatal(err)
	}
	m.SpawnAt(0, "spin", 0, fn)
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "steps") {
		t.Fatalf("runaway not caught: %v", err)
	}
}

func TestInstructionTimingCharged(t *testing.T) {
	// 1000 one-cycle adds must charge 1000 compute cycles (plus the li).
	prog := mustAsm(t, `
main:
    li r1, 0
    li r2, 1000
loop:
    addi r1, r1, 1
    blt r1, r2, loop
    halt
`)
	cfg := core.DefaultConfig(1)
	cfg.MemWords = 1 << 10
	m, _ := core.NewMachine(cfg)
	if err := Spawn(m, 0, prog, "main", 0); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 + 2*1000) // 2 li + 1000*(addi+blt)
	if got := int64(r.PEs[0].Times.Compute); got != want {
		t.Fatalf("compute = %d, want %d", got, want)
	}
}

func TestOpStringsAndCycles(t *testing.T) {
	if OpAdd.String() != "add" || OpRRead.String() != "rread" {
		t.Fatal("bad op names")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op empty name")
	}
	if OpLd.Cycles() != 2 || OpFdiv.Cycles() != 8 || OpAdd.Cycles() != 1 {
		t.Fatal("bad op cycle counts")
	}
}

func TestInstrString(t *testing.T) {
	p := mustAsm(t, "main:\n j main\n halt")
	if s := p.Code[0].String(); !strings.Contains(s, "j") {
		t.Fatalf("instr string %q", s)
	}
}

func TestDemoBitonic2SortsAcrossPEs(t *testing.T) {
	prog := mustAsm(t, DemoBitonic2)
	cfg := core.DefaultConfig(2)
	cfg.MemWords = 1 << 10
	cfg.MaxCycles = 1_000_000
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both PEs run main (each sorts its side of the compare-split).
	for pe := packet.PE(0); pe < 2; pe++ {
		if err := Spawn(m, pe, prog, "main", 0); err != nil {
			t.Fatal(err)
		}
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Gather: inputs from the (sorted) local blocks, outputs from 16..19.
	var in, out []uint32
	for pe := packet.PE(0); pe < 2; pe++ {
		for i := uint32(0); i < 4; i++ {
			in = append(in, uint32(m.Mem(pe).Peek(i)))
			out = append(out, uint32(m.Mem(pe).Peek(16+i)))
		}
	}
	if !refalgo.IsSorted(out) {
		t.Fatalf("compare-split output not sorted: %v", out)
	}
	if !refalgo.IsPermutation(in, out) {
		t.Fatalf("output %v not a permutation of %v", out, in)
	}
	// The reads were split-phase: each PE suspended once per element.
	for pe := range r.PEs {
		if got := r.PEs[pe].Switches[0]; got != 4 { // SwitchRemoteRead
			t.Fatalf("PE%d remote-read switches = %d, want 4", pe, got)
		}
	}
}

func TestBlockReadInstruction(t *testing.T) {
	// The fourth send instruction: block read of 6 words from PE1 into
	// local memory at 100.
	prog := mustAsm(t, `
main:
    li r1, 1
    li r2, 40
    gaddr r3, r1, r2   ; PE1 + 40
    li r4, 100         ; local destination
    li r5, 6           ; word count
    rreadb r4, r3, r5
    halt
`)
	cfg := core.DefaultConfig(2)
	cfg.MemWords = 1 << 10
	m, _ := core.NewMachine(cfg)
	for i := uint32(0); i < 6; i++ {
		m.Mem(1).Poke(40+i, packet.Word(i*11))
	}
	if err := Spawn(m, 0, prog, "main", 0); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 6; i++ {
		if got := m.Mem(0).Peek(100 + i); got != packet.Word(i*11) {
			t.Fatalf("block[%d] = %d, want %d", i, got, i*11)
		}
	}
	// One suspension for the whole block.
	if got := r.PEs[0].Switches[0]; got != 1 {
		t.Fatalf("remote-read switches = %d, want 1", got)
	}
	if r.PEs[0].RemoteReads != 6 {
		t.Fatalf("remote reads = %d, want 6 words", r.PEs[0].RemoteReads)
	}
}

func TestBlockReadBadCountPanics(t *testing.T) {
	prog := mustAsm(t, `
main:
    li r1, 1
    li r2, 0
    gaddr r3, r1, r2
    li r4, 100
    rreadb r4, r3, zero   ; count = 0
    halt
`)
	cfg := core.DefaultConfig(2)
	cfg.MemWords = 1 << 10
	m, _ := core.NewMachine(cfg)
	if err := Spawn(m, 0, prog, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil {
		t.Fatal("zero-length block read not rejected")
	}
}

func TestLoadStoreTimingNotDoubleCharged(t *testing.T) {
	// ld/st cost exactly the 2-cycle MCU access, not 2 (decode estimate)
	// plus 2 (MCU): li + st + ld + li = 1 + 2 + 2 + 1 = 6 compute cycles.
	prog := mustAsm(t, `
main:
    li r1, 10
    st r1, 0(zero)
    ld r2, 0(zero)
    li r3, 1
    halt
`)
	cfg := core.DefaultConfig(1)
	cfg.MemWords = 1 << 10
	m, _ := core.NewMachine(cfg)
	if err := Spawn(m, 0, prog, "main", 0); err != nil {
		t.Fatal(err)
	}
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PEs[0].Times.Compute; got != 6 {
		t.Fatalf("compute = %d, want 6", got)
	}
}
