// Package isa implements an EMC-Y-style instruction set, a two-pass
// assembler, and an interpreter that executes assembled programs as
// threads on the simulated EM-X.
//
// The EMC-Y is a register-based RISC pipeline: 32 registers, one-cycle
// integer and single-precision float instructions (float divide excepted),
// one-cycle packet generation, and dedicated send instructions for remote
// reads, remote writes and thread invocation. This package models that
// programmer-visible architecture — instructions are kept as structured
// values rather than binary words; the encoding itself is out of scope.
//
// The interpreter charges one cycle per instruction (more for loads,
// stores and fdiv), batching the charge into the enclosing thread's run
// length so that the simulation cost stays proportional to the number of
// *suspension points*, not instructions. Remote reads suspend the thread
// exactly like the hardware's split-phase transaction.
package isa

import (
	"fmt"

	"emx/internal/sim"
)

// Reg is a register number 0..31. r0 is hardwired to zero; r29-r31 are
// read-only identity registers (argument, PE number, machine size).
type Reg uint8

// Named registers.
const (
	RZero Reg = 0  // always zero
	RArg  Reg = 29 // invoke argument
	RPE   Reg = 30 // own processor number
	RNPE  Reg = 31 // number of processors
	NRegs     = 32
)

// Op enumerates the instruction opcodes.
type Op uint8

const (
	OpNop Op = iota
	// ALU register-register: rd = rs OP rt.
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSlt // rd = (int32(rs) < int32(rt)) ? 1 : 0
	// ALU register-immediate: rd = rs OP imm.
	OpAddi
	OpMuli
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSlti
	// OpLi loads a 32-bit immediate: rd = imm.
	OpLi
	// Local memory (2 cycles through the MCU): rd = mem[rs+imm] / mem[rs+imm] = rt.
	OpLd
	OpSt
	// Branches compare rs, rt and jump to Imm (resolved label).
	OpBeq
	OpBne
	OpBlt
	OpBge
	// OpJ jumps unconditionally.
	OpJ
	// Single-precision float (registers hold float32 bit patterns).
	OpFadd
	OpFsub
	OpFmul
	OpFdiv // multi-cycle
	OpItof
	OpFtoi
	// OpGaddr packs a global address: rd = gaddr(pe=rs, off=rt).
	OpGaddr
	// Send instructions (one-cycle packet generation) — the EMC-Y's four
	// packet-generating instructions: single read, block read, write,
	// and thread invocation.
	OpRRead  // rd = remote word at gaddr in rs; suspends the thread
	OpRReadB // block read: rt words from gaddr in rs into local mem at rd
	OpRWrite // remote store rt at gaddr in rs; does not suspend
	OpSpawn  // invoke entry Imm on PE rs with argument rt
	// OpYield is the explicit context switch.
	OpYield
	// OpHalt ends the thread.
	OpHalt
	nOps
)

var opNames = [nOps]string{
	"nop", "add", "sub", "mul", "and", "or", "xor", "sll", "srl", "slt",
	"addi", "muli", "andi", "ori", "xori", "slli", "srli", "slti",
	"li", "ld", "st", "beq", "bne", "blt", "bge", "j",
	"fadd", "fsub", "fmul", "fdiv", "itof", "ftoi",
	"gaddr", "rread", "rreadb", "rwrite", "spawn", "yield", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cycles returns the EXU occupancy of the instruction. All integer and
// single-precision float instructions take one clock on the EMC-Y except
// float division and the memory exchange path (here: loads and stores
// through the MCU).
func (o Op) Cycles() sim.Time {
	switch o {
	case OpLd, OpSt:
		return 2
	case OpFdiv:
		return 8
	default:
		return 1
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op         Op
	Rd, Rs, Rt Reg
	Imm        int64 // immediate, branch/jump target, or spawn entry index
	// Label is the unresolved symbol for branches/jumps/spawns; the
	// assembler resolves it into Imm.
	Label string
	// Line is the 1-based source line, for error reporting.
	Line int
}

func (i Instr) String() string {
	if i.Label != "" {
		return fmt.Sprintf("%s r%d, r%d, %s", i.Op, i.Rd, i.Rs, i.Label)
	}
	return fmt.Sprintf("%s r%d, r%d, r%d, %d", i.Op, i.Rd, i.Rs, i.Rt, i.Imm)
}

// Program is an assembled unit: instructions plus the symbol table.
type Program struct {
	Name   string
	Code   []Instr
	Labels map[string]int
}

// Entry returns the instruction index of a label.
func (p *Program) Entry(label string) (int, error) {
	pc, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("isa: program %q has no label %q", p.Name, label)
	}
	return pc, nil
}
