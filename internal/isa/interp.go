package isa

import (
	"fmt"
	"math"

	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/sim"
)

// DefaultMaxSteps bounds interpreted instructions per thread, catching
// runaway programs before they exhaust the machine's cycle budget.
const DefaultMaxSteps = 50_000_000

// Thread returns a core.ThreadFn interpreting prog from the given entry
// label. The invoke argument appears in register RArg.
func Thread(prog *Program, entry string) (core.ThreadFn, error) {
	pc, err := prog.Entry(entry)
	if err != nil {
		return nil, err
	}
	return func(tc *core.TC) { interpret(tc, prog, pc, DefaultMaxSteps) }, nil
}

// Spawn seeds an interpreted thread on a machine before Run.
func Spawn(m *core.Machine, pe packet.PE, prog *Program, entry string, arg packet.Word) error {
	fn, err := Thread(prog, entry)
	if err != nil {
		return err
	}
	m.SpawnAt(pe, prog.Name+":"+entry, arg, fn)
	return nil
}

// interpret executes the program on the simulated thread. Instruction
// cycles accumulate into a pending charge that is flushed (as one
// Compute run length) before every suspension point, exactly matching
// the run-length structure the hardware sees.
func interpret(tc *core.TC, prog *Program, pc int, maxSteps int) {
	var regs [NRegs]packet.Word
	regs[RArg] = tc.Arg()
	regs[RPE] = packet.Word(tc.PE())
	regs[RNPE] = packet.Word(tc.P())

	var pending sim.Time
	flush := func() {
		if pending > 0 {
			tc.Compute(pending)
			pending = 0
		}
	}
	wr := func(r Reg, v packet.Word) {
		if r != RZero && r < RArg {
			regs[r] = v
		}
	}
	f32 := func(r Reg) float64 { return float64(math.Float32frombits(uint32(regs[r]))) }
	wf32 := func(r Reg, v float64) { wr(r, packet.Word(math.Float32bits(float32(v)))) }

	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			panic(fmt.Sprintf("isa: %s exceeded %d steps (runaway program?)", prog.Name, maxSteps))
		}
		if pc < 0 || pc >= len(prog.Code) {
			panic(fmt.Sprintf("isa: %s: pc %d out of range", prog.Name, pc))
		}
		ins := prog.Code[pc]
		pending += ins.Op.Cycles()
		pc++
		switch ins.Op {
		case OpNop:
		case OpAdd:
			wr(ins.Rd, regs[ins.Rs]+regs[ins.Rt])
		case OpSub:
			wr(ins.Rd, regs[ins.Rs]-regs[ins.Rt])
		case OpMul:
			wr(ins.Rd, regs[ins.Rs]*regs[ins.Rt])
		case OpAnd:
			wr(ins.Rd, regs[ins.Rs]&regs[ins.Rt])
		case OpOr:
			wr(ins.Rd, regs[ins.Rs]|regs[ins.Rt])
		case OpXor:
			wr(ins.Rd, regs[ins.Rs]^regs[ins.Rt])
		case OpSll:
			wr(ins.Rd, regs[ins.Rs]<<(regs[ins.Rt]&31))
		case OpSrl:
			wr(ins.Rd, regs[ins.Rs]>>(regs[ins.Rt]&31))
		case OpSlt:
			wr(ins.Rd, boolWord(int32(regs[ins.Rs]) < int32(regs[ins.Rt])))
		case OpAddi:
			wr(ins.Rd, regs[ins.Rs]+packet.Word(uint32(ins.Imm)))
		case OpMuli:
			wr(ins.Rd, regs[ins.Rs]*packet.Word(uint32(ins.Imm)))
		case OpAndi:
			wr(ins.Rd, regs[ins.Rs]&packet.Word(uint32(ins.Imm)))
		case OpOri:
			wr(ins.Rd, regs[ins.Rs]|packet.Word(uint32(ins.Imm)))
		case OpXori:
			wr(ins.Rd, regs[ins.Rs]^packet.Word(uint32(ins.Imm)))
		case OpSlli:
			wr(ins.Rd, regs[ins.Rs]<<(uint32(ins.Imm)&31))
		case OpSrli:
			wr(ins.Rd, regs[ins.Rs]>>(uint32(ins.Imm)&31))
		case OpSlti:
			wr(ins.Rd, boolWord(int32(regs[ins.Rs]) < int32(uint32(ins.Imm))))
		case OpLi:
			wr(ins.Rd, packet.Word(uint32(ins.Imm)))
		case OpLd:
			// The MCU access charged by LocalLoad *is* the instruction's
			// cost; remove the decode-time estimate to avoid double charge.
			pending -= ins.Op.Cycles()
			flush()
			wr(ins.Rd, tc.LocalLoad(uint32(regs[ins.Rs])+uint32(ins.Imm)))
		case OpSt:
			pending -= ins.Op.Cycles()
			flush()
			tc.LocalStore(uint32(regs[ins.Rs])+uint32(ins.Imm), regs[ins.Rt])
		case OpBeq:
			if regs[ins.Rs] == regs[ins.Rt] {
				pc = int(ins.Imm)
			}
		case OpBne:
			if regs[ins.Rs] != regs[ins.Rt] {
				pc = int(ins.Imm)
			}
		case OpBlt:
			if int32(regs[ins.Rs]) < int32(regs[ins.Rt]) {
				pc = int(ins.Imm)
			}
		case OpBge:
			if int32(regs[ins.Rs]) >= int32(regs[ins.Rt]) {
				pc = int(ins.Imm)
			}
		case OpJ:
			pc = int(ins.Imm)
		case OpFadd:
			wf32(ins.Rd, f32(ins.Rs)+f32(ins.Rt))
		case OpFsub:
			wf32(ins.Rd, f32(ins.Rs)-f32(ins.Rt))
		case OpFmul:
			wf32(ins.Rd, f32(ins.Rs)*f32(ins.Rt))
		case OpFdiv:
			wf32(ins.Rd, f32(ins.Rs)/f32(ins.Rt))
		case OpItof:
			wf32(ins.Rd, float64(int32(regs[ins.Rs])))
		case OpFtoi:
			wr(ins.Rd, packet.Word(uint32(int32(f32(ins.Rs)))))
		case OpGaddr:
			ga := packet.GlobalAddr{PE: packet.PE(regs[ins.Rs]), Off: uint32(regs[ins.Rt])}
			if !ga.Valid() {
				panic(fmt.Sprintf("isa: %s:%d: invalid global address %v", prog.Name, ins.Line, ga))
			}
			wr(ins.Rd, ga.Pack())
		case OpRRead:
			flush()
			wr(ins.Rd, tc.Read(packet.UnpackAddr(regs[ins.Rs])))
		case OpRReadB:
			flush()
			count := int(uint32(regs[ins.Rt]))
			if count <= 0 || count > 1<<16 {
				panic(fmt.Sprintf("isa: %s:%d: block read of %d words", prog.Name, ins.Line, count))
			}
			words := tc.ReadBlock(packet.UnpackAddr(regs[ins.Rs]), count)
			base := uint32(regs[ins.Rd])
			for i, w := range words {
				// Storing the streamed block costs the MCU rate per word.
				tc.LocalStore(base+uint32(i), w)
			}
		case OpRWrite:
			flush()
			tc.Write(packet.UnpackAddr(regs[ins.Rs]), regs[ins.Rt])
		case OpSpawn:
			flush()
			entryPC := int(ins.Imm)
			arg := regs[ins.Rt]
			pe := packet.PE(regs[ins.Rs])
			tc.Spawn(pe, fmt.Sprintf("%s+%d", prog.Name, entryPC), arg, func(tc2 *core.TC) {
				interpret(tc2, prog, entryPC, maxSteps)
			})
		case OpYield:
			flush()
			tc.Yield(metrics.SwitchExplicit)
		case OpHalt:
			pending -= ins.Op.Cycles() // halt itself is free
			flush()
			return
		default:
			panic(fmt.Sprintf("isa: %s:%d: unimplemented op %v", prog.Name, ins.Line, ins.Op))
		}
	}
}

func boolWord(b bool) packet.Word {
	if b {
		return 1
	}
	return 0
}
