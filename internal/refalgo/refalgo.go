// Package refalgo provides sequential reference implementations — serial
// bitonic sorting, direct DFT, and radix-2 FFT — used as correctness
// oracles for the distributed multithreaded workloads, plus small
// verification helpers.
package refalgo

import (
	"math"
	"math/bits"
	"sort"
)

// BitonicSort sorts xs in place with the serial Batcher bitonic network.
// len(xs) must be a power of two.
func BitonicSort(xs []uint32) {
	n := len(xs)
	if n&(n-1) != 0 {
		panic("refalgo: bitonic sort needs a power-of-two length")
	}
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l > i {
					up := i&k == 0
					if (up && xs[i] > xs[l]) || (!up && xs[i] < xs[l]) {
						xs[i], xs[l] = xs[l], xs[i]
					}
				}
			}
		}
	}
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []uint32) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

// IsPermutation reports whether a and b contain the same multiset.
func IsPermutation(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	ca := append([]uint32(nil), a...)
	cb := append([]uint32(nil), b...)
	sort.Slice(ca, func(i, j int) bool { return ca[i] < ca[j] })
	sort.Slice(cb, func(i, j int) bool { return cb[i] < cb[j] })
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// MergeKeepLow merges two ascending-sorted slices and returns the lowest
// len(a) elements, ascending — the compare-split a "low" PE performs.
func MergeKeepLow(a, b []uint32) []uint32 {
	out := make([]uint32, len(a))
	i, j := 0, 0
	for k := range out {
		if j >= len(b) || (i < len(a) && a[i] <= b[j]) {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
	}
	return out
}

// MergeKeepHigh merges two ascending-sorted slices and returns the highest
// len(a) elements, ascending — the compare-split a "high" PE performs.
func MergeKeepHigh(a, b []uint32) []uint32 {
	out := make([]uint32, len(a))
	i, j := len(a)-1, len(b)-1
	for k := len(out) - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && a[i] >= b[j]) {
			out[k] = a[i]
			i--
		} else {
			out[k] = b[j]
			j--
		}
	}
	return out
}

// DFT computes the direct O(n^2) discrete Fourier transform of x.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = s
	}
	return out
}

// FFT computes the radix-2 decimation-in-frequency FFT of x (power-of-two
// length) and returns the result in natural order. This is the same
// butterfly schedule the distributed workload executes: stage s combines
// elements n/2^(s+1) apart, so the first log2(P) stages are exactly the
// communication stages of the blocked distribution.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n&(n-1) != 0 {
		panic("refalgo: FFT needs a power-of-two length")
	}
	out := append([]complex128(nil), x...)
	for d := n / 2; d >= 1; d /= 2 {
		for start := 0; start < n; start += 2 * d {
			for k := 0; k < d; k++ {
				i, j := start+k, start+k+d
				a, b := out[i], out[j]
				ang := -2 * math.Pi * float64(k) / float64(2*d)
				w := complex(math.Cos(ang), math.Sin(ang))
				out[i] = a + b
				out[j] = (a - b) * w
			}
		}
	}
	bitReverse(out)
	return out
}

// bitReverse permutes xs into bit-reversed index order in place.
func bitReverse(xs []complex128) {
	n := len(xs)
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n <= 1 {
		return
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			xs[i], xs[j] = xs[j], xs[i]
		}
	}
}

// MaxAbsDiff returns the largest elementwise |a-b|.
func MaxAbsDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		re := real(a[i]) - real(b[i])
		im := imag(a[i]) - imag(b[i])
		if d := math.Hypot(re, im); d > m {
			m = d
		}
	}
	return m
}
