package refalgo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitonicSortSmall(t *testing.T) {
	xs := []uint32{5, 1, 4, 2, 8, 7, 6, 3}
	BitonicSort(xs)
	if !IsSorted(xs) {
		t.Fatalf("not sorted: %v", xs)
	}
}

func TestBitonicSortProperty(t *testing.T) {
	check := func(seed int64, logn uint8) bool {
		n := 1 << (logn%9 + 1)
		rng := rand.New(rand.NewSource(seed))
		xs := make([]uint32, n)
		for i := range xs {
			xs[i] = rng.Uint32()
		}
		orig := append([]uint32(nil), xs...)
		BitonicSort(xs)
		return IsSorted(xs) && IsPermutation(orig, xs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicSortNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=6")
		}
	}()
	BitonicSort(make([]uint32, 6))
}

func TestIsSortedAndPermutation(t *testing.T) {
	if !IsSorted([]uint32{1, 2, 2, 3}) || IsSorted([]uint32{2, 1}) {
		t.Fatal("IsSorted wrong")
	}
	if !IsPermutation([]uint32{3, 1, 2}, []uint32{1, 2, 3}) {
		t.Fatal("permutation not recognized")
	}
	if IsPermutation([]uint32{1, 1, 2}, []uint32{1, 2, 2}) {
		t.Fatal("multiset mismatch not detected")
	}
	if IsPermutation([]uint32{1}, []uint32{1, 1}) {
		t.Fatal("length mismatch not detected")
	}
}

func TestMergeKeepLowHigh(t *testing.T) {
	a := []uint32{1, 4, 9, 12}
	b := []uint32{2, 3, 10, 30}
	low := MergeKeepLow(a, b)
	high := MergeKeepHigh(a, b)
	wantLow := []uint32{1, 2, 3, 4}
	wantHigh := []uint32{9, 10, 12, 30}
	for i := range wantLow {
		if low[i] != wantLow[i] {
			t.Fatalf("low = %v", low)
		}
		if high[i] != wantHigh[i] {
			t.Fatalf("high = %v", high)
		}
	}
}

func TestMergeSplitProperty(t *testing.T) {
	// Property: low ∪ high is a permutation of a ∪ b, both halves sorted,
	// and max(low) <= min(high).
	check := func(seed int64, ln uint8) bool {
		n := int(ln%16) + 1
		rng := rand.New(rand.NewSource(seed))
		a := make([]uint32, n)
		b := make([]uint32, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Uint32() % 100
			b[i] = rng.Uint32() % 100
		}
		BitonicSort22 := func(x []uint32) {
			for i := 1; i < len(x); i++ {
				for j := i; j > 0 && x[j-1] > x[j]; j-- {
					x[j-1], x[j] = x[j], x[j-1]
				}
			}
		}
		BitonicSort22(a)
		BitonicSort22(b)
		low := MergeKeepLow(a, b)
		high := MergeKeepHigh(a, b)
		if !IsSorted(low) || !IsSorted(high) {
			return false
		}
		if low[len(low)-1] > high[0] {
			return false
		}
		all := append(append([]uint32(nil), a...), b...)
		got := append(append([]uint32(nil), low...), high...)
		return IsPermutation(all, got)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		got := FFT(x)
		want := DFT(x)
		if d := MaxAbsDiff(got, want); d > 1e-9*float64(n) {
			t.Fatalf("n=%d: FFT vs DFT diff %g", n, d)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	got := FFT(x)
	for i, v := range got {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTConstant(t *testing.T) {
	// FFT of a constant is an impulse of height n at bin 0.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	got := FFT(x)
	if math.Abs(real(got[0])-float64(n)) > 1e-9 {
		t.Fatalf("bin0 = %v", got[0])
	}
	for i := 1; i < n; i++ {
		if math.Hypot(real(got[i]), imag(got[i])) > 1e-9 {
			t.Fatalf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Property: sum |x|^2 * n == sum |X|^2 (Parseval for unnormalized FFT).
	check := func(seed int64) bool {
		n := 32
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		var ex float64
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		X := FFT(x)
		var eX float64
		for _, v := range X {
			eX += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(eX-ex*float64(n)) < 1e-6*(1+eX)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTNonPowerOfTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for n=12")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestMaxAbsDiff(t *testing.T) {
	a := []complex128{1, 2 + 2i}
	b := []complex128{1, 2 - 1i}
	if d := MaxAbsDiff(a, b); math.Abs(d-3) > 1e-12 {
		t.Fatalf("diff = %v, want 3", d)
	}
}
