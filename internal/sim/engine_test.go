package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("empty run returned %d, want 0", got)
	}
	if e.Events() != 0 {
		t.Fatalf("events = %d, want 0", e.Events())
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{5, 1, 3, 3, 2} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{1, 2, 3, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at time %d, want %d", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOWithinCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: got %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.At(1, func() {
		trace = append(trace, "a")
		e.After(2, func() { trace = append(trace, "c") })
		e.After(0, func() { trace = append(trace, "b") })
	})
	end := e.Run()
	if end != 3 {
		t.Fatalf("end time %d, want 3", end)
	}
	if len(trace) != 3 || trace[0] != "a" || trace[1] != "b" || trace[2] != "c" {
		t.Fatalf("trace = %v", trace)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineStopAndResume(t *testing.T) {
	e := NewEngine()
	var n int
	for i := 1; i <= 5; i++ {
		e.At(Time(i), func() {
			n++
			if n == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 2 {
		t.Fatalf("after stop: n = %d, want 2", n)
	}
	e.Run()
	if n != 5 {
		t.Fatalf("after resume: n = %d, want 5", n)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var n int
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { n++ })
	}
	more := e.RunUntil(35)
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
	if !more {
		t.Fatal("RunUntil reported no pending events")
	}
	if e.Now() != 35 {
		t.Fatalf("clock = %d, want 35", e.Now())
	}
	more = e.RunUntil(1000)
	if more || n != 10 {
		t.Fatalf("more=%v n=%d, want false 10", more, n)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	e.At(4, func() {})
	e.At(2, func() {})
	if !e.Step() || e.Now() != 2 {
		t.Fatalf("first step at %d, want 2", e.Now())
	}
	if !e.Step() || e.Now() != 4 {
		t.Fatalf("second step at %d, want 4", e.Now())
	}
	if e.Step() {
		t.Fatal("step on empty heap returned true")
	}
}

func TestEngineHeapRandomized(t *testing.T) {
	// Property: for arbitrary schedules, dispatch order is sorted by time
	// with same-time ties in insertion order.
	check := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		e := NewEngine()
		type stamp struct {
			at  Time
			seq int
		}
		var got []stamp
		for i, d := range delaysRaw {
			i, at := i, Time(d%97)
			e.At(at, func() { got = append(got, stamp{e.Now(), i}) })
		}
		e.Run()
		if len(got) != len(delaysRaw) {
			return false
		}
		want := make([]stamp, len(got))
		copy(want, got)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		// Times must be non-decreasing.
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(42))
		var out []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			out = append(out, e.Now())
			if depth == 0 {
				return
			}
			for i := 0; i < 3; i++ {
				d := Time(rng.Intn(20))
				e.After(d, func() { spawn(depth - 1) })
			}
		}
		e.At(0, func() { spawn(4) })
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs dispatched %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := Time(20_000_000).Seconds(); got != 1.0 {
		t.Fatalf("20M cycles = %v s, want 1.0", got)
	}
	if got := Time(20).Micros(); got != 1.0 {
		t.Fatalf("20 cycles = %v us, want 1.0", got)
	}
}

func TestResourceFIFO(t *testing.T) {
	var r Resource
	if got := r.Acquire(10, 2); got != 12 {
		t.Fatalf("first acquire done at %d, want 12", got)
	}
	if got := r.Acquire(10, 2); got != 14 {
		t.Fatalf("queued acquire done at %d, want 14", got)
	}
	if got := r.Acquire(100, 5); got != 105 {
		t.Fatalf("idle acquire done at %d, want 105", got)
	}
	if r.Busy != 9 || r.Jobs != 3 {
		t.Fatalf("busy=%d jobs=%d, want 9, 3", r.Busy, r.Jobs)
	}
}

func TestResourceIdleAndUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	if r.IdleAt(5) {
		t.Fatal("resource idle at 5 during a [0,10) reservation")
	}
	if !r.IdleAt(10) {
		t.Fatal("resource busy at 10 after reservation ended")
	}
	if got := r.Utilization(20); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization over empty horizon = %v, want 0", got)
	}
}

func TestResourceMonotonicGrants(t *testing.T) {
	// Property: grant completion times are non-decreasing when request
	// times are non-decreasing (FIFO server).
	check := func(durs []uint8) bool {
		var r Resource
		now, prev := Time(0), Time(0)
		for i, d := range durs {
			now += Time(i % 3)
			done := r.Acquire(now, Time(d%16))
			if done < prev || done < now {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s with negative delay did not panic", name)
			}
			if msg, ok := r.(string); !ok || msg != want {
				t.Fatalf("%s panicked with %v, want %q", name, r, want)
			}
		}()
		fn()
	}
	e := NewEngine()
	mustPanic("After", "sim: After called with negative delay",
		func() { e.After(-1, func() {}) })
	mustPanic("AfterHandler", "sim: AfterHandler called with negative delay",
		func() { e.AfterHandler(-1, runFunc, EventArg{Ptr: func() {}}) })
}

// recordH appends its integer payload to a shared slice — the test
// double for a hot component on the handler lane.
type recordH struct{ out *[]int64 }

func (h recordH) OnEvent(arg EventArg) { *h.out = append(*h.out, arg.N) }

func TestEngineHandlerLaneOrdering(t *testing.T) {
	// The closure and handler lanes share one ordering domain: same-cycle
	// events dispatch in insertion order no matter which API scheduled
	// them.
	e := NewEngine()
	var got []int64
	h := recordH{&got}
	e.AtHandler(5, h, EventArg{N: 0})
	e.At(5, func() { got = append(got, 1) })
	e.AtHandler(5, h, EventArg{N: 2})
	e.After(5, func() { got = append(got, 3) })
	e.AtHandler(3, h, EventArg{N: 10})
	e.Run()
	want := []int64{10, 0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
}

func TestEngineRingHeapBoundary(t *testing.T) {
	// Events beyond the near-future window start on the heap; ones pushed
	// later for the same cycle (once the window has advanced) land in the
	// ring. The merge must still dispatch them in insertion order.
	e := NewEngine()
	var got []int64
	h := recordH{&got}
	const far = ringSize + 10
	e.AtHandler(far, h, EventArg{N: 0}) // heap: outside the window at t=0
	e.AtHandler(1, h, EventArg{N: 1})   // ring
	e.At(1, func() {
		e.AtHandler(far, h, EventArg{N: 2}) // ring: window now covers far
		got = append(got, 100)
	})
	e.Run()
	want := []int64{1, 100, 0, 2}
	if len(got) != len(want) {
		t.Fatalf("dispatched %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatched %v, want %v", got, want)
		}
	}
}

func TestEngineRingHeapRandomized(t *testing.T) {
	// Property: with schedule times spanning the ring window and the heap
	// overflow, on both lanes, dispatch order is sorted by time with
	// same-time ties in insertion order.
	type stamp struct {
		at  Time
		seq int
	}
	check := func(delaysRaw []uint16, lanes []bool) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		e := NewEngine()
		var got []stamp
		rec := func(i int) { got = append(got, stamp{e.Now(), i}) }
		for i, d := range delaysRaw {
			at := Time(d) % (3 * ringSize)
			if i < len(lanes) && lanes[i] {
				i := i
				e.AtHandler(at, runFunc, EventArg{Ptr: func() { rec(i) }})
			} else {
				i := i
				e.At(at, func() { rec(i) })
			}
		}
		e.Run()
		if len(got) != len(delaysRaw) {
			return false
		}
		want := make([]stamp, len(got))
		copy(want, got)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%64), func() {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 16)
		}
	}
	e.Run()
}

// nopH is the cheapest possible handler, isolating scheduler cost.
type nopH struct{}

func (nopH) OnEvent(EventArg) {}

// BenchmarkEngineHandlerLane is the allocs/event gate for the handler
// fast lane: steady-state near-future scheduling must report 0 allocs/op
// (the seed's closure-per-event heap allocated on every push).
func BenchmarkEngineHandlerLane(b *testing.B) {
	e := NewEngine()
	var h nopH
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterHandler(Time(i%64), h, EventArg{N: int64(i)})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 16)
		}
	}
	e.Run()
}

// BenchmarkEngineFarFuture exercises the heap overflow path: every event
// is scheduled past the ring window.
func BenchmarkEngineFarFuture(b *testing.B) {
	e := NewEngine()
	var h nopH
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterHandler(ringSize+Time(i%64), h, EventArg{N: int64(i)})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + ringSize + 64)
		}
	}
	e.Run()
}
