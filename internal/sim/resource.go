package sim

// Resource models a unit-capacity pipelined server (a switch output port,
// a memory port, a DMA engine): each job occupies the resource for a fixed
// or per-job number of cycles, jobs are granted strictly in request order,
// and a request made while the resource is busy is queued implicitly by
// pushing its grant time forward. This "busy-until" reservation style is
// exact for FIFO servers and avoids simulating per-cycle arbitration.
type Resource struct {
	freeAt Time
	// Busy accumulates total occupied cycles, for utilization metrics.
	Busy Time
	// Jobs counts accepted reservations.
	Jobs uint64
}

// Acquire reserves the resource for dur cycles starting no earlier than
// now, and returns the time at which the reservation completes. Callers
// typically schedule their follow-up event at the returned time.
func (r *Resource) Acquire(now, dur Time) Time {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + dur
	r.Busy += dur
	r.Jobs++
	return r.freeAt
}

// FreeAt reports when the resource becomes idle given no further requests.
func (r *Resource) FreeAt() Time { return r.freeAt }

// IdleAt reports whether the resource is idle at time now.
func (r *Resource) IdleAt(now Time) bool { return r.freeAt <= now }

// Utilization returns Busy divided by the elapsed horizon.
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.Busy) / float64(horizon)
}
