package sim

import (
	"testing"
)

// The shard-group oracle: a randomized workload of "cells", each owned
// by one engine, whose state evolves only through events dispatched on
// the owner and whose children (possibly cross-shard, possibly
// same-cycle, possibly past the ring window) are derived from that
// state. If the group reproduces the single-engine dispatch order, the
// per-cell state histories are byte-identical; any reordering diverges
// almost surely because state feeds back into child placement.

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ x>>33
}

type cellSim struct {
	cells []*shardCell
}

type shardCell struct {
	owner *Engine
	state uint64
	hist  []uint64
}

// cellDeltas mixes same-cycle chains, near-future ring pushes, and
// far-future heap pushes (>= ringSize) with ring/heap boundary values.
var cellDeltas = []Time{0, 0, 1, 1, 2, 3, 7, 30, 130, ringSize - 1, ringSize, ringSize + 3, 2000}

type cellH struct {
	cs *cellSim
	c  *shardCell
}

func (h cellH) OnEvent(arg EventArg) {
	c := h.c
	now := c.owner.Now()
	c.state = mix(c.state ^ uint64(now)*0x9e3779b97f4a7c15)
	c.hist = append(c.hist, c.state, uint64(now))
	depth := arg.N
	if depth <= 0 {
		return
	}
	// Children split the remaining depth budget, so a tree started with
	// depth d dispatches at most d events no matter how it branches.
	st := c.state
	k := 1
	if st%8 == 0 {
		k = 2
	}
	left := depth - 1
	for j := 0; j < k && left > 0; j++ {
		st = mix(st)
		share := left
		if k == 2 && j == 0 {
			share = left / 2
		}
		left -= share
		child := h.cs.cells[int(st%uint64(len(h.cs.cells)))]
		delta := cellDeltas[int((st>>16)%uint64(len(cellDeltas)))]
		c.owner.AtHandlerOn(child.owner, now+delta, cellH{h.cs, child}, EventArg{N: share})
	}
}

// buildCells wires nCells cells onto the given engines (contiguous
// ranges) and schedules one seed tree per cell, in cell order so that
// construction-time sequence numbers match across topologies.
func buildCells(engines []*Engine, nCells int, depth int64) *cellSim {
	cs := &cellSim{}
	s := len(engines)
	for i := 0; i < nCells; i++ {
		cs.cells = append(cs.cells, &shardCell{
			owner: engines[i*s/nCells],
			state: mix(uint64(i) + 12345),
		})
	}
	for i, c := range cs.cells {
		c.owner.AtHandler(Time(i%13), cellH{cs, c}, EventArg{N: depth})
	}
	return cs
}

func singleEngines() []*Engine { return []*Engine{NewEngine()} }

func groupEngines(s int) (*Group, []*Engine) {
	g := NewGroup(s)
	engs := make([]*Engine, s)
	for i := range engs {
		engs[i] = g.Engine(i)
	}
	return g, engs
}

func TestGroupMatchesSingleEngine(t *testing.T) {
	const nCells, depth = 48, 600
	ref := buildCells(singleEngines(), nCells, depth)
	refEnd := ref.cells[0].owner.Run()
	refEvents := ref.cells[0].owner.Events()
	if refEvents < 2000 {
		t.Fatalf("workload too small to be a meaningful oracle: %d events", refEvents)
	}

	for _, s := range []int{1, 2, 3, 4, 7} {
		g, engs := groupEngines(s)
		cs := buildCells(engs, nCells, depth)
		end := g.Run()
		if end != refEnd {
			t.Errorf("shards=%d: final clock %d, want %d", s, end, refEnd)
		}
		if ev := g.Events(); ev != refEvents {
			t.Errorf("shards=%d: %d events dispatched, want %d", s, ev, refEvents)
		}
		for i := range cs.cells {
			got, want := cs.cells[i].hist, ref.cells[i].hist
			if len(got) != len(want) {
				t.Errorf("shards=%d: cell %d history length %d, want %d", s, i, len(got), len(want))
				continue
			}
			for j := range got {
				if got[j] != want[j] {
					t.Errorf("shards=%d: cell %d history diverges at %d: %#x != %#x", s, i, j, got[j], want[j])
					break
				}
			}
		}
	}
}

func TestGroupRunUntil(t *testing.T) {
	const nCells, depth = 32, 400
	const deadline = Time(300)

	ref := buildCells(singleEngines(), nCells, depth)
	refMore := ref.cells[0].owner.RunUntil(deadline)
	refNow := ref.cells[0].owner.Now()

	g, engs := groupEngines(4)
	cs := buildCells(engs, nCells, depth)
	more := g.RunUntil(deadline)
	if more != refMore {
		t.Errorf("RunUntil more = %v, want %v", more, refMore)
	}
	if g.Now() != refNow {
		t.Errorf("Now() = %d, want %d", g.Now(), refNow)
	}
	for i := range cs.cells {
		if len(cs.cells[i].hist) != len(ref.cells[i].hist) {
			t.Fatalf("cell %d: %d history entries before deadline, want %d",
				i, len(cs.cells[i].hist), len(ref.cells[i].hist))
		}
	}

	// Resuming past the deadline must drain to the same final state.
	ref.cells[0].owner.Run()
	g.Run()
	for i := range cs.cells {
		if len(cs.cells[i].hist) != len(ref.cells[i].hist) {
			t.Fatalf("cell %d: %d history entries after resume, want %d",
				i, len(cs.cells[i].hist), len(ref.cells[i].hist))
		}
	}
}

func TestGroupSnapshotAfterRun(t *testing.T) {
	g, engs := groupEngines(2)
	buildCells(engs, 8, 100)
	g.Run()
	now, events, pending := engs[0].Snapshot()
	if now != engs[0].Now() {
		t.Errorf("Snapshot now = %d, want %d", now, engs[0].Now())
	}
	if events != engs[0].Events() {
		t.Errorf("Snapshot events = %d, want %d", events, engs[0].Events())
	}
	if pending != 0 || g.Pending() != 0 {
		t.Errorf("Snapshot pending = %d, group pending = %d, want 0", pending, g.Pending())
	}
}

func TestAtHandlerOnForeignEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling across unrelated engines")
		}
	}()
	a, b := NewEngine(), NewEngine()
	a.AtHandlerOn(b, 1, runFunc, EventArg{Ptr: func() {}})
}

func TestGroupStopAtRoundBoundary(t *testing.T) {
	g, engs := groupEngines(2)
	e0 := engs[0]
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			e0.Stop()
			return
		}
		e0.After(1, tick)
	}
	e0.At(0, tick)
	g.Run()
	if !g.Stopped() {
		t.Fatal("group did not observe Stop")
	}
	if n != 5 {
		t.Fatalf("dispatched %d ticks, want 5", n)
	}
}

// TestWindowedDriverZeroAlloc guards the windowed single-engine driver
// (RunUntil in fixed windows, the labd serving pattern): steady-state
// scheduling and dispatch must not allocate, including the atomic
// snapshot mirror.
func TestWindowedDriverZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := &selfTickH{e: e}
	for i := 0; i < 8; i++ {
		e.AtHandler(Time(i), h, EventArg{N: 1 << 40})
	}
	deadline := Time(0)
	// Warm up ring buckets.
	deadline += 4096
	e.RunUntil(deadline)
	allocs := testing.AllocsPerRun(16, func() {
		deadline += 1024
		e.RunUntil(deadline)
	})
	if allocs != 0 {
		t.Fatalf("windowed driver allocated %.1f per window, want 0", allocs)
	}
}

type selfTickH struct{ e *Engine }

func (h *selfTickH) OnEvent(arg EventArg) {
	if arg.N > 0 {
		h.e.AtHandler(h.e.Now()+1, h, EventArg{N: arg.N - 1})
	}
}

// BenchmarkShardGroupDispatch measures the lockstep round loop with a
// cross-shard all-to-all tick pattern (the worst case: every round has
// work on every shard and every child crosses the exchange).
func BenchmarkShardGroupDispatch(b *testing.B) {
	for _, s := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4"}[s], func(b *testing.B) {
			g, engs := groupEngines(s)
			cs := &cellSim{}
			const nCells = 64
			for i := 0; i < nCells; i++ {
				cs.cells = append(cs.cells, &shardCell{
					owner: engs[i*s/nCells],
					state: mix(uint64(i)),
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, c := range cs.cells {
					c.hist = c.hist[:0]
				}
				b.StartTimer()
				for j, c := range cs.cells {
					c.owner.AtHandler(g.Now()+Time(j%13), cellH{cs, c}, EventArg{N: 400})
				}
				g.Run()
			}
		})
	}
}

// BenchmarkWindowedDriver is the 0 allocs/op guard in benchmark form.
func BenchmarkWindowedDriver(b *testing.B) {
	e := NewEngine()
	h := &selfTickH{e: e}
	for i := 0; i < 8; i++ {
		e.AtHandler(Time(i), h, EventArg{N: 1 << 60})
	}
	deadline := Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deadline += 128
		e.RunUntil(deadline)
	}
}
