// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a cycle-resolution clock (one cycle = 50 ns on the
// simulated 20 MHz EM-X) and dispatches events in (time, insertion) order,
// which makes every simulation run bit-for-bit reproducible: components
// schedule closures and the engine never reorders same-cycle events.
//
// # Scheduler structure
//
// Almost every event in an EM-X model is scheduled a handful of cycles
// ahead (port hops, dispatch latencies, memory accesses), so the engine
// keeps a calendar-queue-style ring of one-cycle buckets for the near
// future and falls back to a binary heap only for far-future events
// (deadlines, long busy-until reservations). Bucket slices are reused
// across laps, so steady-state scheduling does not allocate.
//
// # Handler fast lane
//
// The closure API (At, After) is convenient but each call site allocates
// a closure. Hot components implement Handler and schedule themselves
// with AtHandler/AfterHandler, passing context through EventArg — a
// pointer plus an integer, enough for "this packet, this hop" without
// heap traffic. Closures are routed through the same path internally, so
// both lanes share one ordering domain.
package sim

import (
	"sync/atomic"

	"emx/internal/obs"
)

// Time is a simulated time stamp measured in processor clock cycles.
type Time int64

// CycleNS is the duration of one simulated cycle in nanoseconds
// (EMC-Y runs at 20 MHz).
const CycleNS = 50

// Seconds converts a cycle count to simulated wall-clock seconds.
func (t Time) Seconds() float64 { return float64(t) * CycleNS * 1e-9 }

// Micros converts a cycle count to simulated microseconds.
func (t Time) Micros() float64 { return float64(t) * CycleNS * 1e-3 }

// EventArg carries a handler's per-event context without allocating:
// one pointer-shaped value and one integer. Components pack whatever
// they need (a packet and a hop count, a thread, a node index).
type EventArg struct {
	// Ptr holds a pointer-shaped value (pointer, func, channel). Storing
	// such values in an interface does not allocate.
	Ptr any
	// N holds a small integer payload (a node index, a count).
	N int64
}

// Handler is the allocation-free event callback. Implementations are
// typically single-field wrapper structs around a component pointer, so
// converting them to Handler does not allocate either.
type Handler interface {
	OnEvent(arg EventArg)
}

// funcRunner adapts the closure API onto the handler lane.
type funcRunner struct{}

func (funcRunner) OnEvent(arg EventArg) { arg.Ptr.(func())() }

var runFunc Handler = funcRunner{}

// event is stored by value in buckets and the heap; it never escapes to
// the Go heap on its own.
type event struct {
	at  Time
	seq uint64
	h   Handler
	arg EventArg
}

const (
	// ringBits sets the near-future window: events within ringSize cycles
	// of the clock go to the bucket ring, everything else to the heap.
	ringBits = 9
	ringSize = 1 << ringBits
	ringMask = ringSize - 1
)

// bucket holds the events of one cycle. head indexes the next event to
// dispatch, so events appended mid-drain (After(0) chains) keep FIFO
// order; the backing slice is reused once drained.
type bucket struct {
	head int
	evs  []event
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// a simulation runs single-threaded. Parallelism lives one level up:
// across independent simulations, or — for one large run — across the
// member engines of a shard Group (see shard.go), which multiplexes
// events onto S engines while replaying the exact single-engine
// dispatch order.
type Engine struct {
	now Time
	seq uint64

	// grp/shardID bind a member engine to its shard group; both are nil/0
	// for a standalone engine. curSeq is the sequence number of the event
	// currently dispatching, the merge key for children born in a round.
	grp     *Group
	shardID int
	curSeq  uint64

	// stat is a round-granular atomic mirror of (now, events, pending)
	// so schedulers and status endpoints can snapshot a running engine
	// without perturbing (or racing with) the hot loop.
	stat engineStats

	// ring holds near-future events, one bucket per cycle, indexed by
	// at&ringMask. All live events in one bucket share the same time:
	// times ringSize apart cannot be pending simultaneously because the
	// push window is [now, now+ringSize).
	ring      [ringSize]bucket
	nearCount int
	// cursor is the scan position for the next non-empty bucket. It is
	// lowered by pushes below it and never advanced past the earliest
	// live ring event, so the scan cannot skip the minimum.
	cursor Time

	// heap is the far-future overflow, a binary min-heap on (at, seq).
	// For any time present in both structures the heap events were
	// pushed first (their push window excluded the ring), so the merge
	// dispatches heap events before ring events at equal times.
	heap []event

	stopped bool
	nEvents uint64

	// obs, when non-nil, observes every dispatched event. The nil default
	// costs one branch per dispatch inside the nil-safe tracer method.
	obs *obs.Tracer
}

// SetObs installs an observability tracer notified of every event
// dispatch. A nil tracer (the default) disables observation.
func (e *Engine) SetObs(t *obs.Tracer) { e.obs = t }

// engineStats mirrors the engine's progress counters behind atomics.
// The hot loop refreshes it once per mirrorMask dispatches (and a
// shard group once per round), so concurrent readers see a cheap,
// slightly stale O(1) snapshot instead of walking live scheduler state.
type engineStats struct {
	now     atomic.Int64
	events  atomic.Uint64
	pending atomic.Int64
}

// mirrorMask throttles hot-loop mirror refreshes to every 1024 events.
const mirrorMask = 1<<10 - 1

// mirror refreshes the atomic snapshot from the live counters.
//
//emx:hotpath
func (e *Engine) mirror() {
	e.stat.now.Store(int64(e.now))
	e.stat.events.Store(e.nEvents)
	e.stat.pending.Store(int64(len(e.heap) + e.nearCount))
}

// Snapshot returns (now, events dispatched, events pending) from the
// engine's atomic mirror. Unlike Now/Events/Pending it is safe to call
// from another goroutine while the engine runs; values lag the live
// counters by at most one mirror interval.
func (e *Engine) Snapshot() (now Time, events uint64, pending int) {
	return Time(e.stat.now.Load()), e.stat.events.Load(), int(e.stat.pending.Load())
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events dispatched so far.
func (e *Engine) Events() uint64 { return e.nEvents }

// Pending returns the number of scheduled, not yet dispatched events.
func (e *Engine) Pending() int { return len(e.heap) + e.nearCount }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it indicates a causality bug in a component model.
func (e *Engine) At(t Time, fn func()) {
	e.AtHandler(t, runFunc, EventArg{Ptr: fn})
}

// After schedules fn to run d cycles from now. A negative delay panics:
// it indicates a causality bug in a component model.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: After called with negative delay")
	}
	e.AtHandler(e.now+d, runFunc, EventArg{Ptr: fn})
}

// AtHandler schedules h.OnEvent(arg) at absolute time t without
// allocating. Scheduling in the past panics.
//
//emx:hotpath
func (e *Engine) AtHandler(t Time, h Handler, arg EventArg) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	if e.grp != nil {
		e.scheduleSharded(e, t, h, arg)
		return
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, h: h, arg: arg})
}

// push inserts a sequenced event into the ring or the far-future heap.
//
//emx:hotpath
func (e *Engine) push(ev event) {
	t := ev.at
	if t-e.now < ringSize {
		b := &e.ring[t&ringMask]
		b.evs = append(b.evs, ev)
		if e.nearCount == 0 || t < e.cursor {
			e.cursor = t
		}
		e.nearCount++
		return
	}
	e.pushHeap(ev)
}

// AfterHandler schedules h.OnEvent(arg) d cycles from now without
// allocating. A negative delay panics.
//
//emx:hotpath
func (e *Engine) AfterHandler(d Time, h Handler, arg EventArg) {
	if d < 0 {
		panic("sim: AfterHandler called with negative delay")
	}
	e.AtHandler(e.now+d, h, arg)
}

// Stop makes Run return after the current event completes. Pending events
// are kept, so a stopped engine can be resumed with another Run call.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until none remain or Stop is called. It returns
// the time of the last dispatched event.
func (e *Engine) Run() Time {
	e.stopped = false
	for e.Pending() > 0 && !e.stopped {
		ev := e.pop()
		e.now = ev.at
		e.nEvents++
		if e.nEvents&mirrorMask == 0 {
			e.mirror()
		}
		e.obs.Dispatch(int64(ev.at))
		ev.h.OnEvent(ev.arg)
	}
	e.mirror()
	return e.now
}

// RunUntil dispatches events with time <= deadline. If events remain past
// the deadline the clock is left at the deadline and true is returned;
// if the schedule drains the clock stays at the last dispatched event.
func (e *Engine) RunUntil(deadline Time) bool {
	e.stopped = false
	for e.Pending() > 0 && !e.stopped {
		if e.peekTime() > deadline {
			e.now = deadline
			e.mirror()
			return true
		}
		ev := e.pop()
		e.now = ev.at
		e.nEvents++
		if e.nEvents&mirrorMask == 0 {
			e.mirror()
		}
		e.obs.Dispatch(int64(ev.at))
		ev.h.OnEvent(ev.arg)
	}
	e.mirror()
	return e.Pending() > 0
}

// Step dispatches exactly one event, returning false if none remain.
func (e *Engine) Step() bool {
	if e.Pending() == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nEvents++
	e.obs.Dispatch(int64(ev.at))
	ev.h.OnEvent(ev.arg)
	return true
}

// nextNear advances cursor to the next non-empty bucket and returns its
// time. Caller guarantees nearCount > 0; the scan is bounded by ringSize
// because the earliest live ring event is always within ringSize cycles
// of cursor.
//
//emx:hotpath
func (e *Engine) nextNear() Time {
	for {
		b := &e.ring[e.cursor&ringMask]
		if b.head < len(b.evs) {
			return e.cursor
		}
		b.evs = b.evs[:0]
		b.head = 0
		e.cursor++
	}
}

// peekTime returns the time of the next event. Caller guarantees
// Pending() > 0.
//
//emx:hotpath
func (e *Engine) peekTime() Time {
	if e.nearCount == 0 {
		return e.heap[0].at
	}
	t := e.nextNear()
	if len(e.heap) > 0 && e.heap[0].at < t {
		return e.heap[0].at
	}
	return t
}

// pop removes and returns the next event in (at, seq) order. Caller
// guarantees Pending() > 0.
//
//emx:hotpath
func (e *Engine) pop() event {
	if e.nearCount == 0 {
		return e.popHeap()
	}
	t := e.nextNear()
	// At equal times the heap events are older insertions (see the heap
	// field comment), so they win ties.
	if len(e.heap) > 0 && e.heap[0].at <= t {
		return e.popHeap()
	}
	b := &e.ring[t&ringMask]
	ev := b.evs[b.head]
	b.evs[b.head] = event{} // release handler and arg for GC
	b.head++
	if b.head == len(b.evs) {
		b.evs = b.evs[:0]
		b.head = 0
	}
	e.nearCount--
	return ev
}

// binary min-heap ordered by (at, seq); seq breaks ties so that events
// scheduled earlier run earlier within a cycle.

func (a event) less(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//emx:hotpath
func (e *Engine) pushHeap(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].less(e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

//emx:hotpath
func (e *Engine) popHeap() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = event{} // release handler and arg for GC
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && e.heap[l].less(e.heap[small]) {
			small = l
		}
		if r < last && e.heap[r].less(e.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}
