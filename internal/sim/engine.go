// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine advances a cycle-resolution clock (one cycle = 50 ns on the
// simulated 20 MHz EM-X) and dispatches events in (time, insertion) order,
// which makes every simulation run bit-for-bit reproducible: components
// schedule closures and the engine never reorders same-cycle events.
package sim

// Time is a simulated time stamp measured in processor clock cycles.
type Time int64

// CycleNS is the duration of one simulated cycle in nanoseconds
// (EMC-Y runs at 20 MHz).
const CycleNS = 50

// Seconds converts a cycle count to simulated wall-clock seconds.
func (t Time) Seconds() float64 { return float64(t) * CycleNS * 1e-9 }

// Micros converts a cycle count to simulated microseconds.
func (t Time) Micros() float64 { return float64(t) * CycleNS * 1e-3 }

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is ready to use. Engine is not safe for concurrent use;
// a simulation runs single-threaded (parallelism in this repository lives
// one level up, across independent simulations).
type Engine struct {
	now     Time
	seq     uint64
	heap    []event
	stopped bool
	nEvents uint64
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events dispatched so far.
func (e *Engine) Events() uint64 { return e.nEvents }

// Pending returns the number of scheduled, not yet dispatched events.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it indicates a causality bug in a component model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d cycles from now. d must be >= 0.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// are kept, so a stopped engine can be resumed with another Run call.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events until none remain or Stop is called. It returns
// the time of the last dispatched event.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		ev := e.pop()
		e.now = ev.at
		e.nEvents++
		ev.fn()
	}
	return e.now
}

// RunUntil dispatches events with time <= deadline. If events remain past
// the deadline the clock is left at the deadline and true is returned;
// if the heap drains the clock stays at the last dispatched event.
func (e *Engine) RunUntil(deadline Time) bool {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at > deadline {
			e.now = deadline
			return true
		}
		ev := e.pop()
		e.now = ev.at
		e.nEvents++
		ev.fn()
	}
	return len(e.heap) > 0
}

// Step dispatches exactly one event, returning false if none remain.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nEvents++
	ev.fn()
	return true
}

// binary min-heap ordered by (at, seq); seq breaks ties so that events
// scheduled earlier run earlier within a cycle.

func (a event) less(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev event) {
	e.heap = append(e.heap, ev)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.heap[i].less(e.heap[parent]) {
			break
		}
		e.heap[i], e.heap[parent] = e.heap[parent], e.heap[i]
		i = parent
	}
}

func (e *Engine) pop() event {
	top := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[last] = event{} // release closure for GC
	e.heap = e.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && e.heap[l].less(e.heap[small]) {
			small = l
		}
		if r < last && e.heap[r].less(e.heap[small]) {
			small = r
		}
		if small == i {
			break
		}
		e.heap[i], e.heap[small] = e.heap[small], e.heap[i]
		i = small
	}
	return top
}
