// Shard groups: conservative parallel execution of one simulation.
//
// A Group partitions a machine's components across S member Engines,
// one per host goroutine, and advances them in lockstep rounds that
// reproduce the single-engine dispatch order exactly.
//
// # Why rounds, not windows
//
// Virtual cut-through delivers a remote packet in at least
// RouteHops+1 cycles, which suggests a classic conservative window of
// W = minHops·HopCycles cycles. That window is safe for *delivery*,
// but the EM-X fabric couples shards tighter than delivery latency:
// interior switch output ports are shared by packets from every
// source PE, and a port acquisition at cycle t changes the stall of a
// competing acquisition at cycle t+1. Measured on the paper's own
// configurations the interior ports carry most of the queueing delay
// (≈80% on the P=64 bitonic point), so any window wider than one
// cycle reorders same-port acquisitions and changes the golden
// hashes. The group therefore synchronizes at event-time granularity
// and recovers the lost parallelism by running every same-cycle event
// generation concurrently; see DESIGN.md §11 for the full argument.
//
// # Determinism by sequence replay
//
// The single engine dispatches in strict (time, seq) order, with seq
// assigned by a global counter at scheduling time. The group replays
// exactly those sequence numbers without a serial scheduler:
//
//   - Ownership: every piece of simulated state belongs to exactly one
//     shard, and an event scheduled on a member engine touches only
//     state owned by that shard. Cross-shard interaction happens only
//     by scheduling events on another member (AtHandlerOn).
//   - Rounds: at global time t, every shard dispatches its pending
//     events with at == t in local (at, seq) order. Disjoint state
//     makes the intra-round interleaving unobservable.
//   - Exchange: events scheduled during a round are diverted into the
//     executing shard's born list instead of a queue. Parents execute
//     in ascending seq order and a parent's children append in call
//     order, so each list is sorted by (parentSeq, childIndex) — the
//     exact order in which the single engine would have assigned their
//     sequence numbers (children of an event always outrank every
//     event already scheduled). At the round barrier every shard walks
//     an S-way merge of the lists, counts the global rank, and pushes
//     the events targeting its own engine with seq = base + rank.
//
// Children scheduled at time t form the next round at t, reproducing
// the single engine's mid-drain bucket appends; children at later
// times land in the owner's ring or heap with globally consistent
// sequence numbers, preserving the heap-before-ring tie rule (heap
// residents at a time were necessarily pushed in earlier rounds, so
// their seqs are smaller). The result is byte-identical to the
// single-engine run for every shard count.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// infTime is the published "no pending events" marker in the next-time
// reduction; it compares greater than every real event time.
const infTime = Time(math.MaxInt64)

// bornEvent is one event scheduled during a round, waiting for its
// global sequence number. ev.seq temporarily holds the scheduling
// parent's sequence (the merge key); the real seq is assigned at the
// exchange barrier.
type bornEvent struct {
	target *Engine
	ev     event
}

// shardSlot is the per-shard mutable exchange state, padded so that
// concurrent writers do not share cache lines.
type shardSlot struct {
	born []bornEvent // children scheduled this round, in (parentSeq, callIdx) order
	next Time        // published local next-event time (infTime: none)
	gseq uint64      // replica of the global sequence counter
	idx  []int       // merge cursors, len == shard count
	_    [64]byte
}

// Group runs S member engines in lockstep rounds. Construct with
// NewGroup, build the machine against the member engines (construction
// is single-threaded and assigns sequence numbers directly), then call
// Run or RunUntil from one goroutine; the group spawns the other S-1
// workers itself.
type Group struct {
	engines []*Engine
	shards  []shardSlot
	seq     uint64 // global sequence counter outside Run
	running bool
	stop    atomic.Bool
	bar     spinBarrier
}

// NewGroup builds a group of shards member engines (shards >= 1).
func NewGroup(shards int) *Group {
	if shards < 1 {
		panic(fmt.Sprintf("sim: NewGroup needs >= 1 shard, got %d", shards))
	}
	g := &Group{
		engines: make([]*Engine, shards),
		shards:  make([]shardSlot, shards),
	}
	g.bar.n = int32(shards)
	for i := range g.engines {
		g.engines[i] = &Engine{grp: g, shardID: i}
		g.shards[i].idx = make([]int, shards)
	}
	return g
}

// Shards returns the number of member engines.
func (g *Group) Shards() int { return len(g.engines) }

// Engine returns member engine i.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Now returns the group clock. Safe to call concurrently with a
// running group: it reads engine 0's round-granular atomic mirror.
func (g *Group) Now() Time { return Time(g.engines[0].stat.now.Load()) }

// Events returns the total events dispatched across all members, from
// the round-granular atomic mirrors (safe mid-run).
func (g *Group) Events() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.stat.events.Load()
	}
	return n
}

// Pending returns the total scheduled, not yet dispatched events
// across all members, from the atomic mirrors (safe mid-run).
func (g *Group) Pending() int {
	var n int64
	for _, e := range g.engines {
		n += e.stat.pending.Load()
	}
	return int(n)
}

// Stopped reports whether the last run was interrupted by Stop on a
// member engine or the group.
func (g *Group) Stopped() bool { return g.stop.Load() }

// Stop interrupts a running group at the next round boundary. Unlike
// Engine.Stop it may be called from any worker goroutine: shards check
// the flag at the top of every round, so every member halts with its
// clock at the same cycle.
func (g *Group) Stop() { g.stop.Store(true) }

// schedule diverts a member engine's AtHandler/AtHandlerOn call.
// Outside Run (machine construction, teardown) it is single-threaded:
// the global sequence is assigned directly and the event pushed.
// Inside Run the child joins the source shard's born list with its
// parent's sequence as the merge key.
//
//emx:hotpath
func (e *Engine) scheduleSharded(target *Engine, t Time, h Handler, arg EventArg) {
	g := e.grp
	if !g.running {
		g.seq++
		target.push(event{at: t, seq: g.seq, h: h, arg: arg})
		return
	}
	s := &g.shards[e.shardID]
	s.born = append(s.born, bornEvent{
		target: target,
		ev:     event{at: t, seq: e.curSeq, h: h, arg: arg},
	})
}

// AtHandlerOn schedules h.OnEvent(arg) at absolute time t on target's
// queue. With target == e it is identical to AtHandler; a distinct
// target must be a member of the same group (this is the only
// sanctioned cross-shard channel — the event runs on the owner).
func (e *Engine) AtHandlerOn(target *Engine, t Time, h Handler, arg EventArg) {
	if target == e {
		e.AtHandler(t, h, arg)
		return
	}
	if e.grp == nil || target.grp != e.grp {
		panic("sim: AtHandlerOn target is not a member of the same shard group")
	}
	if t < e.now {
		panic("sim: event scheduled in the past")
	}
	e.scheduleSharded(target, t, h, arg)
}

// Run dispatches events until none remain on any member or Stop is
// called. It returns the final group clock.
func (g *Group) Run() Time {
	g.drive(0, false)
	return g.engines[0].now
}

// RunUntil dispatches events with time <= deadline, mirroring
// Engine.RunUntil: if events remain past the deadline every member
// clock is left at the deadline and true is returned.
func (g *Group) RunUntil(deadline Time) bool {
	g.drive(deadline, true)
	for _, e := range g.engines {
		if e.Pending() > 0 {
			return true
		}
	}
	return false
}

// drive runs the lockstep round loop on S goroutines (the caller is
// worker 0) until the schedule drains, the deadline passes, or a
// member stops.
func (g *Group) drive(deadline Time, bounded bool) {
	g.stop.Store(false)
	g.running = true
	// No worker is live here, so the barrier can be reset to match the
	// workers' fresh local sense (a previous drive may have ended after
	// an odd number of phases).
	g.bar.count.Store(0)
	g.bar.sense.Store(0)
	for i := range g.shards {
		g.shards[i].gseq = g.seq
		g.engines[i].stopped = false
	}
	var wg sync.WaitGroup
	for w := 1; w < len(g.engines); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g.worker(w, deadline, bounded)
		}(w)
	}
	g.worker(0, deadline, bounded)
	wg.Wait()
	g.running = false
	g.seq = g.shards[0].gseq
	for _, e := range g.engines {
		e.mirror()
	}
}

// worker is one shard's round loop. Three barriers per round: next-time
// publication, born-list completion, and exchange completion.
func (g *Group) worker(w int, deadline Time, bounded bool) {
	e := g.engines[w]
	s := &g.shards[w]
	var sense uint32
	for {
		t := infTime
		if e.nearCount+len(e.heap) > 0 {
			t = e.peekTime()
		}
		s.next = t
		g.bar.wait(&sense)
		for i := range g.shards {
			if n := g.shards[i].next; n < t {
				t = n
			}
		}
		if t == infTime || g.stop.Load() {
			return
		}
		if bounded && t > deadline {
			e.now = deadline
			return
		}
		e.now = t
		e.dispatchAt(t)
		if e.stopped {
			g.stop.Store(true)
		}
		g.bar.wait(&sense)
		g.exchange(w)
		g.bar.wait(&sense)
		// All shards have finished reading every born list; reset ours
		// for the next round and refresh the cross-goroutine mirror.
		s.born = s.born[:0]
		e.mirror()
	}
}

// dispatchAt runs every local event scheduled at exactly time t in
// (at, seq) order. Children born during dispatch divert to the shard's
// born list, so the local queue only drains.
//
//emx:hotpath
func (e *Engine) dispatchAt(t Time) {
	for !e.stopped && e.nearCount+len(e.heap) > 0 && e.peekTime() == t {
		ev := e.pop()
		e.curSeq = ev.seq
		e.nEvents++
		e.obs.Dispatch(int64(ev.at))
		ev.h.OnEvent(ev.arg)
	}
}

// exchange assigns global sequence numbers to every event born this
// round and pushes the ones owned by shard w. Each born list is sorted
// by parent sequence (ties within a parent keep call order, and two
// lists never hold the same parent), so an S-way merge visits children
// in exactly the order the single engine would have numbered them.
// Every shard walks the same merge and claims its own targets, so the
// exchange is replicated rather than serialized, and each ring/heap is
// written only by its owner.
//
//emx:hotpath
func (g *Group) exchange(w int) {
	s := &g.shards[w]
	me := g.engines[w]
	idx := s.idx
	for i := range idx {
		idx[i] = 0
	}
	seq := s.gseq
	for {
		best := -1
		var bestSeq uint64
		for i := range g.shards {
			l := g.shards[i].born
			if idx[i] < len(l) {
				if ps := l[idx[i]].ev.seq; best < 0 || ps < bestSeq {
					best, bestSeq = i, ps
				}
			}
		}
		if best < 0 {
			break
		}
		be := &g.shards[best].born[idx[best]]
		idx[best]++
		seq++
		if be.target == me {
			ev := be.ev
			ev.seq = seq
			me.push(ev)
		}
	}
	s.gseq = seq
}

// spinBarrier is a sense-reversing barrier for the round loop. Workers
// spin briefly (rounds are microseconds apart, so on a machine with a
// core per shard the flip almost always lands inside the spin budget),
// yield a few times, and then park on a condition variable. The blocking
// tail matters when GOMAXPROCS is smaller than the shard count: a
// spinning worker on an oversubscribed host burns its entire scheduler
// timeslice before the releasing shard gets CPU, turning every round
// barrier into milliseconds.
type spinBarrier struct {
	n        int32
	count    atomic.Int32
	sense    atomic.Uint32
	sleepers atomic.Int32
	mu       sync.Mutex
	cond     sync.Cond // lazily bound to mu on first sleep
}

//emx:hotpath
func (b *spinBarrier) wait(localSense *uint32) {
	s := *localSense ^ 1
	*localSense = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		// The sense store above and the sleepers load below are both
		// sequentially consistent, mirroring sleep()'s increment-then-
		// check order: either the sleeper sees the new sense, or we see
		// the sleeper and broadcast (the mutex serializes us against the
		// window between its registration and cond.Wait).
		if b.sleepers.Load() != 0 {
			b.mu.Lock()
			b.cond.Broadcast()
			b.mu.Unlock()
		}
		return
	}
	for spins := 0; b.sense.Load() != s; spins++ {
		if spins < 128 {
			continue
		}
		if spins < 160 {
			runtime.Gosched()
			continue
		}
		b.sleep(s)
		return
	}
}

// sleep parks the worker until the barrier sense flips to s. Slow path
// behind wait's spin budget.
func (b *spinBarrier) sleep(s uint32) {
	b.mu.Lock()
	if b.cond.L == nil {
		b.cond.L = &b.mu
	}
	b.sleepers.Add(1)
	for b.sense.Load() != s {
		b.cond.Wait()
	}
	b.sleepers.Add(-1)
	b.mu.Unlock()
}
