package spmv

import (
	"testing"
	"testing/quick"

	"emx/internal/core"
	"emx/internal/metrics"
)

func testCfg(p int) core.Config {
	cfg := core.DefaultConfig(p)
	cfg.MaxCycles = 200_000_000
	return cfg
}

func TestValidate(t *testing.T) {
	cfg := testCfg(4)
	bad := []Params{
		{N: 0, H: 1},
		{N: 30, H: 1},                          // not divisible by P
		{N: 64, H: 0},                          //
		{N: 8, H: 4},                           // empty chunks
		{N: 64, H: 1, MinNNZ: 5, MaxNNZ: 3},    // inverted bounds
		{N: 64, H: 1, MinNNZ: 1, MaxNNZ: 1000}, // nnz > N
		{N: 64, H: 1, Iterations: -1},
	}
	for _, p := range bad {
		if err := p.Validate(cfg); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if err := (Params{N: 64, H: 3}).Validate(cfg); err != nil {
		t.Errorf("good params rejected: %v", err)
	}
}

// Run verifies y = A*x against a direct float32 computation, so a nil
// error is a numeric correctness statement.
func TestSpMVCorrectness(t *testing.T) {
	for _, tc := range []struct{ p, n, h, iters int }{
		{1, 16, 1, 1},
		{2, 32, 2, 1},
		{4, 64, 1, 1},
		{4, 64, 4, 2},
		{8, 128, 2, 1},
		{8, 128, 3, 2}, // uneven chunks, repeated product
		{16, 256, 4, 1},
	} {
		if _, err := Run(testCfg(tc.p), Params{
			N: tc.n, H: tc.h, Iterations: tc.iters, Seed: 5,
		}); err != nil {
			t.Errorf("P=%d N=%d H=%d it=%d: %v", tc.p, tc.n, tc.h, tc.iters, err)
		}
	}
}

func TestSpMVSeedsProperty(t *testing.T) {
	check := func(seed int64) bool {
		_, err := Run(testCfg(4), Params{N: 64, H: 2, Seed: seed})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSpMVDeterministic(t *testing.T) {
	p := Params{N: 128, H: 4, Seed: 9}
	a, err := Run(testCfg(8), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(8), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.SimEvents != b.SimEvents {
		t.Fatalf("nondeterministic: %d vs %d", a.Makespan, b.Makespan)
	}
}

func TestSpMVNoThreadSyncFullParallelism(t *testing.T) {
	// Rows are independent: like FFT, SpMV needs no thread ordering.
	r, err := Run(testCfg(8), Params{N: 256, H: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MeanSwitches(metrics.SwitchThreadSync); got != 0 {
		t.Fatalf("SpMV recorded %v thread-sync switches", got)
	}
}

func TestSpMVIrregularLoad(t *testing.T) {
	// The irregularity claim: per-PE remote read counts differ
	// substantially (imbalanced rows and scattered columns).
	r, err := Run(testCfg(8), Params{N: 256, H: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	min, max := ^uint64(0), uint64(0)
	for i := range r.PEs {
		n := r.PEs[i].RemoteReads
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max == 0 || min == max {
		t.Fatalf("no load imbalance: min=%d max=%d", min, max)
	}
}

func TestSpMVOverlapBetweenSortAndFFT(t *testing.T) {
	// The conclusion's target-workload hypothesis: irregular moderate
	// parallelism overlaps well but below FFT's near-total hiding.
	run := func(h int) *metrics.Run {
		r, err := Run(testCfg(8), Params{N: 512, H: h, Seed: 2, SkipVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base, r4 := run(1), run(4)
	e := metrics.Efficiency(base, r4)
	if e < 35 || e > 99.9 {
		t.Fatalf("SpMV overlap at h=4 = %.1f%%, want meaningful overlap below total hiding", e)
	}
}

func TestSpMVBreakdownClosed(t *testing.T) {
	r, err := Run(testCfg(4), Params{N: 128, H: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pe := range r.PEs {
		if r.PEs[pe].Times.Total() != r.Makespan {
			t.Fatalf("PE%d times %+v don't sum to makespan %d", pe, r.PEs[pe].Times, r.Makespan)
		}
	}
}
