// Package spmv implements a distributed sparse matrix-vector
// multiplication on the simulated EM-X — the "irregular computation
// behavior and moderate parallelism" workload the paper's conclusion
// names as the logical next target for fine-grain multithreading.
//
// The n x n sparse matrix is distributed by rows (blocked), as is the
// dense vector. Computing y = A*x, a thread walks its rows' nonzeros;
// every nonzero whose column falls outside the local block is a
// fine-grain split-phase remote read of one vector word. Unlike bitonic
// sorting there is no ordering constraint between threads (full thread
// computation parallelism), and unlike FFT the run length between reads
// is short and variable — per-row nonzero counts and column positions are
// deterministic pseudo-random, so both computation and communication are
// irregular and per-PE load is imbalanced.
//
// The expectation, borne out by the measurements (experiment X-irr in
// DESIGN.md): overlap efficiency lands between sorting's and FFT's, with
// imbalance-driven barrier waits bounding it below FFT's.
package spmv

import (
	"fmt"
	"math"
	"math/rand"

	"emx/internal/core"
	"emx/internal/dist"
	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/sim"
)

// Cost model constants (cycles).
const (
	// RowSetupCycles covers row-pointer loads and loop setup per row.
	RowSetupCycles sim.Time = 6
	// MACCycles is the multiply-accumulate per nonzero (float32 multiply,
	// add, index arithmetic).
	MACCycles sim.Time = 8
	// LocalGatherCycles is the cost of fetching a locally-resident vector
	// element (no packet).
	LocalGatherCycles sim.Time = 2
)

// Params configures one run.
type Params struct {
	// N is the matrix dimension (rows); must be divisible by P and >= P*H.
	N int
	// H is the number of threads per PE.
	H int
	// MinNNZ and MaxNNZ bound the per-row nonzero count; the actual count
	// varies pseudo-randomly per row (the irregularity).
	MinNNZ, MaxNNZ int
	// Iterations of y = A*x (x is refreshed from y between iterations).
	Iterations int
	// Seed drives matrix structure, values, and the input vector.
	Seed int64
	// SkipVerify disables the check against a direct computation.
	SkipVerify bool
	// Tracer, when non-nil, receives thread lifecycle events.
	Tracer func(core.TraceEvent)
	// Obs, when non-nil, is attached to the machine for cycle-accounting
	// profiles and structured traces (emxprof). Must be sized for cfg.P.
	Obs *obs.Tracer
}

func (p Params) withDefaults() Params {
	if p.MinNNZ == 0 && p.MaxNNZ == 0 {
		p.MinNNZ, p.MaxNNZ = 2, 16
	}
	if p.Iterations == 0 {
		p.Iterations = 1
	}
	return p
}

// Validate checks parameter consistency against a machine configuration.
func (p Params) Validate(cfg core.Config) error {
	p = p.withDefaults()
	if p.N <= 0 || p.N%cfg.P != 0 {
		return fmt.Errorf("spmv: N=%d must be positive and divisible by P=%d", p.N, cfg.P)
	}
	if p.H < 1 || p.N < cfg.P*p.H {
		return fmt.Errorf("spmv: need a nonempty row chunk per thread (N=%d, P*H=%d)", p.N, cfg.P*p.H)
	}
	if p.MinNNZ < 1 || p.MaxNNZ < p.MinNNZ || p.MaxNNZ > p.N {
		return fmt.Errorf("spmv: bad nnz bounds [%d,%d]", p.MinNNZ, p.MaxNNZ)
	}
	if p.Iterations < 1 {
		return fmt.Errorf("spmv: iterations must be >= 1")
	}
	return nil
}

// matrix is the CSR-ish structure, kept in Go shadow state; the vector
// lives in simulated memory (it is what moves over the network).
type matrix struct {
	rowCols [][]int
	rowVals [][]float32
}

// buildMatrix generates the deterministic irregular structure.
func buildMatrix(n int, minNNZ, maxNNZ int, rng *rand.Rand) *matrix {
	m := &matrix{
		rowCols: make([][]int, n),
		rowVals: make([][]float32, n),
	}
	for r := 0; r < n; r++ {
		nnz := minNNZ + rng.Intn(maxNNZ-minNNZ+1)
		cols := make([]int, 0, nnz)
		seen := map[int]bool{}
		for len(cols) < nnz {
			c := rng.Intn(n)
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		vals := make([]float32, nnz)
		for i := range vals {
			vals[i] = float32(rng.Float64()*2-1) / float32(nnz)
		}
		m.rowCols[r] = cols
		m.rowVals[r] = vals
	}
	return m
}

// Memory layout per PE: x block at 0..bl-1, y block at bl..2bl-1
// (float32 bit patterns). Between iterations y is copied into x.

// Run executes the multithreaded SpMV and returns measurements.
func Run(cfg core.Config, p Params) (*metrics.Run, error) {
	p = p.withDefaults()
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	P := cfg.P
	bl := p.N / P

	if need := 2*bl + 64; cfg.MemWords < need {
		cfg.MemWords = need
	}
	if p.Tracer != nil {
		// Trace capture needs the single-engine event order (the callback
		// is not safe for concurrent shard workers).
		cfg.Shards = 1
	}
	mach, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if p.Tracer != nil {
		mach.SetTracer(p.Tracer)
	}
	if p.Obs != nil {
		mach.SetObs(p.Obs)
	}

	rng := rand.New(rand.NewSource(p.Seed))
	A := buildMatrix(p.N, p.MinNNZ, p.MaxNNZ, rng)
	x0 := make([]float32, p.N)
	for i := range x0 {
		x0[i] = float32(rng.Float64()*2 - 1)
	}
	for i, v := range x0 {
		mach.Mem(packet.PE(i/bl)).Poke(uint32(i%bl), packet.Word(math.Float32bits(v)))
	}

	bar := mach.NewBarrier("iteration", p.H)
	for pe := 0; pe < P; pe++ {
		pe := packet.PE(pe)
		for th := 0; th < p.H; th++ {
			th := th
			mach.SpawnAt(pe, fmt.Sprintf("spmv-t%d", th), packet.Word(th), func(tc *core.TC) {
				worker(tc, A, bar, p, bl, th)
			})
		}
	}

	run, err := mach.Run()
	if err != nil {
		return nil, err
	}
	run.Label = "spmv"
	run.H = p.H
	run.N = p.N

	if !p.SkipVerify {
		got := gather(mach, p.N, bl)
		want := reference(A, x0, p.Iterations)
		for i := range want {
			if d := math.Abs(float64(got[i] - want[i])); d > 1e-3 {
				return nil, fmt.Errorf("spmv: y[%d] = %v, want %v (diff %g)", i, got[i], want[i], d)
			}
		}
	}
	return run, nil
}

// worker computes this thread's rows for each iteration.
func worker(tc *core.TC, A *matrix, bar *core.Barrier, p Params, bl, th int) {
	pe := int(tc.PE())
	lo, hi := dist.Chunk(bl, p.H, th)
	for it := 0; it < p.Iterations; it++ {
		for r := pe*bl + lo; r < pe*bl+hi; r++ {
			tc.Compute(RowSetupCycles)
			var acc float32
			for k, col := range A.rowCols[r] {
				var xv float32
				if col/bl == pe {
					// Local vector element: MCU-rate gather.
					tc.Compute(LocalGatherCycles)
					xv = math.Float32frombits(uint32(tc.PeekLocal(uint32(col % bl))))
				} else {
					// Irregular fine-grain remote read (split-phase).
					w := tc.Read(packet.GlobalAddr{PE: packet.PE(col / bl), Off: uint32(col % bl)})
					xv = math.Float32frombits(uint32(w))
				}
				acc += A.rowVals[r][k] * xv
				tc.Compute(MACCycles)
			}
			tc.PokeLocal(uint32(bl+r-pe*bl), packet.Word(math.Float32bits(acc)))
		}
		tc.Barrier(bar)
		// Refresh x from y for the next iteration (thread's own slice).
		if it < p.Iterations-1 {
			tc.Compute(LocalGatherCycles * sim.Time(hi-lo))
			for i := lo; i < hi; i++ {
				tc.PokeLocal(uint32(i), tc.PeekLocal(uint32(bl+i)))
			}
			tc.Barrier(bar)
		}
	}
}

// gather reads the final y from simulated memory.
func gather(mach *core.Machine, n, bl int) []float32 {
	out := make([]float32, n)
	for i := range out {
		w := mach.Mem(packet.PE(i / bl)).Peek(uint32(bl + i%bl))
		out[i] = math.Float32frombits(uint32(w))
	}
	return out
}

// reference computes the iterated product directly in float32 (matching
// the simulated arithmetic).
func reference(A *matrix, x []float32, iters int) []float32 {
	cur := append([]float32(nil), x...)
	for it := 0; it < iters; it++ {
		next := make([]float32, len(cur))
		for r := range A.rowCols {
			var acc float32
			for k, c := range A.rowCols[r] {
				acc += A.rowVals[r][k] * cur[c]
			}
			next[r] = acc
		}
		cur = next
	}
	return cur
}

// RunTraced runs the workload with a tracer attached, discarding the
// measurements: the caller wants the event stream.
func RunTraced(cfg core.Config, p Params, tracer func(core.TraceEvent)) error {
	p.Tracer = tracer
	_, err := Run(cfg, p)
	return err
}
