package bitonic

import (
	"testing"
	"testing/quick"

	"emx/internal/core"
	"emx/internal/metrics"
)

func testCfg(p int) core.Config {
	cfg := core.DefaultConfig(p)
	cfg.MaxCycles = 200_000_000
	return cfg
}

func TestValidate(t *testing.T) {
	cfg := testCfg(4)
	bad := []Params{
		{N: 0, H: 1},
		{N: 6, H: 1},
		{N: 64, H: 0},
		{N: 16, H: 8}, // block of 4 smaller than thread count
	}
	for _, p := range bad {
		if err := p.Validate(cfg); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	for _, h := range []int{2, 3} { // non-dividing h uses uneven chunks
		if err := (Params{N: 64, H: h}).Validate(cfg); err != nil {
			t.Errorf("good params H=%d rejected: %v", h, err)
		}
	}
}

// Run verifies sortedness and permutation internally, so a nil error is
// already a correctness statement.
func TestSortSmallConfigs(t *testing.T) {
	for _, tc := range []struct{ p, n, h int }{
		{1, 16, 1},
		{1, 16, 4},
		{2, 32, 1},
		{2, 32, 2},
		{4, 64, 1},
		{4, 64, 2},
		{4, 64, 4},
		{8, 128, 2},
		{8, 256, 4},
		{16, 256, 1},
		{16, 512, 8},
		{4, 64, 3},  // uneven chunks
		{8, 256, 6}, // paper's non-power-of-two thread counts
		{8, 256, 10},
	} {
		if _, err := Run(testCfg(tc.p), Params{N: tc.n, H: tc.h, Seed: 7}); err != nil {
			t.Errorf("P=%d N=%d H=%d: %v", tc.p, tc.n, tc.h, err)
		}
	}
}

func TestSortSeedsProperty(t *testing.T) {
	check := func(seed int64) bool {
		_, err := Run(testCfg(4), Params{N: 128, H: 2, Seed: seed})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSortBlockReadMode(t *testing.T) {
	for _, h := range []int{1, 2, 4} {
		if _, err := Run(testCfg(8), Params{N: 256, H: h, UseBlockRead: true, Seed: 3}); err != nil {
			t.Errorf("block-read H=%d: %v", h, err)
		}
	}
}

func TestSortDeterministic(t *testing.T) {
	p := Params{N: 256, H: 4, Seed: 11}
	a, err := Run(testCfg(8), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(8), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.SimEvents != b.SimEvents {
		t.Fatalf("nondeterministic: %d vs %d cycles", a.Makespan, b.Makespan)
	}
}

func TestSortHasThreadSyncSwitches(t *testing.T) {
	// The paper's signature behaviour: ordered merging forces thread-sync
	// switches when h > 1 — and none when h == 1.
	r1, err := Run(testCfg(4), Params{N: 256, H: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.MeanSwitches(metrics.SwitchThreadSync); got != 0 {
		t.Fatalf("h=1 has %v thread-sync switches", got)
	}
	r4, err := Run(testCfg(4), Params{N: 256, H: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r4.MeanSwitches(metrics.SwitchThreadSync); got == 0 {
		t.Fatal("h=4 sorting shows no thread-sync switches")
	}
}

func TestSortRemoteReadSwitchBudget(t *testing.T) {
	// Remote-read switches are bounded by total elements readable:
	// steps * bl per PE (less when the irregularity skips reads), and the
	// switch count equals the read count (element-wise reads).
	p, n, h := 4, 256, 2
	r, err := Run(testCfg(p), Params{N: n, H: h, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	bl := n / p
	steps := 3 // log2(4)*(log2(4)+1)/2
	maxReads := uint64(steps * bl)
	for pe := range r.PEs {
		reads := r.PEs[pe].RemoteReads
		if reads == 0 || reads > maxReads {
			t.Fatalf("PE%d reads = %d, want (0,%d]", pe, reads, maxReads)
		}
		if sw := r.PEs[pe].Switches[metrics.SwitchRemoteRead]; sw != reads {
			t.Fatalf("PE%d: %d remote-read switches vs %d reads", pe, sw, reads)
		}
	}
}

func TestSortIrregularitySkipsReads(t *testing.T) {
	// With several threads, some PE must complete its output before all
	// partner elements are read (the paper's Figure 4 discussion).
	r, err := Run(testCfg(8), Params{N: 512, H: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := r.SumCounter(func(pe *metrics.PE) uint64 { return pe.RemoteReads })
	bl := 512 / 8
	steps := 6 // log2(8)=3 -> 3*4/2
	full := uint64(8 * steps * bl)
	if total >= full {
		t.Fatalf("no reads were skipped: %d >= %d", total, full)
	}
}

func TestSortCommTimeValleyShape(t *testing.T) {
	// Figure 6 shape: comm time at h in {2,4} below h=1.
	comm := map[int]float64{}
	for _, h := range []int{1, 2, 4} {
		r, err := Run(testCfg(8), Params{N: 1024, H: h, Seed: 2, SkipVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		comm[h] = r.MeanCommTime()
	}
	if comm[2] >= comm[1] || comm[4] >= comm[1] {
		t.Fatalf("no comm-time valley: %v", comm)
	}
}

func TestSortBreakdownClosed(t *testing.T) {
	r, err := Run(testCfg(4), Params{N: 256, H: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pe := range r.PEs {
		if r.PEs[pe].Times.Total() != r.Makespan {
			t.Fatalf("PE%d times %+v don't sum to makespan %d", pe, r.PEs[pe].Times, r.Makespan)
		}
	}
}

func TestSortBlockReadUnevenChunks(t *testing.T) {
	// Block-read mode with thread counts that do not divide the block:
	// chunk windows are uneven and the keep-high side reads reversed
	// windows. Run self-verifies sortedness and permutation.
	for _, h := range []int{3, 5, 6} {
		if _, err := Run(testCfg(4), Params{N: 128, H: h, UseBlockRead: true, Seed: 21}); err != nil {
			t.Errorf("block-read H=%d: %v", h, err)
		}
	}
}
