// Package bitonic implements the paper's multithreaded bitonic sorting on
// the simulated EM-X (Section 3.1).
//
// Given P processors and n elements, each PE holds an n/P block. After a
// local sort, log2(P)*(log2(P)+1)/2 merge steps run; in each step a PE
// pairs with a partner, reads the partner's block, and keeps the low or
// high half of the merged 2n/P elements (compare-split; all blocks stay
// ascending, directions encoded in which half is kept — equivalent at
// block level to the paper's ascending/descending formulation).
//
// The multithreaded version divides each step among h threads per PE:
//
//   - thread communication parallelism: each thread element-wise remote
//     reads its n/(hP) chunk of the partner block through split-phase
//     reads, with the paper's 12-cycle run length per loop iteration;
//   - thread computation *sequentiality*: merging must proceed in thread
//     order (thread j merges only after thread j-1), enforced with
//     thread-sync blocking — bitonic sorting's lack of thread computation
//     parallelism, which bounds its overlap in the paper (~35% there);
//   - irregularity: once a PE has produced its n/P outputs, remaining
//     reads and merges are skipped ("not all the elements residing in the
//     mate processor need to be read").
//
// Blocks are double-buffered in simulated memory so that a PE that
// finishes a step early cannot overwrite data its partner is still
// reading.
package bitonic

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"emx/internal/core"
	"emx/internal/dist"
	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/refalgo"
	"emx/internal/sim"
)

// Cost model, calibrated from the paper's measurements.
const (
	// ReadLoopCycles is the run length of the read loop body: "The loop
	// body has 12 instructions, i.e., an iteration takes 12 clocks".
	ReadLoopCycles sim.Time = 12
	// MergeCycles per output element: "The computations for each element
	// are not more than 10 instructions".
	MergeCycles sim.Time = 10
	// LocalSortCycles per element per log2 level of the initial local sort.
	LocalSortCycles sim.Time = 12
	// StepSetupCycles per thread per merge step (address computation).
	StepSetupCycles sim.Time = 8
	// BlockCopyCycles per element to unpack a block-read buffer
	// (ablation mode only).
	BlockCopyCycles sim.Time = 2
)

// Params configures one sorting run.
type Params struct {
	// N is the total element count (power of two, >= P*H).
	N int
	// H is the number of threads per PE.
	H int
	// UseBlockRead replaces per-element reads with one block-read request
	// per thread chunk (the X-block ablation).
	UseBlockRead bool
	// Seed drives the deterministic input generator.
	Seed int64
	// Tracer, when non-nil, receives every thread lifecycle event
	// (see core.TraceEvent); used by emxtrace for Figure 4/5 timelines.
	Tracer func(core.TraceEvent)
	// Obs, when non-nil, is attached to the machine for cycle-accounting
	// profiles and structured traces (emxprof). Must be sized for cfg.P.
	Obs *obs.Tracer
	// SkipVerify disables the post-run sortedness/permutation check
	// (benchmark sweeps verify once separately).
	SkipVerify bool
}

// Validate checks parameter consistency against a machine configuration.
func (p Params) Validate(cfg core.Config) error {
	if p.N <= 0 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("bitonic: N must be a positive power of two, got %d", p.N)
	}
	if p.H < 1 {
		return fmt.Errorf("bitonic: H must be >= 1, got %d", p.H)
	}
	if p.N < cfg.P*p.H {
		return fmt.Errorf("bitonic: N=%d too small for P*H=%d (need a nonempty chunk per thread)", p.N, cfg.P*p.H)
	}
	return nil
}

// pe-level state for the step in progress; shared by the PE's threads.
// The simulation engine runs one coroutine at a time, so no locking.
type peState struct {
	block   []uint32 // shadow of the current ascending block
	recv    []uint32 // partner elements, in consumption order
	got     []bool   // which consumption indices have been read
	out     []uint32 // merged outputs, in consumption order
	stepID  int      // which global step this state belongs to
	keepLow bool
	li, ri  int // local / remote consumption cursors
	outN    int
	done    bool // n/P outputs produced; stragglers skip work
	// ws blocks threads waiting for the merge frontier (thread order);
	// notified whenever ri advances or done is set.
	ws *core.WaitSet
}

// frontier is the thread whose chunk the merge is currently consuming;
// once the remote side is fully consumed the last thread drains the rest
// from local elements. (Validate guarantees bl >= h, so every thread owns
// a nonempty chunk.)
func (st *peState) frontier(bl, h int) int {
	if st.ri >= bl {
		return h - 1
	}
	return dist.ChunkOf(bl, h, st.ri)
}

// Run executes one multithreaded bitonic sort and returns measurements.
func Run(cfg core.Config, p Params) (*metrics.Run, error) {
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	P := cfg.P
	bl := p.N / P // block length per PE
	logP := bits.Len(uint(P)) - 1
	steps := logP * (logP + 1) / 2

	// Size memory for double-buffered blocks.
	if need := 2*bl + 64; cfg.MemWords < need {
		cfg.MemWords = need
	}
	if p.Tracer != nil {
		// Trace capture needs the single-engine event order (the callback
		// is not safe for concurrent shard workers).
		cfg.Shards = 1
	}
	mach, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if p.Tracer != nil {
		mach.SetTracer(p.Tracer)
	}
	if p.Obs != nil {
		mach.SetObs(p.Obs)
	}

	// Deterministic input, blocked distribution into buffer parity 0.
	rng := rand.New(rand.NewSource(p.Seed))
	input := make([]uint32, p.N)
	for i := range input {
		input[i] = rng.Uint32()
	}
	for pe := 0; pe < P; pe++ {
		for i := 0; i < bl; i++ {
			mach.Mem(packet.PE(pe)).Poke(uint32(i), packet.Word(input[pe*bl+i]))
		}
	}

	states := make([]peState, P)
	for pe := range states {
		states[pe] = peState{
			block:  make([]uint32, bl),
			recv:   make([]uint32, bl),
			got:    make([]bool, bl),
			out:    make([]uint32, 0, bl),
			stepID: -1,
		}
		for i := 0; i < bl; i++ {
			states[pe].block[i] = input[pe*bl+i]
		}
	}

	bar := mach.NewBarrier("iteration", p.H)
	for pe := range states {
		states[pe].ws = mach.NewWaitSetOn(packet.PE(pe))
	}

	for pe := 0; pe < P; pe++ {
		pe := packet.PE(pe)
		for th := 0; th < p.H; th++ {
			th := th
			mach.SpawnAt(pe, fmt.Sprintf("sort-t%d", th), packet.Word(th), func(tc *core.TC) {
				sortWorker(tc, &states[pe], bar, p, bl, logP, th)
			})
		}
	}

	run, err := mach.Run()
	if err != nil {
		return nil, err
	}
	run.Label = "bitonic"
	run.H = p.H
	run.N = p.N

	if !p.SkipVerify {
		finalParity := uint32(steps % 2)
		got := make([]uint32, 0, p.N)
		for pe := 0; pe < P; pe++ {
			base := finalParity * uint32(bl)
			for i := 0; i < bl; i++ {
				got = append(got, uint32(mach.Mem(packet.PE(pe)).Peek(base+uint32(i))))
			}
		}
		if !refalgo.IsSorted(got) {
			return nil, fmt.Errorf("bitonic: output not sorted (N=%d P=%d H=%d)", p.N, P, p.H)
		}
		if !refalgo.IsPermutation(input, got) {
			return nil, fmt.Errorf("bitonic: output not a permutation of input")
		}
	}
	return run, nil
}

// sortWorker is one of the h threads on a PE.
func sortWorker(tc *core.TC, st *peState, bar *core.Barrier, p Params, bl, logP, th int) {
	pe := int(tc.PE())

	// Phase 1: local sort (single-threaded per PE, as in the paper).
	if th == 0 {
		if lg := bits.Len(uint(bl)) - 1; lg > 0 {
			tc.Compute(LocalSortCycles * sim.Time(bl*lg))
		} else {
			tc.Compute(LocalSortCycles)
		}
		sort.Slice(st.block, func(i, j int) bool { return st.block[i] < st.block[j] })
		writeBlock(tc, st.block, 0)
	}
	tc.Barrier(bar)

	// Phase 2: log2(P)(log2(P)+1)/2 merge steps.
	step := 0
	for i := 1; i <= logP; i++ {
		for j := i - 1; j >= 0; j-- {
			mergeStep(tc, st, p, bl, th, step, pe, i, j)
			tc.Barrier(bar)
			step++
		}
	}
}

// mergeStep runs one compare-split step for one thread.
func mergeStep(tc *core.TC, st *peState, p Params, bl, th, step, pe, i, j int) {
	partner := packet.PE(pe ^ (1 << uint(j)))
	ascending := pe&(1<<uint(i)) == 0
	lowSide := pe&(1<<uint(j)) == 0
	keepLow := ascending == lowSide

	// First thread of this PE to enter the step resets the shared state.
	if st.stepID != step {
		st.stepID = step
		st.keepLow = keepLow
		st.li, st.ri = 0, 0
		st.outN = 0
		st.out = st.out[:0]
		st.done = false
		for i := range st.got {
			st.got[i] = false
		}
	}

	readBase := uint32(step % 2 * bl) // partner's current buffer
	tc.Compute(StepSetupCycles)

	// Communication phase: read my chunk of the partner's block, in
	// consumption order. After every arrival, merge as far as the data
	// allows if the merge frontier is in my chunk (Figure 4's semantics:
	// computation interleaves with communication, but in thread order).
	// Skip the tail of the chunk once the PE's output is complete.
	lo, hi := dist.Chunk(bl, p.H, th)
	if p.UseBlockRead {
		readChunkBlock(tc, st, partner, readBase, bl, lo, hi, keepLow)
		if !st.done && st.frontier(bl, p.H) == th {
			mergeAvailable(tc, st, bl, hi, th, step)
		}
	} else {
		for ci := lo; ci < hi; ci++ { // ci is the consumption index
			if st.done {
				break // irregularity: remaining elements not needed
			}
			addr := consumptionAddr(readBase, bl, ci, keepLow)
			tc.Compute(ReadLoopCycles - 1) // rest of the 12-instruction body
			v := tc.Read(packet.GlobalAddr{PE: partner, Off: addr})
			st.recv[ci] = uint32(v)
			st.got[ci] = true
			if !st.done && st.frontier(bl, p.H) == th {
				mergeAvailable(tc, st, bl, hi, th, step)
			}
		}
	}

	// Computation phase: merging must proceed in thread order — thread j
	// cannot merge before thread i for i < j (no thread computation
	// parallelism, the paper's key contrast with FFT). Wait for the
	// frontier to reach my chunk, finish consuming it, then hand over.
	for !st.done && st.frontier(bl, p.H) <= th {
		if st.frontier(bl, p.H) == th {
			if !mergeAvailable(tc, st, bl, hi, th, step) {
				break // nothing consumable and frontier is mine: chunk done
			}
			continue
		}
		// Block until it is this thread's turn (one thread-sync switch).
		tc.WaitUntil(metrics.SwitchThreadSync, st.ws, func() bool {
			return st.done || st.frontier(bl, p.H) >= th
		})
	}
}

// mergeAvailable advances the merge through this thread's chunk as far as
// already-read data allows, charging MergeCycles per produced output
// before publishing the state change. A thread only ever consumes its own
// chunk (plus the final local drain if it owns the last chunk) — merging
// is strictly in thread order. Returns whether any progress was made.
// When the output quota is reached it finalizes the step (write-back to
// the other buffer).
func mergeAvailable(tc *core.TC, st *peState, bl, hiRemote, th, step int) bool {
	progressed := false
	for {
		n := countMergeable(st, bl, hiRemote)
		if n == 0 {
			return progressed
		}
		tc.Compute(MergeCycles * sim.Time(n))
		applyMerge(st, bl, hiRemote, n)
		progressed = true
		if st.outN == bl {
			st.done = true
			finalizeStep(tc, st, bl, step)
			st.ws.Notify()
			return true
		}
		st.ws.Notify() // the frontier may have advanced to the next thread
	}
}

// consumptionAddr maps a consumption index to a word offset in the
// partner's buffer: ascending from the bottom when keeping the low half,
// descending from the top when keeping the high half.
func consumptionAddr(base uint32, bl, ci int, keepLow bool) uint32 {
	if keepLow {
		return base + uint32(ci)
	}
	return base + uint32(bl-1-ci)
}

// readChunkBlock issues a single block-read for the thread's chunk
// (ablation X-block) and unpacks it into consumption order.
func readChunkBlock(tc *core.TC, st *peState, partner packet.PE, base uint32, bl, lo, hi int, keepLow bool) {
	if st.done || hi == lo {
		return
	}
	m := hi - lo
	var start uint32
	if keepLow {
		start = base + uint32(lo)
	} else {
		start = base + uint32(bl-hi)
	}
	tc.Compute(StepSetupCycles)
	words := tc.ReadBlock(packet.GlobalAddr{PE: partner, Off: start}, m)
	tc.Compute(BlockCopyCycles * sim.Time(m))
	for k := 0; k < m; k++ {
		if keepLow {
			st.recv[lo+k] = uint32(words[k])
		} else {
			st.recv[lo+k] = uint32(words[m-1-k])
		}
		st.got[lo+k] = true
	}
}

// mergeCursor decides the next consumption within a thread's duty window
// [st.ri, hiRemote): returns takeLocal and ok (ok=false when the merge
// must stall — the next remote element is unread or outside the window —
// or the output quota is met). A thread whose remote window runs dry
// cannot compare the local head against remote elements it never read;
// only the final window (hiRemote == bl) may drain the remaining output
// from local elements alone.
func mergeCursor(st *peState, bl, hiRemote, li, ri, outN int) (takeLocal, ok bool) {
	if outN >= bl {
		return false, false
	}
	canRemote := ri < hiRemote && st.got[ri]
	lastDrain := ri >= bl && hiRemote == bl && li < bl
	switch {
	case canRemote && li < bl:
		lv := consumptionVal(st.block, bl, li, st.keepLow)
		rv := st.recv[ri]
		if st.keepLow {
			return lv <= rv, true
		}
		return lv >= rv, true
	case canRemote:
		return false, true // local exhausted: take remote
	case lastDrain:
		return true, true // remote fully consumed: drain local
	default:
		return false, false
	}
}

// countMergeable dry-runs the merge to price it without mutating state.
func countMergeable(st *peState, bl, hiRemote int) int {
	li, ri, outN := st.li, st.ri, st.outN
	for {
		takeLocal, ok := mergeCursor(st, bl, hiRemote, li, ri, outN)
		if !ok {
			break
		}
		if takeLocal {
			li++
		} else {
			ri++
		}
		outN++
	}
	return outN - st.outN
}

// applyMerge consumes exactly n elements (the count previously priced).
func applyMerge(st *peState, bl, hiRemote, n int) {
	for k := 0; k < n; k++ {
		takeLocal, ok := mergeCursor(st, bl, hiRemote, st.li, st.ri, st.outN)
		if !ok {
			panic("bitonic: merge apply diverged from dry run")
		}
		var v uint32
		if takeLocal {
			v = consumptionVal(st.block, bl, st.li, st.keepLow)
			st.li++
		} else {
			v = st.recv[st.ri]
			st.ri++
		}
		st.out = append(st.out, v)
		st.outN++
	}
}

func consumptionVal(block []uint32, bl, i int, keepLow bool) uint32 {
	if keepLow {
		return block[i]
	}
	return block[bl-1-i]
}

// finalizeStep installs the merged output as the PE's new ascending block
// in the opposite buffer (double buffering: the partner may still be
// reading the current one).
func finalizeStep(tc *core.TC, st *peState, bl, step int) {
	if st.keepLow {
		copy(st.block, st.out)
	} else {
		for k := 0; k < bl; k++ {
			st.block[k] = st.out[bl-1-k]
		}
	}
	writeBlock(tc, st.block, uint32((step+1)%2*bl))
}

// writeBlock pokes the shadow block into simulated memory at base. The
// store cycles are part of the merge cost model (each merged element is
// stored once, inside MergeCycles).
func writeBlock(tc *core.TC, block []uint32, base uint32) {
	for i, v := range block {
		tc.PokeLocal(base+uint32(i), packet.Word(v))
	}
}

// RunTraced runs the workload with a tracer attached, discarding the
// measurements: the caller wants the event stream.
func RunTraced(cfg core.Config, p Params, tracer func(core.TraceEvent)) error {
	p.Tracer = tracer
	_, err := Run(cfg, p)
	return err
}
