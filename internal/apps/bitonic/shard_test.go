package bitonic

import (
	"reflect"
	"testing"

	"emx/internal/core"
	"emx/internal/metrics"
)

// TestShardedRunMatchesSingleEngine is the end-to-end oracle for
// conservative PE sharding: the full machine (procs, EXUs, network,
// barriers, wait sets) run under every shard count must produce a
// metrics.Run identical field-for-field to the single-engine run —
// makespan, per-PE cycle breakdowns, switch counts, packet and event
// totals. Run under -race in CI.
func TestShardedRunMatchesSingleEngine(t *testing.T) {
	const P = 8
	run := func(shards int) *metrics.Run {
		t.Helper()
		cfg := core.DefaultConfig(P)
		cfg.MemWords = 1 << 14
		cfg.Shards = shards
		r, err := Run(cfg, Params{N: 1 << 11, H: 4, Seed: 3})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return r
	}
	want := run(1)
	if want.SimEvents < 10000 {
		t.Fatalf("workload too small to exercise sharding: %d events", want.SimEvents)
	}
	for _, s := range []int{2, 4, 8} {
		got := run(s)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: run diverged from single engine\ngot  %+v\nwant %+v", s, got, want)
		}
	}
}

// TestShardedConfigValidation pins the sharding preconditions: shard
// counts must be powers of two no larger than P, and P itself must be a
// power of two so every switch node is a real PE's Switching Unit.
func TestShardedConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		p, shards int
		ok        bool
	}{
		{8, 0, true}, {8, 1, true}, {8, 2, true}, {8, 8, true},
		{8, 3, false}, {8, 16, false}, {6, 2, false}, {6, 1, true},
	} {
		cfg := core.DefaultConfig(tc.p)
		cfg.Shards = tc.shards
		err := cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("P=%d Shards=%d: Validate() = %v, want ok=%v", tc.p, tc.shards, err, tc.ok)
		}
	}
}
