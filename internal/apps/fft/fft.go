// Package fft implements the paper's multithreaded Fast Fourier Transform
// on the simulated EM-X (Section 3.2).
//
// n complex points are block-distributed over P processors. A radix-2
// decimation-in-frequency FFT needs log2(n) iterations; with blocked
// distribution only the first log2(P) involve communication — in
// iteration k every point's butterfly partner lives at the same local
// offset on the PE at distance P/2^(k+1). Per point, a thread remote
// reads the partner's real and imaginary words and then performs a large
// butterfly computation ("a lot of instructions ... including some
// trigonometric function computations and a loop to find complex roots"
// — hundreds of clocks of run length).
//
// Unlike bitonic sorting, FFT has no data dependence between points
// within an iteration: threads compute and communicate in any order, with
// no thread synchronization — the source of its >95% overlap in the
// paper. An iteration barrier keeps iterations synchronous, as in the
// paper's instrumented runs.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"emx/internal/core"
	"emx/internal/dist"
	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/refalgo"
	"emx/internal/sim"
)

// Cost model constants.
const (
	// ButterflyCycles is the per-point run length after the two remote
	// reads: twiddle computation by a root-finding loop plus the complex
	// multiply-add — "hundreds of clocks" in the paper.
	ButterflyCycles sim.Time = 300
	// AddrCycles models "compute real_address and img_address" per point.
	AddrCycles sim.Time = 6
	// LocalButterflyCycles is the per-point cost of the remaining local
	// iterations (no communication; twiddles still computed).
	LocalButterflyCycles sim.Time = 280
	// IterSetupCycles per thread per iteration.
	IterSetupCycles sim.Time = 8
)

// Params configures one FFT run.
type Params struct {
	// N is the number of complex points (power of two, >= P*H).
	N int
	// H is the number of threads per PE.
	H int
	// AllStages also executes the log2(n)-log2(P) purely local iterations
	// and the final bit-reversal gather, producing a verifiable transform.
	// The paper's measurements use only the first log2(P) iterations
	// ("In this report, only the first log P iterations are used"), which
	// is the default.
	AllStages bool
	// Seed drives the deterministic input generator.
	Seed int64
	// Tracer, when non-nil, receives every thread lifecycle event
	// (see core.TraceEvent); used by emxtrace for Figure 4/5 timelines.
	Tracer func(core.TraceEvent)
	// Obs, when non-nil, is attached to the machine for cycle-accounting
	// profiles and structured traces (emxprof). Must be sized for cfg.P.
	Obs *obs.Tracer
	// SkipVerify disables the numeric check (only meaningful with
	// AllStages).
	SkipVerify bool
}

// Validate checks parameter consistency against a machine configuration.
func (p Params) Validate(cfg core.Config) error {
	if p.N <= 0 || p.N&(p.N-1) != 0 {
		return fmt.Errorf("fft: N must be a positive power of two, got %d", p.N)
	}
	if p.H < 1 {
		return fmt.Errorf("fft: H must be >= 1, got %d", p.H)
	}
	if p.N < cfg.P*p.H {
		return fmt.Errorf("fft: N=%d too small for P*H=%d (need a nonempty chunk per thread)", p.N, cfg.P*p.H)
	}
	return nil
}

// Memory layout per PE: real plane at realBase, imaginary at imagBase,
// both blockLen words, in float32 bit patterns.
func realBase() uint32        { return 0 }
func imagBase(bl int) uint32  { return uint32(bl) }
func peOf(n, P, idx int) int  { return idx / (n / P) }
func offOf(n, P, idx int) int { return idx % (n / P) }

// Run executes one multithreaded FFT and returns measurements.
func Run(cfg core.Config, p Params) (*metrics.Run, error) {
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	P := cfg.P
	bl := p.N / P
	logP := bits.Len(uint(P)) - 1
	logN := bits.Len(uint(p.N)) - 1

	if need := 2*bl + 64; cfg.MemWords < need {
		cfg.MemWords = need
	}
	if p.Tracer != nil {
		// Trace capture needs the single-engine event order (the callback
		// is not safe for concurrent shard workers).
		cfg.Shards = 1
	}
	mach, err := core.NewMachine(cfg)
	if err != nil {
		return nil, err
	}
	if p.Tracer != nil {
		mach.SetTracer(p.Tracer)
	}
	if p.Obs != nil {
		mach.SetObs(p.Obs)
	}

	// Deterministic complex input in [-1,1)^2.
	rng := rand.New(rand.NewSource(p.Seed))
	input := make([]complex128, p.N)
	for i := range input {
		input[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	for i, v := range input {
		pe := packet.PE(peOf(p.N, P, i))
		off := uint32(offOf(p.N, P, i))
		mach.Mem(pe).Poke(realBase()+off, packet.Word(math.Float32bits(float32(real(v)))))
		mach.Mem(pe).Poke(imagBase(bl)+off, packet.Word(math.Float32bits(float32(imag(v)))))
	}

	bar := mach.NewBarrier("iteration", p.H)
	for pe := 0; pe < P; pe++ {
		pe := packet.PE(pe)
		for th := 0; th < p.H; th++ {
			th := th
			mach.SpawnAt(pe, fmt.Sprintf("fft-t%d", th), packet.Word(th), func(tc *core.TC) {
				fftWorker(tc, bar, p, bl, logP, logN, th)
			})
		}
	}

	run, err := mach.Run()
	if err != nil {
		return nil, err
	}
	run.Label = "fft"
	run.H = p.H
	run.N = p.N

	if p.AllStages && !p.SkipVerify {
		got := gather(mach, p.N, P, bl)
		want := refalgo.FFT(input)
		if d := refalgo.MaxAbsDiff(got, want); d > tolerance(p.N) {
			return nil, fmt.Errorf("fft: result differs from reference by %g (N=%d P=%d H=%d)", d, p.N, P, p.H)
		}
	}
	return run, nil
}

// tolerance scales with transform size: float32 storage between stages
// accumulates rounding across log2(n) levels of magnitude growth.
func tolerance(n int) float64 {
	return 2e-4 * float64(n)
}

// gather reads the distributed result and undoes the DIF bit reversal.
func gather(mach *core.Machine, n, P, bl int) []complex128 {
	raw := make([]complex128, n)
	for i := 0; i < n; i++ {
		pe := packet.PE(peOf(n, P, i))
		off := uint32(offOf(n, P, i))
		re := math.Float32frombits(uint32(mach.Mem(pe).Peek(realBase() + off)))
		im := math.Float32frombits(uint32(mach.Mem(pe).Peek(imagBase(bl) + off)))
		raw[i] = complex(float64(re), float64(im))
	}
	// DIF leaves results in bit-reversed index order.
	out := make([]complex128, n)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := range raw {
		out[int(bits.Reverse64(uint64(i))>>shift)] = raw[i]
	}
	return out
}

// fftWorker is one of the h threads on a PE.
func fftWorker(tc *core.TC, bar *core.Barrier, p Params, bl, logP, logN, th int) {
	lo, hi := dist.Chunk(bl, p.H, th)
	pe := int(tc.PE())
	n := p.N

	// Remote iterations: k = 0 .. logP-1. Butterfly distance n/2^(k+1),
	// partner PE distance P/2^(k+1); same local offsets on both sides.
	for k := 0; k < logP; k++ {
		tc.Compute(IterSetupCycles)
		peDist := (1 << uint(logP)) >> uint(k+1)
		partner := packet.PE(pe ^ peDist)
		upper := pe&peDist != 0 // this PE holds the "b" side of the butterfly
		d := n >> uint(k+1)     // butterfly span in global index space

		for q := lo; q < hi; q++ {
			off := uint32(q)
			tc.Compute(AddrCycles)
			// The two split-phase reads of the paper's inner loop.
			reBits := tc.Read(packet.GlobalAddr{PE: partner, Off: realBase() + off})
			imBits := tc.Read(packet.GlobalAddr{PE: partner, Off: imagBase(bl) + off})
			mate := complex(
				float64(math.Float32frombits(uint32(reBits))),
				float64(math.Float32frombits(uint32(imBits))),
			)
			mineRe := math.Float32frombits(uint32(tc.PeekLocal(realBase() + off)))
			mineIm := math.Float32frombits(uint32(tc.PeekLocal(imagBase(bl) + off)))
			mine := complex(float64(mineRe), float64(mineIm))

			// Global index of my point and its position within the
			// butterfly group determine the twiddle.
			gi := pe*bl + q
			kIdx := gi % d
			var out complex128
			if !upper {
				out = mine + mate // a' = a + b
			} else {
				ang := -2 * math.Pi * float64(kIdx) / float64(2*d)
				w := complex(math.Cos(ang), math.Sin(ang))
				out = (mate - mine) * w // b' = (a - b) * w
			}
			// The big butterfly run length: trig loop + complex ops.
			tc.Compute(ButterflyCycles)
			tc.PokeLocal(realBase()+off, packet.Word(math.Float32bits(float32(real(out)))))
			tc.PokeLocal(imagBase(bl)+off, packet.Word(math.Float32bits(float32(imag(out)))))
		}
		tc.Barrier(bar)
	}

	if !p.AllStages {
		return
	}

	// Local iterations: k = logP .. logN-1; both butterfly halves are in
	// this PE's block. Points are split across threads; each thread owns
	// the pairs whose "a" index falls in its range — to keep pairs whole,
	// thread 0 handles them all when the span gets smaller than a chunk
	// boundary would allow cleanly; simplest correct split: iterate over
	// all local "a" positions and let the owning thread of each pair act.
	for k := logP; k < logN; k++ {
		tc.Compute(IterSetupCycles)
		d := n >> uint(k+1) // butterfly span, now < bl
		for local := lo; local < hi; local++ {
			gi := pe*bl + local
			if gi%(2*d) >= d {
				continue // this is a "b" index; handled with its "a"
			}
			aOff, bOff := uint32(local), uint32(local+d)
			a := peekC(tc, bl, aOff)
			b := peekC(tc, bl, bOff)
			kIdx := gi % d
			ang := -2 * math.Pi * float64(kIdx) / float64(2*d)
			w := complex(math.Cos(ang), math.Sin(ang))
			pokeC(tc, bl, aOff, a+b)
			pokeC(tc, bl, bOff, (a-b)*w)
			tc.Compute(LocalButterflyCycles)
		}
		tc.Barrier(bar)
	}
}

func peekC(tc *core.TC, bl int, off uint32) complex128 {
	re := math.Float32frombits(uint32(tc.PeekLocal(realBase() + off)))
	im := math.Float32frombits(uint32(tc.PeekLocal(imagBase(bl) + off)))
	return complex(float64(re), float64(im))
}

func pokeC(tc *core.TC, bl int, off uint32, v complex128) {
	tc.PokeLocal(realBase()+off, packet.Word(math.Float32bits(float32(real(v)))))
	tc.PokeLocal(imagBase(bl)+off, packet.Word(math.Float32bits(float32(imag(v)))))
}

// RunTraced runs the workload with a tracer attached, discarding the
// measurements: the caller wants the event stream.
func RunTraced(cfg core.Config, p Params, tracer func(core.TraceEvent)) error {
	p.Tracer = tracer
	_, err := Run(cfg, p)
	return err
}
