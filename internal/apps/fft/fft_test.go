package fft

import (
	"testing"
	"testing/quick"

	"emx/internal/core"
	"emx/internal/metrics"
)

func testCfg(p int) core.Config {
	cfg := core.DefaultConfig(p)
	cfg.MaxCycles = 500_000_000
	return cfg
}

func TestValidate(t *testing.T) {
	cfg := testCfg(4)
	bad := []Params{
		{N: 0, H: 1},
		{N: 24, H: 1},
		{N: 64, H: 0},
		{N: 64, H: 17}, // block of 16 smaller than thread count
	}
	for _, p := range bad {
		if err := p.Validate(cfg); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	for _, h := range []int{4, 5} { // non-dividing h uses uneven chunks
		if err := (Params{N: 64, H: h}).Validate(cfg); err != nil {
			t.Errorf("good params H=%d rejected: %v", h, err)
		}
	}
}

// AllStages runs verify the distributed transform against refalgo.FFT +
// DFT-backed reference, so a nil error is a numeric correctness statement.
func TestFFTCorrectnessAllStages(t *testing.T) {
	for _, tc := range []struct{ p, n, h int }{
		{2, 16, 1},
		{2, 16, 2},
		{4, 32, 1},
		{4, 32, 2},
		{4, 64, 4},
		{8, 64, 1},
		{8, 128, 2},
		{16, 256, 4},
		{4, 32, 3}, // uneven chunks
		{8, 128, 6},
	} {
		if _, err := Run(testCfg(tc.p), Params{N: tc.n, H: tc.h, AllStages: true, Seed: 13}); err != nil {
			t.Errorf("P=%d N=%d H=%d: %v", tc.p, tc.n, tc.h, err)
		}
	}
}

func TestFFTSeedsProperty(t *testing.T) {
	check := func(seed int64) bool {
		_, err := Run(testCfg(4), Params{N: 64, H: 2, AllStages: true, Seed: seed})
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTRemoteReadCountExact(t *testing.T) {
	// Every point needs exactly 2 reads per remote iteration; no
	// irregularity (the paper: "FFT requires all the elements to be read").
	p, n, h := 8, 256, 2
	r, err := Run(testCfg(p), Params{N: n, H: h, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	logP := 3
	bl := n / p
	wantPerPE := uint64(2 * bl * logP)
	for pe := range r.PEs {
		if got := r.PEs[pe].RemoteReads; got != wantPerPE {
			t.Fatalf("PE%d reads = %d, want %d", pe, got, wantPerPE)
		}
	}
}

func TestFFTNoThreadSyncSwitches(t *testing.T) {
	// The paper's key contrast: FFT threads never synchronize with each
	// other inside an iteration.
	r, err := Run(testCfg(8), Params{N: 256, H: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.MeanSwitches(metrics.SwitchThreadSync); got != 0 {
		t.Fatalf("FFT recorded %v thread-sync switches", got)
	}
}

func TestFFTHighOverlap(t *testing.T) {
	// Figure 7(c)-(d): with its ~300-cycle run length, FFT should overlap
	// the vast majority of communication already at h=2.
	base, err := Run(testCfg(8), Params{N: 512, H: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(testCfg(8), Params{N: 512, H: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.Efficiency(base, r2)
	if e < 80 {
		t.Fatalf("overlap efficiency at h=2 = %.1f%%, want >80%%", e)
	}
}

func TestFFTDeterministic(t *testing.T) {
	p := Params{N: 128, H: 2, Seed: 11}
	a, err := Run(testCfg(4), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testCfg(4), p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.SimEvents != b.SimEvents {
		t.Fatalf("nondeterministic: %d vs %d", a.Makespan, b.Makespan)
	}
}

func TestFFTBreakdownClosed(t *testing.T) {
	r, err := Run(testCfg(4), Params{N: 128, H: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pe := range r.PEs {
		if r.PEs[pe].Times.Total() != r.Makespan {
			t.Fatalf("PE%d times %+v don't sum to makespan %d", pe, r.PEs[pe].Times, r.Makespan)
		}
	}
}

func TestFFTComputeDominates(t *testing.T) {
	// Figure 8(c)-(d): FFT is computation-dominated, unlike sorting.
	r, err := Run(testCfg(8), Params{N: 512, H: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b := r.TotalBreakdown()
	if b.Compute <= b.Comm {
		t.Fatalf("FFT not compute-dominated: %+v", b)
	}
}

func TestFFTSingleThreadOnePE(t *testing.T) {
	// Degenerate machine: P=1 has no remote iterations at all; AllStages
	// must still produce a correct transform.
	if _, err := Run(testCfg(1), Params{N: 32, H: 1, AllStages: true, Seed: 9}); err != nil {
		t.Fatal(err)
	}
}
