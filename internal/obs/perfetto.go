package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// TraceWriter emits Chrome/Perfetto trace-event JSON (the "JSON Array
// Format" ui.perfetto.dev and chrome://tracing both load). The JSON is
// built by hand — fixed key order, integer timestamps — so the bytes
// are deterministic for a deterministic event sequence.
//
// Timestamps are simulated cycles emitted 1:1 in the "ts" field; the
// clock metadata names the unit so absolute values read as cycles, and
// all relative structure (the only thing a trace viewer shows) is
// exact.
type TraceWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

// NewTraceWriter starts a trace document on w. Call Close to finish it.
func NewTraceWriter(w io.Writer) *TraceWriter {
	tw := &TraceWriter{w: bufio.NewWriter(w), first: true}
	_, tw.err = tw.w.WriteString(`{"displayTimeUnit":"ns","otherData":{"clock":"sim-cycles @ 20 MHz"},"traceEvents":[`)
	return tw
}

// Close terminates the JSON document and flushes. No writer method may
// be called afterwards.
func (tw *TraceWriter) Close() error {
	if tw.err == nil {
		_, tw.err = tw.w.WriteString("\n]}\n")
	}
	if err := tw.w.Flush(); tw.err == nil {
		tw.err = err
	}
	return tw.err
}

// sep writes the inter-event separator.
func (tw *TraceWriter) sep() {
	if tw.first {
		tw.first = false
		tw.w.WriteString("\n")
		return
	}
	tw.w.WriteString(",\n")
}

func (tw *TraceWriter) kv(key string, v int64) {
	tw.w.WriteString(`,"`)
	tw.w.WriteString(key)
	tw.w.WriteString(`":`)
	tw.w.WriteString(strconv.FormatInt(v, 10))
}

func (tw *TraceWriter) kvs(key, v string) {
	tw.w.WriteString(`,"`)
	tw.w.WriteString(key)
	tw.w.WriteString(`":`)
	tw.w.WriteString(strconv.Quote(v))
}

// Meta emits a metadata record (process_name / thread_name / …).
func (tw *TraceWriter) Meta(pid, tid int64, kind, name string) {
	if tw.err != nil {
		return
	}
	tw.sep()
	tw.w.WriteString(`{"ph":"M","name":`)
	tw.w.WriteString(strconv.Quote(kind))
	tw.kv("pid", pid)
	tw.kv("tid", tid)
	tw.w.WriteString(`,"args":{"name":`)
	tw.w.WriteString(strconv.Quote(name))
	tw.w.WriteString(`}}`)
}

// Slice emits a complete slice ("X") of dur cycles starting at ts.
func (tw *TraceWriter) Slice(pid, tid int64, name string, ts, dur int64) {
	if tw.err != nil {
		return
	}
	tw.sep()
	tw.w.WriteString(`{"ph":"X","name":`)
	tw.w.WriteString(strconv.Quote(name))
	tw.kv("pid", pid)
	tw.kv("tid", tid)
	tw.kv("ts", ts)
	tw.kv("dur", dur)
	tw.w.WriteString(`}`)
}

// Instant emits a thread-scoped instant ("i") at ts.
func (tw *TraceWriter) Instant(pid, tid int64, name string, ts int64) {
	if tw.err != nil {
		return
	}
	tw.sep()
	tw.w.WriteString(`{"ph":"i","s":"t","name":`)
	tw.w.WriteString(strconv.Quote(name))
	tw.kv("pid", pid)
	tw.kv("tid", tid)
	tw.kv("ts", ts)
	tw.w.WriteString(`}`)
}

// Counter emits a multi-series counter sample ("C") at ts; series order
// is the caller's and becomes the byte order.
func (tw *TraceWriter) Counter(pid int64, name string, ts int64, keys []string, vals []int64) {
	if tw.err != nil {
		return
	}
	tw.sep()
	tw.w.WriteString(`{"ph":"C","name":`)
	tw.w.WriteString(strconv.Quote(name))
	tw.kv("pid", pid)
	tw.kv("ts", ts)
	tw.w.WriteString(`,"args":{`)
	for i, k := range keys {
		if i > 0 {
			tw.w.WriteString(",")
		}
		tw.w.WriteString(strconv.Quote(k))
		tw.w.WriteString(":")
		tw.w.WriteString(strconv.FormatInt(vals[i], 10))
	}
	tw.w.WriteString(`}}`)
}

// unitTID is the per-PE synthetic track carrying packet-unit and
// network instants; it is far above any frame ID the allocator hands
// out, so it never collides with a real thread track.
const unitTID = int64(1) << 20

// openRun is a run interval under reconstruction for one (PE, frame).
type openRun struct {
	pe    int32
	frame uint32
	since int64
}

// AppendTrace renders one run's retained events and profile onto tw.
// Each PE becomes a process (pid = pidBase+pe) labelled with label;
// thread run intervals are reconstructed from lifecycle events, context
// switches and packet/network activity become instants, and — when the
// profile was sliced — whole-machine phase counters are emitted per
// slice. Multiple runs share one writer by calling AppendTrace with
// disjoint pidBase ranges in a fixed order.
func AppendTrace(tw *TraceWriter, pidBase int64, label string, prof *Profile, events []Event, names []NameEntry) {
	for pe := 0; pe < prof.P; pe++ {
		pid := pidBase + int64(pe)
		tw.Meta(pid, 0, "process_name", label+" PE "+strconv.Itoa(pe))
		tw.Meta(pid, unitTID, "thread_name", "packet/net units")
	}
	for _, n := range names {
		tw.Meta(pidBase+int64(n.PE), int64(n.Frame), "thread_name", n.Name)
	}

	// Reconstruct run intervals: start/run opens a slice on the thread's
	// track, read/yield/end closes it. A close with no matching open
	// (its opener was evicted from the ring) is dropped; opens still
	// live at the end are closed at the makespan.
	open := make(map[int64]openRun)
	runKey := func(pe int32, frame uint32) int64 {
		return int64(pe)<<32 | int64(frame)
	}
	closeRun := func(pe int32, frame uint32, at int64) {
		k := runKey(pe, frame)
		if o, ok := open[k]; ok {
			tw.Slice(pidBase+int64(pe), int64(frame), "run", o.since, at-o.since)
			delete(open, k)
		}
	}
	for _, ev := range events {
		pid := pidBase + int64(ev.PE)
		switch ev.Cat {
		case CatThread:
			kind, frame := ThreadKind(ev.Code), uint32(ev.A)
			switch kind {
			case ThreadStart, ThreadRun:
				open[runKey(ev.PE, frame)] = openRun{pe: ev.PE, frame: frame, since: ev.At}
			case ThreadRead, ThreadYield, ThreadEnd:
				closeRun(ev.PE, frame, ev.At)
			}
			if kind == ThreadStart || kind == ThreadEnd {
				tw.Instant(pid, int64(frame), "thread-"+kind.String(), ev.At)
			}
		case CatSwitch:
			tw.Instant(pid, int64(uint32(ev.A)), "switch:"+SwitchCause(ev.Code).String(), ev.At)
		case CatFlush:
			tw.Instant(pid, unitTID, "flush("+strconv.FormatInt(ev.A, 10)+" ops)", ev.At)
		case CatPacket:
			if ev.A > 0 {
				tw.Slice(pid, unitTID, PacketKind(ev.Code).String(), ev.At, ev.A)
			} else {
				tw.Instant(pid, unitTID, PacketKind(ev.Code).String(), ev.At)
			}
		case CatNet:
			if ev.A > 0 {
				tw.Instant(pid, unitTID, "net-"+NetKind(ev.Code).String()+"-stall", ev.At)
			}
		case CatCycle:
			tw.Slice(pid, unitTID, "charge:"+Phase(ev.Code).String(), ev.At, ev.A)
		}
	}
	// Flush still-open intervals in deterministic (PE, frame) order —
	// map iteration order must never reach the output.
	var left []openRun
	for _, o := range open {
		left = append(left, o)
	}
	sort.Slice(left, func(i, j int) bool {
		if left[i].pe != left[j].pe {
			return left[i].pe < left[j].pe
		}
		return left[i].frame < left[j].frame
	})
	for _, o := range left {
		tw.Slice(pidBase+int64(o.pe), int64(o.frame), "run", o.since, prof.Makespan-o.since)
	}

	// Whole-machine phase counters, one multi-series sample per slice.
	if len(prof.Slices) > 0 {
		keys := make([]string, NumPhases)
		for ph := Phase(0); ph < NumPhases; ph++ {
			keys[ph] = ph.String()
		}
		vals := make([]int64, NumPhases)
		for i := range prof.Slices {
			s := &prof.Slices[i]
			copy(vals, s.Phases[:])
			tw.Counter(pidBase, label+" phases", s.From, keys, vals)
		}
	}
}
