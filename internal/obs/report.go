package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// cyclesMicros renders a cycle count in simulated microseconds at the
// EMC-Y's 20 MHz (50 ns per cycle) — presentation only; obs itself
// never does time arithmetic.
func cyclesMicros(c int64) float64 { return float64(c) * 50e-3 }

// share formats part/total as a percentage with one decimal.
func share(part, total int64) string {
	if total == 0 {
		return "   0.0%"
	}
	return fmt.Sprintf("%6.1f%%", 100*float64(part)/float64(total))
}

// Report renders the profile as the sorted text "top" report. Output is
// a pure function of the profile: integers, fixed-width formats, and
// explicit sort orders, so it is byte-exact across runs, hosts, and
// worker counts.
func (p *Profile) Report() string {
	var b strings.Builder
	p.WriteReport(&b)
	return b.String()
}

// WriteReport writes Report's bytes to w.
func (p *Profile) WriteReport(w io.Writer) error {
	m := p.Machine()
	total := m.Total()

	var b strings.Builder
	fmt.Fprintf(&b, "emxprof cycle-accounting report (%s)\n", ProfileVersion)
	fmt.Fprintf(&b, "machine: P=%d  points=%d  simulated=%d cycles (%.2f us)  engine events=%d\n",
		p.P, p.Points, p.Makespan, cyclesMicros(p.Makespan), p.Dispatched)
	fmt.Fprintf(&b, "events: recorded=%d retained=%d dropped=%d%s\n",
		p.Recorded, p.Retained, p.TotalDropped(), dropDetail(p.Dropped))

	// Phase totals, hottest first (ties broken by phase order) — the
	// "top" list of where the machine's cycles went.
	b.WriteString("\nphase breakdown (whole machine):\n")
	order := make([]Phase, NumPhases)
	for i := range order {
		order[i] = Phase(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return m.Phases[order[i]] > m.Phases[order[j]]
	})
	for _, ph := range order {
		fmt.Fprintf(&b, "  %-8s %12d  %s\n", ph, m.Phases[ph], share(m.Phases[ph], total))
	}
	fmt.Fprintf(&b, "  %-8s %12d  %s\n", "total", total, share(total, total))

	// Switch causes in the paper's fixed Figure 9 order.
	b.WriteString("\ncontext switches by cause:\n")
	for c := SwitchCause(0); c < NumSwitchCauses; c++ {
		fmt.Fprintf(&b, "  %-12s %10d\n", c, m.Switches[c])
	}
	fmt.Fprintf(&b, "  %-12s %10d\n", "total", m.TotalSwitches())

	fmt.Fprintf(&b, "\nactivity: threads=%d dispatches=%d flushes=%d flushed-ops=%d\n",
		m.Threads, m.Dispatches, m.Flushes, m.FlushedOps)
	fmt.Fprintf(&b, "packets: dma-serviced=%d exu-serviced=%d spills=%d\n",
		m.ServicedDMA, m.ServicedEXU, m.Spills)
	fmt.Fprintf(&b, "network: hops=%d stall=%d cycles\n", m.NetHops, m.NetStall)

	b.WriteString("\nper-PE cycles and switches:\n")
	fmt.Fprintf(&b, "  %3s %12s %12s %12s %12s %12s | %10s %10s %11s %9s\n",
		"PE", "run", "switch", "spill", "service", "idle",
		"remote-rd", "iter-sync", "thread-sync", "explicit")
	for pe := range p.PEs {
		pp := &p.PEs[pe]
		fmt.Fprintf(&b, "  %3d %12d %12d %12d %12d %12d | %10d %10d %11d %9d\n",
			pe, pp.Phases[PhaseRun], pp.Phases[PhaseSwitch], pp.Phases[PhaseSpill],
			pp.Phases[PhaseService], pp.Phases[PhaseIdle],
			pp.Switches[CauseRemoteRead], pp.Switches[CauseIterSync],
			pp.Switches[CauseThreadSync], pp.Switches[CauseExplicit])
	}

	if len(p.Slices) > 0 {
		fmt.Fprintf(&b, "\ntime slices (%d cycles each, whole machine):\n", p.SliceCycles)
		fmt.Fprintf(&b, "  %12s %12s %12s %12s %12s %12s\n",
			"from", "run", "switch", "spill", "service", "idle")
		for i := range p.Slices {
			s := &p.Slices[i]
			fmt.Fprintf(&b, "  %12d %12d %12d %12d %12d %12d\n",
				s.From, s.Phases[PhaseRun], s.Phases[PhaseSwitch], s.Phases[PhaseSpill],
				s.Phases[PhaseService], s.Phases[PhaseIdle])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// dropDetail renders non-zero per-category drop counts, or "".
func dropDetail(d [NumCategories]uint64) string {
	var parts []string
	for c := Category(0); c < NumCategories; c++ {
		if d[c] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", c, d[c]))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " (" + strings.Join(parts, ", ") + ")"
}
