package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing[int](4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	for i := 1; i <= 3; i++ {
		if _, dropped := r.Push(i); dropped {
			t.Fatalf("Push(%d) dropped below capacity", i)
		}
	}
	got := r.Snapshot()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing[int](3)
	for i := 1; i <= 3; i++ {
		r.Push(i)
	}
	old, dropped := r.Push(4)
	if !dropped || old != 1 {
		t.Fatalf("Push(4) = (%d, %v), want (1, true)", old, dropped)
	}
	old, dropped = r.Push(5)
	if !dropped || old != 2 {
		t.Fatalf("Push(5) = (%d, %v), want (2, true)", old, dropped)
	}
	got := r.Snapshot()
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("Len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot = %v, want %v", got, want)
		}
	}
}

func TestRingDefaultCapacity(t *testing.T) {
	if got := NewRing[Event](0).Cap(); got != DefaultCapacity {
		t.Fatalf("NewRing(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
}

// TestNilTracerNoAllocs pins the disabled-tracer contract: every record
// method on a nil *Tracer is a no-op costing zero allocations.
func TestNilTracerNoAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Cycle(10, 0, PhaseRun, 4)
		tr.Switch(10, 0, CauseRemoteRead, 7)
		tr.Thread(10, 0, ThreadStart, 7)
		tr.Flush(10, 0, 3)
		tr.Packet(10, 0, PktBypassDMA, 8)
		tr.Hop(10, 0, NetHop, 0)
		tr.MUDispatch(10, 0)
		tr.Dispatch(10)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledTracerSteadyStateNoAllocs checks that recording into a
// pre-sized ring allocates nothing once warm (slices are preallocated,
// events are stored by value).
func TestEnabledTracerSteadyStateNoAllocs(t *testing.T) {
	tr := New(Options{P: 2, Capacity: 64})
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Cycle(10, 0, PhaseRun, 4)
		tr.Switch(10, 1, CauseIterSync, 7)
		tr.Packet(10, 0, PktSpill, 0)
		tr.Dispatch(10)
	})
	if allocs != 0 {
		t.Fatalf("enabled tracer allocated %.1f allocs/op in steady state, want 0", allocs)
	}
}

func TestTracerAggregation(t *testing.T) {
	tr := New(Options{P: 2, Capacity: 8})
	tr.Cycle(0, 0, PhaseRun, 100)
	tr.Cycle(50, 0, PhaseSwitch, 10)
	tr.Cycle(60, 1, PhaseIdle, 40)
	tr.Switch(50, 0, CauseRemoteRead, 3)
	tr.Switch(55, 0, CauseIterSync, 3)
	tr.Thread(0, 0, ThreadStart, 3)
	tr.Thread(90, 0, ThreadEnd, 3)
	tr.Flush(70, 1, 5)
	tr.Packet(75, 1, PktBypassDMA, 8)
	tr.Packet(76, 1, PktEXUService, 9)
	tr.Packet(77, 1, PktSpill, 0)
	tr.Hop(80, 1, NetHop, 2)
	tr.MUDispatch(81, 0)
	tr.Dispatch(82)
	tr.Finish(100)

	p := tr.Profile()
	if p.Makespan != 100 || p.P != 2 || p.Points != 1 {
		t.Fatalf("header = P=%d points=%d makespan=%d", p.P, p.Points, p.Makespan)
	}
	if got := p.PEs[0].Phases[PhaseRun]; got != 100 {
		t.Errorf("PE0 run = %d, want 100", got)
	}
	if got := p.PEs[1].Phases[PhaseIdle]; got != 40 {
		t.Errorf("PE1 idle = %d, want 40", got)
	}
	if p.PEs[0].Switches[CauseRemoteRead] != 1 || p.PEs[0].Switches[CauseIterSync] != 1 {
		t.Errorf("PE0 switches = %v", p.PEs[0].Switches)
	}
	if p.PEs[0].Threads != 1 {
		t.Errorf("PE0 threads = %d, want 1", p.PEs[0].Threads)
	}
	m := p.Machine()
	if m.Flushes != 1 || m.FlushedOps != 5 || m.ServicedDMA != 1 || m.ServicedEXU != 1 ||
		m.Spills != 1 || m.NetHops != 1 || m.NetStall != 2 || m.Dispatches != 1 {
		t.Errorf("machine counters = %+v", m)
	}
	if p.Dispatched != 1 {
		t.Errorf("Dispatched = %d, want 1", p.Dispatched)
	}
	if m.Total() != 150 {
		t.Errorf("machine total = %d, want 150", m.Total())
	}
}

func TestTracerDropCounting(t *testing.T) {
	tr := New(Options{P: 1, Capacity: 2, Retain: MaskOf(CatSwitch)})
	for i := 0; i < 5; i++ {
		tr.Switch(int64(i), 0, CauseExplicit, 1)
	}
	tr.Cycle(9, 0, PhaseRun, 1) // CatCycle not retained: counted, not ringed
	tr.Finish(10)
	p := tr.Profile()
	if p.Recorded != 6 {
		t.Errorf("Recorded = %d, want 6", p.Recorded)
	}
	if p.Retained != 2 {
		t.Errorf("Retained = %d, want 2", p.Retained)
	}
	if p.Dropped[CatSwitch] != 3 || p.TotalDropped() != 3 {
		t.Errorf("Dropped = %v", p.Dropped)
	}
	// Aggregates stay exact despite the drops.
	if p.PEs[0].Switches[CauseExplicit] != 5 {
		t.Errorf("switches = %d, want 5", p.PEs[0].Switches[CauseExplicit])
	}
	if ev := tr.Events(); len(ev) != 2 || ev[0].At != 3 || ev[1].At != 4 {
		t.Errorf("Events = %+v, want the two newest", ev)
	}
}

func TestTracerSlices(t *testing.T) {
	tr := New(Options{P: 1, SliceCycles: 100})
	tr.Cycle(10, 0, PhaseRun, 5)
	tr.Cycle(250, 0, PhaseIdle, 7)
	tr.Finish(260)
	p := tr.Profile()
	if len(p.Slices) != 3 {
		t.Fatalf("%d slices, want 3", len(p.Slices))
	}
	if p.Slices[0].Phases[PhaseRun] != 5 || p.Slices[2].Phases[PhaseIdle] != 7 {
		t.Errorf("slice phases wrong: %+v", p.Slices)
	}
	if p.Slices[1].Phases != ([NumPhases]int64{}) {
		t.Errorf("middle slice not empty: %+v", p.Slices[1])
	}
	if p.Slices[2].To != 260 {
		t.Errorf("last slice To = %d, want clamped 260", p.Slices[2].To)
	}
}

func TestMerge(t *testing.T) {
	a := New(Options{P: 2})
	a.Cycle(0, 0, PhaseRun, 10)
	a.Switch(1, 1, CauseThreadSync, 2)
	a.Finish(50)
	b := New(Options{P: 2})
	b.Cycle(0, 0, PhaseRun, 30)
	b.Switch(1, 1, CauseThreadSync, 2)
	b.Finish(70)

	ab, err := Merge([]*Profile{a.Profile(), b.Profile()})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge([]*Profile{b.Profile(), a.Profile()})
	if err != nil {
		t.Fatal(err)
	}
	var bufAB, bufBA bytes.Buffer
	if err := ab.WriteJSON(&bufAB); err != nil {
		t.Fatal(err)
	}
	if err := ba.WriteJSON(&bufBA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufAB.Bytes(), bufBA.Bytes()) {
		t.Error("Merge is not commutative at the byte level")
	}
	if ab.Makespan != 120 || ab.Points != 2 {
		t.Errorf("merged makespan=%d points=%d, want 120, 2", ab.Makespan, ab.Points)
	}
	if ab.PEs[0].Phases[PhaseRun] != 40 || ab.PEs[1].Switches[CauseThreadSync] != 2 {
		t.Errorf("merged PEs = %+v", ab.PEs)
	}

	if _, err := Merge([]*Profile{a.Profile(), New(Options{P: 3}).Profile()}); err == nil {
		t.Error("Merge accepted mismatched machine sizes")
	}
	if _, err := Merge(nil); err == nil {
		t.Error("Merge accepted an empty input")
	}
}

func TestProfileJSONRoundTrip(t *testing.T) {
	tr := New(Options{P: 1, SliceCycles: 50})
	tr.Cycle(5, 0, PhaseService, 12)
	tr.Finish(40)
	var buf bytes.Buffer
	if err := tr.Profile().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.PEs[0].Phases[PhaseService] != 12 || p.Makespan != 40 {
		t.Errorf("round trip lost data: %+v", p)
	}

	if _, err := LoadProfile(strings.NewReader(`{"version":"emxprof/v0","p":1,"pes":[{}]}`)); err == nil {
		t.Error("LoadProfile accepted a wrong version")
	}
	if _, err := LoadProfile(strings.NewReader(`{"version":"emxprof/v1","p":2,"pes":[{}]}`)); err == nil {
		t.Error("LoadProfile accepted a malformed shape")
	}
}

func TestReportFormat(t *testing.T) {
	tr := New(Options{P: 2})
	tr.Cycle(0, 0, PhaseRun, 300)
	tr.Cycle(0, 1, PhaseIdle, 700)
	tr.Switch(1, 0, CauseRemoteRead, 1)
	tr.Finish(500)
	rep := tr.Profile().Report()

	for _, want := range []string{
		"events: recorded=3 retained=1 dropped=0\n",
		"machine: P=2  points=1  simulated=500 cycles",
		"remote-read",
		"per-PE cycles and switches:",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// "top" ordering: idle (700) must appear before run (300).
	if idle, run := strings.Index(rep, "idle"), strings.Index(rep, "\n  run "); idle == -1 || run == -1 || idle > run {
		t.Errorf("phase rows not sorted by cycles desc:\n%s", rep)
	}
	if rep != tr.Profile().Report() {
		t.Error("report not reproducible")
	}
}

func TestWriteDiff(t *testing.T) {
	a := New(Options{P: 1})
	a.Cycle(0, 0, PhaseRun, 100)
	a.Finish(100)
	b := New(Options{P: 1})
	b.Cycle(0, 0, PhaseRun, 150)
	b.Finish(150)
	var buf bytes.Buffer
	if err := WriteDiff(&buf, a.Profile(), b.Profile()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"+50.0%", "makespan", "n/a"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceWriterValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Meta(1, 0, "process_name", `PE "0"`)
	tw.Slice(1, 7, "run", 10, 25)
	tw.Instant(1, 7, "switch:remote-read", 35)
	tw.Counter(1, "phases", 0, []string{"run", "idle"}, []int64{25, 5})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(doc.TraceEvents))
	}
	if ph := doc.TraceEvents[1]["ph"]; ph != "X" {
		t.Errorf("slice ph = %v, want X", ph)
	}
}

func TestAppendTraceReconstructsRuns(t *testing.T) {
	tr := New(Options{P: 1, SliceCycles: 100})
	tr.ThreadName(0, 7, "worker")
	tr.Thread(0, 0, ThreadStart, 7)
	tr.Cycle(0, 0, PhaseRun, 20)
	tr.Thread(20, 0, ThreadRead, 7)
	tr.Switch(20, 0, CauseRemoteRead, 7)
	tr.Thread(60, 0, ThreadRun, 7)
	tr.Thread(80, 0, ThreadEnd, 7)
	tr.Finish(90)

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	AppendTrace(tw, 10, "fig4", tr.Profile(), tr.Events(), tr.Names())
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Pid  int64  `json:"pid"`
			Tid  int64  `json:"tid"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	type span struct{ ts, dur int64 }
	var runs []span
	named := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "run" && ev.Tid == 7 {
			runs = append(runs, span{ev.Ts, ev.Dur})
			if ev.Pid != 10 {
				t.Errorf("run pid = %d, want pidBase 10", ev.Pid)
			}
		}
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Tid == 7 {
			named = true
		}
	}
	want := []span{{0, 20}, {60, 20}}
	if len(runs) != len(want) || runs[0] != want[0] || runs[1] != want[1] {
		t.Errorf("run intervals = %v, want %v", runs, want)
	}
	if !named {
		t.Error("thread_name metadata missing for frame 7")
	}

	// Byte determinism of the full pipeline.
	var buf2 bytes.Buffer
	tw2 := NewTraceWriter(&buf2)
	AppendTrace(tw2, 10, "fig4", tr.Profile(), tr.Events(), tr.Names())
	if err := tw2.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("AppendTrace output not byte-stable")
	}
}
