package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// ProfileVersion versions the profile JSON encoding; bumped whenever a
// field changes meaning, so stale dumps can never be diffed against new
// ones silently.
const ProfileVersion = "emxprof/v1"

// PEProfile is one processor's aggregated accounting.
type PEProfile struct {
	// Phases decomposes the PE's cycles, indexed by Phase
	// (run, switch, spill, service, idle).
	Phases [NumPhases]int64 `json:"phases"`
	// Switches counts context switches by SwitchCause
	// (remote-read, iter-sync, thread-sync, explicit) — Figure 9.
	Switches [NumSwitchCauses]uint64 `json:"switches"`
	// Dispatches counts Matching Unit packet dispatches.
	Dispatches uint64 `json:"dispatches"`
	// Threads counts threads started on this PE.
	Threads uint64 `json:"threads"`
	// Flushes and FlushedOps count operation-buffer replays and the
	// buffered operations they applied.
	Flushes    uint64 `json:"flushes"`
	FlushedOps uint64 `json:"flushed_ops"`
	// Spills counts queue packets spilled to the on-memory buffer.
	Spills uint64 `json:"spills"`
	// ServicedDMA / ServicedEXU count remote requests serviced by the
	// by-passing DMA and on the EXU (EM-4 mode).
	ServicedDMA uint64 `json:"serviced_dma"`
	ServicedEXU uint64 `json:"serviced_exu"`
	// NetHops counts link hops and ejections of packets bound for this
	// PE; NetStall sums the port-contention cycles they waited.
	NetHops  uint64 `json:"net_hops"`
	NetStall int64  `json:"net_stall_cycles"`
}

// Total returns the sum of the PE's phase cycles.
func (p *PEProfile) Total() int64 {
	var s int64
	for _, v := range p.Phases {
		s += v
	}
	return s
}

// TotalSwitches sums the PE's switch counts across causes.
func (p *PEProfile) TotalSwitches() uint64 {
	var s uint64
	for _, v := range p.Switches {
		s += v
	}
	return s
}

// add accumulates other into p.
func (p *PEProfile) add(other *PEProfile) {
	for i := range p.Phases {
		p.Phases[i] += other.Phases[i]
	}
	for i := range p.Switches {
		p.Switches[i] += other.Switches[i]
	}
	p.Dispatches += other.Dispatches
	p.Threads += other.Threads
	p.Flushes += other.Flushes
	p.FlushedOps += other.FlushedOps
	p.Spills += other.Spills
	p.ServicedDMA += other.ServicedDMA
	p.ServicedEXU += other.ServicedEXU
	p.NetHops += other.NetHops
	p.NetStall += other.NetStall
}

// Slice is one whole-machine time slice of the phase decomposition.
type Slice struct {
	From   int64            `json:"from"`
	To     int64            `json:"to"`
	Phases [NumPhases]int64 `json:"phases"`
}

// Profile is the cycle-accounting model of one run (or, after Merge,
// of several runs of the same machine size). All quantities are
// simulated — cycles and counts — never host time, so a profile is a
// deterministic, cacheable artifact of its run identity.
type Profile struct {
	Version string `json:"version"`
	// P is the machine size; PEs has exactly P entries.
	P int `json:"p"`
	// Points counts the runs merged into this profile (1 for a single
	// run). Makespan sums across merged runs: it is total simulated
	// cycles, not wall-clock extent, once Points > 1.
	Points   int   `json:"points"`
	Makespan int64 `json:"makespan_cycles"`
	// Dispatched counts engine events dispatched (the sim hook).
	Dispatched uint64 `json:"engine_events"`
	// Recorded counts every event offered to the tracer; Retained is
	// how many the ring still holds; Dropped counts ring evictions by
	// category. Aggregates (phases, switches) always cover all
	// Recorded events regardless of drops.
	Recorded uint64                `json:"events_recorded"`
	Retained int                   `json:"events_retained"`
	Dropped  [NumCategories]uint64 `json:"events_dropped"`
	PEs      []PEProfile           `json:"pes"`
	// SliceCycles is the slicing width (0: no slices); Slices is the
	// whole-machine phase decomposition per time slice.
	SliceCycles int64   `json:"slice_cycles,omitempty"`
	Slices      []Slice `json:"slices,omitempty"`
}

// Machine returns the whole-machine phase totals (sum over PEs).
func (p *Profile) Machine() PEProfile {
	var m PEProfile
	for i := range p.PEs {
		m.add(&p.PEs[i])
	}
	return m
}

// TotalDropped sums ring evictions across categories.
func (p *Profile) TotalDropped() uint64 {
	var s uint64
	for _, v := range p.Dropped {
		s += v
	}
	return s
}

// Merge sums profiles of the same machine size into one: phase and
// counter totals accumulate, makespans add up (total simulated cycles),
// and time slices are dropped (each run has its own time axis). The
// input order does not matter — merging is commutative — which is what
// keeps multi-worker sweep profiles deterministic.
func Merge(profiles []*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("obs: nothing to merge")
	}
	out := &Profile{Version: ProfileVersion, P: profiles[0].P}
	out.PEs = make([]PEProfile, out.P)
	for _, p := range profiles {
		if p.P != out.P {
			return nil, fmt.Errorf("obs: cannot merge profiles of different machine sizes (P=%d vs P=%d)", out.P, p.P)
		}
		out.Points += p.Points
		out.Makespan += p.Makespan
		out.Dispatched += p.Dispatched
		out.Recorded += p.Recorded
		out.Retained += p.Retained
		for i := range p.Dropped {
			out.Dropped[i] += p.Dropped[i]
		}
		for i := range p.PEs {
			out.PEs[i].add(&p.PEs[i])
		}
	}
	return out, nil
}

// WriteJSON writes the profile as indented JSON. encoding/json emits
// struct fields in declaration order, so the bytes are deterministic.
func (p *Profile) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// LoadProfile parses a profile JSON dump and checks its version.
func LoadProfile(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("obs: parsing profile: %w", err)
	}
	if p.Version != ProfileVersion {
		return nil, fmt.Errorf("obs: profile version %q, this build reads %q", p.Version, ProfileVersion)
	}
	if p.P < 1 || len(p.PEs) != p.P {
		return nil, fmt.Errorf("obs: malformed profile: p=%d with %d PE records", p.P, len(p.PEs))
	}
	return &p, nil
}
