package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteDiff renders a whole-machine comparison of two profiles, A → B:
// per-phase and per-cause deltas with relative change. Like the report,
// the output is byte-exact — fixed field order, explicit formats — so a
// diff of two cached profiles is itself a cacheable artifact.
//
// The profiles may have different machine sizes; the diff compares
// machine totals, which remain meaningful (e.g. bypass vs EM-4 mode, or
// two calibrations of the same workload).
func WriteDiff(w io.Writer, a, b *Profile) error {
	ma, mb := a.Machine(), b.Machine()
	var sb strings.Builder
	fmt.Fprintf(&sb, "emxprof profile diff (A -> B, %s)\n", ProfileVersion)
	fmt.Fprintf(&sb, "A: P=%d points=%d simulated=%d cycles\n", a.P, a.Points, a.Makespan)
	fmt.Fprintf(&sb, "B: P=%d points=%d simulated=%d cycles\n", b.P, b.Points, b.Makespan)

	sb.WriteString("\nphase cycles (whole machine):\n")
	fmt.Fprintf(&sb, "  %-12s %14s %14s %14s %9s\n", "phase", "A", "B", "delta", "change")
	for ph := Phase(0); ph < NumPhases; ph++ {
		writeDiffRow(&sb, ph.String(), ma.Phases[ph], mb.Phases[ph])
	}
	writeDiffRow(&sb, "total", ma.Total(), mb.Total())
	writeDiffRow(&sb, "makespan", a.Makespan, b.Makespan)

	sb.WriteString("\ncontext switches by cause:\n")
	fmt.Fprintf(&sb, "  %-12s %14s %14s %14s %9s\n", "cause", "A", "B", "delta", "change")
	for c := SwitchCause(0); c < NumSwitchCauses; c++ {
		writeDiffRow(&sb, c.String(), int64(ma.Switches[c]), int64(mb.Switches[c]))
	}
	writeDiffRow(&sb, "total", int64(ma.TotalSwitches()), int64(mb.TotalSwitches()))

	sb.WriteString("\ncounters:\n")
	fmt.Fprintf(&sb, "  %-12s %14s %14s %14s %9s\n", "counter", "A", "B", "delta", "change")
	writeDiffRow(&sb, "threads", int64(ma.Threads), int64(mb.Threads))
	writeDiffRow(&sb, "dispatches", int64(ma.Dispatches), int64(mb.Dispatches))
	writeDiffRow(&sb, "flushed-ops", int64(ma.FlushedOps), int64(mb.FlushedOps))
	writeDiffRow(&sb, "dma-serviced", int64(ma.ServicedDMA), int64(mb.ServicedDMA))
	writeDiffRow(&sb, "exu-serviced", int64(ma.ServicedEXU), int64(mb.ServicedEXU))
	writeDiffRow(&sb, "spills", int64(ma.Spills), int64(mb.Spills))
	writeDiffRow(&sb, "net-hops", int64(ma.NetHops), int64(mb.NetHops))
	writeDiffRow(&sb, "net-stall", ma.NetStall, mb.NetStall)

	_, err := io.WriteString(w, sb.String())
	return err
}

func writeDiffRow(sb *strings.Builder, name string, a, b int64) {
	change := "     n/a"
	if a != 0 {
		change = fmt.Sprintf("%+8.1f%%", 100*float64(b-a)/float64(a))
	}
	fmt.Fprintf(sb, "  %-12s %14d %14d %+14d %s\n", name, a, b, b-a, change)
}
