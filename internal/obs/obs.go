// Package obs is the cycle-accounting observability layer of the
// simulator and serving stack: bounded event collection, a phase-level
// cycle-accounting profile model, and deterministic exporters (a
// Perfetto/Chrome trace-event writer, a sorted text report, and a
// profile diff).
//
// The package sits below every other emx package — it imports nothing
// from the repository — so the simulation engine, the EXU model, the
// packet units, and the network can all feed it events. Simulated time
// arrives as a raw int64 cycle count (the caller's sim.Time); obs never
// touches the host clock, so everything it emits is a pure function of
// the simulated event stream and therefore byte-identical across hosts
// and worker counts.
//
// Design for the hot path: instrumented components hold a *Tracer that
// is nil by default, and every record method is nil-receiver-safe, so
// the disabled case costs one predictable branch and zero allocations.
// When tracing is on, profile aggregation is incremental (plain counter
// adds) and event retention goes through a preallocated ring buffer
// with per-category drop counters — multi-million-cycle runs cannot
// exhaust host memory, and the profile stays exact even when the ring
// wraps.
package obs

// Category classifies an event by the subsystem that produced it. The
// per-category drop counters and the retention mask are indexed by it.
type Category uint8

const (
	// CatThread: a thread lifecycle transition (start/run/read/yield/end).
	CatThread Category = iota
	// CatSwitch: a context switch, classified by cause (Figure 9).
	CatSwitch
	// CatCycle: an EXU cycle-accounting charge to one phase.
	CatCycle
	// CatFlush: an operation-buffer replay at a thread yield.
	CatFlush
	// CatPacket: packet servicing (by-passing DMA, EXU service, spill).
	CatPacket
	// CatNet: a network link hop or ejection, with its contention stall.
	CatNet
	// CatSched: one engine event dispatch (very high volume; retained
	// in the ring only when explicitly enabled).
	CatSched
	NumCategories
)

var categoryNames = [NumCategories]string{
	"thread", "switch", "cycle", "flush", "packet", "net", "sched",
}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "category(?)"
}

// Phase is one bucket of the EXU cycle decomposition. The five phases
// partition a PE's makespan: user instructions, switch save/restore and
// MU dispatch, FIFO spill/restore MCU traffic, packet generation and
// servicing, and idle (exposed communication latency).
type Phase uint8

const (
	// PhaseRun: the EXU executing user instructions (compute, local
	// memory access).
	PhaseRun Phase = iota
	// PhaseSwitch: register save/restore, MU dispatch, spin checks.
	PhaseSwitch
	// PhaseSpill: extra MCU traffic restoring spilled queue packets.
	PhaseSpill
	// PhaseService: packet generation and EXU-side request servicing.
	PhaseService
	// PhaseIdle: the EXU idle with no ready thread — exposed latency.
	PhaseIdle
	NumPhases
)

var phaseNames = [NumPhases]string{"run", "switch", "spill", "service", "idle"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// SwitchCause classifies why a thread switched out. Values mirror the
// paper's Figure 9 taxonomy and are numerically aligned with
// metrics.SwitchKind, so core can convert by value.
type SwitchCause uint8

const (
	// CauseRemoteRead: a split-phase remote read suspended the thread.
	CauseRemoteRead SwitchCause = iota
	// CauseIterSync: an end-of-iteration barrier wait.
	CauseIterSync
	// CauseThreadSync: a wait on a sibling thread on the same PE.
	CauseThreadSync
	// CauseExplicit: a voluntary yield not caused by the above.
	CauseExplicit
	NumSwitchCauses
)

var causeNames = [NumSwitchCauses]string{
	"remote-read", "iter-sync", "thread-sync", "explicit",
}

func (c SwitchCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return "cause(?)"
}

// ThreadKind is a thread lifecycle transition, mirroring core.TraceKind.
type ThreadKind uint8

const (
	// ThreadStart: the thread was invoked and began executing.
	ThreadStart ThreadKind = iota
	// ThreadRun: a suspended/queued thread resumed on the EXU.
	ThreadRun
	// ThreadRead: the thread issued a split-phase read and suspended.
	ThreadRead
	// ThreadYield: the thread switched out voluntarily.
	ThreadYield
	// ThreadEnd: the thread completed.
	ThreadEnd
	NumThreadKinds
)

var threadKindNames = [NumThreadKinds]string{"start", "run", "read", "yield", "end"}

func (k ThreadKind) String() string {
	if int(k) < len(threadKindNames) {
		return threadKindNames[k]
	}
	return "kind(?)"
}

// PacketKind classifies a packet-service event.
type PacketKind uint8

const (
	// PktBypassDMA: a remote request serviced by the by-passing DMA.
	PktBypassDMA PacketKind = iota
	// PktEXUService: a remote request serviced on the EXU (EM-4 mode).
	PktEXUService
	// PktSpill: a queue packet spilled to the on-memory buffer.
	PktSpill
	NumPacketKinds
)

var packetKindNames = [NumPacketKinds]string{"dma-service", "exu-service", "spill"}

func (k PacketKind) String() string {
	if int(k) < len(packetKindNames) {
		return packetKindNames[k]
	}
	return "packet(?)"
}

// NetKind classifies a network event.
type NetKind uint8

const (
	// NetHop: a packet head moved one link hop.
	NetHop NetKind = iota
	// NetEject: a packet moved through the destination processor port.
	NetEject
	NumNetKinds
)

var netKindNames = [NumNetKinds]string{"hop", "eject"}

func (k NetKind) String() string {
	if int(k) < len(netKindNames) {
		return netKindNames[k]
	}
	return "net(?)"
}

// Event is one observability record: fixed-size, string-free, stored by
// value in the ring buffer so recording never allocates. The payload
// fields A and B are category-specific:
//
//	CatThread: Code=ThreadKind, A=frame
//	CatSwitch: Code=SwitchCause, A=frame
//	CatCycle:  Code=Phase, A=cycles charged
//	CatFlush:  A=buffered ops replayed
//	CatPacket: Code=PacketKind, A=service cycles
//	CatNet:    Code=NetKind, A=contention stall cycles
//	CatSched:  (none)
type Event struct {
	// At is the simulated time in cycles (the caller's sim.Time).
	At int64
	// PE is the processor the event is attributed to (a packet's
	// destination for network events).
	PE int32
	// Cat is the event's category.
	Cat Category
	// Code is the category-specific sub-kind (see Event doc).
	Code uint8
	// A and B carry the category-specific payload.
	A, B int64
}

// CategoryMask selects a set of categories, one bit per Category.
type CategoryMask uint16

// MaskOf builds a mask from categories.
func MaskOf(cats ...Category) CategoryMask {
	var m CategoryMask
	for _, c := range cats {
		m |= 1 << c
	}
	return m
}

// Has reports whether the mask includes c.
func (m CategoryMask) Has(c Category) bool { return m&(1<<c) != 0 }

// DefaultRetain is the default ring-retention mask: everything except
// the two high-volume firehoses (per-dispatch scheduler events and
// per-charge cycle events), which are aggregated into the profile but
// not kept as individual events unless asked for.
const DefaultRetain = CategoryMask(1<<CatThread | 1<<CatSwitch | 1<<CatFlush |
	1<<CatPacket | 1<<CatNet)
