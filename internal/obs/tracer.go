package obs

import "fmt"

// Options configures a Tracer.
type Options struct {
	// P is the number of PEs the profile is sized for (required, >= 1).
	P int
	// Capacity bounds the event ring (<= 0: DefaultCapacity).
	Capacity int
	// SliceCycles, when > 0, additionally aggregates phase charges into
	// whole-machine time slices of this width — the profile "keyed by
	// sim time". 0 disables slicing.
	SliceCycles int64
	// Retain selects which categories are kept as individual events in
	// the ring (0: DefaultRetain). Profile aggregation is unaffected:
	// every category is accounted whether or not it is retained.
	Retain CategoryMask
}

// NameEntry associates a thread name with its (PE, frame) identity at
// spawn time. Entries are appended in spawn order, which is part of the
// deterministic event order; a reused frame ID simply gets a later
// entry.
type NameEntry struct {
	PE    int32  `json:"pe"`
	Frame uint32 `json:"frame"`
	Name  string `json:"name"`
}

// Tracer collects events from an instrumented simulation and aggregates
// them into a Profile on the fly. The zero *Tracer (nil) is the
// disabled state: every record method is nil-receiver-safe and returns
// immediately, so uninstrumented runs pay one branch per call site and
// allocate nothing.
//
// A Tracer serves exactly one Machine run; like the Machine it is
// single-use and not safe for concurrent use.
type Tracer struct {
	ring        *Ring[Event]
	retain      CategoryMask
	sliceCycles int64
	opts        Options

	prof  Profile
	names []NameEntry
}

// New builds a tracer for a machine with opts.P processors.
func New(opts Options) *Tracer {
	if opts.P < 1 {
		panic(fmt.Sprintf("obs: Options.P must be >= 1, got %d", opts.P))
	}
	if opts.Retain == 0 {
		opts.Retain = DefaultRetain
	}
	t := &Tracer{
		ring:        NewRing[Event](opts.Capacity),
		retain:      opts.Retain,
		sliceCycles: opts.SliceCycles,
		opts:        opts,
	}
	t.prof.Version = ProfileVersion
	t.prof.P = opts.P
	t.prof.Points = 1
	t.prof.SliceCycles = opts.SliceCycles
	t.prof.PEs = make([]PEProfile, opts.P)
	return t
}

// P returns the processor count the tracer was sized for, 0 for nil.
func (t *Tracer) P() int {
	if t == nil {
		return 0
	}
	return t.prof.P
}

// record accounts one event and retains it if its category is enabled.
//
//emx:hotpath
func (t *Tracer) record(ev Event) {
	t.prof.Recorded++
	if t.retain&(1<<ev.Cat) == 0 {
		return
	}
	if old, dropped := t.ring.Push(ev); dropped {
		t.prof.Dropped[old.Cat]++
	}
}

// Cycle charges cycles to one phase of a PE's decomposition.
//
//emx:hotpath
func (t *Tracer) Cycle(at int64, pe int32, ph Phase, cycles int64) {
	if t == nil || cycles <= 0 {
		return
	}
	t.prof.PEs[pe].Phases[ph] += cycles
	if t.sliceCycles > 0 {
		t.slice(at).Phases[ph] += cycles
	}
	t.record(Event{At: at, PE: pe, Cat: CatCycle, Code: uint8(ph), A: cycles})
}

// slice returns the whole-machine slice covering time at, growing the
// slice list as simulated time advances.
func (t *Tracer) slice(at int64) *Slice {
	idx := int(at / t.sliceCycles)
	for len(t.prof.Slices) <= idx {
		from := int64(len(t.prof.Slices)) * t.sliceCycles
		t.prof.Slices = append(t.prof.Slices, Slice{From: from, To: from + t.sliceCycles})
	}
	return &t.prof.Slices[idx]
}

// Switch records one context switch with its cause.
//
//emx:hotpath
func (t *Tracer) Switch(at int64, pe int32, cause SwitchCause, frame uint32) {
	if t == nil {
		return
	}
	t.prof.PEs[pe].Switches[cause]++
	t.record(Event{At: at, PE: pe, Cat: CatSwitch, Code: uint8(cause), A: int64(frame)})
}

// Thread records a thread lifecycle transition.
//
//emx:hotpath
func (t *Tracer) Thread(at int64, pe int32, kind ThreadKind, frame uint32) {
	if t == nil {
		return
	}
	if kind == ThreadStart {
		t.prof.PEs[pe].Threads++
	}
	t.record(Event{At: at, PE: pe, Cat: CatThread, Code: uint8(kind), A: int64(frame)})
}

// ThreadName associates a name with a (PE, frame) identity; called once
// per spawn, off the steady-state hot path.
func (t *Tracer) ThreadName(pe int32, frame uint32, name string) {
	if t == nil {
		return
	}
	t.names = append(t.names, NameEntry{PE: pe, Frame: frame, Name: name})
}

// Flush records one operation-buffer replay of ops buffered operations.
//
//emx:hotpath
func (t *Tracer) Flush(at int64, pe int32, ops int64) {
	if t == nil {
		return
	}
	t.prof.PEs[pe].Flushes++
	t.prof.PEs[pe].FlushedOps += uint64(ops)
	t.record(Event{At: at, PE: pe, Cat: CatFlush, A: ops})
}

// Packet records a packet-service event taking cycles.
//
//emx:hotpath
func (t *Tracer) Packet(at int64, pe int32, kind PacketKind, cycles int64) {
	if t == nil {
		return
	}
	switch kind {
	case PktSpill:
		t.prof.PEs[pe].Spills++
	case PktBypassDMA:
		t.prof.PEs[pe].ServicedDMA++
	case PktEXUService:
		t.prof.PEs[pe].ServicedEXU++
	}
	t.record(Event{At: at, PE: pe, Cat: CatPacket, Code: uint8(kind), A: cycles})
}

// Hop records one network hop (or ejection) for a packet bound for pe,
// with the port-contention stall it suffered.
//
//emx:hotpath
func (t *Tracer) Hop(at int64, pe int32, kind NetKind, stall int64) {
	if t == nil {
		return
	}
	t.prof.PEs[pe].NetHops++
	t.prof.PEs[pe].NetStall += stall
	t.record(Event{At: at, PE: pe, Cat: CatNet, Code: uint8(kind), A: stall})
}

// MUDispatch records one Matching Unit packet dispatch on a PE.
//
//emx:hotpath
func (t *Tracer) MUDispatch(at int64, pe int32) {
	if t == nil {
		return
	}
	t.prof.PEs[pe].Dispatches++
}

// Dispatch records one engine event dispatch (the sim scheduler hook).
//
//emx:hotpath
func (t *Tracer) Dispatch(at int64) {
	if t == nil {
		return
	}
	t.prof.Dispatched++
	if t.retain&(1<<CatSched) != 0 {
		t.record(Event{At: at, Cat: CatSched})
	}
}

// Finish seals the profile at the run's makespan: trailing empty slices
// are trimmed and the last slice is clamped to the makespan.
func (t *Tracer) Finish(makespan int64) {
	if t == nil {
		return
	}
	t.prof.Makespan = makespan
	t.prof.Retained = t.ring.Len()
	if t.sliceCycles > 0 {
		for len(t.prof.Slices) > 0 {
			last := &t.prof.Slices[len(t.prof.Slices)-1]
			if last.From > makespan {
				t.prof.Slices = t.prof.Slices[:len(t.prof.Slices)-1]
				continue
			}
			if last.To > makespan {
				last.To = makespan
			}
			break
		}
	}
}

// Child returns a fresh tracer with the same options, for recording one
// shard of the same machine run. A sharded machine gives every member
// engine its own child (a Tracer is not safe for concurrent use) and
// folds them back with Absorb before Finish.
func (t *Tracer) Child() *Tracer {
	if t == nil {
		return nil
	}
	return New(t.opts)
}

// Absorb folds shard children back into the parent after a sharded run.
// Counters and per-PE aggregates sum (the PE partition makes the PE rows
// disjoint, so this reproduces the single-tracer aggregation exactly);
// time slices add elementwise; retained events are re-pushed in At-major
// order with shard index as the tie-break; name tables append in shard
// order. Call before Finish, single-threaded.
func (t *Tracer) Absorb(children []*Tracer) {
	if t == nil {
		return
	}
	evs := make([][]Event, len(children))
	for i, c := range children {
		t.prof.Recorded += c.prof.Recorded
		t.prof.Dispatched += c.prof.Dispatched
		for cat, n := range c.prof.Dropped {
			t.prof.Dropped[cat] += n
		}
		for pe := range c.prof.PEs {
			t.prof.PEs[pe].add(&c.prof.PEs[pe])
		}
		for s, sl := range c.prof.Slices {
			for len(t.prof.Slices) <= s {
				from := int64(len(t.prof.Slices)) * t.sliceCycles
				t.prof.Slices = append(t.prof.Slices, Slice{From: from, To: from + t.sliceCycles})
			}
			for ph, cyc := range sl.Phases {
				t.prof.Slices[s].Phases[ph] += cyc
			}
		}
		t.names = append(t.names, c.names...)
		evs[i] = c.ring.Snapshot()
	}
	idx := make([]int, len(evs))
	for {
		best := -1
		for i := range evs {
			if idx[i] >= len(evs[i]) {
				continue
			}
			if best < 0 || evs[i][idx[i]].At < evs[best][idx[best]].At {
				best = i
			}
		}
		if best < 0 {
			return
		}
		if old, dropped := t.ring.Push(evs[best][idx[best]]); dropped {
			t.prof.Dropped[old.Cat]++
		}
		idx[best]++
	}
}

// Profile returns a copy of the aggregated profile. Call after Finish.
func (t *Tracer) Profile() *Profile {
	if t == nil {
		return nil
	}
	p := t.prof
	p.PEs = append([]PEProfile(nil), t.prof.PEs...)
	p.Slices = append([]Slice(nil), t.prof.Slices...)
	return &p
}

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.ring.Snapshot()
}

// Names returns the thread name table in spawn order.
func (t *Tracer) Names() []NameEntry {
	if t == nil {
		return nil
	}
	return append([]NameEntry(nil), t.names...)
}
