package obs

// Ring is a bounded FIFO over a preallocated buffer: pushing beyond
// capacity overwrites the oldest element (flight-recorder semantics —
// the newest events are the ones a post-mortem wants). The generic form
// also backs internal/trace's lifecycle recorder.
//
// A Ring is not safe for concurrent use; a simulation is single-threaded
// and each concurrent run owns its own tracer.
type Ring[T any] struct {
	buf   []T
	start int // index of the oldest element
	n     int // live elements
}

// DefaultCapacity is the ring size used when a caller passes <= 0.
const DefaultCapacity = 1 << 16

// NewRing returns a ring holding at most capacity elements
// (DefaultCapacity when capacity <= 0).
func NewRing[T any](capacity int) *Ring[T] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

// Push appends v. When the ring is full the oldest element is evicted
// and returned with dropped=true.
//
//emx:hotpath
func (r *Ring[T]) Push(v T) (evicted T, dropped bool) {
	if r.n == len(r.buf) {
		evicted = r.buf[r.start]
		r.buf[r.start] = v
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		return evicted, true
	}
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.n++
	return evicted, false
}

// Len returns the number of retained elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Snapshot returns the retained elements oldest-first in a fresh slice.
func (r *Ring[T]) Snapshot() []T {
	out := make([]T, r.n)
	head := len(r.buf) - r.start
	if head > r.n {
		head = r.n
	}
	copy(out, r.buf[r.start:r.start+head])
	copy(out[head:], r.buf[:r.n-head])
	return out
}
