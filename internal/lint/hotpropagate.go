package lint

import (
	"go/ast"
	"go/types"
)

// HotPropagate extends hotalloc across function boundaries: a function
// reached from an //emx:hotpath root through static calls is itself on
// the hot path, whether or not it carries the directive, so the
// allocation rules apply to it too. Without this, a hot function can
// launder an allocation through a one-line helper and the suite never
// notices — exactly the rot mode of a fast lane maintained by
// convention.
//
// Propagation follows EdgeDirect edges only. Interface dispatch and
// stored closures are deliberate boundaries: the handler lane's OnEvent
// fan-out would otherwise mark every handler in the program hot, and
// hotalloc already charges closure creation to the hot function that
// creates it while treating the body as cold. A helper that is hot in
// fact but only reachable through an interface should carry its own
// //emx:hotpath.
//
// Escape hatch: //emx:coldpath on a function declaration declares the
// whole function a cold region (an error formatter, a teardown helper).
// Propagation stops there — the function and its callees stay exempt.
//
// Every finding carries the propagation chain ("hot via A -> B -> C"),
// so a diagnostic in a helper explains which hot root makes it hot.
//
// This analyzer also owns the end-of-run hygiene for the hot-path
// directives: //emx:hotpath not attached to a function and
// //emx:coldpath that suppressed nothing are reported here, after every
// consumer (hotalloc and the propagation pass) has had its chance to
// use them.
var HotPropagate = &Analyzer{
	Name: "hotpropagate",
	Doc:  "propagate //emx:hotpath through static calls so hot-path findings fire in helpers",
	Run:  runHotPropagate,
}

// hotReach computes (once per Program) the set of functions reachable
// from //emx:hotpath roots via static calls, with //emx:coldpath
// declarations pruning the walk.
func hotReach(prog *Program) *ReachSet {
	return prog.cached("hotpropagate.reach", func() any {
		g := prog.Graph()
		var roots []*FuncNode
		for _, pkg := range prog.Pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if hotPathMarked(pkg, fd) {
						if n := g.NodeOf(funcObj(pkg, fd)); n != nil {
							roots = append(roots, n)
						}
					}
				}
			}
		}
		return g.Reach(roots, EdgeDirect.Mask(), func(n *FuncNode) bool {
			return n.Decl != nil && n.Pkg != nil && declColdMarked(n.Pkg, n.Decl)
		})
	}).(*ReachSet)
}

// declColdMarked reports whether the function declaration itself
// carries //emx:coldpath (doc comment or declaration line), consuming
// the directive: the whole function is a declared cold region.
func declColdMarked(pkg *Package, fd *ast.FuncDecl) bool {
	for _, d := range pkg.Directives.All() {
		if d.Name != DirColdPath || d.Malformed {
			continue
		}
		inDoc := fd.Doc != nil && d.Pos >= fd.Doc.Pos() && d.Pos < fd.Doc.End()
		file, line := nodeLine(pkg, fd)
		onLine := d.File == file && d.EffectiveLine == line
		if inDoc || onLine {
			pkg.Directives.Use(d)
			return true
		}
	}
	return false
}

func runHotPropagate(pass *Pass) {
	pkg := pass.Pkg
	reach := hotReach(pass.Prog)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := pass.Prog.Graph().NodeOf(funcObj(pkg, fd))
			if node == nil || !reach.Has(node) {
				continue
			}
			if declColdMarked(pkg, fd) {
				continue
			}
			if hotPathMarked(pkg, fd) {
				// hotalloc owns the findings of directly marked
				// functions; run the checks with a discarded reporter so
				// //emx:coldpath suppressions inside are still consumed
				// even under `-only hotpropagate`.
				silent := &Pass{Analyzer: pass.Analyzer, Pkg: pkg, Prog: pass.Prog,
					report: func(Diagnostic) {}}
				checkHotFunc(silent, fd)
				continue
			}
			chain := reach.Chain(node)
			related := make([]Related, 0, len(chain))
			for _, e := range chain {
				related = append(related, pass.RelatedAt(e.Pos, "%s calls %s here", e.From.Name(), e.To.Name()))
			}
			suffix := " (hot via " + reach.ChainString(node) + ")"
			chained := &Pass{Analyzer: pass.Analyzer, Pkg: pkg, Prog: pass.Prog,
				report: func(d Diagnostic) {
					d.Message += suffix
					d.Related = related
					pass.report(d)
				}}
			checkHotFunc(chained, fd)
		}
	}
	for _, d := range pkg.Directives.Unused(DirHotPath) {
		pass.Reportf(d.Pos, "unused //emx:hotpath directive: not attached to a function declaration")
	}
	for _, d := range pkg.Directives.Unused(DirColdPath) {
		pass.Reportf(d.Pos, "unused //emx:coldpath directive: no hot-path finding suppressed on line %d", d.EffectiveLine)
	}
}

// funcObj returns the types object a declaration defines.
func funcObj(pkg *Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}
