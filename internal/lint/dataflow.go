package lint

import (
	"go/ast"
	"go/types"
)

// A small forward dataflow/taint engine. Analyzers label expressions at
// source sites (an index into an engine slice, a host-clock read) and
// the engine propagates the labels forward through a function body:
// assignments, short variable declarations, range statements, and
// address/dereference chains. Interprocedural flow is handled by call
// summaries computed as a fixpoint over the call graph (see Summaries),
// so a label can follow a value through helper functions — the ≥2-deep
// cases the v2 analyzers exist for.
//
// The lattice is a set of string labels per variable; the transfer
// function is monotone (labels are only added), so the local fixpoint
// terminates in at most |labels|·|vars| passes and in practice in two.

// Labels is a set of taint labels.
type Labels map[string]bool

func (l Labels) add(other Labels) bool {
	changed := false
	for k := range other {
		if !l[k] {
			l[k] = true
			changed = true
		}
	}
	return changed
}

// Taint is the per-function forward analysis state.
type Taint struct {
	pkg *Package
	// source classifies an expression as a taint source, returning its
	// labels (nil: not a source).
	source func(expr ast.Expr) Labels
	// call, when non-nil, transfers labels through a call expression
	// given the already-computed labels of each argument (nil: calls
	// never produce tainted results).
	call func(call *ast.CallExpr, argLabels []Labels) Labels

	vars map[types.Object]Labels
}

// NewTaint prepares a forward taint analysis over one function body.
func NewTaint(pkg *Package, source func(ast.Expr) Labels, call func(*ast.CallExpr, []Labels) Labels) *Taint {
	return &Taint{pkg: pkg, source: source, call: call, vars: map[types.Object]Labels{}}
}

// Run propagates labels through body to a local fixpoint.
func (t *Taint) Run(body *ast.BlockStmt) {
	for {
		if !t.pass(body) {
			return
		}
	}
}

// pass performs one forward sweep, returning whether any variable
// gained a label.
func (t *Taint) pass(body *ast.BlockStmt) bool {
	changed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals are separate functions
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if t.bind(n.Lhs[i], t.Of(n.Rhs[i])) {
						changed = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if t.bindIdent(name, t.Of(n.Values[i])) {
						changed = true
					}
				}
			}
		case *ast.RangeStmt:
			// Ranging over a tainted collection taints the element.
			if n.Value != nil {
				if t.bind(n.Value, t.Of(n.X)) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// bind merges labels into the variable the LHS expression names.
func (t *Taint) bind(lhs ast.Expr, labels Labels) bool {
	if len(labels) == 0 {
		return false
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return t.bindIdent(id, labels)
	}
	return false
}

func (t *Taint) bindIdent(id *ast.Ident, labels Labels) bool {
	if len(labels) == 0 || id.Name == "_" {
		return false
	}
	obj := t.pkg.Info.Defs[id]
	if obj == nil {
		obj = t.pkg.Info.Uses[id]
	}
	if obj == nil {
		return false
	}
	cur, ok := t.vars[obj]
	if !ok {
		cur = Labels{}
		t.vars[obj] = cur
	}
	return cur.add(labels)
}

// Bind seeds labels onto a variable directly (parameters at analysis
// entry).
func (t *Taint) Bind(obj types.Object, labels Labels) {
	if obj == nil || len(labels) == 0 {
		return
	}
	cur, ok := t.vars[obj]
	if !ok {
		cur = Labels{}
		t.vars[obj] = cur
	}
	cur.add(labels)
}

// Of computes the labels of an expression under the current state.
func (t *Taint) Of(expr ast.Expr) Labels {
	out := Labels{}
	t.of(expr, out)
	return out
}

func (t *Taint) of(expr ast.Expr, out Labels) {
	if expr == nil {
		return
	}
	if src := t.source(expr); len(src) > 0 {
		out.add(src)
	}
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := t.pkg.Info.Uses[e]; obj != nil {
			out.add(t.vars[obj])
		} else if obj := t.pkg.Info.Defs[e]; obj != nil {
			out.add(t.vars[obj])
		}
	case *ast.ParenExpr:
		t.of(e.X, out)
	case *ast.UnaryExpr:
		t.of(e.X, out) // &x carries x's labels
	case *ast.StarExpr:
		t.of(e.X, out) // *p carries p's labels
	case *ast.TypeAssertExpr:
		t.of(e.X, out)
	case *ast.CallExpr:
		if t.call != nil {
			argLabels := make([]Labels, len(e.Args))
			for i, a := range e.Args {
				argLabels[i] = t.Of(a)
			}
			out.add(t.call(e, argLabels))
		} else if tv, ok := t.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			t.of(e.Args[0], out) // conversions preserve labels
		}
	}
}

// VarLabels returns the accumulated labels of a variable.
func (t *Taint) VarLabels(obj types.Object) Labels { return t.vars[obj] }

// --- Call summaries -------------------------------------------------

// ParamUse is the summary bitmask for one parameter: how a labeled
// value passed in that position is used by the callee, transitively.
type ParamUse uint8

const (
	// ParamUsed: the callee (or something it calls) invokes a method on
	// the value, indexes with it, stores it beyond the call, or
	// otherwise consumes it as state.
	ParamUsed ParamUse = 1 << iota
	// ParamTargetOnly: the value flows only into a sanctioned sink
	// (the AtHandlerOn target argument).
	ParamTargetOnly
)

// Summaries maps each call-graph node to per-parameter usage flags for
// parameters of interest (as selected by the analyzer's filter).
// Receivers count as parameter -1.
type Summaries struct {
	use map[*FuncNode]map[int]ParamUse
}

// Use returns the summary flags for parameter i of fn (receiver: -1).
func (s *Summaries) Use(n *FuncNode, i int) ParamUse {
	if s == nil || n == nil {
		return 0
	}
	return s.use[n][i]
}

// paramObjects returns fn's parameter objects keyed by index, with the
// receiver at -1, restricted by filter.
func paramObjects(pkg *Package, fd *ast.FuncDecl, filter func(types.Type) bool) map[int]types.Object {
	out := map[int]types.Object{}
	idx := 0
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			for _, name := range fld.Names {
				if obj := pkg.Info.Defs[name]; obj != nil && filter(obj.Type()) {
					out[-1] = obj
				}
			}
		}
	}
	for _, fld := range fd.Type.Params.List {
		n := len(fld.Names)
		if n == 0 {
			idx++
			continue
		}
		for _, name := range fld.Names {
			if obj := pkg.Info.Defs[name]; obj != nil && filter(obj.Type()) {
				out[idx] = obj
			}
			idx++
		}
	}
	return out
}

// ComputeSummaries runs the interprocedural fixpoint: for every loaded
// function whose parameters pass the type filter, determine how a value
// arriving in each such parameter is used, following calls to other
// summarized functions. isUse classifies a local use of a tracked value
// (method call on it, indexing with it, escaping store); sanctionedSink
// marks argument positions whose consumption is approved (AtHandlerOn
// targets). Both see the summary map built so far, so nested helper
// chains converge over the sweeps (bounded: flags only accumulate).
func ComputeSummaries(prog *Program, filter func(types.Type) bool) *Summaries {
	s := &Summaries{use: map[*FuncNode]map[int]ParamUse{}}
	g := prog.Graph()
	// Seed every candidate function, then sweep to fixpoint. The depth
	// of helper chains in practice is tiny; cap sweeps defensively.
	for sweep := 0; sweep < 10; sweep++ {
		changed := false
		for _, n := range g.Nodes() {
			if n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil {
				continue
			}
			params := paramObjects(n.Pkg, n.Decl, filter)
			if len(params) == 0 {
				continue
			}
			cur := s.use[n]
			if cur == nil {
				cur = map[int]ParamUse{}
				s.use[n] = cur
			}
			for i, obj := range params {
				flags := summarizeParam(n, obj, s, g)
				if cur[i]|flags != cur[i] {
					cur[i] |= flags
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return s
}

// summarizeParam scans n's body for uses of the tracked parameter obj.
func summarizeParam(n *FuncNode, obj types.Object, s *Summaries, g *Graph) ParamUse {
	pkg := n.Pkg
	var flags ParamUse
	isObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pkg.Info.Uses[id] == obj
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
				if isObj(sel.X) {
					// Method invoked on the tracked value.
					flags |= ParamUsed
				}
				// Argument positions: sanctioned target slot of
				// AtHandlerOn, otherwise follow the callee summary.
				for i, arg := range node.Args {
					if !isObj(arg) {
						continue
					}
					if sel.Sel.Name == "AtHandlerOn" && i == 0 {
						flags |= ParamTargetOnly
						continue
					}
					flags |= calleeParamUse(pkg, node, i, s, g)
				}
				return true
			}
			for i, arg := range node.Args {
				if isObj(arg) {
					flags |= calleeParamUse(pkg, node, i, s, g)
				}
			}
		case *ast.IndexExpr:
			if isObj(node.Index) {
				flags |= ParamUsed // used as a state index
			}
		case *ast.AssignStmt:
			// Storing the value beyond a local (a field, an element)
			// escapes the analysis: treat as used.
			for i := range node.Rhs {
				if i < len(node.Lhs) && isObj(node.Rhs[i]) {
					if _, isIdent := ast.Unparen(node.Lhs[i]).(*ast.Ident); !isIdent {
						flags |= ParamUsed
					}
				}
			}
		}
		return true
	})
	return flags
}

// calleeParamUse resolves the static callee of call and returns its
// summary for argument i, defaulting to ParamUsed for calls the graph
// cannot resolve to a summarized body (conservative).
func calleeParamUse(pkg *Package, call *ast.CallExpr, i int, s *Summaries, g *Graph) ParamUse {
	callee := StaticCallee(pkg, call)
	if callee == nil {
		return ParamUsed
	}
	n := g.NodeOf(callee)
	if n == nil || n.Decl == nil {
		return ParamUsed
	}
	if use, ok := s.use[n][i]; ok {
		return use
	}
	// Summarized body with no recorded use of that slot: unused so far.
	return 0
}

// StaticCallee resolves a call to its named callee, or nil for
// indirect/builtin/interface calls.
func StaticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
