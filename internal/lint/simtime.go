package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SimTime polices the boundary between the two clocks in this
// codebase. Simulated time is sim.Time — a cycle count, int64 so that
// deltas stay closed under subtraction — and host time is the
// time.Time/time.Duration pair. The two must never meet inside the
// simulation:
//
//   - a negative constant delay passed to Engine.After/AfterHandler is
//     a guaranteed runtime panic; report it at compile time,
//   - a host-derived expression (anything touching time.Now/Since, a
//     time.Time/Duration-typed subexpression, or a host* identifier)
//     scheduled as a delay makes event order depend on host speed,
//   - inside the simulation core, arithmetic mixing a host-derived
//     operand with a cycle count smuggles wall-clock time into
//     simulated state.
//
// The mixing rule is scoped to the sim-core tier: observability code
// one level up (labd, the bench harness) legitimately divides cycle
// counts by host seconds to report throughput.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "flag negative or host-derived sim.After delays and host-time/cycle-count mixing",
	Run:  runSimTime,
}

// schedFuncs are the sim.Engine scheduling entry points whose first
// argument is a sim.Time delay or deadline.
var schedFuncs = map[string]bool{
	"After": true, "AfterHandler": true, "At": true, "AtHandler": true,
}

const simTimePath = "emx/internal/sim"

func runSimTime(pass *Pass) {
	pkg := pass.Pkg
	if !isCritical(pkg) {
		return
	}
	strict := isSimCore(pkg)

	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSchedCall(pass, n)
				if strict {
					checkSimTimeConversion(pass, n)
				}
			case *ast.BinaryExpr:
				if strict {
					checkHostMixing(pass, n)
				}
			}
			return true
		})
	}
}

// checkSchedCall inspects Engine.After/AfterHandler/At/AtHandler call
// sites: the delay argument must be non-negative and must not be
// derived from the host clock.
func checkSchedCall(pass *Pass, call *ast.CallExpr) {
	pkg := pass.Pkg
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !schedFuncs[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != simTimePath {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	arg := call.Args[0]
	if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact && v < 0 {
			pass.Reportf(arg.Pos(),
				"negative delay %d passed to sim.%s always panics at runtime", v, sel.Sel.Name)
			return
		}
	}
	if src := hostDerived(pkg, arg); src != "" {
		pass.Reportf(arg.Pos(),
			"host-derived value (%s) scheduled via sim.%s: event order would depend on host speed; delays must be cycle counts",
			src, sel.Sel.Name)
	}
}

// checkSimTimeConversion flags sim.Time(x) / Time(x) conversions of
// host-derived values inside the simulation core.
func checkSimTimeConversion(pass *Pass, call *ast.CallExpr) {
	pkg := pass.Pkg
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !isSimTimeType(tv.Type) && !isIntegerType(tv.Type) {
		return
	}
	if src := hostDerived(pkg, call.Args[0]); src != "" {
		pass.Reportf(call.Args[0].Pos(),
			"conversion of host-derived value (%s) to %s inside the simulation core: wall-clock time must not become a cycle count",
			src, tv.Type.String())
	}
}

// checkHostMixing flags binary arithmetic combining a host-derived
// operand with a cycle-count operand. Constant operands are exempt —
// `cycles * 2` is scaling, not mixing.
func checkHostMixing(pass *Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	pkg := pass.Pkg
	x, y := be.X, be.Y
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		host, other := pair[0], pair[1]
		if isConstExpr(pkg, host) || isConstExpr(pkg, other) {
			continue
		}
		src := hostDerived(pkg, host)
		if src == "" {
			continue
		}
		if isCycleCount(pkg, other) && hostDerived(pkg, other) == "" {
			pass.Reportf(be.Pos(),
				"arithmetic mixes host-derived value (%s) with a cycle count inside the simulation core", src)
			return
		}
	}
}

func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// hostDerived reports how an expression depends on the host clock:
// a time.Now/Since/Until call, a time.Time/time.Duration-typed
// subexpression, or a host*-named identifier. It returns a short
// description of the first evidence found, or "" when the expression
// is clean. Constant expressions are never host-derived.
func hostDerived(pkg *Package, e ast.Expr) string {
	if isConstExpr(pkg, e) {
		return ""
	}
	found := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[expr]; ok && tv.Value == nil && isHostTimeType(tv.Type) {
			found = tv.Type.String() + " value"
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && forbiddenFuncs["time"][fn.Name()] {
				found = "time." + fn.Name()
				return false
			}
			if hostName(n.Sel.Name) {
				found = n.Sel.Name
				return false
			}
		case *ast.Ident:
			if hostName(n.Name) && pkg.Info.Uses[n] != nil {
				found = n.Name
				return false
			}
		}
		return true
	})
	return found
}

func hostName(name string) bool {
	return strings.HasPrefix(name, "host") || strings.HasPrefix(name, "Host")
}

func isHostTimeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "time" {
		return false
	}
	return obj.Name() == "Time" || obj.Name() == "Duration"
}

func isSimTimeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == simTimePath && obj.Name() == "Time"
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isCycleCount reports whether the expression is plausibly a cycle
// count: sim.Time-typed, or integer-typed (the core keeps raw uint64
// cycle counters in several places).
func isCycleCount(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isSimTimeType(tv.Type) || isIntegerType(tv.Type)
}
