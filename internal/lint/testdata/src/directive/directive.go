// Package directive exercises the directive well-formedness checks: a
// typo or misplacement must be reported, never silently ignored.
package directive

// emx:hostclock // want "malformed emx directive"
func A() {}

//emx:hostclok // want "unknown emx directive //emx:hostclok"
func B() {}

//emx:determinism // want "must appear in the package doc comment"
func C() {}

// D carries a well-formed, known directive; whether it is USED is the
// owning analyzer's business (detsource), not emxdirective's, so no
// finding is expected here.
//
//emx:hostclock
func D() {}

// E stacks the SAME directive twice over one declaration: the lookup
// answers with the first copy, so the second silently does nothing —
// usually a botched merge. Only the duplicate is reported.
//
//emx:hotpath
//emx:hotpath // want "duplicate //emx:hotpath directive"
func E() {}

// F stacks two DIFFERENT directives: both govern the next code line,
// which is the whole point of stacking, so no finding.
//
//emx:hotpath
//emx:hostclock
func F() {}

// G has one standalone and one trailing copy of a directive aimed at
// the same line: duplicates too, even across placement styles.
func G() {
	//emx:orderinvariant
	x := 0 //emx:orderinvariant // want "duplicate //emx:orderinvariant directive"
	_ = x
}
