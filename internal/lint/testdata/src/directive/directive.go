// Package directive exercises the directive well-formedness checks: a
// typo or misplacement must be reported, never silently ignored.
package directive

// emx:hostclock // want "malformed emx directive"
func A() {}

//emx:hostclok // want "unknown emx directive //emx:hostclok"
func B() {}

//emx:determinism // want "must appear in the package doc comment"
func C() {}

// D carries a well-formed, known directive; whether it is USED is the
// owning analyzer's business (detsource), not emxdirective's, so no
// finding is expected here.
//
//emx:hostclock
func D() {}
