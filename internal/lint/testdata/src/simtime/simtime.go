// Package simtime exercises the simulated-clock analyzer.
//
//emx:determinism
package simtime

import (
	"time"

	"emx/internal/sim"
)

func tick() {}

// Schedule exercises the delay checks on sim.Engine entry points.
func Schedule(e *sim.Engine, d time.Duration, cycles sim.Time) {
	e.After(10, tick)
	e.After(cycles*2, tick)
	e.After(-1, tick)          // want "negative delay -1 passed to sim.After always panics"
	e.After(sim.Time(d), tick) // want "scheduled via sim.After" "conversion of host-derived value"
}

// Convert exercises the host-to-cycle conversion check.
func Convert(d time.Duration) sim.Time {
	return sim.Time(d) // want "conversion of host-derived value"
}

// Mix exercises the host/cycle arithmetic check.
func Mix(cycles sim.Time, hostNanos int64) int64 {
	sum := int64(cycles) + hostNanos // want "arithmetic mixes host-derived value (hostNanos) with a cycle count"
	scaled := int64(cycles) * 2      // constant scaling: fine
	return sum + scaled
}
