// Package hotpropagate exercises transitive hot-path propagation: the
// allocation rules of //emx:hotpath must follow static calls into
// unmarked helpers, stop at declared cold regions and interface
// dispatch, and report the propagation chain.
package hotpropagate

type q struct {
	heap []int
	sink any
}

// root is the marked hot entry point; it only delegates.
//
//emx:hotpath
func (s *q) root(n int) {
	s.level1(n)
	s.formatPanic(n)
	dispatch(s, n)
}

// level1 is unmarked but hot via root.
func (s *q) level1(n int) {
	s.level2(n)
}

// level2 is two static calls below the root: findings still fire here,
// with the chain attached, and //emx:coldpath still suppresses a line.
func (s *q) level2(n int) {
	s.sink = n // want "boxed into an interface in hot-path function level2"
	if n < 0 {
		s.sink = n //emx:coldpath diagnostics only
	}
}

// formatPanic is reachable from root but declares itself a cold region:
// propagation stops at the declaration, so the boxing below is exempt.
//
//emx:coldpath
func (s *q) formatPanic(n int) {
	s.sink = n
}

// sink is an interface boundary: propagation deliberately does not
// follow dynamic dispatch (a handler fan-out would mark everything
// hot), so drop's allocation is not reported.
type sink interface{ drop(int) }

func (s *q) drop(n int) { s.sink = n }

func dispatch(s sink, n int) { s.drop(n) }

//emx:hotpath // want "unused //emx:hotpath directive"
var depth int

//emx:coldpath // want "unused //emx:coldpath directive"
func neverHot() int { return depth }
