// Package maporder exercises the map-iteration analyzer.
//
//emx:determinism
package maporder

import "sort"

// Sum is a commutative reduction: order-invariant.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Keys collects then sorts before use: deterministic.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert writes keyed map entries only: order-free.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Dump emits values in iteration order without sorting.
func Dump(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration over map m in determinism-critical package"
		out = append(out, k)
	}
	return out
}

// First leaks whichever key the runtime happens to yield first.
func First(m map[string]int) string {
	first := ""
	for k := range m { // want "iteration over map m"
		first = k
		break
	}
	return first
}

// MinVal is a commutative reduction the analyzer cannot prove, so the
// loop asserts it.
func MinVal(m map[string]int) int {
	best := 1 << 62
	for _, v := range m { //emx:orderinvariant min is commutative
		if v < best {
			best = v
		}
	}
	return best
}

//emx:orderinvariant // want "unused //emx:orderinvariant directive"
func NoLoop() {}
