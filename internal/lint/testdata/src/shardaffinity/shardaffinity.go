// Package shardaffinity exercises the single-shard-key rule: a
// handler-reachable function may resolve state for at most one shard,
// and cross-shard work goes through AtHandlerOn. The Engine type here
// models the sim.Engine surface (the analyzer anchors on names and
// shapes, not import paths, so the fixture stays self-contained).
//
//emx:determinism
package shardaffinity

type Engine struct{ now int64 }

func (e *Engine) AtHandlerOn(target *Engine, d int64) {}
func (e *Engine) Post(d int64)                        {}
func (e *Engine) Now() int64                          { return e.now }

type node struct {
	engs   []*Engine
	queues [][]int
	owner  []int
}

type hop struct {
	n        *node
	src, dst int
}

// OnEvent is the handler entry point: everything it reaches runs on one
// shard's engine.
func (h *hop) OnEvent(seq uint64) {
	_ = seq
	h.deliver()
	h.forward()
	h.punt()
	h.drain()
	h.broadcast()
}

// deliver adds a level of indirection so the violation below is two
// calls deep from the handler.
func (h *hop) deliver() {
	h.enqueue()
}

// enqueue resolves its own shard, then reaches across to the
// destination's — the determinism bug shardaffinity exists for.
func (h *hop) enqueue() {
	sh := h.n.owner[h.src]
	h.n.engs[sh].Post(1)
	h.n.queues[sh] = append(h.n.queues[sh], h.src) // same key: fine
	h.n.engs[h.n.owner[h.dst]].Post(1)             // want "cross-shard access in handler-reachable enqueue"
}

// forward stays on its own shard and hands the foreign engine to
// AtHandlerOn: the sanctioned channel, no finding.
func (h *hop) forward() {
	sh := h.n.owner[h.src]
	e := h.n.engs[sh]
	e.Post(1)
	dst := h.n.owner[h.dst]
	e.AtHandlerOn(h.n.engs[dst], 3)
}

// schedule only passes its second engine through to the AtHandlerOn
// target slot; the call summary records that, so punt below is clean
// even though the foreign engine crosses a call boundary.
func schedule(owner, tgt *Engine) {
	owner.AtHandlerOn(tgt, 1)
}

// touch consumes its engine as state (summary: used).
func touch(e *Engine) {
	e.Post(1)
}

// punt resolves two shards but the foreign one only flows into the
// sanctioned sink via schedule: clean.
func (h *hop) punt() {
	sh := h.n.owner[h.src]
	mine := h.n.engs[sh]
	touch(mine)
	schedule(mine, h.n.engs[h.n.owner[h.dst]])
}

// drain touches shard 0's engine on every shard's behalf — audited, so
// the escape hatch suppresses it.
func (h *hop) drain() {
	a := h.n.owner[h.src]
	h.n.engs[a].Post(1)
	h.n.engs[0].Post(1) //emx:crossshard audited: shard 0 aggregates drain totals
}

// broadcast iterates every shard's engine from handler context.
func (h *hop) broadcast() {
	for _, e := range h.n.engs { // want "iterates all engine shards"
		e.Post(1)
	}
}

// newNode wires all shards at construction time. It is not
// handler-reachable, so multi-shard access here is legal.
func newNode(engs []*Engine) *node {
	n := &node{engs: engs, queues: make([][]int, len(engs))}
	for i := range engs {
		n.owner = append(n.owner, i%len(engs))
	}
	for _, e := range engs {
		e.Post(0)
	}
	return n
}

var _ = newNode

//emx:crossshard // want "unused //emx:crossshard directive"
var spare int

var _ = spare
