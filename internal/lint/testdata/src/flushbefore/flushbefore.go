// Package flushbefore exercises the op-buffer flush analyzer with a
// miniature copy of the runtime's coroutine/engine split.
//
//emx:determinism
package flushbefore

type opFlush struct{}

type eng struct{ now int64 }

// Now returns the simulated clock.
func (e *eng) Now() int64 { return e.now }

type thr struct {
	m   *mach
	buf []int
}

func (t *thr) yieldOp(op any) { _ = op }

type mach struct {
	eng *eng
	cur *thr
}

// TC is the fixture's thread context.
type TC struct{ t *thr }

func (tc *TC) sync() {
	if len(tc.t.buf) > 0 {
		tc.t.yieldOp(opFlush{})
	}
}

// Now flushes buffered operations before observing the clock: correct.
func (tc *TC) Now() int64 {
	tc.sync()
	return tc.t.m.eng.Now()
}

// Stale reads the clock while buffered operations are still pending.
func (tc *TC) Stale() int64 {
	return tc.t.m.eng.Now() // want "observable Now() read in coroutine-side function Stale before any op-buffer flush"
}

type waitSet struct {
	m       *mach
	waiters []*thr
}

// notify is coroutine-side through the .cur read and flushes first.
func (ws *waitSet) notify() {
	if cur := ws.m.cur; cur != nil && len(cur.buf) > 0 {
		cur.yieldOp(opFlush{})
	}
	ws.waiters = ws.waiters[:0]
}

// notifyStale observes the waiter list before flushing.
func (ws *waitSet) notifyStale() int {
	n := len(ws.waiters) // want "runtime field waiters read in coroutine-side function notifyStale before any op-buffer flush"
	if cur := ws.m.cur; cur != nil && n > 0 {
		cur.yieldOp(opFlush{})
	}
	return n
}

// engineSide runs in engine context (no TC receiver, no .cur read):
// exempt from the flush protocol.
func engineSide(e *eng, ws *waitSet) int64 {
	return e.Now() + int64(len(ws.waiters))
}

var _ = engineSide
