// Package detsource_clean is not determinism-critical: host clocks are
// allowed here, and a hostclock annotation is dead weight that must be
// called out rather than silently accepted.
package detsource_clean

import "time"

// Uptime may use the host clock freely.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Annotated carries a pointless suppression.
func Annotated() time.Time {
	return time.Now() //emx:hostclock // want "has no effect outside determinism-critical packages"
}
