// Package fingerprint exercises the Fingerprint exclusion audit: every
// field a Fingerprint method clears before hashing must either carry
// //emx:nofingerprint or be unread on result-affecting paths, and the
// attestation itself must not go stale.
//
//emx:determinism
package fingerprint

import "fmt"

type Config struct {
	// P is hashed; the attestation on it is stale and must be flagged.
	P int //emx:nofingerprint // want "stale //emx:nofingerprint on field P"

	// Shards is excluded AND read on result paths, but the audit
	// directive attests that is safe: no finding.
	//emx:nofingerprint
	Shards int

	// Trace is excluded without attestation and read two calls below
	// the exported surface: the cache-poisoning case.
	Trace bool

	// Debug is excluded without attestation but nothing result-affecting
	// reads it: clean.
	Debug bool
}

// Fingerprint hashes the config minus the host-side knobs.
func (c Config) Fingerprint() string {
	c.Shards = 0
	c.Trace = false // want "field Trace is excluded from Fingerprint but read"
	c.Debug = false
	return fmt.Sprintf("%+v", c)
}

// Run is the exported, result-affecting surface.
func Run(c Config) int {
	return c.P + stage(c) + shardsOf(c)
}

func stage(c Config) int { return inner(c) }

// inner reads Trace two static calls below Run.
func inner(c Config) int {
	if c.Trace {
		return 1
	}
	return 0
}

// shardsOf reads the attested field: covered by the directive.
func shardsOf(c Config) int { return c.Shards }

// debugDump reads Debug but is unreachable from the exported surface,
// so Debug's exclusion needs no attestation.
func debugDump(c Config) bool { return c.Debug }

var _ = debugDump

//emx:nofingerprint // want "unused //emx:nofingerprint directive"
var defaultP = 4

var _ = defaultP
