// Package hotalloc exercises the hot-path allocation analyzer.
package hotalloc

type ev struct {
	seq uint64
}

type q struct {
	heap []ev
	sink any
}

// push is the hot insert path: appending to a struct field reuses the
// backing array, so it passes.
//
//emx:hotpath
func (s *q) push(e ev) {
	s.heap = append(s.heap, e)
}

//emx:hotpath
func (s *q) bad(n int) {
	s.sink = n                           // want "value of type int is boxed into an interface in hot-path function bad"
	fn := func() { s.heap = s.heap[:0] } // want "closure literal in hot-path function bad"
	fn()
	var tmp []ev
	tmp = append(tmp, ev{}) // want "append to slice tmp not preallocated"
	s.heap = tmp
}

//emx:hotpath
func (s *q) okPaths(e ev) {
	buf := make([]ev, 0, 8)
	buf = append(buf, e)
	s.heap = buf
	s.sink = &e // pointer-shaped: no boxing
	if len(s.heap) > 1024 {
		panic("hotalloc: queue overflow") // constant: backed by static data
	}
}

//emx:hotpath
func (s *q) coldError(n int) {
	if n < 0 {
		s.sink = n //emx:coldpath diagnostics only, never reached per event
	}
}

// coldAlloc is unmarked: it may allocate freely. (Unused-directive
// hygiene for //emx:hotpath and //emx:coldpath is owned by the
// hotpropagate analyzer — see the hotpropagate fixture.)
func (s *q) coldAlloc(n int) {
	s.sink = n
}
