// Package callgraph is a structural fixture for the call-graph builder:
// callgraph_test.go loads it and asserts edges directly, so there are
// no want comments here. It imports the real engine so the closure lane
// (sim.After/sim.At scheduling a FuncLit through funcRunner) is the
// genuine article, not a mock.
package callgraph

import "emx/internal/sim"

type runner interface{ run() int }

type fast struct{}

func (fast) run() int { return 1 }

type slow struct{ n int }

func (s *slow) run() int { return s.n }

func helper() int { return 0 }

// direct: plain static call.
func direct() int { return helper() }

// viaValue: a method value referenced, not called.
func viaValue() func() int {
	f := fast{}
	return f.run
}

// dispatch: a call through the interface fans out to every loaded
// implementation (conservative over-approximation).
func dispatch(r runner) int { return r.run() }

// schedule: a closure handed to the engine's After — the funcRunner
// lane. The literal is a closure edge; its body calls helper directly.
func schedule(e *sim.Engine) {
	e.After(3, func() { helper() })
}
