// Package detsource_crit exercises the detsource analyzer inside a
// determinism-critical package.
//
//emx:determinism
package detsource_crit

import (
	crand "crypto/rand" // want "import of crypto/rand in determinism-critical package"
	"math/rand"
	"os"
	"time"
)

// Bad reaches for every obvious nondeterministic source.
func Bad() time.Duration {
	start := time.Now()       // want "time.Now is a nondeterministic source"
	_ = os.Getenv("EMX_SEED") // want "os.Getenv is a nondeterministic source"
	_ = rand.Intn(10)         // want "rand.Intn is a nondeterministic source"
	buf := make([]byte, 8)
	_, _ = crand.Read(buf)
	return time.Since(start) // want "time.Since is a nondeterministic source"
}

// Good measures host throughput intentionally and draws randomness
// from an explicitly seeded generator.
func Good() int64 {
	start := time.Now() //emx:hostclock wall-clock throughput measurement only
	r := rand.New(rand.NewSource(1))
	n := r.Intn(10)
	_ = time.Since(start) //emx:hostclock
	return int64(n)
}

//emx:hostclock // want "unused //emx:hostclock directive"
var Seed = int64(42)
