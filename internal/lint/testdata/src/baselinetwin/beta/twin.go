// Package beta is one of two deliberately identical fixture packages
// for the baseline package-key test: same file basename, same finding
// message, different import path. A baseline saved from one twin must
// not suppress the other.
package beta

type sink struct{ v any }

// Box boxes an int on a hot path so hotalloc reports a finding whose
// message carries no package path — only the baseline key's package
// component can tell the twins apart.
//
//emx:hotpath
func Box(s *sink, n int) {
	s.v = n
}
