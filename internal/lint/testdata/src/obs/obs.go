// Package obs exercises the obs-purity analyzer over a miniature
// engine: everything reachable from this package's exported surface
// (it is an .../obs package, so all exports are observability entry
// points) must read simulated state without mutating it.
package obs

type Engine struct {
	now    int64
	events int
}

// Now is on the read-only allowlist.
func (e *Engine) Now() int64 { return e.now }

// post mutates the engine; calling it from obs-reachable code is the
// bug this analyzer exists for. Advance makes it reachable, so the
// write in its body is reported too.
func (e *Engine) post(d int64) { e.now += d } // want "writes Engine state"

// Snapshot only reads: clean.
func Snapshot(e *Engine) int64 {
	return e.Now()
}

// Advance mutates the engine straight from an entry point.
func Advance(e *Engine) {
	e.post(1) // want "calls mutating method post"
}

// Report delegates twice before the write, so the finding is two calls
// deep and carries the chain from the entry point.
func Report(e *Engine) int64 {
	return tally(e)
}

func tally(e *Engine) int64 { return consume(e) }

func consume(e *Engine) int64 {
	e.events++ // want "writes Engine state"
	return e.Now()
}

// Reset writes engine state but the site is audited.
func Reset(e *Engine) {
	e.now = 0    //emx:obsexempt audited: teardown between runs, never during one
	e.events = 0 //emx:obsexempt audited: teardown between runs, never during one
}

// Probe charges simulated cycles from observability code: forbidden by
// name, whatever the body does.
func Probe(e *Engine) {
	chargeProbe(e) // want "charges cycles via chargeProbe"
}

func chargeProbe(e *Engine) {}

// hookFn is unexported, so only the //emx:obshook directive makes it an
// entry point.
//
//emx:obshook
func hookFn(e *Engine) {
	e.now = 9 // want "writes Engine state"
}

var _ = hookFn

//emx:obshook // want "unused //emx:obshook directive"
var probes int

var _ = probes

//emx:obsexempt // want "unused //emx:obsexempt directive"
func idle() {}

var _ = idle
