package lint

import (
	"go/ast"
	"go/types"
)

// FlushBefore enforces the op-buffer protocol between coroutine-side
// code and engine/machine observable state. TC methods buffer cheap
// operations (Compute, Write, LocalStore) and replay them at the next
// suspension point; until that replay, the engine's clock and any state
// the buffered ops would touch are stale. Coroutine-side code must
// therefore flush the buffer (tc.sync(), or yieldOp(opFlush{})) before
// observing machine state — the clock, memory peeks, wait-set and
// barrier bookkeeping.
//
// The check is structural, not path-sensitive: within a coroutine-side
// function (a method on TC, or a function reading the machine's .cur
// coroutine mark), every observable read must appear after a flush
// call in source order. That is exactly the shape of every correct
// site in the runtime (sync first, observe after), and it catches the
// real bug class — adding an early observation to a TC method without
// thinking about the buffer.
//
// Flush recognition is interprocedural (v2): a call to a helper whose
// body — transitively, through static calls — performs a flush counts
// as a flush, so wrapping tc.sync() in a convenience method does not
// produce false positives. The observation side deliberately stays
// intraprocedural: treating every caller of an observing helper as
// coroutine-side would flood engine-side code with findings (see
// DESIGN.md §12 for the boundary).
var FlushBefore = &Analyzer{
	Name: "flushbefore",
	Doc:  "require an op-buffer flush before observable machine state is read from coroutine-side code",
	Run:  runFlushBefore,
}

// observableMethods are machine/engine observation entry points: the
// simulated clock and zero-cost memory access. Restricted to methods
// defined in sim-core packages.
var observableMethods = map[string]bool{
	"Now": true, "Peek": true, "Poke": true, "Events": true,
	"Episodes": true, "Waiting": true,
}

// observableFields are runtime bookkeeping fields whose value depends
// on buffered operations having been applied.
var observableFields = map[string]bool{
	"waiters": true, "episodes": true, "arrived": true, "recv": true,
}

func runFlushBefore(pass *Pass) {
	pkg := pass.Pkg
	if !isSimCore(pkg) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			if coroutineSide(pkg, fd) {
				checkFlushOrder(pass, fd)
			}
			return false // FuncDecls do not nest
		})
	}
}

// coroutineSide reports whether fd runs in coroutine (thread) context:
// a method on the TC type, or a function that reads the machine's
// .cur mark to find the running coroutine.
func coroutineSide(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := pkg.Info.TypeOf(fd.Recv.List[0].Type)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == "TC" {
			return true
		}
	}
	readsCur := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "cur" {
			readsCur = true
		}
		return !readsCur
	})
	return readsCur
}

// checkFlushOrder reports observable reads in fd's body that no flush
// call precedes in source order.
func checkFlushOrder(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	flushing := flushingFuncs(pass.Prog)
	var flushes []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isFlushCall(pkg, call, flushing) {
			flushes = append(flushes, call)
		}
		return true
	})
	flushed := func(n ast.Node) bool {
		for _, fl := range flushes {
			if fl.Pos() < n.Pos() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case observableMethodCall(pkg, sel):
			if !flushed(sel) {
				pass.Reportf(sel.Pos(),
					"observable %s() read in coroutine-side function %s before any op-buffer flush (call tc.sync() first: buffered ops have not been applied)",
					sel.Sel.Name, fd.Name.Name)
			}
		case observableFieldRead(pkg, sel):
			if !flushed(sel) {
				pass.Reportf(sel.Pos(),
					"runtime field %s read in coroutine-side function %s before any op-buffer flush (call tc.sync() first: buffered ops have not been applied)",
					sel.Sel.Name, fd.Name.Name)
			}
		}
		return true
	})
}

// flushingFuncs computes (once per Program) the set of functions that
// flush the op buffer, directly or through a chain of static calls —
// the interprocedural half of the flush recognizer.
func flushingFuncs(prog *Program) map[*types.Func]bool {
	return prog.cached("flushbefore.flushing", func() any {
		flushing := map[*types.Func]bool{}
		// Flags only accumulate, so the fixpoint is bounded by the longest
		// wrapper chain; cap the sweeps defensively.
		for sweep := 0; sweep < 10; sweep++ {
			changed := false
			for _, n := range prog.Graph().Nodes() {
				if n.Pkg == nil || n.Obj == nil || n.Body() == nil || flushing[n.Obj] {
					continue
				}
				found := false
				ast.Inspect(n.Body(), func(x ast.Node) bool {
					if found {
						return false
					}
					if _, ok := x.(*ast.FuncLit); ok {
						return false // a literal runs later, not in this call
					}
					if call, ok := x.(*ast.CallExpr); ok && isFlushCall(n.Pkg, call, flushing) {
						found = true
						return false
					}
					return true
				})
				if found {
					flushing[n.Obj] = true
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		return flushing
	}).(map[*types.Func]bool)
}

// isFlushCall recognizes the flush shapes: a call to a method named
// sync/Sync, yieldOp(opFlush{...}), or a call into a function the
// flushing-set fixpoint has proven to flush transitively.
func isFlushCall(pkg *Package, call *ast.CallExpr, flushing map[*types.Func]bool) bool {
	name := ""
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	}
	switch name {
	case "sync", "Sync":
		return true
	case "yieldOp":
		for _, arg := range call.Args {
			t := pkg.Info.TypeOf(arg)
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == "opFlush" {
				return true
			}
		}
	}
	if callee := StaticCallee(pkg, call); callee != nil && flushing[callee.Origin()] {
		return true
	}
	return false
}

// observableMethodCall reports whether sel names an observable method
// defined in a sim-core package.
func observableMethodCall(pkg *Package, sel *ast.SelectorExpr) bool {
	if !observableMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == pkg.ImportPath || hasPrefix(path, simCorePrefixes)
}

// observableFieldRead reports whether sel reads one of the runtime
// bookkeeping fields.
func observableFieldRead(pkg *Package, sel *ast.SelectorExpr) bool {
	if !observableFields[sel.Sel.Name] {
		return false
	}
	v, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}
