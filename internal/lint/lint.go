// Package lint implements emxvet, the repository's static-analysis
// suite. The whole reproduction rests on invariants that runtime tests
// can only sample: simulations are pure functions of core.RunIdentity
// (the content-addressed run cache and the golden panel hashes both
// assume bit-for-bit determinism), the scheduler fast lane stays
// allocation-free, and — since PR 6 — one simulation may be advanced by
// several engine shards whose interleaving must be unobservable. The
// analyzers here enforce those invariants structurally, at compile
// time.
//
// Intraprocedural suite (v1):
//
//   - detsource: no host clocks, global randomness, or environment
//     reads in determinism-critical packages (//emx:hostclock marks
//     the intentional host-observability sites)
//   - maporder: no iteration over Go maps in those packages unless the
//     keys are sorted before use, the loop body is order-invariant, or
//     the site carries //emx:orderinvariant
//   - hotalloc: functions marked //emx:hotpath must not create
//     closures, box non-pointer values into interfaces, or append to
//     slices that were not preallocated with an explicit capacity
//   - simtime: no negative or host-derived values flowing into the
//     simulated clock (sim.After and friends), and no arithmetic that
//     mixes host time with simulated cycle counts
//   - flushbefore: coroutine-side code must flush the thread's
//     operation buffer before observing engine or machine state, so
//     observations happen at true simulated time
//   - emxdirective: every //emx: directive is well-formed, known, and
//     not a silently-shadowed duplicate
//
// Interprocedural suite (v2), built on a whole-program call graph and
// a forward taint engine (callgraph.go, dataflow.go):
//
//   - shardaffinity: a handler-reachable function may resolve state
//     for at most one shard; cross-shard work goes through AtHandlerOn
//     (//emx:crossshard is the audited escape hatch)
//   - fingerprintpurity: a Config field excluded from Fingerprint must
//     not be read on a result-affecting path unless the field carries
//     //emx:nofingerprint
//   - obspurity: code reachable from obs hook entry points must not
//     write engine/machine state or charge cycles (//emx:obsexempt)
//   - hotpropagate: //emx:hotpath propagates through static calls, so
//     hot-path findings fire in helpers, with the propagation chain
//     attached to each diagnostic
//
// The suite is built directly on go/ast and go/types — the module is
// dependency-free, so there is no golang.org/x/tools here. Packages
// are loaded through `go list -export`, which supplies export data for
// dependencies from the build cache.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Related is a secondary position attached to a diagnostic: a
// propagation-chain step, the first conflicting shard access, a
// result-affecting read site.
type Related struct {
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Package  string         `json:"package,omitempty"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Related  []Related      `json:"related,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check. Run inspects a single package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package, plus the shared
// whole-program context for the interprocedural analyzers.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.ImportPath,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportRelated records a finding with secondary positions attached.
func (p *Pass) ReportRelated(pos token.Pos, related []Related, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Package:  p.Pkg.ImportPath,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Related:  related,
	})
}

// RelatedAt builds one Related note at a position of this pass's fset.
func (p *Pass) RelatedAt(pos token.Pos, format string, args ...any) Related {
	return Related{
		Pos:     p.Pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	}
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sources    map[string][]byte // file name -> content
	Directives *Directives
}

// Program is the whole set of packages one Run analyzes, with the
// lazily built interprocedural artifacts shared across analyzers (the
// call graph is built once, not per analyzer per package).
type Program struct {
	Pkgs []*Package

	graph *Graph
	cache map[string]any
}

// NewProgram wraps loaded packages for analysis.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs, cache: map[string]any{}}
}

// Graph returns the call graph, building it on first use.
func (prog *Program) Graph() *Graph {
	if prog.graph == nil {
		prog.graph = BuildGraph(prog.Pkgs)
	}
	return prog.graph
}

// cached memoizes an analyzer-level artifact (a reachability set, a
// summary table) under key for the lifetime of the Program. Run is
// single-threaded, so a plain map suffices.
func (prog *Program) cached(key string, build func() any) any {
	if v, ok := prog.cache[key]; ok {
		return v
	}
	v := build()
	prog.cache[key] = v
	return v
}

// Analyzers returns the full emxvet suite in reporting order. The
// interprocedural analyzers run after the intraprocedural ones so that
// directive consumption (hotalloc uses //emx:coldpath before
// hotpropagate audits leftovers) happens in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetSource,
		MapOrder,
		HotAlloc,
		SimTime,
		FlushBefore,
		EmxDirective,
		ShardAffinity,
		FingerprintPurity,
		ObsPurity,
		HotPropagate,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies each analyzer to each package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(NewProgram(pkgs), analyzers)
}

// RunProgram is Run over an explicit Program (lets callers build the
// program once and also dump its call graph).
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Prog:     prog,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
