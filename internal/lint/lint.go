// Package lint implements emxvet, the repository's static-analysis
// suite. The whole reproduction rests on two invariants that runtime
// tests can only sample: simulations are pure functions of
// core.RunIdentity (the content-addressed run cache and the golden
// panel hashes both assume bit-for-bit determinism), and the scheduler
// fast lane stays allocation-free. The analyzers here enforce those
// invariants structurally, at compile time:
//
//   - detsource: no host clocks, global randomness, or environment
//     reads in determinism-critical packages (//emx:hostclock marks
//     the intentional host-observability sites)
//   - maporder: no iteration over Go maps in those packages unless the
//     keys are sorted before use, the loop body is order-invariant, or
//     the site carries //emx:orderinvariant
//   - hotalloc: functions marked //emx:hotpath must not create
//     closures, box non-pointer values into interfaces, or append to
//     slices that were not preallocated with an explicit capacity
//   - simtime: no negative or host-derived values flowing into the
//     simulated clock (sim.After and friends), and no arithmetic that
//     mixes host time with simulated cycle counts
//   - flushbefore: coroutine-side code must flush the thread's
//     operation buffer before observing engine or machine state, so
//     observations happen at true simulated time
//   - emxdirective: every //emx: directive is well-formed and known
//     (typos and misplacements are errors, never silently ignored)
//
// The suite is built directly on go/ast and go/types — the module is
// dependency-free, so there is no golang.org/x/tools here. Packages
// are loaded through `go list -export`, which supplies export data for
// dependencies from the build cache.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check. Run inspects a single package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Sources    map[string][]byte // file name -> content
	Directives *Directives
}

// Analyzers returns the full emxvet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetSource,
		MapOrder,
		HotAlloc,
		SimTime,
		FlushBefore,
		EmxDirective,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies each analyzer to each package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
