package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseTestPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{
		ImportPath: "test",
		Fset:       fset,
		Files:      []*ast.File{f},
		Sources:    map[string][]byte{"test.go": []byte(src)},
	}
	pkg.Directives = parseDirectives(pkg)
	return pkg
}

func TestParseDirectiveComment(t *testing.T) {
	cases := []struct {
		text      string
		name      string
		args      string
		malformed bool
		nil_      bool
	}{
		{text: "//emx:hostclock", name: "hostclock"},
		{text: "//emx:hostclock wall-clock only", name: "hostclock", args: "wall-clock only"},
		{text: "//emx:orderinvariant", name: "orderinvariant"},
		{text: "//emx:hostclok", name: "hostclok"}, // unknown but well-formed
		{text: "// emx:hostclock", malformed: true},
		{text: "//  emx:hostclock", malformed: true},
		{text: "//emx:", malformed: true},
		{text: "//emx:Host", name: "Host", malformed: true}, // uppercase: not a directive word
		{text: "// ordinary comment", nil_: true},
		{text: "//go:build linux", nil_: true},
		{text: "/* emx:hostclock */", nil_: true}, // block comments cannot carry directives
	}
	for _, c := range cases {
		d := parseDirectiveComment(c.text)
		if c.nil_ {
			if d != nil {
				t.Errorf("%q: parsed as directive %+v, want plain comment", c.text, d)
			}
			continue
		}
		if d == nil {
			t.Errorf("%q: not recognized", c.text)
			continue
		}
		if d.Malformed != c.malformed {
			t.Errorf("%q: malformed = %v, want %v", c.text, d.Malformed, c.malformed)
		}
		if !c.malformed && (d.Name != c.name || d.Args != c.args) {
			t.Errorf("%q: parsed as (%q, %q), want (%q, %q)", c.text, d.Name, d.Args, c.name, c.args)
		}
	}
}

const directiveSrc = `// Package p is a test package.
//
//emx:determinism
package p

//emx:hostclock
var a = 1

var b = 2 //emx:hostclock trailing

//emx:orderinvariant
//emx:hotpath
func f() {}
`

func TestEffectiveLine(t *testing.T) {
	pkg := parseTestPkg(t, directiveSrc)

	// Standalone directive governs the next line.
	if d := pkg.Directives.At("test.go", 7, DirHostClock); d == nil {
		t.Error("standalone //emx:hostclock on line 6 must govern line 7")
	}
	// Trailing directive governs its own line.
	if d := pkg.Directives.At("test.go", 9, DirHostClock); d == nil {
		t.Error("trailing //emx:hostclock must govern its own line")
	} else if d.Args != "trailing" {
		t.Errorf("args = %q, want %q", d.Args, "trailing")
	}
	// Stacked directives both govern the declaration line.
	if pkg.Directives.At("test.go", 13, DirOrderInvariant) == nil {
		t.Error("stacked //emx:orderinvariant must govern line 13")
	}
	if pkg.Directives.At("test.go", 13, DirHotPath) == nil {
		t.Error("stacked //emx:hotpath must govern line 13")
	}
	// Package-level directive is excluded from line lookup.
	if pkg.Directives.At("test.go", 4, DirDeterminism) != nil {
		t.Error("package-level directive must not resolve via At")
	}
	if !pkg.Directives.HasPackageDirective(DirDeterminism) {
		t.Error("package doc //emx:determinism not found")
	}
}

func TestUnusedTracking(t *testing.T) {
	pkg := parseTestPkg(t, directiveSrc)
	if got := len(pkg.Directives.Unused(DirHostClock)); got != 2 {
		t.Fatalf("unused hostclock = %d, want 2", got)
	}
	d := pkg.Directives.At("test.go", 7, DirHostClock)
	pkg.Directives.Use(d)
	unused := pkg.Directives.Unused(DirHostClock)
	if len(unused) != 1 || unused[0].Line != 9 {
		t.Fatalf("after Use: unused = %+v, want only the line-9 directive", unused)
	}
	// HasPackageDirective consumes the package-level directive.
	pkg.Directives.HasPackageDirective(DirDeterminism)
	if len(pkg.Directives.Unused(DirDeterminism)) != 0 {
		t.Error("package-level determinism directive must be marked used by the classifier")
	}
}

func TestDirectiveMisuseIsReported(t *testing.T) {
	// A typo or misplacement must surface as a diagnostic somewhere —
	// either emxdirective (malformed/unknown) or the owning analyzer
	// (unused). Silently ignoring is the one forbidden outcome.
	src := `// Package p is a test package.
package p

// emx:hostclock
var a = 1

//emx:hotpth
var b = 2
`
	pkg := parseTestPkg(t, src)
	var diags []Diagnostic
	pass := &Pass{Analyzer: EmxDirective, Pkg: pkg, report: func(d Diagnostic) { diags = append(diags, d) }}
	EmxDirective.Run(pass)
	if len(diags) != 2 {
		t.Fatalf("diagnostics = %v, want malformed + unknown", diags)
	}
}
