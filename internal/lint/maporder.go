package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags iteration over Go maps in determinism-critical
// packages. Map iteration order is deliberately randomized by the
// runtime, so a map range feeding any ordered output (a slice, a
// writer, an output file) produces run-to-run differences — the
// classic silent-nondeterminism bug in simulator codebases.
//
// A map range is accepted when:
//   - the loop body is structurally order-invariant (it only writes
//     map entries, deletes keys, or accumulates with commutative
//     operators), or
//   - the loop only collects keys/values into a slice that is passed
//     to sort (or slices.Sort*) before the loop's function returns, or
//   - the statement carries //emx:orderinvariant, asserting a
//     commutative reduction the analyzer cannot prove.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration in determinism-critical packages unless sorted, order-invariant, or annotated",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	pkg := pass.Pkg
	if !isCritical(pkg) {
		for _, d := range pkg.Directives.Unused(DirOrderInvariant) {
			pass.Reportf(d.Pos, "//emx:orderinvariant has no effect outside determinism-critical packages")
		}
		return
	}

	for _, f := range pkg.Files {
		// Map each range statement to its innermost enclosing function
		// body, where the keys-sorted-before-use pattern is resolved.
		var funcs []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pkg.Info.TypeOf(rng.X)) {
				return true
			}
			if suppressedBy(pkg, rng, DirOrderInvariant) {
				return true
			}
			fn := innermost(funcs, rng.Pos())
			if mapRangeOK(pkg, rng, fn) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"iteration over map %s in determinism-critical package %s: sort the keys before use or mark the loop //emx:orderinvariant",
				exprString(pkg, rng.X), pkg.ImportPath)
			return true
		})
	}

	for _, d := range pkg.Directives.Unused(DirOrderInvariant) {
		pass.Reportf(d.Pos, "unused //emx:orderinvariant directive: no map iteration on line %d", d.EffectiveLine)
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// innermost returns the function node with the latest start position
// that still contains pos.
func innermost(funcs []ast.Node, pos token.Pos) ast.Node {
	var best ast.Node
	for _, fn := range funcs {
		if fn.Pos() <= pos && pos < fn.End() {
			if best == nil || fn.Pos() > best.Pos() {
				best = fn
			}
		}
	}
	return best
}

// mapRangeOK decides whether the map range is provably deterministic:
// either its body is order-invariant, or it only collects elements
// into slices that are sorted later in the enclosing function.
func mapRangeOK(pkg *Package, rng *ast.RangeStmt, fn ast.Node) bool {
	locals := localSet{}
	if rng.Tok == token.DEFINE {
		locals.addDefs(pkg, []ast.Expr{rng.Key, rng.Value})
	}
	collect := map[types.Object]bool{}
	for _, s := range rng.Body.List {
		if obj := collectAppendTarget(pkg, s, locals); obj != nil {
			collect[obj] = true
			continue
		}
		if !benignStmt(pkg, s, locals) {
			return false
		}
	}
	if len(collect) == 0 {
		return true // fully order-invariant body
	}
	if fn == nil {
		return false
	}
	body := funcBody(fn)
	for obj := range collect {
		if !sortedAfter(pkg, body, obj, rng.End()) {
			return false
		}
	}
	return true
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// localSet tracks identifiers declared inside the loop body; writing
// to them cannot leak iteration order out of the loop.
type localSet map[types.Object]bool

func (ls localSet) addDefs(pkg *Package, exprs []ast.Expr) {
	for _, e := range exprs {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				ls[obj] = true
			}
		}
	}
}

func (ls localSet) contains(pkg *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	return ls[pkg.Info.Uses[id]] || ls[pkg.Info.Defs[id]]
}

// benignStmt reports whether a statement inside a map range is
// structurally order-invariant.
func benignStmt(pkg *Package, s ast.Stmt, locals localSet) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.DEFINE:
			locals.addDefs(pkg, s.Lhs)
			return true
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			return true // commutative accumulation
		case token.ASSIGN:
			for _, lhs := range s.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapType(pkg.Info.TypeOf(idx.X)) {
					continue // keyed map write: order-free
				}
				if !locals.contains(pkg, lhs) {
					return false
				}
			}
			return true
		}
		return false
	case *ast.IncDecStmt:
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						if obj := pkg.Info.Defs[n]; obj != nil {
							locals[obj] = true
						}
					}
				}
			}
			return true
		}
		return false
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil && !benignStmt(pkg, s.Init, locals) {
			return false
		}
		if !benignBlock(pkg, s.Body, locals) {
			return false
		}
		if s.Else != nil {
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				return benignBlock(pkg, blk, locals)
			}
			if elif, ok := s.Else.(*ast.IfStmt); ok {
				return benignStmt(pkg, elif, locals)
			}
			return false
		}
		return true
	case *ast.BlockStmt:
		return benignBlock(pkg, s, locals)
	case *ast.RangeStmt:
		return benignBlock(pkg, s.Body, locals)
	case *ast.ForStmt:
		return benignBlock(pkg, s.Body, locals)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

func benignBlock(pkg *Package, blk *ast.BlockStmt, locals localSet) bool {
	for _, s := range blk.List {
		if !benignStmt(pkg, s, locals) {
			return false
		}
	}
	return true
}

// collectAppendTarget recognizes `x = append(x, ...)` (or :=) and
// returns the object of x when x is declared outside the loop —
// the keys-collection half of the collect-then-sort pattern.
func collectAppendTarget(pkg *Package, s ast.Stmt, locals localSet) types.Object {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil
	}
	if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); !isBuiltin {
		return nil
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return nil
	}
	obj := pkg.Info.Uses[lhs]
	if obj == nil {
		obj = pkg.Info.Defs[lhs]
	}
	if obj == nil || locals[obj] {
		return nil
	}
	return obj
}

// sortFuncs are the sorting entry points that discharge a collected
// slice: sort.X and slices.X.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj is passed to a sort function at a
// position after `after` within body.
func sortedAfter(pkg *Package, body *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || !sortFuncs[fn.Pkg().Path()][fn.Name()] {
			return true
		}
		ast.Inspect(call.Args[0], func(a ast.Node) bool {
			if id, ok := a.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

// exprString renders a short source form of an expression for
// diagnostics.
func exprString(pkg *Package, e ast.Expr) string {
	file := pkg.Fset.Position(e.Pos()).Filename
	src := pkg.Sources[file]
	start := pkg.Fset.Position(e.Pos()).Offset
	end := pkg.Fset.Position(e.End()).Offset
	if src == nil || start < 0 || end > len(src) || start >= end {
		return "?"
	}
	s := string(src[start:end])
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
