package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc enforces the 0 allocs/op property of functions marked
// //emx:hotpath — the calendar-queue ring/heap operations, handler
// dispatch, and the per-thread op-buffer replay. bench_test.go can
// only measure the property on the inputs it runs; this analyzer
// enforces it structurally on every path:
//
//   - no closure literals (a closure that captures anything heap-escapes)
//   - no boxing of non-pointer values into interfaces (constants and
//     pointer-shaped values are free; everything else allocates)
//   - no append to a slice that was not preallocated with an explicit
//     capacity in the same function (appends to struct fields and
//     parameters are assumed to be reused buffers)
//
// Cold error/diagnostic lines inside a hot function are exempted with
// //emx:coldpath.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "forbid closures, interface boxing, and unpreallocated appends in //emx:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hotPathMarked(pkg, fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	// Unused //emx:hotpath and //emx:coldpath hygiene is reported by
	// hotpropagate, which runs after every consumer of those directives
	// (including its own propagation pass) has claimed its sites.
}

// hotPathMarked reports whether fd carries //emx:hotpath, either in
// its doc comment or on the line above the declaration.
func hotPathMarked(pkg *Package, fd *ast.FuncDecl) bool {
	for _, d := range pkg.Directives.All() {
		if d.Name != DirHotPath || d.Malformed {
			continue
		}
		inDoc := fd.Doc != nil && d.Pos >= fd.Doc.Pos() && d.Pos < fd.Doc.End()
		file, line := nodeLine(pkg, fd)
		onLine := d.File == file && d.EffectiveLine == line
		if inDoc || onLine {
			pkg.Directives.Use(d)
			return true
		}
	}
	return false
}

// cold reports whether the node's line carries //emx:coldpath.
func cold(pkg *Package, n ast.Node) bool {
	return suppressedBy(pkg, n, DirColdPath)
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if !cold(pkg, n) {
				pass.Reportf(n.Pos(), "closure literal in hot-path function %s allocates", fd.Name.Name)
			}
			return false // the closure body is its own (cold) world
		case *ast.CallExpr:
			checkCall(pass, fd, n)
		case *ast.AssignStmt:
			checkAssign(pass, fd, n)
		case *ast.CompositeLit:
			checkCompositeLit(pass, fd, n)
		case *ast.ReturnStmt:
			checkReturn(pass, fd, n)
		case *ast.SendStmt:
			tgt := pkg.Info.TypeOf(n.Chan)
			if ch, ok := tgt.Underlying().(*types.Chan); ok {
				reportIfBoxed(pass, fd, n.Value, ch.Elem())
			}
		}
		return true
	})
}

// checkCall reports boxing through call arguments and unpreallocated
// appends.
func checkCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	pkg := pass.Pkg
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	switch {
	case tv.IsBuiltin():
		name := builtinName(call.Fun)
		switch name {
		case "append":
			checkAppend(pass, fd, call)
		case "panic":
			if len(call.Args) == 1 {
				reportIfBoxed(pass, fd, call.Args[0], types.NewInterfaceType(nil, nil))
			}
		}
	case tv.IsType():
		// Conversion T(x): boxing only when T is an interface.
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			reportIfBoxed(pass, fd, call.Args[0], tv.Type)
		}
	default:
		sig, ok := tv.Type.Underlying().(*types.Signature)
		if !ok {
			return
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					pt = params.At(params.Len() - 1).Type()
				} else {
					pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				}
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if pt != nil {
				reportIfBoxed(pass, fd, arg, pt)
			}
		}
	}
}

func builtinName(fun ast.Expr) string {
	if id, ok := fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func checkAssign(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value RHS: assignability is call-site driven
	}
	for i := range as.Lhs {
		lt := pass.Pkg.Info.TypeOf(as.Lhs[i])
		if lt != nil {
			reportIfBoxed(pass, fd, as.Rhs[i], lt)
		}
	}
}

func checkCompositeLit(pass *Pass, fd *ast.FuncDecl, cl *ast.CompositeLit) {
	pkg := pass.Pkg
	t := pkg.Info.TypeOf(cl)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				id, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for j := 0; j < u.NumFields(); j++ {
					if u.Field(j).Name() == id.Name {
						reportIfBoxed(pass, fd, kv.Value, u.Field(j).Type())
						break
					}
				}
			} else if i < u.NumFields() {
				reportIfBoxed(pass, fd, el, u.Field(i).Type())
			}
		}
	case *types.Slice:
		for _, el := range cl.Elts {
			reportIfBoxed(pass, fd, valueExpr(el), u.Elem())
		}
	case *types.Array:
		for _, el := range cl.Elts {
			reportIfBoxed(pass, fd, valueExpr(el), u.Elem())
		}
	case *types.Map:
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				reportIfBoxed(pass, fd, kv.Key, u.Key())
				reportIfBoxed(pass, fd, kv.Value, u.Elem())
			}
		}
	}
}

func valueExpr(el ast.Expr) ast.Expr {
	if kv, ok := el.(*ast.KeyValueExpr); ok {
		return kv.Value
	}
	return el
}

func checkReturn(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) {
	results := fd.Type.Results
	if results == nil {
		return
	}
	var rts []types.Type
	for _, fld := range results.List {
		t := pass.Pkg.Info.TypeOf(fld.Type)
		n := len(fld.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			rts = append(rts, t)
		}
	}
	if len(ret.Results) != len(rts) {
		return
	}
	for i, r := range ret.Results {
		reportIfBoxed(pass, fd, r, rts[i])
	}
}

// reportIfBoxed reports expr when assigning it to target boxes a
// non-pointer value into an interface. Constants are free (the
// compiler backs them with static data), as are pointer-shaped values
// (pointers, channels, maps, funcs, unsafe.Pointer).
func reportIfBoxed(pass *Pass, fd *ast.FuncDecl, expr ast.Expr, target types.Type) {
	pkg := pass.Pkg
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return // untyped or constant: no allocation
	}
	src := tv.Type
	if types.IsInterface(src) || isPointerShaped(src) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if cold(pkg, expr) {
		return
	}
	pass.Reportf(expr.Pos(),
		"value of type %s is boxed into an interface in hot-path function %s (wrap it in a pointer or move it off the hot path)",
		src.String(), fd.Name.Name)
}

func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// checkAppend flags append whose destination is a local slice that was
// not created with an explicit capacity in this function. Fields,
// parameters, and slices of unknown provenance are assumed to be
// reused, preallocated buffers (the engine's bucket/heap pattern).
func checkAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	pkg := pass.Pkg
	if len(call.Args) == 0 {
		return
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // field or indexed destination: reused buffer pattern
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	init, isLocal := localVarInit(pkg, fd, obj)
	if !isLocal {
		return // parameter or package-level: caller's responsibility
	}
	if preallocated(pkg, init) {
		return
	}
	if cold(pkg, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"append to slice %s not preallocated with make(..., cap) in hot-path function %s",
		id.Name, fd.Name.Name)
}

// localVarInit finds the declaration of obj inside fd and returns its
// initializer expression (nil when declared without one). The second
// result is false when obj is not declared in fd's body (it is a
// parameter, receiver, or package-level variable).
func localVarInit(pkg *Package, fd *ast.FuncDecl, obj types.Object) (ast.Expr, bool) {
	var init ast.Expr
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pkg.Info.Defs[id] != obj {
					continue
				}
				found = true
				if len(n.Rhs) == len(n.Lhs) {
					init = n.Rhs[i]
				}
				return false
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pkg.Info.Defs[name] != obj {
					continue
				}
				found = true
				if i < len(n.Values) {
					init = n.Values[i]
				}
				return false
			}
		}
		return true
	})
	return init, found
}

// preallocated reports whether init guarantees capacity: a make with
// an explicit size or capacity, or an expression the analyzer cannot
// see through (conservatively trusted).
func preallocated(pkg *Package, init ast.Expr) bool {
	switch init := init.(type) {
	case nil:
		return false // var x []T
	case *ast.CallExpr:
		if builtinName(init.Fun) == "make" {
			if tv, ok := pkg.Info.Types[init.Fun]; ok && tv.IsBuiltin() {
				if len(init.Args) >= 3 {
					return true // make([]T, n, c)
				}
				if len(init.Args) == 2 {
					// make([]T, n): capacity n; preallocated unless the
					// length is the constant 0.
					tv, ok := pkg.Info.Types[init.Args[1]]
					if ok && tv.Value != nil && tv.Value.String() == "0" {
						return false
					}
					return true
				}
				return false
			}
		}
		return true // result of another call: trusted
	case *ast.CompositeLit:
		return false // []T{...}: capacity == length, append reallocates
	case *ast.Ident:
		return init.Name != "nil"
	}
	return true
}
