package lint_test

import (
	"testing"

	"emx/internal/lint"
	"emx/internal/lint/linttest"
)

// Every analyzer is exercised against a fixture package holding both
// violations (lines with want comments) and deliberately clean code
// that must NOT be reported — linttest fails on unexpected findings,
// so the clean lines are as much a part of the test as the wanted ones.

func TestDetSourceCritical(t *testing.T) { linttest.Run(t, "detsource_crit", lint.DetSource) }

func TestDetSourceClean(t *testing.T) { linttest.Run(t, "detsource_clean", lint.DetSource) }

func TestMapOrder(t *testing.T) { linttest.Run(t, "maporder", lint.MapOrder) }

func TestHotAlloc(t *testing.T) { linttest.Run(t, "hotalloc", lint.HotAlloc) }

func TestSimTime(t *testing.T) { linttest.Run(t, "simtime", lint.SimTime) }

func TestFlushBefore(t *testing.T) { linttest.Run(t, "flushbefore", lint.FlushBefore) }

func TestDirective(t *testing.T) { linttest.Run(t, "directive", lint.EmxDirective) }

func TestShardAffinity(t *testing.T) { linttest.Run(t, "shardaffinity", lint.ShardAffinity) }

func TestFingerprintPurity(t *testing.T) { linttest.Run(t, "fingerprint", lint.FingerprintPurity) }

func TestObsPurity(t *testing.T) { linttest.Run(t, "obs", lint.ObsPurity) }

func TestHotPropagate(t *testing.T) { linttest.Run(t, "hotpropagate", lint.HotPropagate) }

func TestByName(t *testing.T) {
	for _, a := range lint.Analyzers() {
		if lint.ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not return the analyzer", a.Name)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName of unknown analyzer must return nil")
	}
}
