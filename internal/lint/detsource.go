package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetSource forbids nondeterministic value sources in
// determinism-critical packages: host clocks, the global math/rand
// functions, crypto/rand, and environment reads. Any of these leaking
// into a simulation or a figure-producing path silently corrupts the
// content-addressed run cache and the golden panel hashes.
//
// Intentional host-observability sites (wall-clock throughput
// measurement that never feeds back into simulated state) carry
// //emx:hostclock on the offending line.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "forbid host clocks, global randomness, and environment reads in determinism-critical packages",
	Run:  runDetSource,
}

// forbiddenFuncs maps package path -> function name -> true for the
// package-level functions detsource rejects. Methods (e.g. seeded
// *rand.Rand) are always fine: they are deterministic given the seed.
var forbiddenFuncs = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Tick": true,
		"After": true, "AfterFunc": true, "NewTimer": true,
		"NewTicker": true, "Sleep": true,
	},
	"os": {
		"Getenv": true, "LookupEnv": true, "Environ": true,
	},
	"math/rand": {
		// Everything driving the package-global source. Constructors
		// for explicitly seeded generators stay allowed.
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true,
		"Seed": true, "Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint32": true, "Uint32N": true,
		"Uint64": true, "Uint64N": true, "UintN": true, "N": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true,
	},
}

func runDetSource(pass *Pass) {
	pkg := pass.Pkg
	if !isCritical(pkg) {
		// Outside the critical set the checks do not run, so any
		// hostclock annotation is dead weight — say so rather than
		// letting it suggest protection that is not there.
		for _, d := range pkg.Directives.Unused(DirHostClock) {
			pass.Reportf(d.Pos, "//emx:hostclock has no effect outside determinism-critical packages")
		}
		return
	}

	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "crypto/rand" {
				pass.Reportf(imp.Pos(), "import of crypto/rand in determinism-critical package %s", pkg.ImportPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true
			}
			if !forbiddenFuncs[obj.Pkg().Path()][obj.Name()] {
				return true
			}
			if suppressedBy(pkg, sel, DirHostClock) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s is a nondeterministic source in determinism-critical package %s (annotate intentional host-observability sites with //emx:hostclock)",
				obj.Pkg().Name(), obj.Name(), pkg.ImportPath)
			return true
		})
	}

	for _, d := range pkg.Directives.Unused(DirHostClock) {
		pass.Reportf(d.Pos, "unused //emx:hostclock directive: no forbidden call on line %d", d.EffectiveLine)
	}
}
