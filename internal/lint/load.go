package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	DepOnly    bool
	GoFiles    []string
}

// Load resolves patterns with `go list -export -deps` (run in dir, or
// the current directory when dir is empty), parses the matched
// packages, and type-checks them against the export data the go
// command produced for their dependencies. Test files are not loaded:
// emxvet checks non-test code.
//
// The build cache supplies all export data, so loading works offline;
// the only requirement is that the matched packages compile.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export",
		"-json=Dir,ImportPath,Export,DepOnly,GoFiles",
		"-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package.
func check(fset *token.FileSet, imp types.Importer, lp listPkg) (*Package, error) {
	sources := make(map[string][]byte, len(lp.GoFiles))
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
		}
		sources[path] = src
		files = append(files, f)
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Sources:    sources,
	}
	pkg.Directives = parseDirectives(pkg)
	return pkg, nil
}
