package lint_test

import (
	"strings"
	"testing"

	"emx/internal/lint"
)

// loadGraph loads packages and builds their call graph.
func loadGraph(t *testing.T, patterns ...string) (*lint.Program, []string) {
	t.Helper()
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	prog := lint.NewProgram(pkgs)
	return prog, prog.Graph().DumpLines(pkgs[0].Fset)
}

// hasEdge reports whether the dump contains an edge matching every
// fragment (caller name, callee name, kind).
func hasEdge(lines []string, fragments ...string) bool {
	for _, line := range lines {
		ok := true
		for _, f := range fragments {
			if !strings.Contains(line, f) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestCallGraphFixture(t *testing.T) {
	_, lines := loadGraph(t, "emx/internal/lint/testdata/src/callgraph")
	pkg := "emx/internal/lint/testdata/src/callgraph"

	// Plain static call.
	if !hasEdge(lines, pkg+".direct -> "+pkg+".helper", "[direct]") {
		t.Errorf("missing direct edge direct -> helper\n%s", strings.Join(lines, "\n"))
	}
	// Method value: a reference, not a call.
	if !hasEdge(lines, pkg+".viaValue -> "+pkg+".(fast).run", "[ref]") {
		t.Errorf("missing ref edge viaValue -> (fast).run\n%s", strings.Join(lines, "\n"))
	}
	// Interface dispatch over-approximates: the abstract method AND
	// every loaded implementation, value or pointer receiver.
	for _, callee := range []string{".(runner).run", ".(fast).run", ".(slow).run"} {
		if !hasEdge(lines, pkg+".dispatch -> "+pkg+callee, "[iface]") {
			t.Errorf("missing iface edge dispatch -> %s\n%s", callee, strings.Join(lines, "\n"))
		}
	}
	// funcRunner lane: the closure handed to sim.After is a closure
	// edge, and its body keeps its own direct edges.
	if !hasEdge(lines, pkg+".schedule -> "+pkg+".func@line", "[closure]") {
		t.Errorf("missing closure edge schedule -> literal\n%s", strings.Join(lines, "\n"))
	}
	if !hasEdge(lines, pkg+".func@line", " -> "+pkg+".helper", "[direct]") {
		t.Errorf("missing direct edge literal -> helper\n%s", strings.Join(lines, "\n"))
	}
	// The scheduling call itself is a direct edge into the (body-less,
	// export-data-only) engine method.
	if !hasEdge(lines, pkg+".schedule -> emx/internal/sim.(Engine).After", "[direct]") {
		t.Errorf("missing direct edge schedule -> sim.(Engine).After\n%s", strings.Join(lines, "\n"))
	}
	// A direct call must not be double-counted as a reference.
	if hasEdge(lines, pkg+".direct -> "+pkg+".helper", "[ref]") {
		t.Errorf("direct call double-counted as ref\n%s", strings.Join(lines, "\n"))
	}
}

// TestCallGraphRealEngine loads the real scheduler package and checks
// the funcRunner lane end to end: Engine.At wraps the user closure, and
// the handler dispatch is visible as iface edges to OnEvent methods.
func TestCallGraphRealEngine(t *testing.T) {
	_, lines := loadGraph(t, "emx/internal/sim")

	// The closure-scheduling API exists and the package has literals.
	if !hasEdge(lines, "emx/internal/sim.", "[closure]") {
		t.Errorf("no closure edges in emx/internal/sim\n%s", strings.Join(lines, "\n"))
	}
	// Handler dispatch: something in sim calls Handler.OnEvent through
	// the interface, and funcRunner.OnEvent is among the conservative
	// targets.
	if !hasEdge(lines, " -> emx/internal/sim.(funcRunner).OnEvent", "[iface]") {
		t.Errorf("funcRunner.OnEvent not reached by iface dispatch\n%s", strings.Join(lines, "\n"))
	}
}

func TestReachAndChains(t *testing.T) {
	prog, _ := loadGraph(t, "emx/internal/lint/testdata/src/callgraph")
	g := prog.Graph()

	var schedule, helper, dispatch, slowRun *lint.FuncNode
	for _, n := range g.Nodes() {
		switch n.Name() {
		case "emx/internal/lint/testdata/src/callgraph.schedule":
			schedule = n
		case "emx/internal/lint/testdata/src/callgraph.helper":
			helper = n
		case "emx/internal/lint/testdata/src/callgraph.dispatch":
			dispatch = n
		case "emx/internal/lint/testdata/src/callgraph.(slow).run":
			slowRun = n
		}
	}
	if schedule == nil || helper == nil || dispatch == nil || slowRun == nil {
		t.Fatal("fixture nodes not found in graph")
	}

	// helper is reachable from schedule only through the closure edge.
	all := g.Reach([]*lint.FuncNode{schedule}, lint.AllEdges, nil)
	if !all.Has(helper) {
		t.Error("helper not reachable from schedule over all edges")
	}
	if chain := all.ChainString(helper); !strings.Contains(chain, "func@line") {
		t.Errorf("chain to helper should pass through the literal, got %q", chain)
	}
	directOnly := g.Reach([]*lint.FuncNode{schedule}, lint.EdgeDirect.Mask(), nil)
	if directOnly.Has(helper) {
		t.Error("helper must NOT be direct-reachable from schedule (closure boundary)")
	}

	// Interface dispatch is followed by the full-kind walk...
	fromDispatch := g.Reach([]*lint.FuncNode{dispatch}, lint.AllEdges, nil)
	if !fromDispatch.Has(slowRun) {
		t.Error("(slow).run not reachable from dispatch over iface edges")
	}
	// ...and pruned by a direct-only walk.
	fromDispatchDirect := g.Reach([]*lint.FuncNode{dispatch}, lint.EdgeDirect.Mask(), nil)
	if fromDispatchDirect.Has(slowRun) {
		t.Error("(slow).run must NOT be direct-reachable from dispatch")
	}
}
