package lint_test

import (
	"testing"

	"emx/internal/lint"
)

// TestRepositoryIsClean runs the full analyzer suite over the whole
// module — the same check CI's emxvet step performs. The repository
// must stay diagnostic-free: true positives get fixed, intentional
// sites get annotated, and this test catches both kinds of regression.
//
// Fixture packages live under testdata and are invisible to the
// wildcard, so their deliberate violations do not appear here.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("", "emx/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d findings: fix true positives or annotate intentional sites (//emx:hostclock, //emx:orderinvariant, //emx:coldpath, //emx:crossshard, //emx:nofingerprint, //emx:obsexempt)", len(diags))
	}
}
