package lint

import (
	"bytes"
	"go/ast"
	"go/token"
	"strings"
)

// Directive names understood by the suite. Anything else after //emx:
// is an error (emxdirective reports it), so a typo can never silently
// disable a check.
const (
	// DirHostClock marks an intentional host-clock call site
	// (observability code measuring how fast the host ran, never
	// feeding back into simulated state). Consumed by detsource.
	DirHostClock = "hostclock"
	// DirOrderInvariant marks a map iteration whose effect is
	// order-invariant (a commutative reduction). Consumed by maporder.
	DirOrderInvariant = "orderinvariant"
	// DirHotPath marks a function that must stay allocation-free.
	// Consumed by hotalloc.
	DirHotPath = "hotpath"
	// DirColdPath marks a line inside a hot-path function that is a
	// cold error/diagnostic path, exempt from hotalloc. Consumed by
	// hotalloc.
	DirColdPath = "coldpath"
	// DirDeterminism, in a package doc comment, opts the package into
	// the determinism-critical set (detsource, maporder, and the
	// strict simtime/flushbefore rules). Consumed by the package
	// classifier.
	DirDeterminism = "determinism"
	// DirCrossShard marks an audited line that intentionally touches
	// another shard's state or engine outside the AtHandlerOn channel.
	// Consumed by shardaffinity.
	DirCrossShard = "crossshard"
	// DirNoFingerprint, on a Config field declaration, attests that the
	// field is host-side only: excluded from Fingerprint AND proven not
	// to change simulation results (the Shards contract). Consumed by
	// fingerprintpurity.
	DirNoFingerprint = "nofingerprint"
	// DirObsHook marks a function declaration as an observability entry
	// point in addition to the built-in emx/internal/obs exports.
	// Consumed by obspurity.
	DirObsHook = "obshook"
	// DirObsExempt marks an audited line inside obs-reachable code that
	// intentionally touches machine state. Consumed by obspurity.
	DirObsExempt = "obsexempt"
)

var knownDirectives = map[string]bool{
	DirHostClock:      true,
	DirOrderInvariant: true,
	DirHotPath:        true,
	DirColdPath:       true,
	DirDeterminism:    true,
	DirCrossShard:     true,
	DirNoFingerprint:  true,
	DirObsHook:        true,
	DirObsExempt:      true,
}

// Directive is one parsed //emx: comment.
type Directive struct {
	Name string // directive name ("hostclock"); "" when malformed
	Args string // free text after the name
	Raw  string // the comment text as written
	Pos  token.Pos
	File string
	Line int // line the comment appears on

	// EffectiveLine is the code line a line-targeted directive governs:
	// its own line for a trailing comment, the next code line (skipping
	// blank and comment-only lines, so directives stack) when the
	// directive stands alone.
	EffectiveLine int
	// PackageLevel is set for directives in the package doc comment.
	PackageLevel bool
	// Malformed is set for near-miss spellings ("// emx:x", "//emx: x")
	// that Go would treat as plain comments.
	Malformed bool

	used bool
}

// Directives indexes the //emx: comments of one package.
type Directives struct {
	all []*Directive
}

// All returns every directive in the package.
func (ds *Directives) All() []*Directive { return ds.all }

// At returns the directive with the given name whose effective line is
// (file, line), or nil.
func (ds *Directives) At(file string, line int, name string) *Directive {
	for _, d := range ds.all {
		if d.Name == name && d.File == file && d.EffectiveLine == line && !d.PackageLevel {
			return d
		}
	}
	return nil
}

// Use marks a directive as consumed by its owning analyzer.
func (ds *Directives) Use(d *Directive) { d.used = true }

// Unused returns the directives with the given name that no analyzer
// consumed, in source order.
func (ds *Directives) Unused(name string) []*Directive {
	var out []*Directive
	for _, d := range ds.all {
		if d.Name == name && !d.used && !d.Malformed {
			out = append(out, d)
		}
	}
	return out
}

// HasPackageDirective reports whether any file's package doc carries
// the named directive. Package-level directives are consumed by the
// classifier, so they are always marked used.
func (ds *Directives) HasPackageDirective(name string) bool {
	for _, d := range ds.all {
		if d.Name == name && d.PackageLevel {
			d.used = true
			return true
		}
	}
	return false
}

// parseDirectives scans every comment of the package for //emx:
// directives and near-miss spellings.
func parseDirectives(pkg *Package) *Directives {
	ds := &Directives{}
	for _, f := range pkg.Files {
		file := pkg.Fset.Position(f.Pos()).Filename
		src := pkg.Sources[file]
		lines := bytes.Split(src, []byte("\n"))
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirectiveComment(c.Text)
				if d == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d.Pos = c.Pos()
				d.File = pos.Filename
				d.Line = pos.Line
				d.EffectiveLine = pos.Line
				if ownLine(src, pos) {
					d.EffectiveLine = nextCodeLine(lines, pos.Line)
				}
				d.PackageLevel = cg == f.Doc
				ds.all = append(ds.all, d)
			}
		}
	}
	return ds
}

// parseDirectiveComment classifies one comment's text: a well-formed
// //emx:name directive, a malformed near-miss, or (nil) an ordinary
// comment.
func parseDirectiveComment(text string) *Directive {
	if !strings.HasPrefix(text, "//") {
		return nil // block comments cannot carry directives
	}
	body := text[2:]
	switch {
	case strings.HasPrefix(body, "emx:"):
		rest := body[len("emx:"):]
		name, args, _ := strings.Cut(rest, " ")
		d := &Directive{Name: name, Args: strings.TrimSpace(args), Raw: text}
		if name == "" || !isDirectiveWord(name) {
			d.Malformed = true
		}
		return d
	case strings.HasPrefix(strings.TrimLeft(body, " \t"), "emx:"):
		// "// emx:hostclock" — spaced out, Go sees a plain comment.
		return &Directive{Raw: text, Malformed: true}
	}
	return nil
}

// isDirectiveWord reports whether s looks like a directive name
// (lowercase letters only). Unknown-but-well-formed names are reported
// by emxdirective as unknown rather than malformed.
func isDirectiveWord(s string) bool {
	for _, r := range s {
		if r < 'a' || r > 'z' {
			return false
		}
	}
	return len(s) > 0
}

// nextCodeLine returns the number of the first line after `line` that
// holds code (not blank, not a pure // comment), so stacked standalone
// directives all govern the declaration beneath them. Lines are
// 1-based.
func nextCodeLine(lines [][]byte, line int) int {
	for n := line + 1; n <= len(lines); n++ {
		s := bytes.TrimSpace(lines[n-1])
		if len(s) > 0 && !bytes.HasPrefix(s, []byte("//")) {
			return n
		}
	}
	return line + 1
}

// ownLine reports whether only whitespace precedes the comment on its
// line, i.e. the comment is not trailing code.
func ownLine(src []byte, pos token.Position) bool {
	if src == nil {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	for _, b := range src[start:pos.Offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// nodeLine returns the starting line of a node.
func nodeLine(pkg *Package, n ast.Node) (file string, line int) {
	p := pkg.Fset.Position(n.Pos())
	return p.Filename, p.Line
}

// suppressedBy reports whether a node's line carries the named
// directive, marking it used.
func suppressedBy(pkg *Package, n ast.Node, name string) bool {
	file, line := nodeLine(pkg, n)
	if d := pkg.Directives.At(file, line, name); d != nil {
		pkg.Directives.Use(d)
		return true
	}
	return false
}

// EmxDirective reports malformed, unknown, and duplicated //emx:
// comments. The per-analyzer "unused directive" checks catch correctly
// spelled directives on lines they do not govern; this analyzer catches
// the spellings Go would otherwise treat as ordinary comments, and
// stacked duplicates of the same directive on one declaration — the
// lookup answers with the first copy, so the later ones silently do
// nothing and usually indicate a botched merge.
var EmxDirective = &Analyzer{
	Name: "emxdirective",
	Doc:  "check that every //emx: directive is well-formed, known, correctly placed, and not a duplicate",
	Run:  runEmxDirective,
}

// directiveSite identifies where a directive takes effect, for
// duplicate detection: two well-formed copies of one name governing the
// same line (or both sitting in a package doc) shadow each other.
type directiveSite struct {
	name         string
	file         string
	line         int
	packageLevel bool
}

func runEmxDirective(pass *Pass) {
	seen := map[directiveSite]*Directive{}
	for _, d := range pass.Pkg.Directives.All() {
		switch {
		case d.Malformed:
			pass.Reportf(d.Pos, "malformed emx directive %q (want //emx:name, no spaces)", d.Raw)
		case !knownDirectives[d.Name]:
			pass.Reportf(d.Pos, "unknown emx directive //emx:%s (known: %s)", d.Name, knownNames())
		case d.Name == DirDeterminism && !d.PackageLevel:
			pass.Reportf(d.Pos, "//emx:determinism must appear in the package doc comment")
		default:
			site := directiveSite{d.Name, d.File, d.EffectiveLine, d.PackageLevel}
			if first, dup := seen[site]; dup {
				pass.ReportRelated(d.Pos,
					[]Related{pass.RelatedAt(first.Pos, "first //emx:%s here", d.Name)},
					"duplicate //emx:%s directive: an earlier copy already governs line %d",
					d.Name, d.EffectiveLine)
			} else {
				seen[site] = d
			}
		}
	}
}

func knownNames() string {
	return strings.Join([]string{
		DirColdPath, DirCrossShard, DirDeterminism, DirHostClock, DirHotPath,
		DirNoFingerprint, DirObsExempt, DirObsHook, DirOrderInvariant,
	}, ", ")
}
