// Package linttest runs analyzers over fixture packages and checks
// their findings against expectations written in the fixtures
// themselves — the same convention as golang.org/x/tools' analysistest,
// reduced to what the emxvet suite needs.
//
// A fixture is a real, compiling package under
// internal/lint/testdata/src/<name>. Lines expected to produce a
// diagnostic carry a trailing comment of the form
//
//	// want "substring" ["substring" ...]
//
// Each quoted string must be a substring of exactly one diagnostic
// reported on that line, and every diagnostic must be claimed by a
// want clause: extra findings and missing findings both fail the test.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"emx/internal/lint"
)

// fixtureImportPrefix is where fixture packages live. testdata is
// invisible to ./... wildcards, so fixtures never leak into ordinary
// builds, vet runs, or emxvet itself.
const fixtureImportPrefix = "emx/internal/lint/testdata/src/"

// want is one expectation: a diagnostic containing Substr on (File, Line).
type want struct {
	File    string
	Line    int
	Substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// Run loads the named fixture package, applies the analyzers, and
// fails the test on any mismatch between reported diagnostics and the
// fixture's want comments.
func Run(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load("", fixtureImportPrefix+fixture)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	diags := lint.Run(pkgs, analyzers)
	wants := collectWants(t, pkgs)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic containing %q was reported", w.File, w.Line, w.Substr)
		}
	}
}

// claim marks the first unmatched expectation satisfied by d.
func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.File == d.Pos.Filename && w.Line == d.Pos.Line &&
			w.Substr != "" && strings.Contains(d.Message, w.Substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants extracts want clauses from every comment in the loaded
// packages.
func collectWants(t *testing.T, pkgs []*lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range quotedRE.FindAllString(m[1], -1) {
						s, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
						}
						wants = append(wants, &want{File: pos.Filename, Line: pos.Line, Substr: s})
					}
				}
			}
		}
	}
	return wants
}
