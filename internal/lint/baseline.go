package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Baseline support for incremental adoption. A baseline file is simply
// a saved `emxvet -json` run: findings present in it are accepted debt
// and suppressed, anything new fails the build. The repository commits
// an EMPTY baseline (.emxvet-baseline.json) and CI asserts it stays
// empty — the mechanism exists for downstream forks and for landing a
// new analyzer before its annotation sweep, not as a place for findings
// to retire quietly.
//
// Matching deliberately ignores line and column: a baselined finding
// should survive unrelated edits above it. The key is (analyzer,
// package import path, file basename, message); duplicates are
// counted, so N baselined copies of one message suppress at most N
// findings. Baselines saved before diagnostics carried a package path
// have an empty Package and match findings from ANY package — keying
// on basename alone conflated same-named files (doc.go, main.go)
// across packages, so old baselines stay readable but new ones
// disambiguate.

// baselineKey identifies one finding independent of its exact position.
type baselineKey struct {
	Analyzer string
	Package  string // import path; empty in legacy baselines
	File     string // basename only: baselines survive checkout moves
	Message  string
}

func keyOf(d Diagnostic) baselineKey {
	return baselineKey{
		Analyzer: d.Analyzer,
		Package:  d.Package,
		File:     filepath.Base(d.Pos.Filename),
		Message:  d.Message,
	}
}

// Baseline is a parsed baseline file.
type Baseline struct {
	counts map[baselineKey]int
	// legacy counts entries whose baseline rows predate the Package
	// field; they match a finding from any package.
	legacy map[baselineKey]int
}

// LoadBaseline reads a baseline file (the JSON array emitted by
// `emxvet -json`).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("baseline %s: %w (want the JSON array emitted by emxvet -json)", path, err)
	}
	b := &Baseline{counts: map[baselineKey]int{}, legacy: map[baselineKey]int{}}
	for _, d := range diags {
		k := keyOf(d)
		if k.Package == "" {
			b.legacy[k]++
			continue
		}
		b.counts[k]++
	}
	return b, nil
}

// Size returns the number of baselined findings.
func (b *Baseline) Size() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	for _, c := range b.legacy {
		n += c
	}
	return n
}

// Filter splits diags into the findings not covered by the baseline
// (fresh — these fail the run) and the count of suppressed ones. Filter
// consumes the baseline's counts and must be called once.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, suppressed int) {
	for _, d := range diags {
		k := keyOf(d)
		if b.counts[k] > 0 {
			b.counts[k]--
			suppressed++
			continue
		}
		// Legacy rows have no package: match on the package-less key.
		k.Package = ""
		if b.legacy[k] > 0 {
			b.legacy[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, suppressed
}
