package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Baseline support for incremental adoption. A baseline file is simply
// a saved `emxvet -json` run: findings present in it are accepted debt
// and suppressed, anything new fails the build. The repository commits
// an EMPTY baseline (.emxvet-baseline.json) and CI asserts it stays
// empty — the mechanism exists for downstream forks and for landing a
// new analyzer before its annotation sweep, not as a place for findings
// to retire quietly.
//
// Matching deliberately ignores line and column: a baselined finding
// should survive unrelated edits above it. The key is (analyzer, file
// basename, message); duplicates are counted, so N baselined copies of
// one message suppress at most N findings.

// baselineKey identifies one finding independent of its exact position.
type baselineKey struct {
	Analyzer string
	File     string // basename only: baselines survive checkout moves
	Message  string
}

func keyOf(d Diagnostic) baselineKey {
	return baselineKey{
		Analyzer: d.Analyzer,
		File:     filepath.Base(d.Pos.Filename),
		Message:  d.Message,
	}
}

// Baseline is a parsed baseline file.
type Baseline struct {
	counts map[baselineKey]int
}

// LoadBaseline reads a baseline file (the JSON array emitted by
// `emxvet -json`).
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("baseline %s: %w (want the JSON array emitted by emxvet -json)", path, err)
	}
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, d := range diags {
		b.counts[keyOf(d)]++
	}
	return b, nil
}

// Size returns the number of baselined findings.
func (b *Baseline) Size() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter splits diags into the findings not covered by the baseline
// (fresh — these fail the run) and the count of suppressed ones. Filter
// consumes the baseline's counts and must be called once.
func (b *Baseline) Filter(diags []Diagnostic) (fresh []Diagnostic, suppressed int) {
	for _, d := range diags {
		k := keyOf(d)
		if b.counts[k] > 0 {
			b.counts[k]--
			suppressed++
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, suppressed
}
