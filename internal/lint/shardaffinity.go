package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// ShardAffinity enforces the ownership convention the parallel
// intra-run simulation (sim.Group, DESIGN.md §11) rests on: every piece
// of machine/network state belongs to exactly one shard, a handler runs
// on its owner's engine and touches only that shard's rows, and the
// only sanctioned cross-shard channel is scheduling an event on the
// owner via AtHandlerOn (the round-exchange path assigns it a globally
// consistent sequence number).
//
// The check is a taint analysis over handler-reachable code in
// simulation-core packages. Indexing a slice of *Engine resolves a
// shard identity; the index expression is the shard key, and every
// value derived from it (the engine, sibling per-shard rows indexed by
// the same key) belongs to that shard. A single handler-reachable
// function may resolve at most ONE shard key: touching a second shard's
// engine or rows from the same activation is exactly the bug class that
// breaks byte-determinism, because the intra-round interleaving of
// shards is unobservable only while their state stays disjoint.
//
// Sanctioned escapes:
//
//   - an engine passed as the first argument of AtHandlerOn may carry
//     any key — that IS the cross-shard channel, and the flow is
//     followed through helpers via call summaries;
//   - //emx:crossshard on the offending line marks an audited site
//     (construction-order code that must touch every shard, teardown).
//
// Ranging over an engine slice from handler context is reported
// unconditionally (modulo the directive): a handler that walks all
// shards' engines cannot be running on each of their owners at once.
var ShardAffinity = &Analyzer{
	Name: "shardaffinity",
	Doc:  "shard-owned state may only be touched from its owner's handlers; cross-shard work goes through AtHandlerOn",
	Run:  runShardAffinity,
}

// isEngineValue reports whether t is *Engine (any package's Engine —
// name-anchored so fixtures model the runtime with their own types).
func isEngineValue(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Engine"
}

// isEngineSlice reports whether t is a slice/array of *Engine.
func isEngineSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isEngineValue(u.Elem())
	case *types.Array:
		return isEngineValue(u.Elem())
	}
	return false
}

// handlerReach computes (once per Program) the functions reachable from
// event-handler entry points: OnEvent methods in sim-core-scope
// packages, plus closures passed to engine scheduling calls.
func handlerReach(prog *Program) *ReachSet {
	return prog.cached("shardaffinity.reach", func() any {
		g := prog.Graph()
		var roots []*FuncNode
		for _, pkg := range prog.Pkgs {
			if !isSimCore(pkg) {
				continue
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if fd.Recv != nil && fd.Name.Name == "OnEvent" &&
						fd.Type.Params != nil && len(fd.Type.Params.List) == 1 {
						if n := g.NodeOf(funcObj(pkg, fd)); n != nil {
							roots = append(roots, n)
						}
					}
				}
			}
			// Closures handed to engine scheduling calls run in handler
			// context too (the funcRunner lane).
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
					if !ok || (sel.Sel.Name != "After" && sel.Sel.Name != "At") {
						return true
					}
					if !isEngineValue(pkg.Info.TypeOf(sel.X)) {
						return true
					}
					for _, arg := range call.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							if ln := g.NodeOfLit(lit); ln != nil {
								roots = append(roots, ln)
							}
						}
					}
					return true
				})
			}
		}
		return g.Reach(roots, AllEdges, nil)
	}).(*ReachSet)
}

// engineSummaries computes (once per Program) how each function uses
// engine-typed parameters, so a resolved engine handed to a helper two
// calls deep still counts as touched.
func engineSummaries(prog *Program) *Summaries {
	return prog.cached("shardaffinity.summaries", func() any {
		return ComputeSummaries(prog, isEngineValue)
	}).(*Summaries)
}

func runShardAffinity(pass *Pass) {
	pkg := pass.Pkg
	if !isSimCore(pkg) {
		return
	}
	reach := handlerReach(pass.Prog)
	sums := engineSummaries(pass.Prog)
	g := pass.Prog.Graph()
	check := func(fd *ast.FuncDecl, body *ast.BlockStmt, name string, node *FuncNode) {
		if node == nil || !reach.Has(node) {
			return
		}
		checkShardFunc(pass, body, name, sums, reach, node)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(fd, fd.Body, fd.Name.Name, g.NodeOf(funcObj(pkg, fd)))
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if ln := g.NodeOfLit(lit); ln != nil && reach.Has(ln) {
						checkShardFunc(pass, lit.Body, "func literal", sums, reach, ln)
					}
				}
				return true
			})
		}
	}
	for _, d := range pkg.Directives.Unused(DirCrossShard) {
		pass.Reportf(d.Pos, "unused //emx:crossshard directive: no cross-shard finding suppressed on line %d", d.EffectiveLine)
	}
}

// shardUse is one site that commits the function to a shard key.
type shardUse struct {
	key  string // canonical key identity
	disp string // display form ("sh", "n.nodeSh[next]")
	pos  ast.Node
}

// checkShardFunc runs the single-shard-key rule over one body.
func checkShardFunc(pass *Pass, body *ast.BlockStmt, name string, sums *Summaries, reach *ReachSet, node *FuncNode) {
	pkg := pass.Pkg

	// keyOf canonicalizes an index expression into a shard key: the
	// variable object for identifiers, the expression text otherwise.
	keyObjects := map[types.Object]string{}
	keyDisplay := map[string]string{}
	keyOf := func(idx ast.Expr) (string, string) {
		idx = ast.Unparen(idx)
		if id, ok := idx.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				key := "var:" + id.Name + "@" + pkg.Fset.Position(obj.Pos()).String()
				keyObjects[obj] = key
				keyDisplay[key] = id.Name
				return key, id.Name
			}
		}
		s := types.ExprString(idx)
		key := "expr:" + s
		keyDisplay[key] = s
		return key, s
	}

	// Taint: values produced by indexing an engine slice carry their
	// shard key as a label.
	taint := NewTaint(pkg, func(expr ast.Expr) Labels {
		ix, ok := expr.(*ast.IndexExpr)
		if !ok || !isEngineSlice(pkg.Info.TypeOf(ix.X)) {
			return nil
		}
		key, _ := keyOf(ix.Index)
		return Labels{key: true}
	}, nil)
	taint.Run(body)

	// handled marks engine-valued expressions already judged at their
	// call site (sanctioned AtHandlerOn targets, arguments resolved
	// through callee summaries), so the raw IndexExpr walk below does
	// not second-guess the interprocedural verdict.
	handled := map[ast.Expr]bool{}

	var uses []shardUse
	addUse := func(labels Labels, n ast.Node) {
		for key := range labels {
			uses = append(uses, shardUse{key: key, disp: keyDisplay[key], pos: n})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own handler-reachable node
		case *ast.RangeStmt:
			if isEngineSlice(pkg.Info.TypeOf(n.X)) {
				if !suppressedBy(pkg, n, DirCrossShard) {
					pass.Reportf(n.Pos(),
						"handler-reachable %s iterates all engine shards (shard-owned state must be touched from its owner; annotate //emx:crossshard if audited)",
						name)
				}
			}
		case *ast.IndexExpr:
			if handled[n] {
				return true
			}
			// Indexing any collection with an established shard key
			// touches that shard's row.
			if idx, ok := ast.Unparen(n.Index).(*ast.Ident); ok {
				if key, ok := keyObjects[pkg.Info.Uses[idx]]; ok {
					uses = append(uses, shardUse{key: key, disp: keyDisplay[key], pos: n})
					return true
				}
			}
			// Indexing an engine slice by a non-identifier expression
			// resolves a key: a use in its own right.
			if isEngineSlice(pkg.Info.TypeOf(n.X)) {
				key, disp := keyOf(n.Index)
				uses = append(uses, shardUse{key: key, disp: disp, pos: n})
			}
		case *ast.CallExpr:
			sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if isSel {
				// A method invoked on a keyed engine value commits to
				// that key (receiver side).
				if labels := taint.Of(sel.X); len(labels) > 0 && isEngineValue(pkg.Info.TypeOf(sel.X)) {
					addUse(labels, n)
					handled[ast.Unparen(sel.X)] = true
				}
			}
			for i, arg := range n.Args {
				if !isEngineValue(pkg.Info.TypeOf(arg)) {
					continue
				}
				// The call site owns the verdict for this engine value;
				// the IndexExpr walk must not re-judge it.
				handled[ast.Unparen(arg)] = true
				if isSel && sel.Sel.Name == "AtHandlerOn" && i == 0 {
					continue // the sanctioned cross-shard channel
				}
				labels := taint.Of(arg)
				if len(labels) == 0 {
					continue
				}
				// Follow the engine into the callee: only flag if the
				// callee (transitively) consumes it as state.
				use := ParamUsed
				if callee := StaticCallee(pkg, n); callee != nil {
					if cn := pass.Prog.Graph().NodeOf(callee); cn != nil && cn.Decl != nil {
						use = sums.Use(cn, i)
					}
				}
				if use&ParamUsed != 0 {
					addUse(labels, arg)
				}
			}
		}
		return true
	})

	if len(uses) == 0 {
		return
	}
	// One verdict per shard key, anchored at its first use; the earliest
	// key is the function's rightful shard, every later one a violation.
	sort.SliceStable(uses, func(i, j int) bool { return uses[i].pos.Pos() < uses[j].pos.Pos() })
	first := map[string]shardUse{}
	var order []string
	for _, u := range uses {
		if _, ok := first[u.key]; !ok {
			first[u.key] = u
			order = append(order, u.key)
		}
	}
	primary := first[order[0]]
	for _, key := range order[1:] {
		u := first[key]
		if suppressedBy(pkg, u.pos, DirCrossShard) {
			continue
		}
		related := []Related{pass.RelatedAt(primary.pos.Pos(), "shard key %q first resolved here", primary.disp)}
		if chain := reach.Chain(node); len(chain) > 0 {
			related = append(related, pass.RelatedAt(chain[0].Pos, "handler-reachable via %s", reach.ChainString(node)))
		}
		pass.ReportRelated(u.pos.Pos(), related,
			"cross-shard access in handler-reachable %s: state keyed by %q is touched alongside shard key %q (route cross-shard work through AtHandlerOn or annotate //emx:crossshard)",
			name, u.disp, primary.disp)
	}
}
