package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The call graph is the interprocedural backbone of the v2 analyzers:
// shardaffinity, obspurity, fingerprintpurity, and hotpropagate all
// reason about what is reachable from a set of entry points, and the
// taint engine (dataflow.go) consults it for call summaries. The graph
// is built once per Program from the loaded ASTs — stdlib-only, no SSA:
// nodes are named functions (including methods) and function literals,
// and edges come in four kinds:
//
//   - EdgeDirect: a static call to a named function or a method on a
//     concrete receiver type.
//   - EdgeClosure: a function literal appearing syntactically inside a
//     function body. The literal may run later (scheduled via sim.After,
//     stored in a struct), so containment is treated as a may-call edge.
//   - EdgeRef: a function or method referenced as a value (a method
//     value like h.handle, a function passed as a callback). The
//     reference site may invoke it arbitrarily later.
//   - EdgeIface: a call through an interface method. The graph
//     over-approximates conservatively: one edge to the interface
//     method itself plus one edge to every concrete method in the
//     loaded packages whose type implements the interface.
//
// Only packages loaded as targets contribute bodies; calls into
// dependency-only packages (stdlib, export-data-only deps) produce
// body-less nodes where traversals simply stop.

// EdgeKind classifies one call-graph edge.
type EdgeKind uint8

const (
	EdgeDirect EdgeKind = iota
	EdgeClosure
	EdgeRef
	EdgeIface
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeClosure:
		return "closure"
	case EdgeRef:
		return "ref"
	case EdgeIface:
		return "iface"
	}
	return "?"
}

// EdgeKindMask selects edge kinds for a traversal.
type EdgeKindMask uint8

// Mask returns the single-kind mask for k.
func (k EdgeKind) Mask() EdgeKindMask { return 1 << k }

// AllEdges traverses every edge kind.
const AllEdges EdgeKindMask = 1<<EdgeDirect | 1<<EdgeClosure | 1<<EdgeRef | 1<<EdgeIface

// FuncNode is one function in the call graph: a named function/method
// (Obj set) or a function literal (Lit set). Pkg and Decl are non-nil
// only when the body was loaded as a target package.
type FuncNode struct {
	Obj  *types.Func   // nil for literals
	Lit  *ast.FuncLit  // nil for named functions
	Pkg  *Package      // package holding the body; nil for external functions
	Decl *ast.FuncDecl // declaration, when the body is loaded

	out []*Edge
}

// Body returns the function's body block, or nil when it is external.
func (n *FuncNode) Body() *ast.BlockStmt {
	switch {
	case n.Lit != nil:
		return n.Lit.Body
	case n.Decl != nil:
		return n.Decl.Body
	}
	return nil
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	switch {
	case n.Lit != nil:
		return n.Lit.Pos()
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Obj != nil:
		return n.Obj.Pos()
	}
	return token.NoPos
}

// Name returns a stable human-readable name: pkgpath.Func,
// pkgpath.(Recv).Method, or pkgpath.parent.func@line for literals.
func (n *FuncNode) Name() string {
	if n.Obj != nil {
		recv := n.Obj.Type().(*types.Signature).Recv()
		pkg := ""
		if n.Obj.Pkg() != nil {
			pkg = n.Obj.Pkg().Path() + "."
		}
		if recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return fmt.Sprintf("%s(%s).%s", pkg, named.Obj().Name(), n.Obj.Name())
			}
		}
		return pkg + n.Obj.Name()
	}
	if n.Lit != nil && n.Pkg != nil {
		pos := n.Pkg.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("%s.func@line%d", n.Pkg.ImportPath, pos.Line)
	}
	return "func@?"
}

// Out returns the node's outgoing edges in source order.
func (n *FuncNode) Out() []*Edge { return n.out }

// Edge is one may-call relation, anchored at the call/reference site.
type Edge struct {
	From, To *FuncNode
	Kind     EdgeKind
	Pos      token.Pos
}

// Graph is the whole-program call graph over the loaded packages.
type Graph struct {
	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	nodes []*FuncNode // declaration order across packages

	// implCache memoizes interface-method -> concrete implementations.
	implCache map[*types.Func][]*types.Func
	// named is every named (non-interface) type of the loaded packages,
	// in deterministic (package, name) order, for implementation search.
	named []*types.Named
}

// Nodes returns every node in declaration order.
func (g *Graph) Nodes() []*FuncNode { return g.nodes }

// NodeOf returns the node for a named function, or nil. Generic
// instantiations are folded onto their origin.
func (g *Graph) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.byObj[fn.Origin()]
}

// NodeOfLit returns the node for a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// BuildGraph constructs the call graph for the loaded packages.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		byObj:     map[*types.Func]*FuncNode{},
		byLit:     map[*ast.FuncLit]*FuncNode{},
		implCache: map[*types.Func][]*types.Func{},
	}
	g.collectNamedTypes(pkgs)
	// First pass: a node per declared function, so cross-package direct
	// edges resolve to the declaring node regardless of build order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: fn, Pkg: pkg, Decl: fd}
				g.byObj[fn] = node
				g.nodes = append(g.nodes, node)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					if from := g.byObj[pkg.Info.Defs[fd.Name].(*types.Func)]; from != nil {
						g.walkBody(pkg, from, fd.Body)
					}
				}
			}
		}
	}
	return g
}

// collectNamedTypes gathers the concrete named types of the loaded
// packages in deterministic order for interface-implementation search.
func (g *Graph) collectNamedTypes(pkgs []*Package) {
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
	}
}

// walkBody records edges for one function body, descending into nested
// literals with the literal as the new source.
func (g *Graph) walkBody(pkg *Package, from *FuncNode, body *ast.BlockStmt) {
	// callFuns marks expressions appearing in call position, so the ref
	// pass below does not double-count a direct call as a reference.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[call.Fun] = true
			if p, ok := call.Fun.(*ast.ParenExpr); ok {
				callFuns[p.X] = true
			}
		}
		return true
	})
	var walk func(n ast.Node, from *FuncNode)
	walk = func(n ast.Node, from *FuncNode) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lit := g.litNode(pkg, n)
				g.addEdge(from, lit, EdgeClosure, n.Pos())
				walk(n.Body, lit)
				return false
			case *ast.CallExpr:
				g.callEdges(pkg, from, n)
			case *ast.Ident:
				if !callFuns[n] {
					g.refEdge(pkg, from, n, n)
				}
			case *ast.SelectorExpr:
				if !callFuns[n] {
					g.refEdge(pkg, from, n.Sel, n)
				}
				// Do not descend past the selector: n.Sel would be
				// revisited as a bare Ident and double-count the call
				// or reference.
				walk(n.X, from)
				return false
			}
			return true
		})
	}
	walk(body, from)
}

// litNode returns (creating on first use) the node for a literal.
func (g *Graph) litNode(pkg *Package, lit *ast.FuncLit) *FuncNode {
	if n, ok := g.byLit[lit]; ok {
		return n
	}
	n := &FuncNode{Lit: lit, Pkg: pkg}
	g.byLit[lit] = n
	g.nodes = append(g.nodes, n)
	return n
}

// extNode returns (creating on first use) the node for a function whose
// body is not loaded (dependency-only packages, interface methods).
func (g *Graph) extNode(fn *types.Func) *FuncNode {
	fn = fn.Origin()
	if n, ok := g.byObj[fn]; ok {
		return n
	}
	n := &FuncNode{Obj: fn}
	g.byObj[fn] = n
	g.nodes = append(g.nodes, n)
	return n
}

func (g *Graph) addEdge(from, to *FuncNode, kind EdgeKind, pos token.Pos) {
	if from == nil || to == nil {
		return
	}
	from.out = append(from.out, &Edge{From: from, To: to, Kind: kind, Pos: pos})
}

// callEdges resolves one call expression to its callee edges.
func (g *Graph) callEdges(pkg *Package, from *FuncNode, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			g.addEdge(from, g.extNode(fn), EdgeDirect, call.Pos())
		}
	case *ast.FuncLit:
		g.addEdge(from, g.litNode(pkg, fun), EdgeDirect, call.Pos())
	case *ast.SelectorExpr:
		sel, isSel := pkg.Info.Selections[fun]
		fn, isFn := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !isFn {
			return
		}
		if isSel && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if types.IsInterface(recv) {
				g.ifaceEdges(from, fn, call.Pos())
				return
			}
		}
		g.addEdge(from, g.extNode(fn), EdgeDirect, call.Pos())
	}
}

// refEdge records a function referenced as a value (method value, func
// passed as callback, method expression).
func (g *Graph) refEdge(pkg *Package, from *FuncNode, id *ast.Ident, site ast.Expr) {
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	// A reference to an interface method (method value on an interface)
	// fans out like a dispatch site.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			g.ifaceEdges(from, fn, site.Pos())
			return
		}
	}
	g.addEdge(from, g.extNode(fn), EdgeRef, site.Pos())
}

// ifaceEdges adds the conservative dispatch edges for a call through
// interface method m: the abstract method plus every concrete method of
// a loaded named type implementing the interface.
func (g *Graph) ifaceEdges(from *FuncNode, m *types.Func, pos token.Pos) {
	g.addEdge(from, g.extNode(m), EdgeIface, pos)
	for _, impl := range g.implementations(m) {
		g.addEdge(from, g.extNode(impl), EdgeIface, pos)
	}
}

// implementations returns the concrete methods satisfying interface
// method m among the loaded named types, memoized per method.
func (g *Graph) implementations(m *types.Func) []*types.Func {
	m = m.Origin()
	if impls, ok := g.implCache[m]; ok {
		return impls
	}
	var impls []*types.Func
	recv := m.Type().(*types.Signature).Recv()
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if ok {
		for _, named := range g.named {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				impls = append(impls, fn)
			}
		}
	}
	g.implCache[m] = impls
	return impls
}

// ReachSet is the result of a reachability traversal: membership plus
// the BFS parent edge of every reached node, for chain reconstruction.
type ReachSet struct {
	parent map[*FuncNode]*Edge // nil parent: a root
	member map[*FuncNode]bool
}

// Has reports whether n was reached.
func (r *ReachSet) Has(n *FuncNode) bool { return n != nil && r.member[n] }

// Chain returns the edges of a shortest root-to-n path, root side first.
// A root returns an empty chain.
func (r *ReachSet) Chain(n *FuncNode) []*Edge {
	var chain []*Edge
	for e := r.parent[n]; e != nil; e = r.parent[e.From] {
		chain = append(chain, e)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// ChainString renders a chain as "a → b → c" ending at n.
func (r *ReachSet) ChainString(n *FuncNode) string {
	chain := r.Chain(n)
	if len(chain) == 0 {
		return n.Name()
	}
	parts := make([]string, 0, len(chain)+1)
	parts = append(parts, chain[0].From.Name())
	for _, e := range chain {
		parts = append(parts, e.To.Name())
	}
	return strings.Join(parts, " -> ")
}

// Reach runs a deterministic BFS from roots over the selected edge
// kinds. stop, when non-nil, prunes a node: it is still reached, but
// its outgoing edges are not followed.
func (g *Graph) Reach(roots []*FuncNode, kinds EdgeKindMask, stop func(*FuncNode) bool) *ReachSet {
	r := &ReachSet{parent: map[*FuncNode]*Edge{}, member: map[*FuncNode]bool{}}
	var queue []*FuncNode
	for _, n := range roots {
		if n == nil || r.member[n] {
			continue
		}
		r.member[n] = true
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if stop != nil && stop(n) {
			continue
		}
		for _, e := range n.out {
			if kinds&e.Kind.Mask() == 0 || r.member[e.To] {
				continue
			}
			r.member[e.To] = true
			r.parent[e.To] = e
			queue = append(queue, e.To)
		}
	}
	return r
}

// DumpLines renders every edge as "caller -> callee [kind] @ file:line",
// sorted, for the emxvet -graph debug dump.
func (g *Graph) DumpLines(fset *token.FileSet) []string {
	var lines []string
	for _, n := range g.nodes {
		for _, e := range n.out {
			pos := ""
			if fset != nil && e.Pos.IsValid() {
				p := fset.Position(e.Pos)
				pos = fmt.Sprintf(" @ %s:%d", p.Filename, p.Line)
			}
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]%s", e.From.Name(), e.To.Name(), e.Kind, pos))
		}
	}
	sort.Strings(lines)
	return lines
}
