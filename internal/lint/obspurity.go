package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ObsPurity keeps observability observational. The tracer/profiler
// surface (emx/internal/obs) is wired into the engine's hottest paths
// and is explicitly allowed to READ simulated state — but the moment a
// hook mutates an engine, schedules work, or charges cycles, enabling
// tracing changes the simulation it claims to describe, and the golden
// panel hashes diverge between traced and untraced runs of the same
// RunIdentity.
//
// The analyzer walks the whole call graph from the obs entry points
// (every exported function/method of an obs package, plus any function
// marked //emx:obshook) and flags, in the reachable set:
//
//   - calls to mutating methods of the runtime state types (Engine,
//     Group, Machine, TC, Network, Resource) — a read-only allowlist
//     (Now, Snapshot, Shards, ...) is exempt;
//   - assignments that write through a value of those types;
//   - calls to cycle-charging functions (Charge*/charge*).
//
// //emx:obsexempt on the offending line is the audited escape hatch.
// Each finding carries the chain from the obs entry point, so a write
// buried two helpers deep still explains how tracing reaches it.
var ObsPurity = &Analyzer{
	Name: "obspurity",
	Doc:  "code reachable from obs hooks must not write engine/machine state or charge cycles",
	Run:  runObsPurity,
}

// obsStateTypes are the runtime state types an observability hook may
// read but never mutate.
var obsStateTypes = map[string]bool{
	"Engine":   true,
	"Group":    true,
	"Machine":  true,
	"TC":       true,
	"Network":  true,
	"Resource": true,
}

// obsPureMethods are the read-only methods of those types.
var obsPureMethods = map[string]bool{
	"Now":             true,
	"Events":          true,
	"Pending":         true,
	"Snapshot":        true,
	"Stopped":         true,
	"Shards":          true,
	"P":               true,
	"RouteHops":       true,
	"UnloadedLatency": true,
	"FreeAt":          true,
	"Seconds":         true,
	"Micros":          true,
	"String":          true,
}

// isObsPackage reports whether the package is an observability package:
// the real emx/internal/obs or any .../obs (which is how the fixture
// models it).
func isObsPackage(pkg *Package) bool {
	return pkg.ImportPath == "emx/internal/obs" || strings.HasSuffix(pkg.ImportPath, "/obs")
}

// obsStateValue reports whether t is (a pointer to) one of the runtime
// state types.
func obsStateValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && obsStateTypes[named.Obj().Name()]
}

// obsHookMarked reports whether fd carries //emx:obshook, consuming it.
func obsHookMarked(pkg *Package, fd *ast.FuncDecl) bool {
	for _, d := range pkg.Directives.All() {
		if d.Name != DirObsHook || d.Malformed {
			continue
		}
		inDoc := fd.Doc != nil && d.Pos >= fd.Doc.Pos() && d.Pos < fd.Doc.End()
		file, line := nodeLine(pkg, fd)
		onLine := d.File == file && d.EffectiveLine == line
		if inDoc || onLine {
			pkg.Directives.Use(d)
			return true
		}
	}
	return false
}

// obsReach computes (once per Program) everything reachable from the
// observability entry points.
func obsReach(prog *Program) *ReachSet {
	return prog.cached("obspurity.reach", func() any {
		g := prog.Graph()
		var roots []*FuncNode
		for _, pkg := range prog.Pkgs {
			obsPkg := isObsPackage(pkg)
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if (obsPkg && fd.Name.IsExported()) || obsHookMarked(pkg, fd) {
						if n := g.NodeOf(funcObj(pkg, fd)); n != nil {
							roots = append(roots, n)
						}
					}
				}
			}
		}
		return g.Reach(roots, AllEdges, nil)
	}).(*ReachSet)
}

func runObsPurity(pass *Pass) {
	pkg := pass.Pkg
	reach := obsReach(pass.Prog)
	g := pass.Prog.Graph()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if node := g.NodeOf(funcObj(pkg, fd)); node != nil && reach.Has(node) {
				checkObsFunc(pass, fd.Body, fd.Name.Name, reach, node)
			}
			// Literals inside are their own nodes; a stored closure can be
			// obs-reachable even when its container is not.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if ln := g.NodeOfLit(lit); ln != nil && reach.Has(ln) {
						checkObsFunc(pass, lit.Body, "func literal", reach, ln)
					}
				}
				return true
			})
		}
	}
	for _, d := range pkg.Directives.Unused(DirObsHook) {
		pass.Reportf(d.Pos, "unused //emx:obshook directive: not attached to a function declaration")
	}
	for _, d := range pkg.Directives.Unused(DirObsExempt) {
		pass.Reportf(d.Pos, "unused //emx:obsexempt directive: no obs-purity finding suppressed on line %d", d.EffectiveLine)
	}
}

// checkObsFunc flags state mutations in one obs-reachable body.
func checkObsFunc(pass *Pass, body *ast.BlockStmt, name string, reach *ReachSet, node *FuncNode) {
	pkg := pass.Pkg
	report := func(n ast.Node, format string, args ...any) {
		if suppressedBy(pkg, n, DirObsExempt) {
			return
		}
		var related []Related
		if chain := reach.Chain(node); len(chain) > 0 {
			related = append(related,
				pass.RelatedAt(chain[0].From.Pos(), "reachable from obs entry point via %s", reach.ChainString(node)))
		}
		pass.ReportRelated(n.Pos(), related, format, args...)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own obs-reachable node, checked separately
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && strings.HasPrefix(strings.ToLower(id.Name), "charge") {
					report(n, "obs-reachable %s charges cycles via %s (observability must not change simulated cost)", name, id.Name)
				}
				return true
			}
			if strings.HasPrefix(strings.ToLower(sel.Sel.Name), "charge") {
				report(n, "obs-reachable %s charges cycles via %s (observability must not change simulated cost)", name, sel.Sel.Name)
				return true
			}
			if obsStateValue(pkg.Info.TypeOf(sel.X)) && !obsPureMethods[sel.Sel.Name] {
				// Only flag real methods, not func-typed field accesses.
				if _, isFn := pkg.Info.Uses[sel.Sel].(*types.Func); isFn {
					report(n, "obs-reachable %s calls mutating method %s on %s (observability must stay read-only)",
						name, sel.Sel.Name, typeDisplay(pkg.Info.TypeOf(sel.X)))
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if base := writeBase(lhs); base != nil && obsStateValue(pkg.Info.TypeOf(base)) {
					report(lhs, "obs-reachable %s writes %s state (observability must stay read-only)",
						name, typeDisplay(pkg.Info.TypeOf(base)))
				}
			}
		case *ast.IncDecStmt:
			if base := writeBase(n.X); base != nil && obsStateValue(pkg.Info.TypeOf(base)) {
				report(n, "obs-reachable %s writes %s state (observability must stay read-only)",
					name, typeDisplay(pkg.Info.TypeOf(base)))
			}
		}
		return true
	})
}

// writeBase unwraps an assignment target down to the value being
// written through: x in x.f = v, x.f[i] = v, (*x).f = v. A bare
// identifier target is a local rebind, not a state write.
func writeBase(lhs ast.Expr) ast.Expr {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			return e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			return e.X
		default:
			return nil
		}
	}
}

// typeDisplay names a state type for diagnostics.
func typeDisplay(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
