package lint

import "strings"

// The determinism-critical package sets. Two tiers:
//
//   - critical: packages whose output must be bit-for-bit reproducible
//     — the simulator, its figure-producing pipeline, and the serving
//     layer whose CSV/JSON/metrics dumps are compared across runs.
//     detsource and maporder apply here.
//
//   - simCore: the simulation proper, where *all* time is cycle
//     counts. The strict simtime mixing rule and flushbefore apply
//     here; host-observability fields (Run.HostElapsedSecs) legally
//     mix with cycle counts one level up, in the critical tier.
//
// A package outside these lists opts in by carrying //emx:determinism
// in its package doc comment (that grants both tiers). To grow the
// static set instead, add the import path prefix below and document it
// in DESIGN.md.
var (
	criticalPrefixes = []string{
		"emx/internal/core",
		"emx/internal/sim",
		"emx/internal/network",
		"emx/internal/memory",
		"emx/internal/proc",
		"emx/internal/thread",
		"emx/internal/packet",
		"emx/internal/isa",
		"emx/internal/apps",
		"emx/internal/harness",
		"emx/internal/metrics",
		"emx/internal/trace",
		"emx/internal/obs",
		"emx/internal/dist",
		"emx/internal/analytic",
		"emx/internal/refalgo",
		"emx/internal/labd",
		"emx/internal/cluster",
		"emx/internal/ring",
		"emx/internal/load",
		"emx/cmd/emxbench",
		"emx/cmd/emxcluster",
		"emx/cmd/emxload",
		"emx/cmd/emxprof",
	}
	simCorePrefixes = []string{
		"emx/internal/core",
		"emx/internal/sim",
		"emx/internal/network",
		"emx/internal/memory",
		"emx/internal/proc",
		"emx/internal/thread",
		"emx/internal/packet",
		"emx/internal/isa",
		"emx/internal/apps",
	}
)

// isCritical reports whether the package must produce reproducible
// output (detsource/maporder scope).
func isCritical(pkg *Package) bool {
	return hasPrefix(pkg.ImportPath, criticalPrefixes) ||
		pkg.Directives.HasPackageDirective(DirDeterminism)
}

// isSimCore reports whether the package is part of the simulation
// proper (strict simtime and flushbefore scope).
func isSimCore(pkg *Package) bool {
	return hasPrefix(pkg.ImportPath, simCorePrefixes) ||
		pkg.Directives.HasPackageDirective(DirDeterminism)
}

func hasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
