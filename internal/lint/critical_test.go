package lint

import "testing"

func TestCriticalTiers(t *testing.T) {
	cases := []struct {
		path     string
		critical bool
		simCore  bool
	}{
		// The simulation proper: both tiers. Seeding a time.Now call
		// into any of these packages fails emxvet (see the
		// detsource_crit fixture for the diagnostic itself).
		{"emx/internal/core", true, true},
		{"emx/internal/sim", true, true},
		{"emx/internal/network", true, true},
		{"emx/internal/memory", true, true},
		{"emx/internal/proc", true, true},
		{"emx/internal/thread", true, true},
		{"emx/internal/packet", true, true},
		{"emx/internal/isa", true, true},
		{"emx/internal/apps", true, true},
		{"emx/internal/apps/bitonic", true, true}, // subpackages inherit

		// Figure-producing and serving layers: reproducible output, but
		// they legally measure host throughput (annotated) and divide
		// cycles by host seconds.
		{"emx/internal/harness", true, false},
		{"emx/internal/metrics", true, false},
		{"emx/internal/labd", true, false},
		{"emx/internal/labd/service", true, false},
		{"emx/internal/cluster", true, false}, // failover must be byte-transparent
		{"emx/internal/load", true, false},    // seeded traffic, deterministic reports
		{"emx/cmd/emxbench", true, false},
		{"emx/cmd/emxcluster", true, false},
		{"emx/cmd/emxload", true, false},

		// Everything else is out of scope.
		{"emx/internal/lint", false, false},
		{"emx/cmd/emxvet", false, false},
		{"emx/internal/simulator", false, false}, // prefix match is path-boundary aware
	}
	for _, c := range cases {
		pkg := &Package{ImportPath: c.path, Directives: &Directives{}}
		if got := isCritical(pkg); got != c.critical {
			t.Errorf("isCritical(%s) = %v, want %v", c.path, got, c.critical)
		}
		if got := isSimCore(pkg); got != c.simCore {
			t.Errorf("isSimCore(%s) = %v, want %v", c.path, got, c.simCore)
		}
	}
}

func TestDeterminismOptIn(t *testing.T) {
	src := `// Package p opts in.
//
//emx:determinism
package p
`
	pkg := parseTestPkg(t, src)
	pkg.ImportPath = "example.com/outside"
	if !isCritical(pkg) || !isSimCore(pkg) {
		t.Error("//emx:determinism in the package doc must grant both tiers")
	}
}
