package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FingerprintPurity keeps the run-identity contract honest. The content
// address of a run hashes core.Config through Fingerprint; any field the
// method clears before hashing is thereby declared host-side-only —
// "this knob cannot change simulation results, so runs that differ only
// here may share a cache entry". That is a strong claim, and PR 6 set
// the precedent with Shards: the field is excluded AND the sharded
// engine is proven byte-identical.
//
// The analyzer makes the claim checkable: for every receiver field a
// Fingerprint method overwrites before hashing, either
//
//   - the field declaration carries //emx:nofingerprint, attesting the
//     exclusion was audited, or
//   - no result-affecting code reads the field. "Result-affecting" is
//     approximated as: reachable, over the whole call graph, from an
//     exported function or method of a simulation-core package.
//
// A cleared field that IS read on such a path without the attestation is
// the cache-poisoning bug this check exists for: two runs with different
// behavior would collide on one cache entry. The diagnostic carries the
// read sites and their reachability chains.
//
// The inverse rot is reported too: //emx:nofingerprint on a field the
// method actually hashes is a stale attestation and gets its own
// finding, so the annotations can never drift from the code.
var FingerprintPurity = &Analyzer{
	Name: "fingerprintpurity",
	Doc:  "a Config field excluded from Fingerprint must be //emx:nofingerprint-attested or unread on result-affecting paths",
	Run:  runFingerprintPurity,
}

// fieldRead is one result-affecting read of an excluded field.
type fieldRead struct {
	pos  token.Pos
	pkg  *Package
	node *FuncNode
}

// resultReach computes (once per Program) the functions reachable from
// the exported surface of simulation-core packages — the approximation
// of "code that can affect simulation results".
func resultReach(prog *Program) *ReachSet {
	return prog.cached("fingerprintpurity.reach", func() any {
		g := prog.Graph()
		var roots []*FuncNode
		for _, pkg := range prog.Pkgs {
			if !isSimCore(pkg) {
				continue
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || !fd.Name.IsExported() {
						continue
					}
					if fd.Name.Name == "Fingerprint" && fd.Recv != nil {
						continue // the hasher itself is not a result path
					}
					if n := g.NodeOf(funcObj(pkg, fd)); n != nil {
						roots = append(roots, n)
					}
				}
			}
		}
		return g.Reach(roots, AllEdges, nil)
	}).(*ReachSet)
}

func runFingerprintPurity(pass *Pass) {
	pkg := pass.Pkg
	if !isSimCore(pkg) {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "Fingerprint" || fd.Recv == nil {
				continue
			}
			if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
				continue
			}
			checkFingerprint(pass, fd)
		}
	}
	for _, d := range pkg.Directives.Unused(DirNoFingerprint) {
		pass.Reportf(d.Pos, "unused //emx:nofingerprint directive: line %d is not a field a Fingerprint method excludes", d.EffectiveLine)
	}
}

// checkFingerprint audits one Fingerprint method.
func checkFingerprint(pass *Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	recvObj := receiverObject(pkg, fd)
	if recvObj == nil {
		return
	}
	st := receiverStruct(recvObj.Type())
	if st == nil {
		return
	}

	// Track copies of the receiver: `cc := c` aliases the hashed value,
	// so `cc.Shards = 0` excludes the field just like `c.Shards = 0`.
	taint := NewTaint(pkg, func(expr ast.Expr) Labels {
		if id, ok := expr.(*ast.Ident); ok && pkg.Info.Uses[id] == recvObj {
			return Labels{"recv": true}
		}
		return nil
	}, nil)
	taint.Bind(recvObj, Labels{"recv": true})
	taint.Run(fd.Body)

	// Excluded fields: receiver fields overwritten before hashing.
	excluded := map[*types.Var]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || !taint.Of(sel.X)["recv"] {
				continue
			}
			if field, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && field.IsField() {
				if _, seen := excluded[field]; !seen {
					excluded[field] = sel.Pos()
				}
			}
		}
		return true
	})

	reach := resultReach(pass.Prog)
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		d := fieldDirective(pkg, field, DirNoFingerprint)
		site, isExcluded := excluded[field]
		if !isExcluded {
			if d != nil {
				pkg.Directives.Use(d)
				pass.Reportf(d.Pos,
					"stale //emx:nofingerprint on field %s: Fingerprint hashes this field",
					field.Name())
			}
			continue
		}
		if d != nil {
			pkg.Directives.Use(d)
			continue // audited exclusion
		}
		reads := resultAffectingReads(pass.Prog, reach, field, fd)
		if len(reads) == 0 {
			continue // genuinely host-side: nothing result-affecting looks
		}
		related := make([]Related, 0, 4)
		for j, r := range reads {
			if j == 3 {
				break
			}
			related = append(related, Related{
				Pos:     r.pkg.Fset.Position(r.pos),
				Message: "read here, result-affecting via " + reach.ChainString(r.node),
			})
		}
		pass.ReportRelated(site, related,
			"field %s is excluded from Fingerprint but read on %d result-affecting path(s); annotate the field //emx:nofingerprint after auditing that it cannot change results",
			field.Name(), len(reads))
	}
}

// receiverObject returns the (named) receiver variable of fd, or nil.
func receiverObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	for _, fld := range fd.Recv.List {
		for _, name := range fld.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// receiverStruct unwraps a receiver type down to its struct.
func receiverStruct(t types.Type) *types.Struct {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// fieldDirective finds the named directive on a field's declaration
// line, or nil. The field and the Fingerprint method live in the same
// package (methods cannot be declared remotely), so pkg's index is the
// right one.
func fieldDirective(pkg *Package, field *types.Var, name string) *Directive {
	pos := pkg.Fset.Position(field.Pos())
	return pkg.Directives.At(pos.Filename, pos.Line, name)
}

// resultAffectingReads scans the simulation-core packages for rvalue
// reads of field inside functions reachable from the exported surface,
// skipping the Fingerprint method itself.
func resultAffectingReads(prog *Program, reach *ReachSet, field *types.Var, fingerprint *ast.FuncDecl) []fieldRead {
	g := prog.Graph()
	var reads []fieldRead
	for _, pkg := range prog.Pkgs {
		if !isSimCore(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			// Writes are exclusions/mutations, not observations: collect
			// LHS positions so `x.F = v` does not count as a read of F.
			writes := map[ast.Expr]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
					for _, lhs := range as.Lhs {
						writes[ast.Unparen(lhs)] = true
					}
				}
				return true
			})
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd == fingerprint {
					continue
				}
				declNode := g.NodeOf(funcObj(pkg, fd))
				// Enclosing function per site: literals are their own nodes.
				var stack []*FuncNode
				if declNode != nil {
					stack = append(stack, declNode)
				}
				var walk func(n ast.Node)
				walk = func(n ast.Node) {
					ast.Inspect(n, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.FuncLit:
							if ln := g.NodeOfLit(n); ln != nil {
								stack = append(stack, ln)
								walk(n.Body)
								stack = stack[:len(stack)-1]
								return false
							}
						case *ast.SelectorExpr:
							if writes[n] || pkg.Info.Uses[n.Sel] != field.Origin() {
								return true
							}
							if len(stack) == 0 || !reach.Has(stack[len(stack)-1]) {
								return true
							}
							reads = append(reads, fieldRead{pos: n.Pos(), pkg: pkg, node: stack[len(stack)-1]})
						}
						return true
					})
				}
				walk(fd.Body)
			}
		}
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i].pos < reads[j].pos })
	return reads
}
