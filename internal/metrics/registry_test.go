package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("emxd_runs_total", "runs")
	a.Add(3)
	b := r.Counter("emxd_runs_total", "runs")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	if b.Value() != 3 {
		t.Fatalf("counter lost its value: %d", b.Value())
	}
	l1 := r.Labeled("emxd_cycles_total", "cycles", "workload", "fft")
	l2 := r.Labeled("emxd_cycles_total", "cycles", "workload", "fft")
	if l1 != l2 {
		t.Fatal("labeled re-registration returned a different counter")
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("emxd_runs_started_total", "simulator executions started").Add(7)
	r.Labeled("emxd_workload_cycles_total", "simulated cycles by workload", "workload", "bitonic").Add(100)
	r.Labeled("emxd_workload_cycles_total", "simulated cycles by workload", "workload", "fft").Add(50)
	r.Gauge("emxd_queue_depth", "jobs waiting", func() float64 { return 2 })

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE emxd_runs_started_total counter",
		"emxd_runs_started_total 7",
		`emxd_workload_cycles_total{workload="bitonic"} 100`,
		`emxd_workload_cycles_total{workload="fft"} 50`,
		"# TYPE emxd_queue_depth gauge",
		"emxd_queue_depth 2",
		"# HELP emxd_runs_started_total simulator executions started",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Stable ordering: two renders are identical.
	var b2 strings.Builder
	if err := r.WriteProm(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Fatal("exposition order not stable")
	}
}

// TestWritePromDeterministic pins the exact exposition text: output is
// a pure function of the registry contents, independent of the order
// metrics were registered in (and therefore of Go's map iteration
// order).
func TestWritePromDeterministic(t *testing.T) {
	build := func(reverse bool) string {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("runs_total", "runs").Add(7) },
			func() { r.Labeled("cycles_total", "cycles", "workload", "fft").Add(50) },
			func() { r.Labeled("cycles_total", "cycles", "workload", "bitonic").Add(100) },
			func() { r.Gauge("depth", "jobs waiting", func() float64 { return 2 }) },
		}
		if reverse {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		var b strings.Builder
		if err := r.WriteProm(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	want := "# HELP cycles_total cycles\n" +
		"# TYPE cycles_total counter\n" +
		"cycles_total{workload=\"bitonic\"} 100\n" +
		"cycles_total{workload=\"fft\"} 50\n" +
		"# HELP depth jobs waiting\n" +
		"# TYPE depth gauge\n" +
		"depth 2\n" +
		"# HELP runs_total runs\n" +
		"# TYPE runs_total counter\n" +
		"runs_total 7\n"
	if got := build(false); got != want {
		t.Errorf("exposition:\n%q\nwant:\n%q", got, want)
	}
	if got := build(true); got != want {
		t.Errorf("reverse registration order changed the exposition:\n%q", got)
	}
}

func TestSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "").Add(1)
	r.Counter("a_total", "").Add(2)
	r.Labeled("m_total", "", "k", "v").Add(3)
	r.Gauge("g", "", func() float64 { return 1.5 })

	got := r.Sorted()
	want := []Sample{
		{Name: "a_total", Value: 2},
		{Name: "g", Value: 1.5},
		{Name: `m_total{k="v"}`, Value: 3},
		{Name: "z_total", Value: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("Sorted() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(4)
	r.Labeled("b_total", "", "k", "v").Add(5)
	r.Gauge("g", "", func() float64 { return 1.5 })
	s := r.Snapshot()
	if s["a_total"] != 4 || s[`b_total{k="v"}`] != 5 || s["g"] != 1.5 {
		t.Fatalf("snapshot = %v", s)
	}
}
