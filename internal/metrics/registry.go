package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing operational metric, safe for
// concurrent use. Unlike the per-run measurement structs above, counters
// describe the serving system (internal/labd), not the simulated machine.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry names a set of counters and gauges and renders them in the
// Prometheus text exposition format. It is deliberately tiny — stdlib
// only — and supports exactly what emxd's /metrics endpoint needs:
// plain counters, counters with one label dimension, and computed
// gauges (queue depth, cache size).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	labeled  map[string]map[string]*Counter // name -> label value -> counter
	labelKey map[string]string              // name -> label key
	gauges   map[string]func() float64
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		labeled:  map[string]map[string]*Counter{},
		labelKey: map[string]string{},
		gauges:   map[string]func() float64{},
		help:     map[string]string{},
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Labeled returns the counter for one value of the metric's single
// label dimension, registering metric and value on first use. A metric
// name keeps the label key of its first registration.
func (r *Registry) Labeled(name, help, labelKey, labelValue string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	vals, ok := r.labeled[name]
	if !ok {
		vals = map[string]*Counter{}
		r.labeled[name] = vals
		r.labelKey[name] = labelKey
		r.help[name] = help
	}
	c, ok := vals[labelValue]
	if !ok {
		c = &Counter{}
		vals[labelValue] = c
	}
	return c
}

// Gauge registers a computed gauge: fn is evaluated at exposition time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
	r.help[name] = help
}

// Snapshot returns every metric's current value keyed by its exposition
// name (labeled series as name{key="value"}), for JSON status endpoints.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, vals := range r.labeled {
		for lv, c := range vals {
			out[fmt.Sprintf("%s{%s=%q}", name, r.labelKey[name], lv)] = float64(c.Value())
		}
	}
	for name, fn := range r.gauges {
		out[name] = fn()
	}
	return out
}

// WriteProm renders the registry in the Prometheus text format, metrics
// sorted by name (and label value within a metric) so output is stable.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	type metric struct {
		name, kind string
		lines      []string
	}
	var ms []metric
	for name, c := range r.counters {
		ms = append(ms, metric{name, "counter",
			[]string{fmt.Sprintf("%s %d", name, c.Value())}})
	}
	for name, vals := range r.labeled {
		var lines []string
		lvs := make([]string, 0, len(vals))
		for lv := range vals {
			lvs = append(lvs, lv)
		}
		sort.Strings(lvs)
		for _, lv := range lvs {
			lines = append(lines, fmt.Sprintf("%s{%s=%q} %d", name, r.labelKey[name], lv, vals[lv].Value()))
		}
		ms = append(ms, metric{name, "counter", lines})
	}
	for name, fn := range r.gauges {
		ms = append(ms, metric{name, "gauge",
			[]string{fmt.Sprintf("%s %g", name, fn())}})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		if h := help[m.name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		for _, line := range m.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
