package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing operational metric, safe for
// concurrent use. Unlike the per-run measurement structs above, counters
// describe the serving system (internal/labd), not the simulated machine.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Registry names a set of counters and gauges and renders them in the
// Prometheus text exposition format. It is deliberately tiny — stdlib
// only — and supports exactly what emxd's /metrics endpoint needs:
// plain counters, counters with one label dimension, and computed
// gauges (queue depth, cache size).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	labeled  map[string]map[string]*Counter // name -> label value -> counter
	labelKey map[string]string              // name -> label key
	gauges   map[string]func() float64
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		labeled:  map[string]map[string]*Counter{},
		labelKey: map[string]string{},
		gauges:   map[string]func() float64{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Labeled returns the counter for one value of the metric's single
// label dimension, registering metric and value on first use. A metric
// name keeps the label key of its first registration.
func (r *Registry) Labeled(name, help, labelKey, labelValue string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	vals, ok := r.labeled[name]
	if !ok {
		vals = map[string]*Counter{}
		r.labeled[name] = vals
		r.labelKey[name] = labelKey
		r.help[name] = help
	}
	c, ok := vals[labelValue]
	if !ok {
		c = &Counter{}
		vals[labelValue] = c
	}
	return c
}

// Gauge registers a computed gauge: fn is evaluated at exposition time.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
	r.help[name] = help
}

// Histogram returns the named fixed-bucket histogram, registering it on
// first use. A name keeps the bucket bounds of its first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
		r.help[name] = help
	}
	return h
}

// sortedKeys returns m's keys in ascending order: every iteration that
// feeds ordered output goes through here, so exposition is independent
// of Go's randomized map order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns every metric's current value keyed by its exposition
// name (labeled series as name{key="value"}), for JSON status endpoints.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, vals := range r.labeled {
		for lv, c := range vals {
			out[fmt.Sprintf("%s{%s=%q}", name, r.labelKey[name], lv)] = float64(c.Value())
		}
	}
	for name, fn := range r.gauges {
		out[name] = fn()
	}
	for name, h := range r.hists {
		out[name+"_sum"] = h.Sum()
		out[name+"_count"] = float64(h.Count())
	}
	return out
}

// Sample is one metric value under its exposition name.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Sorted returns every metric as (name, value) pairs in ascending name
// order — the deterministic companion to Snapshot for dumps and logs,
// where output is compared byte-for-byte across runs.
func (r *Registry) Sorted() []Sample {
	snap := r.Snapshot()
	out := make([]Sample, 0, len(snap))
	for _, name := range sortedKeys(snap) {
		out = append(out, Sample{Name: name, Value: snap[name]})
	}
	return out
}

// WriteProm renders the registry in the Prometheus text format, metrics
// sorted by name (and label value within a metric) so output is stable.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	type metric struct {
		name, kind string
		lines      []string
	}
	// Iterate every family in sorted-name order so the rendered text is
	// a pure function of the registry contents. Families are appended
	// counters -> labeled -> gauges and merged with a stable sort, so
	// even a (pathological) name collision across families renders
	// deterministically.
	ms := make([]metric, 0, len(r.counters)+len(r.labeled)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		ms = append(ms, metric{name, "counter",
			[]string{fmt.Sprintf("%s %d", name, r.counters[name].Value())}})
	}
	for _, name := range sortedKeys(r.labeled) {
		vals := r.labeled[name]
		lines := make([]string, 0, len(vals))
		for _, lv := range sortedKeys(vals) {
			lines = append(lines, fmt.Sprintf("%s{%s=%q} %d", name, r.labelKey[name], lv, vals[lv].Value()))
		}
		ms = append(ms, metric{name, "counter", lines})
	}
	for _, name := range sortedKeys(r.gauges) {
		ms = append(ms, metric{name, "gauge",
			[]string{fmt.Sprintf("%s %g", name, r.gauges[name]())}})
	}
	for _, name := range sortedKeys(r.hists) {
		ms = append(ms, metric{name, "histogram", r.hists[name].promLines(name)})
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	for _, m := range ms {
		if h := help[m.name]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		for _, line := range m.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
