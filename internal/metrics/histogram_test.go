package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1.5, 100} {
		h.Observe(v)
	}
	cum, sum, n := h.snapshot()
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive); 0.5 in le=1;
	// 1.5 in le=10; 100 in +Inf. Cumulative: 2, 3, 4, 5.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if n != 5 {
		t.Errorf("count = %d, want 5", n)
	}
	if sum != 0.05+0.1+0.5+1.5+100 {
		t.Errorf("sum = %g", sum)
	}
}

// TestHistogramPromExposition pins the rendered bytes: the text format
// is diffed across runs and hosts, so it must be exactly reproducible
// for a given observation sequence.
func TestHistogramPromExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("emx_test_seconds", "test latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 1.5, 100} {
		h.Observe(v)
	}
	reg.Counter("emx_test_total", "companion counter").Add(4)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP emx_test_seconds test latency
# TYPE emx_test_seconds histogram
emx_test_seconds_bucket{le="0.1"} 1
emx_test_seconds_bucket{le="1"} 2
emx_test_seconds_bucket{le="10"} 3
emx_test_seconds_bucket{le="+Inf"} 4
emx_test_seconds_sum 102.05
emx_test_seconds_count 4
# HELP emx_test_total companion counter
# TYPE emx_test_total counter
emx_test_total 4
`
	if b.String() != want {
		t.Fatalf("exposition not byte-exact:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestHistogramQuantileExact pins exact interpolated values: the
// quantile estimator is fixed-bucket linear interpolation, so for a
// known observation set every quantile is a closed-form number.
func TestHistogramQuantileExact(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 4 observations in (0,1], 2 in (1,2], 2 in (2,4]. Cumulative: 4, 6, 8.
	for _, v := range []float64{0.2, 0.4, 0.6, 0.8, 1.5, 1.5, 3, 3} {
		h.Observe(v)
	}
	cases := []struct {
		q, want float64
	}{
		{0, 0},       // rank 0: bottom of the first bucket
		{0.25, 0.5},  // rank 2 of 4 in (0,1] -> 0 + 1*(2/4)
		{0.5, 1},     // rank 4: exactly the first bucket's upper bound
		{0.625, 1.5}, // rank 5 of 2 in (1,2] -> 1 + 1*(1/2)
		{0.75, 2},    // rank 6: second bucket's upper bound
		{0.875, 3},   // rank 7 of 2 in (2,4] -> 2 + 2*(1/2)
		{1, 4},       // rank 8: top finite bound
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", got)
	}
	// Everything in +Inf: quantiles clamp to the highest finite bound.
	h.Observe(50)
	h.Observe(99)
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 10 {
			t.Errorf("Quantile(%g) with +Inf-only mass = %g, want 10", q, got)
		}
	}
	// Out-of-range q clamps rather than extrapolating.
	if got := h.Quantile(-1); got != 10 {
		t.Errorf("Quantile(-1) = %g, want clamped to 10 (all mass in +Inf)", got)
	}
	if NewHistogram([]float64{1}).Quantile(2) != 0 {
		t.Error("Quantile(2) on an empty histogram should be 0")
	}
}

// TestHistogramQuantileNaN is the regression test for the NaN hole in
// the q clamp: NaN fails both the q < 0 and q > 1 comparisons, so it
// used to flow into the rank arithmetic and poison the estimate.
func TestHistogramQuantileNaN(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, 1.5} {
		h.Observe(v)
	}
	got := h.Quantile(math.NaN())
	if math.IsNaN(got) {
		t.Fatal("Quantile(NaN) = NaN, want a pinned finite value")
	}
	if want := h.Quantile(0); got != want {
		t.Errorf("Quantile(NaN) = %g, want %g (same as q=0)", got, want)
	}
}

// TestHistogramQuantileFirstBucketFromZero pins the first bucket's
// interpolation anchor: estimates inside the first bucket must
// interpolate up from 0, not sit at the bucket's own upper bound.
func TestHistogramQuantileFirstBucketFromZero(t *testing.T) {
	h := newHistogram([]float64{8, 16})
	for i := 0; i < 4; i++ {
		h.Observe(1) // all mass in (0, 8]
	}
	// rank q*4 of 4 in a bucket spanning [0, 8): 0 + 8*q.
	for _, c := range []struct{ q, want float64 }{{0.25, 2}, {0.5, 4}, {0.75, 6}} {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g (interpolated from lower bound 0)", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileProperty checks the estimator against a
// sorted-sample reference on seeded pseudo-random observation sets:
// every estimate must land inside the bucket that contains the
// reference quantile (the histogram cannot do better than bucket
// resolution, but it must never leave the right bucket).
func TestHistogramQuantileProperty(t *testing.T) {
	bounds := []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}
	// Seeded xorshift so the test is deterministic without math/rand.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%100000) / 100000 * 12 // values in [0, 12)
	}
	for trial := 0; trial < 20; trial++ {
		n := 10 + int(state%200)
		h := newHistogram(bounds)
		samples := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			v := next()
			h.Observe(v)
			samples = append(samples, v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			// Reference: the ceil(q*n)-th order statistic (rank 0 -> minimum).
			rank := int(math.Ceil(q * float64(n)))
			if rank > 0 {
				rank--
			}
			ref := samples[rank]
			got := h.Quantile(q)
			// Locate ref's bucket [lo, hi]; +Inf bucket pins to the top bound.
			i := sort.SearchFloat64s(bounds, ref)
			lo, hi := 0.0, bounds[len(bounds)-1]
			if i > 0 {
				lo = bounds[i-1]
			}
			if i < len(bounds) {
				hi = bounds[i]
			} else {
				lo = bounds[len(bounds)-1] // ref in +Inf: estimate must equal top bound
			}
			if got < lo || got > hi {
				t.Errorf("trial %d n=%d: Quantile(%g) = %g outside ref bucket [%g, %g] (ref sample %g)",
					trial, n, q, got, lo, hi, ref)
			}
		}
	}
}

func TestHistogramSnapshotEntries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("emx_lat_seconds", "lat", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := reg.Snapshot()
	if snap["emx_lat_seconds_count"] != 2 {
		t.Errorf("count entry = %v", snap["emx_lat_seconds_count"])
	}
	if snap["emx_lat_seconds_sum"] != 2.5 {
		t.Errorf("sum entry = %v", snap["emx_lat_seconds_sum"])
	}
	// Re-registration returns the same histogram.
	if reg.Histogram("emx_lat_seconds", "lat", []float64{99}) != h {
		t.Error("re-registration created a new histogram")
	}
}
