package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"emx/internal/sim"
)

func TestBreakdownTotalAndAdd(t *testing.T) {
	a := Breakdown{Compute: 10, Overhead: 2, Switch: 3, Comm: 5}
	if a.Total() != 20 {
		t.Fatalf("total = %d, want 20", a.Total())
	}
	b := Breakdown{Compute: 1, Overhead: 1, Switch: 1, Comm: 1}
	a.Add(b)
	if a.Total() != 24 || a.Compute != 11 {
		t.Fatalf("after add: %+v", a)
	}
}

func TestBreakdownFractions(t *testing.T) {
	b := Breakdown{Compute: 50, Overhead: 10, Switch: 20, Comm: 20}
	c, o, m, s := b.Fractions()
	if c != 0.5 || o != 0.1 || m != 0.2 || s != 0.2 {
		t.Fatalf("fractions = %v %v %v %v", c, o, m, s)
	}
	var z Breakdown
	c, o, m, s = z.Fractions()
	if c != 0 || o != 0 || m != 0 || s != 0 {
		t.Fatal("zero breakdown must give zero fractions")
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	check := func(c, o, s, m uint16) bool {
		b := Breakdown{Compute: sim.Time(c), Overhead: sim.Time(o),
			Switch: sim.Time(s), Comm: sim.Time(m)}
		if b.Total() == 0 {
			return true
		}
		f1, f2, f3, f4 := b.Fractions()
		return math.Abs(f1+f2+f3+f4-1) < 1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchKindString(t *testing.T) {
	want := map[SwitchKind]string{
		SwitchRemoteRead: "remote-read",
		SwitchIterSync:   "iter-sync",
		SwitchThreadSync: "thread-sync",
		SwitchExplicit:   "explicit",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if SwitchKind(99).String() != "switch(99)" {
		t.Errorf("unknown kind: %q", SwitchKind(99).String())
	}
}

func testRun(comm ...sim.Time) *Run {
	r := &Run{P: len(comm), PEs: make([]PE, len(comm))}
	for i, c := range comm {
		r.PEs[i].Times.Comm = c
	}
	return r
}

func TestMeanCommTime(t *testing.T) {
	r := testRun(10, 20, 30, 40)
	if got := r.MeanCommTime(); got != 25 {
		t.Fatalf("mean comm = %v, want 25", got)
	}
	if got := (&Run{}).MeanCommTime(); got != 0 {
		t.Fatalf("empty run mean comm = %v", got)
	}
}

func TestEfficiency(t *testing.T) {
	base := testRun(100, 100)
	half := testRun(50, 50)
	if got := Efficiency(base, half); got != 50 {
		t.Fatalf("efficiency = %v, want 50", got)
	}
	if got := Efficiency(base, base); got != 0 {
		t.Fatalf("self efficiency = %v, want 0", got)
	}
	// 95% overlap case (the paper's FFT result shape).
	fft := testRun(5, 5)
	if got := Efficiency(base, fft); got != 95 {
		t.Fatalf("efficiency = %v, want 95", got)
	}
	// Zero-baseline guard.
	if got := Efficiency(testRun(0, 0), half); got != 0 {
		t.Fatalf("zero-base efficiency = %v, want 0", got)
	}
}

func TestMeanSwitchesAndTotals(t *testing.T) {
	r := &Run{PEs: make([]PE, 2)}
	r.PEs[0].Switches[SwitchRemoteRead] = 10
	r.PEs[1].Switches[SwitchRemoteRead] = 20
	r.PEs[0].Switches[SwitchIterSync] = 4
	if got := r.MeanSwitches(SwitchRemoteRead); got != 15 {
		t.Fatalf("mean remote-read switches = %v, want 15", got)
	}
	if got := r.MeanSwitches(SwitchIterSync); got != 2 {
		t.Fatalf("mean iter-sync switches = %v, want 2", got)
	}
	if got := r.PEs[0].TotalSwitches(); got != 14 {
		t.Fatalf("total switches = %d, want 14", got)
	}
	if got := (&Run{}).MeanSwitches(SwitchIterSync); got != 0 {
		t.Fatal("empty run mean switches != 0")
	}
}

func TestTotalBreakdownAndSumCounter(t *testing.T) {
	r := &Run{PEs: make([]PE, 3)}
	for i := range r.PEs {
		r.PEs[i].Times = Breakdown{Compute: 10, Comm: 5}
		r.PEs[i].RemoteReads = uint64(i)
	}
	tb := r.TotalBreakdown()
	if tb.Compute != 30 || tb.Comm != 15 {
		t.Fatalf("total breakdown = %+v", tb)
	}
	got := r.SumCounter(func(p *PE) uint64 { return p.RemoteReads })
	if got != 3 {
		t.Fatalf("sum reads = %d, want 3", got)
	}
}
