// Package metrics defines the measurement vocabulary of the paper's
// evaluation: per-PE decomposition of execution time into computation,
// packet-generation overhead, communication (unoverlapped latency), and
// switching (Figure 8); classified context-switch counts (Figure 9); and
// the overlapping-efficiency metric E = (Tcomm,1 - Tcomm,h)/Tcomm,1
// (Figure 7).
package metrics

import (
	"fmt"

	"emx/internal/sim"
)

// SwitchKind classifies why the EXU switched away from / spun on a thread,
// matching the paper's three categories in Figure 9.
type SwitchKind uint8

const (
	// SwitchRemoteRead: a thread issued a split-phase remote read and
	// suspended. One per remote read; independent of thread count.
	SwitchRemoteRead SwitchKind = iota
	// SwitchIterSync: a thread spun/suspended at the end-of-iteration
	// barrier waiting for other threads or other PEs.
	SwitchIterSync
	// SwitchThreadSync: a thread spun/suspended waiting for a sibling
	// thread on the same PE (sorting's ordered-merge constraint).
	SwitchThreadSync
	// SwitchExplicit: a voluntary yield not caused by the above.
	SwitchExplicit
	NumSwitchKinds
)

var switchNames = [NumSwitchKinds]string{
	"remote-read", "iter-sync", "thread-sync", "explicit",
}

func (k SwitchKind) String() string {
	if int(k) < len(switchNames) {
		return switchNames[k]
	}
	return fmt.Sprintf("switch(%d)", uint8(k))
}

// Breakdown decomposes a PE's makespan. The four components are mutually
// exclusive and, with Idle ambiguity resolved as communication wait, sum
// to the PE's total elapsed time (an invariant the tests assert).
type Breakdown struct {
	Compute  sim.Time // EXU running user instructions
	Overhead sim.Time // EXU generating packets (send instructions)
	Switch   sim.Time // register save/restore + dispatch
	Comm     sim.Time // EXU idle with no ready thread: exposed latency
}

// Total returns the sum of all components.
func (b Breakdown) Total() sim.Time {
	return b.Compute + b.Overhead + b.Switch + b.Comm
}

// Add accumulates other into b.
func (b *Breakdown) Add(other Breakdown) {
	b.Compute += other.Compute
	b.Overhead += other.Overhead
	b.Switch += other.Switch
	b.Comm += other.Comm
}

// Fractions returns each component as a fraction of the total, in the
// order compute, overhead, comm, switch (the paper's Figure 8 stacking
// order from the bottom). A zero total yields zeros.
func (b Breakdown) Fractions() (compute, overhead, comm, sw float64) {
	t := float64(b.Total())
	if t == 0 {
		return
	}
	return float64(b.Compute) / t, float64(b.Overhead) / t,
		float64(b.Comm) / t, float64(b.Switch) / t
}

// PE aggregates one processor's counters for a run.
type PE struct {
	Times    Breakdown
	Switches [NumSwitchKinds]uint64

	RemoteReads  uint64 // read + block-read words requested by this PE
	RemoteWrites uint64
	Invokes      uint64
	SyncsSent    uint64
	Spills       uint64 // packet-queue overflows to memory
	Dispatches   uint64 // threads dequeued by the MU
	ServicedDMA  uint64 // remote requests serviced by the by-passing DMA
	ServicedEXU  uint64 // remote requests serviced on the EXU (EM-4 mode)
}

// TotalSwitches sums all switch kinds.
func (p *PE) TotalSwitches() uint64 {
	var n uint64
	for _, s := range p.Switches {
		n += s
	}
	return n
}

// Run holds a whole machine's measurements for one experiment point.
type Run struct {
	Label    string
	P        int // processors
	H        int // threads per processor
	N        int // problem size in elements/points (simulated)
	PaperN   int // the paper-equivalent size this point stands for
	Makespan sim.Time
	PEs      []PE
	// Network-level counters.
	PacketsSent     uint64
	PacketsHops     uint64
	NetQueueDelay   sim.Time
	SimEvents       uint64
	HostElapsedSecs float64
}

// TotalBreakdown sums the per-PE breakdowns.
func (r *Run) TotalBreakdown() Breakdown {
	var b Breakdown
	for i := range r.PEs {
		b.Add(r.PEs[i].Times)
	}
	return b
}

// MeanCommTime returns the average per-PE communication (exposed latency)
// time in cycles — the y-axis of Figure 6.
func (r *Run) MeanCommTime() float64 {
	if len(r.PEs) == 0 {
		return 0
	}
	var s sim.Time
	for i := range r.PEs {
		s += r.PEs[i].Times.Comm
	}
	return float64(s) / float64(len(r.PEs))
}

// MeanSwitches returns the average per-PE count for one switch kind —
// the y-axis of Figure 9.
func (r *Run) MeanSwitches(k SwitchKind) float64 {
	if len(r.PEs) == 0 {
		return 0
	}
	var s uint64
	for i := range r.PEs {
		s += r.PEs[i].Switches[k]
	}
	return float64(s) / float64(len(r.PEs))
}

// SumCounter folds an arbitrary per-PE counter.
func (r *Run) SumCounter(f func(*PE) uint64) uint64 {
	var s uint64
	for i := range r.PEs {
		s += f(&r.PEs[i])
	}
	return s
}

// Efficiency computes the paper's overlapping efficiency in percent:
// E = (Tcomm,1 - Tcomm,h) / Tcomm,1 * 100, where base is the
// single-thread run and r the h-thread run of the same workload.
func Efficiency(base, r *Run) float64 {
	t1 := base.MeanCommTime()
	if t1 == 0 {
		return 0
	}
	return (t1 - r.MeanCommTime()) / t1 * 100
}
