package metrics

import (
	"math"
	"sort"
	"strconv"
	"sync"
)

// DefLatencyBuckets are the fixed upper bounds (in seconds) used for
// request-latency histograms across the serving layer. The spread runs
// from a cache hit (~1ms) to a full figure sweep at large scale
// (minutes); a fixed set keeps exposition byte-comparable across
// processes and restarts.
var DefLatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: observations land in the first bucket whose upper bound is >=
// the value, with an implicit +Inf bucket catching the rest. Bounds are
// fixed at registration — there is no dynamic resizing, so exposition
// for a given observation sequence is a pure function of the inputs.
// Safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	sum    float64
	n      uint64
}

// newHistogram copies and sorts the bounds so callers cannot alias the
// internal slice.
func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// NewHistogram builds a standalone fixed-bucket histogram with the
// given upper bounds — for callers (the load generator's SLO
// accounting) that aggregate latencies outside a Registry.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation inside the fixed buckets: the
// bucket containing the target rank is assumed uniform between its
// lower and upper bound (the first bucket interpolates from 0, not
// from its own upper bound). Values in the +Inf bucket cannot be
// interpolated, so any quantile landing there reports the highest
// finite bound (the Prometheus convention). An empty histogram reports
// 0. q outside [0,1] — including NaN, which no comparison clamps — is
// pinned to the nearest valid quantile.
func (h *Histogram) Quantile(q float64) float64 {
	cum, _, n := h.snapshot()
	if n == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n)
	for i, c := range cum {
		// Skip buckets below the target rank — and empty leading buckets,
		// so a rank of exactly 0 lands where the mass starts.
		if float64(c) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i == len(h.bounds) { // +Inf bucket: no finite upper bound
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		var prev uint64
		if i > 0 {
			prev = cum[i-1]
		}
		inBucket := float64(c - prev)
		if inBucket == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/inBucket
	}
	return h.bounds[len(h.bounds)-1]
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts (one per bound, then +Inf),
// the sum, and the count, consistently under one lock acquisition.
func (h *Histogram) snapshot() (cumulative []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cumulative = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cumulative[i] = acc
	}
	return cumulative, h.sum, h.n
}

// promLines renders the histogram as Prometheus exposition lines:
// name_bucket{le="..."} per bound (cumulative), the +Inf bucket, then
// name_sum and name_count. Bound and sum formatting use the shortest
// exact representation ('g', -1), so output is byte-stable.
func (h *Histogram) promLines(name string) []string {
	cum, sum, n := h.snapshot()
	lines := make([]string, 0, len(cum)+2)
	for i, b := range h.bounds {
		lines = append(lines, name+`_bucket{le="`+formatFloat(b)+`"} `+strconv.FormatUint(cum[i], 10))
	}
	lines = append(lines,
		name+`_bucket{le="+Inf"} `+strconv.FormatUint(cum[len(cum)-1], 10),
		name+"_sum "+formatFloat(sum),
		name+"_count "+strconv.FormatUint(n, 10))
	return lines
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
