package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emx/internal/labd"
	"emx/internal/metrics"
)

// hugeScale clamps every panel size to the minimum grid, keeping test
// simulations tiny.
const hugeScale = 1 << 20

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{Scale: hugeScale, Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := RunRequest{Workload: "fft", P: 4, H: 2, N: 64 << 10, Verify: true}

	resp := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	first := decode[RunResponse](t, resp)
	if first.Source != "executed" {
		t.Fatalf("first request source %q, want executed", first.Source)
	}
	if first.MakespanCycles == 0 || first.Workload != "fft" || first.P != 4 || first.H != 2 {
		t.Fatalf("bad response %+v", first)
	}
	if len(first.Key) != 64 {
		t.Fatalf("key %q is not a content hash", first.Key)
	}

	// The identical request is a cache hit with the same measurements.
	second := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if second.Source != "cached" {
		t.Fatalf("second request source %q, want cached", second.Source)
	}
	if second.MakespanCycles != first.MakespanCycles || second.Key != first.Key {
		t.Fatalf("cached response differs: %+v vs %+v", second, first)
	}

	// A different seed is a different run.
	req.Seed = 7
	third := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if third.Source != "executed" || third.Key == first.Key {
		t.Fatalf("distinct request not re-executed: %+v", third)
	}
}

func TestRunEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t)
	bad := []RunRequest{
		{Workload: "quicksort", P: 4, H: 1, N: 1024},
		{Workload: "fft", P: 0, H: 1, N: 1024},
		{Workload: "fft", P: 4, H: 0, N: 1024},
		{Workload: "fft", P: 4, H: 1, N: 0},
		{Workload: "fft", P: 4, H: 1, N: 1024, Mode: "warp"},
		{Workload: "fft", P: 4, H: 1, N: 1024, Scale: -1},
		{Workload: "fft", P: 4, H: 1, N: 1024, Shards: 3},
		{Workload: "fft", P: 4, H: 1, N: 1024, Shards: -2},
	}
	for i, req := range bad {
		resp := postJSON(t, ts.URL+"/v1/run", req)
		e := decode[struct {
			Error string `json:"error"`
		}](t, resp)
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Errorf("bad request %d: status %d, error %q", i, resp.StatusCode, e.Error)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: status %d", resp.StatusCode)
	}
}

// TestRunEndpointShardsShareIdentity: a sharded request reports the same
// key and measurements as the single-engine run — sharding is host-side
// only, so the second request is a straight cache hit.
func TestRunEndpointShardsShareIdentity(t *testing.T) {
	_, ts := newTestServer(t)
	req := RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10}
	first := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if first.Source != "executed" {
		t.Fatalf("first request source %q, want executed", first.Source)
	}
	req.Shards = 4
	second := decode[RunResponse](t, postJSON(t, ts.URL+"/v1/run", req))
	if second.Key != first.Key {
		t.Fatalf("shards entered the run identity: %q vs %q", second.Key, first.Key)
	}
	if second.Source != "cached" || second.MakespanCycles != first.MakespanCycles {
		t.Fatalf("sharded request not served from the shared cache entry: %+v", second)
	}
}

// TestFigureCacheHit is the subsystem's acceptance test: a repeated
// identical /v1/figure request is served entirely from cache — zero new
// simulator executions, asserted via the scheduler's counters.
func TestFigureCacheHit(t *testing.T) {
	srv, ts := newTestServer(t)

	first := decode[FigureResponse](t, postJSON(t, ts.URL+"/v1/figure", FigureRequest{Fig: "6a"}))
	if first.Fig != "6a" || len(first.Figures) != 1 {
		t.Fatalf("bad figure response %+v", first)
	}
	f := first.Figures[0]
	if len(f.Series) == 0 || len(f.X) == 0 || f.SimCycles == 0 {
		t.Fatalf("empty figure %+v", f)
	}
	started := srv.Scheduler().Stats().Started
	if started == 0 {
		t.Fatal("first figure ran no simulations")
	}
	hitsBefore := srv.Scheduler().Stats().CacheHits

	second := decode[FigureResponse](t, postJSON(t, ts.URL+"/v1/figure", FigureRequest{Fig: "6a"}))
	st := srv.Scheduler().Stats()
	if st.Started != started {
		t.Fatalf("repeated figure executed %d new simulations", st.Started-started)
	}
	if st.CacheHits <= hitsBefore {
		t.Fatalf("repeated figure produced no cache hits: %+v", st)
	}
	// Identical results, byte for byte.
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if !bytes.Equal(a, b) {
		t.Fatal("cached figure differs from the original")
	}
}

func TestFigureUnknownPanel(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/figure", FigureRequest{Fig: "42z"})
	e := decode[struct {
		Error string `json:"error"`
	}](t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "6a") || !strings.Contains(e.Error, "latency") {
		t.Fatalf("error does not list valid panels: %q", e.Error)
	}
}

func TestStatusAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	// Populate one run so counters move.
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10}).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	status := decode[StatusResponse](t, resp)
	if status.Workers < 1 || status.QueueCap < 1 || status.CacheCap < 1 {
		t.Fatalf("bad status %+v", status)
	}
	if status.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", status.CacheEntries)
	}
	if status.Counters["emxd_runs_started_total"] != 1 {
		t.Fatalf("counters %v", status.Counters)
	}
	if len(status.Panels) == 0 {
		t.Fatal("status lists no panels")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	out := buf.String()
	for _, want := range []string{
		"emxd_runs_started_total 1",
		"emxd_runs_completed_total 1",
		"# TYPE emxd_queue_depth gauge",
		`emxd_workload_cycles_total{workload="bitonic"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestBackpressure503: a full queue surfaces as HTTP 503 + Retry-After.
func TestBackpressure503(t *testing.T) {
	srv := New(Options{Scale: hugeScale, Sched: labd.Options{Workers: 1, QueueSize: 1, NoCache: true}})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Hold the single worker, then the one queue slot, with blocked runs
	// submitted directly to the shared scheduler — sequentially, so the
	// second submission cannot race the worker's dequeue of the first
	// and bounce off the still-full queue.
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	// Unblock the held worker even when an assertion fails mid-test:
	// srv.Close() (deferred above, runs after this) waits for it.
	defer releaseOnce()
	done := make(chan struct{}, 2)
	submit := func(key string) {
		go func() {
			srv.Scheduler().Do(key, func() (*metrics.Run, error) {
				<-release
				return &metrics.Run{Label: "stub"}, nil
			})
			done <- struct{}{}
		}()
	}
	waitFor := func(desc string, ok func(labd.Stats) bool) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for !ok(srv.Scheduler().Stats()) {
			select {
			case <-deadline:
				t.Fatalf("%s: %+v", desc, srv.Scheduler().Stats())
			case <-time.After(time.Millisecond):
			}
		}
	}
	submit("held-by-worker")
	waitFor("worker never picked up the blocked run", func(st labd.Stats) bool { return st.Started == 1 })
	submit("held-in-queue")
	waitFor("queue slot never filled", func(st labd.Stats) bool { return st.QueueDepth == 1 })

	resp := postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "fft", P: 4, H: 1, N: 1024})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	e := decode[struct {
		Error string `json:"error"`
	}](t, resp)
	if !strings.Contains(e.Error, "queue full") {
		t.Fatalf("error %q", e.Error)
	}
	releaseOnce()
	<-done
	<-done
}

// TestStatusThroughputLoadFields: the throughput block carries queue
// depth and cache hit-ratio — the load signals the cluster membership
// prober reads for load-aware hedging.
func TestStatusThroughputLoadFields(t *testing.T) {
	srv, ts := newTestServer(t)
	req := RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10}
	postJSON(t, ts.URL+"/v1/run", req).Body.Close() // executed
	postJSON(t, ts.URL+"/v1/run", req).Body.Close() // cached

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	status := decode[StatusResponse](t, resp)
	if got := status.Throughput.CacheHitRatio; got != 0.5 {
		t.Errorf("cache_hit_ratio = %g, want 0.5 (1 hit / 2 resolved)", got)
	}
	if status.Throughput.QueueDepth != 0 {
		t.Errorf("queue_depth = %d, want 0 at idle", status.Throughput.QueueDepth)
	}
	if srv.Scheduler().Stats().CacheHitRatio() != 0.5 {
		t.Errorf("Stats().CacheHitRatio() = %g", srv.Scheduler().Stats().CacheHitRatio())
	}
}

// TestRequestAccounting: the handler wrapper counts responses by status
// code, observes request latency, and tallies cluster-forwarded
// requests separately from direct ones.
func TestRequestAccounting(t *testing.T) {
	srv, ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10}).Body.Close()
	postJSON(t, ts.URL+"/v1/run", RunRequest{Workload: "nope", P: 4, H: 2, N: 1024}).Body.Close()

	fwd, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	fwd.Header.Set(ForwardedByHeader, "emxcluster")
	resp, err := http.DefaultClient.Do(fwd)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	snap := srv.Registry().Snapshot()
	if snap[`emxd_http_responses_total{code="200"}`] < 2 {
		t.Errorf("200 responses = %v", snap[`emxd_http_responses_total{code="200"}`])
	}
	if snap[`emxd_http_responses_total{code="400"}`] != 1 {
		t.Errorf("400 responses = %v", snap[`emxd_http_responses_total{code="400"}`])
	}
	if snap["emxd_forwarded_requests_total"] != 1 {
		t.Errorf("forwarded = %v", snap["emxd_forwarded_requests_total"])
	}
	if snap["emxd_http_request_seconds_count"] != 3 {
		t.Errorf("latency observations = %v", snap["emxd_http_request_seconds_count"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, want := range []string{
		"# TYPE emxd_http_request_seconds histogram",
		`emxd_http_request_seconds_bucket{le="+Inf"}`,
		`emxd_http_responses_total{code="200"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDeadlineHeaderShedsExpiredRequests: a request carrying an
// already-expired X-Emx-Deadline is shed with 503 + Retry-After, the
// shed counter records the reason, and the run is never executed.
func TestDeadlineHeaderShedsExpiredRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	body, err := json.Marshal(RunRequest{Workload: "fft", P: 4, H: 2, N: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, FormatDeadline(time.Unix(1, 0)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if st := srv.Scheduler().Stats(); st.ShedDeadline != 1 || st.Started != 0 {
		t.Fatalf("stats after shed: %+v", st)
	}

	// A garbage or absent deadline header must not shed anything.
	req, err = http.NewRequest(http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "not-nanoseconds")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage deadline header: status %d, want 200", resp.StatusCode)
	}
}

// TestDeadlineHeaderRoundTrip: FormatDeadline and RequestDeadline are
// exact inverses, which is what lets the gateway relay the header
// byte-for-byte unchanged across hops.
func TestDeadlineHeaderRoundTrip(t *testing.T) {
	want := time.Unix(1754600000, 123456789)
	r, err := http.NewRequest(http.MethodPost, "/v1/run", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Header.Set(DeadlineHeader, FormatDeadline(want))
	got := RequestDeadline(r)
	if !got.Equal(want) {
		t.Fatalf("round trip: %v != %v", got, want)
	}
	if FormatDeadline(got) != FormatDeadline(want) {
		t.Fatalf("re-format changed the header: %q vs %q", FormatDeadline(got), FormatDeadline(want))
	}
	if !RequestDeadline(&http.Request{Header: http.Header{}}).IsZero() {
		t.Fatal("absent header should parse to zero time")
	}
}

// TestStatusLatencyQuantiles: /v1/status reports p50/p95/p99 of the
// HTTP latency histogram and the shed counter.
func TestStatusLatencyQuantiles(t *testing.T) {
	_, ts := newTestServer(t)
	req := RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10}
	postJSON(t, ts.URL+"/v1/run", req).Body.Close()
	postJSON(t, ts.URL+"/v1/run", req).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	status := decode[StatusResponse](t, resp)
	tp := status.Throughput
	if tp.LatencyP50 <= 0 || tp.LatencyP95 <= 0 || tp.LatencyP99 <= 0 {
		t.Fatalf("latency quantiles missing: p50=%v p95=%v p99=%v", tp.LatencyP50, tp.LatencyP95, tp.LatencyP99)
	}
	if tp.LatencyP50 > tp.LatencyP95 || tp.LatencyP95 > tp.LatencyP99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", tp.LatencyP50, tp.LatencyP95, tp.LatencyP99)
	}
}
