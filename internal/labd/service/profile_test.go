package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"emx/internal/obs"
)

func TestProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := ProfileRequest{
		RunRequest:  RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10},
		SliceCycles: 512,
	}

	resp := postJSON(t, ts.URL+"/v1/profile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(SourceHeader); got != "executed" {
		t.Fatalf("first profile source %q, want executed", got)
	}
	key := resp.Header.Get(RunKeyHeader)
	if len(key) != 64 {
		t.Fatalf("run key %q is not a content hash", key)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := obs.LoadProfile(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("response is not an emxprof profile: %v", err)
	}
	if prof.P != 4 || prof.Makespan == 0 || len(prof.Slices) == 0 {
		t.Fatalf("bad profile: P=%d makespan=%d slices=%d", prof.P, prof.Makespan, len(prof.Slices))
	}

	// The identical request is served from the profile cache,
	// byte-identically.
	resp2 := postJSON(t, ts.URL+"/v1/profile", req)
	if got := resp2.Header.Get(SourceHeader); got != "cache" {
		t.Fatalf("second profile source %q, want cache", got)
	}
	body2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != string(body2) {
		t.Fatal("cached profile differs from executed profile")
	}
}

func TestProfileFormats(t *testing.T) {
	_, ts := newTestServer(t)
	base := RunRequest{Workload: "fft", P: 4, H: 2, N: 64 << 10}

	rep := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{RunRequest: base, Format: "report"})
	body, _ := io.ReadAll(rep.Body)
	rep.Body.Close()
	if !strings.Contains(rep.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("report content type %q", rep.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "dropped=0") || !strings.Contains(string(body), "phase") {
		t.Errorf("report missing expected lines:\n%s", body)
	}

	tr := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{RunRequest: base, Format: "perfetto"})
	tbody, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbody, &doc); err != nil {
		t.Fatalf("perfetto body is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto trace has no events")
	}

	bad := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{RunRequest: base, Format: "flamegraph"})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status %d, want 400", bad.StatusCode)
	}
}

func TestProfileValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{
		RunRequest: RunRequest{Workload: "nosuch", P: 4, H: 1, N: 1024},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad workload status %d, want 400", resp.StatusCode)
	}
	neg := postJSON(t, ts.URL+"/v1/profile", ProfileRequest{
		RunRequest:  RunRequest{Workload: "fft", P: 4, H: 1, N: 1024},
		SliceCycles: -1,
	})
	neg.Body.Close()
	if neg.StatusCode != http.StatusBadRequest {
		t.Errorf("negative slice status %d, want 400", neg.StatusCode)
	}
}
