package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"emx/internal/metrics"
)

// newReplicatedPair builds two servers with R=2 replication wired to
// each other. Peer URLs only exist after the listeners do, so the ring
// arrives via SetPeers — the same late-binding path emxd uses when its
// flags name peers that have not booted yet.
func newReplicatedPair(t *testing.T) (a, b *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	mk := func() (*Server, *httptest.Server) {
		srv := New(Options{
			Scale:       hugeScale,
			Seed:        1,
			Replication: ReplicationOptions{Replicas: 2},
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); srv.Close() })
		return srv, ts
	}
	a, tsA = mk()
	b, tsB = mk()
	peers := []string{tsA.URL, tsB.URL}
	a.SetPeers(tsA.URL, peers)
	b.SetPeers(tsB.URL, peers)
	return a, b, tsA, tsB
}

// TestReplicationPushStoresOnPeer: executing a run on one node pushes
// the content-addressed result to its peer, which then serves the same
// request from cache without executing anything.
func TestReplicationPushStoresOnPeer(t *testing.T) {
	a, b, tsA, tsB := newReplicatedPair(t)
	req := RunRequest{Workload: "fft", P: 4, H: 2, N: 64 << 10}

	first := decode[RunResponse](t, postJSON(t, tsA.URL+"/v1/run", req))
	if first.Source != "executed" {
		t.Fatalf("first run source %q, want executed", first.Source)
	}
	if !a.FlushReplication(5 * time.Second) {
		t.Fatal("push queue did not drain")
	}

	if _, ok := b.Scheduler().CacheGet(first.Key); !ok {
		t.Fatalf("peer does not hold replicated key %s", first.Key)
	}
	if got := a.Registry().Snapshot()["emxd_cache_replica_pushes_total"]; got != 1 {
		t.Errorf("pushes on owner = %v, want 1", got)
	}
	if got := b.Registry().Snapshot()["emxd_cache_replica_stores_total"]; got != 1 {
		t.Errorf("stores on peer = %v, want 1", got)
	}

	second := decode[RunResponse](t, postJSON(t, tsB.URL+"/v1/run", req))
	if second.Source != "cached" {
		t.Fatalf("peer served source %q, want cached", second.Source)
	}
	if second.MakespanCycles != first.MakespanCycles || second.Key != first.Key {
		t.Fatalf("replicated result differs: %+v vs %+v", second, first)
	}
	if got := b.Scheduler().RunsExecuted(); got != 0 {
		t.Fatalf("peer executed %d runs for a replicated point", got)
	}
}

// TestPeerFillOnMiss: a node that never received the push still serves
// the point without executing — the cache miss triggers a bounded peer
// fill from the replica that has it.
func TestPeerFillOnMiss(t *testing.T) {
	// The holder runs unreplicated: it serves /v1/cache/get but pushes
	// nothing, so the filler's copy can only arrive via the fill path.
	holder := New(Options{Scale: hugeScale, Seed: 1})
	tsHolder := httptest.NewServer(holder.Handler())
	t.Cleanup(func() { tsHolder.Close(); holder.Close() })

	filler := New(Options{
		Scale:       hugeScale,
		Seed:        1,
		Replication: ReplicationOptions{Replicas: 2},
	})
	tsFiller := httptest.NewServer(filler.Handler())
	t.Cleanup(func() { tsFiller.Close(); filler.Close() })
	filler.SetPeers(tsFiller.URL, []string{tsHolder.URL, tsFiller.URL})

	req := RunRequest{Workload: "bitonic", P: 4, H: 2, N: 64 << 10}
	first := decode[RunResponse](t, postJSON(t, tsHolder.URL+"/v1/run", req))
	if first.Source != "executed" {
		t.Fatalf("holder source %q", first.Source)
	}

	filled := decode[RunResponse](t, postJSON(t, tsFiller.URL+"/v1/run", req))
	if filled.Source != "replicated" {
		t.Fatalf("fill source %q, want replicated", filled.Source)
	}
	if filled.MakespanCycles != first.MakespanCycles || filled.Key != first.Key {
		t.Fatalf("filled result differs: %+v vs %+v", filled, first)
	}
	if got := filler.Scheduler().RunsExecuted(); got != 0 {
		t.Fatalf("filler executed %d runs, want 0", got)
	}
	if got := filler.Registry().Snapshot()["emxd_cache_replica_fills_total"]; got != 1 {
		t.Errorf("fills = %v, want 1", got)
	}

	// Once filled, the copy is local: a repeat is a plain cache hit.
	again := decode[RunResponse](t, postJSON(t, tsFiller.URL+"/v1/run", req))
	if again.Source != "cached" {
		t.Errorf("post-fill repeat source %q, want cached", again.Source)
	}
}

// TestFillMissFallsBackToExecute: when no replica holds the point, the
// fill attempt counts a miss and the node executes normally — fill is
// an optimization, never a correctness dependency.
func TestFillMissFallsBackToExecute(t *testing.T) {
	_, b, _, tsB := newReplicatedPair(t)
	req := RunRequest{Workload: "spmv", P: 4, H: 2, N: 64 << 20}
	resp := decode[RunResponse](t, postJSON(t, tsB.URL+"/v1/run", req))
	if resp.Source != "executed" {
		t.Fatalf("source %q, want executed after a fill miss", resp.Source)
	}
	snap := b.Registry().Snapshot()
	if snap["emxd_cache_replica_fill_misses_total"] != 1 {
		t.Errorf("fill misses = %v, want 1", snap["emxd_cache_replica_fill_misses_total"])
	}
	if snap["emxd_cache_replica_fills_total"] != 0 {
		t.Errorf("fills = %v, want 0", snap["emxd_cache_replica_fills_total"])
	}
	if got := b.Scheduler().RunsExecuted(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

// TestCachePutDigestVerification: /v1/cache/put recomputes the digest
// before storing. A tampered envelope is rejected with 400 and a
// counter bump, and never reaches the cache.
func TestCachePutDigestVerification(t *testing.T) {
	srv := New(Options{
		Scale:       hugeScale,
		Seed:        1,
		Replication: ReplicationOptions{Replicas: 2},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	env, err := envelope("the-key", &metrics.Run{Label: "stub", P: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}

	post := func(v any) *http.Response {
		t.Helper()
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/cache/put", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Tampered payload: digest no longer matches.
	bad := env
	bad.Run = json.RawMessage(`{"label":"forged"}`)
	resp := post(bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tampered envelope got %d, want 400", resp.StatusCode)
	}
	if _, ok := srv.Scheduler().CacheGet("the-key"); ok {
		t.Fatal("tampered envelope reached the cache")
	}
	if got := srv.Registry().Snapshot()["emxd_cache_replica_digest_mismatch_total"]; got != 1 {
		t.Errorf("digest mismatches = %v, want 1", got)
	}

	// Keyless envelope: rejected before any digest work.
	bad = env
	bad.Key = ""
	resp = post(bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("keyless envelope got %d, want 400", resp.StatusCode)
	}

	// The honest envelope stores.
	resp = post(env)
	stored := decode[map[string]bool](t, resp)
	if resp.StatusCode != http.StatusOK || !stored["stored"] {
		t.Fatalf("valid envelope: status %d, stored %v", resp.StatusCode, stored)
	}
	if run, ok := srv.Scheduler().CacheGet("the-key"); !ok || run.Label != "stub" {
		t.Fatalf("stored entry wrong: %v, %v", run, ok)
	}
}

// TestCacheIndexListsSortedKeys: /v1/cache/index is the migrator's walk
// list — every local key, sorted, so diffs against the ring are
// deterministic.
func TestCacheIndexListsSortedKeys(t *testing.T) {
	srv, ts := newTestServer(t)
	for _, key := range []string{"bravo", "alpha", "charlie"} {
		if !srv.Scheduler().CachePut(key, &metrics.Run{Label: key}) {
			t.Fatalf("seeding %s failed", key)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/cache/index")
	if err != nil {
		t.Fatal(err)
	}
	idx := decode[CacheIndexResponse](t, resp)
	want := []string{"alpha", "bravo", "charlie"}
	if len(idx.Keys) != len(want) {
		t.Fatalf("index %v, want %v", idx.Keys, want)
	}
	for i, k := range want {
		if idx.Keys[i] != k {
			t.Fatalf("index %v not sorted, want %v", idx.Keys, want)
		}
	}
}

// TestAntiEntropyMigrationOnJoin is the membership-change acceptance
// test: a node that cached results while alone must, on learning of a
// joined peer, walk its cache index and offer the entries — so the
// R-copies invariant holds for results computed before the join, and
// the joiner can serve them even after the original owner dies.
func TestAntiEntropyMigrationOnJoin(t *testing.T) {
	// Boot A alone: replication is configured but has no peer to talk to.
	a := New(Options{
		Scale:       hugeScale,
		Seed:        1,
		Replication: ReplicationOptions{Replicas: 2},
	})
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(func() { tsA.Close(); a.Close() })
	a.SetPeers(tsA.URL, []string{tsA.URL})

	reqs := []RunRequest{
		{Workload: "fft", P: 4, H: 2, N: 64 << 10},
		{Workload: "bitonic", P: 8, H: 4, N: 128 << 10},
	}
	var keysCached []string
	for _, req := range reqs {
		resp := decode[RunResponse](t, postJSON(t, tsA.URL+"/v1/run", req))
		if resp.Source != "executed" {
			t.Fatalf("seed run source %q", resp.Source)
		}
		keysCached = append(keysCached, resp.Key)
	}

	// B joins; both nodes learn the new membership. A's SetPeers sees a
	// real change and kicks the background migrator.
	b := New(Options{
		Scale:       hugeScale,
		Seed:        1,
		Replication: ReplicationOptions{Replicas: 2},
	})
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(func() { tsB.Close(); b.Close() })
	peers := []string{tsA.URL, tsB.URL}
	b.SetPeers(tsB.URL, peers)
	a.SetPeers(tsA.URL, peers)

	deadline := time.Now().Add(5 * time.Second) //emx:hostclock test wait bound
	for {
		have := 0
		for _, k := range keysCached {
			if _, ok := b.Scheduler().CacheGet(k); ok {
				have++
			}
		}
		if have == len(keysCached) {
			break
		}
		if time.Now().After(deadline) { //emx:hostclock
			t.Fatalf("joiner holds %d/%d migrated entries", have, len(keysCached))
		}
		time.Sleep(5 * time.Millisecond) //emx:hostclock
	}
	if got := a.Registry().Snapshot()["emxd_cache_replica_migrated_total"]; got != 2 {
		t.Errorf("migrated = %v, want 2", got)
	}

	// The original owner dies; the joiner serves its pre-join results
	// from the migrated copies without executing anything.
	tsA.Close()
	for i, req := range reqs {
		resp := decode[RunResponse](t, postJSON(t, tsB.URL+"/v1/run", req))
		if resp.Source != "cached" {
			t.Errorf("post-death request %d source %q, want cached", i, resp.Source)
		}
	}
	if got := b.Scheduler().RunsExecuted(); got != 0 {
		t.Fatalf("joiner executed %d runs for migrated points", got)
	}
}

// TestMigrateSynchronous: the operational hook reports how many entries
// one anti-entropy walk offered.
func TestMigrateSynchronous(t *testing.T) {
	a, b, tsA, _ := newReplicatedPair(t)
	resp := decode[RunResponse](t, postJSON(t, tsA.URL+"/v1/run",
		RunRequest{Workload: "fft", P: 4, H: 2, N: 64 << 10}))
	if !a.FlushReplication(5 * time.Second) {
		t.Fatal("push queue did not drain")
	}
	// Drop the peer's copy so the walk has something to restore.
	bKeys := b.Scheduler().CacheKeys()
	if len(bKeys) != 1 {
		t.Fatalf("peer holds %d entries, want 1", len(bKeys))
	}

	if n := a.Migrate(); n != 1 {
		t.Fatalf("Migrate offered %d entries, want 1", n)
	}
	if !a.FlushReplication(5 * time.Second) {
		t.Fatal("migration pushes did not drain")
	}
	if _, ok := b.Scheduler().CacheGet(resp.Key); !ok {
		t.Fatal("peer lost the entry after migration")
	}

	// Disabled replication: Migrate is a counted no-op.
	plain, _ := newTestServer(t)
	if n := plain.Migrate(); n != 0 {
		t.Fatalf("unreplicated Migrate offered %d", n)
	}
}
