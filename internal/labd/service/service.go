// Package service is the HTTP layer of the emxd experiment daemon: it
// maps requests onto the labd scheduler, so identical experiment
// configurations are deduplicated, cached, and executed on a bounded
// worker pool regardless of how many clients ask for them.
//
// Endpoints:
//
//	POST /v1/run         execute (or fetch) one simulation point
//	POST /v1/figure      build a whole figure panel (see harness.PanelNames)
//	POST /v1/profile     execute one point with the emxprof tracer attached
//	GET  /v1/status      scheduler and cache state as JSON
//	GET  /metrics        Prometheus text exposition
//	POST /v1/cache/put   accept a replicated cache entry from a peer
//	POST /v1/cache/get   export one cache entry to a peer (replica fill)
//	GET  /v1/cache/index list the cache keys this node holds
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"emx/internal/harness"
	"emx/internal/labd"
	"emx/internal/metrics"
	"emx/internal/proc"
)

// ForwardedByHeader marks a request as relayed by the cluster layer
// (the emxcluster gateway or cluster.Client). Nodes count these so an
// operator can tell direct traffic from cluster-routed traffic.
const ForwardedByHeader = "X-Emx-Forwarded-By"

// DeadlineHeader carries a request's absolute deadline as decimal
// nanoseconds since the Unix epoch. cluster.Client stamps it from its
// caller's deadline, the gateway relays it unchanged, and the labd
// scheduler sheds any request still queued when it expires — so a
// client that has given up never costs a worker an execution.
const DeadlineHeader = "X-Emx-Deadline"

// RequestDeadline parses r's DeadlineHeader. The zero time means no
// deadline (absent or unparseable header: deadlines are best-effort
// load shedding, not authentication — garbage degrades to "none").
func RequestDeadline(r *http.Request) time.Time {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return time.Time{}
	}
	ns, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ns <= 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// FormatDeadline renders a deadline for the DeadlineHeader.
// FormatDeadline and RequestDeadline round-trip exactly, which is what
// lets the gateway relay the header byte-for-byte.
func FormatDeadline(deadline time.Time) string {
	return strconv.FormatInt(deadline.UnixNano(), 10)
}

// Options configures a Server. Zero values select the harness defaults
// (DefaultScale, seed 1) and labd's pool defaults.
type Options struct {
	// Scale is the default scale-down factor for requests that omit one.
	Scale int
	// Seed is the default input generator seed.
	Seed int64
	// Shards is the default engine-shard count for requests that omit
	// one (0: auto-select per point, 1: single engine). Host-side only;
	// it never enters a run's cache identity.
	Shards int
	// Sched configures the underlying scheduler (workers, queue, cache).
	Sched labd.Options
	// Replication configures N-way cache replication across cluster
	// peers; the zero value disables it.
	Replication ReplicationOptions
}

// Server owns a scheduler and serves the experiment API on it.
type Server struct {
	opts  Options
	sched *labd.Scheduler
	repl  *replicator // nil when replication is disabled
	mux   *http.ServeMux
	start time.Time

	latency   *metrics.Histogram
	forwarded *metrics.Counter
	responses func(code int) *metrics.Counter

	prof     *profileCache
	profiled func(source string) *metrics.Counter
}

// New builds a server and starts its scheduler.
func New(opts Options) *Server {
	if opts.Scale <= 0 {
		opts.Scale = harness.DefaultScale
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Sched.Registry == nil {
		opts.Sched.Registry = metrics.NewRegistry()
	}
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(), //emx:hostclock serving-uptime observability
	}
	if opts.Replication.Replicas > 1 {
		// The replicator's hooks must exist before the scheduler does;
		// its view of the cache is wired just after.
		s.repl = newReplicator(opts.Replication, opts.Sched.Registry)
		opts.Sched.Fill = s.repl.fill
		opts.Sched.OnFill = func(key string, run *metrics.Run) { s.repl.offer(key, run) }
	}
	s.sched = labd.New(opts.Sched)
	reg := s.sched.Registry()
	s.latency = reg.Histogram("emxd_http_request_seconds",
		"HTTP request latency on the serving host", metrics.DefLatencyBuckets)
	s.forwarded = reg.Counter("emxd_forwarded_requests_total",
		"requests relayed by the cluster gateway or cluster client")
	s.responses = func(code int) *metrics.Counter {
		return reg.Labeled("emxd_http_responses_total",
			"HTTP responses by status code", "code", strconv.Itoa(code))
	}
	s.prof = newProfileCache(32)
	s.profiled = func(source string) *metrics.Counter {
		return reg.Labeled("emxd_profiled_runs_total",
			"profiled runs served, by how the profile was obtained", "source", source)
	}
	reg.Gauge("emxd_profile_cache_entries", "profiled points held in the profile cache",
		func() float64 { return float64(s.prof.len()) })
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/figure", s.handleFigure)
	s.mux.HandleFunc("/v1/profile", s.handleProfile)
	s.mux.HandleFunc("/v1/status", s.handleStatus)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/cache/put", s.handleCachePut)
	s.mux.HandleFunc("/v1/cache/get", s.handleCacheGet)
	s.mux.HandleFunc("/v1/cache/index", s.handleCacheIndex)
	return s
}

// SetPeers installs (or replaces) the replica ring: self is this node's
// base URL as peers address it, peers is the full member set. A real
// membership change kicks the anti-entropy migrator in the background,
// restoring the R-copies invariant after a join or failback. No-op when
// replication is disabled.
func (s *Server) SetPeers(self string, peers []string) {
	if s.repl == nil {
		return
	}
	if s.repl.setPeers(self, peers) {
		go s.repl.migrate(s.sched)
	}
}

// Migrate runs one synchronous anti-entropy walk and returns how many
// entries were offered to peers. Test and operational hook; the
// background trigger is SetPeers.
func (s *Server) Migrate() int {
	if s.repl == nil {
		return 0
	}
	return s.repl.migrate(s.sched)
}

// FlushReplication blocks until queued replica pushes have been
// attempted (or timeout). Reports whether the queue drained. Always
// true when replication is disabled.
func (s *Server) FlushReplication(timeout time.Duration) bool {
	if s.repl == nil {
		return true
	}
	return s.repl.quiesce(timeout)
}

// handleCachePut accepts one replicated cache entry from a peer. The
// digest is recomputed before the entry is stored; a mismatch is a 400
// and a counter bump, never a cache write.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var env CacheEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		s.writeError(w, fmt.Errorf("bad envelope: %w", err))
		return
	}
	run, err := openEnvelope(env)
	if err != nil {
		if s.repl != nil {
			s.repl.mismatches.Inc()
		}
		s.writeError(w, err)
		return
	}
	stored := s.sched.CachePut(env.Key, run)
	if stored && s.repl != nil {
		s.repl.stores.Inc()
	}
	writeJSON(w, http.StatusOK, map[string]bool{"stored": stored})
}

// handleCacheGet exports one cache entry (the peer-fill read side).
// 404 means "no replica here" — the caller tries the next replica or
// recomputes.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req cacheGetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	run, ok := s.sched.CacheGet(req.Key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not cached: " + req.Key})
		return
	}
	env, err := envelope(req.Key, run)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, env)
}

// handleCacheIndex lists this node's cache keys (sorted), the walk list
// a peer's migrator — or an operator — can diff against the ring.
func (s *Server) handleCacheIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CacheIndexResponse{Keys: s.sched.CacheKeys()})
}

// Handler returns the HTTP handler serving the API. Every request
// passes through the accounting wrapper: response-code counters, the
// latency histogram, and the forwarded-origin counter.
func (s *Server) Handler() http.Handler { return http.HandlerFunc(s.serve) }

func (s *Server) serve(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //emx:hostclock request-latency observability
	if r.Header.Get(ForwardedByHeader) != "" {
		s.forwarded.Inc()
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	s.responses(sw.code).Inc()
	s.latency.Observe(time.Since(start).Seconds()) //emx:hostclock
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Scheduler exposes the underlying scheduler (shared with in-process
// sweeps and tests).
func (s *Server) Scheduler() *labd.Scheduler { return s.sched }

// Registry exposes the operational metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.sched.Registry() }

// Close stops the scheduler, draining queued runs, and stops the
// replication push loop.
func (s *Server) Close() {
	s.sched.Close()
	if s.repl != nil {
		s.repl.close()
	}
}

// RunRequest is the body of POST /v1/run: one simulation point in the
// paper's vocabulary. N is the paper-equivalent size; the simulated
// size is derived via the scale factor exactly as harness sweeps do.
type RunRequest struct {
	Workload  string `json:"workload"`             // bitonic | fft | spmv
	P         int    `json:"p"`                    // processors
	H         int    `json:"h"`                    // threads per processor
	N         int    `json:"n"`                    // paper-equivalent element count
	Scale     int    `json:"scale,omitempty"`      // 0: server default
	Seed      int64  `json:"seed,omitempty"`       // 0: server default
	Mode      string `json:"mode,omitempty"`       // "bypass" (default) | "exu"
	BlockRead bool   `json:"block_read,omitempty"` // bitonic block-read ablation
	ReplyHigh bool   `json:"reply_high,omitempty"` // resume-first reply scheduling
	Verify    bool   `json:"verify,omitempty"`     // run the workload self-check
	Shards    int    `json:"shards,omitempty"`     // engine shards (0: server default)
}

// RunResponse reports one point's measurements and how they were
// obtained (executed, cached, or coalesced).
type RunResponse struct {
	Key             string  `json:"key"`
	Source          string  `json:"source"`
	Workload        string  `json:"workload"`
	P               int     `json:"p"`
	H               int     `json:"h"`
	SimN            int     `json:"sim_n"`
	PaperN          int     `json:"paper_n"`
	MakespanCycles  uint64  `json:"makespan_cycles"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	CommMeanCycles  float64 `json:"comm_mean_cycles"`
	ComputePct      float64 `json:"compute_pct"`
	OverheadPct     float64 `json:"overhead_pct"`
	CommPct         float64 `json:"comm_pct"`
	SwitchPct       float64 `json:"switch_pct"`
	Switches        uint64  `json:"switches"`
}

// FigureRequest is the body of POST /v1/figure.
type FigureRequest struct {
	Fig    string `json:"fig"`              // panel name, see harness.PanelNames
	Scale  int    `json:"scale,omitempty"`  // 0: server default
	Seed   int64  `json:"seed,omitempty"`   // 0: server default
	Shards int    `json:"shards,omitempty"` // engine shards (0: server default)
}

// FigureResponse carries the panel's figures.
type FigureResponse struct {
	Fig     string           `json:"fig"`
	Scale   int              `json:"scale"`
	Seed    int64            `json:"seed"`
	Figures []harness.Figure `json:"figures"`
}

// StatusResponse is GET /v1/status.
type StatusResponse struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Workers       int                `json:"workers"`
	QueueDepth    int                `json:"queue_depth"`
	QueueCap      int                `json:"queue_cap"`
	CacheEntries  int                `json:"cache_entries"`
	CacheCap      int                `json:"cache_cap"`
	DefaultScale  int                `json:"default_scale"`
	DefaultSeed   int64              `json:"default_seed"`
	DefaultShards int                `json:"default_shards"`
	Replicas      int                `json:"replicas,omitempty"`
	Panels        []string           `json:"panels"`
	Throughput    Throughput         `json:"throughput"`
	Counters      map[string]float64 `json:"counters"`
}

// Throughput is the simulator's host throughput over every run this
// daemon executed: how fast the host burns simulated cycles and engine
// events. Cached and coalesced requests contribute nothing; host
// seconds sum per-run wall-clock time across workers. These numbers
// describe the serving host, not the simulated machine — they vary
// across hardware while the simulation results do not.
type Throughput struct {
	SimCycles       uint64  `json:"sim_cycles_total"`
	SimEvents       uint64  `json:"sim_events_total"`
	HostRunSeconds  float64 `json:"host_run_seconds_total"`
	CyclesPerSecond float64 `json:"sim_cycles_per_second"`
	EventsPerSecond float64 `json:"sim_events_per_second"`

	// QueueDepth and CacheHitRatio describe current load: runs admitted
	// but not started, and the fraction of resolved requests served from
	// the result cache. The cluster membership prober reads both for
	// load-aware hedging (a backed-up or cold node is a poor hedge
	// target), so they live here with the other host-side rates.
	QueueDepth    int     `json:"queue_depth"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// HTTP request latency quantiles on this host, estimated by linear
	// interpolation inside the fixed emxd_http_request_seconds buckets.
	LatencyP50 float64 `json:"http_latency_p50_seconds"`
	LatencyP95 float64 `json:"http_latency_p95_seconds"`
	LatencyP99 float64 `json:"http_latency_p99_seconds"`

	// ShedRequests counts requests shed before execution (deadline
	// expiry; queue-full rejections are emxd_runs_rejected_total).
	ShedRequests uint64 `json:"shed_requests_total"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps scheduler backpressure onto HTTP: a full queue is 503
// with a Retry-After estimating how long the backlog takes to drain —
// never a blocking wait and never a 500 — so cluster clients get a real
// signal to back off or fail over.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, labd.ErrQueueFull), errors.Is(err, labd.ErrDeadlineExceeded):
		// Both are shed load, and both get the adaptive drain estimate: a
		// deadline shed means the queue outlasted the client's patience,
		// which is exactly when the retry hint matters most.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	case errors.Is(err, labd.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// retryAfterSeconds estimates queue-drain time from the observed mean
// run duration: depth/workers runs ahead of a newly admitted one, each
// costing ~HostSeconds/Started. Clamped to [1, 30] so a cold scheduler
// (no history) or a pathological backlog still yields a sane hint.
func (s *Server) retryAfterSeconds() int {
	st := s.sched.Stats()
	secs := 1
	if st.Started > 0 && st.Workers > 0 {
		mean := st.HostSeconds / float64(st.Started)
		secs = int(mean * float64(st.QueueDepth) / float64(st.Workers))
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// deadlineExec binds one request's deadline onto every point a panel
// sweep fans into, so a figure request that outlives its caller sheds
// its remaining points instead of simulating them for nobody.
type deadlineExec struct {
	sched    *labd.Scheduler
	deadline time.Time
}

func (e deadlineExec) Do(key string, fn func() (*metrics.Run, error)) (*metrics.Run, labd.Source, error) {
	return e.sched.DoDeadline(key, e.deadline, fn)
}

// executor returns the scheduler as a harness.Executor, deadline-bound
// when the request carries one.
func (s *Server) executor(deadline time.Time) harness.Executor {
	if deadline.IsZero() {
		return s.sched
	}
	return deadlineExec{sched: s.sched, deadline: deadline}
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return false
	}
	return true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	ps, scale, err := s.pointSpec(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	run, src, err := s.sched.DoDeadline(ps.Key(scale), RequestDeadline(r), func() (*metrics.Run, error) {
		return harness.RunPoint(ps)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	b := run.TotalBreakdown()
	c, o, m, sw := b.Fractions()
	writeJSON(w, http.StatusOK, RunResponse{
		Key:             ps.Key(scale),
		Source:          src.String(),
		Workload:        ps.Workload.String(),
		P:               run.P,
		H:               run.H,
		SimN:            run.N,
		PaperN:          run.PaperN,
		MakespanCycles:  uint64(run.Makespan),
		MakespanSeconds: float64(run.Makespan) * 50e-9,
		CommMeanCycles:  run.MeanCommTime(),
		ComputePct:      100 * c,
		OverheadPct:     100 * o,
		CommPct:         100 * m,
		SwitchPct:       100 * sw,
		Switches:        run.SumCounter((*metrics.PE).TotalSwitches),
	})
}

// pointSpec validates a run request and resolves it to a PointSpec,
// filling the server's default shard count when the request omits one.
func (s *Server) pointSpec(req RunRequest) (harness.PointSpec, int, error) {
	ps, scale, err := ResolveRun(req, s.opts.Scale, s.opts.Seed)
	if err == nil && ps.Shards == 0 {
		ps.Shards = s.opts.Shards
	}
	return ps, scale, err
}

// ResolveRun validates a run request against default scale/seed and
// resolves it to the point it will execute, plus the effective scale.
// It is the single request→identity mapping: the cluster gateway calls
// it with the same defaults as its member nodes, so the routing key it
// hashes is exactly the cache key the owning node will store under.
func ResolveRun(req RunRequest, defaultScale int, defaultSeed int64) (harness.PointSpec, int, error) {
	w, err := harness.ParseWorkload(strings.ToLower(req.Workload))
	if err != nil {
		return harness.PointSpec{}, 0, err
	}
	if req.P < 1 {
		return harness.PointSpec{}, 0, fmt.Errorf("p must be >= 1, got %d", req.P)
	}
	if req.H < 1 {
		return harness.PointSpec{}, 0, fmt.Errorf("h must be >= 1, got %d", req.H)
	}
	if req.N < 1 {
		return harness.PointSpec{}, 0, fmt.Errorf("n must be >= 1, got %d", req.N)
	}
	scale := req.Scale
	if scale == 0 {
		scale = defaultScale
	}
	if scale < 1 {
		return harness.PointSpec{}, 0, fmt.Errorf("scale must be >= 1, got %d", scale)
	}
	seed := req.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		return harness.PointSpec{}, 0, err
	}
	if err := validShards(req.Shards); err != nil {
		return harness.PointSpec{}, 0, err
	}
	sw := harness.Sweep{P: req.P, Scale: scale, Threads: []int{req.H}}
	return harness.PointSpec{
		Workload:  w,
		P:         req.P,
		SimN:      sw.SimSize(req.N),
		PaperN:    req.N,
		H:         req.H,
		Mode:      mode,
		BlockRead: req.BlockRead,
		ReplyHigh: req.ReplyHigh,
		Seed:      seed,
		Verify:    req.Verify,
		Shards:    req.Shards,
	}, scale, nil
}

// validShards rejects shard counts the core machine would refuse, with
// the request-level vocabulary (the P-dependent checks stay with
// core.Config.Validate).
func validShards(shards int) error {
	if shards < 0 {
		return fmt.Errorf("shards must be >= 0, got %d", shards)
	}
	if shards > 1 && shards&(shards-1) != 0 {
		return fmt.Errorf("shards must be a power of two, got %d", shards)
	}
	return nil
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req FigureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	name := strings.ToLower(req.Fig)
	if !harness.ValidPanel(name) {
		s.writeError(w, fmt.Errorf("unknown panel %q: valid panels are %s",
			req.Fig, strings.Join(harness.PanelNames(), ", ")))
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = s.opts.Scale
	}
	if scale < 1 {
		s.writeError(w, fmt.Errorf("scale must be >= 1, got %d", scale))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.opts.Seed
	}
	shards := req.Shards
	if shards == 0 {
		shards = s.opts.Shards
	}
	if err := validShards(shards); err != nil {
		s.writeError(w, err)
		return
	}
	pr := harness.NewPanelRunner(harness.PanelOptions{Scale: scale, Seed: seed, Shards: shards},
		s.executor(RequestDeadline(r)))
	figs, err := pr.Panel(name)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FigureResponse{
		Fig: name, Scale: scale, Seed: seed, Figures: figs,
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	cps, eps := st.Throughput()
	writeJSON(w, http.StatusOK, StatusResponse{
		UptimeSeconds: time.Since(s.start).Seconds(), //emx:hostclock
		Workers:       st.Workers,
		QueueDepth:    st.QueueDepth,
		QueueCap:      st.QueueCap,
		CacheEntries:  st.CacheLen,
		CacheCap:      st.CacheCap,
		DefaultScale:  s.opts.Scale,
		DefaultSeed:   s.opts.Seed,
		DefaultShards: s.opts.Shards,
		Replicas:      s.opts.Replication.Replicas,
		Panels:        harness.PanelNames(),
		Throughput: Throughput{
			SimCycles:       st.SimCycles,
			SimEvents:       st.SimEvents,
			HostRunSeconds:  st.HostSeconds,
			CyclesPerSecond: cps,
			EventsPerSecond: eps,
			QueueDepth:      st.QueueDepth,
			CacheHitRatio:   st.CacheHitRatio(),
			LatencyP50:      s.latency.Quantile(0.50),
			LatencyP95:      s.latency.Quantile(0.95),
			LatencyP99:      s.latency.Quantile(0.99),
			ShedRequests:    st.ShedDeadline,
		},
		Counters: s.sched.Registry().Snapshot(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.sched.Registry().WriteProm(w)
}

func parseMode(mode string) (proc.ServiceMode, error) {
	switch strings.ToLower(mode) {
	case "", "bypass":
		return proc.ServiceBypass, nil
	case "exu", "em4", "em-4":
		return proc.ServiceEXU, nil
	}
	return 0, fmt.Errorf("unknown service mode %q (want bypass or exu)", mode)
}
