package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"emx/internal/harness"
	"emx/internal/metrics"
	"emx/internal/obs"
)

// ProfileRequest is the body of POST /v1/profile: one simulation point
// in the /v1/run vocabulary, executed with the emxprof tracer attached.
// Profiled execution is cycle-identical to plain execution, so the
// measurements it implies match what /v1/run reports for the same point.
type ProfileRequest struct {
	RunRequest
	// SliceCycles, when >0, adds whole-machine time slices of this width
	// to the profile.
	SliceCycles int64 `json:"slice_cycles,omitempty"`
	// Format selects the response body: "json" (default, the emxprof/v1
	// profile), "report" (text), or "perfetto" (trace-event JSON).
	Format string `json:"format,omitempty"`
}

// RunKeyHeader and SourceHeader carry the point's content key and how
// the profile was obtained ("executed" or "cache") on /v1/profile
// responses, whose bodies are raw emxprof artifacts rather than
// envelopes.
const (
	RunKeyHeader = "X-Emx-Run-Key"
	SourceHeader = "X-Emx-Source"
)

// profileCache is a small LRU of profiled points. Profiles carry the
// retained event stream, so they are far heavier than a metrics.Run —
// the bound is deliberately separate from (and much smaller than) the
// scheduler's run cache.
type profileCache struct {
	mu  sync.Mutex
	cap int
	seq uint64
	m   map[string]*profEntry
}

type profEntry struct {
	pt   *harness.ProfiledPoint
	used uint64
}

func newProfileCache(capacity int) *profileCache {
	return &profileCache{cap: capacity, m: map[string]*profEntry{}}
}

func (c *profileCache) get(key string) (*harness.ProfiledPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.seq++
	e.used = c.seq
	return e.pt, true
}

func (c *profileCache) put(key string, pt *harness.ProfiledPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	c.m[key] = &profEntry{pt: pt, used: c.seq}
	for len(c.m) > c.cap {
		var oldest string
		var min uint64
		// Minimum of unique use-stamps: the same entry wins in any visit
		// order.
		for k, e := range c.m { //emx:orderinvariant
			if oldest == "" || e.used < min {
				oldest, min = k, e.used
			}
		}
		delete(c.m, oldest)
	}
}

func (c *profileCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var req ProfileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	format := strings.ToLower(req.Format)
	switch format {
	case "", "json", "report", "perfetto":
	default:
		s.writeError(w, fmt.Errorf("unknown profile format %q (want json, report, or perfetto)", req.Format))
		return
	}
	if req.SliceCycles < 0 {
		s.writeError(w, fmt.Errorf("slice_cycles must be >= 0, got %d", req.SliceCycles))
		return
	}
	ps, scale, err := s.pointSpec(req.RunRequest)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// The profile's identity is the run identity plus the profiling
	// knobs; the render format is presentation only and stays out of it.
	key := fmt.Sprintf("%s/slice=%d", ps.Key(scale), req.SliceCycles)

	pt, cached := s.prof.get(key)
	if !cached {
		pt, err = s.profilePoint(key, ps, scale, req.SliceCycles, RequestDeadline(r))
		if err != nil {
			s.writeError(w, err)
			return
		}
	}
	source := "executed"
	if cached {
		source = "cache"
	}
	s.profiled(source).Inc()

	w.Header().Set(RunKeyHeader, ps.Key(scale))
	w.Header().Set(SourceHeader, source)
	switch format {
	case "report":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		pt.Profile.WriteReport(w)
	case "perfetto":
		w.Header().Set("Content-Type", "application/json")
		tw := obs.NewTraceWriter(w)
		obs.AppendTrace(tw, 1, pt.Label, pt.Profile, pt.Events, pt.Names)
		tw.Close()
	default:
		w.Header().Set("Content-Type", "application/json")
		pt.Profile.WriteJSON(w)
	}
}

// profilePoint executes one observed point through the scheduler's
// worker pool and stores the result in the profile cache. The
// scheduler's run cache or coalescing may satisfy the Do without
// invoking our function — a skipped execution collects no profile — so
// the fallback re-executes inline against the same deterministic
// simulation (byte-identical profile, just not pooled).
func (s *Server) profilePoint(key string, ps harness.PointSpec, scale int, slice int64, deadline time.Time) (*harness.ProfiledPoint, error) {
	pc := harness.NewProfileCollector(harness.ObsOptions{SliceCycles: slice})
	if _, _, err := s.sched.DoDeadline("profile/"+key, deadline, func() (*metrics.Run, error) {
		return pc.RunPointObserved(ps, scale)
	}); err != nil {
		return nil, err
	}
	pts := pc.Points()
	if len(pts) == 0 {
		if pt, ok := s.prof.get(key); ok {
			return pt, nil
		}
		if _, err := pc.RunPointObserved(ps, scale); err != nil {
			return nil, err
		}
		pts = pc.Points()
	}
	pt := pts[0]
	s.prof.put(key, pt)
	return pt, nil
}
