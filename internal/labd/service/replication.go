package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"emx/internal/metrics"
	"emx/internal/ring"
)

// ReplicationOptions configures N-way replication of the run cache
// across a cluster. Replication is best-effort and asynchronous: it
// never blocks or fails a request, it only makes the cluster's caches
// survive node loss. Correctness needs no coordination — entries are
// content-addressed results of pure functions, so every copy of a key
// is byte-identical, and a digest check on receipt enforces it.
type ReplicationOptions struct {
	// Replicas is the number of copies per entry, R, counting the copy
	// on the executing node. <= 1 disables replication.
	Replicas int
	// Self is this node's base URL exactly as peers address it (the
	// ring member string). Required when Replicas > 1 and Peers are set
	// at construction; may also arrive later via Server.SetPeers.
	Self string
	// Peers is the cluster member set (base URLs, including Self).
	Peers []string
	// QueueSize bounds the asynchronous push queue (<= 0: 256). A full
	// queue drops the push and counts it — never blocks the worker.
	QueueSize int
	// PushTimeout bounds one replica push (<= 0: 2s).
	PushTimeout time.Duration
	// FillTimeout bounds the whole peer-fill attempt on a cache miss
	// (<= 0: 1s). The request's own deadline tightens it further.
	FillTimeout time.Duration
	// HTTPClient overrides the transport (tests); nil uses a default.
	HTTPClient *http.Client
}

const (
	defaultReplicaQueue = 256
	defaultPushTimeout  = 2 * time.Second
	defaultFillTimeout  = time.Second
)

// CacheEnvelope is the wire form of one replicated cache entry, used by
// POST /v1/cache/put and returned by POST /v1/cache/get. Digest is the
// hex SHA-256 of the Run JSON; the receiver recomputes it before
// storing, so a corrupted or version-skewed copy is rejected rather
// than cached.
type CacheEnvelope struct {
	Key    string          `json:"key"`
	Digest string          `json:"digest"`
	Run    json.RawMessage `json:"run"`
}

// cacheGetRequest is the body of POST /v1/cache/get.
type cacheGetRequest struct {
	Key string `json:"key"`
}

// CacheIndexResponse is GET /v1/cache/index: the node's cache keys in
// sorted order.
type CacheIndexResponse struct {
	Keys []string `json:"keys"`
}

// runDigest is the digest both ends compute: hex SHA-256 over the
// run's compacted JSON bytes. Compacting first makes the digest
// whitespace-canonical — HTTP layers that re-encode the envelope (an
// indenting JSON writer re-formats embedded RawMessage bytes) must not
// read as corruption, only real content changes should.
func runDigest(runJSON []byte) string {
	var compact bytes.Buffer
	if err := json.Compact(&compact, runJSON); err == nil {
		runJSON = compact.Bytes()
	}
	sum := sha256.Sum256(runJSON)
	return hex.EncodeToString(sum[:])
}

// envelope serializes a run into its replication wire form.
func envelope(key string, run *metrics.Run) (CacheEnvelope, error) {
	rj, err := json.Marshal(run)
	if err != nil {
		return CacheEnvelope{}, err
	}
	return CacheEnvelope{Key: key, Digest: runDigest(rj), Run: rj}, nil
}

// openEnvelope verifies an envelope's digest and decodes the run.
func openEnvelope(env CacheEnvelope) (*metrics.Run, error) {
	if env.Key == "" {
		return nil, fmt.Errorf("replication envelope missing key")
	}
	if got := runDigest(env.Run); got != env.Digest {
		return nil, fmt.Errorf("replication digest mismatch for %s: got %s, want %s", env.Key, got, env.Digest)
	}
	var run metrics.Run
	if err := json.Unmarshal(env.Run, &run); err != nil {
		return nil, fmt.Errorf("replication envelope for %s undecodable: %w", env.Key, err)
	}
	return &run, nil
}

// pushTask is one queued replica push: a pre-marshaled envelope bound
// for one peer.
type pushTask struct {
	key  string
	node string
	body []byte
}

// replicator implements the three replication paths: asynchronous push
// on cache fill, bounded-deadline peer fill on cache miss, and the
// anti-entropy migration walk on membership change. It is wired into
// the scheduler via labd.Options.Fill / labd.Options.OnFill, and its
// store side is served by the Server's /v1/cache/* handlers.
type replicator struct {
	replicas    int
	pushTimeout time.Duration
	fillTimeout time.Duration
	http        *http.Client

	mu      sync.Mutex
	self    string
	ring    *ring.Ring
	pending int // queued + in-flight pushes, for quiesce

	queue chan pushTask
	stop  chan struct{}
	done  chan struct{}

	pushes     *metrics.Counter
	pushErrors *metrics.Counter
	stores     *metrics.Counter
	fills      *metrics.Counter
	fillMisses *metrics.Counter
	mismatches *metrics.Counter
	drops      *metrics.Counter
	migrated   *metrics.Counter
}

// replicaCache is the slice of the scheduler the replicator needs:
// installing peer copies, exporting local ones, and walking the index.
type replicaCache interface {
	CacheGet(key string) (*metrics.Run, bool)
	CachePut(key string, run *metrics.Run) bool
	CacheKeys() []string
}

func newReplicator(o ReplicationOptions, reg *metrics.Registry) *replicator {
	if o.QueueSize <= 0 {
		o.QueueSize = defaultReplicaQueue
	}
	if o.PushTimeout <= 0 {
		o.PushTimeout = defaultPushTimeout
	}
	if o.FillTimeout <= 0 {
		o.FillTimeout = defaultFillTimeout
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	r := &replicator{
		replicas:    o.Replicas,
		pushTimeout: o.PushTimeout,
		fillTimeout: o.FillTimeout,
		http:        hc,
		self:        o.Self,
		ring:        ring.New(o.Peers),
		queue:       make(chan pushTask, o.QueueSize),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),

		pushes:     reg.Counter("emxd_cache_replica_pushes_total", "replica cache entries pushed to peers"),
		pushErrors: reg.Counter("emxd_cache_replica_push_errors_total", "replica pushes that failed (peer down or rejected)"),
		stores:     reg.Counter("emxd_cache_replica_stores_total", "replica cache entries accepted from peers"),
		fills:      reg.Counter("emxd_cache_replica_fills_total", "cache misses served by fetching a peer replica"),
		fillMisses: reg.Counter("emxd_cache_replica_fill_misses_total", "peer-fill attempts that found no replica"),
		mismatches: reg.Counter("emxd_cache_replica_digest_mismatch_total", "replica envelopes rejected by the digest check"),
		drops:      reg.Counter("emxd_cache_replica_queue_drops_total", "replica pushes dropped because the queue was full"),
		migrated:   reg.Counter("emxd_cache_replica_migrated_total", "cache entries offered to peers by the anti-entropy migrator"),
	}
	reg.Gauge("emxd_cache_replicas", "configured replica count per cache entry",
		func() float64 { return float64(r.replicas) })
	go r.pushLoop()
	return r
}

// enabled reports whether replication can do anything right now: R > 1
// and at least one peer besides self.
func (r *replicator) enabled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replicas > 1 && r.ring.Len() > 1 && r.self != ""
}

// replicaTargets returns key's replica set excluding self, in ranked
// order.
func (r *replicator) replicaTargets(key string) []string {
	r.mu.Lock()
	rg, self := r.ring, r.self
	r.mu.Unlock()
	set := rg.ReplicaSet(key, r.replicas)
	out := make([]string, 0, len(set))
	for _, m := range set {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// offer pushes key's entry toward the other members of its replica
// set, asynchronously and best-effort: a full queue drops, a dead peer
// just counts an error. Returns how many pushes were enqueued.
func (r *replicator) offer(key string, run *metrics.Run) int {
	if !r.enabled() {
		return 0
	}
	targets := r.replicaTargets(key)
	if len(targets) == 0 {
		return 0
	}
	env, err := envelope(key, run)
	if err != nil {
		r.pushErrors.Inc()
		return 0
	}
	body, err := json.Marshal(env)
	if err != nil {
		r.pushErrors.Inc()
		return 0
	}
	enqueued := 0
	for _, node := range targets {
		r.mu.Lock()
		r.pending++
		r.mu.Unlock()
		select {
		case r.queue <- pushTask{key: key, node: node, body: body}:
			enqueued++
		default:
			r.mu.Lock()
			r.pending--
			r.mu.Unlock()
			r.drops.Inc()
		}
	}
	return enqueued
}

// pushLoop drains the push queue: one POST /v1/cache/put per task.
func (r *replicator) pushLoop() {
	defer close(r.done)
	for {
		select {
		case t := <-r.queue:
			r.push(t)
			r.mu.Lock()
			r.pending--
			r.mu.Unlock()
		case <-r.stop:
			return
		}
	}
}

func (r *replicator) push(t pushTask) {
	ctx, cancel := context.WithTimeout(context.Background(), r.pushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.node+"/v1/cache/put", bytes.NewReader(t.body))
	if err != nil {
		r.pushErrors.Inc()
		return
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := r.http.Do(req)
	if err != nil {
		r.pushErrors.Inc()
		return
	}
	defer res.Body.Close()
	if res.StatusCode >= 300 {
		r.pushErrors.Inc()
		return
	}
	r.pushes.Inc()
}

// fill is the scheduler's Fill hook: on a cache miss, ask the other
// members of key's replica set for their copy before paying an
// execution. The whole attempt is bounded by FillTimeout and, when the
// request carries a deadline, never outlives it.
func (r *replicator) fill(key string, deadline time.Time) *metrics.Run {
	if !r.enabled() {
		return nil
	}
	targets := r.replicaTargets(key)
	if len(targets) == 0 {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.fillTimeout)
	defer cancel()
	if !deadline.IsZero() {
		var cancel2 context.CancelFunc
		ctx, cancel2 = context.WithDeadline(ctx, deadline)
		defer cancel2()
	}
	body, err := json.Marshal(cacheGetRequest{Key: key})
	if err != nil {
		return nil
	}
	for _, node := range targets {
		if run := r.fetch(ctx, node, key, body); run != nil {
			r.fills.Inc()
			return run
		}
	}
	r.fillMisses.Inc()
	return nil
}

func (r *replicator) fetch(ctx context.Context, node, key string, body []byte) *metrics.Run {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, node+"/v1/cache/get", bytes.NewReader(body))
	if err != nil {
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := r.http.Do(req)
	if err != nil {
		return nil
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil
	}
	var env CacheEnvelope
	if err := json.NewDecoder(res.Body).Decode(&env); err != nil {
		return nil
	}
	if env.Key != key {
		return nil
	}
	run, err := openEnvelope(env)
	if err != nil {
		r.mismatches.Inc()
		return nil
	}
	return run
}

// setPeers replaces the replica ring. When the membership actually
// changed it returns true; the Server then kicks the anti-entropy
// migrator.
func (r *replicator) setPeers(self string, peers []string) bool {
	next := ring.New(peers)
	r.mu.Lock()
	defer r.mu.Unlock()
	if self != "" {
		r.self = self
	}
	if equalMembers(r.ring.Members(), next.Members()) {
		return false
	}
	r.ring = next
	return true
}

func equalMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// migrate is the anti-entropy walk: offer every local cache entry to
// the other members of its (current) replica set. Pushing is idempotent
// — receivers keep their existing copy — so offering a superset of
// what moved is correct; the walk restores the R-copies invariant after
// any join, leave, or failback. Returns the number of entries offered.
func (r *replicator) migrate(cache replicaCache) int {
	if !r.enabled() || cache == nil {
		return 0
	}
	offered := 0
	for _, key := range cache.CacheKeys() {
		run, ok := cache.CacheGet(key)
		if !ok {
			continue
		}
		if r.offer(key, run) > 0 {
			offered++
			r.migrated.Inc()
		}
	}
	return offered
}

// quiesce blocks until every queued push has been attempted, or the
// timeout lapses. Test and shutdown support; the serving path never
// waits on replication.
func (r *replicator) quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout) //emx:hostclock test/shutdown synchronization, not a serving path
	for {
		r.mu.Lock()
		n := r.pending
		r.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) { //emx:hostclock
			return false
		}
		time.Sleep(time.Millisecond) //emx:hostclock
	}
}

func (r *replicator) close() {
	close(r.stop)
	<-r.done
}
