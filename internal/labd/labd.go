// Package labd is the experiment-orchestration layer of the
// reproduction: a scheduler that executes deterministic simulation runs
// on a bounded worker pool with content-addressed result caching,
// per-request coalescing, and queue backpressure.
//
// Every run is identified by the hash of its canonical request
// (core.RunIdentity): because a simulation is a pure function of that
// identity, the scheduler may serve a cached result, attach a duplicate
// request to an in-flight execution, or execute — all indistinguishable
// to the caller except for latency. Both the harness's figure sweeps
// and the emxd daemon (internal/labd/service) execute through this one
// path, so scheduling policy, caching, and operational counters are
// shared between the CLI and the service.
package labd

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"emx/internal/metrics"
)

// ErrQueueFull is returned by Do when the pending-run queue is at
// capacity: backpressure, not an execution failure. Callers should shed
// load or retry after runs drain.
var ErrQueueFull = errors.New("labd: run queue full")

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("labd: scheduler closed")

// ErrDeadlineExceeded is returned by DoDeadline when a request's
// deadline expires before its simulation starts: the caller has already
// given up, so executing (or waiting to execute) would burn a worker on
// a result nobody reads. Shed load, like ErrQueueFull — retryable,
// never an execution failure.
var ErrDeadlineExceeded = errors.New("labd: request deadline exceeded before execution")

// Source reports how a Do call obtained its result.
type Source uint8

const (
	// Executed: this call ran the simulation on a pool worker.
	Executed Source = iota
	// Cached: the result was served from the LRU cache, zero executions.
	Cached
	// Coalesced: an identical request was already in flight; this call
	// shared its single execution.
	Coalesced
	// Replicated: a cache miss was served by the Fill hook — another
	// node's byte-identical copy of the content-addressed result — with
	// zero local executions.
	Replicated
)

func (s Source) String() string {
	switch s {
	case Executed:
		return "executed"
	case Cached:
		return "cached"
	case Coalesced:
		return "coalesced"
	case Replicated:
		return "replicated"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Options configures a Scheduler. The zero value is usable: GOMAXPROCS
// workers, a 1024-deep queue, and a 512-entry result cache.
type Options struct {
	// Workers bounds concurrent simulator executions (<=0: GOMAXPROCS).
	Workers int
	// QueueSize bounds runs admitted but not yet started (<=0: 1024).
	// A full queue makes Do return ErrQueueFull.
	QueueSize int
	// CacheSize bounds the LRU result cache in entries (<=0: 512).
	CacheSize int
	// NoCache disables result caching entirely (coalescing still
	// applies). Used by one-shot sweeps that never repeat a request.
	NoCache bool
	// Registry receives the scheduler's operational counters; a private
	// registry is created when nil.
	Registry *metrics.Registry
	// Fill, when set, is consulted on a cache miss before a run is
	// scheduled for execution: a replication layer can fetch the
	// byte-identical content-addressed result from a peer replica. It is
	// called without the scheduler lock held (it is expected to do
	// network I/O, bounded by deadline; zero means no bound) and returns
	// nil on a miss. A non-nil result is installed in the cache and
	// served with Source Replicated.
	Fill func(key string, deadline time.Time) *metrics.Run
	// OnFill, when set, is invoked after an executed result is inserted
	// into the cache — the replication push trigger. Called from the
	// worker goroutine without the scheduler lock held; it must not
	// block (enqueue and return).
	OnFill func(key string, run *metrics.Run)
}

const (
	defaultQueueSize = 1024
	defaultCacheSize = 512
)

// Scheduler executes keyed runs on a bounded worker pool. Safe for
// concurrent use. Results returned from the cache or a coalesced
// execution are shared — callers must treat *metrics.Run as immutable.
type Scheduler struct {
	workers int
	jobs    chan *job
	fill    func(key string, deadline time.Time) *metrics.Run
	onFill  func(key string, run *metrics.Run)

	mu       sync.Mutex
	inflight map[string]*job
	cache    *lruCache // nil when caching is disabled
	closed   bool
	wg       sync.WaitGroup

	reg            *metrics.Registry
	started        *metrics.Counter
	completed      *metrics.Counter
	failed         *metrics.Counter
	cacheHits      *metrics.Counter
	coalescedHits  *metrics.Counter
	filled         *metrics.Counter
	rejected       *metrics.Counter
	shed           func(reason string) *metrics.Counter
	shedDeadline   *metrics.Counter
	shedQueueFull  *metrics.Counter
	shedAbandoned  *metrics.Counter
	shedCanceled   *metrics.Counter
	workloadCycles func(label string) *metrics.Counter

	// Host-throughput accounting: every executed run contributes its
	// simulated cycles, engine events, and host wall-clock nanoseconds,
	// so cycles/sec and events/sec — the simulator's host throughput —
	// fall out as ratios. Cached and coalesced hits contribute nothing
	// (no simulation ran for them).
	simCycles *metrics.Counter
	simEvents *metrics.Counter
	hostNanos *metrics.Counter
}

type job struct {
	key  string
	fn   func() (*metrics.Run, error)
	done chan struct{}
	run  *metrics.Run
	err  error

	// All fields below are guarded by Scheduler.mu.
	//
	// waiters holds the deadline of every caller still attached to this
	// job (zero = none). The effective deadline — the latest host time
	// execution may usefully start — is recomputed from the multiset on
	// every attach and detach: zero while any waiter is deadline-free,
	// otherwise the latest. A waiter that gives up (its own deadline
	// lapses, or its context is canceled, before execution starts)
	// detaches, so a patient waiter's departure no longer pins a stale
	// extended deadline on the job; when the last waiter departs the job
	// is orphaned and shed at dequeue.
	waiters  []time.Time
	deadline time.Time
	orphaned bool
}

// attach registers a caller's deadline with the job. Caller holds
// Scheduler.mu.
func (j *job) attach(deadline time.Time) {
	j.waiters = append(j.waiters, deadline)
	j.recomputeDeadline()
}

// detach removes one waiter with the given deadline (the multiset may
// hold duplicates; removing any is equivalent). Caller holds
// Scheduler.mu.
func (j *job) detach(deadline time.Time) {
	for i, d := range j.waiters {
		if d.Equal(deadline) {
			j.waiters = append(j.waiters[:i], j.waiters[i+1:]...)
			break
		}
	}
	j.recomputeDeadline()
}

func (j *job) recomputeDeadline() {
	j.orphaned = len(j.waiters) == 0
	var latest time.Time
	for _, d := range j.waiters {
		if d.IsZero() {
			j.deadline = time.Time{}
			return
		}
		if d.After(latest) {
			latest = d
		}
	}
	j.deadline = latest
}

// New starts a scheduler and its worker pool.
func New(o Options) *Scheduler {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueSize <= 0 {
		o.QueueSize = defaultQueueSize
	}
	if o.CacheSize <= 0 {
		o.CacheSize = defaultCacheSize
	}
	reg := o.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Scheduler{
		workers:  o.Workers,
		jobs:     make(chan *job, o.QueueSize),
		fill:     o.Fill,
		onFill:   o.OnFill,
		inflight: map[string]*job{},
		reg:      reg,
	}
	if !o.NoCache {
		s.cache = newLRU(o.CacheSize)
	}
	s.started = reg.Counter("emxd_runs_started_total", "simulator executions started")
	s.completed = reg.Counter("emxd_runs_completed_total", "simulator executions completed successfully")
	s.failed = reg.Counter("emxd_runs_failed_total", "simulator executions that returned an error")
	s.cacheHits = reg.Counter("emxd_runs_cache_hit_total", "requests served from the result cache")
	s.coalescedHits = reg.Counter("emxd_runs_coalesced_total", "requests attached to an identical in-flight execution")
	s.filled = reg.Counter("emxd_runs_filled_total", "cache misses served by the replica fill hook instead of executing")
	s.rejected = reg.Counter("emxd_runs_rejected_total", "requests rejected because the queue was full")
	s.shed = func(reason string) *metrics.Counter {
		return reg.Labeled("emxd_shed_requests_total",
			"requests shed before execution, by reason", "reason", reason)
	}
	s.shedDeadline = s.shed("deadline")
	s.shedQueueFull = s.shed("queue_full")
	s.shedAbandoned = s.shed("abandoned")
	s.shedCanceled = s.shed("canceled")
	s.workloadCycles = func(label string) *metrics.Counter {
		return reg.Labeled("emxd_workload_cycles_total",
			"simulated machine cycles executed, by workload", "workload", label)
	}
	s.simCycles = reg.Counter("emxd_sim_cycles_total", "simulated machine cycles executed")
	s.simEvents = reg.Counter("emxd_sim_events_total", "simulation engine events dispatched")
	s.hostNanos = reg.Counter("emxd_host_run_nanoseconds_total", "host wall-clock nanoseconds spent executing simulations")
	reg.Gauge("emxd_sim_cycles_per_host_second", "simulated cycles per host second of execution (aggregate across workers)",
		func() float64 { return rate(s.simCycles.Value(), s.hostNanos.Value()) })
	reg.Gauge("emxd_sim_events_per_host_second", "engine events per host second of execution (aggregate across workers)",
		func() float64 { return rate(s.simEvents.Value(), s.hostNanos.Value()) })
	reg.Gauge("emxd_queue_depth", "runs admitted but not yet started",
		func() float64 { return float64(len(s.jobs)) })
	reg.Gauge("emxd_cache_entries", "results held in the LRU cache",
		func() float64 { return float64(s.CacheLen()) })
	for i := 0; i < o.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Do returns the result for key, executing fn on the pool only if no
// cached or in-flight result exists. It blocks until the result is
// available, except when the queue is full (ErrQueueFull) or the
// scheduler is closed (ErrClosed). fn must be a pure function of key.
func (s *Scheduler) Do(key string, fn func() (*metrics.Run, error)) (*metrics.Run, Source, error) {
	return s.DoDeadline(key, time.Time{}, fn)
}

// DoDeadline is Do with deadline-aware load shedding: a request whose
// deadline (host wall-clock; zero means none) has already passed — or
// passes while the job waits in the queue — is shed with
// ErrDeadlineExceeded instead of executing. Cache hits are still
// served: they cost nothing. Coalescing onto an in-flight job extends
// that job's deadline to the latest waiter's, so an expiring request
// never sheds work a patient one still wants; when that patient waiter
// itself departs, the effective deadline shrinks back to the survivors'.
func (s *Scheduler) DoDeadline(key string, deadline time.Time, fn func() (*metrics.Run, error)) (*metrics.Run, Source, error) {
	return s.DoContext(context.Background(), key, deadline, fn)
}

// DoContext is DoDeadline with caller-departure awareness: when ctx is
// canceled before the result arrives, the call detaches from its job
// and returns ctx's error. The job's effective deadline is recomputed
// from the waiters still attached, and a job whose last waiter departed
// is shed at dequeue instead of executing for nobody.
func (s *Scheduler) DoContext(ctx context.Context, key string, deadline time.Time, fn func() (*metrics.Run, error)) (*metrics.Run, Source, error) {
	triedFill := s.fill == nil
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, Executed, ErrClosed
		}
		if s.cache != nil {
			if run, ok := s.cache.get(key); ok {
				s.mu.Unlock()
				s.cacheHits.Inc()
				return run, Cached, nil
			}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) { //emx:hostclock deadline-aware load shedding
			s.mu.Unlock()
			s.shedDeadline.Inc()
			return nil, Executed, fmt.Errorf("%w (expired on admission)", ErrDeadlineExceeded)
		}
		if j, ok := s.inflight[key]; ok {
			j.attach(deadline)
			s.mu.Unlock()
			s.coalescedHits.Inc()
			return s.wait(ctx, j, deadline, Coalesced)
		}
		if !triedFill {
			// Cache miss about to cost an execution: ask the fill hook
			// (peer replicas hold byte-identical copies) first. The hook
			// does network I/O, so drop the lock and re-run admission
			// afterwards — the cache or in-flight set may have changed.
			triedFill = true
			s.mu.Unlock()
			if run := s.fill(key, deadline); run != nil {
				s.mu.Lock()
				if s.cache != nil {
					s.cache.add(key, run)
				}
				s.mu.Unlock()
				s.filled.Inc()
				return run, Replicated, nil
			}
			continue
		}
		j := &job{key: key, fn: fn, done: make(chan struct{})}
		j.attach(deadline)
		select {
		case s.jobs <- j:
			s.inflight[key] = j
			s.mu.Unlock()
		default:
			s.mu.Unlock()
			s.rejected.Inc()
			s.shedQueueFull.Inc()
			return nil, Executed, fmt.Errorf("%w (capacity %d)", ErrQueueFull, cap(s.jobs))
		}
		return s.wait(ctx, j, deadline, Executed)
	}
}

// wait blocks until j completes or ctx is canceled. A waiter whose own
// deadline lapses while another waiter keeps the job alive still
// receives the (already paid-for) result — deadline shedding is
// collective, decided at dequeue from the job's effective deadline. A
// canceled waiter, by contrast, departs individually: it detaches its
// deadline so the effective deadline shrinks to the survivors'.
func (s *Scheduler) wait(ctx context.Context, j *job, deadline time.Time, src Source) (*metrics.Run, Source, error) {
	if ctx.Done() == nil {
		<-j.done
		return j.run, src, j.err
	}
	select {
	case <-j.done:
		return j.run, src, j.err
	case <-ctx.Done():
		if s.detachIfUnfinished(j, deadline) {
			s.shedCanceled.Inc()
			return nil, src, ctx.Err()
		}
		// Completed in the race window: the result is sitting there.
		<-j.done
		return j.run, src, j.err
	}
}

// detachIfUnfinished detaches a canceled waiter whenever the result is
// not already available — a gone caller reads nothing, started or not.
func (s *Scheduler) detachIfUnfinished(j *job, deadline time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-j.done:
		return false
	default:
	}
	j.detach(deadline)
	return true
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.mu.Lock()
		expired := !j.deadline.IsZero() && time.Now().After(j.deadline) //emx:hostclock deadline-aware load shedding
		if j.orphaned || expired {
			// Every waiter gave up (or the latest deadline lapsed in
			// queue): shed the run before it costs a worker anything.
			j.err = fmt.Errorf("%w (queued past deadline)", ErrDeadlineExceeded)
			delete(s.inflight, j.key)
			s.mu.Unlock()
			if j.orphaned {
				s.shedAbandoned.Inc()
			} else {
				s.shedDeadline.Inc()
			}
			close(j.done)
			continue
		}
		s.mu.Unlock()
		s.started.Inc()
		j.run, j.err = j.fn()
		s.mu.Lock()
		delete(s.inflight, j.key)
		cached := false
		if j.err == nil && s.cache != nil {
			s.cache.add(j.key, j.run)
			cached = true
		}
		s.mu.Unlock()
		if j.err != nil {
			s.failed.Inc()
		} else {
			s.completed.Inc()
			if j.run != nil {
				if j.run.Label != "" {
					s.workloadCycles(j.run.Label).Add(uint64(j.run.Makespan))
				}
				s.simCycles.Add(uint64(j.run.Makespan))
				s.simEvents.Add(j.run.SimEvents)
				s.hostNanos.Add(uint64(j.run.HostElapsedSecs * 1e9))
			}
		}
		close(j.done)
		if cached && s.onFill != nil {
			s.onFill(j.key, j.run)
		}
	}
}

// Close drains queued runs and stops the workers. Do calls made after
// Close return ErrClosed; calls blocked in Do complete normally.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.jobs)
	s.mu.Unlock()
	s.wg.Wait()
}

// rate divides a count by nanoseconds expressed as seconds, guarding
// the before-first-run case.
func rate(count, nanos uint64) float64 {
	if nanos == 0 {
		return 0
	}
	return float64(count) / (float64(nanos) / 1e9)
}

// Stats is a point-in-time snapshot of the scheduler's counters.
type Stats struct {
	Started, Completed, Failed     uint64
	CacheHits, Coalesced, Rejected uint64
	// Filled counts cache misses served by the replica fill hook (zero
	// local executions).
	Filled uint64
	// ShedDeadline counts requests shed because their deadline expired
	// before execution (ErrDeadlineExceeded); queue-full sheds are
	// Rejected. ShedAbandoned counts jobs shed at dequeue because every
	// waiter had departed; ShedCanceled counts waiters that departed via
	// context cancellation.
	ShedDeadline         uint64
	ShedAbandoned        uint64
	ShedCanceled         uint64
	QueueDepth, QueueCap int
	CacheLen, CacheCap   int
	Workers              int

	// Host throughput over all executed runs (see Throughput for the
	// derived rates). HostSeconds sums per-run wall-clock time, so with
	// W busy workers it advances ~W× faster than real time.
	SimCycles   uint64
	SimEvents   uint64
	HostSeconds float64
}

// Stats returns current operational counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Started:       s.started.Value(),
		Completed:     s.completed.Value(),
		Failed:        s.failed.Value(),
		CacheHits:     s.cacheHits.Value(),
		Coalesced:     s.coalescedHits.Value(),
		Filled:        s.filled.Value(),
		Rejected:      s.rejected.Value(),
		ShedDeadline:  s.shedDeadline.Value(),
		ShedAbandoned: s.shedAbandoned.Value(),
		ShedCanceled:  s.shedCanceled.Value(),
		QueueDepth:    len(s.jobs),
		QueueCap:      cap(s.jobs),
		CacheLen:      s.CacheLen(),
		CacheCap:      s.CacheCap(),
		Workers:       s.workers,
		SimCycles:     s.simCycles.Value(),
		SimEvents:     s.simEvents.Value(),
		HostSeconds:   float64(s.hostNanos.Value()) / 1e9,
	}
}

// CacheHitRatio is the fraction of resolved requests served from the
// result cache: hits / (hits + coalesced + executed). Requests still in
// the queue are not counted. The cluster membership prober reads this
// for load-aware hedging — a cold node resolves most requests by
// executing and is a worse hedge target than a warm one.
func (st Stats) CacheHitRatio() float64 {
	total := st.CacheHits + st.Coalesced + st.Started
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// Throughput reports the simulator's host throughput: simulated cycles
// and engine events per host second of execution, aggregated over every
// run this scheduler executed (cache and coalesced hits excluded).
func (st Stats) Throughput() (cyclesPerSec, eventsPerSec float64) {
	if st.HostSeconds <= 0 {
		return 0, 0
	}
	return float64(st.SimCycles) / st.HostSeconds, float64(st.SimEvents) / st.HostSeconds
}

// CacheLen returns the number of cached results (0 when disabled).
func (s *Scheduler) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return 0
	}
	return s.cache.len()
}

// CacheCap returns the cache bound in entries (0 when disabled).
func (s *Scheduler) CacheCap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return 0
	}
	return s.cache.cap
}

// Registry exposes the scheduler's metrics registry (for /metrics).
func (s *Scheduler) Registry() *metrics.Registry { return s.reg }

// RunsExecuted reports how many simulator executions this scheduler has
// started — the counter replication tests diff to prove a failover
// served cached bytes instead of recomputing.
func (s *Scheduler) RunsExecuted() uint64 { return s.started.Value() }

// CacheGet returns the cached result for key without counting a
// request-path cache hit. Used by the replication layer to export
// entries to peers.
func (s *Scheduler) CacheGet(key string) (*metrics.Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return nil, false
	}
	return s.cache.get(key)
}

// CachePut installs a replicated result. It reports false — and stores
// nothing — when caching is disabled or the key is already present
// (content-addressed entries are byte-identical, so overwriting only
// churns the LRU order).
func (s *Scheduler) CachePut(key string, run *metrics.Run) bool {
	if run == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return false
	}
	if _, ok := s.cache.items[key]; ok {
		return false
	}
	s.cache.add(key, run)
	return true
}

// CacheKeys snapshots the cache index in sorted order — the walk list
// for the anti-entropy migrator.
func (s *Scheduler) CacheKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache == nil {
		return nil
	}
	keys := make([]string, 0, len(s.cache.items))
	for k := range s.cache.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// lruCache is a plain LRU over *metrics.Run, guarded by Scheduler.mu.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	run *metrics.Run
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (*metrics.Run, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).run, true
}

func (c *lruCache) add(key string, run *metrics.Run) {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).run = run
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key, run})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
