package labd

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"emx/internal/metrics"
)

func fakeRun(label string, cycles int) *metrics.Run {
	return &metrics.Run{Label: label, Makespan: 1 << 10, PEs: make([]metrics.PE, 1)}
}

// TestCoalescing: concurrent identical requests execute the simulator
// exactly once; all callers see the same result object.
func TestCoalescing(t *testing.T) {
	s := New(Options{Workers: 2, NoCache: true})
	defer s.Close()

	var executions atomic.Int64
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	runs := make([]*metrics.Run, callers)
	sources := make([]Source, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run, src, err := s.Do("same-key", func() (*metrics.Run, error) {
				executions.Add(1)
				<-release // hold the run in flight until everyone has arrived
				return fakeRun("bitonic", 100), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			runs[i], sources[i] = run, src
		}(i)
	}
	// Wait until every caller is either executing or coalesced-waiting.
	deadline := time.After(5 * time.Second)
	for {
		if s.Stats().Coalesced == callers-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stuck waiting for coalescing: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("%d executions for %d identical requests, want 1", n, callers)
	}
	var executed, coalesced int
	for i := range runs {
		if runs[i] != runs[0] {
			t.Fatal("callers saw different result objects")
		}
		switch sources[i] {
		case Executed:
			executed++
		case Coalesced:
			coalesced++
		}
	}
	if executed != 1 || coalesced != callers-1 {
		t.Fatalf("sources: %d executed, %d coalesced", executed, coalesced)
	}
}

// TestCacheHit: a repeated request after completion never re-executes.
func TestCacheHit(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	var executions atomic.Int64
	fn := func() (*metrics.Run, error) {
		executions.Add(1)
		return fakeRun("fft", 10), nil
	}
	first, src, err := s.Do("k", fn)
	if err != nil || src != Executed {
		t.Fatalf("first: src=%v err=%v", src, err)
	}
	second, src, err := s.Do("k", fn)
	if err != nil || src != Cached {
		t.Fatalf("second: src=%v err=%v", src, err)
	}
	if first != second {
		t.Fatal("cache returned a different object")
	}
	if executions.Load() != 1 {
		t.Fatalf("%d executions, want 1", executions.Load())
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.Started != 1 || st.Completed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestErrorsNotCached: a failed run is not cached and re-executes.
func TestErrorsNotCached(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	var executions atomic.Int64
	boom := errors.New("boom")
	fn := func() (*metrics.Run, error) {
		executions.Add(1)
		return nil, boom
	}
	if _, _, err := s.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := s.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if executions.Load() != 2 {
		t.Fatalf("%d executions, want 2 (errors must not be cached)", executions.Load())
	}
	if s.Stats().Failed != 2 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

// TestLRUEviction: the cache respects its bound and evicts least
// recently used entries first.
func TestLRUEviction(t *testing.T) {
	s := New(Options{Workers: 1, CacheSize: 2})
	defer s.Close()
	var executions atomic.Int64
	do := func(key string) Source {
		t.Helper()
		_, src, err := s.Do(key, func() (*metrics.Run, error) {
			executions.Add(1)
			return fakeRun("spmv", 1), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	do("a") // cache: a
	do("b") // cache: b a
	if src := do("a"); src != Cached {
		t.Fatalf("a should be cached, got %v", src)
	} // cache: a b
	do("c") // evicts b -> cache: c a
	if got := s.CacheLen(); got != 2 {
		t.Fatalf("cache len %d, want 2", got)
	}
	if src := do("b"); src != Executed {
		t.Fatalf("b should have been evicted, got %v", src)
	} // re-adding b evicts a -> cache: b c
	if src := do("c"); src != Cached {
		t.Fatalf("c should still be cached, got %v", src)
	}
	if src := do("a"); src != Executed {
		t.Fatalf("a should have been evicted by b's return, got %v", src)
	}
}

// TestQueueBackpressure: a full queue rejects immediately with
// ErrQueueFull instead of blocking.
func TestQueueBackpressure(t *testing.T) {
	s := New(Options{Workers: 1, QueueSize: 1, NoCache: true})
	defer s.Close()
	release := make(chan struct{})
	var wg sync.WaitGroup
	slow := func(key string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(key, func() (*metrics.Run, error) {
				<-release
				return fakeRun("bitonic", 1), nil
			})
		}()
	}
	slow("running") // occupies the single worker
	// Wait for the worker to pick it up, then fill the queue.
	deadline := time.After(5 * time.Second)
	for s.Stats().Started != 1 {
		select {
		case <-deadline:
			t.Fatal("worker never started the first job")
		case <-time.After(time.Millisecond):
		}
	}
	slow("queued") // sits in the queue (capacity 1)
	for s.Stats().QueueDepth != 1 {
		select {
		case <-deadline:
			t.Fatal("second job never queued")
		case <-time.After(time.Millisecond):
		}
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := s.Do("rejected", func() (*metrics.Run, error) {
			return fakeRun("bitonic", 1), nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("err = %v, want ErrQueueFull", err)
		}
		if !strings.Contains(err.Error(), "capacity 1") {
			t.Fatalf("error lacks capacity detail: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do blocked on a full queue instead of rejecting")
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	close(release)
	wg.Wait()
}

// TestClose: Do after Close errors; queued work completes first.
func TestClose(t *testing.T) {
	s := New(Options{Workers: 1})
	if _, _, err := s.Do("k", func() (*metrics.Run, error) { return fakeRun("fft", 1), nil }); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, _, err := s.Do("k2", func() (*metrics.Run, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestDistinctKeysRunConcurrently sanity-checks the pool actually fans
// out: with 4 workers, 4 distinct blocked runs are all in flight.
func TestDistinctKeysRunConcurrently(t *testing.T) {
	s := New(Options{Workers: 4, NoCache: true})
	defer s.Close()
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Do(fmt.Sprintf("k%d", i), func() (*metrics.Run, error) {
				<-release
				return fakeRun("fft", 1), nil
			})
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for s.Stats().Started != 4 {
		select {
		case <-deadline:
			t.Fatalf("pool did not fan out: %+v", s.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()
}

func TestSourceString(t *testing.T) {
	if Executed.String() != "executed" || Cached.String() != "cached" || Coalesced.String() != "coalesced" {
		t.Fatal("bad source names")
	}
	if Source(9).String() != "source(9)" {
		t.Fatal("unknown source name")
	}
}

// TestDeadlineShedOnAdmission: an already-expired deadline is shed
// before it costs anything — the simulator function never runs.
func TestDeadlineShedOnAdmission(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	ran := false
	_, _, err := s.DoDeadline("k", time.Now().Add(-time.Second), func() (*metrics.Run, error) { //emx:hostclock test fixture
		ran = true
		return fakeRun("bitonic", 1), nil
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if ran {
		t.Fatal("expired request still executed")
	}
	if st := s.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

// TestDeadlineShedWhenQueuedPastDeadline: a request admitted in time
// but still queued when its deadline passes is shed at dequeue.
func TestDeadlineShedWhenQueuedPastDeadline(t *testing.T) {
	s := New(Options{Workers: 1, NoCache: true})
	defer s.Close()
	release := make(chan struct{})
	blockerStarted := make(chan struct{})
	go s.Do("blocker", func() (*metrics.Run, error) {
		close(blockerStarted)
		<-release
		return fakeRun("bitonic", 1), nil
	})
	<-blockerStarted

	ran := false
	done := make(chan error, 1)
	go func() {
		_, _, err := s.DoDeadline("victim", time.Now().Add(30*time.Millisecond), func() (*metrics.Run, error) { //emx:hostclock test fixture
			ran = true
			return fakeRun("fft", 1), nil
		})
		done <- err
	}()
	time.Sleep(80 * time.Millisecond) //emx:hostclock let the victim's deadline lapse in queue
	close(release)
	err := <-done
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if ran {
		t.Fatal("queued-past-deadline request still executed")
	}
	if st := s.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

// TestDeadlineCacheHitDespiteExpiry: cache hits cost nothing, so an
// expired request whose result is cached is served, not shed.
func TestDeadlineCacheHitDespiteExpiry(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()
	if _, _, err := s.Do("k", func() (*metrics.Run, error) { return fakeRun("spmv", 1), nil }); err != nil {
		t.Fatal(err)
	}
	run, src, err := s.DoDeadline("k", time.Now().Add(-time.Second), func() (*metrics.Run, error) { //emx:hostclock test fixture
		return nil, fmt.Errorf("must not execute")
	})
	if err != nil || src != Cached || run == nil {
		t.Fatalf("cache hit shed: run=%v src=%v err=%v", run, src, err)
	}
	if st := s.Stats(); st.ShedDeadline != 0 {
		t.Fatalf("ShedDeadline = %d, want 0", st.ShedDeadline)
	}
}

// TestCoalesceExtendsDeadline: a patient waiter joining an in-flight
// job lifts the job's deadline, so the earlier impatient caller's
// deadline cannot shed work the patient one still wants.
func TestCoalesceExtendsDeadline(t *testing.T) {
	s := New(Options{Workers: 1, NoCache: true})
	defer s.Close()
	release := make(chan struct{})
	blockerStarted := make(chan struct{})
	go s.Do("blocker", func() (*metrics.Run, error) {
		close(blockerStarted)
		<-release
		return fakeRun("bitonic", 1), nil
	})
	<-blockerStarted

	// Impatient caller: queued with a deadline that will lapse.
	first := make(chan error, 1)
	go func() {
		_, _, err := s.DoDeadline("shared", time.Now().Add(30*time.Millisecond), func() (*metrics.Run, error) { //emx:hostclock test fixture
			return fakeRun("fft", 1), nil
		})
		first <- err
	}()
	waitForInflight(t, s, "shared")

	// Patient caller coalesces with no deadline, clearing the job's.
	second := make(chan error, 1)
	go func() {
		_, _, err := s.Do("shared", func() (*metrics.Run, error) { return fakeRun("fft", 1), nil })
		second <- err
	}()
	waitForCoalesced(t, s, 1)

	time.Sleep(80 * time.Millisecond) //emx:hostclock lapse the first caller's deadline
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("impatient caller: %v (job should have been kept alive)", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("patient caller: %v", err)
	}
	if st := s.Stats(); st.ShedDeadline != 0 {
		t.Fatalf("ShedDeadline = %d, want 0", st.ShedDeadline)
	}
}

// TestCoalesceRecomputesDeadlineWhenPatientWaiterDeparts is the
// regression test for the coalescing-deadline bug: the job's effective
// deadline used to be a high-water mark, so a patient waiter that
// canceled kept the job immortal on behalf of callers who'd already
// given it a budget. When the most-patient waiter departs, the
// deadline must be recomputed from the survivors.
func TestCoalesceRecomputesDeadlineWhenPatientWaiterDeparts(t *testing.T) {
	s := New(Options{Workers: 1, NoCache: true})
	defer s.Close()
	release := make(chan struct{})
	blockerStarted := make(chan struct{})
	go s.Do("blocker", func() (*metrics.Run, error) {
		close(blockerStarted)
		<-release
		return fakeRun("bitonic", 1), nil
	})
	<-blockerStarted

	// Impatient caller creates the job with a deadline that will lapse.
	var ran atomic.Bool
	first := make(chan error, 1)
	go func() {
		_, _, err := s.DoDeadline("shared", time.Now().Add(40*time.Millisecond), func() (*metrics.Run, error) { //emx:hostclock test fixture
			ran.Store(true)
			return fakeRun("fft", 1), nil
		})
		first <- err
	}()
	waitForInflight(t, s, "shared")

	// Patient caller coalesces with no deadline — then departs.
	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, _, err := s.DoContext(ctx, "shared", time.Time{}, func() (*metrics.Run, error) {
			ran.Store(true)
			return fakeRun("fft", 1), nil
		})
		second <- err
	}()
	waitForCoalesced(t, s, 1)
	cancel()
	if err := <-second; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
	}

	// With the patient waiter gone, the job's deadline must be the
	// impatient caller's again: lapse it, then let the worker dequeue.
	time.Sleep(80 * time.Millisecond) //emx:hostclock lapse the surviving caller's deadline
	close(release)
	if err := <-first; !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("surviving caller err = %v, want ErrDeadlineExceeded (deadline not recomputed)", err)
	}
	if ran.Load() {
		t.Fatal("expired job still executed after its patient waiter departed")
	}
	st := s.Stats()
	if st.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
	if st.ShedCanceled != 1 {
		t.Fatalf("ShedCanceled = %d, want 1", st.ShedCanceled)
	}
}

// TestOrphanedJobShedAsAbandoned: when every waiter departs before the
// job starts, the queued work is abandoned — the worker drops it at
// dequeue instead of computing a result nobody will read.
func TestOrphanedJobShedAsAbandoned(t *testing.T) {
	s := New(Options{Workers: 1, NoCache: true})
	defer s.Close()
	release := make(chan struct{})
	blockerStarted := make(chan struct{})
	go s.Do("blocker", func() (*metrics.Run, error) {
		close(blockerStarted)
		<-release
		return fakeRun("bitonic", 1), nil
	})
	<-blockerStarted

	var ran atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := s.DoContext(ctx, "orphan", time.Time{}, func() (*metrics.Run, error) {
			ran.Store(true)
			return fakeRun("fft", 1), nil
		})
		done <- err
	}()
	waitForInflight(t, s, "orphan")
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)

	deadline := time.After(5 * time.Second)
	for s.Stats().ShedAbandoned == 0 {
		select {
		case <-deadline:
			t.Fatalf("orphaned job never shed as abandoned: %+v", s.Stats())
		default:
			time.Sleep(time.Millisecond) //emx:hostclock test polling
		}
	}
	if ran.Load() {
		t.Fatal("orphaned job still executed")
	}
	if st := s.Stats(); st.ShedCanceled != 1 || st.ShedAbandoned != 1 {
		t.Fatalf("stats = %+v, want ShedCanceled=1 ShedAbandoned=1", st)
	}
}

func waitForInflight(t *testing.T, s *Scheduler, key string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		_, ok := s.inflight[key]
		s.mu.Unlock()
		if ok {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %q never became in-flight", key)
		default:
			time.Sleep(time.Millisecond) //emx:hostclock test polling
		}
	}
}

func waitForCoalesced(t *testing.T, s *Scheduler, n uint64) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if s.Stats().Coalesced >= n {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("never saw %d coalesced waiters: %+v", n, s.Stats())
		default:
			time.Sleep(time.Millisecond) //emx:hostclock test polling
		}
	}
}
