package ring

import (
	"fmt"
	"reflect"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%02d:9000", i)
	}
	return out
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%04d", i)
	}
	return out
}

// TestNewDedupesAndSorts: rings built from the same member set in any
// order, with duplicates and empties, are identical.
func TestNewDedupesAndSorts(t *testing.T) {
	a := New([]string{"c", "a", "b"})
	b := New([]string{"b", "", "a", "c", "a", "c"})
	if !reflect.DeepEqual(a.Members(), []string{"a", "b", "c"}) {
		t.Fatalf("members %v", a.Members())
	}
	if !reflect.DeepEqual(a.Members(), b.Members()) {
		t.Fatalf("member order depends on construction: %v vs %v", a.Members(), b.Members())
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("lengths %d, %d", a.Len(), b.Len())
	}
	for _, k := range keys(50) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on construction order", k)
		}
	}
}

// TestRankedIsTotalOrder: Ranked returns every member exactly once,
// with the owner first.
func TestRankedIsTotalOrder(t *testing.T) {
	r := New(members(5))
	for _, k := range keys(100) {
		ranked := r.Ranked(k)
		if len(ranked) != r.Len() {
			t.Fatalf("Ranked(%q) has %d entries, want %d", k, len(ranked), r.Len())
		}
		if ranked[0] != r.Owner(k) {
			t.Fatalf("Ranked(%q)[0] = %q, Owner = %q", k, ranked[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range ranked {
			if seen[m] {
				t.Fatalf("Ranked(%q) repeats %q", k, m)
			}
			seen[m] = true
		}
	}
}

// TestReplicaSetIsRankedPrefix: the replica set is exactly the first n
// ranked members, and n beyond the member count yields every member.
func TestReplicaSetIsRankedPrefix(t *testing.T) {
	r := New(members(5))
	for _, k := range keys(40) {
		ranked := r.Ranked(k)
		for n := 1; n <= 7; n++ {
			set := r.ReplicaSet(k, n)
			want := ranked
			if n < len(want) {
				want = want[:n]
			}
			if !reflect.DeepEqual(set, want) {
				t.Fatalf("ReplicaSet(%q, %d) = %v, want prefix %v", k, n, set, want)
			}
		}
	}
}

// TestMinimalRemapOnDeparture is the property replication leans on:
// when one member leaves, every key it did not own keeps its owner, and
// every key it owned moves to exactly its old second-ranked member —
// the node the owner was pushing replicas to.
func TestMinimalRemapOnDeparture(t *testing.T) {
	ms := members(5)
	full := New(ms)
	gone := ms[2]
	var rest []string
	for _, m := range ms {
		if m != gone {
			rest = append(rest, m)
		}
	}
	shrunk := New(rest)

	moved := 0
	for _, k := range keys(200) {
		before := full.Ranked(k)
		after := shrunk.Owner(k)
		if before[0] != gone {
			if after != before[0] {
				t.Fatalf("key %q moved from %q to %q although its owner stayed", k, before[0], after)
			}
			continue
		}
		moved++
		if after != before[1] {
			t.Fatalf("key %q owned by the departed member moved to %q, want its second rank %q", k, after, before[1])
		}
	}
	if moved == 0 {
		t.Fatal("departed member owned no keys; the property was never exercised")
	}
}

// TestEmptyAndSingleRing: degenerate rings behave sanely.
func TestEmptyAndSingleRing(t *testing.T) {
	empty := New(nil)
	if empty.Owner("k") != "" || empty.Len() != 0 || len(empty.ReplicaSet("k", 3)) != 0 {
		t.Fatal("empty ring misbehaves")
	}
	solo := New([]string{"only"})
	if solo.Owner("k") != "only" {
		t.Fatalf("owner %q", solo.Owner("k"))
	}
	if got := solo.ReplicaSet("k", 2); !reflect.DeepEqual(got, []string{"only"}) {
		t.Fatalf("ReplicaSet = %v", got)
	}
}

// TestScoreMixExported: the exported Score/Mix64 match the internal
// functions the ring routes by, so client-side jitter derived from them
// stays consistent with routing.
func TestScoreMixExported(t *testing.T) {
	if Score("m", "k") != score("m", "k") {
		t.Fatal("Score diverges from score")
	}
	if Mix64(12345) != mix64(12345) {
		t.Fatal("Mix64 diverges from mix64")
	}
	// Avalanche sanity: one flipped input bit moves many output bits.
	if Mix64(1) == Mix64(2) {
		t.Fatal("mix64 collides on trivial inputs")
	}
}
