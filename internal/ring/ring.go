// Package ring implements the rendezvous-hashing (highest-random-
// weight) ring the cluster layer routes by. It lives below both
// internal/cluster (gateway + failover client) and internal/labd/service
// (cache replication) so the two layers agree bit-for-bit on every
// key's ranked replica set: the node the gateway fails over to is
// exactly the node the owner pushed the cached result to.
package ring

import (
	"hash/fnv"
	"sort"
)

// Ring is a rendezvous-hashing ring over a fixed member set. Each
// (member, key) pair gets a pseudo-random score; a key's owner is the
// member with the highest score, and the descending score order is the
// key's replica/failover preference. When one member departs, only the
// keys it owned move (each to its second-ranked member) — every other
// key keeps its owner, which is what keeps the sharded run caches warm
// across membership changes.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	members []string // sorted, deduplicated
}

// New builds a ring over the given member identifiers (node base URLs).
// Members are deduplicated and sorted, so rings built from the same set
// in any order behave identically.
func New(members []string) *Ring {
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	return &Ring{members: ms}
}

// Members returns the ring's member set in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// Len returns the number of members.
func (r *Ring) Len() int { return len(r.members) }

// score is the HRW weight of key on member: a 64-bit FNV-1a hash over
// member and key with a fixed separator, passed through a full-avalanche
// finalizer. The finalizer matters: FNV alone leaves the high bits of
// similar inputs correlated, which skews HRW's argmax badly.
// Deterministic across processes, hosts, and Go versions (unlike map
// iteration or the runtime's seeded string hash).
func score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the 64-bit finalizer from MurmurHash3: every input bit
// avalanches to every output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member that owns key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	var (
		best      string
		bestScore uint64
	)
	for _, m := range r.members {
		if s := score(m, key); best == "" || s > bestScore || (s == bestScore && m < best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Ranked returns every member ordered by descending preference for
// key: the owner first, then the member each successive failover
// falls to. Ties break toward the lexicographically smaller member so
// the order is total and deterministic.
func (r *Ring) Ranked(key string) []string {
	type ms struct {
		m string
		s uint64
	}
	scored := make([]ms, len(r.members))
	for i, m := range r.members {
		scored[i] = ms{m, score(m, key)}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].s != scored[j].s {
			return scored[i].s > scored[j].s
		}
		return scored[i].m < scored[j].m
	})
	out := make([]string, len(scored))
	for i, e := range scored {
		out[i] = e.m
	}
	return out
}

// Score exposes the HRW weight of key on member for callers that need
// deterministic key-derived pseudo-randomness consistent with the ring
// (the cluster client's retry jitter).
func Score(member, key string) uint64 { return score(member, key) }

// Mix64 exposes the avalanche finalizer (see mix64).
func Mix64(x uint64) uint64 { return mix64(x) }

// ReplicaSet returns the first n entries of Ranked(key) — the members
// that should hold key's replicated cache entry. n larger than the
// member count yields every member.
func (r *Ring) ReplicaSet(key string, n int) []string {
	ranked := r.Ranked(key)
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return ranked
}
