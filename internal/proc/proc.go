// Package proc models the packet-side units of the EMC-Y processing
// element: the Input Buffer Unit (IBU), Output Buffer Unit (OBU), and the
// by-passing DMA path between them and the Memory Control Unit.
//
// The defining EM-X feature lives here: remote read and write requests
// arriving from the network are serviced by the IBU through the by-passing
// DMA and sent back out through the OBU *without consuming Execution Unit
// cycles*. The predecessor EM-4 instead ran a one-instruction servicing
// thread on the EXU for every request; that mode is kept as
// ServiceEXU for the ablation experiment.
package proc

import (
	"fmt"

	"emx/internal/memory"
	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/sim"
	"emx/internal/thread"
)

// ServiceMode selects how arriving remote-memory requests are serviced.
type ServiceMode uint8

const (
	// ServiceBypass is the EM-X by-passing DMA: IBU+OBU+MCU, zero EXU cycles.
	ServiceBypass ServiceMode = iota
	// ServiceEXU is the EM-4 behaviour: each request becomes a high-priority
	// one-instruction thread that steals EXU cycles.
	ServiceEXU
)

func (m ServiceMode) String() string {
	if m == ServiceBypass {
		return "bypass"
	}
	return "exu"
}

// Config holds the packet-unit timing parameters (cycles).
type Config struct {
	// IBUServiceCycles is the IBU's fixed per-request handling time before
	// the DMA memory access starts.
	IBUServiceCycles sim.Time
	// OBUCycles is the output buffer occupancy per packet (one two-word
	// packet every second cycle).
	OBUCycles sim.Time
	// SpillCycles is the extra MCU cost to spill or restore one queue
	// packet to/from the on-memory buffer.
	SpillCycles sim.Time
	// Mode selects by-passing DMA or EM-4-style EXU servicing.
	Mode ServiceMode
	// ReplyPrio selects the IBU buffer level for read replies. The EM-X
	// default is plain FIFO (thread.Low, replies queue behind everything);
	// thread.High implements the "resume-first" scheduling policy the
	// paper's conclusion proposes to explore — replies overtake queued
	// and spinning threads (ablation X-sched).
	ReplyPrio thread.Prio
}

// DefaultConfig matches the EMC-Y description in the paper.
func DefaultConfig() Config {
	return Config{
		IBUServiceCycles: 2,
		OBUCycles:        2,
		SpillCycles:      4,
		Mode:             ServiceBypass,
		ReplyPrio:        thread.Low,
	}
}

// Proc is one PE's packet machinery. The Execution Unit itself lives in
// package core (it must resume workload coroutines); Proc exposes the
// queue the EXU dispatches from and the OBU it sends through.
type Proc struct {
	eng *sim.Engine
	pe  packet.PE
	cfg Config

	Mem    *memory.Local
	Queue  thread.Queue
	Frames *thread.Frames

	ibu sim.Resource
	obu sim.Resource

	sendNet func(*packet.Packet)
	wake    func()

	// Prepared handlers for the engine's allocation-free event lane.
	hSend   sim.Handler
	hInject sim.Handler
	hDMA    sim.Handler

	// Stats points at the PE's metrics record (owned by the machine).
	Stats *metrics.PE

	// obs, when non-nil, records packet-service and spill events.
	obs *obs.Tracer
}

// SetObs installs the observability tracer. A nil tracer (the default)
// disables packet-event recording.
func (p *Proc) SetObs(t *obs.Tracer) { p.obs = t }

// sendH passes a packet leaving the OBU to the network.
type sendH struct{ p *Proc }

func (h sendH) OnEvent(arg sim.EventArg) { h.p.sendNet(arg.Ptr.(*packet.Packet)) }

// injectH sends a prepared packet (typically a read reply) out through
// the OBU.
type injectH struct{ p *Proc }

func (h injectH) OnEvent(arg sim.EventArg) { h.p.Inject(arg.Ptr.(*packet.Packet)) }

// dmaH performs the memory side of a by-passing DMA request once the
// IBU grant time arrives.
type dmaH struct{ p *Proc }

func (h dmaH) OnEvent(arg sim.EventArg) { h.p.serviceDMA(arg.Ptr.(*packet.Packet)) }

// New creates the packet units for one PE. sendNet injects a packet into
// the network at the current engine time.
func New(eng *sim.Engine, pe packet.PE, memWords int, cfg Config,
	stats *metrics.PE, sendNet func(*packet.Packet)) *Proc {
	p := &Proc{
		eng:     eng,
		pe:      pe,
		cfg:     cfg,
		Mem:     memory.New(pe, memWords),
		Frames:  thread.NewFrames(),
		sendNet: sendNet,
		Stats:   stats,
	}
	p.hSend = sendH{p}
	p.hInject = injectH{p}
	p.hDMA = dmaH{p}
	return p
}

// PE returns the processor number.
func (p *Proc) PE() packet.PE { return p.pe }

// Config returns the unit timing configuration.
func (p *Proc) Config() Config { return p.cfg }

// SetWake installs the EXU's wake callback, invoked whenever a packet
// becomes available for dispatch.
func (p *Proc) SetWake(fn func()) { p.wake = fn }

// Inject sends an EXU- or IBU-generated packet out through the OBU. The
// OBU is a FIFO pipelined at one packet per OBUCycles; the packet enters
// the network when its OBU slot completes.
func (p *Proc) Inject(pkt *packet.Packet) {
	done := p.obu.Acquire(p.eng.Now(), p.cfg.OBUCycles)
	p.eng.AtHandler(done, p.hSend, sim.EventArg{Ptr: pkt})
}

// PushLocal enqueues a packet directly into the thread queue (used for
// local thread rescheduling and initial program load) and wakes the EXU.
func (p *Proc) PushLocal(prio thread.Prio, pkt *packet.Packet) {
	if p.Queue.Push(prio, pkt) {
		p.Stats.Spills++
		p.obs.Packet(int64(p.eng.Now()), int32(p.pe), obs.PktSpill, int64(p.cfg.SpillCycles))
	}
	if p.wake != nil {
		p.wake()
	}
}

// Deliver is the network's callback: a packet has arrived at this PE's
// IBU. Requests take the service path; replies, invocations and sync
// tokens are queued for the Matching Unit / EXU.
func (p *Proc) Deliver(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.KindReadReq, packet.KindBlockReadReq, packet.KindWrite:
		if p.cfg.Mode == ServiceBypass {
			p.serviceBypass(pkt)
		} else {
			// EM-4 mode: the request becomes a high-priority servicing
			// thread competing for the EXU.
			p.PushLocal(thread.High, pkt)
		}
	case packet.KindReadReply:
		p.PushLocal(p.cfg.ReplyPrio, pkt)
	case packet.KindInvoke, packet.KindSync:
		p.PushLocal(thread.Low, pkt)
	default:
		panic(fmt.Sprintf("proc: PE%d cannot deliver %v", p.pe, pkt))
	}
}

// serviceBypass handles a remote memory request entirely inside the
// IBU/OBU/MCU path. No EXU cycles are charged — this is the EM-X
// by-passing mechanism.
func (p *Proc) serviceBypass(pkt *packet.Packet) {
	now := p.eng.Now()
	grant := p.ibu.Acquire(now, p.cfg.IBUServiceCycles)
	p.Stats.ServicedDMA++
	p.obs.Packet(int64(now), int32(p.pe), obs.PktBypassDMA, int64(grant-now))
	p.eng.AtHandler(grant, p.hDMA, sim.EventArg{Ptr: pkt})
}

// serviceDMA runs at the IBU grant time: the memory side of a by-passed
// request.
func (p *Proc) serviceDMA(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.KindWrite:
		p.Mem.Write(p.eng.Now(), memory.PortDMA, pkt.Addr.Off, pkt.Data)
	case packet.KindReadReq:
		v, done := p.Mem.Read(p.eng.Now(), memory.PortDMA, pkt.Addr.Off)
		reply := &packet.Packet{
			Kind: packet.KindReadReply,
			Src:  p.pe,
			Addr: pkt.Addr,
			Data: v,
			Cont: pkt.Cont,
			Seq:  pkt.Seq,
		}
		p.eng.AtHandler(done, p.hInject, sim.EventArg{Ptr: reply})
	case packet.KindBlockReadReq:
		words, _ := p.Mem.ReadBlock(p.eng.Now(), memory.PortDMA, pkt.Addr.Off, int(pkt.Block))
		// Stream one reply per word; the OBU pipelines them at its
		// port rate, which models the block-transfer burst.
		for i, w := range words {
			rd := p.eng.Now() + memory.AccessCycles*sim.Time(i+1)
			p.eng.AtHandler(rd, p.hInject, sim.EventArg{Ptr: &packet.Packet{
				Kind: packet.KindReadReply,
				Src:  p.pe,
				Addr: pkt.Addr.Add(uint32(i)),
				Data: w,
				Cont: pkt.Cont,
				Seq:  pkt.Seq,
			}})
		}
	}
}

// ServiceOnEXU performs the memory side of a request that was queued in
// ServiceEXU mode; the core EXU calls it after charging the stolen cycles.
func (p *Proc) ServiceOnEXU(pkt *packet.Packet) {
	p.Stats.ServicedEXU++
	p.obs.Packet(int64(p.eng.Now()), int32(p.pe), obs.PktEXUService, 0)
	switch pkt.Kind {
	case packet.KindWrite:
		p.Mem.Write(p.eng.Now(), memory.PortEXU, pkt.Addr.Off, pkt.Data)
	case packet.KindReadReq:
		v, done := p.Mem.Read(p.eng.Now(), memory.PortEXU, pkt.Addr.Off)
		reply := &packet.Packet{
			Kind: packet.KindReadReply, Src: p.pe,
			Addr: pkt.Addr, Data: v, Cont: pkt.Cont, Seq: pkt.Seq,
		}
		p.eng.AtHandler(done, p.hInject, sim.EventArg{Ptr: reply})
	case packet.KindBlockReadReq:
		words, done := p.Mem.ReadBlock(p.eng.Now(), memory.PortEXU, pkt.Addr.Off, int(pkt.Block))
		for i, w := range words {
			p.eng.AtHandler(done, p.hInject, sim.EventArg{Ptr: &packet.Packet{
				Kind: packet.KindReadReply, Src: p.pe,
				Addr: pkt.Addr.Add(uint32(i)), Data: w, Cont: pkt.Cont, Seq: pkt.Seq,
			}})
		}
	default:
		panic(fmt.Sprintf("proc: ServiceOnEXU got %v", pkt))
	}
}

// OBUBusy reports the OBU's accumulated occupancy.
func (p *Proc) OBUBusy() sim.Time { return p.obu.Busy }

// IBUBusy reports the IBU's accumulated occupancy.
func (p *Proc) IBUBusy() sim.Time { return p.ibu.Busy }
