package proc

import (
	"testing"

	"emx/internal/memory"
	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/sim"
	"emx/internal/thread"
)

type capture struct {
	at   []sim.Time
	pkts []*packet.Packet
}

func newProc(t *testing.T, mode ServiceMode) (*sim.Engine, *Proc, *capture, *metrics.PE) {
	t.Helper()
	eng := sim.NewEngine()
	cap := &capture{}
	stats := &metrics.PE{}
	cfg := DefaultConfig()
	cfg.Mode = mode
	var p *Proc
	p = New(eng, 3, 1<<12, cfg, stats, func(pkt *packet.Packet) {
		cap.at = append(cap.at, eng.Now())
		cap.pkts = append(cap.pkts, pkt)
	})
	return eng, p, cap, stats
}

func TestBypassReadService(t *testing.T) {
	eng, p, cap, stats := newProc(t, ServiceBypass)
	p.Mem.Poke(100, 0xabcd)
	req := &packet.Packet{
		Kind: packet.KindReadReq,
		Src:  1,
		Addr: packet.GlobalAddr{PE: 3, Off: 100},
		Cont: packet.Continuation{PE: 1, Frame: 7, Slot: 2},
	}
	eng.At(10, func() { p.Deliver(req) })
	eng.Run()
	if len(cap.pkts) != 1 {
		t.Fatalf("injected %d packets, want 1 reply", len(cap.pkts))
	}
	rep := cap.pkts[0]
	if rep.Kind != packet.KindReadReply || rep.Data != 0xabcd || rep.Cont != req.Cont {
		t.Fatalf("bad reply: %v", rep)
	}
	// Timing: IBU 2 + memory 2 + OBU 2 after arrival at t=10.
	want := sim.Time(10) + p.cfg.IBUServiceCycles + memory.AccessCycles + p.cfg.OBUCycles
	if cap.at[0] != want {
		t.Fatalf("reply injected at %d, want %d", cap.at[0], want)
	}
	if stats.ServicedDMA != 1 || stats.ServicedEXU != 0 {
		t.Fatalf("service counters: dma=%d exu=%d", stats.ServicedDMA, stats.ServicedEXU)
	}
	// By-passing property: nothing was queued for the EXU.
	if !p.Queue.Empty() {
		t.Fatal("bypass service touched the thread queue")
	}
}

func TestBypassWriteService(t *testing.T) {
	eng, p, cap, _ := newProc(t, ServiceBypass)
	w := &packet.Packet{
		Kind: packet.KindWrite, Src: 0,
		Addr: packet.GlobalAddr{PE: 3, Off: 55}, Data: 42,
	}
	eng.At(0, func() { p.Deliver(w) })
	eng.Run()
	if p.Mem.Peek(55) != 42 {
		t.Fatalf("remote write not applied: %d", p.Mem.Peek(55))
	}
	if len(cap.pkts) != 0 {
		t.Fatal("write generated a reply")
	}
}

func TestBypassBlockReadStreamsReplies(t *testing.T) {
	eng, p, cap, _ := newProc(t, ServiceBypass)
	for i := uint32(0); i < 4; i++ {
		p.Mem.Poke(200+i, packet.Word(i+1))
	}
	req := &packet.Packet{
		Kind: packet.KindBlockReadReq, Src: 1,
		Addr: packet.GlobalAddr{PE: 3, Off: 200}, Block: 4,
		Cont: packet.Continuation{PE: 1, Frame: 9},
	}
	eng.At(0, func() { p.Deliver(req) })
	eng.Run()
	if len(cap.pkts) != 4 {
		t.Fatalf("injected %d replies, want 4", len(cap.pkts))
	}
	for i, rep := range cap.pkts {
		if rep.Data != packet.Word(i+1) || rep.Addr.Off != uint32(200+i) {
			t.Fatalf("reply %d = %v", i, rep)
		}
	}
	// Replies must be spaced by at least the OBU port rate.
	for i := 1; i < len(cap.at); i++ {
		if cap.at[i]-cap.at[i-1] < p.cfg.OBUCycles {
			t.Fatalf("replies %d,%d spaced %d < OBU rate", i-1, i, cap.at[i]-cap.at[i-1])
		}
	}
}

func TestEXUModeQueuesRequests(t *testing.T) {
	eng, p, cap, _ := newProc(t, ServiceEXU)
	woken := 0
	p.SetWake(func() { woken++ })
	req := &packet.Packet{
		Kind: packet.KindReadReq, Src: 1,
		Addr: packet.GlobalAddr{PE: 3, Off: 1}, Cont: packet.Continuation{PE: 1},
	}
	eng.At(0, func() { p.Deliver(req) })
	eng.Run()
	if len(cap.pkts) != 0 {
		t.Fatal("EXU mode serviced without the EXU")
	}
	if woken != 1 {
		t.Fatalf("wake called %d times, want 1", woken)
	}
	got, prio, _, ok := p.Queue.Pop()
	if !ok || got != req || prio != thread.High {
		t.Fatalf("queued: pkt=%v prio=%d ok=%v", got, prio, ok)
	}
}

func TestServiceOnEXU(t *testing.T) {
	eng, p, cap, stats := newProc(t, ServiceEXU)
	p.Mem.Poke(5, 99)
	req := &packet.Packet{
		Kind: packet.KindReadReq, Src: 1,
		Addr: packet.GlobalAddr{PE: 3, Off: 5}, Cont: packet.Continuation{PE: 1},
	}
	eng.At(0, func() { p.ServiceOnEXU(req) })
	eng.Run()
	if len(cap.pkts) != 1 || cap.pkts[0].Data != 99 {
		t.Fatalf("EXU service reply: %v", cap.pkts)
	}
	if stats.ServicedEXU != 1 {
		t.Fatalf("ServicedEXU = %d", stats.ServicedEXU)
	}
}

func TestDeliverRepliesAndInvokesQueueLow(t *testing.T) {
	eng, p, _, _ := newProc(t, ServiceBypass)
	wakes := 0
	p.SetWake(func() { wakes++ })
	eng.At(0, func() {
		p.Deliver(&packet.Packet{Kind: packet.KindReadReply, Src: 0, Cont: packet.Continuation{PE: 3}})
		p.Deliver(&packet.Packet{Kind: packet.KindInvoke, Src: 0, Addr: packet.GlobalAddr{PE: 3}})
		p.Deliver(&packet.Packet{Kind: packet.KindSync, Src: 0, Addr: packet.GlobalAddr{PE: 3}})
	})
	eng.Run()
	if p.Queue.Len() != 3 || wakes != 3 {
		t.Fatalf("queued=%d wakes=%d, want 3,3", p.Queue.Len(), wakes)
	}
}

func TestPushLocalSpillCounted(t *testing.T) {
	eng, p, _, stats := newProc(t, ServiceBypass)
	_ = eng
	for i := 0; i < thread.OnChipCap+3; i++ {
		p.PushLocal(thread.Low, &packet.Packet{Kind: packet.KindResume, Cont: packet.Continuation{PE: 3}})
	}
	if stats.Spills != 3 {
		t.Fatalf("spills = %d, want 3", stats.Spills)
	}
}

func TestOBUSerializesInjections(t *testing.T) {
	eng, p, cap, _ := newProc(t, ServiceBypass)
	eng.At(0, func() {
		for i := 0; i < 3; i++ {
			p.Inject(&packet.Packet{Kind: packet.KindWrite, Src: 3, Addr: packet.GlobalAddr{PE: 0}})
		}
	})
	eng.Run()
	if len(cap.at) != 3 {
		t.Fatalf("injected %d", len(cap.at))
	}
	for i, at := range cap.at {
		want := sim.Time(i+1) * p.cfg.OBUCycles
		if at != want {
			t.Fatalf("injection %d at %d, want %d", i, at, want)
		}
	}
	if p.OBUBusy() != 3*p.cfg.OBUCycles {
		t.Fatalf("OBU busy = %d", p.OBUBusy())
	}
}

func TestIBUSerializesService(t *testing.T) {
	eng, p, cap, _ := newProc(t, ServiceBypass)
	// Two reads arriving the same cycle must be serviced back to back.
	for i := 0; i < 2; i++ {
		req := &packet.Packet{
			Kind: packet.KindReadReq, Src: 1,
			Addr: packet.GlobalAddr{PE: 3, Off: uint32(i)},
			Cont: packet.Continuation{PE: 1, Slot: uint16(i)},
		}
		eng.At(5, func() { p.Deliver(req) })
	}
	eng.Run()
	if len(cap.at) != 2 {
		t.Fatalf("replies = %d", len(cap.at))
	}
	if cap.at[1] <= cap.at[0] {
		t.Fatalf("IBU did not serialize: %v", cap.at)
	}
	if p.IBUBusy() != 2*p.cfg.IBUServiceCycles {
		t.Fatalf("IBU busy = %d", p.IBUBusy())
	}
}

func TestServiceModeString(t *testing.T) {
	if ServiceBypass.String() != "bypass" || ServiceEXU.String() != "exu" {
		t.Fatal("bad mode strings")
	}
}

func TestDeliverUnknownKindPanics(t *testing.T) {
	eng, p, _, _ := newProc(t, ServiceBypass)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	p.Deliver(&packet.Packet{Kind: packet.Kind(200)})
}

func TestReplyPriorityConfig(t *testing.T) {
	eng := sim.NewEngine()
	stats := &metrics.PE{}
	cfg := DefaultConfig()
	cfg.ReplyPrio = thread.High
	p := New(eng, 1, 1<<10, cfg, stats, func(*packet.Packet) {})
	// A resume packet (Low) then a reply (High): the reply must pop first.
	p.PushLocal(thread.Low, &packet.Packet{Kind: packet.KindResume, Cont: packet.Continuation{PE: 1}})
	p.Deliver(&packet.Packet{Kind: packet.KindReadReply, Src: 0, Cont: packet.Continuation{PE: 1}})
	got, prio, _, ok := p.Queue.Pop()
	if !ok || got.Kind != packet.KindReadReply || prio != thread.High {
		t.Fatalf("resume-first: popped %v at prio %d", got, prio)
	}
}
