package packet

import (
	"testing"
	"testing/quick"
)

func TestGlobalAddrPackRoundTrip(t *testing.T) {
	cases := []GlobalAddr{
		{PE: 0, Off: 0},
		{PE: 79, Off: 12345},
		{PE: MaxPE, Off: MaxOffset},
		{PE: 63, Off: 1 << 19},
	}
	for _, ga := range cases {
		if got := UnpackAddr(ga.Pack()); got != ga {
			t.Errorf("round trip %v -> %v", ga, got)
		}
	}
}

func TestGlobalAddrPackProperty(t *testing.T) {
	check := func(pe uint16, off uint32) bool {
		ga := GlobalAddr{PE: PE(pe % (MaxPE + 1)), Off: off % (MaxOffset + 1)}
		return UnpackAddr(ga.Pack()) == ga && ga.Valid()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalAddrValid(t *testing.T) {
	if (GlobalAddr{PE: -1, Off: 0}).Valid() {
		t.Error("negative PE reported valid")
	}
	if (GlobalAddr{PE: 0, Off: MaxOffset + 1}).Valid() {
		t.Error("oversized offset reported valid")
	}
	if !(GlobalAddr{PE: MaxPE, Off: MaxOffset}).Valid() {
		t.Error("maximal address reported invalid")
	}
}

func TestGlobalAddrAdd(t *testing.T) {
	ga := GlobalAddr{PE: 5, Off: 100}
	got := ga.Add(28)
	if got.PE != 5 || got.Off != 128 {
		t.Fatalf("Add(28) = %v", got)
	}
}

func TestPacketDst(t *testing.T) {
	req := Packet{Kind: KindReadReq, Addr: GlobalAddr{PE: 9}, Cont: Continuation{PE: 2}}
	if req.Dst() != 9 {
		t.Fatalf("read-req dst = %d, want 9 (addressed PE)", req.Dst())
	}
	rep := Packet{Kind: KindReadReply, Addr: GlobalAddr{PE: 9}, Cont: Continuation{PE: 2}}
	if rep.Dst() != 2 {
		t.Fatalf("read-reply dst = %d, want 2 (continuation PE)", rep.Dst())
	}
	w := Packet{Kind: KindWrite, Addr: GlobalAddr{PE: 4}}
	if w.Dst() != 4 {
		t.Fatalf("write dst = %d, want 4", w.Dst())
	}
	inv := Packet{Kind: KindInvoke, Addr: GlobalAddr{PE: 7}}
	if inv.Dst() != 7 {
		t.Fatalf("invoke dst = %d, want 7", inv.Dst())
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindReadReq:      "read-req",
		KindBlockReadReq: "block-read-req",
		KindReadReply:    "read-reply",
		KindWrite:        "write",
		KindInvoke:       "invoke",
		KindSync:         "sync",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("out-of-range kind string = %q", Kind(200).String())
	}
}

func TestKindWords(t *testing.T) {
	for k := Kind(0); k < nKinds; k++ {
		if k.Words() != 2 {
			t.Errorf("%v.Words() = %d, want 2 (fixed-size packets)", k, k.Words())
		}
	}
}

func TestStringsNonEmpty(t *testing.T) {
	p := Packet{Kind: KindReadReq, Src: 1, Addr: GlobalAddr{PE: 2, Off: 3}, Cont: Continuation{PE: 1, Frame: 4, Slot: 5}}
	if p.String() == "" || p.Addr.String() == "" || p.Cont.String() == "" {
		t.Error("empty String() output")
	}
}
