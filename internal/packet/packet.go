// Package packet defines the EM-X wire format: fixed-size two-word packets
// carrying remote reads, writes, thread invocations, and synchronization
// messages over the circular Omega network.
//
// On the real machine every packet is exactly two 32-bit words: an address
// word (destination global address, or the continuation a reply targets)
// and a data word (the value, or the requester's continuation). The Go
// struct below keeps those two architectural words plus simulation-side
// metadata (source PE, tags) that the hardware would encode inside the
// words themselves.
package packet

import "fmt"

// Word is the EM-X machine word: 32 bits, as in the EMC-Y.
type Word uint32

// PE identifies a processing element (processor number).
type PE int32

// offBits is the number of low bits of a global address word holding the
// local word offset; the remaining high bits hold the PE number. 4 MB of
// local memory = 1 Mi words, so 20 bits of offset leave 12 bits of PE
// number — far more than the 80 PEs of the prototype.
const offBits = 20

// MaxOffset is the largest encodable local word offset.
const MaxOffset = 1<<offBits - 1

// MaxPE is the largest encodable processor number.
const MaxPE = 1<<(32-offBits) - 1

// GlobalAddr is a word-granularity address in the machine-wide address
// space: processor number plus local word offset, exactly the encoding the
// EM-X compiler uses for its global address space.
type GlobalAddr struct {
	PE  PE
	Off uint32
}

// Pack encodes the global address into a single 32-bit word.
func (g GlobalAddr) Pack() Word {
	return Word(uint32(g.PE)<<offBits | g.Off&MaxOffset)
}

// UnpackAddr decodes a packed global address word.
func UnpackAddr(w Word) GlobalAddr {
	return GlobalAddr{PE: PE(uint32(w) >> offBits), Off: uint32(w) & MaxOffset}
}

// Valid reports whether the address is encodable.
func (g GlobalAddr) Valid() bool {
	return g.PE >= 0 && g.PE <= MaxPE && g.Off <= MaxOffset
}

// Add returns the address displaced by d words on the same PE.
func (g GlobalAddr) Add(d uint32) GlobalAddr {
	return GlobalAddr{PE: g.PE, Off: g.Off + d}
}

func (g GlobalAddr) String() string { return fmt.Sprintf("PE%d+%#x", g.PE, g.Off) }

// Continuation identifies where a read reply or a call result resumes
// execution: a frame slot on a PE. On hardware it is the return-address
// word of a read-request packet.
type Continuation struct {
	PE    PE
	Frame uint32 // activation frame id on that PE
	Slot  uint16 // input slot within the frame
}

func (c Continuation) String() string {
	return fmt.Sprintf("PE%d/f%d.%d", c.PE, c.Frame, c.Slot)
}

// Kind enumerates the packet types the EMC-Y send instructions generate.
type Kind uint8

const (
	// KindReadReq asks the destination PE for one word at Addr; the reply
	// resumes Cont. Serviced by the IBU by-passing DMA without EXU cycles.
	KindReadReq Kind = iota
	// KindBlockReadReq asks for Block consecutive words starting at Addr;
	// the destination streams Block reply packets back.
	KindBlockReadReq
	// KindReadReply carries one word of Data back to continuation Cont.
	KindReadReply
	// KindWrite stores Data at Addr on the destination PE; fire-and-forget,
	// the issuing thread does not suspend.
	KindWrite
	// KindInvoke spawns/enables a thread: Addr names the code entry, Data
	// carries an argument, Cont the caller's continuation.
	KindInvoke
	// KindSync is a synchronization token (barrier round arrival).
	KindSync
	// KindResume re-enables a locally suspended thread (explicit context
	// switch / spin requeue). It never crosses the network: the hardware
	// equivalent is the continuation re-entering the PE's own packet queue.
	KindResume
	nKinds
)

var kindNames = [nKinds]string{
	"read-req", "block-read-req", "read-reply", "write", "invoke", "sync",
	"resume",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Words reports the architectural size of a packet of this kind in 32-bit
// words. Every EM-X packet is two words; a block read request carries a
// third word holding the block length (the hardware encodes it in the
// data word; we count it as payload for bandwidth purposes anyway).
func (k Kind) Words() int {
	if k == KindBlockReadReq {
		return 2
	}
	return 2
}

// Packet is one network message.
type Packet struct {
	Kind Kind
	Src  PE         // issuing PE (metadata; hardware derives it from Cont)
	Addr GlobalAddr // address word: target of the operation (Addr.PE routes)
	Data Word       // data word: value / argument
	Cont Continuation
	// Block is the word count for KindBlockReadReq.
	Block uint32
	// Seq is a simulation-side tag used by tracing and the non-overtaking
	// property test; the network never inspects it.
	Seq uint64
}

// Dst returns the PE the network must deliver this packet to.
func (p *Packet) Dst() PE {
	switch p.Kind {
	case KindReadReply, KindResume:
		return p.Cont.PE
	default:
		return p.Addr.PE
	}
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s src=%d dst=%d addr=%v data=%#x cont=%v",
		p.Kind, p.Src, p.Dst(), p.Addr, uint32(p.Data), p.Cont)
}
