package core

import (
	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/sim"
)

// TC is the thread context handed to workload code — the analogue of the
// EM-X C thread library. Every method charges simulated cycles; Read and
// ReadBlock additionally suspend the thread (split-phase transactions),
// letting the EXU switch to the next ready thread.
//
// TC methods must only be called from the thread's own function; a TC is
// not valid after the function returns.
type TC struct {
	t   *thr
	arg packet.Word
}

// Arg returns the argument word the thread was invoked with.
func (tc *TC) Arg() packet.Word { return tc.arg }

// PE returns the processor this thread runs on.
func (tc *TC) PE() packet.PE { return tc.t.pe }

// P returns the machine's processor count.
func (tc *TC) P() int { return tc.t.m.Cfg.P }

// Name returns the thread's name.
func (tc *TC) Name() string { return tc.t.name }

// sync applies any buffered operations before an observation of machine
// state (clock, memory). When the buffer is empty the engine is already
// blocked in step() at the correct time, so no round-trip is needed —
// the common case stays free.
func (tc *TC) sync() {
	if len(tc.t.buf) > 0 {
		tc.t.yieldOp(opFlush{})
	}
}

// Now returns the current simulated time. The paper's measurements use a
// global clock; so does the simulator.
func (tc *TC) Now() sim.Time {
	// The shard's engine is blocked in step() while workload code runs,
	// so reading the clock is race-free once buffered ops are applied
	// (every member engine agrees on the time inside a lockstep round).
	tc.sync()
	return tc.t.eng.Now()
}

// Compute charges cycles of user computation (the thread's run length).
// Buffered: the charge is applied at the next suspension point.
func (tc *TC) Compute(cycles sim.Time) {
	tc.t.buf = append(tc.t.buf, bufOp{kind: bufCompute, cycles: cycles})
}

// Read performs a split-phase remote read of one word. The thread is
// suspended after the request packet is generated; the EXU switches to
// the next ready thread; the reply resumes this thread FIFO-fashion.
func (tc *TC) Read(addr packet.GlobalAddr) packet.Word {
	return tc.t.yieldOp(opRead{addr: addr}).val
}

// ReadBlock reads n consecutive words from a remote PE with a single
// block-read request (one of the EMC-Y's four send instructions). The
// thread suspends until all n reply packets have arrived.
func (tc *TC) ReadBlock(addr packet.GlobalAddr, n int) []packet.Word {
	return tc.t.yieldOp(opReadBlock{addr: addr, n: n}).vals
}

// Write sends a remote write packet. The thread continues immediately:
// remote writes do not suspend the issuing thread. Buffered.
func (tc *TC) Write(addr packet.GlobalAddr, data packet.Word) {
	tc.t.buf = append(tc.t.buf, bufOp{kind: bufWrite, addr: addr, data: data})
}

// Spawn sends an invoke packet that starts fn as a new thread on pe (which
// may be this PE). The new thread receives arg through its TC.
func (tc *TC) Spawn(pe packet.PE, name string, arg packet.Word, fn ThreadFn) {
	tc.t.yieldOp(opSpawn{pe: pe, name: name, arg: arg, fn: fn})
}

// Yield performs an explicit context switch: the thread is re-queued at
// the tail of the FIFO and the EXU dispatches the next packet. kind
// attributes the switch for Figure 9's classification.
func (tc *TC) Yield(kind metrics.SwitchKind) {
	tc.t.yieldOp(opYield{kind: kind})
}

// SpinUntil repeatedly yields (attributed to kind) until cond holds,
// burning EXU cycles on every failed check — busy-wait semantics. The
// runtime's own synchronization (Barrier, WaitUntil) blocks instead;
// SpinUntil exists for workloads that model polling loops explicitly.
func (tc *TC) SpinUntil(kind metrics.SwitchKind, cond func() bool) {
	for !cond() {
		tc.Yield(kind)
	}
}

// LocalLoad reads this PE's own memory through the EXU/MCU port,
// contending with the by-passing DMA.
func (tc *TC) LocalLoad(off uint32) packet.Word {
	return tc.t.yieldOp(opLocalLoad{off: off}).val
}

// LocalStore writes this PE's own memory through the EXU/MCU port.
// Buffered.
func (tc *TC) LocalStore(off uint32, data packet.Word) {
	tc.t.buf = append(tc.t.buf, bufOp{kind: bufLocalStore, off: off, data: data})
}

// PeekLocal reads local memory at zero simulated cost. Workloads use it
// inside compute phases whose cycle cost is charged wholesale via Compute
// with the paper's calibrated run lengths (e.g. 12 cycles per merge-loop
// iteration), so per-word charging would double-count.
func (tc *TC) PeekLocal(off uint32) packet.Word {
	tc.sync()
	return tc.t.m.Mem(tc.t.pe).Peek(off)
}

// PokeLocal writes local memory at zero simulated cost (see PeekLocal).
func (tc *TC) PokeLocal(off uint32, w packet.Word) {
	tc.sync()
	tc.t.m.Mem(tc.t.pe).Poke(off, w)
}

// GlobalClockCycles is the cost the paper attributes to reading the
// global clock during measurement; exposed for instrumentation-fidelity
// experiments.
const GlobalClockCycles sim.Time = 2
