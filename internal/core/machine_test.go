package core

import (
	"strings"
	"testing"

	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/sim"
)

func newTestMachine(t *testing.T, p int) *Machine {
	t.Helper()
	cfg := DefaultConfig(p)
	cfg.MemWords = 1 << 16
	cfg.MaxCycles = 10_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustRun(t *testing.T, m *Machine) *metrics.Run {
	t.Helper()
	r, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{P: 0, MemWords: 10}); err == nil {
		t.Error("P=0 accepted")
	}
	// Non-power-of-two machine sizes are allowed (the prototype has 80
	// PEs); the switch fabric rounds up internally.
	if _, err := NewMachine(DefaultConfig(80)); err != nil {
		t.Errorf("P=80 rejected: %v", err)
	}
	cfg := DefaultConfig(4)
	cfg.SaveCycles = -1
	if _, err := NewMachine(cfg); err == nil {
		t.Error("negative timing accepted")
	}
}

func TestSingleThreadCompute(t *testing.T) {
	m := newTestMachine(t, 1)
	ran := false
	m.SpawnAt(0, "main", 7, func(tc *TC) {
		if tc.Arg() != 7 {
			t.Errorf("arg = %d, want 7", tc.Arg())
		}
		if tc.PE() != 0 || tc.P() != 1 || tc.Name() != "main" {
			t.Errorf("identity: pe=%d p=%d name=%q", tc.PE(), tc.P(), tc.Name())
		}
		tc.Compute(100)
		ran = true
	})
	r := mustRun(t, m)
	if !ran {
		t.Fatal("thread body did not run")
	}
	if r.PEs[0].Times.Compute != 100 {
		t.Fatalf("compute = %d, want 100", r.PEs[0].Times.Compute)
	}
	// Makespan = dispatch + spawn + compute.
	want := m.Cfg.DispatchCycles + m.Cfg.SpawnCycles + 100
	if r.Makespan != want {
		t.Fatalf("makespan = %d, want %d", r.Makespan, want)
	}
}

func TestRemoteReadRoundTrip(t *testing.T) {
	m := newTestMachine(t, 16)
	m.Mem(9).Poke(500, 0xbeef)
	var got packet.Word
	var issued, returned sim.Time
	m.SpawnAt(0, "reader", 0, func(tc *TC) {
		issued = tc.Now()
		got = tc.Read(packet.GlobalAddr{PE: 9, Off: 500})
		returned = tc.Now()
	})
	r := mustRun(t, m)
	if got != 0xbeef {
		t.Fatalf("read returned %#x, want 0xbeef", uint32(got))
	}
	// The paper: a typical remote read takes ~1 us (20 cycles), up to
	// 2 us under load. Unloaded round trip must land in [15, 45].
	lat := returned - issued
	if lat < 15 || lat > 45 {
		t.Fatalf("remote read latency = %d cycles, want 20-40ish", lat)
	}
	if r.PEs[0].RemoteReads != 1 {
		t.Fatalf("remote reads = %d", r.PEs[0].RemoteReads)
	}
	if r.PEs[0].Switches[metrics.SwitchRemoteRead] != 1 {
		t.Fatalf("remote-read switches = %d, want 1", r.PEs[0].Switches[metrics.SwitchRemoteRead])
	}
	if r.PEs[9].ServicedDMA != 1 {
		t.Fatalf("PE9 serviced %d requests via DMA", r.PEs[9].ServicedDMA)
	}
	// By-passing: the remote PE's EXU never ran anything.
	if r.PEs[9].Dispatches != 0 {
		t.Fatalf("PE9 dispatched %d packets; bypass should not involve the EXU", r.PEs[9].Dispatches)
	}
}

func TestRemoteWriteVisible(t *testing.T) {
	m := newTestMachine(t, 4)
	m.SpawnAt(2, "writer", 0, func(tc *TC) {
		tc.Write(packet.GlobalAddr{PE: 3, Off: 8}, 1234)
		// Writes don't suspend: thread continues immediately.
		tc.Compute(5)
	})
	mustRun(t, m)
	if got := m.Mem(3).Peek(8); got != 1234 {
		t.Fatalf("remote write not applied: %d", got)
	}
}

func TestBlockRead(t *testing.T) {
	m := newTestMachine(t, 8)
	for i := uint32(0); i < 16; i++ {
		m.Mem(5).Poke(100+i, packet.Word(i*3))
	}
	var got []packet.Word
	m.SpawnAt(1, "blockreader", 0, func(tc *TC) {
		got = tc.ReadBlock(packet.GlobalAddr{PE: 5, Off: 100}, 16)
	})
	r := mustRun(t, m)
	if len(got) != 16 {
		t.Fatalf("block read returned %d words", len(got))
	}
	for i, w := range got {
		if w != packet.Word(i*3) {
			t.Fatalf("block[%d] = %d, want %d", i, w, i*3)
		}
	}
	// One request, 16 words; exactly one remote-read switch (one suspend).
	if r.PEs[1].RemoteReads != 16 {
		t.Fatalf("remote reads = %d, want 16 words", r.PEs[1].RemoteReads)
	}
	if r.PEs[1].Switches[metrics.SwitchRemoteRead] != 1 {
		t.Fatalf("switches = %d, want 1 for a block read", r.PEs[1].Switches[metrics.SwitchRemoteRead])
	}
}

func TestSpawnRemote(t *testing.T) {
	m := newTestMachine(t, 4)
	order := make(chan string, 4)
	m.SpawnAt(0, "parent", 0, func(tc *TC) {
		tc.Spawn(2, "child", 42, func(tc2 *TC) {
			if tc2.PE() != 2 || tc2.Arg() != 42 {
				t.Errorf("child on PE%d with arg %d", tc2.PE(), tc2.Arg())
			}
			order <- "child"
		})
		tc.Compute(1)
		order <- "parent"
	})
	r := mustRun(t, m)
	close(order)
	var got []string
	for s := range order {
		got = append(got, s)
	}
	if len(got) != 2 {
		t.Fatalf("ran %v", got)
	}
	if r.PEs[0].Invokes != 1 {
		t.Fatalf("invokes = %d", r.PEs[0].Invokes)
	}
}

func TestLocalLoadStore(t *testing.T) {
	m := newTestMachine(t, 1)
	var got packet.Word
	m.SpawnAt(0, "mem", 0, func(tc *TC) {
		tc.LocalStore(40, 77)
		got = tc.LocalLoad(40)
		tc.PokeLocal(41, 88)
		if tc.PeekLocal(41) != 88 {
			t.Error("peek/poke mismatch")
		}
	})
	r := mustRun(t, m)
	if got != 77 {
		t.Fatalf("local load = %d", got)
	}
	// Local accesses charged as compute (2 cycles each through the MCU).
	if r.PEs[0].Times.Compute != 4 {
		t.Fatalf("compute = %d, want 4", r.PEs[0].Times.Compute)
	}
}

func TestMultithreadOverlapBeatsSingleThread(t *testing.T) {
	// The paper's core claim in miniature: h=4 threads each doing
	// read-then-tiny-compute finish much faster than one thread doing all
	// reads serially, because reads overlap.
	run := func(h int) sim.Time {
		m := newTestMachine(t, 16)
		reads := 64
		for i := 0; i < reads; i++ {
			m.Mem(9).Poke(uint32(i), packet.Word(i))
		}
		for th := 0; th < h; th++ {
			th := th
			m.SpawnAt(0, "t", packet.Word(th), func(tc *TC) {
				per := reads / h
				for k := 0; k < per; k++ {
					tc.Read(packet.GlobalAddr{PE: 9, Off: uint32(th*per + k)})
					tc.Compute(12)
				}
			})
		}
		r := mustRun(t, m)
		return r.Makespan
	}
	t1, t4 := run(1), run(4)
	if t4 >= t1 {
		t.Fatalf("4 threads (%d cycles) not faster than 1 (%d cycles)", t4, t1)
	}
	// With save+restore+dispatch ~= the unloaded round trip, the h=4
	// makespan is EXU-bound; anything under ~0.85 of t1 shows real overlap
	// (the comm-time drop itself is asserted in TestCommTimeDropsWithThreads).
	if float64(t4) > 0.85*float64(t1) {
		t.Fatalf("insufficient overlap: t4=%d vs t1=%d", t4, t1)
	}
}

func TestCommTimeDropsWithThreads(t *testing.T) {
	// Figure 6's y-axis: per-PE exposed communication time must drop when
	// going from 1 to 4 threads.
	run := func(h int) float64 {
		m := newTestMachine(t, 16)
		for th := 0; th < h; th++ {
			th := th
			m.SpawnAt(0, "t", 0, func(tc *TC) {
				for k := 0; k < 32/h; k++ {
					tc.Read(packet.GlobalAddr{PE: 3, Off: uint32(th*32 + k)})
					tc.Compute(12)
				}
			})
		}
		r := mustRun(t, m)
		return float64(r.PEs[0].Times.Comm)
	}
	c1, c4 := run(1), run(4)
	if c4 >= c1*0.6 {
		t.Fatalf("comm time did not drop: c1=%v c4=%v", c1, c4)
	}
}

func TestBreakdownSumsToMakespan(t *testing.T) {
	m := newTestMachine(t, 8)
	for pe := packet.PE(0); pe < 8; pe++ {
		pe := pe
		m.SpawnAt(pe, "w", 0, func(tc *TC) {
			mate := (pe + 4) % 8
			for k := 0; k < 10; k++ {
				tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(k)})
				tc.Compute(20)
				tc.Write(packet.GlobalAddr{PE: mate, Off: uint32(100 + k)}, 1)
			}
		})
	}
	r := mustRun(t, m)
	for pe := range r.PEs {
		if got := r.PEs[pe].Times.Total(); got != r.Makespan {
			t.Fatalf("PE%d breakdown %+v sums to %d, makespan %d",
				pe, r.PEs[pe].Times, got, r.Makespan)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (*metrics.Run, error) {
		m := newTestMachine(t, 16)
		for pe := packet.PE(0); pe < 16; pe++ {
			pe := pe
			for th := 0; th < 3; th++ {
				m.SpawnAt(pe, "w", packet.Word(th), func(tc *TC) {
					mate := pe ^ 5
					for k := 0; k < 8; k++ {
						tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(int(tc.Arg())*8 + k)})
						tc.Compute(sim.Time(7 + k))
					}
				})
			}
		}
		return m.Run()
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.SimEvents != b.SimEvents {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d events",
			a.Makespan, a.SimEvents, b.Makespan, b.SimEvents)
	}
	for pe := range a.PEs {
		if a.PEs[pe].Times != b.PEs[pe].Times {
			t.Fatalf("PE%d times differ across identical runs", pe)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	m := newTestMachine(t, 8)
	h := 4
	b := m.NewBarrier("iter", h)
	maxBefore := make([]sim.Time, 8)
	minAfter := make([]sim.Time, 8)
	for pe := packet.PE(0); pe < 8; pe++ {
		pe := pe
		for th := 0; th < h; th++ {
			th := th
			m.SpawnAt(pe, "w", 0, func(tc *TC) {
				// Skew arrival times heavily.
				tc.Compute(sim.Time(10 + 50*int(pe) + 13*th))
				if now := tc.Now(); now > maxBefore[pe] {
					maxBefore[pe] = now
				}
				tc.Barrier(b)
				if minAfter[pe] == 0 || tc.Now() < minAfter[pe] {
					minAfter[pe] = tc.Now()
				}
			})
		}
	}
	mustRun(t, m)
	// No thread may pass the barrier before every thread arrived.
	var globalMaxBefore sim.Time
	for _, v := range maxBefore {
		if v > globalMaxBefore {
			globalMaxBefore = v
		}
	}
	for pe, after := range minAfter {
		if after < globalMaxBefore {
			t.Fatalf("PE%d passed barrier at %d before last arrival %d", pe, after, globalMaxBefore)
		}
	}
	for pe := packet.PE(0); pe < 8; pe++ {
		if b.Episodes(pe) != 1 {
			t.Fatalf("PE%d episodes = %d", pe, b.Episodes(pe))
		}
	}
}

func TestBarrierRepeatedEpisodes(t *testing.T) {
	m := newTestMachine(t, 4)
	h, iters := 3, 5
	b := m.NewBarrier("iter", h)
	counts := make([][]int, 4)
	for pe := range counts {
		counts[pe] = make([]int, iters+1)
	}
	for pe := packet.PE(0); pe < 4; pe++ {
		pe := pe
		for th := 0; th < h; th++ {
			th := th
			m.SpawnAt(pe, "w", 0, func(tc *TC) {
				for it := 0; it < iters; it++ {
					tc.Compute(sim.Time(5 + 11*th + 3*int(pe) + it))
					tc.Barrier(b)
					// After episode it, all PEs must have episode count > it.
					for q := packet.PE(0); q < 4; q++ {
						if b.Episodes(q) < uint64(it) {
							t.Errorf("iteration %d: PE%d lagging at %d", it, q, b.Episodes(q))
						}
					}
					counts[pe][it]++
				}
			})
		}
	}
	r := mustRun(t, m)
	for pe := range counts {
		for it := 0; it < iters; it++ {
			if counts[pe][it] != h {
				t.Fatalf("PE%d iteration %d: %d arrivals", pe, it, counts[pe][it])
			}
		}
	}
	if got := r.PEs[0].Switches[metrics.SwitchIterSync]; got == 0 {
		t.Fatal("no iteration-sync switches recorded")
	}
}

func TestBarrierSingleThreadSinglePE(t *testing.T) {
	m := newTestMachine(t, 1)
	b := m.NewBarrier("solo", 1)
	m.SpawnAt(0, "w", 0, func(tc *TC) {
		for i := 0; i < 3; i++ {
			tc.Barrier(b)
		}
	})
	mustRun(t, m)
	if b.Episodes(0) != 3 {
		t.Fatalf("episodes = %d", b.Episodes(0))
	}
}

func TestIterSyncSwitchesGrowWithThreads(t *testing.T) {
	// Figure 9: iteration-sync switches grow with h for a fixed tiny
	// per-iteration workload.
	run := func(h int) float64 {
		m := newTestMachine(t, 4)
		b := m.NewBarrier("iter", h)
		for pe := packet.PE(0); pe < 4; pe++ {
			for th := 0; th < h; th++ {
				th := th
				m.SpawnAt(pe, "w", 0, func(tc *TC) {
					for it := 0; it < 4; it++ {
						tc.Compute(sim.Time(10 + th))
						tc.Barrier(b)
					}
				})
			}
		}
		r := mustRun(t, m)
		return r.MeanSwitches(metrics.SwitchIterSync)
	}
	s2, s8 := run(2), run(8)
	if s8 <= s2 {
		t.Fatalf("iter-sync switches did not grow: h=2: %v, h=8: %v", s2, s8)
	}
}

func TestServiceEXUModeStealsCycles(t *testing.T) {
	// Ablation: EM-4-style servicing must consume target-EXU cycles and
	// slow down a busy target.
	run := func(mode int) (*metrics.Run, sim.Time) {
		cfg := DefaultConfig(4)
		cfg.MemWords = 1 << 12
		cfg.MaxCycles = 1_000_000
		if mode == 1 {
			cfg.Proc.Mode = 1 // ServiceEXU
		}
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// PE1 computes; PE0 bombards it with reads.
		m.SpawnAt(1, "victim", 0, func(tc *TC) {
			for i := 0; i < 50; i++ {
				tc.Compute(10)
			}
		})
		m.SpawnAt(0, "reader", 0, func(tc *TC) {
			for i := 0; i < 50; i++ {
				tc.Read(packet.GlobalAddr{PE: 1, Off: uint32(i)})
			}
		})
		r := mustRun(t, m)
		return r, r.Makespan
	}
	rBypass, _ := run(0)
	rEXU, _ := run(1)
	if rBypass.PEs[1].ServicedDMA != 50 || rBypass.PEs[1].ServicedEXU != 0 {
		t.Fatalf("bypass counters: %+v", rBypass.PEs[1])
	}
	if rEXU.PEs[1].ServicedEXU != 50 {
		t.Fatalf("EXU-mode serviced %d", rEXU.PEs[1].ServicedEXU)
	}
	if rEXU.PEs[1].Times.Overhead <= rBypass.PEs[1].Times.Overhead {
		t.Fatal("EXU servicing did not charge the victim's EXU")
	}
}

func TestWorkloadPanicSurfaces(t *testing.T) {
	m := newTestMachine(t, 2)
	m.SpawnAt(0, "bad", 0, func(tc *TC) {
		tc.Compute(5)
		panic("boom")
	})
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := newTestMachine(t, 2)
	b := m.NewBarrier("never", 2) // two threads expected, only one arrives
	m.SpawnAt(0, "lonely", 0, func(tc *TC) {
		tc.Barrier(b)
	})
	_, err := m.Run()
	if err == nil {
		t.Fatal("livelocked barrier not detected")
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := newTestMachine(t, 2)
	m.SpawnAt(0, "w", 0, func(tc *TC) { tc.Compute(1) })
	mustRun(t, m)
	if _, err := m.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestExplicitYieldRoundRobin(t *testing.T) {
	m := newTestMachine(t, 1)
	var order []int
	for th := 0; th < 3; th++ {
		th := th
		m.SpawnAt(0, "y", 0, func(tc *TC) {
			for i := 0; i < 3; i++ {
				order = append(order, th)
				tc.Yield(metrics.SwitchExplicit)
			}
		})
	}
	r := mustRun(t, m)
	// FIFO scheduling: threads cycle 0,1,2,0,1,2,...
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
	if got := r.PEs[0].Switches[metrics.SwitchExplicit]; got != 9 {
		t.Fatalf("explicit switches = %d, want 9", got)
	}
}

func TestFIFOReplyResumption(t *testing.T) {
	// Figure 4 semantics: a reply arriving while another thread runs does
	// not preempt it; the suspended thread resumes only when the EXU
	// dequeues its reply packet.
	m := newTestMachine(t, 4)
	var events []string
	m.SpawnAt(0, "reader", 0, func(tc *TC) {
		events = append(events, "issue")
		tc.Read(packet.GlobalAddr{PE: 2, Off: 0})
		events = append(events, "resumed")
	})
	m.SpawnAt(0, "cruncher", 0, func(tc *TC) {
		events = append(events, "crunch-start")
		tc.Compute(500) // far longer than the read round trip
		events = append(events, "crunch-end")
	})
	mustRun(t, m)
	want := []string{"issue", "crunch-start", "crunch-end", "resumed"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("non-FIFO resumption: %v", events)
		}
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemWords = 1 << 10
	cfg.MaxCycles = 1000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SpawnAt(0, "spinner", 0, func(tc *TC) {
		tc.SpinUntil(metrics.SwitchExplicit, func() bool { return false })
	})
	if _, err := m.Run(); err == nil {
		t.Fatal("runaway spin not aborted")
	}
}

func TestManyThreadsSpillAccounting(t *testing.T) {
	m := newTestMachine(t, 1)
	h := 24 // far beyond the 8-packet on-chip FIFO
	for th := 0; th < h; th++ {
		m.SpawnAt(0, "w", 0, func(tc *TC) {
			for i := 0; i < 3; i++ {
				tc.Yield(metrics.SwitchExplicit)
			}
		})
	}
	r := mustRun(t, m)
	if r.PEs[0].Spills == 0 {
		t.Fatal("no queue spills recorded with 24 queued threads")
	}
}

func TestWaitSetBlocksAndWakes(t *testing.T) {
	m := newTestMachine(t, 1)
	ws := m.NewWaitSet()
	flag := false
	var order []string
	m.SpawnAt(0, "waiter", 0, func(tc *TC) {
		order = append(order, "wait-start")
		tc.WaitUntil(metrics.SwitchExplicit, ws, func() bool { return flag })
		order = append(order, "woken")
	})
	m.SpawnAt(0, "setter", 0, func(tc *TC) {
		tc.Compute(200)
		flag = true
		ws.Notify()
		order = append(order, "set")
	})
	r := mustRun(t, m)
	want := []string{"wait-start", "set", "woken"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v", order)
	}
	// Exactly one explicit switch for the single block.
	if got := r.PEs[0].Switches[metrics.SwitchExplicit]; got != 1 {
		t.Fatalf("switches = %d, want 1 (blocking, not spinning)", got)
	}
	if ws.Waiting() != 0 {
		t.Fatalf("%d waiters left", ws.Waiting())
	}
}

func TestWaitSetImmediateConditionDoesNotBlock(t *testing.T) {
	m := newTestMachine(t, 1)
	ws := m.NewWaitSet()
	m.SpawnAt(0, "w", 0, func(tc *TC) {
		tc.WaitUntil(metrics.SwitchIterSync, ws, func() bool { return true })
	})
	r := mustRun(t, m)
	if got := r.PEs[0].Switches[metrics.SwitchIterSync]; got != 0 {
		t.Fatalf("switches = %d, want 0 for an already-true condition", got)
	}
}

func TestBlockedWaitIdleTimeIsComm(t *testing.T) {
	// A thread blocked with an empty queue leaves the EXU idle: the wait
	// must be accounted as communication time (the paper's semantics for
	// synchronization stalls).
	m := newTestMachine(t, 2)
	ws := m.NewWaitSet()
	released := false
	m.SpawnAt(0, "blocked", 0, func(tc *TC) {
		tc.WaitUntil(metrics.SwitchIterSync, ws, func() bool { return released })
	})
	m.SpawnAt(1, "releaser", 0, func(tc *TC) {
		tc.Compute(5000)
		released = true
		ws.Notify()
	})
	r := mustRun(t, m)
	if got := r.PEs[0].Times.Comm; got < 4000 {
		t.Fatalf("blocked wait charged %d comm cycles, want ~5000", got)
	}
}

func TestWaitSetDeadlockDetected(t *testing.T) {
	m := newTestMachine(t, 1)
	ws := m.NewWaitSet()
	m.SpawnAt(0, "stuck", 0, func(tc *TC) {
		tc.WaitUntil(metrics.SwitchIterSync, ws, func() bool { return false })
	})
	_, err := m.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestPrototype80PEMachine(t *testing.T) {
	// The full 80-PE prototype: every PE reads from a mate across the
	// machine and the barrier synchronizes all of them.
	cfg := DefaultConfig(80)
	cfg.MemWords = 1 << 12
	cfg.MaxCycles = 50_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := m.NewBarrier("iter", 2)
	var reads int
	for pe := packet.PE(0); pe < 80; pe++ {
		pe := pe
		for th := 0; th < 2; th++ {
			m.SpawnAt(pe, "w", 0, func(tc *TC) {
				mate := (pe + 40) % 80
				for it := 0; it < 3; it++ {
					tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(it)})
					tc.Compute(20)
					tc.Barrier(b)
				}
				reads += 3
			})
		}
	}
	r := mustRun(t, m)
	if reads != 80*2*3 {
		t.Fatalf("reads = %d", reads)
	}
	for pe := packet.PE(0); pe < 80; pe++ {
		if b.Episodes(pe) != 3 {
			t.Fatalf("PE%d episodes = %d", pe, b.Episodes(pe))
		}
	}
	for pe := range r.PEs {
		if r.PEs[pe].Times.Total() != r.Makespan {
			t.Fatalf("PE%d breakdown does not close", pe)
		}
	}
}

func TestBarrierNonPowerOfTwoP(t *testing.T) {
	// Dissemination needs ceil(log2(P)) rounds; P=5 requires 3.
	cfg := DefaultConfig(5)
	cfg.MemWords = 1 << 10
	cfg.MaxCycles = 10_000_000
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := m.NewBarrier("iter", 1)
	after := make([]sim.Time, 5)
	var maxArrive sim.Time
	for pe := packet.PE(0); pe < 5; pe++ {
		pe := pe
		m.SpawnAt(pe, "w", 0, func(tc *TC) {
			tc.Compute(sim.Time(100 * (int(pe) + 1)))
			if tc.Now() > maxArrive {
				maxArrive = tc.Now()
			}
			tc.Barrier(b)
			after[pe] = tc.Now()
		})
	}
	mustRun(t, m)
	for pe, at := range after {
		if at < maxArrive {
			t.Fatalf("PE%d released at %d before last arrival %d", pe, at, maxArrive)
		}
	}
}
