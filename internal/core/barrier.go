package core

import (
	"fmt"
	"math/bits"

	"emx/internal/metrics"
	"emx/internal/packet"
)

// Barrier is the iteration-synchronization primitive the paper inserts at
// the end of every loop iteration ("we forced loops to execute
// synchronously by inserting a barrier at the end of each iteration").
//
// It is two-level, matching the EM-X software implementation:
//
//  1. Local phase: each of the PE's h participating threads arrives;
//     non-last threads block (suspend to the activation frame and free
//     the EXU) — each block is one iteration-sync switch of Figure 9,
//     so their number grows with the thread count.
//  2. Global phase: the last local thread runs a dissemination barrier
//     over log2(P) rounds of sync packets, blocking between rounds.
//     Imbalance between processors therefore surfaces as idle EXU time,
//     i.e. communication time — as in the paper's measurements.
//
// Sync tokens carry only a round number; cumulative counters make
// episode tagging unnecessary (a PE can run at most one episode ahead).
type Barrier struct {
	m      *Machine
	id     uint32
	name   string
	expect int
	local  []barrierPE
	waits  []*WaitSet // per PE
}

type barrierPE struct {
	arrived  int
	episodes uint64   // completed barrier episodes on this PE
	recv     []uint64 // cumulative sync tokens received, per round
}

// NewBarrier creates a barrier in which threadsPerPE threads on every PE
// participate. Create barriers before Run.
func (m *Machine) NewBarrier(name string, threadsPerPE int) *Barrier {
	if threadsPerPE < 1 {
		panic(fmt.Sprintf("core: barrier %q with %d threads per PE", name, threadsPerPE))
	}
	rounds := 0 // ceil(log2(P)) dissemination rounds
	if m.Cfg.P > 1 {
		rounds = bits.Len(uint(m.Cfg.P - 1))
	}
	b := &Barrier{
		m:      m,
		id:     uint32(len(m.barriers)),
		name:   name,
		expect: threadsPerPE,
		local:  make([]barrierPE, m.Cfg.P),
	}
	b.waits = make([]*WaitSet, m.Cfg.P)
	for pe := range b.local {
		b.local[pe].recv = make([]uint64, rounds)
		b.waits[pe] = m.NewWaitSetOn(packet.PE(pe))
	}
	m.barriers = append(m.barriers, b)
	return b
}

// Episodes returns how many times the barrier has completed on a PE.
func (b *Barrier) Episodes(pe packet.PE) uint64 { return b.local[pe].episodes }

// barrierToken handles an arriving sync packet (called from the exu).
func (m *Machine) barrierToken(pe packet.PE, pkt *packet.Packet) {
	id := pkt.Addr.Off
	if int(id) >= len(m.barriers) {
		m.fail(fmt.Errorf("core: sync token for unknown barrier %d on PE%d", id, pe))
		return
	}
	b := m.barriers[id]
	round := int(pkt.Data)
	l := &b.local[pe]
	if round < 0 || round >= len(l.recv) {
		m.fail(fmt.Errorf("core: sync token round %d out of range on PE%d", round, pe))
		return
	}
	l.recv[round]++
	b.waits[pe].Notify()
}

// Barrier blocks the calling thread until all participating threads on
// all PEs have arrived. Blocking is attributed to iteration-sync
// switches; the EXU idle time while every local thread waits surfaces as
// communication time.
func (tc *TC) Barrier(b *Barrier) {
	// Apply buffered operations first: the arrival counter and episode
	// snapshot below must reflect sync tokens delivered up to the
	// simulated time the preceding work completed.
	tc.sync()
	pe := tc.t.pe
	l := &b.local[pe]
	myEp := l.episodes
	l.arrived++
	if l.arrived < b.expect {
		// Follower: block until the last local thread completes the
		// episode. One iteration-sync switch per block.
		tc.WaitUntil(metrics.SwitchIterSync, b.waits[pe], func() bool {
			return b.local[pe].episodes > myEp
		})
		return
	}
	// Last local thread: run the global dissemination rounds.
	l.arrived = 0
	p := packet.PE(tc.t.m.Cfg.P)
	for r := range l.recv {
		partner := (pe + 1<<uint(r)) % p
		tc.sendSync(b, partner, r)
		r := r
		tc.WaitUntil(metrics.SwitchIterSync, b.waits[pe], func() bool {
			return b.local[pe].recv[r] >= myEp+1
		})
	}
	l.episodes++
	b.waits[pe].Notify()
	tc.t.m.stats[pe].SyncsSent += uint64(len(l.recv))
}

// sendSync emits one barrier round token.
func (tc *TC) sendSync(b *Barrier, partner packet.PE, round int) {
	tc.t.yieldOp(opWriteSync{
		addr: packet.GlobalAddr{PE: partner, Off: b.id},
		data: packet.Word(round),
	})
}

// opWriteSync is like opWrite but emits a KindSync packet.
type opWriteSync struct {
	addr packet.GlobalAddr
	data packet.Word
}
