package core

import (
	"testing"

	"emx/internal/packet"
)

// BenchmarkOpBufferThroughput drives the non-suspending operation fast
// path: threads that compute, write remotely, and store locally in a
// tight loop, so nearly every simulated operation travels through the
// per-thread operation buffer instead of a goroutine round-trip. The
// simCycles/s and events/s metrics are the host-throughput numbers
// BENCH_*.json tracks at the machine level.
func BenchmarkOpBufferThroughput(b *testing.B) {
	const (
		p       = 4
		threads = 4
		iters   = 200
	)
	var cycles, events float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(p)
		cfg.MemWords = 1 << 12
		cfg.MaxCycles = 1 << 32
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for pe := packet.PE(0); pe < p; pe++ {
			pe := pe
			for h := 0; h < threads; h++ {
				m.SpawnAt(pe, "bench", packet.Word(h), func(tc *TC) {
					dst := (pe + 1) % p
					for k := uint32(0); k < iters; k++ {
						tc.Compute(3)
						tc.LocalStore(k, packet.Word(k))
						tc.Write(packet.GlobalAddr{PE: dst, Off: 512 + k}, packet.Word(k))
					}
				})
			}
		}
		run, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += float64(run.Makespan)
		events += float64(run.SimEvents)
	}
	b.ReportMetric(cycles/b.Elapsed().Seconds(), "simCycles/s")
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkRemoteReadPath exercises the suspension path (split-phase
// reads resume through the handler lane), complementing the
// non-suspending benchmark above.
func BenchmarkRemoteReadPath(b *testing.B) {
	const p = 4
	var cycles, events float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(p)
		cfg.MemWords = 1 << 12
		cfg.MaxCycles = 1 << 32
		m, err := NewMachine(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for pe := packet.PE(0); pe < p; pe++ {
			pe := pe
			m.SpawnAt(pe, "reader", 0, func(tc *TC) {
				src := (pe + 1) % p
				for k := uint32(0); k < 64; k++ {
					tc.Read(packet.GlobalAddr{PE: src, Off: k})
				}
			})
		}
		run, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += float64(run.Makespan)
		events += float64(run.SimEvents)
	}
	b.ReportMetric(cycles/b.Elapsed().Seconds(), "simCycles/s")
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/s")
}
