package core

import (
	"fmt"

	"emx/internal/memory"
	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/proc"
	"emx/internal/sim"
	"emx/internal/thread"
)

// exu is the engine-side model of one EMC-Y Execution Unit plus Matching
// Unit: it dispatches packets from the hardware FIFO queue, runs thread
// coroutines, charges cycles to the four accounting buckets, and issues
// packets through the PE's OBU.
type exu struct {
	m  *Machine
	pe packet.PE
	p  *proc.Proc
	st *metrics.PE

	busy         bool
	idleSince    sim.Time // valid when !busy
	restoredSeen uint64   // spill restores already charged
}

func newEXU(m *Machine, pe packet.PE) *exu {
	return &exu{m: m, pe: pe, p: m.Procs[pe], st: &m.stats[pe], idleSince: 0}
}

// wake is called whenever a packet is pushed to this PE's queue.
func (x *exu) wake() {
	if !x.busy {
		x.dispatch()
	}
}

// dispatch pops the next packet, charges Matching Unit time, and handles
// it. When the queue is empty the EXU goes idle; idle time is attributed
// to communication (exposed latency) when it ends.
func (x *exu) dispatch() {
	pkt, _, _, ok := x.p.Queue.Pop()
	if !ok {
		x.busy = false
		x.idleSince = x.m.Eng.Now()
		return
	}
	now := x.m.Eng.Now()
	if !x.busy {
		x.st.Times.Comm += now - x.idleSince
		x.busy = true
	}
	x.st.Dispatches++
	cost := x.m.Cfg.DispatchCycles
	// Spilled packets are restored from the on-memory buffer by extra MCU
	// traffic; charge it to the dispatch that consumed the restore.
	if restored := x.p.Queue.Restored; restored > x.restoredSeen {
		cost += sim.Time(restored-x.restoredSeen) * x.p.Config().SpillCycles
		x.restoredSeen = restored
	}
	x.st.Times.Switch += cost
	x.m.Eng.After(cost, func() { x.handle(pkt) })
}

// handle interprets one dequeued packet.
func (x *exu) handle(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.KindInvoke:
		info := x.m.takeSpawn(pkt.Seq)
		f := x.p.Frames.Alloc(thread.NoFrame, info.name)
		t := &thr{
			m:      x.m,
			pe:     x.pe,
			frame:  f.ID,
			name:   info.name,
			fn:     info.fn,
			resume: make(chan resumeMsg),
		}
		f.State = t
		x.m.allThreads = append(x.m.allThreads, t)
		x.m.live++
		x.m.wg.Add(1)
		go t.main()
		// Frame allocation and argument deposit.
		x.st.Times.Switch += x.m.Cfg.SpawnCycles
		x.m.Eng.After(x.m.Cfg.SpawnCycles, func() {
			x.m.trace(TraceStart, t)
			x.exec(t, resumeMsg{val: pkt.Data})
		})

	case packet.KindReadReply:
		t := x.threadOf(pkt.Cont.Frame)
		rw := t.rw
		if rw == nil || t.state != stSuspendedRead {
			x.m.fail(fmt.Errorf("core: PE%d reply for %v, but thread %v is not reading", x.pe, pkt.Cont, t))
			return
		}
		idx := pkt.Addr.Off - rw.base
		if int(idx) >= len(rw.buf) {
			x.m.fail(fmt.Errorf("core: PE%d reply offset %d outside read window of %v", x.pe, idx, t))
			return
		}
		rw.buf[idx] = pkt.Data
		rw.remaining--
		if rw.remaining > 0 {
			// More block words in flight: keep the thread suspended and
			// service the next packet.
			x.dispatch()
			return
		}
		t.rw = nil
		x.resumeThread(t, resumeMsg{val: rw.buf[0], vals: rw.buf})

	case packet.KindResume:
		t := x.threadOf(pkt.Cont.Frame)
		x.resumeThread(t, resumeMsg{})

	case packet.KindSync:
		x.m.barrierToken(x.pe, pkt)
		x.dispatch()

	case packet.KindReadReq, packet.KindBlockReadReq, packet.KindWrite:
		// ServiceEXU mode (EM-4): the request steals EXU cycles.
		x.st.Times.Overhead += x.m.Cfg.EXUServiceCycles
		x.m.Eng.After(x.m.Cfg.EXUServiceCycles, func() {
			x.p.ServiceOnEXU(pkt)
			x.dispatch()
		})

	default:
		x.m.fail(fmt.Errorf("core: PE%d cannot handle %v", x.pe, pkt))
	}
}

func (x *exu) threadOf(frame uint32) *thr {
	f := x.p.Frames.Get(frame)
	if f == nil {
		panic(fmt.Sprintf("core: PE%d packet for dead frame %d", x.pe, frame))
	}
	return f.State.(*thr)
}

// resumeThread charges register restore and continues the coroutine.
func (x *exu) resumeThread(t *thr, msg resumeMsg) {
	x.st.Times.Switch += x.m.Cfg.RestoreCycles
	x.m.Eng.After(x.m.Cfg.RestoreCycles, func() {
		x.m.trace(TraceRun, t)
		x.exec(t, msg)
	})
}

// exec resumes the coroutine and performs the operation it yields.
func (x *exu) exec(t *thr, msg resumeMsg) {
	cfg := &x.m.Cfg
	eng := x.m.Eng
	op := x.m.step(t, msg)
	switch op := op.(type) {
	case opCompute:
		if op.cycles < 0 {
			x.m.fail(fmt.Errorf("core: %v computed negative cycles", t))
			return
		}
		x.st.Times.Compute += op.cycles
		eng.After(op.cycles, func() { x.exec(t, resumeMsg{}) })

	case opRead:
		x.issueRead(t, op.addr, 1)

	case opReadBlock:
		if op.n <= 0 {
			x.m.fail(fmt.Errorf("core: %v block read of %d words", t, op.n))
			return
		}
		x.issueRead(t, op.addr, op.n)

	case opWrite:
		x.st.Times.Overhead += cfg.PacketGenCycles
		x.st.RemoteWrites++
		eng.After(cfg.PacketGenCycles, func() {
			x.p.Inject(&packet.Packet{
				Kind: packet.KindWrite,
				Src:  x.pe,
				Addr: op.addr,
				Data: op.data,
			})
			// Remote writes do not suspend the issuing thread.
			x.exec(t, resumeMsg{})
		})

	case opWriteSync:
		x.st.Times.Overhead += cfg.PacketGenCycles
		eng.After(cfg.PacketGenCycles, func() {
			x.p.Inject(&packet.Packet{
				Kind: packet.KindSync,
				Src:  x.pe,
				Addr: op.addr,
				Data: op.data,
			})
			x.exec(t, resumeMsg{})
		})

	case opSpawn:
		x.st.Times.Overhead += cfg.PacketGenCycles
		x.st.Invokes++
		seq := x.m.registerSpawn(op.name, op.fn)
		pe, arg := op.pe, op.arg
		eng.After(cfg.PacketGenCycles, func() {
			x.p.Inject(&packet.Packet{
				Kind: packet.KindInvoke,
				Src:  x.pe,
				Addr: packet.GlobalAddr{PE: pe},
				Data: arg,
				Seq:  seq,
			})
			x.exec(t, resumeMsg{})
		})

	case opWait:
		x.st.Switches[op.kind]++
		x.st.Times.Switch += cfg.SpinCheckCycles + cfg.SaveCycles
		t.state = stBlocked
		x.m.trace(TraceYield, t)
		op.ws.waiters = append(op.ws.waiters, waiter{t: t, cond: op.cond})
		eng.After(cfg.SpinCheckCycles+cfg.SaveCycles, func() { x.dispatch() })

	case opYield:
		x.st.Switches[op.kind]++
		x.st.Times.Switch += cfg.SpinCheckCycles + cfg.SaveCycles
		t.state = stQueued
		x.m.trace(TraceYield, t)
		eng.After(cfg.SpinCheckCycles+cfg.SaveCycles, func() {
			x.p.PushLocal(thread.Low, &packet.Packet{
				Kind: packet.KindResume,
				Src:  x.pe,
				Cont: packet.Continuation{PE: x.pe, Frame: t.frame},
			})
			x.dispatch()
		})

	case opLocalLoad:
		v, done := x.p.Mem.Read(eng.Now(), memory.PortEXU, op.off)
		x.st.Times.Compute += done - eng.Now()
		eng.At(done, func() { x.exec(t, resumeMsg{val: v}) })

	case opLocalStore:
		done := x.p.Mem.Write(eng.Now(), memory.PortEXU, op.off, op.data)
		x.st.Times.Compute += done - eng.Now()
		eng.At(done, func() { x.exec(t, resumeMsg{}) })

	case opDone:
		t.state = stDone
		x.m.trace(TraceEnd, t)
		x.m.live--
		x.p.Frames.Free(t.frame)
		x.dispatch()

	case opPanic:
		t.state = stDone
		x.m.live--
		x.m.fail(fmt.Errorf("core: thread %v panicked: %v", t, op.reason))

	default:
		x.m.fail(fmt.Errorf("core: %v yielded unknown op %T", t, op))
	}
}

// issueRead sends a (block) read request and suspends the thread: packet
// generation is overhead, the register save is switch time, and the
// suspension is counted as a remote-read switch (Figure 9's dominant
// category — exactly one per remote read).
func (x *exu) issueRead(t *thr, addr packet.GlobalAddr, n int) {
	cfg := &x.m.Cfg
	x.st.Times.Overhead += cfg.PacketGenCycles
	x.st.RemoteReads += uint64(n)
	x.st.Switches[metrics.SwitchRemoteRead]++
	t.rw = &readWait{base: addr.Off, buf: make([]packet.Word, n), remaining: n}
	t.state = stSuspendedRead
	x.m.trace(TraceReadIssue, t)
	kind := packet.KindReadReq
	var block uint32
	if n > 1 {
		kind = packet.KindBlockReadReq
		block = uint32(n)
	}
	pkt := &packet.Packet{
		Kind:  kind,
		Src:   x.pe,
		Addr:  addr,
		Block: block,
		Cont:  packet.Continuation{PE: x.pe, Frame: t.frame},
	}
	x.m.Eng.After(cfg.PacketGenCycles, func() {
		x.p.Inject(pkt)
		x.st.Times.Switch += cfg.SaveCycles
		x.m.Eng.After(cfg.SaveCycles, func() { x.dispatch() })
	})
}

// closeAccounting attributes trailing idle time (after the PE's last
// activity) to communication, so per-PE components sum to the makespan.
func (x *exu) closeAccounting(end sim.Time) {
	if !x.busy && x.idleSince <= end {
		x.st.Times.Comm += end - x.idleSince
		x.idleSince = end
	}
}
