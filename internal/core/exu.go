package core

import (
	"fmt"

	"emx/internal/memory"
	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/proc"
	"emx/internal/sim"
	"emx/internal/thread"
)

// exu is the engine-side model of one EMC-Y Execution Unit plus Matching
// Unit: it dispatches packets from the hardware FIFO queue, runs thread
// coroutines, charges cycles to the four accounting buckets, and issues
// packets through the PE's OBU.
//
// Continuation events use the engine's handler lane; per-event context
// (the thread, the packet to inject, the resume payload) is staged on
// the thr or passed through EventArg, so steady-state execution does
// not allocate closures.
type exu struct {
	m   *Machine
	pe  packet.PE
	p   *proc.Proc
	st  *metrics.PE
	eng *sim.Engine // the owning shard's engine
	sh  *shardState // the owning shard's runtime state
	obs *obs.Tracer // the owning shard's tracer (nil: disabled)

	busy         bool
	idleSince    sim.Time // valid when !busy
	restoredSeen uint64   // spill restores already charged

	hApply         sim.Handler
	hInjectApply   sim.Handler
	hInjectResume  sim.Handler
	hResume        sim.Handler
	hStart         sim.Handler
	hRun           sim.Handler
	hDispatch      sim.Handler
	hPushDispatch  sim.Handler
	hInjectSaveDsp sim.Handler
	hHandle        sim.Handler
	hService       sim.Handler
}

func newEXU(m *Machine, pe packet.PE) *exu {
	sh := m.shards[m.peShard[pe]]
	x := &exu{m: m, pe: pe, p: m.Procs[pe], st: &m.stats[pe],
		eng: sh.eng, sh: sh, idleSince: 0}
	x.hApply = applyH{x}
	x.hInjectApply = injectApplyH{x}
	x.hInjectResume = injectResumeH{x}
	x.hResume = resumeH{x}
	x.hStart = startH{x}
	x.hRun = runH{x}
	x.hDispatch = dispatchH{x}
	x.hPushDispatch = pushDispatchH{x}
	x.hInjectSaveDsp = injectSaveDispatchH{x}
	x.hHandle = handleH{x}
	x.hService = serviceH{x}
	return x
}

// applyH continues replaying a thread's operation buffer.
type applyH struct{ x *exu }

func (h applyH) OnEvent(arg sim.EventArg) { h.x.apply(arg.Ptr.(*thr)) }

// injectApplyH injects the thread's staged packet, then continues the
// buffer replay (remote writes: the thread does not suspend).
type injectApplyH struct{ x *exu }

func (h injectApplyH) OnEvent(arg sim.EventArg) {
	t := arg.Ptr.(*thr)
	pkt := t.pendingPkt
	t.pendingPkt = nil
	h.x.p.Inject(pkt)
	h.x.apply(t)
}

// injectResumeH injects the thread's staged packet, then resumes the
// coroutine (spawn and sync sends do not suspend).
type injectResumeH struct{ x *exu }

func (h injectResumeH) OnEvent(arg sim.EventArg) {
	t := arg.Ptr.(*thr)
	pkt := t.pendingPkt
	t.pendingPkt = nil
	h.x.p.Inject(pkt)
	h.x.execResume(t)
}

// resumeH resumes the coroutine with its staged payload (local loads).
type resumeH struct{ x *exu }

func (h resumeH) OnEvent(arg sim.EventArg) { h.x.execResume(arg.Ptr.(*thr)) }

// startH begins a freshly invoked thread after frame setup.
type startH struct{ x *exu }

func (h startH) OnEvent(arg sim.EventArg) {
	t := arg.Ptr.(*thr)
	h.x.m.trace(TraceStart, t)
	h.x.execResume(t)
}

// runH continues a suspended thread after the register restore.
type runH struct{ x *exu }

func (h runH) OnEvent(arg sim.EventArg) {
	t := arg.Ptr.(*thr)
	h.x.m.trace(TraceRun, t)
	h.x.execResume(t)
}

// dispatchH pops the next queue packet.
type dispatchH struct{ x *exu }

func (h dispatchH) OnEvent(sim.EventArg) { h.x.dispatch() }

// pushDispatchH requeues an explicitly yielded thread, then dispatches.
type pushDispatchH struct{ x *exu }

func (h pushDispatchH) OnEvent(arg sim.EventArg) {
	h.x.p.PushLocal(thread.Low, arg.Ptr.(*packet.Packet))
	h.x.dispatch()
}

// injectSaveDispatchH sends a read request, charges the register save,
// and dispatches the next thread (the split-phase suspension).
type injectSaveDispatchH struct{ x *exu }

func (h injectSaveDispatchH) OnEvent(arg sim.EventArg) {
	x := h.x
	x.p.Inject(arg.Ptr.(*packet.Packet))
	x.st.Times.Switch += x.m.Cfg.SaveCycles
	x.obs.Cycle(int64(x.eng.Now()), int32(x.pe), obs.PhaseSwitch, int64(x.m.Cfg.SaveCycles))
	x.eng.AfterHandler(x.m.Cfg.SaveCycles, x.hDispatch, sim.EventArg{})
}

// handleH interprets a dequeued packet after the Matching Unit delay.
type handleH struct{ x *exu }

func (h handleH) OnEvent(arg sim.EventArg) { h.x.handle(arg.Ptr.(*packet.Packet)) }

// serviceH services a remote-memory request on the EXU (EM-4 mode).
type serviceH struct{ x *exu }

func (h serviceH) OnEvent(arg sim.EventArg) {
	h.x.p.ServiceOnEXU(arg.Ptr.(*packet.Packet))
	h.x.dispatch()
}

// wake is called whenever a packet is pushed to this PE's queue.
func (x *exu) wake() {
	if !x.busy {
		x.dispatch()
	}
}

// dispatch pops the next packet, charges Matching Unit time, and handles
// it. When the queue is empty the EXU goes idle; idle time is attributed
// to communication (exposed latency) when it ends.
//
//emx:hotpath
func (x *exu) dispatch() {
	pkt, _, _, ok := x.p.Queue.Pop()
	if !ok {
		x.busy = false
		x.idleSince = x.eng.Now()
		return
	}
	now := x.eng.Now()
	if !x.busy {
		x.st.Times.Comm += now - x.idleSince
		x.obs.Cycle(int64(now), int32(x.pe), obs.PhaseIdle, int64(now-x.idleSince))
		x.busy = true
	}
	x.st.Dispatches++
	x.obs.MUDispatch(int64(now), int32(x.pe))
	cost := x.m.Cfg.DispatchCycles
	// Spilled packets are restored from the on-memory buffer by extra MCU
	// traffic; charge it to the dispatch that consumed the restore.
	var spill sim.Time
	if restored := x.p.Queue.Restored; restored > x.restoredSeen {
		spill = sim.Time(restored-x.restoredSeen) * x.p.Config().SpillCycles
		x.restoredSeen = restored
	}
	x.st.Times.Switch += cost + spill
	x.obs.Cycle(int64(now), int32(x.pe), obs.PhaseSwitch, int64(cost))
	x.obs.Cycle(int64(now), int32(x.pe), obs.PhaseSpill, int64(spill))
	x.eng.AfterHandler(cost+spill, x.hHandle, sim.EventArg{Ptr: pkt})
}

// handle interprets one dequeued packet.
func (x *exu) handle(pkt *packet.Packet) {
	switch pkt.Kind {
	case packet.KindInvoke:
		info := x.m.takeSpawn(pkt.Seq)
		f := x.p.Frames.Alloc(thread.NoFrame, info.name)
		t := &thr{
			m:      x.m,
			sh:     x.sh,
			eng:    x.eng,
			pe:     x.pe,
			frame:  f.ID,
			name:   info.name,
			fn:     info.fn,
			resume: make(chan resumeMsg),
		}
		f.State = t
		x.sh.threads = append(x.sh.threads, t)
		x.sh.live++
		x.m.wg.Add(1)
		go t.main()
		// Frame allocation and argument deposit.
		x.st.Times.Switch += x.m.Cfg.SpawnCycles
		x.obs.Cycle(int64(x.eng.Now()), int32(x.pe), obs.PhaseSwitch, int64(x.m.Cfg.SpawnCycles))
		x.obs.ThreadName(int32(x.pe), f.ID, info.name)
		t.resumeVal = pkt.Data
		x.eng.AfterHandler(x.m.Cfg.SpawnCycles, x.hStart, sim.EventArg{Ptr: t})

	case packet.KindReadReply:
		t := x.threadOf(pkt.Cont.Frame)
		rw := t.rw
		if rw == nil || t.state != stSuspendedRead {
			x.m.fail(fmt.Errorf("core: PE%d reply for %v, but thread %v is not reading", x.pe, pkt.Cont, t))
			return
		}
		idx := pkt.Addr.Off - rw.base
		if int(idx) >= len(rw.buf) {
			x.m.fail(fmt.Errorf("core: PE%d reply offset %d outside read window of %v", x.pe, idx, t))
			return
		}
		rw.buf[idx] = pkt.Data
		rw.remaining--
		if rw.remaining > 0 {
			// More block words in flight: keep the thread suspended and
			// service the next packet.
			x.dispatch()
			return
		}
		t.rw = nil
		t.resumeVal = rw.buf[0]
		t.resumeVals = rw.buf
		x.resumeThread(t)

	case packet.KindResume:
		t := x.threadOf(pkt.Cont.Frame)
		x.resumeThread(t)

	case packet.KindSync:
		x.m.barrierToken(x.pe, pkt)
		x.dispatch()

	case packet.KindReadReq, packet.KindBlockReadReq, packet.KindWrite:
		// ServiceEXU mode (EM-4): the request steals EXU cycles.
		x.st.Times.Overhead += x.m.Cfg.EXUServiceCycles
		x.obs.Cycle(int64(x.eng.Now()), int32(x.pe), obs.PhaseService, int64(x.m.Cfg.EXUServiceCycles))
		x.eng.AfterHandler(x.m.Cfg.EXUServiceCycles, x.hService, sim.EventArg{Ptr: pkt})

	default:
		x.m.fail(fmt.Errorf("core: PE%d cannot handle %v", x.pe, pkt))
	}
}

func (x *exu) threadOf(frame uint32) *thr {
	f := x.p.Frames.Get(frame)
	if f == nil {
		panic(fmt.Sprintf("core: PE%d packet for dead frame %d", x.pe, frame))
	}
	return f.State.(*thr)
}

// resumeThread charges register restore and continues the coroutine with
// the payload staged on t.
func (x *exu) resumeThread(t *thr) {
	x.st.Times.Switch += x.m.Cfg.RestoreCycles
	x.obs.Cycle(int64(x.eng.Now()), int32(x.pe), obs.PhaseSwitch, int64(x.m.Cfg.RestoreCycles))
	x.eng.AfterHandler(x.m.Cfg.RestoreCycles, x.hRun, sim.EventArg{Ptr: t})
}

// execResume builds the resume message from the payload staged on t and
// steps the coroutine.
//
//emx:hotpath
func (x *exu) execResume(t *thr) {
	msg := resumeMsg{val: t.resumeVal, vals: t.resumeVals}
	t.resumeVal = 0
	t.resumeVals = nil
	x.exec(t, msg)
}

// exec resumes the coroutine, collects the operations it buffered plus
// the op it yielded on, and starts the engine-side replay.
//
//emx:hotpath
func (x *exu) exec(t *thr, msg resumeMsg) {
	t.final = x.m.step(t, msg)
	if len(t.buf) > 0 {
		x.obs.Flush(int64(x.eng.Now()), int32(x.pe), int64(len(t.buf)))
	}
	t.bufIdx = 0
	x.apply(t)
}

// apply replays one buffered operation as one engine event — exactly the
// event the unbuffered path would have scheduled — and chains itself
// until the buffer drains, then performs the yielded op.
//
//emx:hotpath
func (x *exu) apply(t *thr) {
	cfg := &x.m.Cfg
	eng := x.eng
	if t.bufIdx < len(t.buf) {
		op := &t.buf[t.bufIdx]
		t.bufIdx++
		switch op.kind {
		case bufCompute:
			if op.cycles < 0 {
				x.m.fail(fmt.Errorf("core: %v computed negative cycles", t))
				return
			}
			x.st.Times.Compute += op.cycles
			x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseRun, int64(op.cycles))
			eng.AfterHandler(op.cycles, x.hApply, sim.EventArg{Ptr: t})

		case bufWrite:
			x.st.Times.Overhead += cfg.PacketGenCycles
			x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseService, int64(cfg.PacketGenCycles))
			x.st.RemoteWrites++
			t.pendingPkt = &packet.Packet{
				Kind: packet.KindWrite,
				Src:  x.pe,
				Addr: op.addr,
				Data: op.data,
			}
			eng.AfterHandler(cfg.PacketGenCycles, x.hInjectApply, sim.EventArg{Ptr: t})

		case bufLocalStore:
			done := x.p.Mem.Write(eng.Now(), memory.PortEXU, op.off, op.data)
			x.st.Times.Compute += done - eng.Now()
			x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseRun, int64(done-eng.Now()))
			eng.AtHandler(done, x.hApply, sim.EventArg{Ptr: t})
		}
		return
	}

	op := t.final
	t.final = nil
	t.buf = t.buf[:0]
	t.bufIdx = 0
	x.finish(t, op)
}

// finish performs the operation the coroutine suspended on.
//
//emx:hotpath
func (x *exu) finish(t *thr, op any) {
	cfg := &x.m.Cfg
	eng := x.eng
	switch op := op.(type) {
	case opFlush:
		// Buffered ops are applied; resume the coroutine at this time.
		x.exec(t, resumeMsg{})

	case opRead:
		x.issueRead(t, op.addr, 1)

	case opReadBlock:
		if op.n <= 0 {
			x.m.fail(fmt.Errorf("core: %v block read of %d words", t, op.n)) //emx:coldpath aborts the run
			return
		}
		x.issueRead(t, op.addr, op.n)

	case opWriteSync:
		x.st.Times.Overhead += cfg.PacketGenCycles
		x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseService, int64(cfg.PacketGenCycles))
		t.pendingPkt = &packet.Packet{
			Kind: packet.KindSync,
			Src:  x.pe,
			Addr: op.addr,
			Data: op.data,
		}
		eng.AfterHandler(cfg.PacketGenCycles, x.hInjectResume, sim.EventArg{Ptr: t})

	case opSpawn:
		x.st.Times.Overhead += cfg.PacketGenCycles
		x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseService, int64(cfg.PacketGenCycles))
		x.st.Invokes++
		seq := x.m.registerSpawn(x.pe, op.name, op.fn)
		t.pendingPkt = &packet.Packet{
			Kind: packet.KindInvoke,
			Src:  x.pe,
			Addr: packet.GlobalAddr{PE: op.pe},
			Data: op.arg,
			Seq:  seq,
		}
		eng.AfterHandler(cfg.PacketGenCycles, x.hInjectResume, sim.EventArg{Ptr: t})

	case opWait:
		x.st.Switches[op.kind]++
		x.st.Times.Switch += cfg.SpinCheckCycles + cfg.SaveCycles
		// metrics.SwitchKind and obs.SwitchCause are numerically aligned.
		x.obs.Switch(int64(eng.Now()), int32(x.pe), obs.SwitchCause(op.kind), t.frame)
		x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseSwitch, int64(cfg.SpinCheckCycles+cfg.SaveCycles))
		t.state = stBlocked
		x.m.trace(TraceYield, t)
		op.ws.waiters = append(op.ws.waiters, waiter{t: t, cond: op.cond})
		eng.AfterHandler(cfg.SpinCheckCycles+cfg.SaveCycles, x.hDispatch, sim.EventArg{})

	case opYield:
		x.st.Switches[op.kind]++
		x.st.Times.Switch += cfg.SpinCheckCycles + cfg.SaveCycles
		x.obs.Switch(int64(eng.Now()), int32(x.pe), obs.SwitchCause(op.kind), t.frame)
		x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseSwitch, int64(cfg.SpinCheckCycles+cfg.SaveCycles))
		t.state = stQueued
		x.m.trace(TraceYield, t)
		eng.AfterHandler(cfg.SpinCheckCycles+cfg.SaveCycles, x.hPushDispatch, sim.EventArg{Ptr: &packet.Packet{
			Kind: packet.KindResume,
			Src:  x.pe,
			Cont: packet.Continuation{PE: x.pe, Frame: t.frame},
		}})

	case opLocalLoad:
		v, done := x.p.Mem.Read(eng.Now(), memory.PortEXU, op.off)
		x.st.Times.Compute += done - eng.Now()
		x.obs.Cycle(int64(eng.Now()), int32(x.pe), obs.PhaseRun, int64(done-eng.Now()))
		t.resumeVal = v
		eng.AtHandler(done, x.hResume, sim.EventArg{Ptr: t})

	case opDone:
		t.state = stDone
		x.m.trace(TraceEnd, t)
		x.sh.live--
		x.p.Frames.Free(t.frame)
		x.dispatch()

	case opPanic:
		t.state = stDone
		x.sh.live--
		x.m.fail(fmt.Errorf("core: thread %v panicked: %v", t, op.reason))

	default:
		x.m.fail(fmt.Errorf("core: %v yielded unknown op %T", t, op))
	}
}

// issueRead sends a (block) read request and suspends the thread: packet
// generation is overhead, the register save is switch time, and the
// suspension is counted as a remote-read switch (Figure 9's dominant
// category — exactly one per remote read).
//
//emx:hotpath
func (x *exu) issueRead(t *thr, addr packet.GlobalAddr, n int) {
	cfg := &x.m.Cfg
	x.st.Times.Overhead += cfg.PacketGenCycles
	x.st.RemoteReads += uint64(n)
	x.st.Switches[metrics.SwitchRemoteRead]++
	x.obs.Cycle(int64(x.eng.Now()), int32(x.pe), obs.PhaseService, int64(cfg.PacketGenCycles))
	x.obs.Switch(int64(x.eng.Now()), int32(x.pe), obs.CauseRemoteRead, t.frame)
	t.rw = &readWait{base: addr.Off, buf: make([]packet.Word, n), remaining: n}
	t.state = stSuspendedRead
	x.m.trace(TraceReadIssue, t)
	kind := packet.KindReadReq
	var block uint32
	if n > 1 {
		kind = packet.KindBlockReadReq
		block = uint32(n)
	}
	pkt := &packet.Packet{
		Kind:  kind,
		Src:   x.pe,
		Addr:  addr,
		Block: block,
		Cont:  packet.Continuation{PE: x.pe, Frame: t.frame},
	}
	x.eng.AfterHandler(cfg.PacketGenCycles, x.hInjectSaveDsp, sim.EventArg{Ptr: pkt})
}

// closeAccounting attributes trailing idle time (after the PE's last
// activity) to communication, so per-PE components sum to the makespan.
func (x *exu) closeAccounting(end sim.Time) {
	if !x.busy && x.idleSince <= end {
		x.st.Times.Comm += end - x.idleSince
		x.obs.Cycle(int64(x.idleSince), int32(x.pe), obs.PhaseIdle, int64(end-x.idleSince))
		x.idleSince = end
	}
}
