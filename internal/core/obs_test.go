package core

import (
	"testing"

	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/sim"
)

// spawnObsWorkload seeds a mixed workload exercising every charge site:
// remote reads, remote writes, barriers, explicit yields, local memory,
// and child spawns.
func spawnObsWorkload(m *Machine) {
	p := m.Cfg.P
	b := m.NewBarrier("iter", 2)
	for pe := packet.PE(0); pe < packet.PE(p); pe++ {
		pe := pe
		for th := 0; th < 2; th++ {
			th := th
			m.SpawnAt(pe, "w", packet.Word(th), func(tc *TC) {
				mate := (pe + packet.PE(p/2)) % packet.PE(p)
				for it := 0; it < 3; it++ {
					tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(th*8 + it)})
					tc.Compute(sim.Time(15 + it))
					tc.Write(packet.GlobalAddr{PE: mate, Off: uint32(100 + it)}, 1)
					tc.LocalStore(uint32(th*4+it), packet.Word(it))
					tc.Yield(metrics.SwitchExplicit)
					tc.Barrier(b)
				}
				if th == 0 && it0(pe) {
					tc.Spawn(mate, "child", 9, func(tc2 *TC) { tc2.Compute(30) })
				}
			})
		}
	}
}

func it0(pe packet.PE) bool { return pe == 0 }

// TestObservedRunMatchesMetrics pins the profile model to the existing
// metrics: the obs phase decomposition must tie out exactly against the
// Figure 8/9 accounting the simulator already produces.
func TestObservedRunMatchesMetrics(t *testing.T) {
	m := newTestMachine(t, 8)
	tr := obs.New(obs.Options{P: 8})
	m.SetObs(tr)
	spawnObsWorkload(m)
	r := mustRun(t, m)
	p := tr.Profile()

	if p.Makespan != int64(r.Makespan) {
		t.Fatalf("profile makespan = %d, metrics %d", p.Makespan, r.Makespan)
	}
	if p.Dispatched != r.SimEvents {
		t.Fatalf("profile engine events = %d, metrics %d", p.Dispatched, r.SimEvents)
	}
	for pe := range r.PEs {
		st, pp := &r.PEs[pe], &p.PEs[pe]
		if got, want := pp.Phases[obs.PhaseRun], int64(st.Times.Compute); got != want {
			t.Errorf("PE%d run = %d, metrics compute %d", pe, got, want)
		}
		if got, want := pp.Phases[obs.PhaseSwitch]+pp.Phases[obs.PhaseSpill], int64(st.Times.Switch); got != want {
			t.Errorf("PE%d switch+spill = %d, metrics switch %d", pe, got, want)
		}
		if got, want := pp.Phases[obs.PhaseService], int64(st.Times.Overhead); got != want {
			t.Errorf("PE%d service = %d, metrics overhead %d", pe, got, want)
		}
		if got, want := pp.Phases[obs.PhaseIdle], int64(st.Times.Comm); got != want {
			t.Errorf("PE%d idle = %d, metrics comm %d", pe, got, want)
		}
		if pp.Total() != int64(r.Makespan) {
			t.Errorf("PE%d phases sum to %d, makespan %d", pe, pp.Total(), r.Makespan)
		}
		for k := range st.Switches {
			if got, want := pp.Switches[k], st.Switches[k]; got != want {
				t.Errorf("PE%d switches[%s] = %d, metrics %d",
					pe, obs.SwitchCause(k), got, want)
			}
		}
		if pp.Dispatches != st.Dispatches {
			t.Errorf("PE%d dispatches = %d, metrics %d", pe, pp.Dispatches, st.Dispatches)
		}
		if pp.ServicedDMA != st.ServicedDMA || pp.ServicedEXU != st.ServicedEXU {
			t.Errorf("PE%d serviced = %d/%d, metrics %d/%d",
				pe, pp.ServicedDMA, pp.ServicedEXU, st.ServicedDMA, st.ServicedEXU)
		}
		if pp.Spills != st.Spills {
			t.Errorf("PE%d spills = %d, metrics %d", pe, pp.Spills, st.Spills)
		}
	}
}

// TestObservationDoesNotPerturbTiming: attaching a tracer must not move
// a single simulated cycle — observation only.
func TestObservationDoesNotPerturbTiming(t *testing.T) {
	run := func(observe bool) *metrics.Run {
		m := newTestMachine(t, 8)
		if observe {
			m.SetObs(obs.New(obs.Options{P: 8, SliceCycles: 64}))
		}
		spawnObsWorkload(m)
		return mustRun(t, m)
	}
	plain, observed := run(false), run(true)
	if plain.Makespan != observed.Makespan || plain.SimEvents != observed.SimEvents {
		t.Fatalf("observation changed the run: %d/%d events vs %d/%d",
			plain.Makespan, plain.SimEvents, observed.Makespan, observed.SimEvents)
	}
	for pe := range plain.PEs {
		if plain.PEs[pe].Times != observed.PEs[pe].Times {
			t.Fatalf("PE%d accounting differs under observation", pe)
		}
	}
}

func TestObservedProfileDeterministic(t *testing.T) {
	run := func() []byte {
		m := newTestMachine(t, 8)
		tr := obs.New(obs.Options{P: 8, SliceCycles: 128})
		m.SetObs(tr)
		spawnObsWorkload(m)
		mustRun(t, m)
		var buf mutableBuf
		if err := tr.Profile().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("observed profile not byte-identical across identical runs")
	}
}

type mutableBuf struct{ b []byte }

func (m *mutableBuf) Write(p []byte) (int, error) {
	m.b = append(m.b, p...)
	return len(p), nil
}

func TestSetObsValidation(t *testing.T) {
	m := newTestMachine(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mis-sized tracer accepted")
		}
	}()
	m.SetObs(obs.New(obs.Options{P: 2}))
}

func TestThreadNamesRecorded(t *testing.T) {
	m := newTestMachine(t, 2)
	tr := obs.New(obs.Options{P: 2})
	m.SetObs(tr)
	m.SpawnAt(1, "alpha", 0, func(tc *TC) { tc.Compute(5) })
	mustRun(t, m)
	names := tr.Names()
	if len(names) != 1 || names[0].Name != "alpha" || names[0].PE != 1 {
		t.Fatalf("names = %+v", names)
	}
}
