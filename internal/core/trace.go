package core

import (
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/sim"
)

// TraceKind labels a thread lifecycle event.
type TraceKind uint8

const (
	// TraceStart: a thread was invoked and began executing.
	TraceStart TraceKind = iota
	// TraceRun: a suspended/queued thread resumed on the EXU.
	TraceRun
	// TraceReadIssue: the thread issued a split-phase read and suspended.
	TraceReadIssue
	// TraceYield: the thread switched out voluntarily (spin/sync).
	TraceYield
	// TraceEnd: the thread completed.
	TraceEnd
)

func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TraceRun:
		return "run"
	case TraceReadIssue:
		return "read"
	case TraceYield:
		return "yield"
	case TraceEnd:
		return "end"
	}
	return "?"
}

// TraceEvent is one thread lifecycle transition, as the hardware's
// instrumentation would report it.
type TraceEvent struct {
	At     sim.Time
	PE     packet.PE
	Thread string
	Frame  uint32
	Kind   TraceKind
}

// SetTracer installs a callback receiving every thread lifecycle event.
// Must be called before Run. A nil tracer (the default) costs nothing.
// Unsupported on a sharded machine: the callback would receive events
// from multiple shard goroutines concurrently and in a host-dependent
// order — run trace captures with Shards <= 1.
func (m *Machine) SetTracer(fn func(TraceEvent)) {
	if fn != nil && m.grp != nil {
		panic("core: SetTracer is not supported on a sharded machine (set Config.Shards <= 1 for trace capture)")
	}
	m.tracer = fn
}

func (m *Machine) trace(k TraceKind, t *thr) {
	// TraceKind and obs.ThreadKind are numerically aligned by definition.
	t.sh.obs.Thread(int64(t.eng.Now()), int32(t.pe), obs.ThreadKind(k), t.frame)
	if m.tracer == nil {
		return
	}
	m.tracer(TraceEvent{
		At:     t.eng.Now(),
		PE:     t.pe,
		Thread: t.name,
		Frame:  t.frame,
		Kind:   k,
	})
}
