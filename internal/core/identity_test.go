package core

import (
	"strings"
	"testing"
)

func baseIdentity() RunIdentity {
	return RunIdentity{
		Workload: "bitonic", P: 16, H: 4, SimN: 256, PaperN: 512 << 10,
		Scale: 512, Seed: 1, Service: "bypass", Sched: "fifo",
		Config: DefaultConfig(16).Fingerprint(),
	}
}

func TestIdentityHashDeterministic(t *testing.T) {
	a, b := baseIdentity(), baseIdentity()
	if a.Hash() != b.Hash() {
		t.Fatalf("identical identities hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

func TestIdentityHashSensitivity(t *testing.T) {
	base := baseIdentity()
	mutations := map[string]func(*RunIdentity){
		"workload": func(id *RunIdentity) { id.Workload = "fft" },
		"p":        func(id *RunIdentity) { id.P = 64 },
		"h":        func(id *RunIdentity) { id.H = 8 },
		"simn":     func(id *RunIdentity) { id.SimN = 512 },
		"papern":   func(id *RunIdentity) { id.PaperN = 1 << 20 },
		"scale":    func(id *RunIdentity) { id.Scale = 256 },
		"seed":     func(id *RunIdentity) { id.Seed = 2 },
		"service":  func(id *RunIdentity) { id.Service = "EM-4 EXU" },
		"sched":    func(id *RunIdentity) { id.Sched = "resume-first" },
		"block":    func(id *RunIdentity) { id.BlockRead = true },
		"verify":   func(id *RunIdentity) { id.Verify = true },
		"config":   func(id *RunIdentity) { id.Config = "deadbeef" },
	}
	seen := map[string]string{base.Hash(): "base"}
	for name, mutate := range mutations {
		id := baseIdentity()
		mutate(&id)
		h := id.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestIdentityCanonicalVersioned(t *testing.T) {
	c := baseIdentity().Canonical()
	if !strings.HasPrefix(c, "emx-run/v1\n") {
		t.Fatalf("canonical encoding not versioned:\n%s", c)
	}
	for _, field := range []string{"workload=bitonic", "p=16", "seed=1", "config="} {
		if !strings.Contains(c, field) {
			t.Errorf("canonical encoding missing %q", field)
		}
	}
}

func TestConfigFingerprintTracksCalibration(t *testing.T) {
	a := DefaultConfig(16)
	b := DefaultConfig(16)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal configs fingerprint differently")
	}
	b.SaveCycles++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("recalibrated config keeps the old fingerprint")
	}
}
