package core

import (
	"fmt"
	"sync"

	"emx/internal/memory"
	"emx/internal/metrics"
	"emx/internal/network"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/proc"
	"emx/internal/sim"
	"emx/internal/thread"
)

// Machine is a simulated EM-X: P EMC-Y processors on a circular Omega
// network, plus the multithreading runtime. Build one with NewMachine,
// seed initial threads with SpawnAt, then call Run.
//
// With Config.Shards > 1 the PEs are partitioned into contiguous blocks,
// each advanced by its own member engine of a sim.Group: every PE's
// processor, EXU, memory, frames, and queue — and every switch node of
// the network — is owned by exactly one shard, and cross-shard packets
// travel through the group's deterministic exchange. Results are
// byte-identical to the single-engine run for every shard count.
//
// A Machine is single-use: after Run returns it holds the final state for
// inspection but cannot be run again.
type Machine struct {
	Eng   *sim.Engine // member engine 0 (the machine clock)
	Cfg   Config
	Net   *network.Network // nil when P == 1
	Procs []*proc.Proc

	engines []*sim.Engine // one per shard; len 1 unsharded
	grp     *sim.Group    // nil when the machine runs on a single engine
	peShard []int         // owning shard of each PE
	shards  []*shardState // per-shard runtime state

	exus  []*exu
	stats []metrics.PE
	wg    sync.WaitGroup

	// Spawn tokens are per-PE counters tagged with the issuing PE, so
	// concurrent shards never contend for an ordered counter and the
	// token values are identical for every shard count. The registry map
	// itself is shared (a token registers on the parent's shard and is
	// taken on the child's), hence the mutex.
	spawnMu  sync.Mutex
	spawnCtr []uint64
	spawns   map[uint64]spawnInfo

	barriers []*Barrier
	tracer   func(TraceEvent)
	obs      *obs.Tracer   // parent tracer (the one handed to SetObs)
	obsSh    []*obs.Tracer // per-shard tracers; obsSh[0] == obs unsharded
	failMu   sync.Mutex
	failure  error
	ran      bool

	hDeliverLocal sim.Handler
}

// shardState is the runtime state one shard's worker goroutine mutates:
// its coroutine handoff channel, the thread currently executing workload
// code, and the shard's thread registry and live count.
type shardState struct {
	eng     *sim.Engine
	obs     *obs.Tracer
	yieldCh chan yieldMsg
	live    int // threads created and not yet finished on this shard
	threads []*thr

	// cur is the coroutine currently executing workload code on this
	// shard (non-nil only while the shard's engine is blocked in step).
	cur *thr
}

type spawnInfo struct {
	name string
	fn   ThreadFn
}

// NewMachine builds a machine from the configuration.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := cfg.Shards
	if s < 1 {
		s = 1
	}
	m := &Machine{
		Cfg:      cfg,
		peShard:  make([]int, cfg.P),
		spawnCtr: make([]uint64, cfg.P),
		spawns:   make(map[uint64]spawnInfo),
	}
	if s > 1 {
		m.grp = sim.NewGroup(s)
		m.engines = make([]*sim.Engine, s)
		for i := range m.engines {
			m.engines[i] = m.grp.Engine(i)
		}
	} else {
		m.engines = []*sim.Engine{sim.NewEngine()}
	}
	m.Eng = m.engines[0]
	m.obsSh = make([]*obs.Tracer, s)
	m.shards = make([]*shardState, s)
	for i := range m.shards {
		m.shards[i] = &shardState{eng: m.engines[i], yieldCh: make(chan yieldMsg)}
	}
	for pe := range m.peShard {
		m.peShard[pe] = pe * s / cfg.P
	}
	m.hDeliverLocal = deliverLocalH{m}
	if cfg.P > 1 {
		net, err := network.NewSharded(m.engines, cfg.P)
		if err != nil {
			return nil, err
		}
		m.Net = net
	}
	m.stats = make([]metrics.PE, cfg.P)
	m.Procs = make([]*proc.Proc, cfg.P)
	m.exus = make([]*exu, cfg.P)
	for pe := 0; pe < cfg.P; pe++ {
		pe := packet.PE(pe)
		send := func(pkt *packet.Packet) { m.route(pkt) }
		m.Procs[pe] = proc.New(m.engines[m.peShard[pe]], pe, cfg.MemWords, cfg.Proc, &m.stats[pe], send)
		m.exus[pe] = newEXU(m, pe)
		m.Procs[pe].SetWake(m.exus[pe].wake)
		if m.Net != nil {
			m.Net.SetDeliver(pe, m.Procs[pe].Deliver)
		}
	}
	return m, nil
}

// Shards returns the number of engine shards the machine runs on (1 when
// unsharded).
func (m *Machine) Shards() int { return len(m.engines) }

// SetObs installs the cycle-accounting tracer across every component of
// the machine: engine dispatch, EXU charge sites, packet units, and the
// network. Must be called before Run. The tracer observes only — it
// never charges cycles — so an observed run is cycle-identical to an
// unobserved one. A nil tracer (the default) disables observation.
//
// On a sharded machine each shard records into its own child tracer
// (obs.Tracer is not safe for concurrent use); the children are folded
// back into t at collection, so Profile totals match the single-engine
// run exactly.
func (m *Machine) SetObs(t *obs.Tracer) {
	if m.ran {
		panic("core: SetObs after Run")
	}
	if t != nil && t.P() != m.Cfg.P {
		panic(fmt.Sprintf("core: tracer sized for P=%d on a P=%d machine", t.P(), m.Cfg.P))
	}
	m.obs = t
	if len(m.engines) == 1 {
		m.obsSh[0] = t
	} else {
		for i := range m.obsSh {
			m.obsSh[i] = t.Child()
		}
	}
	if m.Net != nil {
		m.Net.SetObsShards(m.obsSh)
	}
	for i, sh := range m.shards {
		sh.obs = m.obsSh[i]
		m.engines[i].SetObs(m.obsSh[i])
	}
	for pe, p := range m.Procs {
		p.SetObs(m.obsSh[m.peShard[pe]])
		m.exus[pe].obs = m.obsSh[m.peShard[pe]]
	}
}

// deliverLocalH completes a 1-PE loopback send.
type deliverLocalH struct{ m *Machine }

func (h deliverLocalH) OnEvent(arg sim.EventArg) {
	pkt := arg.Ptr.(*packet.Packet)
	h.m.Procs[pkt.Dst()].Deliver(pkt)
}

// route injects a packet into the network (or loops back on a 1-PE
// machine, where the SU short-circuits everything).
func (m *Machine) route(pkt *packet.Packet) {
	if m.Net != nil {
		m.Net.Send(pkt)
		return
	}
	m.Eng.AfterHandler(network.HopCycles, m.hDeliverLocal, sim.EventArg{Ptr: pkt})
}

// Mem exposes a PE's local memory for workload setup and verification
// (zero simulated cost; in-simulation accesses go through TC).
func (m *Machine) Mem(pe packet.PE) *memory.Local { return m.Procs[pe].Mem }

// P returns the processor count.
func (m *Machine) P() int { return m.Cfg.P }

// SpawnAt seeds an initial thread on a PE before Run (program load).
func (m *Machine) SpawnAt(pe packet.PE, name string, arg packet.Word, fn ThreadFn) {
	if m.ran {
		panic("core: SpawnAt after Run")
	}
	seq := m.registerSpawn(pe, name, fn)
	m.Procs[pe].PushLocal(thread.Low, &packet.Packet{
		Kind: packet.KindInvoke,
		Src:  pe,
		Addr: packet.GlobalAddr{PE: pe},
		Data: arg,
		Seq:  seq,
	})
}

// registerSpawn allocates a spawn token on the issuing PE. The token is
// the PE tag plus that PE's private counter, so its value depends only
// on the PE's own spawn order — not on any global interleaving — and is
// identical for every shard count.
func (m *Machine) registerSpawn(pe packet.PE, name string, fn ThreadFn) uint64 {
	m.spawnMu.Lock()
	m.spawnCtr[pe]++
	seq := uint64(pe+1)<<40 | m.spawnCtr[pe]
	m.spawns[seq] = spawnInfo{name: name, fn: fn}
	m.spawnMu.Unlock()
	return seq
}

func (m *Machine) takeSpawn(seq uint64) spawnInfo {
	m.spawnMu.Lock()
	info, ok := m.spawns[seq]
	if ok {
		delete(m.spawns, seq)
	}
	m.spawnMu.Unlock()
	if !ok {
		panic(fmt.Sprintf("core: invoke packet with unknown spawn token %d", seq))
	}
	return info
}

// Run executes the simulation to completion and returns the measurements.
// It fails if any thread panicked or if the machine deadlocked (events
// drained while threads are still suspended).
func (m *Machine) Run() (*metrics.Run, error) {
	if m.ran {
		return nil, fmt.Errorf("core: machine already ran")
	}
	m.ran = true
	var end sim.Time
	if m.Cfg.MaxCycles > 0 {
		var more bool
		if m.grp != nil {
			more = m.grp.RunUntil(m.Cfg.MaxCycles)
		} else {
			more = m.Eng.RunUntil(m.Cfg.MaxCycles)
		}
		if more && m.failure == nil {
			m.failure = fmt.Errorf("core: simulation exceeded %d cycles (livelock or undersized budget)", m.Cfg.MaxCycles)
		}
		end = m.Eng.Now()
	} else {
		if m.grp != nil {
			end = m.grp.Run()
		} else {
			end = m.Eng.Run()
		}
	}
	m.teardown()
	if m.failure != nil {
		return nil, m.failure
	}
	if live := m.liveThreads(); live != 0 {
		return nil, fmt.Errorf("core: deadlock — %d thread(s) never finished: %v",
			live, m.stuckThreads())
	}
	return m.collect(end), nil
}

// liveThreads sums the shards' live counts (valid between runs).
func (m *Machine) liveThreads() int {
	n := 0
	for _, sh := range m.shards {
		n += sh.live
	}
	return n
}

func (m *Machine) stuckThreads() []string {
	var out []string
	for _, sh := range m.shards {
		for _, t := range sh.threads {
			if t.state != stDone {
				out = append(out, t.String())
			}
		}
	}
	if len(out) > 8 {
		out = append(out[:8], fmt.Sprintf("... and %d more", len(out)-8))
	}
	return out
}

// teardown kills any coroutines still blocked (after a failure or
// deadlock) so their goroutines exit.
func (m *Machine) teardown() {
	// Once the engines have drained (or stopped), every unfinished
	// coroutine is blocked receiving on its resume channel: yields are
	// consumed synchronously by step(), so none can be mid-yield here.
	// Sending the kill message unblocks each one; it panics with
	// killSentinel and exits without touching its shard's yieldCh.
	for _, sh := range m.shards {
		for _, t := range sh.threads {
			if t.state != stDone {
				t.resume <- resumeMsg{killed: true}
			}
		}
	}
	m.wg.Wait()
}

// collect assembles the metrics.Run from per-PE state.
func (m *Machine) collect(end sim.Time) *metrics.Run {
	r := &metrics.Run{
		P:        m.Cfg.P,
		Makespan: end,
		PEs:      make([]metrics.PE, m.Cfg.P),
	}
	for pe := range m.exus {
		m.exus[pe].closeAccounting(end)
		r.PEs[pe] = m.stats[pe]
	}
	if m.grp != nil {
		m.obs.Absorb(m.obsSh)
	}
	m.obs.Finish(int64(end))
	if m.Net != nil {
		st := m.Net.Total()
		r.PacketsSent = st.Sent
		r.PacketsHops = st.Hops
		r.NetQueueDelay = st.QueueDelay
	}
	for _, e := range m.engines {
		r.SimEvents += e.Events()
	}
	return r
}

// wakeBlocked requeues a thread whose wait condition was satisfied.
func (m *Machine) wakeBlocked(t *thr) {
	m.Procs[t.pe].PushLocal(thread.Low, &packet.Packet{
		Kind: packet.KindResume,
		Src:  t.pe,
		Cont: packet.Continuation{PE: t.pe, Frame: t.frame},
	})
}

// fail records the first failure and stops the engine (or the whole
// shard group, which halts at the next round boundary).
func (m *Machine) fail(err error) {
	m.failMu.Lock()
	if m.failure == nil {
		m.failure = err
	}
	m.failMu.Unlock()
	if m.grp != nil {
		m.grp.Stop()
		return
	}
	m.Eng.Stop()
}
