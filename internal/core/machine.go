package core

import (
	"fmt"
	"sync"

	"emx/internal/memory"
	"emx/internal/metrics"
	"emx/internal/network"
	"emx/internal/obs"
	"emx/internal/packet"
	"emx/internal/proc"
	"emx/internal/sim"
	"emx/internal/thread"
)

// Machine is a simulated EM-X: P EMC-Y processors on a circular Omega
// network, plus the multithreading runtime. Build one with NewMachine,
// seed initial threads with SpawnAt, then call Run.
//
// A Machine is single-use: after Run returns it holds the final state for
// inspection but cannot be run again.
type Machine struct {
	Eng   *sim.Engine
	Cfg   Config
	Net   *network.Network // nil when P == 1
	Procs []*proc.Proc

	exus    []*exu
	stats   []metrics.PE
	yieldCh chan yieldMsg
	wg      sync.WaitGroup

	spawnSeq   uint64
	spawns     map[uint64]spawnInfo
	barriers   []*Barrier
	tracer     func(TraceEvent)
	obs        *obs.Tracer
	live       int // threads created and not yet finished
	allThreads []*thr
	failure    error
	ran        bool

	// cur is the coroutine currently executing workload code (non-nil
	// only while the engine is blocked in step).
	cur *thr

	hDeliverLocal sim.Handler
}

type spawnInfo struct {
	name string
	fn   ThreadFn
}

// NewMachine builds a machine from the configuration.
func NewMachine(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		Eng:     sim.NewEngine(),
		Cfg:     cfg,
		yieldCh: make(chan yieldMsg),
		spawns:  make(map[uint64]spawnInfo),
	}
	m.hDeliverLocal = deliverLocalH{m}
	if cfg.P > 1 {
		net, err := network.New(m.Eng, cfg.P)
		if err != nil {
			return nil, err
		}
		m.Net = net
	}
	m.stats = make([]metrics.PE, cfg.P)
	m.Procs = make([]*proc.Proc, cfg.P)
	m.exus = make([]*exu, cfg.P)
	for pe := 0; pe < cfg.P; pe++ {
		pe := packet.PE(pe)
		send := func(pkt *packet.Packet) { m.route(pkt) }
		m.Procs[pe] = proc.New(m.Eng, pe, cfg.MemWords, cfg.Proc, &m.stats[pe], send)
		m.exus[pe] = newEXU(m, pe)
		m.Procs[pe].SetWake(m.exus[pe].wake)
		if m.Net != nil {
			m.Net.SetDeliver(pe, m.Procs[pe].Deliver)
		}
	}
	return m, nil
}

// SetObs installs the cycle-accounting tracer across every component of
// the machine: engine dispatch, EXU charge sites, packet units, and the
// network. Must be called before Run. The tracer observes only — it
// never charges cycles — so an observed run is cycle-identical to an
// unobserved one. A nil tracer (the default) disables observation.
func (m *Machine) SetObs(t *obs.Tracer) {
	if m.ran {
		panic("core: SetObs after Run")
	}
	if t != nil && t.P() != m.Cfg.P {
		panic(fmt.Sprintf("core: tracer sized for P=%d on a P=%d machine", t.P(), m.Cfg.P))
	}
	m.obs = t
	m.Eng.SetObs(t)
	for _, p := range m.Procs {
		p.SetObs(t)
	}
	if m.Net != nil {
		m.Net.SetObs(t)
	}
}

// deliverLocalH completes a 1-PE loopback send.
type deliverLocalH struct{ m *Machine }

func (h deliverLocalH) OnEvent(arg sim.EventArg) {
	pkt := arg.Ptr.(*packet.Packet)
	h.m.Procs[pkt.Dst()].Deliver(pkt)
}

// route injects a packet into the network (or loops back on a 1-PE
// machine, where the SU short-circuits everything).
func (m *Machine) route(pkt *packet.Packet) {
	if m.Net != nil {
		m.Net.Send(pkt)
		return
	}
	m.Eng.AfterHandler(network.HopCycles, m.hDeliverLocal, sim.EventArg{Ptr: pkt})
}

// Mem exposes a PE's local memory for workload setup and verification
// (zero simulated cost; in-simulation accesses go through TC).
func (m *Machine) Mem(pe packet.PE) *memory.Local { return m.Procs[pe].Mem }

// P returns the processor count.
func (m *Machine) P() int { return m.Cfg.P }

// SpawnAt seeds an initial thread on a PE before Run (program load).
func (m *Machine) SpawnAt(pe packet.PE, name string, arg packet.Word, fn ThreadFn) {
	if m.ran {
		panic("core: SpawnAt after Run")
	}
	seq := m.registerSpawn(name, fn)
	m.Procs[pe].PushLocal(thread.Low, &packet.Packet{
		Kind: packet.KindInvoke,
		Src:  pe,
		Addr: packet.GlobalAddr{PE: pe},
		Data: arg,
		Seq:  seq,
	})
}

func (m *Machine) registerSpawn(name string, fn ThreadFn) uint64 {
	m.spawnSeq++
	m.spawns[m.spawnSeq] = spawnInfo{name: name, fn: fn}
	return m.spawnSeq
}

func (m *Machine) takeSpawn(seq uint64) spawnInfo {
	info, ok := m.spawns[seq]
	if !ok {
		panic(fmt.Sprintf("core: invoke packet with unknown spawn token %d", seq))
	}
	delete(m.spawns, seq)
	return info
}

// Run executes the simulation to completion and returns the measurements.
// It fails if any thread panicked or if the machine deadlocked (events
// drained while threads are still suspended).
func (m *Machine) Run() (*metrics.Run, error) {
	if m.ran {
		return nil, fmt.Errorf("core: machine already ran")
	}
	m.ran = true
	var end sim.Time
	if m.Cfg.MaxCycles > 0 {
		if more := m.Eng.RunUntil(m.Cfg.MaxCycles); more && m.failure == nil {
			m.failure = fmt.Errorf("core: simulation exceeded %d cycles (livelock or undersized budget)", m.Cfg.MaxCycles)
		}
		end = m.Eng.Now()
	} else {
		end = m.Eng.Run()
	}
	m.teardown()
	if m.failure != nil {
		return nil, m.failure
	}
	if m.live != 0 {
		return nil, fmt.Errorf("core: deadlock — %d thread(s) never finished: %v",
			m.live, m.stuckThreads())
	}
	return m.collect(end), nil
}

func (m *Machine) stuckThreads() []string {
	var out []string
	for _, t := range m.allThreads {
		if t.state != stDone {
			out = append(out, t.String())
		}
	}
	if len(out) > 8 {
		out = append(out[:8], fmt.Sprintf("... and %d more", len(out)-8))
	}
	return out
}

// teardown kills any coroutines still blocked (after a failure or
// deadlock) so their goroutines exit.
func (m *Machine) teardown() {
	// Once the engine has drained (or stopped), every unfinished coroutine
	// is blocked receiving on its resume channel: yields are consumed
	// synchronously by step(), so none can be mid-yield here. Sending the
	// kill message unblocks each one; it panics with killSentinel and
	// exits without touching yieldCh.
	for _, t := range m.allThreads {
		if t.state != stDone {
			t.resume <- resumeMsg{killed: true}
		}
	}
	m.wg.Wait()
}

// collect assembles the metrics.Run from per-PE state.
func (m *Machine) collect(end sim.Time) *metrics.Run {
	r := &metrics.Run{
		P:        m.Cfg.P,
		Makespan: end,
		PEs:      make([]metrics.PE, m.Cfg.P),
	}
	for pe := range m.exus {
		m.exus[pe].closeAccounting(end)
		r.PEs[pe] = m.stats[pe]
	}
	m.obs.Finish(int64(end))
	if m.Net != nil {
		r.PacketsSent = m.Net.Stats.Sent
		r.PacketsHops = m.Net.Stats.Hops
		r.NetQueueDelay = m.Net.Stats.QueueDelay
	}
	r.SimEvents = m.Eng.Events()
	return r
}

// wakeBlocked requeues a thread whose wait condition was satisfied.
func (m *Machine) wakeBlocked(t *thr) {
	m.Procs[t.pe].PushLocal(thread.Low, &packet.Packet{
		Kind: packet.KindResume,
		Src:  t.pe,
		Cont: packet.Continuation{PE: t.pe, Frame: t.frame},
	})
}

// fail records the first failure and stops the engine.
func (m *Machine) fail(err error) {
	if m.failure == nil {
		m.failure = err
	}
	m.Eng.Stop()
}
