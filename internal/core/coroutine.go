package core

import (
	"fmt"

	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/sim"
)

// ThreadFn is the body of a simulated thread. It runs as a coroutine: the
// simulation engine resumes it, it performs machine operations through tc
// (each charging simulated cycles and possibly suspending the thread), and
// it owns the EXU exclusively between two such operations.
type ThreadFn func(tc *TC)

// errKilled is panicked inside coroutines that are torn down after a run
// aborts; it must never escape Machine.
type killSentinel struct{}

// resumeMsg is what the engine hands a coroutine when scheduling it.
type resumeMsg struct {
	val    packet.Word   // single-read result or spawn argument
	vals   []packet.Word // block-read result
	killed bool
}

// yieldMsg is what a coroutine hands back: the operation it wants the
// machine to perform.
type yieldMsg struct {
	t  *thr
	op any
}

// Operations a thread can yield — the true suspension points. Each
// corresponds to one or more EMC-Y instructions; the exu translates
// them into cycle charges and packets. Non-suspending operations
// (compute, remote write, local store) travel in the thread's
// operation buffer instead (see bufOp).
type (
	// opRead issues a split-phase remote read and suspends.
	opRead struct{ addr packet.GlobalAddr }
	// opReadBlock issues a block read request and suspends until all
	// words arrive.
	opReadBlock struct {
		addr packet.GlobalAddr
		n    int
	}
	// opSpawn sends an invoke packet enabling fn on a (possibly remote) PE.
	opSpawn struct {
		pe   packet.PE
		name string
		arg  packet.Word
		fn   ThreadFn
	}
	// opYield re-queues the thread at the tail of the FIFO (explicit
	// context switch); kind classifies why, for Figure 9.
	opYield struct{ kind metrics.SwitchKind }
	// opLocalLoad reads the PE's own memory through the EXU/MCU port.
	opLocalLoad struct{ off uint32 }
	// opDone signals normal completion of the thread body.
	opDone struct{}
	// opPanic forwards a workload panic to the machine.
	opPanic struct{ reason any }
	// opFlush carries no operation of its own: it hands control to the
	// engine so the thread's buffered non-suspending operations are
	// applied, then resumes the coroutine at the resulting time. TC
	// yields it before anything that must observe up-to-date state
	// (Now, PeekLocal, PokeLocal) while the buffer is non-empty.
	opFlush struct{}
)

// Buffered non-suspending operations. TC appends these to the thread's
// operation buffer instead of yielding, so the two goroutine handoffs
// per operation happen only at true suspension points. The engine
// replays the buffer one event per op at the next yield, reproducing
// the exact event sequence the unbuffered path would have produced —
// that replay is what keeps results bit-identical.
const (
	bufCompute uint8 = iota
	bufWrite
	bufLocalStore
)

type bufOp struct {
	kind   uint8
	off    uint32            // bufLocalStore
	addr   packet.GlobalAddr // bufWrite
	data   packet.Word       // bufWrite, bufLocalStore
	cycles sim.Time          // bufCompute
}

// thrState tracks where a thread is in its lifecycle, for diagnostics.
type thrState uint8

const (
	stReady thrState = iota
	stRunning
	stSuspendedRead
	stBlocked // waiting on a WaitSet condition
	stQueued
	stDone
)

func (s thrState) String() string {
	switch s {
	case stReady:
		return "ready"
	case stRunning:
		return "running"
	case stSuspendedRead:
		return "suspended-on-read"
	case stBlocked:
		return "blocked-on-condition"
	case stQueued:
		return "queued"
	case stDone:
		return "done"
	}
	return "?"
}

// readWait tracks an outstanding read (single or block) for a thread.
type readWait struct {
	base      uint32
	buf       []packet.Word
	remaining int
}

// thr is the engine-side handle of one simulated thread. sh and eng are
// the owning PE's shard and engine: every handoff and clock read goes
// through them, so a thread never touches another shard's state.
type thr struct {
	m      *Machine
	sh     *shardState
	eng    *sim.Engine
	pe     packet.PE
	frame  uint32
	name   string
	fn     ThreadFn
	resume chan resumeMsg
	state  thrState
	rw     *readWait

	// Operation buffer: non-suspending ops appended by TC between two
	// yields. bufIdx is the engine's replay position; final is the
	// yielded (suspending) op replayed after the buffer drains. The
	// backing array is reused across yields.
	buf    []bufOp
	bufIdx int
	final  any

	// Continuation context for the exu's allocation-free event
	// handlers: the resume payload and the packet to inject, staged
	// here instead of in per-event closures.
	resumeVal  packet.Word
	resumeVals []packet.Word
	pendingPkt *packet.Packet
}

func (t *thr) String() string {
	return fmt.Sprintf("PE%d:%s(frame %d, %s)", t.pe, t.name, t.frame, t.state)
}

// main is the coroutine body running on its own goroutine.
func (t *thr) main() {
	defer t.m.wg.Done()
	first := <-t.resume
	if first.killed {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				return
			}
			// Forward workload panics to the machine, which is blocked in
			// step() waiting for this thread's yield.
			t.sh.yieldCh <- yieldMsg{t: t, op: opPanic{reason: r}}
		}
	}()
	tc := &TC{t: t, arg: first.val}
	t.fn(tc)
	t.sh.yieldCh <- yieldMsg{t: t, op: opDone{}}
}

// yieldOp hands an operation to the engine and blocks until resumed.
// Called only from the coroutine goroutine.
func (t *thr) yieldOp(op any) resumeMsg {
	t.sh.yieldCh <- yieldMsg{t: t, op: op}
	msg := <-t.resume
	if msg.killed {
		panic(killSentinel{})
	}
	return msg
}

// step resumes thread t with msg and waits for its next operation.
// Called only from the engine side; exactly one coroutine runs at a time
// per shard, and a coroutine touches only its own shard's state, so
// workload code never races with the simulator.
//
// The shard's cur marks the running coroutine for the duration of the
// step: it is non-nil exactly while workload code executes (the channel
// handoffs order the writes), letting runtime primitives called from
// workload code (WaitSet.Notify) flush the thread's operation buffer
// first.
func (m *Machine) step(t *thr, msg resumeMsg) any {
	sh := t.sh
	sh.cur = t
	t.state = stRunning
	t.resume <- msg
	y := <-sh.yieldCh
	sh.cur = nil
	if y.t != t {
		panic(fmt.Sprintf("core: yield from %v while stepping %v", y.t, t)) //emx:coldpath
	}
	return y.op
}
