// Package core implements the EM-X fine-grain multithreading runtime on
// top of the simulated machine: explicit-switch threads bound to
// activation frames, split-phase remote reads that suspend the issuing
// thread, packet-driven thread invocation with hardware FIFO scheduling,
// dissemination barriers for iteration synchronization, and the cycle
// accounting (computation / overhead / communication / switching) the
// paper's evaluation is built on.
//
// Workload code is ordinary Go running as a coroutine per simulated
// thread: every interaction with the machine goes through a TC (thread
// context), which charges simulated cycles and may suspend the thread
// exactly where the EM-X hardware would.
package core

import (
	"fmt"

	"emx/internal/proc"
	"emx/internal/sim"
)

// Config holds the machine geometry and all timing parameters (in cycles;
// the EMC-Y runs at 20 MHz, so one cycle is 50 ns).
type Config struct {
	// P is the number of processors (the paper evaluates 16 and 64; the
	// prototype machine has 80).
	P int
	// MemWords is the local memory size per PE in 32-bit words.
	MemWords int

	// DispatchCycles: Matching Unit work to dequeue a packet, fetch the
	// template address and first instruction of the enabled thread.
	DispatchCycles sim.Time
	// SaveCycles: storing live registers to the activation frame when a
	// thread suspends (explicit switching — no register sharing).
	SaveCycles sim.Time
	// RestoreCycles: reloading registers when a thread resumes.
	RestoreCycles sim.Time
	// PacketGenCycles: EXU send instruction (one clock on the EMC-Y).
	PacketGenCycles sim.Time
	// SpawnCycles: allocating an activation frame and depositing arguments
	// when an invoke packet enables a new thread.
	SpawnCycles sim.Time
	// EXUServiceCycles: cost of servicing one remote request on the EXU in
	// the EM-4-compatible ServiceEXU mode.
	EXUServiceCycles sim.Time
	// SpinCheckCycles: the few instructions a synchronizing thread spends
	// testing its condition before yielding again.
	SpinCheckCycles sim.Time
	// MaxCycles aborts the simulation if it runs past this time (spinning
	// threads make true deadlocks manifest as livelocks). 0 means no limit.
	MaxCycles sim.Time

	// Shards is the host-side parallelism knob: the machine's PEs are
	// partitioned into this many contiguous blocks, each advanced by its
	// own engine in the lockstep rounds of a sim.Group. 0 and 1 both mean
	// a single engine. Sharding is a pure host optimization — results are
	// byte-identical for every shard count (asserted machine-level by
	// TestShardedRunMatchesSingleEngine) — so it is excluded from
	// Fingerprint and from run identities.
	//
	//emx:nofingerprint shard count never changes simulated results
	Shards int

	// Proc configures the packet units (IBU/OBU/DMA, service mode).
	Proc proc.Config
}

// DefaultConfig returns the calibration used throughout the reproduction:
// a remote read round trip of ≈20–40 cycles (1–2 µs at 20 MHz) depending
// on machine size and load, matching the paper's Section 2.3.
func DefaultConfig(p int) Config {
	return Config{
		P:                p,
		MemWords:         1 << 20,
		DispatchCycles:   2,
		SaveCycles:       4,
		RestoreCycles:    4,
		PacketGenCycles:  1,
		SpawnCycles:      8,
		EXUServiceCycles: 10,
		SpinCheckCycles:  2,
		Proc:             proc.DefaultConfig(),
	}
}

// Validate checks the configuration for usability.
func (c Config) Validate() error {
	if c.P < 1 {
		return fmt.Errorf("core: P must be >= 1, got %d", c.P)
	}
	if c.MemWords <= 0 {
		return fmt.Errorf("core: MemWords must be positive, got %d", c.MemWords)
	}
	for _, v := range []sim.Time{
		c.DispatchCycles, c.SaveCycles, c.RestoreCycles, c.PacketGenCycles,
		c.SpawnCycles, c.EXUServiceCycles, c.SpinCheckCycles,
	} {
		if v < 0 {
			return fmt.Errorf("core: negative timing parameter in %+v", c)
		}
	}
	if c.Shards > 1 {
		if c.Shards&(c.Shards-1) != 0 {
			return fmt.Errorf("core: Shards must be a power of two, got %d", c.Shards)
		}
		if c.P&(c.P-1) != 0 {
			return fmt.Errorf("core: sharding requires a power-of-two P, got P=%d", c.P)
		}
		if c.Shards > c.P {
			return fmt.Errorf("core: Shards (%d) exceeds P (%d)", c.Shards, c.P)
		}
	}
	return nil
}
