package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// RunIdentity canonicalizes one simulation request — everything that
// determines the outcome of a deterministic run: the workload, machine
// geometry, problem size, thread count, seed, servicing mode, reply
// scheduling policy, and the timing calibration itself. Two requests
// with the same identity are guaranteed to produce identical
// measurements, which is what makes content-addressed result caching
// and in-flight coalescing (internal/labd) safe.
type RunIdentity struct {
	Workload  string // workload name ("bitonic", "fft", "spmv", ...)
	P         int    // processors
	H         int    // threads per processor
	SimN      int    // simulated element count
	PaperN    int    // paper-equivalent size the point stands for
	Scale     int    // scale-down factor the request used (0 if direct)
	Seed      int64  // input generator seed
	Service   string // remote-request servicing mode ("bypass", "EM-4 EXU")
	Sched     string // reply scheduling policy ("fifo", "resume-first")
	BlockRead bool   // bitonic block-read ablation
	Verify    bool   // self-check enabled (changes FFT's stage count)
	Config    string // fingerprint of the full core.Config, see Fingerprint
}

// identityVersion is bumped whenever the canonical encoding changes, so
// stale persisted hashes can never alias new ones.
const identityVersion = "emx-run/v1"

// Canonical returns the deterministic one-line-per-field encoding that
// is hashed. Field order is fixed; the encoding is versioned.
func (id RunIdentity) Canonical() string {
	var b strings.Builder
	b.WriteString(identityVersion)
	fmt.Fprintf(&b, "\nworkload=%s", id.Workload)
	fmt.Fprintf(&b, "\np=%d", id.P)
	fmt.Fprintf(&b, "\nh=%d", id.H)
	fmt.Fprintf(&b, "\nsimn=%d", id.SimN)
	fmt.Fprintf(&b, "\npapern=%d", id.PaperN)
	fmt.Fprintf(&b, "\nscale=%d", id.Scale)
	fmt.Fprintf(&b, "\nseed=%d", id.Seed)
	fmt.Fprintf(&b, "\nservice=%s", id.Service)
	fmt.Fprintf(&b, "\nsched=%s", id.Sched)
	fmt.Fprintf(&b, "\nblockread=%t", id.BlockRead)
	fmt.Fprintf(&b, "\nverify=%t", id.Verify)
	fmt.Fprintf(&b, "\nconfig=%s", id.Config)
	return b.String()
}

// Hash returns the content hash of the canonical encoding: the cache
// key of this run everywhere in the labd subsystem.
func (id RunIdentity) Hash() string {
	sum := sha256.Sum256([]byte(id.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Fingerprint digests every field of the Config, so a run identity
// silently changes whenever the timing calibration does — recalibrating
// the machine can never serve stale cached results. Shards is zeroed
// first: it is host-side parallelism with byte-identical results, so
// sharded and single-engine runs of the same point share one identity
// (and one cache entry).
func (c Config) Fingerprint() string {
	c.Shards = 0
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", c)))
	return hex.EncodeToString(sum[:8])
}
