package core

import (
	"emx/internal/metrics"
	"emx/internal/packet"
)

// WaitSet holds threads blocked on conditions over shared state — the
// runtime's synchronization primitive beneath barriers and the sorting
// workload's merge turn-taking.
//
// A thread that fails its condition suspends (registers are saved to the
// activation frame, one classified switch is charged) and the EXU
// dispatches other work; if nothing is ready the EXU idles, and that wait
// is accounted as communication time — matching the paper's measurement,
// where synchronization stalls surface in the communication component
// rather than as endless spin switching. The code that changes the
// watched state calls Notify to re-evaluate conditions and requeue
// satisfied threads through the normal FIFO.
type WaitSet struct {
	m       *Machine
	sh      *shardState
	waiters []waiter
}

type waiter struct {
	t    *thr
	cond func() bool
}

// NewWaitSet creates a wait set bound to the machine. On a sharded
// machine a wait set must be bound to its owning PE's shard (Notify
// flushes the shard's running coroutine) — use NewWaitSetOn.
func (m *Machine) NewWaitSet() *WaitSet {
	if m.grp != nil {
		panic("core: NewWaitSet on a sharded machine — use NewWaitSetOn(pe)")
	}
	return &WaitSet{m: m, sh: m.shards[0]}
}

// NewWaitSetOn creates a wait set owned by pe's shard. The state watched
// by its conditions, every Notify call site, and every waiting thread
// must live on that same PE (the usual per-PE discipline).
func (m *Machine) NewWaitSetOn(pe packet.PE) *WaitSet {
	return &WaitSet{m: m, sh: m.shards[m.peShard[pe]]}
}

// Notify re-checks all waiters and wakes those whose condition now holds
// by pushing their continuation into the owning PE's packet queue (FIFO,
// zero-cost locally — the cost is paid at dispatch/restore, as on the
// hardware). Safe to call from workload code and from packet handlers:
// both run in engine context. When called from workload code the calling
// thread's buffered operations are applied first, so the wake-ups happen
// at the simulated time they would have without buffering.
func (ws *WaitSet) Notify() {
	if cur := ws.sh.cur; cur != nil && len(cur.buf) > 0 {
		cur.yieldOp(opFlush{})
	}
	kept := ws.waiters[:0]
	for _, w := range ws.waiters {
		if w.t.state == stBlocked && w.cond() {
			w.t.state = stQueued
			ws.m.wakeBlocked(w.t)
		} else {
			kept = append(kept, w)
		}
	}
	ws.waiters = kept
}

// Waiting returns the number of blocked threads in the set.
func (ws *WaitSet) Waiting() int { return len(ws.waiters) }

// WaitUntil blocks the calling thread until cond holds. The check itself
// costs SpinCheckCycles; if it fails, the thread suspends and one switch
// of the given kind is recorded. State examined by cond must only change
// in engine context (workload code or packet handlers), and every change
// must be followed by ws.Notify().
func (tc *TC) WaitUntil(kind metrics.SwitchKind, ws *WaitSet, cond func() bool) {
	// Apply buffered operations before the first check: cond must see the
	// machine state at the simulated time the preceding work completed.
	tc.sync()
	for !cond() {
		tc.t.yieldOp(opWait{kind: kind, ws: ws, cond: cond})
	}
}

// opWait suspends the thread on a wait set.
type opWait struct {
	kind metrics.SwitchKind
	ws   *WaitSet
	cond func() bool
}
