// Package memory models the EMC-Y local memory system: 4 MB of one-level
// static RAM per processor behind a Memory Control Unit (MCU) that
// arbitrates between the Execution Unit and the IBU by-passing DMA.
package memory

import (
	"fmt"

	"emx/internal/packet"
	"emx/internal/sim"
)

// DefaultWords is the simulated local memory size in 32-bit words. The real
// EMC-Y has 1 Mi words (4 MB); simulations may size memory to the workload.
const DefaultWords = 1 << 20

// AccessCycles is the MCU service time for one word access. Static RAM on
// the EMC-Y completes a word access in two processor cycles through the MCU.
const AccessCycles sim.Time = 2

// pageWords is the allocation granule of the backing store. Pages are
// materialized on first write; untouched pages read as zero, matching
// the semantics of one flat zeroed array without paying to clear the
// full address space of every PE up front.
const pageWords = 1 << 12

// Port identifies which unit is requesting the MCU.
type Port uint8

const (
	// PortEXU is the execution unit's load/store port.
	PortEXU Port = iota
	// PortDMA is the IBU by-passing DMA port used to service remote
	// read/write requests without interrupting the EXU.
	PortDMA
)

// Local is one PE's memory: a lazily-paged word array plus an MCU
// arbiter. The zero value is unusable; create with New.
type Local struct {
	pe    packet.PE
	size  int
	pages [][]packet.Word
	mcu   sim.Resource

	// Reads and Writes count word accesses by port.
	Reads  [2]uint64
	Writes [2]uint64
}

// New creates a local memory of n words for the given PE. Storage is
// allocated page-by-page on first write, so sizing memory generously
// costs nothing until it is touched.
func New(pe packet.PE, n int) *Local {
	if n <= 0 {
		n = DefaultWords
	}
	nPages := (n + pageWords - 1) / pageWords
	return &Local{pe: pe, size: n, pages: make([][]packet.Word, nPages)}
}

// Size returns the memory size in words.
func (m *Local) Size() int { return m.size }

// PE returns the owning processor number.
func (m *Local) PE() packet.PE { return m.pe }

func (m *Local) check(off uint32, n int) {
	if int(off) >= m.size || int(off)+n > m.size {
		panic(fmt.Sprintf("memory: PE%d access [%#x,%#x) out of range (size %#x words)",
			m.pe, off, int(off)+n, m.size))
	}
}

// load returns the word at off; unmaterialized pages read as zero.
func (m *Local) load(off uint32) packet.Word {
	p := m.pages[off>>12]
	if p == nil {
		return 0
	}
	return p[off&(pageWords-1)]
}

// store writes the word at off, materializing its page if needed.
func (m *Local) store(off uint32, w packet.Word) {
	pi := off >> 12
	p := m.pages[pi]
	if p == nil {
		p = make([]packet.Word, pageWords)
		m.pages[pi] = p
	}
	p[off&(pageWords-1)] = w
}

// Read performs an MCU-arbitrated single-word read at time now and returns
// the value and the completion time.
func (m *Local) Read(now sim.Time, port Port, off uint32) (packet.Word, sim.Time) {
	m.check(off, 1)
	m.Reads[port]++
	done := m.mcu.Acquire(now, AccessCycles)
	return m.load(off), done
}

// Write performs an MCU-arbitrated single-word write and returns its
// completion time.
func (m *Local) Write(now sim.Time, port Port, off uint32, w packet.Word) sim.Time {
	m.check(off, 1)
	m.Writes[port]++
	m.store(off, w)
	return m.mcu.Acquire(now, AccessCycles)
}

// ReadBlock reads n consecutive words starting at off, pipelined through
// the MCU (AccessCycles per word), returning the data and completion time.
func (m *Local) ReadBlock(now sim.Time, port Port, off uint32, n int) ([]packet.Word, sim.Time) {
	m.check(off, n)
	m.Reads[port] += uint64(n)
	done := m.mcu.Acquire(now, AccessCycles*sim.Time(n))
	out := make([]packet.Word, n)
	for i := range out {
		out[i] = m.load(off + uint32(i))
	}
	return out, done
}

// MCUBusy returns total cycles the MCU has been occupied.
func (m *Local) MCUBusy() sim.Time { return m.mcu.Busy }

// Peek reads a word with no simulated cost. For workload setup and result
// verification outside simulated time.
func (m *Local) Peek(off uint32) packet.Word {
	m.check(off, 1)
	return m.load(off)
}

// Poke writes a word with no simulated cost (setup/verification only).
func (m *Local) Poke(off uint32, w packet.Word) {
	m.check(off, 1)
	m.store(off, w)
}

// PeekBlock copies n words starting at off with no simulated cost.
func (m *Local) PeekBlock(off uint32, n int) []packet.Word {
	m.check(off, n)
	out := make([]packet.Word, n)
	for i := range out {
		out[i] = m.load(off + uint32(i))
	}
	return out
}

// PokeBlock stores the words starting at off with no simulated cost.
func (m *Local) PokeBlock(off uint32, ws []packet.Word) {
	m.check(off, len(ws))
	for i, w := range ws {
		m.store(off+uint32(i), w)
	}
}
