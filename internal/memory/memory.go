// Package memory models the EMC-Y local memory system: 4 MB of one-level
// static RAM per processor behind a Memory Control Unit (MCU) that
// arbitrates between the Execution Unit and the IBU by-passing DMA.
package memory

import (
	"fmt"

	"emx/internal/packet"
	"emx/internal/sim"
)

// DefaultWords is the simulated local memory size in 32-bit words. The real
// EMC-Y has 1 Mi words (4 MB); simulations may size memory to the workload.
const DefaultWords = 1 << 20

// AccessCycles is the MCU service time for one word access. Static RAM on
// the EMC-Y completes a word access in two processor cycles through the MCU.
const AccessCycles sim.Time = 2

// Port identifies which unit is requesting the MCU.
type Port uint8

const (
	// PortEXU is the execution unit's load/store port.
	PortEXU Port = iota
	// PortDMA is the IBU by-passing DMA port used to service remote
	// read/write requests without interrupting the EXU.
	PortDMA
)

// Local is one PE's memory: a word array plus an MCU arbiter. The zero
// value is unusable; create with New.
type Local struct {
	pe    packet.PE
	words []packet.Word
	mcu   sim.Resource

	// Reads and Writes count word accesses by port.
	Reads  [2]uint64
	Writes [2]uint64
}

// New allocates a local memory of n words for the given PE.
func New(pe packet.PE, n int) *Local {
	if n <= 0 {
		n = DefaultWords
	}
	return &Local{pe: pe, words: make([]packet.Word, n)}
}

// Size returns the memory size in words.
func (m *Local) Size() int { return len(m.words) }

// PE returns the owning processor number.
func (m *Local) PE() packet.PE { return m.pe }

func (m *Local) check(off uint32, n int) {
	if int(off) >= len(m.words) || int(off)+n > len(m.words) {
		panic(fmt.Sprintf("memory: PE%d access [%#x,%#x) out of range (size %#x words)",
			m.pe, off, int(off)+n, len(m.words)))
	}
}

// Read performs an MCU-arbitrated single-word read at time now and returns
// the value and the completion time.
func (m *Local) Read(now sim.Time, port Port, off uint32) (packet.Word, sim.Time) {
	m.check(off, 1)
	m.Reads[port]++
	done := m.mcu.Acquire(now, AccessCycles)
	return m.words[off], done
}

// Write performs an MCU-arbitrated single-word write and returns its
// completion time.
func (m *Local) Write(now sim.Time, port Port, off uint32, w packet.Word) sim.Time {
	m.check(off, 1)
	m.Writes[port]++
	m.words[off] = w
	return m.mcu.Acquire(now, AccessCycles)
}

// ReadBlock reads n consecutive words starting at off, pipelined through
// the MCU (AccessCycles per word), returning the data and completion time.
func (m *Local) ReadBlock(now sim.Time, port Port, off uint32, n int) ([]packet.Word, sim.Time) {
	m.check(off, n)
	m.Reads[port] += uint64(n)
	done := m.mcu.Acquire(now, AccessCycles*sim.Time(n))
	out := make([]packet.Word, n)
	copy(out, m.words[off:int(off)+n])
	return out, done
}

// MCUBusy returns total cycles the MCU has been occupied.
func (m *Local) MCUBusy() sim.Time { return m.mcu.Busy }

// Peek reads a word with no simulated cost. For workload setup and result
// verification outside simulated time.
func (m *Local) Peek(off uint32) packet.Word {
	m.check(off, 1)
	return m.words[off]
}

// Poke writes a word with no simulated cost (setup/verification only).
func (m *Local) Poke(off uint32, w packet.Word) {
	m.check(off, 1)
	m.words[off] = w
}

// PeekBlock copies n words starting at off with no simulated cost.
func (m *Local) PeekBlock(off uint32, n int) []packet.Word {
	m.check(off, n)
	out := make([]packet.Word, n)
	copy(out, m.words[off:int(off)+n])
	return out
}

// PokeBlock stores the words starting at off with no simulated cost.
func (m *Local) PokeBlock(off uint32, ws []packet.Word) {
	m.check(off, len(ws))
	copy(m.words[off:int(off)+len(ws)], ws)
}
