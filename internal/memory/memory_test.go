package memory

import (
	"testing"
	"testing/quick"

	"emx/internal/packet"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(3, 1024)
	done := m.Write(0, PortEXU, 10, 0xdead)
	if done != AccessCycles {
		t.Fatalf("write completion %d, want %d", done, AccessCycles)
	}
	v, done2 := m.Read(done, PortEXU, 10)
	if v != 0xdead {
		t.Fatalf("read back %#x, want 0xdead", uint32(v))
	}
	if done2 != done+AccessCycles {
		t.Fatalf("read completion %d, want %d", done2, done+AccessCycles)
	}
}

func TestMCUArbitrationSerializesPorts(t *testing.T) {
	m := New(0, 64)
	// EXU and DMA request at the same cycle: MCU must serialize them.
	_, d1 := m.Read(100, PortEXU, 0)
	_, d2 := m.Read(100, PortDMA, 1)
	if d1 != 100+AccessCycles {
		t.Fatalf("first access done %d, want %d", d1, 100+AccessCycles)
	}
	if d2 != d1+AccessCycles {
		t.Fatalf("contended access done %d, want %d (serialized)", d2, d1+AccessCycles)
	}
}

func TestReadBlock(t *testing.T) {
	m := New(0, 128)
	for i := 0; i < 8; i++ {
		m.Poke(uint32(16+i), packet.Word(i*i))
	}
	ws, done := m.ReadBlock(0, PortDMA, 16, 8)
	if done != 8*AccessCycles {
		t.Fatalf("block completion %d, want %d", done, 8*AccessCycles)
	}
	for i, w := range ws {
		if w != packet.Word(i*i) {
			t.Fatalf("block[%d] = %d, want %d", i, w, i*i)
		}
	}
	// The returned slice must be a copy, not an alias.
	ws[0] = 999
	if m.Peek(16) == 999 {
		t.Fatal("ReadBlock aliases memory")
	}
}

func TestAccessCounters(t *testing.T) {
	m := New(0, 64)
	m.Read(0, PortEXU, 0)
	m.Read(0, PortDMA, 0)
	m.ReadBlock(0, PortDMA, 0, 4)
	m.Write(0, PortEXU, 1, 7)
	if m.Reads[PortEXU] != 1 || m.Reads[PortDMA] != 5 {
		t.Fatalf("reads = %v", m.Reads)
	}
	if m.Writes[PortEXU] != 1 || m.Writes[PortDMA] != 0 {
		t.Fatalf("writes = %v", m.Writes)
	}
	if m.MCUBusy() != 7*AccessCycles {
		t.Fatalf("MCU busy %d, want %d", m.MCUBusy(), 7*AccessCycles)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(0, 16)
	for name, fn := range map[string]func(){
		"read":       func() { m.Read(0, PortEXU, 16) },
		"write":      func() { m.Write(0, PortEXU, 99, 0) },
		"block-tail": func() { m.ReadBlock(0, PortDMA, 12, 8) },
		"peek":       func() { m.Peek(1 << 30) },
		"poke-block": func() { m.PokeBlock(15, []packet.Word{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s out of range did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPokePeekBlocks(t *testing.T) {
	m := New(0, 64)
	src := []packet.Word{5, 6, 7, 8}
	m.PokeBlock(20, src)
	got := m.PeekBlock(20, 4)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("peek block %v, want %v", got, src)
		}
	}
}

func TestDefaultSize(t *testing.T) {
	m := New(0, 0)
	if m.Size() != DefaultWords {
		t.Fatalf("default size %d, want %d", m.Size(), DefaultWords)
	}
	if m.PE() != 0 {
		t.Fatalf("PE() = %d", m.PE())
	}
}

func TestMemoryContentProperty(t *testing.T) {
	// Property: after an arbitrary sequence of pokes, peeks observe the
	// last value written per cell.
	check := func(ops []struct {
		Off uint16
		Val uint32
	}) bool {
		m := New(0, 1<<16)
		shadow := map[uint32]packet.Word{}
		for _, op := range ops {
			m.Poke(uint32(op.Off), packet.Word(op.Val))
			shadow[uint32(op.Off)] = packet.Word(op.Val)
		}
		for off, want := range shadow {
			if m.Peek(off) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
