package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"emx/internal/core"
)

func TestModelValidate(t *testing.T) {
	if (Model{R: 0, L: 1, C: 1}).Validate() == nil {
		t.Error("R=0 accepted")
	}
	if (Model{R: 1, L: -1, C: 1}).Validate() == nil {
		t.Error("L<0 accepted")
	}
	if (Model{R: 12, L: 30, C: 18}).Validate() != nil {
		t.Error("valid model rejected")
	}
}

func TestModelEfficiencyShape(t *testing.T) {
	m := Model{R: 12, L: 30, C: 18}
	if m.Efficiency(0) != 0 {
		t.Error("E(0) != 0")
	}
	// Monotone non-decreasing, bounded by saturation.
	sat := m.R / (m.R + m.C)
	prev := 0.0
	for n := 1; n <= 16; n++ {
		e := m.Efficiency(n)
		if e < prev || e > sat+1e-12 {
			t.Fatalf("E(%d) = %v (prev %v, sat %v)", n, e, prev, sat)
		}
		prev = e
	}
	// Deep saturation reaches R/(R+C) exactly.
	if got := m.Efficiency(16); math.Abs(got-sat) > 1e-12 {
		t.Fatalf("E(16) = %v, want %v", got, sat)
	}
}

func TestModelSaturationPointMatchesPaper(t *testing.T) {
	// Sorting: R=12, C~18, L~30 cycles -> N* = 2. The paper observes the
	// best communication performance at 2-4 threads.
	m := Model{R: 12, L: 30, C: 18}
	ns := m.SaturationPoint()
	if ns < 1.5 || ns > 4.5 {
		t.Fatalf("saturation point %v, want within the paper's 2-4 band", ns)
	}
}

func TestModelRegions(t *testing.T) {
	m := Model{R: 10, L: 100, C: 10} // N* = 6
	if m.RegionOf(1) != Linear {
		t.Error("n=1 not linear")
	}
	if m.RegionOf(6) != Transition {
		t.Error("n=6 not transition")
	}
	if m.RegionOf(12) != Saturation {
		t.Error("n=12 not saturation")
	}
	for _, r := range []Region{Linear, Transition, Saturation} {
		if r.String() == "?" {
			t.Error("unnamed region")
		}
	}
	if Region(9).String() != "?" {
		t.Error("unknown region has a name")
	}
}

func TestModelContinuityProperty(t *testing.T) {
	// Property: E is continuous at the linear/saturation crossover and
	// linear below it.
	check := func(rRaw, lRaw, cRaw uint8) bool {
		m := Model{R: float64(rRaw%50 + 1), L: float64(lRaw % 200), C: float64(cRaw % 50)}
		for n := 1; n < 32; n++ {
			lin := float64(n) * m.R / (m.R + m.C + m.L)
			sat := m.R / (m.R + m.C)
			want := math.Min(lin, sat)
			if math.Abs(m.Efficiency(n)-want) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func kernelCfg() core.Config {
	cfg := core.DefaultConfig(8)
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 100_000_000
	return cfg
}

func TestMeasureLatencyInPaperBand(t *testing.T) {
	for _, p := range []int{16, 64} {
		cfg := core.DefaultConfig(p)
		cfg.MemWords = 1 << 12
		lat := MeasureLatency(cfg)
		// Paper: 20-40 clocks (1-2 us at 20 MHz).
		if lat < 15 || lat > 45 {
			t.Errorf("P=%d latency = %d cycles, want ~20-40", p, lat)
		}
	}
}

func TestKernelValidation(t *testing.T) {
	if _, _, err := RunKernel(kernelCfg(), KernelParams{H: 0, Reads: 1, R: 1}); err == nil {
		t.Error("H=0 accepted")
	}
	if _, _, err := RunKernel(kernelCfg(), KernelParams{H: 1, Reads: 0, R: 1}); err == nil {
		t.Error("Reads=0 accepted")
	}
}

func TestKernelMatchesModel(t *testing.T) {
	// The simulator and the analytic model must agree on the efficiency
	// curve within a modest tolerance (the model ignores queueing and
	// barrier effects; the kernel has no barriers).
	cfg := kernelCfg()
	R := 40
	model := FitFromConfig(cfg, 40)
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, h := range []int{1, 2, 4, 8} {
		_, measured, err := RunKernel(cfg, KernelParams{H: h, Reads: 60, R: 40})
		if err != nil {
			t.Fatal(err)
		}
		want := model.Efficiency(h)
		if diff := math.Abs(measured - want); diff > 0.12 {
			t.Errorf("h=%d: measured %v vs model %v (R=%d)", h, measured, want, R)
		}
	}
}

func TestKernelEfficiencyIncreasesThenSaturates(t *testing.T) {
	cfg := kernelCfg()
	var effs []float64
	for _, h := range []int{1, 2, 4, 8} {
		_, e, err := RunKernel(cfg, KernelParams{H: h, Reads: 40, R: 20})
		if err != nil {
			t.Fatal(err)
		}
		effs = append(effs, e)
	}
	if effs[1] <= effs[0] {
		t.Fatalf("efficiency did not grow from h=1 to h=2: %v", effs)
	}
	// Saturation: h=8 within 15%% of h=4.
	if effs[3] < effs[2]*0.85 {
		t.Fatalf("efficiency collapsed past saturation: %v", effs)
	}
}
