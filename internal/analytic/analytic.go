// Package analytic implements the Saavedra-Barrera analytic model of
// multithreaded processor efficiency (the paper's reference [16]) and a
// synthetic kernel that measures the same quantity on the simulator, so
// the model's three regions — linear, transition, saturation — can be
// compared against machine behaviour (experiment X-model in DESIGN.md).
//
// Model parameters, all in cycles:
//
//	R — run length: useful work between consecutive remote reads
//	L — remote read latency (request to resumable reply)
//	C — context switch cost (save + dispatch + restore)
//
// With one thread the processor works R out of every R+C+L cycles. Adding
// threads fills the latency window L with other threads' work until it is
// full; past that point efficiency is limited only by switch overhead:
//
//	E(N) = N*R / (R + C + L)   while (N-1)(R+C) < L   (linear region)
//	E(N) = R / (R + C)         otherwise               (saturation)
//
// The crossover N* = 1 + L/(R+C) is the saturation point; the paper's
// "two to four threads" observation is exactly N* for R=12, C~18, L~30.
package analytic

import (
	"fmt"

	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/packet"
	"emx/internal/sim"
)

// Region classifies where a thread count sits in the model.
type Region uint8

const (
	// Linear: efficiency grows proportionally with the thread count.
	Linear Region = iota
	// Transition: within one thread of the saturation point.
	Transition
	// Saturation: efficiency is pinned at R/(R+C).
	Saturation
)

func (r Region) String() string {
	switch r {
	case Linear:
		return "linear"
	case Transition:
		return "transition"
	case Saturation:
		return "saturation"
	}
	return "?"
}

// Model holds the three parameters.
type Model struct {
	R, L, C float64
}

// Validate rejects non-positive run lengths or negative costs.
func (m Model) Validate() error {
	if m.R <= 0 || m.L < 0 || m.C < 0 {
		return fmt.Errorf("analytic: invalid model %+v", m)
	}
	return nil
}

// Efficiency returns the modelled processor efficiency for n threads,
// in [0, 1].
func (m Model) Efficiency(n int) float64 {
	if n <= 0 {
		return 0
	}
	sat := m.R / (m.R + m.C)
	lin := float64(n) * m.R / (m.R + m.C + m.L)
	if lin < sat {
		return lin
	}
	return sat
}

// SaturationPoint returns N* = 1 + L/(R+C), the thread count at which the
// latency window is exactly filled.
func (m Model) SaturationPoint() float64 {
	return 1 + m.L/(m.R+m.C)
}

// RegionOf classifies a thread count.
func (m Model) RegionOf(n int) Region {
	ns := m.SaturationPoint()
	switch {
	case float64(n) < ns-1:
		return Linear
	case float64(n) <= ns+1:
		return Transition
	default:
		return Saturation
	}
}

// KernelParams configures the synthetic measurement kernel: h threads per
// PE, each performing Reads split-phase remote reads to a fixed mate PE
// with R cycles of computation between consecutive reads — the workload
// the model describes.
type KernelParams struct {
	H     int
	Reads int      // remote reads per thread
	R     sim.Time // run length between reads
	Seed  int64
}

// RunKernel executes the kernel and returns the run plus the measured
// efficiency (useful computation cycles / available processor cycles).
func RunKernel(cfg core.Config, kp KernelParams) (*metrics.Run, float64, error) {
	if kp.H < 1 || kp.Reads < 1 || kp.R < 1 {
		return nil, 0, fmt.Errorf("analytic: bad kernel params %+v", kp)
	}
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, 0, err
	}
	for pe := 0; pe < cfg.P; pe++ {
		pe := packet.PE(pe)
		mate := packet.PE((int(pe) + cfg.P/2) % cfg.P)
		for th := 0; th < kp.H; th++ {
			th := th
			m.SpawnAt(pe, fmt.Sprintf("kernel-t%d", th), packet.Word(th), func(tc *core.TC) {
				for i := 0; i < kp.Reads; i++ {
					tc.Compute(kp.R)
					tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(th*kp.Reads + i%64)})
				}
			})
		}
	}
	run, err := m.Run()
	if err != nil {
		return nil, 0, err
	}
	run.Label = "kernel"
	run.H = kp.H
	var compute sim.Time
	for i := range run.PEs {
		compute += run.PEs[i].Times.Compute
	}
	eff := float64(compute) / (float64(run.Makespan) * float64(cfg.P))
	return run, eff, nil
}

// FitFromConfig derives model parameters from a machine configuration and
// kernel run length: C is the full switch path (save + dispatch +
// restore), L the measured unloaded round trip for the machine size.
func FitFromConfig(cfg core.Config, r sim.Time) Model {
	c := float64(cfg.SaveCycles + cfg.DispatchCycles + cfg.RestoreCycles)
	return Model{
		R: float64(r),
		L: float64(MeasureLatency(cfg)),
		C: c,
	}
}

// MeasureLatency runs a one-read probe on an idle machine and returns the
// observed request-to-resume latency in cycles.
func MeasureLatency(cfg core.Config) sim.Time {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return 0
	}
	var lat sim.Time
	m.SpawnAt(0, "probe", 0, func(tc *core.TC) {
		mate := packet.PE(cfg.P / 2)
		if cfg.P == 1 {
			mate = 0
		}
		start := tc.Now()
		tc.Read(packet.GlobalAddr{PE: mate, Off: 0})
		lat = tc.Now() - start
	})
	if _, err := m.Run(); err != nil {
		return 0
	}
	return lat
}

// MeasureLoadedLatency runs h threads per PE, each issuing reads to its
// mate with run length r between them, and returns the mean observed
// request-to-resume latency in cycles. Observed latency includes FIFO
// queueing behind sibling threads, which is how a program on the real
// machine experiences it — the paper's "1 to 2 usec when the network is
// normally loaded".
func MeasureLoadedLatency(cfg core.Config, h, reads int, r sim.Time) (float64, error) {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return 0, err
	}
	var total sim.Time
	var count int
	for pe := 0; pe < cfg.P; pe++ {
		pe := packet.PE(pe)
		mate := packet.PE((int(pe) + cfg.P/2) % cfg.P)
		for th := 0; th < h; th++ {
			th := th
			m.SpawnAt(pe, "probe", packet.Word(th), func(tc *core.TC) {
				for i := 0; i < reads; i++ {
					tc.Compute(r)
					t0 := tc.Now()
					tc.Read(packet.GlobalAddr{PE: mate, Off: uint32(th*64 + i%64)})
					total += tc.Now() - t0
					count++
				}
			})
		}
	}
	if _, err := m.Run(); err != nil {
		return 0, err
	}
	return float64(total) / float64(count), nil
}
