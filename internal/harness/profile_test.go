package harness

import (
	"bytes"
	"strings"
	"testing"

	"emx/internal/obs"
)

// profiledSweep runs the small test sweep observed with the given worker
// count and returns the rendered profile JSON, text report, and Perfetto
// trace.
func profiledSweep(t *testing.T, workers int) (prof, report, trace []byte) {
	t.Helper()
	pc := NewProfileCollector(ObsOptions{SliceCycles: 1024})
	s := smallSweep(Bitonic)
	s.Observe = pc
	if _, err := s.Run(workers); err != nil {
		t.Fatal(err)
	}
	merged, err := pc.Merged()
	if err != nil {
		t.Fatal(err)
	}
	var pj, rep, tr bytes.Buffer
	if err := merged.WriteJSON(&pj); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if err := pc.WriteTrace(&tr); err != nil {
		t.Fatal(err)
	}
	return pj.Bytes(), rep.Bytes(), tr.Bytes()
}

// TestProfiledSweepWorkerInvariant is the headline determinism claim:
// every emxprof artifact — merged profile JSON, text report, Perfetto
// trace — is byte-identical whether the sweep ran on 1 worker or 8.
func TestProfiledSweepWorkerInvariant(t *testing.T) {
	p1, r1, t1 := profiledSweep(t, 1)
	p8, r8, t8 := profiledSweep(t, 8)
	if !bytes.Equal(p1, p8) {
		t.Error("merged profile JSON differs between workers=1 and workers=8")
	}
	if !bytes.Equal(r1, r8) {
		t.Error("text report differs between workers=1 and workers=8")
	}
	if !bytes.Equal(t1, t8) {
		t.Error("Perfetto trace differs between workers=1 and workers=8")
	}
}

func TestProfileCollectorPoints(t *testing.T) {
	pc := NewProfileCollector(ObsOptions{Retain: obs.DefaultRetain})
	s := smallSweep(FFT)
	s.Observe = pc
	if _, err := s.Run(4); err != nil {
		t.Fatal(err)
	}
	pts := pc.Points()
	if want := len(s.PaperSizes) * len(s.Threads); len(pts) != want {
		t.Fatalf("collected %d points, want %d", len(pts), want)
	}
	for i, pt := range pts {
		if i > 0 && pts[i-1].Label > pt.Label {
			t.Fatalf("points not sorted: %q after %q", pt.Label, pts[i-1].Label)
		}
		if pt.Profile == nil || pt.Profile.P != s.P {
			t.Fatalf("point %q: bad profile %+v", pt.Label, pt.Profile)
		}
		if mach := pt.Profile.Machine(); mach.Total() == 0 {
			t.Fatalf("point %q: empty phase accounting", pt.Label)
		}
		if !strings.HasPrefix(pt.Label, "fft P=4") {
			t.Fatalf("point label = %q", pt.Label)
		}
	}
}

func TestProfileCollectorEmpty(t *testing.T) {
	pc := NewProfileCollector(ObsOptions{})
	if _, err := pc.Merged(); err == nil {
		t.Error("Merged on empty collector should fail")
	}
	if err := pc.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Error("WriteTrace on empty collector should fail")
	}
}

// TestObservedSweepMatchesUnobserved: attaching the profiler to a sweep
// must not change a single measured cycle.
func TestObservedSweepMatchesUnobserved(t *testing.T) {
	s := smallSweep(Bitonic)
	plain, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe = NewProfileCollector(ObsOptions{})
	observed, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	for si := range plain.Runs {
		for hi := range plain.Runs[si] {
			a, b := plain.Runs[si][hi], observed.Runs[si][hi]
			if a.Makespan != b.Makespan || a.SimEvents != b.SimEvents {
				t.Errorf("size %d h=%d: observed run differs (%d/%d vs %d/%d cycles/events)",
					s.PaperSizes[si], s.Threads[hi], a.Makespan, a.SimEvents, b.Makespan, b.SimEvents)
			}
		}
	}
}

func TestPointLabel(t *testing.T) {
	ps := PointSpec{Workload: Bitonic, P: 16, PaperN: 2 * M, SimN: 4096, H: 8}
	if got := ps.Label(); got != "bitonic P=16 n=2M h=8 bypass" {
		t.Errorf("Label = %q", got)
	}
	direct := PointSpec{Workload: SpMV, P: 4, SimN: 256, H: 2}
	if got := direct.Label(); got != "spmv P=4 n=256 h=2 bypass" {
		t.Errorf("direct Label = %q", got)
	}
}
