package harness

import (
	"strings"
	"testing"

	"emx/internal/labd"
)

func TestPanelNames(t *testing.T) {
	names := PanelNames()
	if len(names) != 23 {
		t.Fatalf("%d panels", len(names))
	}
	for _, want := range []string{"6a", "9d", "em4", "block", "sched", "irr", "model", "latency", "load"} {
		if !ValidPanel(want) {
			t.Errorf("panel %q not valid", want)
		}
	}
	if ValidPanel("6e") || ValidPanel("all") || ValidPanel("") {
		t.Error("invalid names accepted")
	}
	// Mutating the returned slice must not corrupt the registry.
	names[0] = "corrupted"
	if !ValidPanel("6a") {
		t.Fatal("PanelNames leaks internal state")
	}
}

func TestPanelUnknown(t *testing.T) {
	pr := NewPanelRunner(PanelOptions{Scale: 1 << 20}, labd.New(labd.Options{Workers: 1}))
	if _, err := pr.Panel("nope"); err == nil || !strings.Contains(err.Error(), "unknown panel") {
		t.Fatalf("err = %v", err)
	}
	if _, err := pr.Panel("6z"); err == nil {
		t.Fatal("bad panel letter accepted")
	}
}

// TestPanelFigureShapes builds one cheap panel of each family at a
// fully clamped scale and checks shape plus cycle accounting.
func TestPanelFigureShapes(t *testing.T) {
	sched := labd.New(labd.Options{Workers: 0})
	defer sched.Close()
	var logged []string
	pr := NewPanelRunner(PanelOptions{
		Scale: 1 << 20,
		Seed:  1,
		Logf:  func(format string, args ...any) { logged = append(logged, format) },
	}, sched)

	figs, err := pr.Panel("6a")
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("%d figures for 6a", len(figs))
	}
	f := figs[0]
	if len(f.Series) != 5 || len(f.X) != 9 {
		t.Fatalf("6a shape: %d series x %d points", len(f.Series), len(f.X))
	}
	if f.SimCycles == 0 {
		t.Fatal("6a has no cycle total")
	}
	if len(logged) == 0 {
		t.Fatal("no progress logged")
	}

	// 7a reuses 6a's sweep: no new executions.
	before := sched.Stats().Started
	figs7, err := pr.Panel("7a")
	if err != nil {
		t.Fatal(err)
	}
	if sched.Stats().Started != before {
		t.Fatalf("7a re-executed the 6a sweep (%d new runs)", sched.Stats().Started-before)
	}
	if figs7[0].ID != "fig7-bitonic-P16" {
		t.Fatalf("7a id %q", figs7[0].ID)
	}

	// The in-text latency panel sweeps P, not h.
	figsLat, err := pr.Panel("latency")
	if err != nil {
		t.Fatal(err)
	}
	lat := figsLat[0]
	if lat.XName != "P" {
		t.Fatalf("latency xname %q", lat.XName)
	}
	if !strings.Contains(lat.Table(), "P =") {
		t.Fatalf("latency table header wrong:\n%s", lat.Table())
	}
	if lat.Note == "" {
		t.Fatal("latency panel lost its in-text note")
	}
	for _, y := range lat.Series[0].Y {
		if y <= 0 {
			t.Fatalf("non-positive latency %v", lat.Series[0].Y)
		}
	}
}

// TestPanelModelNote: the model panel carries its saturation-point
// remark in the figure rather than printing it out-of-band.
func TestPanelModelNote(t *testing.T) {
	sched := labd.New(labd.Options{Workers: 0})
	defer sched.Close()
	pr := NewPanelRunner(PanelOptions{Scale: 1 << 20}, sched)
	figs, err := pr.Panel("model")
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	if !strings.Contains(f.Note, "saturation point") {
		t.Fatalf("model note %q", f.Note)
	}
	if !strings.Contains(f.Table(), "saturation point") {
		t.Fatal("note not rendered in table output")
	}
	if len(f.Series) != 3 {
		t.Fatalf("%d model series", len(f.Series))
	}
	if f.SimCycles == 0 {
		t.Fatal("model kernel cycles not accounted")
	}
}
