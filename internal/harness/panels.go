package harness

import (
	"fmt"
	"sync"

	"emx/internal/analytic"
	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/proc"
)

// panelOrder is every figure panel of the evaluation, in the order
// `-fig all` emits them: Figures 6-9 (a-d), the ablations, and the
// in-text measurements.
var panelOrder = []string{
	"6a", "6b", "6c", "6d", "7a", "7b", "7c", "7d",
	"8a", "8b", "8c", "8d", "9a", "9b", "9c", "9d",
	"em4", "block", "sched", "irr", "model", "latency", "load",
}

// PanelNames lists the valid panel names in emission order.
func PanelNames() []string {
	out := make([]string, len(panelOrder))
	copy(out, panelOrder)
	return out
}

// ValidPanel reports whether name is a known panel.
func ValidPanel(name string) bool {
	for _, p := range panelOrder {
		if p == name {
			return true
		}
	}
	return false
}

// panelGrid maps the paper's panel letters onto (workload, P): a/b are
// sorting at P=16/64, c/d FFT at P=16/64.
var panelGrid = map[byte]struct {
	w Workload
	p int
}{
	'a': {Bitonic, 16},
	'b': {Bitonic, 64},
	'c': {FFT, 16},
	'd': {FFT, 64},
}

// PanelOptions parameterizes a panel build.
type PanelOptions struct {
	// Scale divides the paper's problem sizes (<=0: DefaultScale).
	Scale int
	// Seed is the input generator seed (the paper sweep's default is 1).
	Seed int64
	// Logf, when set, receives progress lines (sweep announcements).
	Logf func(format string, args ...any)
	// Observe, when non-nil, collects a cycle-accounting profile from
	// every point the panel's sweeps execute (see Sweep.Observe).
	Observe *ProfileCollector
	// Shards is the per-point engine-shard count (0: auto, 1: single
	// engine). Host-side only; never part of a point's identity.
	Shards int
}

// PanelRunner builds the paper's figure panels through an Executor,
// memoizing sweeps so panels that share one (6b and 7b, say) measure it
// once. It is the single figure-construction path behind both
// cmd/emxbench and emxd's /v1/figure.
type PanelRunner struct {
	opts PanelOptions
	exec Executor

	mu     sync.Mutex
	sweeps map[string]*SweepResult
}

// NewPanelRunner returns a runner executing through exec.
func NewPanelRunner(opts PanelOptions, exec Executor) *PanelRunner {
	if opts.Scale <= 0 {
		opts.Scale = DefaultScale
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &PanelRunner{opts: opts, exec: exec, sweeps: map[string]*SweepResult{}}
}

func (pr *PanelRunner) logf(format string, args ...any) {
	if pr.opts.Logf != nil {
		pr.opts.Logf(format, args...)
	}
}

// sweep memoizes full-grid sweeps per (workload, P, knobs). The labd
// scheduler underneath additionally caches and coalesces individual
// points, so concurrent duplicate panel requests stay cheap.
func (pr *PanelRunner) sweep(w Workload, p int, mode proc.ServiceMode, block, replyHigh bool) (*SweepResult, error) {
	key := fmt.Sprintf("%s-%d-%d-%v-%v", w, p, mode, block, replyHigh)
	pr.mu.Lock()
	if res, ok := pr.sweeps[key]; ok {
		pr.mu.Unlock()
		return res, nil
	}
	pr.mu.Unlock()
	pr.logf("sweeping %s P=%d (mode=%s block=%v replyhigh=%v, scale %d)...",
		w, p, mode, block, replyHigh, pr.opts.Scale)
	res, err := Sweep{
		Workload: w, P: p, Scale: pr.opts.Scale, Mode: mode,
		BlockRead: block, ReplyHigh: replyHigh, Seed: pr.opts.Seed,
		Observe: pr.opts.Observe, Shards: pr.opts.Shards,
	}.RunOn(pr.exec)
	if err != nil {
		return nil, err
	}
	pr.mu.Lock()
	pr.sweeps[key] = res
	pr.mu.Unlock()
	return res, nil
}

// Panel builds one named panel. Most names yield one figure; the em4
// and sched ablations yield one per workload.
func (pr *PanelRunner) Panel(name string) ([]Figure, error) {
	switch {
	case len(name) == 2 && (name[0] == '6' || name[0] == '7'):
		ps, ok := panelGrid[name[1]]
		if !ok {
			return nil, fmt.Errorf("unknown panel %q", name)
		}
		res, err := pr.sweep(ps.w, ps.p, proc.ServiceBypass, false, false)
		if err != nil {
			return nil, err
		}
		if name[0] == '6' {
			f := Fig6(res)
			f.SimCycles = res.TotalCycles()
			return []Figure{f}, nil
		}
		f, err := Fig7(res)
		if err != nil {
			return nil, err
		}
		f.SimCycles = res.TotalCycles()
		return []Figure{f}, nil

	case len(name) == 2 && (name[0] == '8' || name[0] == '9'):
		// Figure 8/9 panels are all P=64: a/b sorting at 512K/8M, c/d FFT
		// at 512K/8M.
		var w Workload
		var size int
		switch name[1] {
		case 'a':
			w, size = Bitonic, 512*K
		case 'b':
			w, size = Bitonic, 8*M
		case 'c':
			w, size = FFT, 512*K
		case 'd':
			w, size = FFT, 8*M
		default:
			return nil, fmt.Errorf("unknown panel %q", name)
		}
		res, err := pr.sweep(w, 64, proc.ServiceBypass, false, false)
		if err != nil {
			return nil, err
		}
		var f Figure
		if name[0] == '8' {
			f, err = Fig8(res, size)
		} else {
			f, err = Fig9(res, size)
		}
		if err != nil {
			return nil, err
		}
		f.SimCycles = res.TotalCycles()
		return []Figure{f}, nil

	case name == "em4":
		// Ablation X-em4: EM-X by-passing DMA vs EM-4 EXU servicing.
		var figs []Figure
		for _, w := range []Workload{Bitonic, FFT} {
			bypass, err := pr.sweep(w, 16, proc.ServiceBypass, false, false)
			if err != nil {
				return nil, err
			}
			exu, err := pr.sweep(w, 16, proc.ServiceEXU, false, false)
			if err != nil {
				return nil, err
			}
			size := 512 * K
			f, err := CompareSweeps(
				"xem4-"+w.String(),
				fmt.Sprintf("Servicing ablation: %s, P=16, n=%s", w, SizeLabel(size)),
				"makespan (s, simulated)", size, MakespanSeconds,
				LabelledSweep{Label: "EM-X by-passing DMA", Result: bypass},
				LabelledSweep{Label: "EM-4 EXU servicing", Result: exu})
			if err != nil {
				return nil, err
			}
			f.SimCycles = bypass.TotalCycles() + exu.TotalCycles()
			figs = append(figs, f)
		}
		return figs, nil

	case name == "block":
		// Ablation X-block: element reads vs block-read sends (bitonic).
		elem, err := pr.sweep(Bitonic, 16, proc.ServiceBypass, false, false)
		if err != nil {
			return nil, err
		}
		blk, err := pr.sweep(Bitonic, 16, proc.ServiceBypass, true, false)
		if err != nil {
			return nil, err
		}
		size := 512 * K
		f, err := CompareSweeps(
			"xblock",
			fmt.Sprintf("Block-read ablation: bitonic, P=16, n=%s", SizeLabel(size)),
			"comm time (s, simulated)", size, CommSeconds,
			LabelledSweep{Label: "element reads (paper)", Result: elem},
			LabelledSweep{Label: "block-read sends", Result: blk})
		if err != nil {
			return nil, err
		}
		f.SimCycles = elem.TotalCycles() + blk.TotalCycles()
		return []Figure{f}, nil

	case name == "sched":
		// Ablation X-sched: FIFO vs resume-first reply scheduling — the
		// fine-tuning direction the paper's conclusion proposes.
		var figs []Figure
		for _, w := range []Workload{Bitonic, FFT} {
			fifo, err := pr.sweep(w, 16, proc.ServiceBypass, false, false)
			if err != nil {
				return nil, err
			}
			hi, err := pr.sweep(w, 16, proc.ServiceBypass, false, true)
			if err != nil {
				return nil, err
			}
			size := 512 * K
			f, err := CompareSweeps(
				"xsched-"+w.String(),
				fmt.Sprintf("Reply scheduling ablation: %s, P=16, n=%s", w, SizeLabel(size)),
				"comm time (s, simulated)", size, CommSeconds,
				LabelledSweep{Label: "FIFO replies (EM-X)", Result: fifo},
				LabelledSweep{Label: "resume-first replies", Result: hi})
			if err != nil {
				return nil, err
			}
			f.SimCycles = fifo.TotalCycles() + hi.TotalCycles()
			figs = append(figs, f)
		}
		return figs, nil

	case name == "irr":
		// Extension X-irr: the conclusion's proposed irregular workload —
		// where does SpMV's overlap land between sorting and FFT?
		var labelled []LabelledSweep
		var cycles uint64
		for _, w := range []Workload{Bitonic, SpMV, FFT} {
			res, err := pr.sweep(w, 16, proc.ServiceBypass, false, false)
			if err != nil {
				return nil, err
			}
			cycles += res.TotalCycles()
			labelled = append(labelled, LabelledSweep{Label: w.String(), Result: res})
		}
		size := 512 * K
		f, err := CompareSweeps(
			"xirr",
			fmt.Sprintf("Irregular workload: overlap efficiency, P=16, n=%s", SizeLabel(size)),
			"overlap efficiency (%)", size,
			func(*metrics.Run) float64 { return 0 }, labelled...)
		if err != nil {
			return nil, err
		}
		// Replace the metric with per-sweep efficiency (needs the h=1
		// baseline of each sweep, which CompareSweeps' single-run metric
		// cannot express).
		for i, ls := range labelled {
			si := ls.Result.SizeIndex(size)
			base := ls.Result.Runs[si][ls.Result.ThreadIndex(1)]
			for hi := range ls.Result.Threads {
				f.Series[i].Y[hi] = metrics.Efficiency(base, ls.Result.Runs[si][hi])
			}
		}
		f.SimCycles = cycles
		return []Figure{f}, nil

	case name == "model":
		f, err := pr.modelPanel()
		if err != nil {
			return nil, err
		}
		return []Figure{f}, nil

	case name == "latency":
		return []Figure{pr.latencyPanel()}, nil

	case name == "load":
		f, err := pr.loadPanel()
		if err != nil {
			return nil, err
		}
		return []Figure{f}, nil
	}
	return nil, fmt.Errorf("unknown panel %q", name)
}

// modelPanel compares the Saavedra-Barrera analytic model against the
// synthetic kernel on the simulator (experiment X-model).
func (pr *PanelRunner) modelPanel() (Figure, error) {
	cfg := core.DefaultConfig(16)
	cfg.MemWords = 1 << 14
	cfg.MaxCycles = 1 << 36
	const runLen = 40
	m := analytic.FitFromConfig(cfg, runLen)
	f := Figure{
		ID:     "xmodel",
		Title:  fmt.Sprintf("Analytic model vs simulation (R=%d, L=%.0f, C=%.0f)", runLen, m.L, m.C),
		XLabel: "threads",
		YLabel: "processor efficiency",
		X:      []int{1, 2, 3, 4, 6, 8, 12, 16},
	}
	model := Series{Label: "Saavedra-Barrera model"}
	meas := Series{Label: "simulated kernel"}
	region := Series{Label: "model region (0=lin 1=trans 2=sat)"}
	for _, h := range f.X {
		model.Y = append(model.Y, m.Efficiency(h))
		run, e, err := analytic.RunKernel(cfg, analytic.KernelParams{H: h, Reads: 80, R: runLen})
		if err != nil {
			return Figure{}, err
		}
		f.SimCycles += uint64(run.Makespan)
		meas.Y = append(meas.Y, e)
		region.Y = append(region.Y, float64(m.RegionOf(h)))
	}
	f.Series = []Series{model, meas, region}
	f.Note = fmt.Sprintf("saturation point N* = %.2f threads (the paper's 2-4 band)", m.SaturationPoint())
	return f, nil
}

// latencyPanel reports the in-text measurement T-lat: a typical remote
// read takes about 1 us (20 cycles), growing with machine size.
func (pr *PanelRunner) latencyPanel() Figure {
	f := Figure{
		ID:     "xlatency",
		Title:  "Remote read latency (unloaded, T-lat)",
		XLabel: "processors",
		YLabel: "latency (cycles)",
		XName:  "P",
		X:      []int{2, 4, 16, 64, 80, 128},
		Note:   "paper: ~1-2 us, i.e. 20-40 cycles at 20 MHz",
	}
	cycles := Series{Label: "round trip (cycles)"}
	micros := Series{Label: "round trip (us)"}
	for _, p := range f.X {
		cfg := core.DefaultConfig(p)
		cfg.MemWords = 1 << 12
		lat := analytic.MeasureLatency(cfg)
		cycles.Y = append(cycles.Y, float64(lat))
		micros.Y = append(micros.Y, lat.Micros())
	}
	f.Series = []Series{cycles, micros}
	return f
}

// loadPanel reports observed remote read latency under load: h threads
// per PE all reading, for the sorting run length — "1 to 2 usec when
// the network is normally loaded".
func (pr *PanelRunner) loadPanel() (Figure, error) {
	f := Figure{
		ID:     "xload",
		Title:  "Observed remote read latency under load (R=12)",
		XLabel: "threads",
		YLabel: "latency (cycles)",
		X:      []int{1, 2, 4, 8, 16},
	}
	for _, p := range []int{16, 64, 80} {
		cfg := core.DefaultConfig(p)
		cfg.MemWords = 1 << 12
		cfg.MaxCycles = 1 << 34
		ser := Series{Label: fmt.Sprintf("P=%d", p)}
		for _, h := range f.X {
			lat, err := analytic.MeasureLoadedLatency(cfg, h, 48, 12)
			if err != nil {
				return Figure{}, err
			}
			ser.Y = append(ser.Y, lat)
		}
		f.Series = append(f.Series, ser)
	}
	return f, nil
}
