package harness

import (
	"fmt"
	"math"
	"strings"
)

// Table renders the figure as an aligned text table: one row per series,
// one column per thread count.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]\n", f.Title, f.ID)
	fmt.Fprintf(&b, "y: %s\n", f.YLabel)
	wLabel := len("series")
	for _, s := range f.Series {
		if len(s.Label) > wLabel {
			wLabel = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", wLabel+2, f.xname()+" =")
	for _, x := range f.X {
		fmt.Fprintf(&b, "%12d", x)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-*s", wLabel+2, s.Label)
		for _, y := range s.Y {
			fmt.Fprintf(&b, "%12s", formatY(y))
		}
		b.WriteByte('\n')
	}
	if f.Note != "" {
		b.WriteString(f.Note)
		b.WriteByte('\n')
	}
	return b.String()
}

func formatY(y float64) string {
	ay := math.Abs(y)
	switch {
	case y == 0:
		return "0"
	case ay >= 1e5 || ay < 1e-3:
		return fmt.Sprintf("%.3e", y)
	case ay >= 100:
		return fmt.Sprintf("%.1f", y)
	default:
		return fmt.Sprintf("%.4g", y)
	}
}

// CSV renders the figure as comma-separated values with a header row.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series")
	for _, x := range f.X {
		fmt.Fprintf(&b, ",%s=%d", f.xname(), x)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		b.WriteString(csvEscape(s.Label))
		for _, y := range s.Y {
			fmt.Fprintf(&b, ",%g", y)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Chart renders an ASCII line chart of the figure, height rows tall.
// Each series is drawn with a distinct marker; the y-axis is log-scaled
// when the figure says so.
func (f Figure) Chart(height int) string {
	if height < 4 {
		height = 4
	}
	markers := "ox+*#@%&"
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			v, ok := f.scaleY(y)
			if !ok {
				continue
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return f.Title + ": no data\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	width := len(f.X)
	colW := 4
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width*colW))
	}
	for si, s := range f.Series {
		mk := markers[si%len(markers)]
		for xi, y := range s.Y {
			v, ok := f.scaleY(y)
			if !ok {
				continue
			}
			row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
			grid[row][xi*colW+colW/2] = mk
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]  (y: %s%s)\n", f.Title, f.ID, f.YLabel, logNote(f.LogY))
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = leftPad(formatY(f.unscaleY(hi)), 8)
		} else if r == height-1 {
			label = leftPad(formatY(f.unscaleY(lo)), 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	b.WriteString("         +" + strings.Repeat("-", width*colW) + "\n          ")
	for _, x := range f.X {
		fmt.Fprintf(&b, "%-*d", colW, x)
	}
	b.WriteByte('\n')
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", markers[si%len(markers)], s.Label)
	}
	if f.Note != "" {
		b.WriteString(f.Note)
		b.WriteByte('\n')
	}
	return b.String()
}

func (f Figure) scaleY(y float64) (float64, bool) {
	if f.LogY {
		if y <= 0 {
			return 0, false
		}
		return math.Log10(y), true
	}
	return y, true
}

func (f Figure) unscaleY(v float64) float64 {
	if f.LogY {
		return math.Pow(10, v)
	}
	return v
}

func logNote(log bool) string {
	if log {
		return ", log scale"
	}
	return ""
}

func leftPad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return strings.Repeat(" ", w-len(s)) + s
}
