package harness

import (
	"fmt"

	"emx/internal/metrics"
)

// Figure is one panel of the paper's evaluation: named series over the
// thread-count x-axis. The JSON form is served by emxd's /v1/figure and
// written by emxbench -format json.
type Figure struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	XLabel string `json:"xlabel"`
	YLabel string `json:"ylabel"`
	// XName is the axis symbol used in table/CSV headers ("h" when empty;
	// the in-text measurement panels sweep P instead).
	XName string `json:"xname,omitempty"`
	LogY  bool   `json:"logy,omitempty"`
	// Note is a free-text remark printed after the panel (e.g. the
	// analytic model's saturation point).
	Note string `json:"note,omitempty"`
	// SimCycles totals the simulated machine cycles behind the panel —
	// the benchmark snapshot's perf-trajectory quantity.
	SimCycles uint64   `json:"sim_cycles"`
	X         []int    `json:"x"`
	Series    []Series `json:"series"`
}

// Series is one labelled curve.
type Series struct {
	Label string    `json:"label"`
	Y     []float64 `json:"y"`
}

func (f Figure) xname() string {
	if f.XName != "" {
		return f.XName
	}
	return "h"
}

// Fig6 builds a Figure 6 panel from a sweep: absolute communication time
// (simulated seconds, log scale) vs number of threads, one series per
// data size. Expected shape: a valley at 2-4 threads, deeper for FFT.
func Fig6(res *SweepResult) Figure {
	f := Figure{
		ID:     fmt.Sprintf("fig6-%s-P%d", res.Workload, res.P),
		Title:  fmt.Sprintf("Communication time: %s, P=%d", res.Workload, res.P),
		XLabel: "threads",
		YLabel: "comm time (s, simulated)",
		LogY:   true,
		X:      res.Threads,
	}
	for si, paperN := range res.PaperSizes {
		ser := Series{Label: "n=" + SizeLabel(paperN)}
		for hi := range res.Threads {
			run := res.Runs[si][hi]
			cycles := run.MeanCommTime()
			ser.Y = append(ser.Y, simSeconds(cycles))
		}
		f.Series = append(f.Series, ser)
	}
	return f
}

// Fig7 builds a Figure 7 panel: overlapping efficiency
// E = (Tcomm,1 - Tcomm,h)/Tcomm,1 in percent. The sweep must include
// h=1 (the baseline). Expected shape: ~35% plateau for sorting, >95%
// peak at 2-4 threads for FFT.
func Fig7(res *SweepResult) (Figure, error) {
	baseIdx := res.ThreadIndex(1)
	if baseIdx < 0 {
		return Figure{}, fmt.Errorf("harness: Fig7 needs h=1 in the sweep")
	}
	f := Figure{
		ID:     fmt.Sprintf("fig7-%s-P%d", res.Workload, res.P),
		Title:  fmt.Sprintf("Efficiency of overlapping: %s, P=%d", res.Workload, res.P),
		XLabel: "threads",
		YLabel: "overlap efficiency (%)",
		X:      res.Threads,
	}
	for si, paperN := range res.PaperSizes {
		base := res.Runs[si][baseIdx]
		ser := Series{Label: "n=" + SizeLabel(paperN)}
		for hi := range res.Threads {
			ser.Y = append(ser.Y, metrics.Efficiency(base, res.Runs[si][hi]))
		}
		f.Series = append(f.Series, ser)
	}
	return f, nil
}

// Fig8 builds a Figure 8 panel for one size: the distribution of
// execution time into computation, overhead, communication and switching
// (percent, stacked bottom-up in the paper's order).
func Fig8(res *SweepResult, paperN int) (Figure, error) {
	si := res.SizeIndex(paperN)
	if si < 0 {
		return Figure{}, fmt.Errorf("harness: size %d not in sweep", paperN)
	}
	f := Figure{
		ID:     fmt.Sprintf("fig8-%s-P%d-n%s", res.Workload, res.P, SizeLabel(paperN)),
		Title:  fmt.Sprintf("Execution time distribution: %s, P=%d, n=%s", res.Workload, res.P, SizeLabel(paperN)),
		XLabel: "threads",
		YLabel: "share of execution time (%)",
		X:      res.Threads,
	}
	comps := []Series{
		{Label: "computation"},
		{Label: "overhead"},
		{Label: "communication"},
		{Label: "switch"},
	}
	for hi := range res.Threads {
		b := res.Runs[si][hi].TotalBreakdown()
		c, o, m, s := b.Fractions()
		comps[0].Y = append(comps[0].Y, 100*c)
		comps[1].Y = append(comps[1].Y, 100*o)
		comps[2].Y = append(comps[2].Y, 100*m)
		comps[3].Y = append(comps[3].Y, 100*s)
	}
	f.Series = comps
	return f, nil
}

// Fig9 builds a Figure 9 panel for one size: average per-PE context
// switch counts by type (log scale). Expected shape: remote-read switches
// flat and dominant; iteration-sync growing with h and approaching the
// remote-read curve for small sizes; a visible thread-sync curve for
// sorting and a low one for FFT.
func Fig9(res *SweepResult, paperN int) (Figure, error) {
	si := res.SizeIndex(paperN)
	if si < 0 {
		return Figure{}, fmt.Errorf("harness: size %d not in sweep", paperN)
	}
	f := Figure{
		ID:     fmt.Sprintf("fig9-%s-P%d-n%s", res.Workload, res.P, SizeLabel(paperN)),
		Title:  fmt.Sprintf("Switches per PE: %s, P=%d, n=%s", res.Workload, res.P, SizeLabel(paperN)),
		XLabel: "threads",
		YLabel: "switches per PE",
		LogY:   true,
		X:      res.Threads,
	}
	kinds := []metrics.SwitchKind{
		metrics.SwitchRemoteRead, metrics.SwitchIterSync, metrics.SwitchThreadSync,
	}
	labels := []string{"remote read switch", "iter sync switch", "thread sync switch"}
	for i, k := range kinds {
		ser := Series{Label: labels[i]}
		for hi := range res.Threads {
			ser.Y = append(ser.Y, res.Runs[si][hi].MeanSwitches(k))
		}
		f.Series = append(f.Series, ser)
	}
	return f, nil
}

// CompareSweeps builds an ablation figure contrasting one metric across
// sweeps that differ in a single knob (service mode, block reads, ...).
func CompareSweeps(id, title, ylabel string, paperN int, metric func(*metrics.Run) float64, labelled ...LabelledSweep) (Figure, error) {
	if len(labelled) == 0 {
		return Figure{}, fmt.Errorf("harness: CompareSweeps with no sweeps")
	}
	f := Figure{
		ID:     id,
		Title:  title,
		XLabel: "threads",
		YLabel: ylabel,
		X:      labelled[0].Result.Threads,
	}
	for _, ls := range labelled {
		si := ls.Result.SizeIndex(paperN)
		if si < 0 {
			return Figure{}, fmt.Errorf("harness: size %d not in sweep %q", paperN, ls.Label)
		}
		ser := Series{Label: ls.Label}
		for hi := range ls.Result.Threads {
			ser.Y = append(ser.Y, metric(ls.Result.Runs[si][hi]))
		}
		f.Series = append(f.Series, ser)
	}
	return f, nil
}

// LabelledSweep pairs a sweep result with a display label.
type LabelledSweep struct {
	Label  string
	Result *SweepResult
}

// TotalCycles sums the makespans of every run in the grid: the total
// simulated work behind a sweep, reported per panel in benchmark
// snapshots.
func (r *SweepResult) TotalCycles() uint64 {
	var total uint64
	for _, row := range r.Runs {
		for _, run := range row {
			if run != nil {
				total += uint64(run.Makespan)
			}
		}
	}
	return total
}

// CommSeconds is a CompareSweeps metric: mean per-PE communication time.
func CommSeconds(r *metrics.Run) float64 { return simSeconds(r.MeanCommTime()) }

// MakespanSeconds is a CompareSweeps metric: total execution time.
func MakespanSeconds(r *metrics.Run) float64 { return float64(r.Makespan) * 50e-9 }

func simSeconds(cycles float64) float64 { return cycles * 50e-9 }
