package harness

import (
	"testing"

	"emx/internal/labd"
)

// TestFigureCSVDeterministicAcrossWorkers proves host-side scheduling
// never leaks into simulated results: the same figure panel rendered
// from sweeps executed with 1 worker and with 8 workers through the
// labd scheduler is byte-identical. Run under -race in CI.
func TestFigureCSVDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) (string, string) {
		t.Helper()
		sched := labd.New(labd.Options{Workers: workers})
		defer sched.Close()
		res, err := smallSweep(Bitonic).RunOn(sched)
		if err != nil {
			t.Fatal(err)
		}
		f6 := Fig6(res)
		f7, err := Fig7(res)
		if err != nil {
			t.Fatal(err)
		}
		return f6.CSV(), f7.CSV()
	}
	csv6a, csv7a := render(1)
	csv6b, csv7b := render(8)
	if csv6a != csv6b {
		t.Fatalf("Fig6 CSV differs between workers=1 and workers=8:\n%s\nvs\n%s", csv6a, csv6b)
	}
	if csv7a != csv7b {
		t.Fatalf("Fig7 CSV differs between workers=1 and workers=8:\n%s\nvs\n%s", csv7a, csv7b)
	}
	if csv6a == "" || csv7a == "" {
		t.Fatal("empty CSV")
	}
}

// TestSweepRunMatchesRunOn: the convenience Run(workers) path and an
// explicit scheduler produce identical grids.
func TestSweepRunMatchesRunOn(t *testing.T) {
	a, err := smallSweep(FFT).Run(2)
	if err != nil {
		t.Fatal(err)
	}
	sched := labd.New(labd.Options{Workers: 2})
	defer sched.Close()
	b, err := smallSweep(FFT).RunOn(sched)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Runs {
		for hi := range a.Runs[si] {
			if a.Runs[si][hi].Makespan != b.Runs[si][hi].Makespan {
				t.Fatalf("cell (%d,%d) differs between Run and RunOn", si, hi)
			}
		}
	}
}

// TestSweepCoalescesDuplicatePoints: a sweep whose grid degenerates to
// identical points (clamped sizes) executes each unique point once when
// run through a caching scheduler.
func TestSweepCoalescesDuplicatePoints(t *testing.T) {
	sched := labd.New(labd.Options{Workers: 4})
	defer sched.Close()
	s := Sweep{
		Workload:   Bitonic,
		P:          4,
		PaperSizes: []int{64 * K, 64 * K}, // two identical size rows
		Scale:      1 << 20,
		Threads:    []int{1, 2},
		Seed:       3,
	}
	res, err := s.RunOn(sched)
	if err != nil {
		t.Fatal(err)
	}
	// 4 grid cells, but only 2 unique (size rows collapse): the
	// scheduler must have executed exactly 2 simulations.
	st := sched.Stats()
	if st.Started != 2 {
		t.Fatalf("started %d simulations for 2 unique points", st.Started)
	}
	if st.CacheHits+st.Coalesced != 2 {
		t.Fatalf("expected 2 deduplicated cells, got hits=%d coalesced=%d", st.CacheHits, st.Coalesced)
	}
	if res.Runs[0][0].Makespan != res.Runs[1][0].Makespan {
		t.Fatal("identical points produced different results")
	}
}

func TestPointSpecKeyStable(t *testing.T) {
	ps := Sweep{Workload: FFT, P: 4, PaperSizes: []int{64 * K}, Scale: 512, Threads: []int{2}, Seed: 1}.
		withDefaults().Point(0, 0)
	if ps.Key(512) != ps.Key(512) {
		t.Fatal("key not deterministic")
	}
	if ps.Key(512) == ps.Key(256) {
		t.Fatal("scale not part of the identity")
	}
	other := ps
	other.Seed = 2
	if ps.Key(512) == other.Key(512) {
		t.Fatal("seed not part of the identity")
	}
}
