package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"emx/internal/labd"
	"emx/internal/metrics"
)

// TestFigureCSVDeterministicAcrossWorkers proves host-side scheduling
// never leaks into simulated results: the same figure panel rendered
// from sweeps executed with 1 worker and with 8 workers through the
// labd scheduler is byte-identical. Run under -race in CI.
func TestFigureCSVDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) (string, string) {
		t.Helper()
		sched := labd.New(labd.Options{Workers: workers})
		defer sched.Close()
		res, err := smallSweep(Bitonic).RunOn(sched)
		if err != nil {
			t.Fatal(err)
		}
		f6 := Fig6(res)
		f7, err := Fig7(res)
		if err != nil {
			t.Fatal(err)
		}
		return f6.CSV(), f7.CSV()
	}
	csv6a, csv7a := render(1)
	csv6b, csv7b := render(8)
	if csv6a != csv6b {
		t.Fatalf("Fig6 CSV differs between workers=1 and workers=8:\n%s\nvs\n%s", csv6a, csv6b)
	}
	if csv7a != csv7b {
		t.Fatalf("Fig7 CSV differs between workers=1 and workers=8:\n%s\nvs\n%s", csv7a, csv7b)
	}
	if csv6a == "" || csv7a == "" {
		t.Fatal("empty CSV")
	}
}

// goldenPanelHashes pins the exact figure bytes the pre-fast-path
// simulator (the seed revision) produced, rendered exactly as
// `emxbench -format csv -scale 65536 -seed 1` renders them. The
// operation-buffer fast path and the calendar-queue scheduler are pure
// host-side optimizations: any drift in simulated results — event
// ordering, cycle accounting, counters — shows up here as a hash
// mismatch. Regenerate only when a change intentionally alters
// simulated behavior (and say so in the commit).
var goldenPanelHashes = map[string][]struct{ id, sha string }{
	"6a":      {{"fig6-bitonic-P16", "e1f579ef80bf33ade024ff5156156cca73b877902f4a0cbe013effb407c64434"}},
	"model":   {{"xmodel", "ee30f48845af409afe42556e5b27ef9cf93d298585b04dd7f4315e6baee86b49"}},
	"latency": {{"xlatency", "e5bda51eafdd804fea2389523347d4fbef13feebc7e5cf6f591bf333635a0bb3"}},
	"em4": {
		{"xem4-bitonic", "ee53a7212f2ed28a7a4d52507fad80e5149db98ec06ae84b02efe322406b8fcf"},
		{"xem4-fft", "e7811af5a48a20c0a3696433def5f5f6840fdded6e13932c9ca295bcaaf5f837"},
	},
	"irr": {{"xirr", "20816c61bec2762a88612ef8a96af0747b11da8c07339b51a85682c83337a76c"}},
}

func TestFigureGoldenHashes(t *testing.T) {
	heavy := map[string]bool{"em4": true, "irr": true}
	sched := labd.New(labd.Options{})
	defer sched.Close()
	pr := NewPanelRunner(PanelOptions{Scale: 65536, Seed: 1}, sched)
	for _, name := range []string{"6a", "model", "latency", "em4", "irr"} {
		if testing.Short() && heavy[name] {
			continue
		}
		figs, err := pr.Panel(name)
		if err != nil {
			t.Fatalf("panel %s: %v", name, err)
		}
		golds := goldenPanelHashes[name]
		if len(figs) != len(golds) {
			t.Fatalf("panel %s yielded %d figures, want %d", name, len(figs), len(golds))
		}
		for i, f := range figs {
			if f.ID != golds[i].id {
				t.Fatalf("panel %s figure %d is %q, want %q", name, i, f.ID, golds[i].id)
			}
			// Byte-for-byte the emxbench CSV block: header line, CSV, and
			// the println separator.
			blob := fmt.Sprintf("# %s [%s]\n%s\n", f.Title, f.ID, f.CSV())
			sum := sha256.Sum256([]byte(blob))
			if got := hex.EncodeToString(sum[:]); got != golds[i].sha {
				t.Errorf("panel %s figure %s: hash %s, want %s\nsimulated results drifted from the seed:\n%s",
					name, f.ID, got, golds[i].sha, blob)
			}
		}
	}
}

// TestSpillPathDeterministicAcrossWorkers forces packet-queue spills
// (16 threads per PE overflow the 8-slot on-chip FIFOs) and proves the
// spill/restore dispatch path stays deterministic under the
// operation-buffer fast path: every simulated measurement — FIFO
// dispatch counts, spill counters, the full breakdown — is identical
// whether the grid runs on 1 or 8 host workers.
func TestSpillPathDeterministicAcrossWorkers(t *testing.T) {
	spillSweep := Sweep{
		Workload:   Bitonic,
		P:          4,
		PaperSizes: []int{256 * K},
		Scale:      1024,
		Threads:    []int{8, 16},
		Seed:       7,
	}
	grid := func(workers int) *SweepResult {
		t.Helper()
		res, err := spillSweep.Run(workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := grid(1), grid(8)
	var spills uint64
	for si := range a.Runs {
		for hi := range a.Runs[si] {
			ra, rb := a.Runs[si][hi], b.Runs[si][hi]
			// Host timing is the one legitimately non-deterministic field.
			ra.HostElapsedSecs, rb.HostElapsedSecs = 0, 0
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("cell (%d,%d) differs between workers=1 and workers=8:\n%+v\nvs\n%+v", si, hi, ra, rb)
			}
			spills += ra.SumCounter(func(pe *metrics.PE) uint64 { return pe.Spills })
		}
	}
	if spills == 0 {
		t.Fatal("sweep produced no packet-queue spills; the test no longer exercises the spill path")
	}
}

// TestSweepRunMatchesRunOn: the convenience Run(workers) path and an
// explicit scheduler produce identical grids.
func TestSweepRunMatchesRunOn(t *testing.T) {
	a, err := smallSweep(FFT).Run(2)
	if err != nil {
		t.Fatal(err)
	}
	sched := labd.New(labd.Options{Workers: 2})
	defer sched.Close()
	b, err := smallSweep(FFT).RunOn(sched)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Runs {
		for hi := range a.Runs[si] {
			if a.Runs[si][hi].Makespan != b.Runs[si][hi].Makespan {
				t.Fatalf("cell (%d,%d) differs between Run and RunOn", si, hi)
			}
		}
	}
}

// TestSweepCoalescesDuplicatePoints: a sweep whose grid degenerates to
// identical points (clamped sizes) executes each unique point once when
// run through a caching scheduler.
func TestSweepCoalescesDuplicatePoints(t *testing.T) {
	sched := labd.New(labd.Options{Workers: 4})
	defer sched.Close()
	s := Sweep{
		Workload:   Bitonic,
		P:          4,
		PaperSizes: []int{64 * K, 64 * K}, // two identical size rows
		Scale:      1 << 20,
		Threads:    []int{1, 2},
		Seed:       3,
	}
	res, err := s.RunOn(sched)
	if err != nil {
		t.Fatal(err)
	}
	// 4 grid cells, but only 2 unique (size rows collapse): the
	// scheduler must have executed exactly 2 simulations.
	st := sched.Stats()
	if st.Started != 2 {
		t.Fatalf("started %d simulations for 2 unique points", st.Started)
	}
	if st.CacheHits+st.Coalesced != 2 {
		t.Fatalf("expected 2 deduplicated cells, got hits=%d coalesced=%d", st.CacheHits, st.Coalesced)
	}
	if res.Runs[0][0].Makespan != res.Runs[1][0].Makespan {
		t.Fatal("identical points produced different results")
	}
}

func TestPointSpecKeyStable(t *testing.T) {
	ps := Sweep{Workload: FFT, P: 4, PaperSizes: []int{64 * K}, Scale: 512, Threads: []int{2}, Seed: 1}.
		withDefaults().Point(0, 0)
	if ps.Key(512) != ps.Key(512) {
		t.Fatal("key not deterministic")
	}
	if ps.Key(512) == ps.Key(256) {
		t.Fatal("scale not part of the identity")
	}
	other := ps
	other.Seed = 2
	if ps.Key(512) == other.Key(512) {
		t.Fatal("seed not part of the identity")
	}
}
