package harness

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"emx/internal/metrics"
	"emx/internal/obs"
)

// ObsOptions sizes the per-point tracers a ProfileCollector builds; the
// zero value uses the obs defaults (64K-event ring, no time slices).
type ObsOptions struct {
	// Capacity bounds each point's event ring (<=0: obs.DefaultCapacity).
	Capacity int
	// SliceCycles, when >0, adds whole-machine time slices of this width
	// to each point's profile.
	SliceCycles int64
	// Retain selects the event categories kept in each ring
	// (0: obs.DefaultRetain).
	Retain obs.CategoryMask
}

// ProfiledPoint is the observation of one executed grid point.
type ProfiledPoint struct {
	// Key is the point's content hash — the same key the executor
	// scheduled it under.
	Key string
	// Label is the human-readable point identity.
	Label string

	Profile *obs.Profile
	Events  []obs.Event
	Names   []obs.NameEntry
}

// ProfileCollector gathers per-point profiles from observed runs. Points
// execute concurrently in sweeps; the collector keys them by content
// hash and exports them in sorted order, so its outputs are byte-
// deterministic regardless of worker count or completion order.
type ProfileCollector struct {
	opts ObsOptions

	mu     sync.Mutex
	points map[string]*ProfiledPoint
}

// NewProfileCollector returns an empty collector.
func NewProfileCollector(opts ObsOptions) *ProfileCollector {
	return &ProfileCollector{opts: opts, points: map[string]*ProfiledPoint{}}
}

// RunPointObserved executes one point with a fresh tracer attached and
// stores the resulting profile under the point's cache key. The
// simulation is cycle-identical to an unobserved RunPoint.
func (c *ProfileCollector) RunPointObserved(ps PointSpec, scale int) (*metrics.Run, error) {
	tr := obs.New(obs.Options{
		P:           ps.P,
		Capacity:    c.opts.Capacity,
		SliceCycles: c.opts.SliceCycles,
		Retain:      c.opts.Retain,
	})
	run, err := runPoint(ps, tr)
	if err != nil {
		return nil, err
	}
	pt := &ProfiledPoint{
		Key:     ps.Key(scale),
		Label:   ps.Label(),
		Profile: tr.Profile(),
		Events:  tr.Events(),
		Names:   tr.Names(),
	}
	c.mu.Lock()
	c.points[pt.Key] = pt
	c.mu.Unlock()
	return run, nil
}

// Points returns the collected points sorted by (Label, Key) — a
// deterministic order independent of execution interleaving.
func (c *ProfileCollector) Points() []*ProfiledPoint {
	c.mu.Lock()
	out := make([]*ProfiledPoint, 0, len(c.points))
	for _, pt := range c.points {
		out = append(out, pt)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Merged sums every collected point profile into one (all points must
// share a machine size, as a panel sweep's do).
func (c *ProfileCollector) Merged() (*obs.Profile, error) {
	pts := c.Points()
	if len(pts) == 0 {
		return nil, fmt.Errorf("harness: no profiled points collected")
	}
	profs := make([]*obs.Profile, len(pts))
	for i, pt := range pts {
		profs[i] = pt.Profile
	}
	return obs.Merge(profs)
}

// pidStride separates the Perfetto process-ID ranges of successive
// points; it only needs to exceed the largest machine size (80 PEs on
// the prototype, 128 switch nodes).
const pidStride = 1024

// WriteTrace renders every collected point into one Perfetto trace
// document, each point's PEs under its own process-ID range, in sorted
// point order.
func (c *ProfileCollector) WriteTrace(w io.Writer) error {
	pts := c.Points()
	if len(pts) == 0 {
		return fmt.Errorf("harness: no profiled points collected")
	}
	tw := obs.NewTraceWriter(w)
	for i, pt := range pts {
		obs.AppendTrace(tw, int64(1+i*pidStride), pt.Label, pt.Profile, pt.Events, pt.Names)
	}
	return tw.Close()
}
