package harness

import (
	"strings"
	"testing"

	"emx/internal/metrics"
	"emx/internal/proc"
)

// smallSweep keeps simulations tiny: paper size 64K at scale 512 -> 128
// elements on 4 PEs.
func smallSweep(w Workload) Sweep {
	return Sweep{
		Workload:   w,
		P:          4,
		PaperSizes: []int{128 * K, 64 * K},
		Scale:      512,
		Threads:    []int{1, 2, 4},
		Seed:       42,
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int]string{
		8 * M:   "8M",
		512 * K: "512K",
		256 * K: "256K",
		100:     "100",
		3 * M:   "3M",
	}
	for n, want := range cases {
		if got := SizeLabel(n); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestDefaultSizes(t *testing.T) {
	s16 := DefaultSizes(16)
	s64 := DefaultSizes(64)
	if s16[0] != 2*M || s16[len(s16)-1] != 128*K {
		t.Errorf("P=16 sizes = %v", s16)
	}
	if s64[0] != 8*M || s64[len(s64)-1] != 512*K {
		t.Errorf("P=64 sizes = %v", s64)
	}
}

func TestSimSizeClamped(t *testing.T) {
	s := Sweep{P: 16, Scale: 1 << 20, Threads: []int{16}}
	// 512K / 1M < 1 element: must clamp to >= P*maxH.
	if got := s.SimSize(512 * K); got < 16*16 {
		t.Errorf("SimSize = %d, want >= 256", got)
	}
	s2 := Sweep{P: 4, Scale: 512, Threads: []int{1}}
	if got := s2.SimSize(64 * K); got != 128 {
		t.Errorf("SimSize = %d, want 128", got)
	}
}

func TestRunPointVerifies(t *testing.T) {
	for _, w := range []Workload{Bitonic, FFT, SpMV} {
		run, err := RunPoint(PointSpec{
			Workload: w, P: 4, SimN: 128, PaperN: 64 * K, H: 2, Seed: 1, Verify: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if run.PaperN != 64*K || run.P != 4 || run.H != 2 {
			t.Fatalf("%v: run metadata %+v", w, run)
		}
	}
}

func TestRunPointUnknownWorkload(t *testing.T) {
	if _, err := RunPoint(PointSpec{Workload: Workload(9), P: 2, SimN: 8, H: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestSweepGridComplete(t *testing.T) {
	res, err := smallSweep(Bitonic).Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("%d size rows", len(res.Runs))
	}
	for si, row := range res.Runs {
		if len(row) != 3 {
			t.Fatalf("size %d: %d thread cells", si, len(row))
		}
		for hi, run := range row {
			if run == nil {
				t.Fatalf("missing run at (%d,%d)", si, hi)
			}
			if run.H != res.Threads[hi] {
				t.Fatalf("cell (%d,%d) has H=%d", si, hi, run.H)
			}
		}
	}
}

func TestSweepParallelDeterminism(t *testing.T) {
	a, err := smallSweep(FFT).Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := smallSweep(FFT).Run(4)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Runs {
		for hi := range a.Runs[si] {
			if a.Runs[si][hi].Makespan != b.Runs[si][hi].Makespan {
				t.Fatalf("cell (%d,%d) differs across worker counts", si, hi)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := smallSweep(Bitonic).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	f := Fig6(res)
	if len(f.Series) != 2 || len(f.Series[0].Y) != 3 {
		t.Fatalf("figure shape: %d series x %d", len(f.Series), len(f.Series[0].Y))
	}
	// Valley: comm time at h=2 and h=4 below h=1 for every size.
	for _, s := range f.Series {
		if s.Y[1] >= s.Y[0] || s.Y[2] >= s.Y[0] {
			t.Fatalf("no comm valley in %q: %v", s.Label, s.Y)
		}
	}
	if !f.LogY {
		t.Fatal("Fig6 should be log scale")
	}
}

func TestFig7BaselineZero(t *testing.T) {
	res, err := smallSweep(FFT).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Fig7(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if s.Y[0] != 0 {
			t.Fatalf("h=1 efficiency = %v in %q, want 0", s.Y[0], s.Label)
		}
		for _, y := range s.Y {
			if y < -100 || y > 100 {
				t.Fatalf("efficiency out of range: %v", y)
			}
		}
	}
	// FFT overlap at h=2 should be large.
	if f.Series[0].Y[1] < 60 {
		t.Fatalf("FFT h=2 efficiency = %v, want >60%%", f.Series[0].Y[1])
	}
}

func TestFig7NeedsBaseline(t *testing.T) {
	s := smallSweep(Bitonic)
	s.Threads = []int{2, 4}
	res, err := s.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig7(res); err == nil {
		t.Fatal("Fig7 without h=1 accepted")
	}
}

func TestFig8SumsTo100(t *testing.T) {
	res, err := smallSweep(Bitonic).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Fig8(res, 64*K)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 4 {
		t.Fatalf("%d components", len(f.Series))
	}
	for hi := range f.X {
		sum := 0.0
		for _, s := range f.Series {
			sum += s.Y[hi]
		}
		if sum < 99.99 || sum > 100.01 {
			t.Fatalf("components at h=%d sum to %v", f.X[hi], sum)
		}
	}
	if _, err := Fig8(res, 999); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestFig9SwitchCurves(t *testing.T) {
	res, err := smallSweep(Bitonic).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Fig9(res, 128*K)
	if err != nil {
		t.Fatal(err)
	}
	var remote, thread Series
	for _, s := range f.Series {
		switch s.Label {
		case "remote read switch":
			remote = s
		case "thread sync switch":
			thread = s
		}
	}
	// Remote-read switches must dominate and stay roughly flat in h.
	for i, y := range remote.Y {
		if y <= 0 {
			t.Fatalf("remote switches[%d] = %v", i, y)
		}
	}
	// Sorting with h>1 shows thread-sync switches.
	if thread.Y[2] == 0 {
		t.Fatal("no thread-sync switches at h=4")
	}
	if thread.Y[0] != 0 {
		t.Fatal("thread-sync switches at h=1")
	}
}

func TestCompareSweepsEM4(t *testing.T) {
	bypass := smallSweep(Bitonic)
	em4 := smallSweep(Bitonic)
	em4.Mode = proc.ServiceEXU
	rb, err := bypass.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	re, err := em4.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CompareSweeps("em4", "EM-X bypass vs EM-4 EXU servicing", "makespan (s)",
		64*K, MakespanSeconds,
		LabelledSweep{"EM-X bypass", rb}, LabelledSweep{"EM-4 EXU service", re})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 2 {
		t.Fatalf("%d series", len(f.Series))
	}
	// EXU servicing steals cycles: it must never be faster.
	for i := range f.X {
		if f.Series[1].Y[i] < f.Series[0].Y[i] {
			t.Fatalf("EM-4 mode faster at h=%d: %v < %v", f.X[i], f.Series[1].Y[i], f.Series[0].Y[i])
		}
	}
}

func TestRenderTableCSVChart(t *testing.T) {
	res, err := smallSweep(FFT).Run(0)
	if err != nil {
		t.Fatal(err)
	}
	f := Fig6(res)
	tab := f.Table()
	if !strings.Contains(tab, "n=128K") || !strings.Contains(tab, "h =") {
		t.Fatalf("table missing content:\n%s", tab)
	}
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "series,h=1,h=2,h=4") {
		t.Fatalf("csv header %q", lines[0])
	}
	chart := f.Chart(10)
	if !strings.Contains(chart, "o = n=128K") {
		t.Fatalf("chart legend missing:\n%s", chart)
	}
	if strings.Count(chart, "\n") < 10 {
		t.Fatalf("chart too short:\n%s", chart)
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("a,b") != `"a,b"` || csvEscape(`say "hi"`) != `"say ""hi"""` || csvEscape("plain") != "plain" {
		t.Fatal("csv escaping wrong")
	}
}

func TestChartEmpty(t *testing.T) {
	f := Figure{Title: "empty", LogY: true, X: []int{1}, Series: []Series{{Label: "z", Y: []float64{0}}}}
	if !strings.Contains(f.Chart(5), "no data") {
		t.Fatal("empty log chart should say no data")
	}
}

func TestWorkloadString(t *testing.T) {
	if Bitonic.String() != "bitonic" || FFT.String() != "fft" || SpMV.String() != "spmv" {
		t.Fatal("bad workload names")
	}
	if Workload(9).String() != "workload(?)" {
		t.Fatal("unknown workload name")
	}
}

func TestMetricsHelpers(t *testing.T) {
	r := &metrics.Run{Makespan: 20_000_000, PEs: make([]metrics.PE, 1)}
	r.PEs[0].Times.Comm = 20_000_000
	if MakespanSeconds(r) != 1.0 {
		t.Fatalf("makespan seconds = %v", MakespanSeconds(r))
	}
	if CommSeconds(r) != 1.0 {
		t.Fatalf("comm seconds = %v", CommSeconds(r))
	}
}

func TestReplyHighSweepCorrect(t *testing.T) {
	// The resume-first policy must not break the workloads: verified runs
	// succeed and are deterministic.
	for _, w := range []Workload{Bitonic, FFT} {
		run, err := RunPoint(PointSpec{
			Workload: w, P: 4, SimN: 128, PaperN: 128, H: 4,
			ReplyHigh: true, Seed: 2, Verify: true,
		})
		if err != nil {
			t.Fatalf("%v with resume-first replies: %v", w, err)
		}
		run2, err := RunPoint(PointSpec{
			Workload: w, P: 4, SimN: 128, PaperN: 128, H: 4,
			ReplyHigh: true, Seed: 2, Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if run.Makespan != run2.Makespan {
			t.Fatalf("%v resume-first nondeterministic", w)
		}
	}
}
