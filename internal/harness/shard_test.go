package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"emx/internal/labd"
)

// TestShardedPanelHashesMatchGoldens is the cross-shard packet-ordering
// stress test promised by the sharding design: the full Figure 6a panel
// (bitonic, P=16, the seed-pinned golden) rendered with the engine
// forcibly split into shards ∈ {2, 4, P} must hash byte-for-byte to the
// same golden the single-engine run is pinned against. Every grid point
// exercises cross-shard traffic (bitonic exchanges span the whole cube),
// so any drift in exchange ordering, hop accounting, or barrier timing
// surfaces as a hash mismatch. Run under -race in CI.
//
// Each shard count gets a fresh scheduler: Shards is deliberately
// excluded from point identity, so a shared scheduler would serve the
// first run's cached results back and prove nothing.
func TestShardedPanelHashesMatchGoldens(t *testing.T) {
	gold := goldenPanelHashes["6a"][0]
	for _, shards := range []int{1, 2, 4, 16} {
		sched := labd.New(labd.Options{})
		pr := NewPanelRunner(PanelOptions{Scale: 65536, Seed: 1, Shards: shards}, sched)
		figs, err := pr.Panel("6a")
		sched.Close()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(figs) != 1 || figs[0].ID != gold.id {
			t.Fatalf("shards=%d: unexpected panel shape", shards)
		}
		blob := fmt.Sprintf("# %s [%s]\n%s\n", figs[0].Title, figs[0].ID, figs[0].CSV())
		sum := sha256.Sum256([]byte(blob))
		if got := hex.EncodeToString(sum[:]); got != gold.sha {
			t.Errorf("shards=%d: hash %s, want golden %s\nsharded run drifted from the seed:\n%s",
				shards, got, gold.sha, blob)
		}
	}
}

// TestShardedSweepFiguresByteIdentical covers the Figure 7 path (speedup
// ratios over the same grid) at P=4 with shards ∈ {1, 2, P}: the rendered
// CSV must be byte-identical across shard counts.
func TestShardedSweepFiguresByteIdentical(t *testing.T) {
	render := func(shards int) (string, string) {
		t.Helper()
		s := smallSweep(Bitonic)
		s.Shards = shards
		res, err := s.Run(2)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		f6 := Fig6(res)
		f7, err := Fig7(res)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return f6.CSV(), f7.CSV()
	}
	csv6, csv7 := render(1)
	if csv6 == "" || csv7 == "" {
		t.Fatal("empty CSV")
	}
	for _, shards := range []int{2, 4} {
		g6, g7 := render(shards)
		if g6 != csv6 {
			t.Errorf("Fig6 CSV differs at shards=%d:\n%s\nvs\n%s", shards, g6, csv6)
		}
		if g7 != csv7 {
			t.Errorf("Fig7 CSV differs at shards=%d:\n%s\nvs\n%s", shards, g7, csv7)
		}
	}
}

// TestShardedSweepRejectsBadShardCounts: invalid shard counts surface as
// validation errors from the sweep, not silent fallbacks.
func TestShardedSweepRejectsBadShardCounts(t *testing.T) {
	for _, tc := range []struct {
		shards int
		want   string
	}{
		{3, "power of two"},
		{8, "exceeds P"}, // smallSweep runs P=4
	} {
		s := smallSweep(Bitonic)
		s.Shards = tc.shards
		_, err := s.Run(1)
		if err == nil {
			t.Errorf("shards=%d: sweep succeeded, want validation error", tc.shards)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("shards=%d: error %q does not mention %q", tc.shards, err, tc.want)
		}
	}
}
