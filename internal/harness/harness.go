// Package harness runs the paper's experiments: parameter sweeps over
// workload, machine size, problem size, and thread count, executed in
// parallel across host cores (each point is an independent deterministic
// simulation), and turns the measurements into the series behind the
// paper's Figures 6-9 plus the ablation studies.
//
// Problem sizes are geometry-preserving scale-downs of the paper's (see
// DESIGN.md): a sweep carries both the paper-equivalent label (e.g. "8M")
// and the simulated size. The curve shapes depend on the per-thread chunk
// size relative to latency and run length, which the scaling preserves.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"emx/internal/apps/bitonic"
	"emx/internal/apps/fft"
	"emx/internal/apps/spmv"
	"emx/internal/core"
	"emx/internal/metrics"
	"emx/internal/proc"
	"emx/internal/sim"
	"emx/internal/thread"
)

// Workload selects the application under measurement.
type Workload uint8

const (
	// Bitonic is multithreaded bitonic sorting (Section 3.1).
	Bitonic Workload = iota
	// FFT is the multithreaded Fast Fourier Transform (Section 3.2).
	FFT
	// SpMV is the irregular sparse matrix-vector workload (the paper's
	// conclusion's proposed target; extension X-irr).
	SpMV
)

func (w Workload) String() string {
	switch w {
	case Bitonic:
		return "bitonic"
	case FFT:
		return "fft"
	case SpMV:
		return "spmv"
	}
	return "workload(?)"
}

// K and M are the element-count units of the paper's size labels.
const (
	K = 1 << 10
	M = 1 << 20
)

// DefaultScale divides the paper's problem sizes for simulation. 512
// keeps the largest point (8M) at 16K simulated elements — minutes of
// host time for a full figure on one core.
const DefaultScale = 512

// DefaultThreads is the x-axis of every figure: the paper sweeps 1-16
// threads per processor.
var DefaultThreads = []int{1, 2, 4, 6, 8, 10, 12, 14, 16}

// DefaultSizes returns the paper's data sizes for a machine size:
// 128K-2M elements for P=16 (Figure 6a/6c) and 512K-8M for P=64
// (Figure 6b/6d), largest first as in the paper's legends.
func DefaultSizes(p int) []int {
	if p <= 16 {
		return []int{2 * M, 1 * M, 512 * K, 256 * K, 128 * K}
	}
	return []int{8 * M, 4 * M, 2 * M, 1 * M, 512 * K}
}

// SizeLabel formats an element count the way the paper's legends do.
func SizeLabel(n int) string {
	switch {
	case n >= M:
		return fmt.Sprintf("%gM", float64(n)/M)
	case n >= K:
		return fmt.Sprintf("%gK", float64(n)/K)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PointSpec is one simulation to run.
type PointSpec struct {
	Workload  Workload
	P         int
	SimN      int // elements actually simulated
	PaperN    int // paper-equivalent size this point stands for
	H         int
	Mode      proc.ServiceMode
	BlockRead bool // bitonic only: block-read ablation
	ReplyHigh bool // resume-first scheduling: replies use the high-priority FIFO
	Seed      int64
	Verify    bool // run the workload's self-check (off in sweeps)
}

// RunPoint executes one simulation point.
func RunPoint(ps PointSpec) (*metrics.Run, error) {
	cfg := core.DefaultConfig(ps.P)
	cfg.Proc.Mode = ps.Mode
	if ps.ReplyHigh {
		cfg.Proc.ReplyPrio = thread.High
	}
	cfg.MaxCycles = sim.Time(1) << 40
	var (
		run *metrics.Run
		err error
	)
	switch ps.Workload {
	case Bitonic:
		run, err = bitonic.Run(cfg, bitonic.Params{
			N: ps.SimN, H: ps.H, UseBlockRead: ps.BlockRead,
			Seed: ps.Seed, SkipVerify: !ps.Verify,
		})
	case FFT:
		// Verification needs the full transform (AllStages); measurement
		// runs use only the first log2(P) iterations, as the paper does.
		run, err = fft.Run(cfg, fft.Params{
			N: ps.SimN, H: ps.H, Seed: ps.Seed,
			AllStages: ps.Verify, SkipVerify: !ps.Verify,
		})
	case SpMV:
		run, err = spmv.Run(cfg, spmv.Params{
			N: ps.SimN, H: ps.H, Iterations: 2,
			Seed: ps.Seed, SkipVerify: !ps.Verify,
		})
	default:
		return nil, fmt.Errorf("harness: unknown workload %d", ps.Workload)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %v P=%d N=%d H=%d: %w", ps.Workload, ps.P, ps.SimN, ps.H, err)
	}
	run.PaperN = ps.PaperN
	return run, nil
}

// Sweep describes a (size x thread-count) grid for one workload and
// machine size — the raw material of one Figure 6/7 panel and, at
// selected sizes, the Figure 8/9 panels.
type Sweep struct {
	Workload   Workload
	P          int
	PaperSizes []int
	Scale      int
	Threads    []int
	Mode       proc.ServiceMode
	BlockRead  bool
	ReplyHigh  bool
	Seed       int64
}

// SweepResult holds the grid of runs: Runs[sizeIdx][threadIdx].
type SweepResult struct {
	Sweep
	Runs [][]*metrics.Run
}

// SimSize returns the simulated element count for a paper size, clamped
// so every PE keeps at least max(Threads) elements.
func (s Sweep) SimSize(paperN int) int {
	n := paperN / s.Scale
	if n < 1 {
		n = 1
	}
	minN := s.P
	for _, h := range s.Threads {
		if s.P*h > minN {
			minN = s.P * h
		}
	}
	for n < minN {
		n *= 2
	}
	return n
}

// Run executes the sweep with the given number of parallel workers
// (<=0 means GOMAXPROCS). Each grid point is an independent
// deterministic simulation, so results do not depend on scheduling.
func (s Sweep) Run(workers int) (*SweepResult, error) {
	if s.Scale <= 0 {
		s.Scale = DefaultScale
	}
	if len(s.Threads) == 0 {
		s.Threads = DefaultThreads
	}
	if len(s.PaperSizes) == 0 {
		s.PaperSizes = DefaultSizes(s.P)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &SweepResult{Sweep: s, Runs: make([][]*metrics.Run, len(s.PaperSizes))}
	for i := range res.Runs {
		res.Runs[i] = make([]*metrics.Run, len(s.Threads))
	}

	type job struct{ si, hi int }
	jobs := make(chan job)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := range jobs {
				paperN := s.PaperSizes[j.si]
				run, err := RunPoint(PointSpec{
					Workload:  s.Workload,
					P:         s.P,
					SimN:      s.SimSize(paperN),
					PaperN:    paperN,
					H:         s.Threads[j.hi],
					Mode:      s.Mode,
					BlockRead: s.BlockRead,
					ReplyHigh: s.ReplyHigh,
					Seed:      s.Seed,
				})
				if err != nil {
					if errs[w] == nil {
						errs[w] = err
					}
					continue
				}
				res.Runs[j.si][j.hi] = run
			}
		}(w)
	}
	for si := range s.PaperSizes {
		for hi := range s.Threads {
			jobs <- job{si, hi}
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ThreadIndex returns the position of thread count h, or -1.
func (r *SweepResult) ThreadIndex(h int) int {
	for i, t := range r.Threads {
		if t == h {
			return i
		}
	}
	return -1
}

// SizeIndex returns the position of the paper size n, or -1.
func (r *SweepResult) SizeIndex(paperN int) int {
	for i, n := range r.PaperSizes {
		if n == paperN {
			return i
		}
	}
	return -1
}
