// Package harness runs the paper's experiments: parameter sweeps over
// workload, machine size, problem size, and thread count, executed in
// parallel across host cores (each point is an independent deterministic
// simulation), and turns the measurements into the series behind the
// paper's Figures 6-9 plus the ablation studies.
//
// Problem sizes are geometry-preserving scale-downs of the paper's (see
// DESIGN.md): a sweep carries both the paper-equivalent label (e.g. "8M")
// and the simulated size. The curve shapes depend on the per-thread chunk
// size relative to latency and run length, which the scaling preserves.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"emx/internal/apps/bitonic"
	"emx/internal/apps/fft"
	"emx/internal/apps/spmv"
	"emx/internal/core"
	"emx/internal/labd"
	"emx/internal/metrics"
	"emx/internal/obs"
	"emx/internal/proc"
	"emx/internal/sim"
	"emx/internal/thread"
)

// Workload selects the application under measurement.
type Workload uint8

const (
	// Bitonic is multithreaded bitonic sorting (Section 3.1).
	Bitonic Workload = iota
	// FFT is the multithreaded Fast Fourier Transform (Section 3.2).
	FFT
	// SpMV is the irregular sparse matrix-vector workload (the paper's
	// conclusion's proposed target; extension X-irr).
	SpMV
)

func (w Workload) String() string {
	switch w {
	case Bitonic:
		return "bitonic"
	case FFT:
		return "fft"
	case SpMV:
		return "spmv"
	}
	return "workload(?)"
}

// ParseWorkload maps a workload name ("bitonic", "fft", "spmv") back to
// its Workload, as used by the emxd request API and CLI flags.
func ParseWorkload(name string) (Workload, error) {
	for _, w := range []Workload{Bitonic, FFT, SpMV} {
		if w.String() == name {
			return w, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown workload %q (want bitonic, fft, or spmv)", name)
}

// K and M are the element-count units of the paper's size labels.
const (
	K = 1 << 10
	M = 1 << 20
)

// DefaultScale divides the paper's problem sizes for simulation. 512
// keeps the largest point (8M) at 16K simulated elements — minutes of
// host time for a full figure on one core.
const DefaultScale = 512

// DefaultThreads is the x-axis of every figure: the paper sweeps 1-16
// threads per processor.
var DefaultThreads = []int{1, 2, 4, 6, 8, 10, 12, 14, 16}

// DefaultSizes returns the paper's data sizes for a machine size:
// 128K-2M elements for P=16 (Figure 6a/6c) and 512K-8M for P=64
// (Figure 6b/6d), largest first as in the paper's legends.
func DefaultSizes(p int) []int {
	if p <= 16 {
		return []int{2 * M, 1 * M, 512 * K, 256 * K, 128 * K}
	}
	return []int{8 * M, 4 * M, 2 * M, 1 * M, 512 * K}
}

// SizeLabel formats an element count the way the paper's legends do.
func SizeLabel(n int) string {
	switch {
	case n >= M:
		return fmt.Sprintf("%gM", float64(n)/M)
	case n >= K:
		return fmt.Sprintf("%gK", float64(n)/K)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// PointSpec is one simulation to run.
type PointSpec struct {
	Workload  Workload
	P         int
	SimN      int // elements actually simulated
	PaperN    int // paper-equivalent size this point stands for
	H         int
	Mode      proc.ServiceMode
	BlockRead bool // bitonic only: block-read ablation
	ReplyHigh bool // resume-first scheduling: replies use the high-priority FIFO
	Seed      int64
	Verify    bool // run the workload's self-check (off in sweeps)

	// Shards is the host-side engine-shard count for this point: 0
	// selects automatically from the machine size and GOMAXPROCS, 1
	// forces the single engine, >1 forces that many shards. Sharding is
	// pure host parallelism with byte-identical results, so it is
	// excluded from Identity and Key — a sharded run shares its cache
	// entry with the single-engine run.
	Shards int
}

// autoShards picks the shard count for Shards == 0: big machines with
// enough simulated work per cycle to feed several host cores run on 4
// shards; everything else stays on the single engine (small runs pay
// more in round barriers than they win back, and sharding requires a
// power-of-two P).
func autoShards(p, simN int) int {
	if runtime.GOMAXPROCS(0) < 4 || p < 64 || p&(p-1) != 0 || simN*p < 1<<20 {
		return 1
	}
	return 4
}

// config builds the machine configuration a point runs on; it is the
// single source of truth for both execution and the point's identity.
func (ps PointSpec) config() core.Config {
	cfg := core.DefaultConfig(ps.P)
	cfg.Proc.Mode = ps.Mode
	if ps.ReplyHigh {
		cfg.Proc.ReplyPrio = thread.High
	}
	cfg.MaxCycles = sim.Time(1) << 40
	cfg.Shards = ps.Shards
	if cfg.Shards == 0 {
		cfg.Shards = autoShards(ps.P, ps.SimN)
	}
	return cfg
}

// Identity canonicalizes the point into the content-addressed run
// identity the labd scheduler caches and coalesces on. scale records
// the scale-down factor that produced SimN (0 when requested directly).
func (ps PointSpec) Identity(scale int) core.RunIdentity {
	sched := "fifo"
	if ps.ReplyHigh {
		sched = "resume-first"
	}
	return core.RunIdentity{
		Workload:  ps.Workload.String(),
		P:         ps.P,
		H:         ps.H,
		SimN:      ps.SimN,
		PaperN:    ps.PaperN,
		Scale:     scale,
		Seed:      ps.Seed,
		Service:   ps.Mode.String(),
		Sched:     sched,
		BlockRead: ps.BlockRead,
		Verify:    ps.Verify,
		Config:    ps.config().Fingerprint(),
	}
}

// Key returns the point's content hash — its cache key.
func (ps PointSpec) Key(scale int) string { return ps.Identity(scale).Hash() }

// Label formats the point's identity for humans — profile reports and
// trace process names.
func (ps PointSpec) Label() string {
	n := ps.PaperN
	if n == 0 {
		n = ps.SimN
	}
	return fmt.Sprintf("%s P=%d n=%s h=%d %s", ps.Workload, ps.P, SizeLabel(n), ps.H, ps.Mode)
}

// RunPoint executes one simulation point. Besides the simulated
// measurements it records the host wall-clock time the point took
// (Run.HostElapsedSecs) — the numerator of the simulator's
// cycles-per-second throughput, tracked in BENCH_*.json. Host timing is
// observational only: it never feeds back into the simulation, so
// results stay bit-identical across hosts.
func RunPoint(ps PointSpec) (*metrics.Run, error) { return runPoint(ps, nil) }

// runPoint is RunPoint with an optional tracer attached to the machine.
// The tracer only observes (it never charges cycles), so observed and
// unobserved executions of the same point are cycle-identical; it is
// also deliberately not part of the point's identity or cache key.
func runPoint(ps PointSpec, tr *obs.Tracer) (*metrics.Run, error) {
	cfg := ps.config()
	start := time.Now() //emx:hostclock host throughput only, never simulated state
	var (
		run *metrics.Run
		err error
	)
	switch ps.Workload {
	case Bitonic:
		run, err = bitonic.Run(cfg, bitonic.Params{
			N: ps.SimN, H: ps.H, UseBlockRead: ps.BlockRead,
			Seed: ps.Seed, SkipVerify: !ps.Verify, Obs: tr,
		})
	case FFT:
		// Verification needs the full transform (AllStages); measurement
		// runs use only the first log2(P) iterations, as the paper does.
		run, err = fft.Run(cfg, fft.Params{
			N: ps.SimN, H: ps.H, Seed: ps.Seed,
			AllStages: ps.Verify, SkipVerify: !ps.Verify, Obs: tr,
		})
	case SpMV:
		run, err = spmv.Run(cfg, spmv.Params{
			N: ps.SimN, H: ps.H, Iterations: 2,
			Seed: ps.Seed, SkipVerify: !ps.Verify, Obs: tr,
		})
	default:
		return nil, fmt.Errorf("harness: unknown workload %d", ps.Workload)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %v P=%d N=%d H=%d: %w", ps.Workload, ps.P, ps.SimN, ps.H, err)
	}
	run.PaperN = ps.PaperN
	run.HostElapsedSecs = time.Since(start).Seconds() //emx:hostclock
	return run, nil
}

// Sweep describes a (size x thread-count) grid for one workload and
// machine size — the raw material of one Figure 6/7 panel and, at
// selected sizes, the Figure 8/9 panels.
type Sweep struct {
	Workload   Workload
	P          int
	PaperSizes []int
	Scale      int
	Threads    []int
	Mode       proc.ServiceMode
	BlockRead  bool
	ReplyHigh  bool
	Seed       int64
	Shards     int // per-point engine shards (0: auto; see PointSpec.Shards)

	// Observe, when non-nil, attaches a fresh tracer to every executed
	// point and collects the resulting cycle-accounting profiles. Points
	// served from an executor's cache are not re-executed and therefore
	// contribute no profile — profiled sweeps should run with caching off.
	Observe *ProfileCollector `json:"-"`
}

// SweepResult holds the grid of runs: Runs[sizeIdx][threadIdx].
type SweepResult struct {
	Sweep
	Runs [][]*metrics.Run
}

// SimSize returns the simulated element count for a paper size, clamped
// so every PE keeps at least max(Threads) elements.
func (s Sweep) SimSize(paperN int) int {
	n := paperN / s.Scale
	if n < 1 {
		n = 1
	}
	minN := s.P
	for _, h := range s.Threads {
		if s.P*h > minN {
			minN = s.P * h
		}
	}
	for n < minN {
		n *= 2
	}
	return n
}

// Executor runs one simulation point identified by a canonical content
// key, returning how the result was obtained. *labd.Scheduler is the
// production implementation; both the CLI and the emxd daemon execute
// sweeps through it, sharing one scheduling/caching path.
type Executor interface {
	Do(key string, fn func() (*metrics.Run, error)) (*metrics.Run, labd.Source, error)
}

// withDefaults fills the sweep's zero-value knobs.
func (s Sweep) withDefaults() Sweep {
	if s.Scale <= 0 {
		s.Scale = DefaultScale
	}
	if len(s.Threads) == 0 {
		s.Threads = DefaultThreads
	}
	if len(s.PaperSizes) == 0 {
		s.PaperSizes = DefaultSizes(s.P)
	}
	return s
}

// Point returns the fully resolved spec for one grid cell.
func (s Sweep) Point(si, hi int) PointSpec {
	paperN := s.PaperSizes[si]
	return PointSpec{
		Workload:  s.Workload,
		P:         s.P,
		SimN:      s.SimSize(paperN),
		PaperN:    paperN,
		H:         s.Threads[hi],
		Mode:      s.Mode,
		BlockRead: s.BlockRead,
		ReplyHigh: s.ReplyHigh,
		Seed:      s.Seed,
		Shards:    s.Shards,
	}
}

// Run executes the sweep on a transient labd scheduler with the given
// worker bound (<=0 means GOMAXPROCS). Each grid point is an
// independent deterministic simulation, so results do not depend on
// scheduling.
func (s Sweep) Run(workers int) (*SweepResult, error) {
	sched := labd.New(labd.Options{Workers: workers, NoCache: true})
	defer sched.Close()
	return s.RunOn(sched)
}

// RunOn executes the sweep through an Executor — the shared execution
// path of cmd/emxbench and the emxd daemon. Every grid point is
// submitted concurrently under its content key, so the executor's
// worker pool bounds parallelism and its cache/coalescing deduplicate
// points shared with other figures.
func (s Sweep) RunOn(exec Executor) (*SweepResult, error) {
	s = s.withDefaults()
	res := &SweepResult{Sweep: s, Runs: make([][]*metrics.Run, len(s.PaperSizes))}
	for i := range res.Runs {
		res.Runs[i] = make([]*metrics.Run, len(s.Threads))
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for si := range s.PaperSizes {
		for hi := range s.Threads {
			wg.Add(1)
			go func(si, hi int) {
				defer wg.Done()
				ps := s.Point(si, hi)
				run, _, err := exec.Do(ps.Key(s.Scale), func() (*metrics.Run, error) {
					if s.Observe != nil {
						return s.Observe.RunPointObserved(ps, s.Scale)
					}
					return RunPoint(ps)
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				res.Runs[si][hi] = run
			}(si, hi)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// ThreadIndex returns the position of thread count h, or -1.
func (r *SweepResult) ThreadIndex(h int) int {
	for i, t := range r.Threads {
		if t == h {
			return i
		}
	}
	return -1
}

// SizeIndex returns the position of the paper size n, or -1.
func (r *SweepResult) SizeIndex(paperN int) int {
	for i, n := range r.PaperSizes {
		if n == paperN {
			return i
		}
	}
	return -1
}
