package harness

import (
	"testing"

	"emx/internal/metrics"
)

// TestPaperClaims is the reproduction's acceptance test: the paper's
// headline results, asserted on one small sweep per workload.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	sweep := func(w Workload) *SweepResult {
		res, err := Sweep{
			Workload:   w,
			P:          16,
			PaperSizes: []int{512 * K},
			Scale:      256, // 2K simulated elements
			Threads:    []int{1, 2, 4, 8, 16},
			Seed:       1,
		}.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sort := sweep(Bitonic)
	fft := sweep(FFT)

	comm := func(r *SweepResult, h int) float64 {
		return r.Runs[0][r.ThreadIndex(h)].MeanCommTime()
	}
	eff := func(r *SweepResult, h int) float64 {
		return metrics.Efficiency(r.Runs[0][0], r.Runs[0][r.ThreadIndex(h)])
	}

	// Claim 1 (Fig 6): communication time is minimal at 2-4 threads —
	// multithreading cuts it sharply vs h=1 for both problems.
	for _, r := range []*SweepResult{sort, fft} {
		if comm(r, 4) >= comm(r, 1)/2 {
			t.Errorf("%v: no comm valley: h1=%v h4=%v", r.Workload, comm(r, 1), comm(r, 4))
		}
	}

	// Claim 2 (Fig 7): FFT overlaps the vast majority of its communication
	// at 2-4 threads; sorting overlaps substantially less — it lacks
	// thread computation parallelism (the paper reports >95% vs ~35%).
	if e := eff(fft, 4); e < 90 {
		t.Errorf("FFT overlap at h=4 = %.1f%%, want >90%%", e)
	}
	if es, ef := eff(sort, 4), eff(fft, 4); es >= ef {
		t.Errorf("sorting overlap (%.1f%%) not below FFT (%.1f%%)", es, ef)
	}
	if e := eff(sort, 4); e < 35 {
		t.Errorf("sorting overlap at h=4 = %.1f%%, want over 35%% (the paper's bound)", e)
	}

	// Claim 3: sorting's absolute communication time exceeds FFT's at the
	// optimum ("sorting has much higher communication time than FFT").
	if comm(sort, 4) <= comm(fft, 4) {
		t.Errorf("sorting comm (%v) not above FFT comm (%v) at h=4", comm(sort, 4), comm(fft, 4))
	}

	// Claim 4 (Fig 9): thread synchronization exists for sorting and not
	// for FFT ("no thread synchronization is required for FFT").
	if got := sort.Runs[0][sort.ThreadIndex(4)].MeanSwitches(metrics.SwitchThreadSync); got == 0 {
		t.Error("sorting shows no thread-sync switches at h=4")
	}
	if got := fft.Runs[0][fft.ThreadIndex(4)].MeanSwitches(metrics.SwitchThreadSync); got != 0 {
		t.Errorf("FFT shows %v thread-sync switches", got)
	}

	// Claim 5 (Fig 9): remote-read switches are one per remote read and,
	// for FFT, exactly 2 * n/P * log2(P) regardless of h.
	for _, h := range []int{1, 4, 16} {
		run := fft.Runs[0][fft.ThreadIndex(h)]
		bl := fft.SimSize(512*K) / 16
		want := float64(2 * bl * 4) // log2(16) = 4
		if got := run.MeanSwitches(metrics.SwitchRemoteRead); got != want {
			t.Errorf("FFT h=%d remote-read switches = %v, want %v", h, got, want)
		}
	}

	// Claim 6 (Fig 9): iteration-sync switches grow with the thread count.
	for _, r := range []*SweepResult{sort, fft} {
		lo := r.Runs[0][r.ThreadIndex(2)].MeanSwitches(metrics.SwitchIterSync)
		hi := r.Runs[0][r.ThreadIndex(16)].MeanSwitches(metrics.SwitchIterSync)
		if hi <= lo {
			t.Errorf("%v: iter-sync switches flat: h2=%v h16=%v", r.Workload, lo, hi)
		}
	}

	// Claim 7 (Fig 8): sorting is communication-heavy at h=1 — comm is the
	// same order as computation (at report scale, scale 512 and below, it
	// exceeds computation; at this test's tiny size the one-off local sort
	// weighs relatively more), and FFT is compute-dominated.
	sb := sort.Runs[0][0].TotalBreakdown()
	if float64(sb.Comm) < 0.6*float64(sb.Compute) {
		t.Errorf("sorting h=1 not comm-heavy: %+v", sb)
	}
	fb := fft.Runs[0][fft.ThreadIndex(4)].TotalBreakdown()
	if fb.Compute <= fb.Comm+fb.Switch {
		t.Errorf("FFT h=4 not compute-dominated: %+v", fb)
	}
}
