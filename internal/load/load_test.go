package load

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestGeneratorPureFunctionOfSeedAndIndex(t *testing.T) {
	space := DefaultSpace(1<<20, 1)
	g1, err := NewGenerator(42, space, DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(42, space, DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	// Same (seed, i) must derive identical requests; out-of-order and
	// repeated derivation must not matter.
	for _, i := range []uint64{17, 0, 5, 17, 3} {
		a, b := g1.Request(i), g2.Request(i)
		if a.Endpoint != b.Endpoint || a.Key != b.Key || string(a.Body) != string(b.Body) {
			t.Fatalf("Request(%d) not reproducible:\n%+v\n%+v", i, a, b)
		}
	}
	g3, err := NewGenerator(43, space, DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := uint64(0); i < 16; i++ {
		if string(g1.Request(i).Body) == string(g3.Request(i).Body) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestGeneratorRequestsAreValid(t *testing.T) {
	g, err := NewGenerator(7, DefaultSpace(512, 3), Mix{Run: 1, Figure: 1, Profile: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := uint64(0); i < 200; i++ {
		req := g.Request(i) // panics on an invalid derivation
		if req.Key == "" || len(req.Body) == 0 {
			t.Fatalf("request %d is empty: %+v", i, req)
		}
		seen[req.Endpoint] = true
		var m map[string]any
		if err := json.Unmarshal(req.Body, &m); err != nil {
			t.Fatalf("request %d body is not JSON: %v", i, err)
		}
	}
	for _, ep := range []string{"/v1/run", "/v1/figure", "/v1/profile"} {
		if !seen[ep] {
			t.Errorf("200 requests with a uniform mix never hit %s", ep)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	base := DefaultSpace(1<<20, 1)
	bad := base
	bad.Scale = 1000 // not a power of two
	if _, err := NewGenerator(1, bad, DefaultMix); err == nil {
		t.Error("non-power-of-two scale accepted")
	}
	bad = base
	bad.Ps = []int{3}
	if _, err := NewGenerator(1, bad, DefaultMix); err == nil {
		t.Error("non-power-of-two P accepted")
	}
	bad = base
	bad.Workloads = []string{"quicksort"}
	if _, err := NewGenerator(1, bad, DefaultMix); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = base
	bad.Panels = []string{"99z"}
	if _, err := NewGenerator(1, bad, DefaultMix); err == nil {
		t.Error("unknown panel accepted")
	}
	if _, err := NewGenerator(1, base, Mix{}); err == nil {
		t.Error("empty mix accepted")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("run=8,figure=1,profile=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Run: 8, Figure: 1, Profile: 1}) {
		t.Fatalf("got %+v", m)
	}
	m, err = ParseMix("run=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Run: 1}) {
		t.Fatalf("got %+v", m)
	}
	for _, bad := range []string{"", "run", "run=x", "jog=1", "run=-2", "run=0,figure=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	steps, err := ParseSchedule("restart:1@40,kill:1@10,delay:2@5:50ms")
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Action: "delay", Node: 2, AtRequest: 5, DelayMS: 50},
		{Action: "kill", Node: 1, AtRequest: 10},
		{Action: "restart", Node: 1, AtRequest: 40},
	}
	if !reflect.DeepEqual(steps, want) {
		t.Fatalf("compact parse:\ngot  %+v\nwant %+v", steps, want)
	}

	jsonSteps, err := ParseSchedule(`[{"action":"kill","node":0,"at_request":3}]`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jsonSteps, []Step{{Action: "kill", Node: 0, AtRequest: 3}}) {
		t.Fatalf("JSON parse: got %+v", jsonSteps)
	}

	// Owner-targeted steps: "owner" in the node slot resolves the victim
	// from the request's routing key when the step fires.
	ownerSteps, err := ParseSchedule("kill:owner@10")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ownerSteps, []Step{{Action: "kill", Owner: true, AtRequest: 10}}) {
		t.Fatalf("owner parse: got %+v", ownerSteps)
	}
	if got := ownerSteps[0].String(); got != "kill:owner@10" {
		t.Fatalf("owner step renders as %q", got)
	}
	jsonOwner, err := ParseSchedule(`[{"action":"kill","owner":true,"at_request":7}]`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jsonOwner, []Step{{Action: "kill", Owner: true, AtRequest: 7}}) {
		t.Fatalf("JSON owner parse: got %+v", jsonOwner)
	}

	if steps, err := ParseSchedule(""); err != nil || steps != nil {
		t.Fatalf("empty schedule: got %v, %v", steps, err)
	}
	for _, bad := range []string{"kill", "kill:x@1", "kill:1@x", "explode:1@1", "delay:1@1", "delay:1@1:xs", "kill:-1@1"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestCollectorDigestOrderIndependent(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	bodies := [][]byte{
		[]byte(`{"key":"k1","source":"executed","p":4}`),
		[]byte(`{"key":"k2","source":"cache","p":8}`),
		[]byte(`{"key":"k3","source":"coalesced","p":16}`),
	}
	for _, body := range bodies {
		a.Record("/v1/run", 200, body, 0.01, nil)
	}
	for i := len(bodies) - 1; i >= 0; i-- {
		b.Record("/v1/run", 200, bodies[i], 0.02, nil)
	}
	da := a.Traffic().Endpoints["/v1/run"].Digest
	db := b.Traffic().Endpoints["/v1/run"].Digest
	if da != db {
		t.Fatalf("digest depends on completion order: %s vs %s", da, db)
	}

	// The volatile source field must not affect the digest...
	c := NewCollector()
	c.Record("/v1/run", 200, []byte(`{"key":"k1","source":"cache","p":4}`), 0.01, nil)
	c.Record("/v1/run", 200, []byte(`{"key":"k2","source":"executed","p":8}`), 0.01, nil)
	c.Record("/v1/run", 200, []byte(`{"key":"k3","source":"executed","p":16}`), 0.01, nil)
	if d := c.Traffic().Endpoints["/v1/run"].Digest; d != da {
		t.Fatalf("digest saw the source field: %s vs %s", d, da)
	}
	// ...but real payload differences must.
	d := NewCollector()
	d.Record("/v1/run", 200, []byte(`{"key":"k1","source":"executed","p":64}`), 0.01, nil)
	d.Record("/v1/run", 200, bodies[1], 0.01, nil)
	d.Record("/v1/run", 200, bodies[2], 0.01, nil)
	if dd := d.Traffic().Endpoints["/v1/run"].Digest; dd == da {
		t.Fatal("digest missed a payload difference")
	}
}

func TestCollectorAccounting(t *testing.T) {
	c := NewCollector()
	c.Record("/v1/run", 200, []byte(`{}`), 0.01, nil)
	c.Record("/v1/run", 503, nil, 0.001, nil)
	c.Record("/v1/run", 400, []byte(`{"error":"x"}`), 0.001, nil)
	c.Record("/v1/figure", 0, nil, 1.5, errNetwork)
	tr := c.Traffic()
	if tr.Issued != 4 || tr.OK != 1 || tr.Errors != 3 || tr.Shed != 1 {
		t.Fatalf("totals: %+v", tr)
	}
	run := tr.Endpoints["/v1/run"]
	if run.Statuses["200"] != 1 || run.Statuses["503"] != 1 || run.Statuses["400"] != 1 {
		t.Fatalf("run statuses: %+v", run.Statuses)
	}
	fig := tr.Endpoints["/v1/figure"]
	if fig.Errors != 1 || fig.Statuses["0"] != 1 {
		t.Fatalf("figure statuses: %+v", fig)
	}
	slo := c.SLO()
	if got := slo["/v1/run"].ErrorRate; got != 2.0/3.0 {
		t.Fatalf("run error rate: %v", got)
	}
	if slo["/v1/run"].P99Seconds <= 0 {
		t.Fatal("P99 missing from SLO row")
	}
}

var errNetwork = errNet{}

type errNet struct{}

func (errNet) Error() string { return "connection refused" }
