package load

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"

	"emx/internal/cluster"
	"emx/internal/metrics"
)

// Schema identifies the report format.
const Schema = "emxload/v1"

// Report is one load run's result. Everything outside Host is a pure
// function of (seed, options, schedule) when the target serves every
// request — byte-for-byte reproducible across hosts, client counts,
// and GOMAXPROCS. Everything timing-dependent (wall time, rates,
// latency quantiles, failover counters, ramp rows) lives under the
// single Host key, so callers can compare reports modulo "host".
type Report struct {
	Schema  string       `json:"schema"`
	Mode    string       `json:"mode"`
	Seed    int64        `json:"seed"`
	Config  Config       `json:"config"`
	Traffic Traffic      `json:"traffic"`
	Chaos   *ChaosReport `json:"chaos,omitempty"`
	Host    *Host        `json:"host,omitempty"`
}

// Config echoes the run's knobs.
type Config struct {
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients,omitempty"`
	RateRPS    float64 `json:"rate_rps,omitempty"`
	Mix        string  `json:"mix"`
	Scale      int     `json:"scale"`
	RunSeed    int64   `json:"run_seed"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
	Nodes      int     `json:"nodes"`

	RampStartRPS float64 `json:"ramp_start_rps,omitempty"`
	RampStepRPS  float64 `json:"ramp_step_rps,omitempty"`
	RampSteps    int     `json:"ramp_steps,omitempty"`
}

// Traffic is the deterministic accounting: what was issued and what
// came back, plus an order-independent digest of the response bodies.
type Traffic struct {
	Issued    uint64                      `json:"issued"`
	OK        uint64                      `json:"ok"`
	Errors    uint64                      `json:"errors"`
	Shed      uint64                      `json:"shed"`
	Endpoints map[string]*EndpointTraffic `json:"endpoints"`
}

// EndpointTraffic is one endpoint's slice of the traffic block. Digest
// is a commutative combination (sum and xor) of FNV-64a hashes over
// canonicalized 2xx response bodies: the same response multiset yields
// the same digest in any completion order.
type EndpointTraffic struct {
	Issued   uint64            `json:"issued"`
	OK       uint64            `json:"ok"`
	Errors   uint64            `json:"errors"`
	Shed     uint64            `json:"shed"`
	Statuses map[string]uint64 `json:"statuses"`
	Digest   string            `json:"digest"`
}

// ChaosReport echoes the fault schedule and what fired.
type ChaosReport struct {
	Schedule []Step   `json:"schedule"`
	Fired    int      `json:"fired"`
	Errors   []string `json:"errors,omitempty"`
}

// SLORow is one endpoint's latency/error SLO summary (host-timing
// dependent, so it lives under Host).
type SLORow struct {
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	ErrorRate  float64 `json:"error_rate"`
}

// ClientStats mirrors cluster.Stats with JSON names, reporting what
// the failover machinery did during the run (deltas, not lifetime).
type ClientStats struct {
	Attempts       uint64 `json:"attempts"`
	Retries        uint64 `json:"retries"`
	Failovers      uint64 `json:"failovers"`
	Hedges         uint64 `json:"hedges"`
	HedgeWins      uint64 `json:"hedge_wins"`
	HedgeLosses    uint64 `json:"hedge_losses"`
	LocalFallbacks uint64 `json:"local_fallbacks"`
}

func clientStats(s cluster.Stats) ClientStats {
	return ClientStats{
		Attempts:       s.Attempts,
		Retries:        s.Retries,
		Failovers:      s.Failovers,
		Hedges:         s.Hedges,
		HedgeWins:      s.HedgeWins,
		HedgeLosses:    s.HedgeLosses,
		LocalFallbacks: s.LocalFallbacks,
	}
}

// RampRow is one offered-load step of a ramp run.
type RampRow struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P99Seconds  float64 `json:"p99_seconds"`
	Errors      uint64  `json:"errors"`
}

// ReplicationStats sums the lab nodes' cache-replication counters
// (the emxd_cache_replica_* series). Present only when the lab ran
// with -replicas > 1.
type ReplicationStats struct {
	Pushes           uint64 `json:"pushes"`
	PushErrors       uint64 `json:"push_errors"`
	Stores           uint64 `json:"stores"`
	Fills            uint64 `json:"fills"`
	FillMisses       uint64 `json:"fill_misses"`
	DigestMismatches uint64 `json:"digest_mismatches"`
	QueueDrops       uint64 `json:"queue_drops"`
	Migrated         uint64 `json:"migrated"`
}

// Host gathers every timing-dependent observation.
type Host struct {
	WallSeconds float64           `json:"wall_seconds"`
	AchievedRPS float64           `json:"achieved_rps"`
	SLO         map[string]SLORow `json:"slo"`
	Client      ClientStats       `json:"client"`
	Replication *ReplicationStats `json:"replication,omitempty"`
	Ramp        []RampRow         `json:"ramp,omitempty"`
	// KneeRPS is the last offered rate the target achieved ≥90% of.
	// Saturated disambiguates its zero value: in ramp mode it is always
	// present, and false means no step qualified (KneeRPS 0 is "no
	// knee found", not "knee at rate 0").
	KneeRPS   float64 `json:"knee_rps,omitempty"`
	Saturated *bool   `json:"saturated,omitempty"`
}

// WithoutHost returns a copy with the Host block removed — the
// byte-comparable part of the report.
func (r *Report) WithoutHost() *Report {
	cp := *r
	cp.Host = nil
	return &cp
}

// WriteJSON writes the report as indented JSON. Map keys marshal
// sorted, struct fields in declaration order: deterministic bytes for
// deterministic contents.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteText writes a human-oriented report: the deterministic traffic
// accounting first, host timing after.
func (r *Report) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "emxload %s seed=%d mix=%s scale=%d nodes=%d\n",
		r.Mode, r.Seed, r.Config.Mix, r.Config.Scale, r.Config.Nodes)
	fmt.Fprintf(w, "traffic: issued=%d ok=%d errors=%d shed=%d\n",
		r.Traffic.Issued, r.Traffic.OK, r.Traffic.Errors, r.Traffic.Shed)
	for _, ep := range sortedKeys(r.Traffic.Endpoints) {
		t := r.Traffic.Endpoints[ep]
		fmt.Fprintf(w, "  %-12s issued=%d ok=%d errors=%d shed=%d digest=%s\n",
			ep, t.Issued, t.OK, t.Errors, t.Shed, t.Digest)
	}
	if r.Chaos != nil {
		fmt.Fprintf(w, "chaos: %d steps, %d fired\n", len(r.Chaos.Schedule), r.Chaos.Fired)
		for _, st := range r.Chaos.Schedule {
			fmt.Fprintf(w, "  %s\n", st)
		}
	}
	if r.Host == nil {
		return nil
	}
	fmt.Fprintf(w, "host: wall=%.3fs achieved=%.1f req/s\n", r.Host.WallSeconds, r.Host.AchievedRPS)
	for _, ep := range sortedKeys(r.Host.SLO) {
		s := r.Host.SLO[ep]
		fmt.Fprintf(w, "  %-12s p50=%.4fs p95=%.4fs p99=%.4fs err=%.4f\n",
			ep, s.P50Seconds, s.P95Seconds, s.P99Seconds, s.ErrorRate)
	}
	c := r.Host.Client
	fmt.Fprintf(w, "  client: attempts=%d retries=%d failovers=%d hedges=%d (won=%d lost=%d) local=%d\n",
		c.Attempts, c.Retries, c.Failovers, c.Hedges, c.HedgeWins, c.HedgeLosses, c.LocalFallbacks)
	if rp := r.Host.Replication; rp != nil {
		fmt.Fprintf(w, "  replication: pushes=%d (errors=%d) stores=%d fills=%d (misses=%d) mismatches=%d drops=%d migrated=%d\n",
			rp.Pushes, rp.PushErrors, rp.Stores, rp.Fills, rp.FillMisses, rp.DigestMismatches, rp.QueueDrops, rp.Migrated)
	}
	for _, row := range r.Host.Ramp {
		fmt.Fprintf(w, "  ramp: offered=%.1f achieved=%.1f p99=%.4fs errors=%d\n",
			row.OfferedRPS, row.AchievedRPS, row.P99Seconds, row.Errors)
	}
	switch {
	case r.Host.KneeRPS > 0:
		fmt.Fprintf(w, "  knee: %.1f req/s\n", r.Host.KneeRPS)
	case r.Host.Saturated != nil && !*r.Host.Saturated:
		fmt.Fprintf(w, "  knee: none (no offered rate achieved 90%%)\n")
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m { //emx:orderinvariant collecting keys to sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Collector aggregates per-request outcomes into the Traffic and SLO
// blocks. Safe for concurrent Record calls.
type Collector struct {
	mu  sync.Mutex
	eps map[string]*epAgg
}

type epAgg struct {
	issued, ok, errs, shed uint64
	statuses               map[int]uint64
	sum, xor               uint64
	hist                   *metrics.Histogram
}

// NewCollector builds an empty collector.
func NewCollector() *Collector {
	return &Collector{eps: map[string]*epAgg{}}
}

// Record accounts one completed request. status 0 (with err non-nil)
// means the request failed below HTTP — every candidate node and
// retry exhausted. seconds is the client-observed latency.
func (c *Collector) Record(endpoint string, status int, body []byte, seconds float64, err error) {
	h := uint64(0)
	if err == nil && status >= 200 && status < 300 {
		h = bodyHash(endpoint, body)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := c.eps[endpoint]
	if agg == nil {
		agg = &epAgg{
			statuses: map[int]uint64{},
			hist:     metrics.NewHistogram(metrics.DefLatencyBuckets),
		}
		c.eps[endpoint] = agg
	}
	agg.issued++
	agg.statuses[status]++
	agg.hist.Observe(seconds)
	switch {
	case err != nil || status >= 400:
		agg.errs++
		if status == 503 {
			agg.shed++
		}
	default:
		agg.ok++
		agg.sum += h
		agg.xor ^= h
	}
}

// bodyHash canonicalizes a 2xx response body and hashes it. Run
// responses carry a "source" field (executed/cache/coalesced) that
// legitimately varies with timing; it is stripped before hashing so
// the digest sees only the simulation's deterministic content.
func bodyHash(endpoint string, body []byte) uint64 {
	if endpoint == "/v1/run" {
		var m map[string]any
		if err := json.Unmarshal(body, &m); err == nil {
			delete(m, "source")
			if b, err := json.Marshal(m); err == nil { // sorted keys
				body = b
			}
		}
	}
	h := fnv.New64a()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(body)
	return h.Sum64()
}

// Traffic assembles the deterministic traffic block.
func (c *Collector) Traffic() Traffic {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Traffic{Endpoints: map[string]*EndpointTraffic{}}
	for _, ep := range sortedKeys(c.eps) {
		agg := c.eps[ep]
		t := &EndpointTraffic{
			Issued:   agg.issued,
			OK:       agg.ok,
			Errors:   agg.errs,
			Shed:     agg.shed,
			Statuses: map[string]uint64{},
			Digest:   fmt.Sprintf("%016x-%016x", agg.sum, agg.xor),
		}
		for code, n := range agg.statuses { //emx:orderinvariant map[string] marshals sorted
			t.Statuses[strconv.Itoa(code)] = n
		}
		out.Endpoints[ep] = t
		out.Issued += agg.issued
		out.OK += agg.ok
		out.Errors += agg.errs
		out.Shed += agg.shed
	}
	return out
}

// SLO assembles the per-endpoint latency/error summary from the
// collector's histograms.
func (c *Collector) SLO() map[string]SLORow {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := map[string]SLORow{}
	for _, ep := range sortedKeys(c.eps) {
		agg := c.eps[ep]
		row := SLORow{
			P50Seconds: agg.hist.Quantile(0.50),
			P95Seconds: agg.hist.Quantile(0.95),
			P99Seconds: agg.hist.Quantile(0.99),
		}
		if agg.issued > 0 {
			row.ErrorRate = float64(agg.errs) / float64(agg.issued)
		}
		out[ep] = row
	}
	return out
}

// Counts returns total issued and errored requests so far.
func (c *Collector) Counts() (issued, errs uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, agg := range c.eps { //emx:orderinvariant summing counters
		issued += agg.issued
		errs += agg.errs
	}
	return issued, errs
}
