package load

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"emx/internal/labd/service"
)

// faultGate wraps a node's handler with an injectable fault mode:
// pass (normal), delay (added latency before serving), or reject
// (immediate 503 with backpressure headers). The gate sits in front of
// the real service handler, so delayed and rejected requests exercise
// exactly the client paths a slow or saturated node would.
type faultGate struct {
	h http.Handler

	mu    sync.Mutex
	mode  string // "pass" | "delay" | "reject"
	delay time.Duration
}

func (g *faultGate) set(mode string, delay time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mode, g.delay = mode, delay
}

func (g *faultGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	mode, delay := g.mode, g.delay
	g.mu.Unlock()
	switch mode {
	case "delay":
		time.Sleep(delay) //emx:hostclock fault injection: added node latency
	case "reject":
		w.Header().Set("Retry-After", "1")
		http.Error(w, "load: injected overload", http.StatusServiceUnavailable)
		return
	}
	g.h.ServeHTTP(w, r)
}

// LabNode is one in-process emxd node: a real service.Server behind a
// real TCP listener, so killing it produces genuine connection
// refusals and restarting it reuses the same address. The server (and
// its caches) survives kill/restart — only the listener dies, which is
// the failure mode a crashed-and-restarted process approximates for a
// load test.
type LabNode struct {
	srv  *service.Server
	gate *faultGate

	mu      sync.Mutex
	addr    string
	hsrv    *http.Server
	ln      net.Listener
	running bool
}

// URL returns the node's base URL (stable across kill/restart).
func (n *LabNode) URL() string { return "http://" + n.addr }

// Kill closes the node's listener and in-flight connections. Requests
// routed to it fail with connection errors until Restart.
func (n *LabNode) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.running {
		return
	}
	n.running = false
	n.hsrv.Close()
}

// Restart re-listens on the node's recorded address. The old socket
// may linger briefly after Kill, so binding retries for a moment.
func (n *LabNode) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.running {
		return nil
	}
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) //emx:hostclock rebind retry after kill
	}
	if err != nil {
		return fmt.Errorf("load: restarting node on %s: %w", n.addr, err)
	}
	n.serveOn(ln)
	return nil
}

// serveOn starts an http.Server on ln. Callers hold n.mu (or own the
// node exclusively during construction).
func (n *LabNode) serveOn(ln net.Listener) {
	n.ln = ln
	n.hsrv = &http.Server{Handler: n.gate}
	n.running = true
	go n.hsrv.Serve(ln)
}

// Delay injects added latency before every response.
func (n *LabNode) Delay(d time.Duration) { n.gate.set("delay", d) }

// Reject makes the node answer 503 + Retry-After to everything.
func (n *LabNode) Reject() { n.gate.set("reject", 0) }

// Clear removes any injected delay/reject fault.
func (n *LabNode) Clear() { n.gate.set("pass", 0) }

// Lab is an in-process cluster of emxd nodes for load and chaos
// testing: real listeners, real HTTP, no external processes.
type Lab struct {
	nodes    []*LabNode
	replicas int
}

// NewLab starts n nodes, each with its own scheduler, on loopback
// listeners. Close the lab to stop them.
//
// When opts.Replication.Replicas > 1 the nodes replicate their run
// caches to each other: every listener is bound before any server is
// built, so each node's replicator knows the full peer URL set (with
// its own URL as Self) from construction.
func NewLab(n int, opts service.Options) (*Lab, error) {
	if n < 1 {
		return nil, fmt.Errorf("load: lab needs at least 1 node, got %d", n)
	}
	l := &Lab{replicas: opts.Replication.Replicas}
	lns := make([]net.Listener, 0, n)
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range lns {
				prev.Close()
			}
			return nil, fmt.Errorf("load: listening for lab node %d: %w", i, err)
		}
		lns = append(lns, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for i, ln := range lns {
		o := opts
		if o.Replication.Replicas > 1 {
			o.Replication.Self = urls[i]
			o.Replication.Peers = urls
		}
		srv := service.New(o)
		node := &LabNode{
			srv:  srv,
			gate: &faultGate{h: srv.Handler(), mode: "pass"},
			addr: ln.Addr().String(),
		}
		node.serveOn(ln)
		l.nodes = append(l.nodes, node)
	}
	return l, nil
}

// Server exposes node i's service.Server (replication and scheduler
// introspection for tests and reports).
func (n *LabNode) Server() *service.Server { return n.srv }

// FlushReplication waits until every node's queued replica pushes have
// been attempted, or the timeout lapses (per node). Reports whether all
// queues drained.
func (l *Lab) FlushReplication(timeout time.Duration) bool {
	ok := true
	for _, n := range l.nodes {
		if !n.srv.FlushReplication(timeout) {
			ok = false
		}
	}
	return ok
}

// ReplicationStats sums every node's emxd_cache_replica_* counters,
// or nil when the lab runs unreplicated.
func (l *Lab) ReplicationStats() *ReplicationStats {
	if l.replicas <= 1 {
		return nil
	}
	out := &ReplicationStats{}
	for _, n := range l.nodes {
		snap := n.srv.Registry().Snapshot()
		out.Pushes += uint64(snap["emxd_cache_replica_pushes_total"])
		out.PushErrors += uint64(snap["emxd_cache_replica_push_errors_total"])
		out.Stores += uint64(snap["emxd_cache_replica_stores_total"])
		out.Fills += uint64(snap["emxd_cache_replica_fills_total"])
		out.FillMisses += uint64(snap["emxd_cache_replica_fill_misses_total"])
		out.DigestMismatches += uint64(snap["emxd_cache_replica_digest_mismatch_total"])
		out.QueueDrops += uint64(snap["emxd_cache_replica_queue_drops_total"])
		out.Migrated += uint64(snap["emxd_cache_replica_migrated_total"])
	}
	return out
}

// RunsExecuted sums simulator executions started across every node —
// the number replication acceptance tests diff to prove cached points
// were never recomputed.
func (l *Lab) RunsExecuted() uint64 {
	var total uint64
	for _, n := range l.nodes {
		total += n.srv.Scheduler().RunsExecuted()
	}
	return total
}

// URLs returns every node's base URL in node order.
func (l *Lab) URLs() []string {
	out := make([]string, len(l.nodes))
	for i, n := range l.nodes {
		out[i] = n.URL()
	}
	return out
}

// Node returns node i.
func (l *Lab) Node(i int) (*LabNode, error) {
	if i < 0 || i >= len(l.nodes) {
		return nil, fmt.Errorf("load: no lab node %d (have %d)", i, len(l.nodes))
	}
	return l.nodes[i], nil
}

// Len returns the node count.
func (l *Lab) Len() int { return len(l.nodes) }

// Close kills every node and stops its scheduler.
func (l *Lab) Close() {
	for _, n := range l.nodes {
		n.Kill()
		n.srv.Close()
	}
}
