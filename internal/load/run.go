package load

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"emx/internal/cluster"
	"emx/internal/metrics"
	"emx/internal/ring"
)

// Options configures one load run.
type Options struct {
	// Mode selects the workload model: "closed" (Clients concurrent
	// callers, each issuing its share of Requests back to back), "open"
	// (requests arrive on a seeded Poisson schedule at Rate regardless
	// of completions), or "ramp" (RampSteps open-loop segments of
	// Requests each at increasing offered rates, locating the
	// throughput knee).
	Mode string
	// Requests is the total request count (per segment, in ramp mode).
	Requests int
	// Clients is the closed-loop concurrency (default 4).
	Clients int
	// Rate is the open-loop offered load in requests/second (default 50).
	Rate float64
	// Deadline, when positive, stamps now+Deadline on each request so
	// the serving path's deadline propagation and shedding engage.
	Deadline time.Duration
	// Seed drives request synthesis; same seed, same traffic.
	Seed int64
	// Space and Mix shape the synthesized requests.
	Space Space
	Mix   Mix
	// Chaos is the fault schedule (requires a Lab).
	Chaos []Step
	// RampStart/RampStep/RampSteps define ramp mode's offered rates:
	// RampStart + s*RampStep for s in [0, RampSteps).
	RampStart float64
	RampStep  float64
	RampSteps int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// Probe, when set, runs after each chaos restart so the target's
	// membership can re-admit the recovered node.
	Probe func()
}

func (o *Options) defaults() error {
	switch o.Mode {
	case "":
		o.Mode = "closed"
	case "closed", "open", "ramp":
	default:
		return fmt.Errorf("load: unknown mode %q (want closed, open, or ramp)", o.Mode)
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Rate <= 0 {
		o.Rate = 50
	}
	if o.Mix.total() == 0 {
		o.Mix = DefaultMix
	}
	if o.Space.Scale == 0 {
		o.Space = DefaultSpace(o.Space.Scale, o.Space.Seed)
	}
	if o.Mode == "ramp" {
		if o.RampSteps <= 0 {
			o.RampSteps = 4
		}
		if o.RampStart <= 0 {
			o.RampStart = 10
		}
		if o.RampStep <= 0 {
			o.RampStep = o.RampStart
		}
	}
	return nil
}

// Run drives one load run against the cluster client and returns its
// report. lab may be nil when the target is external; a chaos schedule
// requires a lab (faults are injected in-process).
func Run(client *cluster.Client, lab *Lab, opts Options) (*Report, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	gen, err := NewGenerator(opts.Seed, opts.Space, opts.Mix)
	if err != nil {
		return nil, err
	}
	var ctrl *Controller
	if len(opts.Chaos) > 0 {
		if lab == nil {
			return nil, fmt.Errorf("load: chaos schedules require an in-process lab target")
		}
		ctrl, err = NewController(lab, opts.Chaos)
		if err != nil {
			return nil, err
		}
		ctrl.Probe = opts.Probe
		ctrl.Resolver = func(at uint64) (int, error) {
			urls := lab.URLs()
			owner := ring.New(urls).Owner(gen.Request(at).Key)
			for i, u := range urls {
				if u == owner {
					return i, nil
				}
			}
			return 0, fmt.Errorf("request %d's owner %q is not a lab node", at, owner)
		}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	r := &runner{client: client, gen: gen, ctrl: ctrl, opts: opts, col: NewCollector()}
	before := client.Stats()
	start := time.Now() //emx:hostclock run wall-clock measurement
	host := &Host{}
	switch opts.Mode {
	case "closed":
		logf("closed loop: %d requests across %d clients", opts.Requests, opts.Clients)
		r.closedLoop(0, opts.Requests, opts.Clients)
	case "open":
		logf("open loop: %d requests at %.1f req/s", opts.Requests, opts.Rate)
		r.openLoop(0, opts.Requests, opts.Rate)
	case "ramp":
		r.ramp(host, logf)
	}
	wall := time.Since(start).Seconds() //emx:hostclock
	after := client.Stats()

	issued, _ := r.col.Counts()
	host.WallSeconds = wall
	if wall > 0 {
		host.AchievedRPS = float64(issued) / wall
	}
	host.SLO = r.col.SLO()
	host.Client = clientStats(after.Sub(before))
	if lab != nil {
		host.Replication = lab.ReplicationStats()
	}

	nodes := 0
	if lab != nil {
		nodes = lab.Len()
	}
	rep := &Report{
		Schema: Schema,
		Mode:   opts.Mode,
		Seed:   opts.Seed,
		Config: Config{
			Requests:   opts.Requests,
			Clients:    opts.Clients,
			RateRPS:    opts.Rate,
			Mix:        opts.Mix.String(),
			Scale:      opts.Space.Scale,
			RunSeed:    opts.Space.Seed,
			DeadlineMS: int64(opts.Deadline / time.Millisecond),
			Nodes:      nodes,
		},
		Traffic: r.col.Traffic(),
		Host:    host,
	}
	if opts.Mode != "open" {
		rep.Config.RateRPS = 0
	}
	if opts.Mode != "closed" {
		rep.Config.Clients = 0
	}
	if opts.Mode == "ramp" {
		rep.Config.RampStartRPS = opts.RampStart
		rep.Config.RampStepRPS = opts.RampStep
		rep.Config.RampSteps = opts.RampSteps
	}
	if ctrl != nil {
		fired, errs := ctrl.Fired()
		rep.Chaos = &ChaosReport{Schedule: ctrl.steps, Fired: fired, Errors: errs}
	}
	return rep, nil
}

// runner carries one run's shared state across client goroutines.
type runner struct {
	client *cluster.Client
	gen    *Generator
	ctrl   *Controller
	opts   Options
	col    *Collector
	issued atomic.Uint64
	seg    *metrics.Histogram // ramp: current segment's latency
	segMu  sync.Mutex
}

// issue synthesizes, fires, and records request index i.
func (r *runner) issue(i uint64) {
	seq := r.issued.Add(1) - 1
	r.ctrl.BeforeIssue(seq)
	req := r.gen.Request(i)
	var deadline time.Time
	if r.opts.Deadline > 0 {
		deadline = time.Now().Add(r.opts.Deadline) //emx:hostclock per-request deadline stamp
	}
	t0 := time.Now() //emx:hostclock client-observed latency
	res, err := r.client.DoDeadline(req.Key, req.Endpoint, req.Body, deadline)
	sec := time.Since(t0).Seconds() //emx:hostclock
	status := 0
	var body []byte
	if err == nil {
		status, body = res.Status, res.Body
	}
	r.col.Record(req.Endpoint, status, body, sec, err)
	r.segMu.Lock()
	if r.seg != nil {
		r.seg.Observe(sec)
	}
	r.segMu.Unlock()
}

// closedLoop partitions [first, first+n) across clients goroutines.
// Each client owns a contiguous index range, so the aggregate request
// multiset is the same for any client count or interleaving.
func (r *runner) closedLoop(first uint64, n, clients int) {
	if clients > n {
		clients = n
	}
	var wg sync.WaitGroup
	per := n / clients
	extra := n % clients
	lo := first
	for c := 0; c < clients; c++ {
		count := per
		if c < extra {
			count++
		}
		hi := lo + uint64(count)
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				r.issue(i)
			}
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// openLoop issues n requests on a seeded Poisson arrival schedule at
// rate req/s: inter-arrival gaps are -ln(u)/rate with u drawn from the
// request-index stream, so the schedule (like the requests) is a pure
// function of the seed. Arrivals do not wait for completions — that is
// what makes the loop open.
func (r *runner) openLoop(first uint64, n int, rate float64) {
	var wg sync.WaitGroup
	next := time.Now() //emx:hostclock open-loop arrival schedule
	for k := 0; k < n; k++ {
		i := first + uint64(k)
		gap := -math.Log(drawsAt(r.opts.Seed^0x6f70656e, i).float64()) / rate
		next = next.Add(time.Duration(gap * float64(time.Second)))
		time.Sleep(time.Until(next)) //emx:hostclock open-loop pacing
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			r.issue(i)
		}(i)
	}
	wg.Wait()
}

// ramp runs RampSteps open-loop segments at increasing offered rates
// and locates the saturation knee: the last offered rate the target
// achieved at least 90% of. Saturated records whether any step
// qualified — without it, KneeRPS 0 ("no step kept up") would be
// indistinguishable from a knee at rate 0.
func (r *runner) ramp(host *Host, logf func(string, ...any)) {
	saturated := false
	for s := 0; s < r.opts.RampSteps; s++ {
		offered := r.opts.RampStart + float64(s)*r.opts.RampStep
		seg := metrics.NewHistogram(metrics.DefLatencyBuckets)
		r.segMu.Lock()
		r.seg = seg
		r.segMu.Unlock()
		_, errsBefore := r.col.Counts()
		t0 := time.Now() //emx:hostclock per-segment achieved-rate measurement
		r.openLoop(uint64(s)*uint64(r.opts.Requests), r.opts.Requests, offered)
		wall := time.Since(t0).Seconds() //emx:hostclock
		_, errsAfter := r.col.Counts()
		achieved := 0.0
		if wall > 0 {
			achieved = float64(r.opts.Requests) / wall
		}
		row := RampRow{
			OfferedRPS:  offered,
			AchievedRPS: achieved,
			P99Seconds:  seg.Quantile(0.99),
			Errors:      errsAfter - errsBefore,
		}
		host.Ramp = append(host.Ramp, row)
		if achieved >= 0.9*offered {
			host.KneeRPS = offered
			saturated = true
		}
		logf("ramp step %d/%d: offered=%.1f achieved=%.1f p99=%.4fs errors=%d",
			s+1, r.opts.RampSteps, offered, achieved, row.P99Seconds, row.Errors)
	}
	r.segMu.Lock()
	r.seg = nil
	r.segMu.Unlock()
	host.Saturated = &saturated
}
