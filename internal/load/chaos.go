package load

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Step is one scripted fault: apply Action to lab node Node just
// before the AtRequest-th request (0-based) is issued. Steps key off
// the global issue counter, not wall-clock, so "kill node 1 at request
// 10" means the same thing on every host and at every load level.
//
// Owner replaces the fixed Node with "whichever node owns the
// AtRequest-th request's routing key" ("kill:owner@10" in compact
// form), resolved when the step fires. That is the step replication
// acceptance uses: kill the one node guaranteed to hold a point's
// cache entry and primary replica.
type Step struct {
	Action    string `json:"action"` // kill | restart | delay | reject | clear
	Node      int    `json:"node"`
	Owner     bool   `json:"owner,omitempty"`
	AtRequest uint64 `json:"at_request"`
	DelayMS   int    `json:"delay_ms,omitempty"` // delay action only
}

func (s Step) String() string {
	target := strconv.Itoa(s.Node)
	if s.Owner {
		target = "owner"
	}
	out := fmt.Sprintf("%s:%s@%d", s.Action, target, s.AtRequest)
	if s.Action == "delay" {
		out += ":" + strconv.Itoa(s.DelayMS) + "ms"
	}
	return out
}

func validStep(s Step) error {
	switch s.Action {
	case "kill", "restart", "reject", "clear":
	case "delay":
		if s.DelayMS <= 0 {
			return fmt.Errorf("load: delay step %s needs a positive duration", s)
		}
	default:
		return fmt.Errorf("load: unknown chaos action %q (want kill, restart, delay, reject, or clear)", s.Action)
	}
	if s.Node < 0 {
		return fmt.Errorf("load: chaos step %s has negative node", s)
	}
	return nil
}

// ParseSchedule parses a fault schedule. Two forms are accepted: a
// JSON array of Step objects, or the compact comma-separated form
// "kill:1@10,restart:1@40,delay:2@5:50ms" (action:node@request, with
// a trailing :duration for delay). The returned steps are sorted by
// AtRequest (stably, so same-request steps keep their written order).
func ParseSchedule(s string) ([]Step, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var steps []Step
	if strings.HasPrefix(s, "[") {
		if err := json.Unmarshal([]byte(s), &steps); err != nil {
			return nil, fmt.Errorf("load: bad chaos schedule JSON: %w", err)
		}
	} else {
		for _, part := range strings.Split(s, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			step, err := parseCompactStep(part)
			if err != nil {
				return nil, err
			}
			steps = append(steps, step)
		}
	}
	for _, st := range steps {
		if err := validStep(st); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].AtRequest < steps[j].AtRequest })
	return steps, nil
}

func parseCompactStep(part string) (Step, error) {
	action, rest, ok := strings.Cut(part, ":")
	if !ok {
		return Step{}, fmt.Errorf("load: bad chaos step %q (want action:node@request)", part)
	}
	nodeStr, rest, ok := strings.Cut(rest, "@")
	if !ok {
		return Step{}, fmt.Errorf("load: bad chaos step %q (want action:node@request)", part)
	}
	atStr, durStr, hasDur := strings.Cut(rest, ":")
	owner := nodeStr == "owner"
	node := 0
	if !owner {
		var err error
		node, err = strconv.Atoi(nodeStr)
		if err != nil {
			return Step{}, fmt.Errorf("load: bad node in chaos step %q: %v", part, err)
		}
	}
	at, err := strconv.ParseUint(atStr, 10, 64)
	if err != nil {
		return Step{}, fmt.Errorf("load: bad request index in chaos step %q: %v", part, err)
	}
	step := Step{Action: action, Node: node, Owner: owner, AtRequest: at}
	if hasDur {
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return Step{}, fmt.Errorf("load: bad duration in chaos step %q: %v", part, err)
		}
		step.DelayMS = int(d / time.Millisecond)
	}
	return step, nil
}

// Controller fires a schedule's steps against a lab as the run's
// issue counter passes each step's AtRequest. Safe for concurrent
// BeforeIssue calls from many client goroutines.
type Controller struct {
	lab   *Lab
	steps []Step
	// Probe, when set, runs after a successful restart so a membership
	// can re-admit the recovered node (failback).
	Probe func()
	// Resolver maps a request index to the lab node that owns that
	// request's routing key. Owner-targeted steps need it; Run wires
	// one from the traffic generator and the lab's member ring.
	Resolver func(at uint64) (int, error)

	mu    sync.Mutex
	next  int
	fired int
	errs  []string
}

// NewController validates the schedule against the lab's node count.
func NewController(lab *Lab, steps []Step) (*Controller, error) {
	for _, st := range steps {
		if err := validStep(st); err != nil {
			return nil, err
		}
		if !st.Owner && st.Node >= lab.Len() {
			return nil, fmt.Errorf("load: chaos step %s targets node %d but the lab has %d", st, st.Node, lab.Len())
		}
	}
	sorted := append([]Step(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtRequest < sorted[j].AtRequest })
	return &Controller{lab: lab, steps: sorted}, nil
}

// BeforeIssue fires every not-yet-fired step whose AtRequest is at or
// below seq. Call it with the global issue counter before sending each
// request; nil controllers are no-ops so un-chaosed runs need no
// branching.
func (c *Controller) BeforeIssue(seq uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.next < len(c.steps) && c.steps[c.next].AtRequest <= seq {
		st := c.steps[c.next]
		c.next++
		c.fired++
		if err := c.apply(st); err != nil {
			c.errs = append(c.errs, err.Error())
		}
	}
}

func (c *Controller) apply(st Step) error {
	target := st.Node
	if st.Owner {
		if c.Resolver == nil {
			return fmt.Errorf("load: chaos step %s targets the owner but no resolver is wired", st)
		}
		var err error
		if target, err = c.Resolver(st.AtRequest); err != nil {
			return fmt.Errorf("load: resolving owner for chaos step %s: %w", st, err)
		}
	}
	node, err := c.lab.Node(target)
	if err != nil {
		return err
	}
	switch st.Action {
	case "kill":
		node.Kill()
	case "restart":
		if err := node.Restart(); err != nil {
			return err
		}
		if c.Probe != nil {
			c.Probe()
		}
	case "delay":
		node.Delay(time.Duration(st.DelayMS) * time.Millisecond)
	case "reject":
		node.Reject()
	case "clear":
		node.Clear()
	}
	return nil
}

// Fired reports how many steps have fired and any apply errors.
func (c *Controller) Fired() (int, []string) {
	if c == nil {
		return 0, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired, append([]string(nil), c.errs...)
}
